file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_implicit_explicit.dir/bench_fig6_implicit_explicit.cc.o"
  "CMakeFiles/bench_fig6_implicit_explicit.dir/bench_fig6_implicit_explicit.cc.o.d"
  "bench_fig6_implicit_explicit"
  "bench_fig6_implicit_explicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_implicit_explicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
