// bih_analyze: whole-repo lock-graph and annotation-discipline analyzer.
//
// Runs three passes over the tree (see tools/analysis/passes.h):
//   [lock-order]           deadlock cycles + undeclared observed nestings
//   [guard-coverage]       unannotated mutable fields in mutex-owning classes
//   [blocking-under-lock]  blocking calls while a no-blocking mutex is held
//
// Usage:
//   bih_analyze [--root DIR] [--json FILE] [--no-block Class::field]...
//               [--no-default-no-block] [--dump-graph] [PATH...]
//
// With no PATH arguments, scans src/ and tools/ under --root (default ".").
// Exit code: 0 clean, 1 findings, 2 usage error.
//
// Suppression (same syntax as bih_lint, always with a reason nearby):
//   // bih-lint: allow(lock-order)            this or the previous line
//   // bih-lint: allow-file(guard-coverage)   whole file, first 40 lines

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "analysis/source.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bih_analyze [--root DIR] [--json FILE] "
               "[--no-block Class::field]... [--no-default-no-block] "
               "[--dump-graph] [PATH...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bih::analysis;

  std::string root = ".";
  std::string json_path;
  bool dump_graph = false;
  AnalyzeOptions opts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--no-block" && i + 1 < argc) {
      opts.no_block.push_back(argv[++i]);
    } else if (arg == "--no-default-no-block") {
      opts.no_default_no_block = true;
    } else if (arg == "--dump-graph") {
      dump_graph = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<FileText> texts = LoadTree(root, paths, {"src", "tools"});
  if (texts.empty()) {
    std::fprintf(stderr, "bih_analyze: no source files found\n");
    return 2;
  }

  AnalyzeResult result = Analyze(texts, opts);

  if (dump_graph) {
    std::fputs(DumpGraph(result.graph).c_str(), stdout);
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bih_analyze: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << ToJson(result);
  }
  return ReportFindings(&result.findings, result.files_scanned,
                        "bih_analyze");
}
