#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/period.h"
#include "common/rng.h"

namespace bih {

namespace {

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};
const char* kNations[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// region of nation i, per the TPC-H seed data.
const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[7] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                             "TRUCK"};
const char* kShipInstructs[4] = {"COLLECT COD", "DELIVER IN PERSON", "NONE",
                                 "TAKE BACK RETURN"};
const char* kContainers[8] = {"BAG", "BOX", "CAN", "CASE", "DRUM", "JAR",
                              "PKG", "PACK"};
const char* kContainerSizes[5] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
const char* kPartNameWords[16] = {
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "blanched",
    "blue",   "blush",   "brown",      "burlywood", "chartreuse", "chiffon",
    "chocolate", "coral", "cornflower"};
const char* kTypes1[6] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                          "PROMO"};
const char* kTypes2[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                          "BRUSHED"};
const char* kTypes3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kNoise[12] = {"carefully", "quickly", "furiously", "slyly",
                          "blithely", "daringly", "express", "regular",
                          "ironic",   "final",   "bold",     "pending"};

std::string PadKey(const char* prefix, int64_t key, int width) {
  std::string num = std::to_string(key);
  std::string out = prefix;
  out.append(static_cast<size_t>(std::max(0, width - static_cast<int>(num.size()))),
             '0');
  out += num;
  return out;
}

std::string RandomComment(Rng* rng) {
  std::string s;
  int words = static_cast<int>(rng->UniformInt(3, 7));
  for (int i = 0; i < words; ++i) {
    if (i) s += ' ';
    s += kNoise[rng->UniformInt(0, 11)];
  }
  return s;
}

std::string RandomPhone(Rng* rng, int64_t nationkey) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(nationkey + 10),
                static_cast<int>(rng->UniformInt(100, 999)),
                static_cast<int>(rng->UniformInt(100, 999)),
                static_cast<int>(rng->UniformInt(1000, 9999)));
  return buf;
}

std::string RandomAddress(Rng* rng) {
  static const char* kAlpha = "abcdefghijklmnopqrstuvwxyz0123456789 ,";
  int len = static_cast<int>(rng->UniformInt(10, 30));
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) s += kAlpha[rng->UniformInt(0, 37)];
  return s;
}

double RetailPrice(int64_t p) {
  return (90000.0 + ((p / 10) % 20001) + 100.0 * (p % 1000)) / 100.0;
}

}  // namespace

const std::vector<Row>& TpchData::TableRows(const std::string& name) const {
  if (name == "REGION") return region;
  if (name == "NATION") return nation;
  if (name == "SUPPLIER") return supplier;
  if (name == "PART") return part;
  if (name == "PARTSUPP") return partsupp;
  if (name == "CUSTOMER") return customer;
  if (name == "ORDERS") return orders;
  BIH_CHECK_MSG(name == "LINEITEM", "unknown table " + name);
  return lineitem;
}

TpchCardinalities CardinalitiesFor(double scale) {
  auto at_least_one = [](double v) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(v)));
  };
  TpchCardinalities c;
  c.suppliers = at_least_one(10000 * scale);
  c.parts = at_least_one(200000 * scale);
  c.partsupps = c.parts * 4;
  c.customers = at_least_one(150000 * scale);
  c.orders = at_least_one(1500000 * scale);
  return c;
}

TpchData GenerateTpch(const TpchConfig& config) {
  Rng rng(config.seed);
  TpchData data;
  const TpchCardinalities card = CardinalitiesFor(config.scale);
  const Date start = tpch_dates::kStart;
  const Date current = tpch_dates::kCurrent;
  const Date last_order = tpch_dates::kLastOrder;
  const int32_t order_span = start.DaysUntil(last_order);

  // REGION / NATION: fixed seed data.
  for (int64_t r = 0; r < 5; ++r) {
    data.region.push_back(
        {Value(r), Value(kRegions[r]), Value(RandomComment(&rng))});
  }
  for (int64_t n = 0; n < 25; ++n) {
    data.nation.push_back({Value(n), Value(kNations[n]),
                           Value(int64_t{kNationRegion[n]}),
                           Value(RandomComment(&rng))});
  }

  // SUPPLIER.
  for (int64_t s = 1; s <= card.suppliers; ++s) {
    int64_t nk = rng.UniformInt(0, 24);
    data.supplier.push_back({Value(s), Value(PadKey("Supplier#", s, 9)),
                             Value(RandomAddress(&rng)), Value(nk),
                             Value(RandomPhone(&rng, nk)),
                             Value(rng.UniformInt(-99999, 999999) / 100.0)});
  }

  // PART. Availability begins are skewed toward recent dates (Zipf) so the
  // application-time axis is non-uniform, as the benchmark requires.
  const int32_t avail_span = start.DaysUntil(current);
  for (int64_t p = 1; p <= card.parts; ++p) {
    std::string name;
    for (int w = 0; w < 3; ++w) {
      if (w) name += ' ';
      name += kPartNameWords[rng.UniformInt(0, 15)];
    }
    std::string type = std::string(kTypes1[rng.UniformInt(0, 5)]) + " " +
                       kTypes2[rng.UniformInt(0, 4)] + " " +
                       kTypes3[rng.UniformInt(0, 4)];
    std::string container = std::string(kContainerSizes[rng.UniformInt(0, 4)]) +
                            " " + kContainers[rng.UniformInt(0, 7)];
    int64_t skew = rng.Zipf(avail_span, 0.7);
    Date avail = current.AddDays(static_cast<int32_t>(-skew));
    data.part.push_back(
        {Value(p), Value(name), Value(PadKey("Manufacturer#", 1 + p % 5, 1)),
         Value(PadKey("Brand#", (1 + p % 5) * 10 + 1 + (p / 5) % 5, 2)),
         Value(type), Value(rng.UniformInt(1, 50)), Value(container),
         Value(RetailPrice(p)), Value(avail), Value(Period::kForever)});
  }

  // PARTSUPP: four suppliers per part, spec key derivation.
  for (int64_t p = 1; p <= card.parts; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      int64_t s = PartSuppSupplier(p, i, card.suppliers);
      int64_t skew = rng.Zipf(avail_span, 0.5);
      Date valid = current.AddDays(static_cast<int32_t>(-skew));
      data.partsupp.push_back({Value(p), Value(s),
                               Value(rng.UniformInt(1, 9999)),
                               Value(rng.UniformInt(100, 100000) / 100.0),
                               Value(valid), Value(Period::kForever)});
    }
  }

  // CUSTOMER.
  for (int64_t c = 1; c <= card.customers; ++c) {
    int64_t nk = rng.UniformInt(0, 24);
    Date visible =
        start.AddDays(static_cast<int32_t>(rng.UniformInt(0, avail_span)));
    data.customer.push_back(
        {Value(c), Value(PadKey("Customer#", c, 9)), Value(RandomAddress(&rng)),
         Value(nk), Value(RandomPhone(&rng, nk)),
         Value(rng.UniformInt(-99999, 999999) / 100.0),
         Value(kSegments[rng.UniformInt(0, 4)]), Value(visible),
         Value(Period::kForever)});
  }

  // ORDERS + LINEITEM. Only two thirds of the customers place orders.
  for (int64_t o = 1; o <= card.orders; ++o) {
    int64_t ck;
    do {
      ck = rng.UniformInt(1, card.customers);
    } while (card.customers > 3 && ck % 3 == 0);
    Date odate =
        start.AddDays(static_cast<int32_t>(rng.UniformInt(0, order_span)));
    int nlines = static_cast<int>(rng.UniformInt(1, 7));
    double total = 0.0;
    Date max_receipt = odate;
    int f_count = 0;
    std::vector<Row> lines;
    for (int ln = 1; ln <= nlines; ++ln) {
      int64_t p = rng.UniformInt(1, card.parts);
      int64_t i = rng.UniformInt(0, 3);
      int64_t s = PartSuppSupplier(p, i, card.suppliers);
      double qty = static_cast<double>(rng.UniformInt(1, 50));
      double extprice = qty * RetailPrice(p);
      double disc = rng.UniformInt(0, 10) / 100.0;
      double tax = rng.UniformInt(0, 8) / 100.0;
      Date ship = odate.AddDays(static_cast<int32_t>(rng.UniformInt(1, 121)));
      Date commit = odate.AddDays(static_cast<int32_t>(rng.UniformInt(30, 90)));
      Date receipt = ship.AddDays(static_cast<int32_t>(rng.UniformInt(1, 30)));
      const char* lstatus = ship <= current ? "F" : "O";
      const char* rflag =
          receipt <= current ? (rng.Bernoulli(0.5) ? "R" : "A") : "N";
      if (*lstatus == 'F') ++f_count;
      if (max_receipt < receipt) max_receipt = receipt;
      total += extprice * (1.0 + tax) * (1.0 - disc);
      lines.push_back({Value(o), Value(p), Value(s), Value(int64_t{ln}),
                       Value(qty), Value(extprice), Value(disc), Value(tax),
                       Value(rflag), Value(lstatus), Value(ship),
                       Value(commit), Value(receipt),
                       Value(kShipInstructs[rng.UniformInt(0, 3)]),
                       Value(kShipModes[rng.UniformInt(0, 6)]), Value(ship),
                       Value(receipt)});
    }
    const char* ostatus =
        f_count == nlines ? "F" : (f_count == 0 ? "O" : "P");
    // ACTIVE_TIME runs from order placement until full delivery; open for
    // orders still in flight. RECEIVABLE_TIME follows delivery until the
    // payment arrives; open until then.
    bool delivered = *ostatus == 'F';
    Value active_end = delivered ? Value(max_receipt.AddDays(1))
                                 : Value(Period::kForever);
    Value recv_begin = Value(max_receipt.AddDays(1));
    Value recv_end =
        delivered ? Value(max_receipt.AddDays(
                        1 + static_cast<int32_t>(rng.UniformInt(10, 60))))
                  : Value(Period::kForever);
    data.orders.push_back(
        {Value(o), Value(ck), Value(ostatus), Value(total), Value(odate),
         Value(kPriorities[rng.UniformInt(0, 4)]),
         Value(PadKey("Clerk#", rng.UniformInt(1, std::max<int64_t>(
                                                      1, card.orders / 1000)),
                      9)),
         Value(int64_t{0}), Value(odate), active_end, recv_begin, recv_end});
    for (Row& line : lines) data.lineitem.push_back(std::move(line));
  }
  return data;
}

}  // namespace bih
