#include "workload/context.h"

#include <algorithm>
#include <map>

#include "tpch/schema.h"

namespace bih {

std::unique_ptr<TemporalEngine> LoadEngine(const std::string& letter,
                                           const TpchData& initial,
                                           const History& history,
                                           size_t batch_size,
                                           std::vector<double>* latencies,
                                           std::vector<Scenario>* scenarios) {
  std::unique_ptr<TemporalEngine> engine = MakeEngine(letter);
  Status st = CreateBiHTables(*engine);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  st = LoadInitialData(*engine, initial);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  st = ReplayHistory(*engine, history, batch_size, latencies, scenarios);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  // Bring the storage to its steady state (System C: delta/main merge and
  // history relocation, like the merges a column store runs after loading).
  engine->Maintain();
  return engine;
}

WorkloadContext BuildWorkload(const WorkloadConfig& config) {
  WorkloadContext ctx;
  ctx.initial = GenerateTpch({config.h, config.seed});
  GeneratorConfig gcfg;
  gcfg.m = config.m;
  gcfg.seed = config.seed + 1;
  HistoryGenerator gen(ctx.initial, gcfg);
  ctx.history = gen.Generate();
  ctx.stats = gen.stats();
  ctx.end_state = gen.EndState();

  ctx.engine = MakeEngine(config.engine_letter);
  Status st = CreateBiHTables(*ctx.engine);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  st = LoadInitialData(*ctx.engine, ctx.initial);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  ctx.sys_v0 = ctx.engine->Now();

  const size_t half = ctx.history.size() / 2;
  History first(ctx.history.begin(), ctx.history.begin() + half);
  History second(ctx.history.begin() + half, ctx.history.end());
  st = ReplayHistory(*ctx.engine, first, config.batch_size);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  ctx.sys_mid = ctx.engine->Now();
  st = ReplayHistory(*ctx.engine, second, config.batch_size);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  ctx.sys_end = ctx.engine->Now();
  ctx.engine->Maintain();

  // Application-time anchors: the evolution advances application time from
  // the TPC-H "current date" to the end of 1998.
  ctx.app_early = tpch_dates::kCurrent.AddDays(1).days();
  ctx.app_late = tpch_dates::kEnd.days() - 1;
  ctx.app_mid = (ctx.app_early + ctx.app_late) / 2;

  // Hot keys: the customer and order with the most history operations.
  std::map<int64_t, int64_t> cust_ops, order_ops;
  for (const HistoryTransaction& txn : ctx.history) {
    for (const Operation& op : txn.ops) {
      if (op.table == "CUSTOMER" &&
          op.kind != Operation::Kind::kInsert) {
        ++cust_ops[op.key[0].AsInt()];
      } else if (op.table == "ORDERS" &&
                 op.kind != Operation::Kind::kInsert) {
        ++order_ops[op.key[0].AsInt()];
      }
    }
  }
  for (const auto& [k, n] : cust_ops) {
    if (n > cust_ops[ctx.hot_custkey]) ctx.hot_custkey = k;
  }
  for (const auto& [k, n] : order_ops) {
    if (n > order_ops[ctx.hot_orderkey]) ctx.hot_orderkey = k;
  }
  return ctx;
}

std::unique_ptr<TemporalEngine> LoadBaseline(const TpchData& snapshot) {
  std::unique_ptr<TemporalEngine> engine = MakeEngine("D");
  Status st = CreateBiHTables(*engine);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  st = LoadInitialData(*engine, snapshot);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  return engine;
}

Status ApplyIndexSetting(TemporalEngine& engine, IndexSetting setting,
                         IndexType type) {
  if (setting == IndexSetting::kNone) return Status::OK();
  for (const TableDef& def : BiHSchema()) {
    const int sys_from = def.schema.num_columns();
    const int sys_to = sys_from + 1;
    auto add = [&](PartitionSel part, std::vector<int> cols, IndexType t,
                   const std::string& suffix) -> Status {
      IndexSpec spec;
      spec.table = def.name;
      spec.partition = part;
      spec.columns = std::move(cols);
      spec.type = t;
      spec.name = def.name + "_" + suffix;
      Status st = engine.CreateIndex(spec);
      // Engines legitimately refuse some structures (e.g. R-trees outside
      // System D); tuning simply skips those.
      if (!st.ok() && st.code() != Status::Code::kUnimplemented) return st;
      return Status::OK();
    };
    switch (setting) {
      case IndexSetting::kTime: {
        if (def.HasAppTime()) {
          for (const AppPeriodDef& ap : def.app_periods) {
            if (type == IndexType::kRTree) {
              BIH_RETURN_IF_ERROR(add(PartitionSel::kCurrent,
                                      {ap.begin_col, ap.end_col}, type,
                                      "gist_app_" + ap.name));
              BIH_RETURN_IF_ERROR(add(PartitionSel::kHistory,
                                      {ap.begin_col, ap.end_col}, type,
                                      "gist_app_hist_" + ap.name));
            } else {
              BIH_RETURN_IF_ERROR(add(PartitionSel::kCurrent, {ap.begin_col},
                                      type, "app_" + ap.name));
              BIH_RETURN_IF_ERROR(add(PartitionSel::kHistory, {ap.begin_col},
                                      type, "app_hist_" + ap.name));
            }
          }
        }
        if (def.system_versioned) {
          if (type == IndexType::kRTree) {
            BIH_RETURN_IF_ERROR(add(PartitionSel::kHistory,
                                    {sys_from, sys_to}, type, "gist_sys_hist"));
          } else {
            BIH_RETURN_IF_ERROR(
                add(PartitionSel::kHistory, {sys_from}, type, "sys_hist"));
          }
        }
        break;
      }
      case IndexSetting::kKeyTime: {
        std::vector<int> cols = def.primary_key;
        cols.push_back(sys_from);
        BIH_RETURN_IF_ERROR(
            add(PartitionSel::kHistory, cols, IndexType::kBTree, "key_sys_hist"));
        BIH_RETURN_IF_ERROR(add(PartitionSel::kCurrent, def.primary_key,
                                IndexType::kBTree, "key_cur"));
        break;
      }
      case IndexSetting::kValue: {
        if (def.name == "CUSTOMER") {
          BIH_RETURN_IF_ERROR(add(PartitionSel::kCurrent,
                                  {def.schema.ColumnIndex("C_ACCTBAL")},
                                  IndexType::kBTree, "val_acctbal"));
          BIH_RETURN_IF_ERROR(add(PartitionSel::kHistory,
                                  {def.schema.ColumnIndex("C_ACCTBAL")},
                                  IndexType::kBTree, "val_acctbal_hist"));
        }
        if (def.name == "ORDERS") {
          BIH_RETURN_IF_ERROR(add(PartitionSel::kCurrent,
                                  {def.schema.ColumnIndex("O_TOTALPRICE")},
                                  IndexType::kBTree, "val_totalprice"));
          BIH_RETURN_IF_ERROR(add(PartitionSel::kHistory,
                                  {def.schema.ColumnIndex("O_TOTALPRICE")},
                                  IndexType::kBTree, "val_totalprice_hist"));
        }
        break;
      }
      case IndexSetting::kNone:
        break;
    }
  }
  return Status::OK();
}

}  // namespace bih
