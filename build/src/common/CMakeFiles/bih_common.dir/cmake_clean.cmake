file(REMOVE_RECURSE
  "CMakeFiles/bih_common.dir/chrono.cc.o"
  "CMakeFiles/bih_common.dir/chrono.cc.o.d"
  "CMakeFiles/bih_common.dir/period.cc.o"
  "CMakeFiles/bih_common.dir/period.cc.o.d"
  "CMakeFiles/bih_common.dir/rng.cc.o"
  "CMakeFiles/bih_common.dir/rng.cc.o.d"
  "CMakeFiles/bih_common.dir/status.cc.o"
  "CMakeFiles/bih_common.dir/status.cc.o.d"
  "CMakeFiles/bih_common.dir/value.cc.o"
  "CMakeFiles/bih_common.dir/value.cc.o.d"
  "libbih_common.a"
  "libbih_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
