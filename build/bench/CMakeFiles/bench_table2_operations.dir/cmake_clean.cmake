file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_operations.dir/bench_table2_operations.cc.o"
  "CMakeFiles/bench_table2_operations.dir/bench_table2_operations.cc.o.d"
  "bench_table2_operations"
  "bench_table2_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
