// Fixture: must trip [assert-side-effect]. The increment disappears in
// NDEBUG builds, so release binaries would lose the cursor advance.
#include <cassert>

void Advance(int* cursor) {
  assert(++*cursor > 0);
}
