#ifndef TPCBIH_DURABILITY_FAULT_H_
#define TPCBIH_DURABILITY_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bih {

// Deterministic fault injection for the WAL's physical record writes.
//
// The injector is consulted once per *attempt* to append a framed record.
// It can let the write pass, fail it outright (as if the disk returned
// EIO), fail only the first attempt (a transient error the writer's retry
// loop should absorb), persist only a prefix of the frame (a torn write:
// the classic crash-mid-append), or flip one byte of the frame before it
// lands (silent media corruption). After a fail/torn trigger the injector
// is "crashed": every later write fails, modeling a process that never
// comes back between the fault and recovery. A transient trigger does not
// crash: the retry of the same record succeeds.
//
// All decisions are a pure function of the plan and the write counter, so a
// given configuration reproduces the same byte stream every run; the CI
// crash sweep relies on this.
class FaultInjector {
 public:
  enum class Mode { kNone, kFailWrite, kTransientWrite, kTornWrite, kFlipByte };

  struct Action {
    bool fail = false;          // drop the frame, return kIoError
    bool torn = false;          // persist only keep_bytes, then crash
    size_t keep_bytes = 0;      // prefix length for a torn write
    bool flip = false;          // XOR one byte of the frame
    size_t flip_offset = 0;
    uint8_t flip_mask = 0x01;
  };

  FaultInjector() = default;

  // Fail the nth frame write (1-based) and every one after it.
  static FaultInjector FailNth(uint64_t n);
  // Fail only the first attempt at the nth frame write; the retry passes.
  static FaultInjector TransientNth(uint64_t n);
  // Persist only `keep_bytes` of the nth frame, then crash. keep_bytes
  // beyond the frame length persists the whole frame (the fault degrades
  // to a clean crash after the record).
  static FaultInjector TornNth(uint64_t n, size_t keep_bytes);
  // Flip `mask` into byte `offset` of the nth frame (offset is clamped to
  // the frame). The write itself succeeds; corruption is only discovered
  // by CRC at recovery time.
  static FaultInjector FlipByteNth(uint64_t n, size_t offset,
                                   uint8_t mask = 0x01);
  // Parses BIH_FAULT ("fail:N" | "transient:N" | "torn:N:KEEP" |
  // "flip:N:OFF") from the environment; returns a no-op injector when unset
  // or malformed.
  static FaultInjector FromEnv(const char* var = "BIH_FAULT");
  // Derives a pseudo-random plan from a seed: mode, trigger write in
  // [1, max_write] and torn/flip parameters are all functions of the seed.
  static FaultInjector FromSeed(uint64_t seed, uint64_t max_write);

  // Called by the WAL writer before appending frame number `write_index`
  // (1-based) of `frame_len` bytes.
  Action OnWrite(uint64_t write_index, size_t frame_len);

  Mode mode() const { return mode_; }
  uint64_t trigger_write() const { return trigger_write_; }
  bool triggered() const { return triggered_; }
  std::string ToString() const;

 private:
  Mode mode_ = Mode::kNone;
  uint64_t trigger_write_ = 0;  // 1-based frame index of the fault
  size_t keep_bytes_ = 0;
  size_t flip_offset_ = 0;
  uint8_t flip_mask_ = 0x01;
  bool triggered_ = false;
  bool crashed_ = false;
};

}  // namespace bih

#endif  // TPCBIH_DURABILITY_FAULT_H_
