file(REMOVE_RECURSE
  "libbih_tpch.a"
)
