file(REMOVE_RECURSE
  "CMakeFiles/bih_driver.dir/bih_driver.cc.o"
  "CMakeFiles/bih_driver.dir/bih_driver.cc.o.d"
  "bih_driver"
  "bih_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
