# Empty compiler generated dependencies file for bench_fig10_key_version.
# This may be replaced when dependencies are built.
