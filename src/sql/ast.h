#ifndef TPCBIH_SQL_AST_H_
#define TPCBIH_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "temporal/temporal.h"

namespace bih {
namespace sql {

// Unbound expression tree produced by the parser; the executor binds column
// references to positions after the FROM clause is resolved.
struct SqlExpr;
using SqlExprPtr = std::shared_ptr<SqlExpr>;

struct SqlExpr {
  enum class Kind {
    kColumn,    // [qualifier.]name
    kLiteral,
    kBinary,    // op in {+,-,*,/,=,<>,<,<=,>,>=,AND,OR}
    kUnary,     // NOT
    kLike,      // column LIKE 'pattern' (leading/trailing % only)
    kBetween,   // x BETWEEN a AND b
    kAggregate, // SUM/AVG/COUNT/MIN/MAX(expr) or COUNT(*)
    kStar,      // '*' inside COUNT(*)
  };

  Kind kind;
  // kColumn:
  std::string qualifier;  // table alias; empty when unqualified
  std::string name;
  // kLiteral:
  Value literal;
  // kBinary / kUnary / kLike / kBetween:
  std::string op;
  std::vector<SqlExprPtr> children;
  // kAggregate:
  std::string func;  // uppercased
};

// One SELECT-list item.
struct SelectItem {
  SqlExprPtr expr;   // null for a bare '*'
  std::string alias; // empty = derived name
};

// A table reference with optional temporal clauses.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name
  // Parsed FOR SYSTEM_TIME / FOR BUSINESS_TIME clauses.
  TemporalSelector system_time;
  TemporalSelector app_time;
  std::string app_period;  // optional explicit period name
  bool has_app_clause = false;
};

struct Join {
  TableRef table;
  SqlExprPtr on;
};

struct OrderItem {
  SqlExprPtr expr;
  bool ascending = true;
};

// Temporal DML (SQL:2011): INSERT INTO t VALUES (...); UPDATE/DELETE with
// an optional FOR PORTION OF <period> FROM t1 TO t2 clause mapping to the
// SEQUENCED model.
struct DmlStatement {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind;
  std::string table;
  // kInsert: one row of constant expressions.
  std::vector<SqlExprPtr> values;
  // kUpdate: SET assignments (constant expressions).
  std::vector<std::pair<std::string, SqlExprPtr>> assignments;
  // kUpdate/kDelete: row filter; null = all current rows.
  SqlExprPtr where;
  // FOR PORTION OF clause.
  bool has_portion = false;
  std::string portion_period;  // empty = the table's first period
  int64_t portion_from = 0;
  int64_t portion_to = 0;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  bool distinct = false;
  bool select_star = false;
  TableRef from;
  std::vector<Join> joins;
  SqlExprPtr where;            // may be null
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;           // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;          // -1 = no limit
};

}  // namespace sql
}  // namespace bih

#endif  // TPCBIH_SQL_AST_H_
