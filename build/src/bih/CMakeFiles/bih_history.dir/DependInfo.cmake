
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bih/generator.cc" "src/bih/CMakeFiles/bih_history.dir/generator.cc.o" "gcc" "src/bih/CMakeFiles/bih_history.dir/generator.cc.o.d"
  "/root/repo/src/bih/history.cc" "src/bih/CMakeFiles/bih_history.dir/history.cc.o" "gcc" "src/bih/CMakeFiles/bih_history.dir/history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/bih_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/bih_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/bih_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bih_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bih_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/bih_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
