# Empty compiler generated dependencies file for bench_fig6_implicit_explicit.
# This may be replaced when dependencies are built.
