// Figure 9: key-in-time with temporal range restrictions (K2) and with a
// single-column projection (K3), under the Key+Time index setting and
// without it.
//
// Expected shape (Section 5.5.2): the range restriction changes little
// compared to K1 — the key predicate dominates — and the narrow projection
// helps mainly the column store.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

std::vector<std::unique_ptr<TemporalEngine>>* g_engines =
    new std::vector<std::unique_ptr<TemporalEngine>>();

void RegisterFor(const std::string& label, TemporalEngine* e,
                 const WorkloadContext& ctx) {
  const int64_t key = ctx.hot_custkey;
  auto add = [&](const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(("Fig9/" + name + "/" + label).c_str(),
                                 [e, fn](benchmark::State& state) {
                                   for (auto _ : state) {
                                     benchmark::DoNotOptimize(fn(*e));
                                   }
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  };
  TemporalScanSpec app_range;  // restricted application window
  app_range.app_time = TemporalSelector::Between(ctx.app_early, ctx.app_mid);
  TemporalScanSpec sys_range;  // restricted system window
  sys_range.system_time =
      TemporalSelector::Between(ctx.sys_v0.micros(), ctx.sys_mid.micros());
  sys_range.app_time = TemporalSelector::All();
  TemporalScanSpec both;
  both.system_time = sys_range.system_time;
  both.app_time = app_range.app_time;
  add("K2_app_range", [key, app_range](TemporalEngine& eng) {
    return K2(eng, key, app_range);
  });
  add("K2_sys_range", [key, sys_range](TemporalEngine& eng) {
    return K2(eng, key, sys_range);
  });
  add("K2_both_ranges", [key, both](TemporalEngine& eng) {
    return K2(eng, key, both);
  });
  add("K3_app_range_1col", [key, app_range](TemporalEngine& eng) {
    return K3(eng, key, app_range);
  });
  add("K3_sys_range_1col", [key, sys_range](TemporalEngine& eng) {
    return K3(eng, key, sys_range);
  });
}

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  for (const std::string& letter : AllEngineLetters()) {
    g_engines->push_back(w.Fresh(letter));
    RegisterFor("System" + letter + "_no_index", g_engines->back().get(), ctx);
    g_engines->push_back(w.Fresh(letter));
    Status st = ApplyIndexSetting(*g_engines->back(), IndexSetting::kKeyTime);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    RegisterFor("System" + letter + "_keytime", g_engines->back().get(), ctx);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
