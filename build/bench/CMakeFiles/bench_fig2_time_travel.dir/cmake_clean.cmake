file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_time_travel.dir/bench_fig2_time_travel.cc.o"
  "CMakeFiles/bench_fig2_time_travel.dir/bench_fig2_time_travel.cc.o.d"
  "bench_fig2_time_travel"
  "bench_fig2_time_travel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_time_travel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
