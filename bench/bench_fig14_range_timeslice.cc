// Figure 14: the application-oriented range-timeslice queries (R1, R2,
// R3a/R3b, R4, R5, R7) plus ALL as the reference, on a smaller data set —
// the paper uses h=0.01/m=0.1 because R3/R4 explode.
//
// Expected shape (Section 5.6): the temporal-aggregation queries R3a/R3b
// cost orders of magnitude more than reading the whole history (ALL);
// System C's raw scan speed does not rescue the complex R queries.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  for (const std::string& letter : AllEngineLetters()) {
    TemporalEngine* e = &w.Engine(letter);
    auto add = [&](const std::string& name, auto fn, int iters) {
      benchmark::RegisterBenchmark(("Fig14/" + name + "/System" + letter).c_str(),
                                   [fn, e](benchmark::State& state) {
                                     for (auto _ : state) {
                                       benchmark::DoNotOptimize(fn(*e));
                                     }
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iters);
    };
    add("ALL", [](TemporalEngine& eng) { return QueryAll(eng); }, 3);
    add("R1_state_changes", [](TemporalEngine& eng) { return R1(eng); }, 3);
    add("R2_state_durations", [](TemporalEngine& eng) { return R2(eng); }, 3);
    add("R3a_temporal_agg_count",
        [](TemporalEngine& eng) {
          return R3(eng, TemporalAggKind::kCount, /*naive=*/true);
        },
        1);
    add("R3b_temporal_agg_max",
        [](TemporalEngine& eng) {
          return R3(eng, TemporalAggKind::kMax, /*naive=*/true);
        },
        1);
    add("R4_stock_differences",
        [](TemporalEngine& eng) { return R4(eng, 10); }, 3);
    add("R5_temporal_join",
        [](TemporalEngine& eng) { return R5(eng, 5000.0, 100000.0); }, 3);
    add("R7_price_raises", [](TemporalEngine& eng) { return R7(eng, 7.5); },
        3);
    // Ablation beyond the paper: the timeline-sweep operator the DBMSs
    // lack, to quantify what native temporal aggregation would buy.
    add("R3a_timeline_sweep",
        [](TemporalEngine& eng) {
          return R3(eng, TemporalAggKind::kCount, /*naive=*/false);
        },
        3);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
