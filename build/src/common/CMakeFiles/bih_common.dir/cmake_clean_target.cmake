file(REMOVE_RECURSE
  "libbih_common.a"
)
