file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_workload_mix.dir/bench_ablation_workload_mix.cc.o"
  "CMakeFiles/bench_ablation_workload_mix.dir/bench_ablation_workload_mix.cc.o.d"
  "bench_ablation_workload_mix"
  "bench_ablation_workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
