#include "engine/system_b.h"

#include <algorithm>

namespace bih {

namespace {

Schema StoredSchema(const TableDef& def) {
  return def.schema.Extend({{"SYS_TIME_START", ColumnType::kTimestamp},
                            {"SYS_TIME_END", ColumnType::kTimestamp}});
}

Schema HistorySchema(const TableDef& def) {
  return def.schema.Extend({{"SYS_TIME_START", ColumnType::kTimestamp},
                            {"SYS_TIME_END", ColumnType::kTimestamp},
                            {"TXN_ID", ColumnType::kInt},
                            {"STMT_TYPE", ColumnType::kInt}});
}

}  // namespace

SystemBEngine::Table* SystemBEngine::Find(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const SystemBEngine::Table* SystemBEngine::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status SystemBEngine::DoCreateTable(const TableDef& def) {
  if (tables_.count(def.name)) {
    return Status::AlreadyExists("table " + def.name);
  }
  tables_.emplace(def.name, Table(def, StoredSchema(def), HistorySchema(def)));
  return Status::OK();
}

Status SystemBEngine::CreateIndex(const IndexSpec& spec) {
  Table* t = Find(spec.table);
  if (t == nullptr) return Status::NotFound("table " + spec.table);
  if (spec.type == IndexType::kRTree) {
    return Status::Unimplemented("System B supports only B-tree indexes");
  }
  if (spec.partition == PartitionSel::kCurrent) {
    t->current_indexes.AddIndex(
        spec, [&](const std::function<void(RowId, const Row&)>& fn) {
          t->current.Scan([&](RowId rid, const Row&) {
            fn(rid, StoredRowOf(*t, rid));
            return true;
          });
        });
  } else {
    FlushUndo(t);
    t->history_indexes.AddIndex(
        spec, [&](const std::function<void(RowId, const Row&)>& fn) {
          t->history.Scan([&](RowId rid, const Row& row) {
            fn(rid, row);
            return true;
          });
        });
  }
  return Status::OK();
}

Status SystemBEngine::DropIndexes(const std::string& table) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  t->current_indexes.Clear();
  t->history_indexes.Clear();
  return Status::OK();
}

const TableDef& SystemBEngine::GetTableDef(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->def;
}

Schema SystemBEngine::ScanSchema(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->stored_schema;
}

IndexKey SystemBEngine::KeyOf(const Table& t, const Row& user_row) const {
  IndexKey key;
  key.reserve(t.def.primary_key.size());
  for (int c : t.def.primary_key) key.push_back(user_row[static_cast<size_t>(c)]);
  return key;
}

Row SystemBEngine::StoredRowOf(const Table& t, RowId rid) const {
  Row row = t.current.Get(rid);
  auto it = t.version_slot.find(rid);
  BIH_CHECK(it != t.version_slot.end());
  row.push_back(Value(t.versions[it->second].sys_from));
  row.push_back(Value(Period::kForever));
  return row;
}

RowId SystemBEngine::InsertCurrent(Table* t, Row user_row, Timestamp ts,
                                   int stmt) {
  RowId rid = t->current.Append(std::move(user_row));
  VersionMeta meta;
  meta.row_ref = rid;
  meta.sys_from = ts.micros();
  meta.txn_id = next_txn_id_;
  meta.stmt_type = stmt;
  t->versions.push_back(meta);
  t->version_slot[rid] = t->versions.size() - 1;
  const Row& stored = t->current.Get(rid);
  t->pk_current.Insert(KeyOf(*t, stored), rid);
  if (!t->current_indexes.empty()) {
    t->current_indexes.OnInsert(StoredRowOf(*t, rid), rid);
  }
  return rid;
}

void SystemBEngine::CloseVersion(Table* t, RowId rid, Timestamp ts, int stmt) {
  auto it = t->version_slot.find(rid);
  BIH_CHECK(it != t->version_slot.end());
  VersionMeta& meta = t->versions[it->second];
  // Same-transaction churn is not versioned.
  const bool visible = meta.sys_from != ts.micros();
  if (visible) {
    Row hist = t->current.Get(rid);
    if (!t->current_indexes.empty()) {
      t->current_indexes.OnDelete(StoredRowOf(*t, rid), rid);
    }
    hist.push_back(Value(meta.sys_from));
    hist.push_back(Value(ts));
    hist.push_back(Value(meta.txn_id));
    hist.push_back(Value(static_cast<int64_t>(stmt)));
    t->undo_log.push_back(std::move(hist));
  } else if (!t->current_indexes.empty()) {
    t->current_indexes.OnDelete(StoredRowOf(*t, rid), rid);
  }
  t->pk_current.Erase(KeyOf(*t, t->current.Get(rid)), rid);
  t->current.Delete(rid);
  meta.row_ref = kInvalidRowId;
  t->version_slot.erase(it);
  // Simulated background writer: drains the undo log once it fills up.
  // The unlucky transaction crossing the threshold pays for the batch,
  // which is what produces the 97th-percentile spikes of Fig. 16.
  if (t->undo_log.size() >= kUndoFlushThreshold) FlushUndo(t);
}

void SystemBEngine::FlushUndo(Table* t) {
  // Nothing pending and no compaction due: return before touching anything,
  // so a Scan-path call on a prepared table is a pure read (concurrent
  // snapshot readers rely on this — see PrepareForReads).
  if (t->undo_log.empty() &&
      !(t->versions.size() > 64 &&
        t->version_slot.size() * 2 < t->versions.size())) {
    return;
  }
  for (Row& row : t->undo_log) {
    RowId hid = t->history.Append(std::move(row));
    if (!t->history_indexes.empty()) {
      t->history_indexes.OnInsert(t->history.Get(hid), hid);
    }
  }
  t->undo_log.clear();
  // Compact the version partition when closed entries dominate it.
  if (t->versions.size() > 64 &&
      t->version_slot.size() * 2 < t->versions.size()) {
    std::vector<VersionMeta> live;
    live.reserve(t->version_slot.size());
    for (const VersionMeta& m : t->versions) {
      if (m.row_ref != kInvalidRowId) live.push_back(m);
    }
    t->versions = std::move(live);
    t->version_slot.clear();
    for (size_t i = 0; i < t->versions.size(); ++i) {
      t->version_slot[t->versions[i].row_ref] = i;
    }
  }
}

Status SystemBEngine::DoInsert(const std::string& table, Row row) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (static_cast<int>(row.size()) != t->def.schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for " + table);
  }
  ++next_txn_id_;
  InsertCurrent(t, std::move(row), MutationTime(), 0);
  return Status::OK();
}

Status SystemBEngine::DoUpdateCurrent(const std::string& table,
                                    const std::vector<Value>& key,
                                    const std::vector<ColumnAssignment>& set) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  ++next_txn_id_;
  std::vector<RowId> rids;
  t->pk_current.Lookup(key, [&](RowId rid) {
    rids.push_back(rid);
    return true;
  });
  if (rids.empty()) return Status::NotFound("no current version of key");
  for (RowId rid : rids) {
    Row user_row = t->current.Get(rid);
    for (const ColumnAssignment& a : set) {
      user_row[static_cast<size_t>(a.column)] = a.value;
    }
    CloseVersion(t, rid, ts, 1);
    InsertCurrent(t, std::move(user_row), ts, 1);
  }
  return Status::OK();
}

Status SystemBEngine::ApplySequenced(const std::string& table,
                                     const std::vector<Value>& key,
                                     int period_index, const Period& period,
                                     const std::vector<ColumnAssignment>& set,
                                     int mode) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (period_index < 0 ||
      period_index >= static_cast<int>(t->def.app_periods.size())) {
    return Status::InvalidArgument("no such application-time period");
  }
  const AppPeriodDef& ap =
      t->def.app_periods[static_cast<size_t>(period_index)];
  Timestamp ts = MutationTime();
  ++next_txn_id_;
  std::vector<RowId> rids;
  t->pk_current.Lookup(key, [&](RowId rid) {
    rids.push_back(rid);
    return true;
  });
  if (rids.empty()) return Status::NotFound("no current version of key");

  std::vector<Row> versions;
  versions.reserve(rids.size());
  for (RowId rid : rids) versions.push_back(t->current.Get(rid));

  SequencedOps ops;
  switch (mode) {
    case 0:
      ops = PlanSequencedUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
    case 1:
      ops = PlanSequencedDelete(versions, ap.begin_col, ap.end_col, period);
      break;
    default:
      ops = PlanOverwriteUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
  }
  for (size_t vi : ops.to_close) {
    CloseVersion(t, rids[vi], ts, mode == 1 ? 2 : 1);
  }
  for (Row& r : ops.to_insert) {
    InsertCurrent(t, std::move(r), ts, 1);
  }
  return Status::OK();
}

Status SystemBEngine::DoUpdateSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 0);
}

Status SystemBEngine::DoUpdateOverwrite(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 2);
}

Status SystemBEngine::DoDeleteCurrent(const std::string& table,
                                    const std::vector<Value>& key) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  ++next_txn_id_;
  std::vector<RowId> rids;
  t->pk_current.Lookup(key, [&](RowId rid) {
    rids.push_back(rid);
    return true;
  });
  if (rids.empty()) return Status::NotFound("no current version of key");
  for (RowId rid : rids) CloseVersion(t, rid, ts, 2);
  return Status::OK();
}

Status SystemBEngine::DoDeleteSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period) {
  return ApplySequenced(table, key, period_index, period, {}, 1);
}

void SystemBEngine::ScanCurrentMorsel(const Table& t, const ScanRequest& req,
                                      const TemporalCols& tc, int64_t now,
                                      uint64_t begin, uint64_t end,
                                      const std::atomic<bool>& stop,
                                      MorselOutput* out) const {
  for (RowId rid = begin; rid < end; ++rid) {
    if (MorselInterrupted(stop, req.ctx)) return;
    if (!t.current.IsLive(rid)) continue;
    ++out->rows_examined;
    Row row = t.current.Get(rid);
    auto it = t.version_slot.find(rid);
    row.push_back(Value(t.versions[it->second].sys_from));
    row.push_back(Value(Period::kForever));
    if (!MatchesTemporal(row, req.temporal, tc, now)) continue;
    if (!MatchesConstraints(row, req)) continue;
    out->rows.push_back(std::move(row));
    out->examined_at.push_back(out->rows_examined);
  }
}

void SystemBEngine::ScanReconstructionMorsel(
    const Table& t, const std::vector<int64_t>& sys_from_of,
    const ScanRequest& req, const TemporalCols& tc, int64_t now,
    uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
    MorselOutput* out) const {
  for (RowId rid = begin; rid < end; ++rid) {
    if (MorselInterrupted(stop, req.ctx)) return;
    if (!t.current.IsLive(rid)) continue;
    ++out->rows_examined;
    Row row = t.current.Get(rid);
    row.push_back(Value(sys_from_of[rid]));
    row.push_back(Value(Period::kForever));
    if (!MatchesTemporal(row, req.temporal, tc, now)) continue;
    if (!MatchesConstraints(row, req)) continue;
    out->rows.push_back(std::move(row));
    out->examined_at.push_back(out->rows_examined);
  }
}

void SystemBEngine::ScanHistoryMorsel(const Table& t, const ScanRequest& req,
                                      const TemporalCols& tc, int64_t now,
                                      uint64_t begin, uint64_t end,
                                      const std::atomic<bool>& stop,
                                      MorselOutput* out) const {
  const int scan_width = t.stored_schema.num_columns();
  for (RowId rid = begin; rid < end; ++rid) {
    if (MorselInterrupted(stop, req.ctx)) return;
    if (!t.history.IsLive(rid)) continue;
    ++out->rows_examined;
    const Row& hist_row = t.history.Get(rid);
    Row row(hist_row.begin(), hist_row.begin() + scan_width);
    if (!MatchesTemporal(row, req.temporal, tc, now)) continue;
    if (!MatchesConstraints(row, req)) continue;
    out->rows.push_back(std::move(row));
    out->examined_at.push_back(out->rows_examined);
  }
}

void SystemBEngine::ScanCurrentWithReconstruction(Table* t,
                                                  const ScanRequest& req,
                                                  const TemporalCols& tc,
                                                  const ParallelScanPlan& plan,
                                                  ExecStats* stats,
                                                  bool* stopped,
                                                  const RowCallback& cb) {
  ++stats->partitions_touched;  // current
  ++stats->partitions_touched;  // vertical temporal partition
  const int64_t now = clock_.Now().micros();

  // Sort/merge join between the current table and its vertical temporal
  // partition. The version records are in update order, so the join has to
  // sort them — this is the reconstruction overhead the paper attributes
  // System B's history-query penalty to (Sections 5.3.1, 5.5).
  std::vector<VersionMeta> sorted = t->versions;
  std::sort(sorted.begin(), sorted.end(),
            [](const VersionMeta& a, const VersionMeta& b) {
              return a.row_ref < b.row_ref;
            });
  std::vector<int64_t> sys_from_of(t->current.SlotCount(), 0);
  for (const VersionMeta& m : sorted) {
    if (m.row_ref != kInvalidRowId) sys_from_of[m.row_ref] = m.sys_from;
  }

  auto consider = [&](RowId rid, const Row& user_row) -> bool {
    if (req.ctx != nullptr && !req.ctx->KeepGoing()) {
      *stopped = true;
      return false;
    }
    ++stats->rows_examined;
    Row row = user_row;
    row.push_back(Value(sys_from_of[rid]));
    row.push_back(Value(Period::kForever));
    if (!MatchesTemporal(row, req.temporal, tc, now)) return true;
    if (!MatchesConstraints(row, req)) return true;
    ++stats->rows_output;
    if (!cb(row)) {
      *stopped = true;
      return false;
    }
    return true;
  };

  std::string index_name;
  if (t->current_indexes.TryIndexAccess(
          req, tc, t->current.LiveCount(), &index_name, [&](RowId rid) {
            if (!t->current.IsLive(rid)) return true;
            return consider(rid, t->current.Get(rid));
          })) {
    RecordIndexUse(stats, index_name);
    return;
  }
  if (plan.Engage(t->current.SlotCount())) {
    // The sorted sys_from_of join result is built once on the coordinator
    // above; the morsels only read it.
    ParallelScanPartition(
        plan, t->current.SlotCount(), req.ctx,
        [&](uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
            MorselOutput* out) {
          ScanReconstructionMorsel(*t, sys_from_of, req, tc, now, begin, end,
                                   stop, out);
        },
        &stats->rows_examined, &stats->rows_output, stopped, cb);
    return;
  }
  t->current.Scan(
      [&](RowId rid, const Row& row) { return consider(rid, row); });
}

void SystemBEngine::Scan(const ScanRequest& req, const RowCallback& cb) {
  Table* t = Find(req.table);
  BIH_CHECK_MSG(t != nullptr, "no table " + req.table);
  ExecStats local;
  ExecStats* stats = req.stats != nullptr ? req.stats : &local;
  *stats = ExecStats{};
  const TemporalCols tc = ResolveTemporalCols(t->def, req.temporal.app_period_index);
  const int64_t now = clock_.Now().micros();
  const ParallelScanPlan plan =
      ResolveScanPlan(req.exec);
  const bool needs_history =
      t->def.system_versioned &&
      req.temporal.system_time.kind != TemporalSelector::Kind::kImplicitCurrent;
  bool stopped = false;

  if (!needs_history) {
    // Fast path: current partition only; the system time of a current row
    // is fetched through the row-reference without a join.
    ++stats->partitions_touched;
    auto consider = [&](RowId rid, const Row& user_row) -> bool {
      if (req.ctx != nullptr && !req.ctx->KeepGoing()) return false;
      ++stats->rows_examined;
      Row row = user_row;
      auto it = t->version_slot.find(rid);
      row.push_back(Value(t->versions[it->second].sys_from));
      row.push_back(Value(Period::kForever));
      if (!MatchesTemporal(row, req.temporal, tc, now)) return true;
      if (!MatchesConstraints(row, req)) return true;
      ++stats->rows_output;
      return cb(row);
    };
    std::string index_name;
    if (t->current_indexes.TryIndexAccess(
            req, tc, t->current.LiveCount(), &index_name, [&](RowId rid) {
              if (!t->current.IsLive(rid)) return true;
              return consider(rid, t->current.Get(rid));
            })) {
      RecordIndexUse(stats, index_name);
      if (req.stats == nullptr) PublishStats(local);
      return;
    }
    if (!req.equals.empty()) {
      IndexKey key(t->def.primary_key.size());
      size_t matched = 0;
      for (size_t i = 0; i < t->def.primary_key.size(); ++i) {
        for (const auto& [c, v] : req.equals) {
          if (c == t->def.primary_key[i]) {
            key[i] = v;
            ++matched;
            break;
          }
        }
      }
      if (matched == t->def.primary_key.size() && matched > 0) {
        RecordIndexUse(stats, "pk_current(" + t->def.name + ")");
        t->pk_current.Lookup(key, [&](RowId rid) {
          return consider(rid, t->current.Get(rid));
        });
        if (req.stats == nullptr) PublishStats(local);
        return;
      }
    }
    if (plan.Engage(t->current.SlotCount())) {
      ParallelScanPartition(
          plan, t->current.SlotCount(), req.ctx,
          [&](uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
              MorselOutput* out) {
            ScanCurrentMorsel(*t, req, tc, now, begin, end, stop, out);
          },
          &stats->rows_examined, &stats->rows_output, &stopped, cb);
    } else {
      t->current.Scan(
          [&](RowId rid, const Row& row) { return consider(rid, row); });
    }
    if (req.stats == nullptr) PublishStats(local);
    return;
  }

  // System time involved: make pending history visible, reconstruct the
  // current partition's temporal information, then union with history.
  // Under the session layer PrepareForReads has already drained the undo
  // log, making this call a no-op on the concurrent read path.
  FlushUndo(t);
  ScanCurrentWithReconstruction(t, req, tc, plan, stats, &stopped, cb);

  if (!stopped) {
    ++stats->partitions_touched;
    stats->touched_history = true;
    const int scan_width = t->stored_schema.num_columns();
    auto consider_hist = [&](const Row& hist_row) -> bool {
      if (req.ctx != nullptr && !req.ctx->KeepGoing()) return false;
      ++stats->rows_examined;
      // History rows carry extra metadata columns; project to the scan
      // schema.
      Row row(hist_row.begin(), hist_row.begin() + scan_width);
      if (!MatchesTemporal(row, req.temporal, tc, now)) return true;
      if (!MatchesConstraints(row, req)) return true;
      ++stats->rows_output;
      return cb(row);
    };
    std::string index_name;
    if (t->history_indexes.TryIndexAccess(
            req, tc, t->history.LiveCount(), &index_name, [&](RowId rid) {
              if (!t->history.IsLive(rid)) return true;
              return consider_hist(t->history.Get(rid));
            })) {
      RecordIndexUse(stats, index_name);
    } else if (plan.Engage(t->history.SlotCount())) {
      ParallelScanPartition(
          plan, t->history.SlotCount(), req.ctx,
          [&](uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
              MorselOutput* out) {
            ScanHistoryMorsel(*t, req, tc, now, begin, end, stop, out);
          },
          &stats->rows_examined, &stats->rows_output, &stopped, cb);
    } else {
      t->history.Scan(
          [&](RowId, const Row& row) { return consider_hist(row); });
    }
  }
  if (req.stats == nullptr) PublishStats(local);
}

void SystemBEngine::PrepareForReads() {
  for (auto& [name, t] : tables_) FlushUndo(&t);
}

std::vector<std::string> SystemBEngine::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SystemBEngine::DoInstallVersion(const std::string& table,
                                       const Row& stored) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (static_cast<int>(stored.size()) != t->stored_schema.num_columns()) {
    return Status::InvalidArgument("snapshot row arity mismatch for " + table);
  }
  const size_t user_cols = static_cast<size_t>(t->def.schema.num_columns());
  const int64_t sys_from = stored[user_cols].AsInt();
  const int64_t sys_to = stored[user_cols + 1].AsInt();
  if (sys_to == Period::kForever) {
    Row user_row(stored.begin(), stored.begin() + static_cast<long>(user_cols));
    InsertCurrent(t, std::move(user_row), Timestamp(sys_from), /*stmt=*/0);
  } else {
    // Closed versions go straight to the history partition. The metadata
    // columns are zeroed: a restored store has no live transaction ids, and
    // scans never emit them (the scan schema stops at SYS_TIME_END).
    Row hist(stored.begin(), stored.begin() + static_cast<long>(user_cols));
    hist.push_back(Value(sys_from));
    hist.push_back(Value(sys_to));
    hist.push_back(Value(static_cast<int64_t>(0)));  // TXN_ID
    hist.push_back(Value(static_cast<int64_t>(0)));  // STMT_TYPE
    RowId hid = t->history.Append(std::move(hist));
    if (!t->history_indexes.empty()) {
      t->history_indexes.OnInsert(t->history.Get(hid), hid);
    }
  }
  return Status::OK();
}

TableStats SystemBEngine::GetTableStats(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  TableStats s;
  s.current_rows = t->current.LiveCount();
  s.history_rows = t->history.LiveCount();
  s.pending_undo = t->undo_log.size();
  return s;
}

}  // namespace bih
