#ifndef TPCBIH_STORAGE_COLUMN_TABLE_H_
#define TPCBIH_STORAGE_COLUMN_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"
#include "storage/row_table.h"

namespace bih {

// Columnar storage segment: one typed vector per column plus a per-row
// tombstone vector. Models the main/delta fragments of an in-memory column
// store (System C). Strings are dictionary-encoded per column, the classic
// column-store representation, which keeps scans cache-friendly.
class ColumnTable {
 public:
  explicit ColumnTable(Schema schema);

  const Schema& schema() const { return schema_; }

  RowId Append(const Row& row);

  size_t LiveCount() const { return live_count_; }
  size_t SlotCount() const { return size_; }

  bool IsLive(RowId id) const { return id < size_ && !deleted_[id]; }

  Value Get(RowId id, int col) const;
  Row GetRow(RowId id) const;

  // In-place single-cell update (System C uses this only for the hidden
  // system-time columns when invalidating a version).
  void Set(RowId id, int col, const Value& v);

  void Delete(RowId id);

  // Full scan over live rows, materializing only the requested columns into
  // `scratch` (arity = needed.size()). fn returning false stops the scan.
  void Scan(const std::vector<int>& needed,
            const std::function<bool(RowId, const Row&)>& fn) const;
  // Full-row scan.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  // Moves all rows of `from` into this table, clearing `from` (delta->main
  // merge). Row ids change; callers must not retain ids across a merge.
  void Absorb(ColumnTable* from);

  void Clear();

 private:
  struct StringColumn {
    std::vector<std::string> dict;
    std::vector<uint32_t> codes;
    std::unordered_map<std::string, uint32_t> lookup;
    // Dictionary interning is append-only; distinct values per column are
    // few relative to row count in the benchmark data.
    uint32_t Intern(const std::string& s);
  };
  using ColumnData = std::variant<std::vector<int64_t>, std::vector<double>,
                                  StringColumn>;

  Schema schema_;
  std::vector<ColumnData> columns_;
  std::vector<uint8_t> nulls_;  // size_ * num_columns bitmap, byte per cell
  std::vector<uint8_t> deleted_;
  size_t size_ = 0;
  size_t live_count_ = 0;
};

}  // namespace bih

#endif  // TPCBIH_STORAGE_COLUMN_TABLE_H_
