#ifndef TPCBIH_STORAGE_HASH_INDEX_H_
#define TPCBIH_STORAGE_HASH_INDEX_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "storage/btree_index.h"

namespace bih {

// Equality-only index from composite keys to row ids. Used where the
// workload needs point access but never ranges (e.g., the generator's
// current-version lookup); the executor's hash join builds an equivalent
// structure ad hoc.
class HashIndex {
 public:
  void Insert(const IndexKey& key, RowId rid);
  bool Erase(const IndexKey& key, RowId rid);
  void Lookup(const IndexKey& key, const std::function<bool(RowId)>& fn) const;
  size_t size() const { return size_; }

 private:
  struct KeyHash {
    size_t operator()(const IndexKey& k) const {
      size_t h = 0x345678;
      for (const Value& v : k) h = h * 1000003ULL ^ v.Hash();
      return h;
    }
  };
  struct KeyEq {
    bool operator()(const IndexKey& a, const IndexKey& b) const {
      return CompareKeys(a, b) == 0;
    }
  };
  std::unordered_map<IndexKey, std::vector<RowId>, KeyHash, KeyEq> map_;
  size_t size_ = 0;
};

}  // namespace bih

#endif  // TPCBIH_STORAGE_HASH_INDEX_H_
