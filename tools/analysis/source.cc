#include "analysis/source.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace bih {
namespace analysis {

namespace fs = std::filesystem;

bool HasSuffix(const std::string& s, const char* suf) {
  size_t n = std::strlen(suf);
  return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
}

bool IsSourceFile(const fs::path& p) {
  std::string s = p.filename().string();
  return HasSuffix(s, ".h") || HasSuffix(s, ".cc") || HasSuffix(s, ".cpp");
}

bool IsHeader(const std::string& path) { return HasSuffix(path, ".h"); }

std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    bool in_str = false, in_chr = false, in_line_comment = false;
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block_comment) {
        if (c == '*' && next == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (in_line_comment) continue;
      if (in_str) {
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          in_str = false;
          code[i] = '"';
        }
        continue;
      }
      if (in_chr) {
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          in_chr = false;
          code[i] = '\'';
        }
        continue;
      }
      if (c == '/' && next == '/') {
        in_line_comment = true;
        continue;
      }
      if (c == '/' && next == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"') {
        in_str = true;
        code[i] = '"';
        continue;
      }
      if (c == '\'') {
        // Heuristic: a digit separator (1'000'000) is not a char literal.
        bool digit_sep =
            i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) &&
            next != '\0' && std::isdigit(static_cast<unsigned char>(next));
        if (!digit_sep) {
          in_chr = true;
        }
        code[i] = '\'';
        continue;
      }
      code[i] = c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool LineAllows(const std::string& raw_line, const std::string& rule) {
  std::string needle = "bih-lint: allow(" + rule + ")";
  return raw_line.find(needle) != std::string::npos;
}

bool FileAllows(const FileText& f, const std::string& rule) {
  std::string needle = "bih-lint: allow-file(" + rule + ")";
  size_t limit = std::min<size_t>(f.raw.size(), 40);
  for (size_t i = 0; i < limit; ++i) {
    if (f.raw[i].find(needle) != std::string::npos) return true;
  }
  return false;
}

bool Suppressed(const FileText& f, size_t idx, const std::string& rule) {
  if (FileAllows(f, rule)) return true;
  if (idx < f.raw.size() && LineAllows(f.raw[idx], rule)) return true;
  if (idx > 0 && idx - 1 < f.raw.size() && LineAllows(f.raw[idx - 1], rule)) {
    return true;
  }
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

size_t FindToken(const std::string& line, const std::string& token,
                 size_t from) {
  size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

bool SkipDir(const fs::path& p) {
  std::string name = p.filename().string();
  return name == "build" || name.rfind("build-", 0) == 0 ||
         name == "fixtures" || (!name.empty() && name[0] == '.');
}

void Collect(const fs::path& root, std::vector<fs::path>* files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (IsSourceFile(root)) files->push_back(root);
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (it->is_directory() && SkipDir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      files->push_back(it->path());
    }
  }
}

FileText LoadFile(const fs::path& p) {
  FileText f;
  f.path = p.generic_string();
  std::ifstream in(p);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(line);
  }
  f.code = StripCommentsAndStrings(f.raw);
  return f;
}

std::vector<FileText> LoadTree(
    const std::string& root, const std::vector<std::string>& explicit_paths,
    const std::vector<std::string>& default_subdirs) {
  std::vector<fs::path> files;
  if (!explicit_paths.empty()) {
    for (const std::string& p : explicit_paths) Collect(p, &files);
  } else {
    for (const std::string& sub : default_subdirs) {
      Collect(fs::path(root) / sub, &files);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<FileText> texts;
  texts.reserve(files.size());
  for (const fs::path& p : files) texts.push_back(LoadFile(p));
  return texts;
}

int ReportFindings(std::vector<Finding>* findings, size_t files_scanned,
                   const char* tool_name) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });
  for (const Finding& f : *findings) {
    std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (findings->empty()) {
    std::printf("%s: %zu files clean\n", tool_name, files_scanned);
    return 0;
  }
  std::printf("%s: %zu finding(s) in %zu files\n", tool_name,
              findings->size(), files_scanned);
  return 1;
}

}  // namespace analysis
}  // namespace bih
