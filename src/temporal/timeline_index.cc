#include "temporal/timeline_index.h"

#include <algorithm>

namespace bih {

void TimelineIndex::Add(uint32_t version_id, const Period& period) {
  BIH_CHECK_MSG(!finalized_, "TimelineIndex::Add after Finalize");
  if (period.Empty()) return;
  max_id_ = std::max(max_id_, version_id);
  events_.push_back(Event{period.begin, version_id, true});
  if (!period.IsOpenEnded()) {
    events_.push_back(Event{period.end, version_id, false});
  }
}

void TimelineIndex::Finalize() {
  BIH_CHECK_MSG(!finalized_, "TimelineIndex already finalized");
  finalized_ = true;
  std::sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    // Invalidations before activations at the same instant (half-open
    // periods: a version ending at t is not visible at t).
    if (a.open != b.open) return !a.open && b.open;
    return a.version < b.version;
  });
  const size_t words = (static_cast<size_t>(max_id_) >> 6) + 1;
  std::vector<uint64_t> bits(words, 0);
  // Checkpoint 0: empty set before any event.
  checkpoints_.push_back(Checkpoint{Period::kBeginningOfTime, 0, bits});
  size_t since_checkpoint = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    SetBit(&bits, events_[i].version, events_[i].open);
    ++since_checkpoint;
    // Checkpoint at the next boundary between distinct times once enough
    // events accumulated, so a replay never re-applies same-time events.
    if (since_checkpoint >= checkpoint_interval_ && i + 1 < events_.size() &&
        events_[i].at != events_[i + 1].at) {
      checkpoints_.push_back(Checkpoint{events_[i + 1].at, i + 1, bits});
      since_checkpoint = 0;
    }
  }
}

void TimelineIndex::VisitActiveAt(
    int64_t t, const std::function<bool(uint32_t)>& fn) const {
  BIH_CHECK_MSG(finalized_, "TimelineIndex not finalized");
  // Last checkpoint whose position is at or before t.
  size_t lo = 0, hi = checkpoints_.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (checkpoints_[mid].at <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Checkpoint& cp = checkpoints_[lo];
  std::vector<uint64_t> bits = cp.bits;
  for (size_t i = cp.event_index; i < events_.size() && events_[i].at <= t;
       ++i) {
    SetBit(&bits, events_[i].version, events_[i].open);
  }
  for (size_t w = 0; w < bits.size(); ++w) {
    uint64_t word = bits[w];
    while (word != 0) {
      int bit = __builtin_ctzll(word);
      word &= word - 1;
      if (!fn(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)))) {
        return;
      }
    }
  }
}

void TimelineIndex::SweepIntervals(
    const std::function<bool(const Delta&)>& fn) const {
  BIH_CHECK_MSG(finalized_, "TimelineIndex not finalized");
  std::vector<uint32_t> activated, deactivated;
  size_t i = 0;
  int64_t active_count = 0;
  while (i < events_.size()) {
    int64_t at = events_[i].at;
    activated.clear();
    deactivated.clear();
    while (i < events_.size() && events_[i].at == at) {
      if (events_[i].open) {
        activated.push_back(events_[i].version);
      } else {
        deactivated.push_back(events_[i].version);
      }
      ++i;
    }
    active_count += static_cast<int64_t>(activated.size()) -
                    static_cast<int64_t>(deactivated.size());
    int64_t next = i < events_.size() ? events_[i].at : Period::kForever;
    if (active_count > 0 || !deactivated.empty()) {
      Delta d{Period(at, next), &activated, &deactivated};
      if (!fn(d)) return;
    }
  }
}

}  // namespace bih
