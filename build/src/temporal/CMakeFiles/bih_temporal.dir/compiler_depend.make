# Empty compiler generated dependencies file for bih_temporal.
# This may be replaced when dependencies are built.
