#include "engine/system_a.h"

#include <algorithm>

namespace bih {

namespace {

Schema StoredSchema(const TableDef& def) {
  return def.schema.Extend({{"SYS_TIME_START", ColumnType::kTimestamp},
                            {"SYS_TIME_END", ColumnType::kTimestamp}});
}

}  // namespace

SystemAEngine::Table* SystemAEngine::Find(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const SystemAEngine::Table* SystemAEngine::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status SystemAEngine::DoCreateTable(const TableDef& def) {
  if (tables_.count(def.name)) {
    return Status::AlreadyExists("table " + def.name);
  }
  tables_.emplace(def.name, Table(def, StoredSchema(def)));
  return Status::OK();
}

Status SystemAEngine::CreateIndex(const IndexSpec& spec) {
  Table* t = Find(spec.table);
  if (t == nullptr) return Status::NotFound("table " + spec.table);
  if (spec.type == IndexType::kRTree) {
    // Architecture A exposes only B-tree (and hash) structures, like the
    // commercial systems in the study (Section 5.2).
    return Status::Unimplemented("System A supports only B-tree indexes");
  }
  auto build = [&](RowTable* part) {
    return [part](const std::function<void(RowId, const Row&)>& fn) {
      part->Scan([&](RowId rid, const Row& row) {
        fn(rid, row);
        return true;
      });
    };
  };
  if (spec.partition == PartitionSel::kCurrent) {
    t->current_indexes.AddIndex(spec, build(&t->current));
  } else {
    t->history_indexes.AddIndex(spec, build(&t->history));
  }
  return Status::OK();
}

Status SystemAEngine::DropIndexes(const std::string& table) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  t->current_indexes.Clear();
  t->history_indexes.Clear();
  return Status::OK();
}

const TableDef& SystemAEngine::GetTableDef(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->def;
}

Schema SystemAEngine::ScanSchema(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->stored_schema;
}

IndexKey SystemAEngine::KeyOf(const Table& t, const Row& stored_row) const {
  IndexKey key;
  key.reserve(t.def.primary_key.size());
  for (int c : t.def.primary_key) {
    key.push_back(stored_row[static_cast<size_t>(c)]);
  }
  return key;
}

std::vector<RowId> SystemAEngine::CurrentVersionsOf(
    Table* t, const std::vector<Value>& key) {
  std::vector<RowId> rids;
  t->pk_current.Lookup(key, [&](RowId rid) {
    rids.push_back(rid);
    return true;
  });
  return rids;
}

RowId SystemAEngine::InsertCurrent(Table* t, Row user_row, Timestamp ts) {
  user_row.push_back(Value(ts));
  user_row.push_back(Value(Period::kForever));
  RowId rid = t->current.Append(std::move(user_row));
  const Row& stored = t->current.Get(rid);
  t->pk_current.Insert(KeyOf(*t, stored), rid);
  t->current_indexes.OnInsert(stored, rid);
  return rid;
}

void SystemAEngine::MoveToHistory(Table* t, RowId rid, Timestamp ts) {
  Row closed = t->current.Get(rid);
  t->pk_current.Erase(KeyOf(*t, closed), rid);
  t->current_indexes.OnDelete(closed, rid);
  t->current.Delete(rid);
  // A version opened and closed by the same transaction was never visible;
  // only the transaction's final state is versioned.
  if (closed[closed.size() - 2].AsInt() == ts.micros()) return;
  closed[closed.size() - 1] = Value(ts);  // SYS_TIME_END
  RowId hid = t->history.Append(std::move(closed));
  t->history_indexes.OnInsert(t->history.Get(hid), hid);
}

Status SystemAEngine::DoInsert(const std::string& table, Row row) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (static_cast<int>(row.size()) != t->def.schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for " + table);
  }
  InsertCurrent(t, std::move(row), MutationTime());
  return Status::OK();
}

Status SystemAEngine::DoUpdateCurrent(const std::string& table,
                                    const std::vector<Value>& key,
                                    const std::vector<ColumnAssignment>& set) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  std::vector<RowId> rids = CurrentVersionsOf(t, key);
  if (rids.empty()) return Status::NotFound("no current version of key");
  for (RowId rid : rids) {
    Row user_row(t->current.Get(rid).begin(),
                 t->current.Get(rid).end() - 2);  // strip system columns
    for (const ColumnAssignment& a : set) {
      user_row[static_cast<size_t>(a.column)] = a.value;
    }
    MoveToHistory(t, rid, ts);
    InsertCurrent(t, std::move(user_row), ts);
  }
  return Status::OK();
}

Status SystemAEngine::ApplySequenced(const std::string& table,
                                     const std::vector<Value>& key,
                                     int period_index, const Period& period,
                                     const std::vector<ColumnAssignment>& set,
                                     int mode) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (period_index < 0 ||
      period_index >= static_cast<int>(t->def.app_periods.size())) {
    return Status::InvalidArgument("no such application-time period");
  }
  const AppPeriodDef& ap =
      t->def.app_periods[static_cast<size_t>(period_index)];
  Timestamp ts = MutationTime();
  std::vector<RowId> rids = CurrentVersionsOf(t, key);
  if (rids.empty()) return Status::NotFound("no current version of key");

  std::vector<Row> versions;
  versions.reserve(rids.size());
  for (RowId rid : rids) versions.push_back(t->current.Get(rid));

  SequencedOps ops;
  switch (mode) {
    case 0:
      ops = PlanSequencedUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
    case 1:
      ops = PlanSequencedDelete(versions, ap.begin_col, ap.end_col, period);
      break;
    default:
      ops = PlanOverwriteUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
  }
  for (size_t vi : ops.to_close) MoveToHistory(t, rids[vi], ts);
  for (Row& r : ops.to_insert) {
    Row user_row(r.begin(), r.end() - 2);
    InsertCurrent(t, std::move(user_row), ts);
  }
  return Status::OK();
}

Status SystemAEngine::DoUpdateSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 0);
}

Status SystemAEngine::DoUpdateOverwrite(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 2);
}

Status SystemAEngine::DoDeleteCurrent(const std::string& table,
                                    const std::vector<Value>& key) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  std::vector<RowId> rids = CurrentVersionsOf(t, key);
  if (rids.empty()) return Status::NotFound("no current version of key");
  for (RowId rid : rids) MoveToHistory(t, rid, ts);
  return Status::OK();
}

Status SystemAEngine::DoDeleteSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period) {
  return ApplySequenced(table, key, period_index, period, {}, 1);
}

void SystemAEngine::ScanMorsel(const RowTable& part, const ScanRequest& req,
                               const TemporalCols& tc, int64_t now,
                               uint64_t begin, uint64_t end,
                               const std::atomic<bool>& stop,
                               MorselOutput* out) const {
  for (RowId rid = begin; rid < end; ++rid) {
    if (MorselInterrupted(stop, req.ctx)) return;
    if (!part.IsLive(rid)) continue;
    ++out->rows_examined;
    const Row& row = part.Get(rid);
    if (!MatchesTemporal(row, req.temporal, tc, now)) continue;
    if (!MatchesConstraints(row, req)) continue;
    out->rows.push_back(row);
    out->examined_at.push_back(out->rows_examined);
  }
}

void SystemAEngine::ScanPartition(const Table& t, bool is_history,
                                  const ScanRequest& req,
                                  const TemporalCols& tc,
                                  const IndexSet& tuning,
                                  const ParallelScanPlan& plan,
                                  ExecStats* stats, bool* stopped,
                                  const RowCallback& cb) {
  const RowTable& part = is_history ? t.history : t.current;
  ++stats->partitions_touched;
  if (is_history) stats->touched_history = true;
  const int64_t now = clock_.Now().micros();

  auto consider = [&](const Row& row) -> bool {
    if (req.ctx != nullptr && !req.ctx->KeepGoing()) {
      *stopped = true;
      return false;
    }
    ++stats->rows_examined;
    if (!MatchesTemporal(row, req.temporal, tc, now)) return true;
    if (!MatchesConstraints(row, req)) return true;
    ++stats->rows_output;
    if (!cb(row)) {
      *stopped = true;
      return false;
    }
    return true;
  };

  // Access path: tuning indexes first; the system key index on the current
  // partition next; table scan as the fallback.
  std::string index_name;
  auto emit_rid = [&](RowId rid) -> bool {
    if (!part.IsLive(rid)) return true;
    return consider(part.Get(rid));
  };
  if (tuning.TryIndexAccess(req, tc, part.LiveCount(), &index_name, emit_rid)) {
    RecordIndexUse(stats, index_name);
    return;
  }
  if (!is_history && !req.equals.empty()) {
    // The system-created key index serves full-key equality on current.
    IndexKey key(t.def.primary_key.size());
    size_t matched = 0;
    for (size_t i = 0; i < t.def.primary_key.size(); ++i) {
      for (const auto& [c, v] : req.equals) {
        if (c == t.def.primary_key[i]) {
          key[i] = v;
          ++matched;
          break;
        }
      }
    }
    if (matched == t.def.primary_key.size() && matched > 0) {
      RecordIndexUse(stats, "pk_current(" + t.def.name + ")");
      t.pk_current.Lookup(key, emit_rid);
      return;
    }
  }
  if (plan.Engage(part.SlotCount())) {
    ParallelScanPartition(
        plan, part.SlotCount(), req.ctx,
        [&](uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
            MorselOutput* out) {
          ScanMorsel(part, req, tc, now, begin, end, stop, out);
        },
        &stats->rows_examined, &stats->rows_output, stopped, cb);
    return;
  }
  part.Scan([&](RowId, const Row& row) { return consider(row); });
}

void SystemAEngine::Scan(const ScanRequest& req, const RowCallback& cb) {
  Table* t = Find(req.table);
  BIH_CHECK_MSG(t != nullptr, "no table " + req.table);
  ExecStats local;
  ExecStats* stats = req.stats != nullptr ? req.stats : &local;
  *stats = ExecStats{};
  const TemporalCols tc = ResolveTemporalCols(t->def, req.temporal.app_period_index);
  const ParallelScanPlan plan =
      ResolveScanPlan(req.exec);
  bool stopped = false;
  // Partition pruning: only the implicit-current case avoids the history
  // table. An explicit AS OF <now> is *not* recognized (Section 5.3.5).
  ScanPartition(*t, /*is_history=*/false, req, tc, t->current_indexes, plan,
                stats, &stopped, cb);
  if (!stopped && t->def.system_versioned &&
      req.temporal.system_time.kind != TemporalSelector::Kind::kImplicitCurrent) {
    ScanPartition(*t, /*is_history=*/true, req, tc, t->history_indexes, plan,
                  stats, &stopped, cb);
  }
  if (req.stats == nullptr) PublishStats(local);
}

std::vector<std::string> SystemAEngine::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SystemAEngine::DoInstallVersion(const std::string& table,
                                       const Row& stored) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (static_cast<int>(stored.size()) != t->stored_schema.num_columns()) {
    return Status::InvalidArgument("snapshot row arity mismatch for " + table);
  }
  const bool open = stored.back().AsInt() == Period::kForever;
  if (open) {
    RowId rid = t->current.Append(stored);
    const Row& r = t->current.Get(rid);
    t->pk_current.Insert(KeyOf(*t, r), rid);
    t->current_indexes.OnInsert(r, rid);
  } else {
    RowId hid = t->history.Append(stored);
    t->history_indexes.OnInsert(t->history.Get(hid), hid);
  }
  return Status::OK();
}

TableStats SystemAEngine::GetTableStats(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  TableStats s;
  s.current_rows = t->current.LiveCount();
  s.history_rows = t->history.LiveCount();
  return s;
}

}  // namespace bih
