#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/system_b.h"
#include "tpch/schema.h"

namespace bih {
namespace {

using Rows = std::vector<Row>;

// A small bitemporal table used throughout: ACCOUNT(id, owner, balance,
// valid period), system-versioned.
TableDef AccountDef() {
  TableDef def;
  def.name = "ACCOUNT";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"OWNER", ColumnType::kString},
                       {"BALANCE", ColumnType::kDouble},
                       {"VALID_BEGIN", ColumnType::kDate},
                       {"VALID_END", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"VALIDITY", 3, 4}};
  def.system_versioned = true;
  return def;
}

Row Account(int64_t id, const char* owner, double balance, int64_t b,
            int64_t e) {
  return {Value(id), Value(owner), Value(balance), Value(b), Value(e)};
}

constexpr int kSysFrom = 5, kSysTo = 6;

class EngineTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    engine_ = MakeEngine(GetParam());
    ASSERT_TRUE(engine_->CreateTable(AccountDef()).ok());
  }

  Rows Collect(const ScanRequest& req) {
    Rows out;
    engine_->Scan(req, [&](const Row& row) {
      out.push_back(row);
      return true;
    });
    return out;
  }

  Rows ScanWith(const TemporalScanSpec& spec) {
    ScanRequest req;
    req.table = "ACCOUNT";
    req.temporal = spec;
    Rows rows = Collect(req);
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    });
    return rows;
  }

  std::unique_ptr<TemporalEngine> engine_;
};

TEST_P(EngineTest, InsertAndCurrentScan) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 100.0, 0,
                                                 Period::kForever)).ok());
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(2, "bob", 200.0, 0,
                                                 Period::kForever)).ok());
  Rows rows = ScanWith(TemporalScanSpec::Current());
  ASSERT_EQ(2u, rows.size());
  EXPECT_EQ(1, rows[0][0].AsInt());
  EXPECT_EQ("ann", rows[0][1].AsString());
  // System-time columns are appended and populated.
  ASSERT_EQ(7u, rows[0].size());
  EXPECT_FALSE(rows[0][kSysFrom].is_null());
}

TEST_P(EngineTest, ScanSchemaShape) {
  Schema s = engine_->ScanSchema("ACCOUNT");
  EXPECT_EQ(7, s.num_columns());
  EXPECT_EQ("ID", s.column(0).name);
}

TEST_P(EngineTest, UpdateCreatesHistoryVersion) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 100.0, 0,
                                                 Period::kForever)).ok());
  ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                     {{2, Value(150.0)}}).ok());
  // Current sees the new balance only.
  Rows cur = ScanWith(TemporalScanSpec::Current());
  ASSERT_EQ(1u, cur.size());
  EXPECT_DOUBLE_EQ(150.0, cur[0][2].AsDouble());
  // Full system history sees both versions.
  TemporalScanSpec all;
  all.system_time = TemporalSelector::All();
  Rows hist = ScanWith(all);
  ASSERT_EQ(2u, hist.size());
  std::multiset<double> balances{hist[0][2].AsDouble(), hist[1][2].AsDouble()};
  EXPECT_EQ((std::multiset<double>{100.0, 150.0}), balances);
}

TEST_P(EngineTest, SystemTimeTravelSeesOldVersion) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 100.0, 0,
                                                 Period::kForever)).ok());
  Timestamp before = engine_->Now();
  ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                     {{2, Value(150.0)}}).ok());
  Rows old_rows = ScanWith(TemporalScanSpec::SystemAsOf(before.micros()));
  ASSERT_EQ(1u, old_rows.size());
  EXPECT_DOUBLE_EQ(100.0, old_rows[0][2].AsDouble());
  // The closed version's system interval ends at the update time.
  EXPECT_NE(Period::kForever, old_rows[0][kSysTo].AsInt());
}

TEST_P(EngineTest, DeleteRemovesFromCurrentKeepsHistory) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 100.0, 0,
                                                 Period::kForever)).ok());
  Timestamp before = engine_->Now();
  ASSERT_TRUE(engine_->DeleteCurrent("ACCOUNT", {Value(int64_t{1})}).ok());
  EXPECT_TRUE(ScanWith(TemporalScanSpec::Current()).empty());
  Rows old_rows = ScanWith(TemporalScanSpec::SystemAsOf(before.micros()));
  ASSERT_EQ(1u, old_rows.size());
  // Deleting a missing key reports NotFound.
  Status st = engine_->DeleteCurrent("ACCOUNT", {Value(int64_t{1})});
  EXPECT_EQ(Status::Code::kNotFound, st.code());
}

TEST_P(EngineTest, SequencedUpdateSplitsApplicationPeriod) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 100.0, 10, 30)).ok());
  ASSERT_TRUE(engine_->UpdateSequenced("ACCOUNT", {Value(int64_t{1})}, 0,
                                       Period(15, 25), {{2, Value(999.0)}})
                  .ok());
  Rows cur = ScanWith(TemporalScanSpec::Current());
  ASSERT_EQ(3u, cur.size());  // [10,15) old, [15,25) new, [25,30) old
  // App time travel inside the window sees the new value.
  Rows at20 = ScanWith(TemporalScanSpec::AppAsOf(20));
  ASSERT_EQ(1u, at20.size());
  EXPECT_DOUBLE_EQ(999.0, at20[0][2].AsDouble());
  Rows at12 = ScanWith(TemporalScanSpec::AppAsOf(12));
  ASSERT_EQ(1u, at12.size());
  EXPECT_DOUBLE_EQ(100.0, at12[0][2].AsDouble());
  // Bitemporal: before the update (system time), the app split is invisible.
}

TEST_P(EngineTest, SequencedDeleteLeavesGap) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 100.0, 10, 30)).ok());
  ASSERT_TRUE(engine_->DeleteSequenced("ACCOUNT", {Value(int64_t{1})}, 0,
                                       Period(15, 25)).ok());
  EXPECT_EQ(2u, ScanWith(TemporalScanSpec::Current()).size());
  EXPECT_TRUE(ScanWith(TemporalScanSpec::AppAsOf(20)).empty());
  EXPECT_EQ(1u, ScanWith(TemporalScanSpec::AppAsOf(12)).size());
  EXPECT_EQ(1u, ScanWith(TemporalScanSpec::AppAsOf(27)).size());
}

TEST_P(EngineTest, OverwriteMergesWindow) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 100.0, 10, 20)).ok());
  ASSERT_TRUE(engine_->UpdateOverwrite("ACCOUNT", {Value(int64_t{1})}, 0,
                                       Period(15, 18), {{2, Value(5.0)}})
                  .ok());
  Rows at16 = ScanWith(TemporalScanSpec::AppAsOf(16));
  ASSERT_EQ(1u, at16.size());
  EXPECT_DOUBLE_EQ(5.0, at16[0][2].AsDouble());
  // Outside the overwrite window the old value survives.
  Rows at12 = ScanWith(TemporalScanSpec::AppAsOf(12));
  ASSERT_EQ(1u, at12.size());
  EXPECT_DOUBLE_EQ(100.0, at12[0][2].AsDouble());
  Rows at19 = ScanWith(TemporalScanSpec::AppAsOf(19));
  ASSERT_EQ(1u, at19.size());
  EXPECT_DOUBLE_EQ(100.0, at19[0][2].AsDouble());
}

TEST_P(EngineTest, BitemporalPointPoint) {
  // Build a bitemporal rectangle pattern: update app window after a system
  // version existed.
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 1.0, 0, 100)).ok());
  Timestamp t1 = engine_->Now();
  ASSERT_TRUE(engine_->UpdateSequenced("ACCOUNT", {Value(int64_t{1})}, 0,
                                       Period(50, 100), {{2, Value(2.0)}})
                  .ok());
  // (sys=t1, app=60): the old value, since the split happened after t1.
  Rows r = ScanWith(TemporalScanSpec::BothAsOf(t1.micros(), 60));
  ASSERT_EQ(1u, r.size());
  EXPECT_DOUBLE_EQ(1.0, r[0][2].AsDouble());
  // (sys=now, app=60): the new value.
  r = ScanWith(TemporalScanSpec::BothAsOf(engine_->Now().micros(), 60));
  ASSERT_EQ(1u, r.size());
  EXPECT_DOUBLE_EQ(2.0, r[0][2].AsDouble());
  // (sys=now, app=10): still the old value (outside the window).
  r = ScanWith(TemporalScanSpec::BothAsOf(engine_->Now().micros(), 10));
  ASSERT_EQ(1u, r.size());
  EXPECT_DOUBLE_EQ(1.0, r[0][2].AsDouble());
}

TEST_P(EngineTest, KeyEqualityLookup) {
  for (int64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(engine_->Insert("ACCOUNT",
                                Account(i, "x", double(i), 0, Period::kForever))
                    .ok());
  }
  ScanRequest req;
  req.table = "ACCOUNT";
  req.equals = {{0, Value(int64_t{7})}};
  Rows rows = Collect(req);
  ASSERT_EQ(1u, rows.size());
  EXPECT_DOUBLE_EQ(7.0, rows[0][2].AsDouble());
}

TEST_P(EngineTest, RangeConstraint) {
  for (int64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(engine_->Insert("ACCOUNT",
                                Account(i, "x", double(i), 0, Period::kForever))
                    .ok());
  }
  ScanRequest req;
  req.table = "ACCOUNT";
  req.range_col = 2;
  req.range_lo = Value(10.0);
  req.range_hi = Value(12.0);
  Rows rows = Collect(req);
  EXPECT_EQ(3u, rows.size());
}

TEST_P(EngineTest, ImplicitVsExplicitCurrentSameResult) {
  for (int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(engine_->Insert("ACCOUNT",
                                Account(i, "x", double(i), 0, Period::kForever))
                    .ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(i)},
                                         {{2, Value(double(i) * 10)}})
                      .ok());
    }
  }
  Rows implicit_rows = ScanWith(TemporalScanSpec::Current());
  Rows explicit_rows =
      ScanWith(TemporalScanSpec::SystemAsOf(engine_->Now().micros()));
  ASSERT_EQ(implicit_rows.size(), explicit_rows.size());
  for (size_t i = 0; i < implicit_rows.size(); ++i) {
    EXPECT_EQ(0, implicit_rows[i][0].Compare(explicit_rows[i][0]));
    EXPECT_EQ(0, implicit_rows[i][2].Compare(explicit_rows[i][2]));
  }
}

TEST_P(EngineTest, ImplicitCurrentAvoidsHistoryExplicitDoesNot) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "ann", 1.0, 0,
                                                 Period::kForever)).ok());
  ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                     {{2, Value(2.0)}}).ok());
  // System C keeps closed versions in the delta until the merge relocates
  // them to the history partition; force the merge so the partitions are in
  // their steady state.
  engine_->Maintain();
  ScanWith(TemporalScanSpec::Current());
  ExecStats implicit_stats = engine_->last_stats();
  ScanWith(TemporalScanSpec::SystemAsOf(engine_->Now().micros()));
  ExecStats explicit_stats = engine_->last_stats();
  if (GetParam() == "D") {
    // No current/history split: both plans scan the single table.
    EXPECT_EQ(implicit_stats.rows_examined, explicit_stats.rows_examined);
  } else {
    // The explicit AS OF is not recognized as "current": it reads the
    // history partition too (Fig. 6).
    EXPECT_TRUE(explicit_stats.touched_history);
    EXPECT_FALSE(implicit_stats.touched_history);
    EXPECT_GT(explicit_stats.rows_examined, implicit_stats.rows_examined);
  }
}

TEST_P(EngineTest, TransactionsShareCommitTimestamp) {
  engine_->Begin();
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "a", 1.0, 0,
                                                 Period::kForever)).ok());
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(2, "b", 2.0, 0,
                                                 Period::kForever)).ok());
  ASSERT_TRUE(engine_->Commit().ok());
  TemporalScanSpec all;
  all.system_time = TemporalSelector::All();
  Rows rows = ScanWith(all);
  ASSERT_EQ(2u, rows.size());
  EXPECT_EQ(rows[0][kSysFrom].AsInt(), rows[1][kSysFrom].AsInt());
}

TEST_P(EngineTest, StatsTrackPartitionsAndHistorySize) {
  ASSERT_TRUE(engine_->Insert("ACCOUNT", Account(1, "a", 1.0, 0,
                                                 Period::kForever)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                       {{2, Value(double(i))}}).ok());
  }
  engine_->Maintain();  // System C: force merge so history is materialized
  TableStats ts = engine_->GetTableStats("ACCOUNT");
  EXPECT_EQ(1u, ts.current_rows);
  EXPECT_EQ(5u, ts.history_rows + ts.pending_undo);
}

TEST_P(EngineTest, IndexedScanMatchesUnindexed) {
  for (int64_t i = 1; i <= 200; ++i) {
    ASSERT_TRUE(engine_->Insert("ACCOUNT",
                                Account(i, "x", double(i % 17), i % 40,
                                        (i % 40) + 10))
                    .ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(i)},
                                         {{2, Value(double(i % 7))}}).ok());
    }
  }
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::AsOf(engine_->Now().micros());
  spec.app_time = TemporalSelector::AsOf(5);
  Rows before = ScanWith(spec);

  IndexSpec is;
  is.table = "ACCOUNT";
  is.partition = PartitionSel::kCurrent;
  is.columns = {3};  // VALID_BEGIN
  is.type = IndexType::kBTree;
  is.name = "acct_app";
  ASSERT_TRUE(engine_->CreateIndex(is).ok());
  is.partition = PartitionSel::kHistory;
  is.name = "acct_app_hist";
  ASSERT_TRUE(engine_->CreateIndex(is).ok());

  Rows after = ScanWith(spec);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    for (size_t c = 0; c < before[i].size(); ++c) {
      EXPECT_EQ(0, before[i][c].Compare(after[i][c]));
    }
  }
  ASSERT_TRUE(engine_->DropIndexes("ACCOUNT").ok());
  Rows dropped = ScanWith(spec);
  EXPECT_EQ(before.size(), dropped.size());
}

// Every engine must fill ExecStats.used_index / index_name consistently:
// used_index is true when any scanned partition was served by an index, and
// index_name then lists the chosen index of each served partition in scan
// order, comma-separated (see ExecStats). A full scan with no indexes
// reports neither.
TEST_P(EngineTest, KeyLookupReportsPrimaryKeyFastPath) {
  for (int64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(engine_->Insert("ACCOUNT",
                                Account(i, "x", double(i), 0, Period::kForever))
                    .ok());
  }
  ScanRequest req;
  req.table = "ACCOUNT";
  req.equals = {{0, Value(int64_t{7})}};
  ExecStats stats;
  req.stats = &stats;
  Rows rows = Collect(req);
  ASSERT_EQ(1u, rows.size());
  if (GetParam() == "A" || GetParam() == "B") {
    // Current-partition primary-key hash lookup.
    EXPECT_TRUE(stats.used_index);
    EXPECT_EQ("pk_current(ACCOUNT)", stats.index_name);
  } else {
    // System C ignores index structures (Section 5.3.2); System D's single
    // heap has no built-in key access path.
    EXPECT_FALSE(stats.used_index);
    EXPECT_EQ("", stats.index_name);
  }
}

TEST_P(EngineTest, TuningIndexesReportedPerPartition) {
  for (int64_t i = 1; i <= 200; ++i) {
    ASSERT_TRUE(engine_->Insert("ACCOUNT",
                                Account(i, "x", double(i % 17), i % 40,
                                        (i % 40) + 10))
                    .ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(i)},
                                         {{2, Value(double(i % 7))}}).ok());
    }
  }
  engine_->Maintain();
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::AsOf(engine_->Now().micros());
  spec.app_time = TemporalSelector::AsOf(5);
  ScanRequest req;
  req.table = "ACCOUNT";
  req.temporal = spec;

  // No indexes yet: a full scan must not claim one.
  ExecStats before;
  req.stats = &before;
  Collect(req);
  EXPECT_FALSE(before.used_index);
  EXPECT_EQ("", before.index_name);

  IndexSpec is;
  is.table = "ACCOUNT";
  is.partition = PartitionSel::kCurrent;
  is.columns = {3};  // VALID_BEGIN
  is.type = IndexType::kBTree;
  is.name = "acct_app";
  ASSERT_TRUE(engine_->CreateIndex(is).ok());
  is.partition = PartitionSel::kHistory;
  is.name = "acct_app_hist";
  ASSERT_TRUE(engine_->CreateIndex(is).ok());

  ExecStats after;
  req.stats = &after;
  Collect(req);
  if (GetParam() == "C") {
    // Accepted but never consulted.
    EXPECT_FALSE(after.used_index);
    EXPECT_EQ("", after.index_name);
  } else if (GetParam() == "D") {
    // One physical partition, so one chosen index.
    EXPECT_TRUE(after.used_index);
    EXPECT_EQ("acct_app", after.index_name);
  } else {
    // Current then history, in scan order.
    EXPECT_TRUE(after.used_index);
    EXPECT_EQ("acct_app,acct_app_hist", after.index_name);
  }
}

TEST_P(EngineTest, UnknownTableErrors) {
  EXPECT_EQ(Status::Code::kNotFound,
            engine_->Insert("NOPE", {}).code());
  EXPECT_EQ(Status::Code::kAlreadyExists,
            engine_->CreateTable(AccountDef()).code());
}

TEST_P(EngineTest, ArityMismatchRejected) {
  Status st = engine_->Insert("ACCOUNT", {Value(int64_t{1})});
  EXPECT_EQ(Status::Code::kInvalidArgument, st.code());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values("A", "B", "C", "D"));

TEST(SystemDTest, BulkLoadWithExplicitTimestamps) {
  auto engine = MakeEngine("D");
  ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
  std::vector<Row> rows;
  // A closed historic version and its open successor.
  Row v1 = Account(1, "ann", 1.0, 0, Period::kForever);
  v1.push_back(Value(int64_t{1000}));
  v1.push_back(Value(int64_t{2000}));
  Row v2 = Account(1, "ann", 2.0, 0, Period::kForever);
  v2.push_back(Value(int64_t{2000}));
  v2.push_back(Value(Period::kForever));
  rows.push_back(v1);
  rows.push_back(v2);
  ASSERT_TRUE(engine->BulkLoad("ACCOUNT", rows).ok());
  ScanRequest req;
  req.table = "ACCOUNT";
  req.temporal = TemporalScanSpec::SystemAsOf(1500);
  int n = 0;
  double bal = 0;
  engine->Scan(req, [&](const Row& row) {
    ++n;
    bal = row[2].AsDouble();
    return true;
  });
  EXPECT_EQ(1, n);
  EXPECT_DOUBLE_EQ(1.0, bal);
}

TEST(SystemDTest, BulkLoadRejectedByNativeEngines) {
  for (const std::string letter : {"A", "B", "C"}) {
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
    Status st = engine->BulkLoad("ACCOUNT", {});
    EXPECT_EQ(Status::Code::kUnimplemented, st.code()) << letter;
  }
}

TEST(SystemDTest, GistIndexAccepted) {
  auto engine = MakeEngine("D");
  ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
  IndexSpec is;
  is.table = "ACCOUNT";
  is.columns = {3, 4};
  is.type = IndexType::kRTree;
  is.name = "gist";
  EXPECT_TRUE(engine->CreateIndex(is).ok());
  // The native engines refuse R-trees.
  for (const std::string letter : {"A", "B", "C"}) {
    auto other = MakeEngine(letter);
    ASSERT_TRUE(other->CreateTable(AccountDef()).ok());
    EXPECT_EQ(Status::Code::kUnimplemented, other->CreateIndex(is).code());
  }
}

TEST(SystemCTest, MergeRelocatesInvalidatedVersions) {
  auto engine = MakeEngine("C");
  ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
  ASSERT_TRUE(engine->Insert("ACCOUNT", Account(1, "a", 1.0, 0,
                                                Period::kForever)).ok());
  ASSERT_TRUE(engine->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                    {{2, Value(2.0)}}).ok());
  TableStats before = engine->GetTableStats("ACCOUNT");
  EXPECT_EQ(0u, before.history_rows);  // still in delta
  engine->Maintain();
  TableStats after = engine->GetTableStats("ACCOUNT");
  EXPECT_EQ(1u, after.history_rows);
  EXPECT_EQ(1u, after.current_rows);
  // Data still correct after the merge.
  ScanRequest req;
  req.table = "ACCOUNT";
  int n = 0;
  engine->Scan(req, [&](const Row& row) {
    ++n;
    EXPECT_DOUBLE_EQ(2.0, row[2].AsDouble());
    return true;
  });
  EXPECT_EQ(1, n);
}

TEST(SystemBTest, UndoLogFlushesAtThreshold) {
  auto engine = MakeEngine("B");
  ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
  ASSERT_TRUE(engine->Insert("ACCOUNT", Account(1, "a", 1.0, 0,
                                                Period::kForever)).ok());
  for (size_t i = 0; i < SystemBEngine::kUndoFlushThreshold + 8; ++i) {
    ASSERT_TRUE(engine->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                      {{2, Value(double(i))}}).ok());
  }
  TableStats ts = engine->GetTableStats("ACCOUNT");
  // The background writer drained at least once.
  EXPECT_GT(ts.history_rows, 0u);
}

}  // namespace
}  // namespace bih
