#ifndef TPCBIH_COMMON_RNG_H_
#define TPCBIH_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace bih {

// Deterministic pseudo-random number generator (xoshiro256** seeded via
// splitmix64). All data generation in the benchmark flows through this class
// so that a given (seed, scale) pair always produces bit-identical workloads,
// which is what makes experiments repeatable across engines.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  void Seed(uint64_t seed);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  // Index drawn according to `weights` (need not be normalized; all >= 0,
  // sum > 0). Used for the update-scenario mix of Table 1.
  size_t WeightedChoice(const std::vector<double>& weights);

  // Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  // Zipf-distributed integer in [1, n] with skew parameter `theta` in (0, 1).
  // Used for non-uniform access patterns along the application time axis.
  int64_t Zipf(int64_t n, double theta);

 private:
  uint64_t state_[4];
  // Cached Zipf normalization constants, recomputed when (n, theta) change.
  int64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace bih

#endif  // TPCBIH_COMMON_RNG_H_
