# Empty dependencies file for bih_storage.
# This may be replaced when dependencies are built.
