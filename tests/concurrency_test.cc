// Tests for the concurrent session layer: cooperative deadlines and
// cancellation inside the engine scan loops, admission control with load
// shedding, pinned-snapshot reads, and a chaos soak that runs readers and
// writers against every engine at once. Run under -DBIH_SANITIZE=thread to
// get the data-race guarantees these tests claim.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/query_context.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "reference_model.h"
#include "server/session.h"

namespace bih {
namespace {

using std::chrono::milliseconds;

// An engine with `n` open ITEM rows, keys 1..n.
std::unique_ptr<TemporalEngine> MakeLoadedEngine(const std::string& letter,
                                                 int n) {
  std::unique_ptr<TemporalEngine> e = MakeEngine(letter);
  EXPECT_TRUE(e->CreateTable(FuzzItemDef()).ok());
  for (int i = 1; i <= n; ++i) {
    Row row{Value(int64_t{i}), Value(double(i)), Value("x"), Value(int64_t{0}),
            Value(Period::kForever)};
    EXPECT_TRUE(e->Insert("ITEM", std::move(row)).ok());
  }
  return e;
}

ScanRequest FullHistoryScan() {
  ScanRequest req;
  req.table = "ITEM";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  return req;
}

TEST(QueryContextTest, CancelIsStickyAndReported) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.KeepGoing());
  EXPECT_TRUE(ctx.CheckNow().ok());
  ctx.Cancel();
  EXPECT_FALSE(ctx.KeepGoing());
  EXPECT_EQ(Status::Code::kCancelled, ctx.status().code());
  EXPECT_FALSE(ctx.KeepGoing());  // sticky
}

TEST(QueryContextTest, ExpiredDeadlineDetectedByCheckNow) {
  QueryContext ctx(QueryContext::Clock::now() - milliseconds(5));
  EXPECT_EQ(Status::Code::kDeadlineExceeded, ctx.CheckNow().code());
  EXPECT_FALSE(ctx.KeepGoing());
}

TEST(QueryContextTest, CancelAfterDeadlineAttributedToDeadline) {
  // The watchdog cancels overdue queries; the context must report that as
  // a deadline, not a client cancellation.
  QueryContext ctx(QueryContext::Clock::now() - milliseconds(5));
  ctx.Cancel();
  EXPECT_FALSE(ctx.KeepGoing());
  EXPECT_EQ(Status::Code::kDeadlineExceeded, ctx.status().code());
}

TEST(AdmissionTest, ShedsWithRetryHintWhenQueueFull) {
  AdmissionConfig cfg;
  cfg.max_inflight = 1;
  cfg.max_queued = 0;
  AdmissionController ac(cfg);
  ASSERT_TRUE(ac.Admit(nullptr).ok());
  Status second = ac.Admit(nullptr);
  EXPECT_EQ(Status::Code::kResourceExhausted, second.code());
  EXPECT_NE(std::string::npos, second.message().find("retry"));
  ac.Release();
  EXPECT_TRUE(ac.Admit(nullptr).ok());
  ac.Release();
  AdmissionController::Stats stats = ac.GetStats();
  EXPECT_EQ(2u, stats.admitted);
  EXPECT_EQ(1u, stats.shed);
  EXPECT_EQ(0, stats.inflight);
}

TEST(AdmissionTest, RetryAfterMsRoundTripsTheConfiguredHint) {
  // The shed status carries "retry after Nms" in its text; RetryAfterMs is
  // the one sanctioned parser, and the recovered value must be exactly the
  // configured retry_after — the network layer forwards it as a structured
  // field, so a drifting format here silently zeroes every client backoff.
  AdmissionConfig cfg;
  cfg.max_inflight = 1;
  cfg.max_queued = 0;
  cfg.retry_after = milliseconds(37);
  AdmissionController ac(cfg);
  ASSERT_TRUE(ac.Admit(nullptr).ok());
  Status shed = ac.Admit(nullptr);
  ASSERT_EQ(Status::Code::kResourceExhausted, shed.code());
  EXPECT_EQ(37u, AdmissionController::RetryAfterMs(shed)) << shed.ToString();
  ac.Release();

  // Any other status — even one whose text happens to contain the marker —
  // yields 0: the parser keys on the code first.
  EXPECT_EQ(0u, AdmissionController::RetryAfterMs(Status::OK()));
  EXPECT_EQ(0u, AdmissionController::RetryAfterMs(
                    Status::Internal("please retry after 99ms")));
  // A kResourceExhausted without the marker parses as "no hint".
  EXPECT_EQ(0u, AdmissionController::RetryAfterMs(
                    Status::ResourceExhausted("queue full")));
}

TEST(AdmissionTest, QueuedWaiterAbandonsOnDeadline) {
  AdmissionConfig cfg;
  cfg.max_inflight = 1;
  cfg.max_queued = 4;
  AdmissionController ac(cfg);
  ASSERT_TRUE(ac.Admit(nullptr).ok());  // occupy the only slot
  QueryContext ctx(QueryContext::Clock::now() + milliseconds(20));
  Status st = ac.Admit(&ctx);  // queues, then gives up at the deadline
  EXPECT_EQ(Status::Code::kDeadlineExceeded, st.code());
  ac.Release();
  EXPECT_EQ(1u, ac.GetStats().abandoned_queued);
}

class PerEngineTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Engines, PerEngineTest,
                         ::testing::ValuesIn(AllEngineLetters()));

TEST_P(PerEngineTest, ScanStopsPromptlyOnCancel) {
  std::unique_ptr<TemporalEngine> e = MakeLoadedEngine(GetParam(), 200);
  QueryContext ctx;
  ScanRequest req = FullHistoryScan();
  req.ctx = &ctx;
  std::vector<Row> got;
  e->Scan(req, [&](const Row& row) {
    got.push_back(row);
    if (got.size() == 3) ctx.Cancel();
    return true;
  });
  // The cancel is observed at the very next per-row check.
  EXPECT_EQ(3u, got.size());
  EXPECT_EQ(Status::Code::kCancelled, ctx.status().code());
  // An interrupted read leaves the engine untouched and usable.
  ScanRequest again = FullHistoryScan();
  size_t full = 0;
  e->Scan(again, [&](const Row&) {
    ++full;
    return true;
  });
  EXPECT_EQ(200u, full);
}

TEST_P(PerEngineTest, ScanStopsOnExpiredDeadline) {
  std::unique_ptr<TemporalEngine> e = MakeLoadedEngine(GetParam(), 200);
  QueryContext ctx(QueryContext::Clock::now() - milliseconds(1));
  ScanRequest req = FullHistoryScan();
  req.ctx = &ctx;
  size_t emitted = 0;
  e->Scan(req, [&](const Row&) {
    ++emitted;
    return true;
  });
  // The clock is only sampled every kClockCheckInterval rows, so a bounded
  // prefix may be emitted before the deadline is noticed.
  EXPECT_LT(emitted, 200u);
  EXPECT_EQ(Status::Code::kDeadlineExceeded, ctx.status().code());
}

TEST_P(PerEngineTest, SnapshotReadsAreRepeatable) {
  SessionManager server(MakeLoadedEngine(GetParam(), 50));
  SessionManager::Snapshot snap = server.OpenSnapshot();
  std::vector<Row> before;
  ASSERT_TRUE(server.ReadAt(snap, FullHistoryScan(), nullptr, &before).ok());
  ASSERT_EQ(50u, before.size());

  // Concurrent-era writes: close half the versions, add new keys.
  for (int i = 1; i <= 25; ++i) {
    ASSERT_TRUE(server
                    .UpdateCurrent("ITEM", {Value(int64_t{i})},
                                   {{1, Value(double(1000 + i))}})
                    .ok());
  }
  ASSERT_TRUE(server.DeleteCurrent("ITEM", {Value(int64_t{50})}).ok());

  // The pinned snapshot still answers exactly as before the writes, down to
  // the system-time columns of versions those writes closed.
  std::vector<Row> after;
  ASSERT_TRUE(server.ReadAt(snap, FullHistoryScan(), nullptr, &after).ok());
  std::vector<Row> a = Canonical(std::move(before));
  std::vector<Row> b = Canonical(std::move(after));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t c = 0; c < a[i].size(); ++c) {
      ASSERT_EQ(0, a[i][c].Compare(b[i][c])) << "row " << i << " col " << c;
    }
  }

  // A fresh snapshot sees the new state: 25 closed versions re-inserted
  // plus the delete; current count is 49.
  ScanRequest current;
  current.table = "ITEM";
  std::vector<Row> now;
  ASSERT_TRUE(server.Read(current, nullptr, &now).ok());
  EXPECT_EQ(49u, now.size());
}

TEST(SessionTest, ExpiredDeadlineRejectedBeforeAdmission) {
  SessionManager server(MakeLoadedEngine("A", 10));
  QueryContext ctx(QueryContext::Clock::now() - milliseconds(1));
  std::vector<Row> rows;
  Status st = server.Read(FullHistoryScan(), &ctx, &rows);
  EXPECT_EQ(Status::Code::kDeadlineExceeded, st.code());
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(1u, server.GetStats().reads_deadline);
  EXPECT_EQ(0u, server.GetStats().admission.admitted);
}

TEST(SessionTest, ReaderBlockedBehindLongWriteHonoursDeadline) {
  SessionConfig cfg;
  cfg.watchdog_period = milliseconds(1);
  SessionManager server(MakeLoadedEngine("A", 10), cfg);
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    Status wst = server.Write([&](TemporalEngine&) {
      writer_in.store(true);
      std::this_thread::sleep_for(milliseconds(80));
      return Status::OK();
    });
    EXPECT_TRUE(wst.ok()) << wst.ToString();
  });
  while (!writer_in.load()) std::this_thread::yield();
  QueryContext ctx(QueryContext::Clock::now() + milliseconds(10));
  std::vector<Row> rows;
  Status st = server.Read(FullHistoryScan(), &ctx, &rows);
  EXPECT_EQ(Status::Code::kDeadlineExceeded, st.code());
  EXPECT_TRUE(rows.empty());
  writer.join();
}

TEST(SessionTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  SessionConfig cfg;
  cfg.admission.max_inflight = 1;
  cfg.admission.max_queued = 1;
  SessionManager server(MakeLoadedEngine("A", 10), cfg);
  // A long write keeps the one admitted reader blocked, so the arrival wave
  // piles onto the bounded queue and everything beyond it must shed.
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    Status wst = server.Write([&](TemporalEngine&) {
      writer_in.store(true);
      std::this_thread::sleep_for(milliseconds(100));
      return Status::OK();
    });
    EXPECT_TRUE(wst.ok()) << wst.ToString();
  });
  while (!writer_in.load()) std::this_thread::yield();

  const int kReaders = 8;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      std::vector<Row> rows;
      Status st = server.Read(FullHistoryScan(), nullptr, &rows);
      if (st.ok()) {
        ++ok;
      } else if (st.code() == Status::Code::kResourceExhausted) {
        ++shed;
        EXPECT_TRUE(rows.empty());
      } else {
        ++other;
      }
    });
  }
  for (std::thread& r : readers) r.join();
  writer.join();
  // With one slot and one queue entry occupied for the write's duration,
  // most of the wave is shed; nothing hangs or dies with a surprise code.
  EXPECT_EQ(0, other.load());
  EXPECT_GE(shed.load(), 1);
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(kReaders, ok.load() + shed.load());
  EXPECT_EQ(static_cast<uint64_t>(shed.load()),
            server.GetStats().admission.shed);
}

// The soak: concurrent readers (random deadlines, self-cancellations,
// snapshot repeatability probes) against writers mutating the same table.
// Every response must be exactly one of the four contracted outcomes, and
// the per-outcome counters must account for every single read issued.
TEST_P(PerEngineTest, ChaosSoak) {
  SessionConfig cfg;
  cfg.admission.max_inflight = 3;
  cfg.admission.max_queued = 3;
  cfg.watchdog_period = milliseconds(2);
  SessionManager server(MakeLoadedEngine(GetParam(), 100), cfg);

  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kReadsPerThread = 60;
  constexpr int kWritesPerThread = 40;
  std::atomic<uint64_t> reads_issued{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kReadsPerThread; ++i) {
        if (i % 15 == 14) {
          // Repeatability probe: two reads against one pinned snapshot must
          // agree even while writers churn underneath.
          SessionManager::Snapshot snap = server.OpenSnapshot();
          std::vector<Row> first, second;
          Status s1 = server.ReadAt(snap, FullHistoryScan(), nullptr, &first);
          Status s2 = server.ReadAt(snap, FullHistoryScan(), nullptr, &second);
          reads_issued += 2;
          EXPECT_TRUE(s1.ok() && s2.ok());
          std::vector<Row> a = Canonical(std::move(first));
          std::vector<Row> b = Canonical(std::move(second));
          ASSERT_EQ(a.size(), b.size());
          for (size_t r = 0; r < a.size(); ++r) {
            for (size_t c = 0; c < a[r].size(); ++c) {
              EXPECT_EQ(0, a[r][c].Compare(b[r][c]));
            }
          }
          continue;
        }
        ScanRequest req;
        if (rng.Bernoulli(0.5)) {
          req = FullHistoryScan();
        } else {
          req.table = "ITEM";
          req.equals = {{0, Value(rng.UniformInt(1, 150))}};
        }
        QueryContext ctx =
            rng.Bernoulli(0.5)
                ? QueryContext(QueryContext::Clock::now() +
                               std::chrono::microseconds(
                                   rng.UniformInt(0, 3000)))
                : QueryContext();
        if (rng.Bernoulli(0.1)) ctx.Cancel();
        std::vector<Row> rows;
        Status st = server.Read(req, &ctx, &rows);
        ++reads_issued;
        const bool contracted =
            st.code() == Status::Code::kOk ||
            st.code() == Status::Code::kDeadlineExceeded ||
            st.code() == Status::Code::kCancelled ||
            st.code() == Status::Code::kResourceExhausted;
        EXPECT_TRUE(contracted) << st.ToString();
        if (!st.ok()) {
          EXPECT_TRUE(rows.empty());
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + static_cast<uint64_t>(t));
      int64_t next_key = 1000 + t * 1000;
      for (int i = 0; i < kWritesPerThread; ++i) {
        Status st;
        switch (rng.UniformInt(0, 2)) {
          case 0:
            st = server.Insert(
                "ITEM", Row{Value(next_key++), Value(1.0), Value("w"),
                            Value(int64_t{0}), Value(Period::kForever)});
            break;
          case 1:
            st = server.UpdateCurrent(
                "ITEM", {Value(rng.UniformInt(1, 100))},
                {{1, Value(double(rng.UniformInt(1, 999)))}});
            break;
          default:
            st = server.DeleteCurrent("ITEM", {Value(rng.UniformInt(1, 100))});
            break;
        }
        // Deletes may race with each other, so NotFound is legitimate.
        EXPECT_TRUE(st.ok() || st.code() == Status::Code::kNotFound)
            << st.ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SessionManager::ServerStats stats = server.GetStats();
  EXPECT_EQ(reads_issued.load(), stats.reads_ok + stats.reads_deadline +
                                     stats.reads_cancelled + stats.reads_shed);
  EXPECT_EQ(static_cast<uint64_t>(kWriters * kWritesPerThread), stats.writes);
  EXPECT_EQ(0, stats.admission.inflight);
  EXPECT_EQ(0, stats.admission.queued);

  // The engine is intact after the storm: a full consistency-bearing read
  // still works and sees every surviving current row.
  ScanRequest current;
  current.table = "ITEM";
  std::vector<Row> rows;
  ASSERT_TRUE(server.Read(current, nullptr, &rows).ok());
  EXPECT_GT(rows.size(), 0u);
}

// --- Watermark contract under concurrent group commit ------------------
//
// The commit-watermark snapshot contract, stated operationally:
//
//   1. A reader that pins watermark w never observes any version created
//      by a commit later than w (no half-applied later batch), and
//      repeated reads at w are byte-identical.
//   2. A write acknowledged BEFORE the reader pinned must be visible at
//      the pinned snapshot (acknowledged implies durable implies
//      watermark-covered).
//   3. Multi-statement writes are atomic at any snapshot: all of a
//      batch's rows are visible or none.
//
// Swept from 1 to 8 writer threads over the sharded group-commit path;
// run under TSan to also prove the watermark handoff is race-free.
class WatermarkContractTest : public ::testing::TestWithParam<int> {};

TEST_P(WatermarkContractTest, PinnedReadersNeverSeePostPinCommits) {
  const int kWriters = GetParam();
  constexpr int kBatchesEach = 60;
  constexpr int kRowsPerBatch = 3;

  std::unique_ptr<TemporalEngine> engine = MakeEngine("A");
  // A WAL makes this the production path: group commit on, watermark
  // published only after the durability ticket is acknowledged.
  const std::string wal_path = ::testing::TempDir() + "/watermark_" +
                               std::to_string(kWriters) + ".wal";
  std::remove(wal_path.c_str());
  ASSERT_TRUE(engine->EnableWal(wal_path).ok());
  ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
  SessionConfig cfg;
  cfg.write_shards = 8;
  SessionManager server(engine.get(), cfg);

  // Acknowledged batch bases, appended only after the session write
  // returned OK. A reader snapshots this list BEFORE pinning: everything
  // in the copy was acknowledged before the pin, so rule 2 applies to it.
  Mutex acked_mu;
  std::vector<int64_t> acked;

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int b = 0; b < kBatchesEach; ++b) {
        const int64_t base =
            1'000'000 * (t + 1) + 10 * static_cast<int64_t>(b);
        Status st = server.WriteKeyed(
            "ITEM", {Value(base)}, [&](TemporalEngine& e) {
              e.Begin();
              for (int j = 0; j < kRowsPerBatch; ++j) {
                Status a = e.Insert(
                    "ITEM", Row{Value(base + j), Value(double(b)),
                                Value(t % 2 == 0 ? "x" : "y"),
                                Value(int64_t(0)), Value(Period::kForever)});
                if (!a.ok()) return a;
              }
              return e.Commit();
            });
        ASSERT_TRUE(st.ok()) << st.ToString();
        MutexLock lock(acked_mu);
        acked.push_back(base);
      }
    });
  }

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(77 * (r + 1));
      while (!writers_done.load(std::memory_order_acquire)) {
        std::vector<int64_t> acked_before_pin;
        {
          MutexLock lock(acked_mu);
          acked_before_pin = acked;
        }
        SessionManager::Snapshot snap = server.OpenSnapshot();

        ScanRequest req = FullHistoryScan();
        std::vector<Row> rows;
        ASSERT_TRUE(server.ReadAt(snap, req, nullptr, &rows).ok());

        std::set<int64_t> seen;
        std::map<int64_t, int> per_batch;
        for (const Row& row : rows) {
          // Rule 1: nothing from after the pin. Every version the read
          // surfaces began at or before the watermark.
          const int64_t sys_from = row[row.size() - 2].AsInt();
          ASSERT_LE(sys_from, snap.watermark)
              << "snapshot at " << snap.watermark
              << " observed a commit from " << sys_from;
          seen.insert(row[0].AsInt());
          per_batch[row[0].AsInt() / 10] += 1;
        }
        // Rule 3: batch atomicity at the snapshot.
        for (const auto& [batch_base, count] : per_batch) {
          ASSERT_EQ(kRowsPerBatch, count)
              << "half-applied batch " << batch_base << " at watermark "
              << snap.watermark;
        }
        // Rule 2: acked-before-pin implies visible at the pin.
        for (int64_t base : acked_before_pin) {
          for (int j = 0; j < kRowsPerBatch; ++j) {
            ASSERT_EQ(1u, seen.count(base + j))
                << "acknowledged row " << base + j
                << " invisible at watermark " << snap.watermark;
          }
        }
        // Rule 1, determinism half: the same snapshot reads byte-equal.
        if (rng.Bernoulli(0.25)) {
          std::vector<Row> again;
          ASSERT_TRUE(server.ReadAt(snap, req, nullptr, &again).ok());
          std::vector<Row> a = Canonical(rows);
          std::vector<Row> b = Canonical(std::move(again));
          ASSERT_EQ(a.size(), b.size());
          for (size_t i = 0; i < a.size(); ++i) {
            for (size_t c = 0; c < a[i].size(); ++c) {
              ASSERT_EQ(0, a[i][c].Compare(b[i][c]))
                  << "same-snapshot reread diverged at row " << i;
            }
          }
        }
      }
    });
  }

  for (std::thread& w : writers) w.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Final coverage: everything acked, nothing torn, watermark at the top.
  std::vector<Row> rows;
  ScanRequest req = FullHistoryScan();
  ASSERT_TRUE(server.Read(req, nullptr, &rows).ok());
  EXPECT_EQ(static_cast<size_t>(kWriters) * kBatchesEach * kRowsPerBatch,
            rows.size());
}

INSTANTIATE_TEST_SUITE_P(WriterSweep, WatermarkContractTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace bih
