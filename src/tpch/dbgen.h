#ifndef TPCBIH_TPCH_DBGEN_H_
#define TPCBIH_TPCH_DBGEN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/chrono.h"
#include "common/value.h"
#include "tpch/schema.h"

namespace bih {

// Fixed calendar anchors from the TPC-H specification.
namespace tpch_dates {
inline const Date kStart = Date::FromYMD(1992, 1, 1);
inline const Date kCurrent = Date::FromYMD(1995, 6, 17);
inline const Date kLastOrder = Date::FromYMD(1998, 8, 2);
inline const Date kEnd = Date::FromYMD(1998, 12, 31);
}  // namespace tpch_dates

struct TpchConfig {
  // TPC-H scale factor h: 1.0 corresponds to the standard ~8.66 M rows.
  double scale = 0.01;
  uint64_t seed = 19920101;
};

// Version-0 population of all eight tables, rows in user-schema order.
struct TpchData {
  std::vector<Row> region;
  std::vector<Row> nation;
  std::vector<Row> supplier;
  std::vector<Row> part;
  std::vector<Row> partsupp;
  std::vector<Row> customer;
  std::vector<Row> orders;
  std::vector<Row> lineitem;

  size_t TotalRows() const {
    return region.size() + nation.size() + supplier.size() + part.size() +
           partsupp.size() + customer.size() + orders.size() + lineitem.size();
  }
  const std::vector<Row>& TableRows(const std::string& name) const;
};

// dbgen equivalent: deterministic for a given config. Application-time
// periods are derived from the date attributes of the data itself
// (Section 4.1): LINEITEM/ORDERS from ship/receipt dates, the reference
// tables from skewed registration dates, which gives the application axis
// the non-uniform distribution the benchmark wants.
TpchData GenerateTpch(const TpchConfig& config);

// Cardinalities at a given scale factor (before order/lineitem variance).
struct TpchCardinalities {
  int64_t suppliers, parts, partsupps, customers, orders;
};
TpchCardinalities CardinalitiesFor(double scale);

// The i-th (0..3) supplier of a part. Follows the spec's stride derivation,
// adjusted so the four suppliers stay distinct at the tiny scale factors
// this repository benches with (the spec formula assumes S >= 80).
inline int64_t PartSuppSupplier(int64_t partkey, int64_t i,
                                int64_t suppliers) {
  int64_t stride = std::max<int64_t>(1, suppliers / 4);
  return (partkey + i * stride) % suppliers + 1;
}

}  // namespace bih

#endif  // TPCBIH_TPCH_DBGEN_H_
