#include "engine/recovery.h"

#include <chrono>
#include <filesystem>
#include <vector>

#include "common/json.h"
#include "durability/checkpoint.h"

namespace bih {

std::string RecoveryReport::ToString() const {
  std::string s = "recovery: " + std::to_string(records_applied) + "/" +
                  std::to_string(records_total) + " records applied, " +
                  std::to_string(txns_committed) + " commits, " +
                  std::to_string(bytes_salvaged) + "/" +
                  std::to_string(bytes_total) + " bytes salvaged";
  if (checkpoint_loaded) {
    s += ", checkpoint: " + std::to_string(checkpoint_rows) +
         " rows covering " + std::to_string(checkpoint_segments) +
         " segments";
  } else if (!checkpoint_ignored_reason.empty()) {
    s += ", checkpoint ignored (" + checkpoint_ignored_reason + ")";
  }
  s += ", " + std::to_string(segments_scanned) + " segments scanned";
  if (ops_dropped > 0) {
    s += ", " + std::to_string(ops_dropped) + " uncommitted ops dropped";
  }
  if (tail_dropped) {
    s += ", tail dropped (" + tail_reason + ")";
  }
  s += ", replayed in " + std::to_string(replay_micros) + " us";
  return s;
}

std::string RecoveryReport::ToJson() const {
  std::string s = "{";
  s += "\"records_total\":" + std::to_string(records_total);
  s += ",\"records_applied\":" + std::to_string(records_applied);
  s += ",\"txns_committed\":" + std::to_string(txns_committed);
  s += ",\"ops_dropped\":" + std::to_string(ops_dropped);
  s += ",\"bytes_total\":" + std::to_string(bytes_total);
  s += ",\"bytes_salvaged\":" + std::to_string(bytes_salvaged);
  s += std::string(",\"tail_dropped\":") + (tail_dropped ? "true" : "false");
  s += ",\"tail_reason\":\"" + JsonEscape(tail_reason) + "\"";
  s += ",\"last_commit_ts\":" + std::to_string(last_commit_ts);
  s += ",\"segments_scanned\":" + std::to_string(segments_scanned);
  s += std::string(",\"checkpoint_loaded\":") +
       (checkpoint_loaded ? "true" : "false");
  s += ",\"checkpoint_rows\":" + std::to_string(checkpoint_rows);
  s += ",\"checkpoint_bytes\":" + std::to_string(checkpoint_bytes);
  s += ",\"checkpoint_segments\":" + std::to_string(checkpoint_segments);
  s += ",\"checkpoint_ignored_reason\":\"" +
       JsonEscape(checkpoint_ignored_reason) + "\"";
  s += ",\"replay_micros\":" + std::to_string(replay_micros);
  s += "}";
  return s;
}

namespace {

// Restores a complete checkpoint into `engine`. An unreadable or torn file
// (no footer) leaves the engine untouched and only fills
// `checkpoint_ignored_reason` — the caller falls back to full log replay.
Status LoadCheckpoint(const std::string& wal_path, TemporalEngine* engine,
                      RecoveryReport* report, uint64_t* min_segment) {
  const std::string path = Checkpointer::CheckpointPath(wal_path);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return Status::OK();

  WalScanResult scan;
  Status st = ScanWal(path, &scan);
  if (!st.ok()) {
    report->checkpoint_ignored_reason = st.ToString();
    return Status::OK();
  }
  if (scan.records.empty() ||
      scan.records.back().kind != WalRecord::Kind::kCheckpointFooter) {
    report->checkpoint_ignored_reason =
        scan.tail_dropped ? "torn write: " + scan.tail_reason
                          : "no footer (crash during checkpoint write)";
    return Status::OK();
  }
  for (const WalRecord& rec : scan.records) {
    Status apply = engine->ApplyWalRecord(rec);
    if (!apply.ok()) {
      return Status::Internal("checkpoint restore failed (" + path +
                              "): " + apply.ToString());
    }
    if (rec.kind == WalRecord::Kind::kSnapshotRows) {
      report->checkpoint_rows += rec.rows.size();
    }
  }
  const WalRecord& footer = scan.records.back();
  report->checkpoint_loaded = true;
  report->checkpoint_bytes = scan.bytes_total;
  report->checkpoint_segments = footer.segments_covered;
  report->last_commit_ts = footer.ts;
  *min_segment = footer.segments_covered + 1;
  return Status::OK();
}

}  // namespace

Status RecoverEngine(const std::string& letter, const std::string& wal_path,
                     std::unique_ptr<TemporalEngine>* out,
                     RecoveryReport* report) {
  *report = RecoveryReport();
  const auto started = std::chrono::steady_clock::now();
  auto stamp_duration = [&] {
    report->replay_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
  };

  std::unique_ptr<TemporalEngine> engine = MakeEngine(letter);

  // Phase 1: the snapshot. It covers segments [1..checkpoint_segments]; the
  // log before that boundary is not even read.
  uint64_t min_segment = 1;
  Status ckpt_st = LoadCheckpoint(wal_path, engine.get(), report, &min_segment);
  if (!ckpt_st.ok()) {
    stamp_duration();
    return ckpt_st;
  }

  // Phase 2: the tail — every segment the snapshot does not cover, in index
  // order. Without any checkpoint this degenerates to the original
  // full-log replay (and a missing log stays an error, same contract as
  // before segmentation existed).
  std::vector<WalSegment> segments = ListWalSegments(wal_path);
  std::vector<WalSegment> tail;
  for (WalSegment& seg : segments) {
    if (seg.index >= min_segment) tail.push_back(std::move(seg));
  }
  if (tail.empty() && !report->checkpoint_loaded) {
    WalScanResult probe;
    Status st = ScanWal(wal_path, &probe);  // yields "cannot open wal file"
    stamp_duration();
    return st.ok() ? Status::IoError("cannot open wal file " + wal_path) : st;
  }

  // Records inside a transaction only become durable with its commit
  // marker, so they are staged here and replayed when the marker arrives;
  // a log ending mid-transaction loses exactly that suffix. The stage
  // survives segment boundaries (a rotation can land mid-batch).
  std::vector<WalRecord> staged;
  uint64_t expected_index = tail.empty() ? 0 : tail.front().index;
  for (const WalSegment& seg : tail) {
    if (seg.index != expected_index) {
      // A hole in the chain: everything beyond it may depend on the lost
      // segment, so replay stops at the last consistent prefix.
      report->tail_dropped = true;
      report->tail_reason = "missing wal segment " +
                            WalSegmentPath(wal_path, expected_index);
      break;
    }
    ++expected_index;

    WalScanResult scan;
    Status st = ScanWal(seg.path, &scan);
    if (!st.ok()) {
      stamp_duration();
      return st;
    }
    ++report->segments_scanned;
    report->records_total += scan.records.size();
    report->bytes_total += scan.bytes_total;
    report->bytes_salvaged += scan.bytes_salvaged;

    size_t idx = 0;
    for (WalRecord& rec : scan.records) {
      ++idx;
      if (rec.kind == WalRecord::Kind::kCommit) {
        for (const WalRecord& op : staged) {
          Status apply = engine->ApplyWalRecord(op);
          if (!apply.ok()) {
            stamp_duration();
            return Status::Internal("wal replay failed at record " +
                                    std::to_string(idx) + " of " + seg.path +
                                    ": " + apply.ToString());
          }
          ++report->records_applied;
        }
        staged.clear();
        // Advance the clock past the batch stamp even when the batch was
        // empty, mirroring the Begin() tick of the original run.
        Status commit_st = engine->ApplyWalRecord(rec);
        if (!commit_st.ok()) {
          stamp_duration();
          return Status::Internal("wal replay failed at commit record " +
                                  std::to_string(idx) + " of " + seg.path +
                                  ": " + commit_st.ToString());
        }
        ++report->txns_committed;
        report->last_commit_ts = rec.ts;
        continue;
      }
      if (rec.in_txn()) {
        staged.push_back(std::move(rec));
        continue;
      }
      Status apply = engine->ApplyWalRecord(rec);
      if (!apply.ok()) {
        stamp_duration();
        return Status::Internal("wal replay failed at record " +
                                std::to_string(idx) + " of " + seg.path +
                                ": " + apply.ToString());
      }
      ++report->records_applied;
      if (rec.kind != WalRecord::Kind::kCreateTable) {
        ++report->txns_committed;
        report->last_commit_ts = rec.ts;
      }
    }
    if (scan.tail_dropped) {
      // A torn frame inside the chain: frames beyond it (including whole
      // later segments) are not provably ordered after the tear, so the
      // replay stops here — prefix consistency over completeness.
      report->tail_dropped = true;
      report->tail_reason = scan.tail_reason + " (" + seg.path + ")";
      break;
    }
  }
  report->ops_dropped = staged.size();
  // Post-recovery housekeeping, same as the loaders run after replay.
  engine->Maintain();
  *out = std::move(engine);
  stamp_duration();
  return Status::OK();
}

}  // namespace bih
