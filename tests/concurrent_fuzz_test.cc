// Concurrent differential test: a writer thread replays a random mutation
// sequence through the session layer while reader threads pin snapshots and
// scan. Every read is checked against the brute-force reference model
// evaluated *at the pinned watermark* — the model is fully built before the
// threads start (the operation sequence is deterministic and the commit
// clock ticks in lockstep), so the reference itself is immutable and the
// comparison needs no synchronization with the writer.
//
// A version that is open at watermark w but closed by a later write stores
// a SYS_TIME_END past w; the session layer rewrites that to "forever" when
// serving snapshot w, and the model's output is normalized the same way.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/engine.h"
#include "engine/recovery.h"
#include "reference_model.h"
#include "server/session.h"
#include "temporal/clock.h"

namespace bih {
namespace {

struct Op {
  enum Kind {
    kInsert,
    kUpdateCurrent,
    kSeqUpdate,
    kOverwrite,
    kSeqDelete,
    kDeleteCurrent
  };
  Kind kind = kInsert;
  Row row;      // kInsert
  int64_t id = 0;
  std::vector<ColumnAssignment> set;
  Period window{0, 0};
  bool expect_ok = true;
};

// Builds the deterministic op sequence and applies it to the model with a
// lockstep commit clock (one tick per op, exactly like the engines' DML
// entry points — failed statements consume a tick too).
std::vector<Op> BuildOps(uint64_t seed, Model* model,
                         std::vector<int64_t>* commit_ts,
                         std::vector<int64_t>* keys) {
  Rng rng(seed);
  CommitClock clock;
  std::vector<Op> ops;
  int64_t next_key = 1;
  const int kOps = 250;
  for (int step = 0; step < kOps; ++step) {
    int choice = static_cast<int>(rng.UniformInt(0, 9));
    int64_t ts = clock.NextCommit().micros();
    commit_ts->push_back(ts);
    Op op;
    if (choice <= 3 || keys->empty()) {
      int64_t id = next_key++;
      int64_t vb = rng.UniformInt(0, 300);
      int64_t ve = rng.Bernoulli(0.3) ? Period::kForever
                                      : vb + rng.UniformInt(1, 200);
      op.kind = Op::kInsert;
      op.row = Row{Value(id), Value(double(rng.UniformInt(1, 1000))),
                   Value(rng.Bernoulli(0.5) ? "x" : "y"), Value(vb),
                   Value(ve)};
      model->Insert(op.row, ts);
      keys->push_back(id);
    } else {
      op.id = (*keys)[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(keys->size()) - 1))];
      op.set = {{1, Value(double(rng.UniformInt(1, 1000)))}};
      int64_t wb = rng.UniformInt(0, 400);
      op.window = Period(wb, rng.Bernoulli(0.3) ? Period::kForever
                                                : wb + rng.UniformInt(1, 150));
      switch (choice) {
        case 4:
        case 5:
          op.kind = Op::kUpdateCurrent;
          op.expect_ok = model->UpdateCurrent(op.id, op.set, ts);
          break;
        case 6:
          op.kind = Op::kSeqUpdate;
          op.expect_ok = model->Sequenced(op.id, op.window, op.set, 0, ts);
          break;
        case 7:
          op.kind = Op::kOverwrite;
          op.expect_ok = model->Sequenced(op.id, op.window, op.set, 2, ts);
          break;
        case 8:
          op.kind = Op::kSeqDelete;
          op.expect_ok = model->Sequenced(op.id, op.window, {}, 1, ts);
          break;
        default:
          op.kind = Op::kDeleteCurrent;
          op.expect_ok = model->DeleteCurrent(op.id, ts);
          break;
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

Status ApplyOp(TemporalEngine& e, const Op& op) {
  switch (op.kind) {
    case Op::kInsert:
      return e.Insert("ITEM", op.row);
    case Op::kUpdateCurrent:
      return e.UpdateCurrent("ITEM", {Value(op.id)}, op.set);
    case Op::kSeqUpdate:
      return e.UpdateSequenced("ITEM", {Value(op.id)}, 0, op.window, op.set);
    case Op::kOverwrite:
      return e.UpdateOverwrite("ITEM", {Value(op.id)}, 0, op.window, op.set);
    case Op::kSeqDelete:
      return e.DeleteSequenced("ITEM", {Value(op.id)}, 0, op.window);
    case Op::kDeleteCurrent:
      return e.DeleteCurrent("ITEM", {Value(op.id)});
  }
  return Status::Internal("unreachable");
}

// Model rows for versions still open at `w` carry their final close time;
// map anything past the watermark back to forever (the engine side of the
// comparison is normalized identically by the session layer).
std::vector<Row> NormalizeAtWatermark(std::vector<Row> rows, int64_t w) {
  for (Row& r : rows) {
    if (!r.empty() && r.back().is_int() && r.back().AsInt() > w) {
      r.back() = Value(Period::kForever);
    }
  }
  return rows;
}

class ConcurrentFuzzTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Engines, ConcurrentFuzzTest,
                         ::testing::ValuesIn(AllEngineLetters()));

TEST_P(ConcurrentFuzzTest, SnapshotReadsMatchModelUnderConcurrentWrites) {
  const uint64_t seed = 7;
  Model model;
  std::vector<int64_t> commit_ts;
  std::vector<int64_t> keys;
  std::vector<Op> ops = BuildOps(seed, &model, &commit_ts, &keys);

  std::unique_ptr<TemporalEngine> engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
  // Give the manager a worker pool so reads may fan morsels out; each read
  // below picks its own width, proving pinned-snapshot semantics survive
  // intra-query parallelism at any setting.
  SessionConfig scfg;
  scfg.scan_threads = 8;
  SessionManager server(engine.get(), scfg);

  std::thread writer([&] {
    for (size_t i = 0; i < ops.size(); ++i) {
      Status st =
          server.Write([&](TemporalEngine& e) { return ApplyOp(e, ops[i]); });
      EXPECT_EQ(ops[i].expect_ok, st.ok())
          << "op " << i << ": " << st.ToString();
      // Occasional mid-stream maintenance (System C delta merge) — it does
      // not consume a commit tick, so the clocks stay in lockstep.
      if (i % 83 == 82) {
        Status maint_st = server.Write([](TemporalEngine& e) {
          e.Maintain();
          return Status::OK();
        });
        EXPECT_TRUE(maint_st.ok()) << maint_st.ToString();
      }
    }
  });

  constexpr int kReaders = 3;
  constexpr int kReadsEach = 80;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(seed * 31 + static_cast<uint64_t>(t));
      for (int i = 0; i < kReadsEach; ++i) {
        SessionManager::Snapshot snap = server.OpenSnapshot();
        const int64_t w = snap.watermark;
        auto pick_ts = [&] {
          return commit_ts[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(commit_ts.size()) - 1))];
        };
        TemporalScanSpec spec;
        switch (rng.UniformInt(0, 2)) {
          case 0:
            spec.system_time = TemporalSelector::AsOf(pick_ts());
            break;
          case 1: {
            int64_t a = pick_ts(), b = pick_ts();
            if (a > b) std::swap(a, b);
            spec.system_time = TemporalSelector::Between(a, b + 1);
            break;
          }
          default:
            spec.system_time = TemporalSelector::All();
            break;
        }
        switch (rng.UniformInt(0, 2)) {
          case 0:
            spec.app_time = TemporalSelector::AsOf(rng.UniformInt(0, 500));
            break;
          case 1: {
            int64_t a = rng.UniformInt(0, 400);
            spec.app_time =
                TemporalSelector::Between(a, a + rng.UniformInt(1, 200));
            break;
          }
          default:
            spec.app_time = TemporalSelector::All();
            break;
        }
        int64_t key = rng.Bernoulli(0.4)
                          ? keys[static_cast<size_t>(rng.UniformInt(
                                0, static_cast<int64_t>(keys.size()) - 1))]
                          : -1;

        ScanRequest req;
        req.table = "ITEM";
        req.temporal = spec;
        if (key >= 0) req.equals = {{0, Value(key)}};
        // Random intra-query parallelism per read (1 = serial path).
        req.exec.scan_threads = static_cast<int>(rng.UniformInt(1, 8));
        req.exec.morsel_size = static_cast<uint64_t>(rng.UniformInt(1, 96));
        std::vector<Row> got;
        Status st = server.ReadAt(snap, req, nullptr, &got);
        ASSERT_TRUE(st.ok()) << st.ToString();
        got = Canonical(std::move(got));

        // Reference: the *final* model queried with the same clamped
        // selector — versions born after the watermark cannot match, so
        // this is exactly the state at the snapshot.
        TemporalScanSpec model_spec = spec;
        model_spec.system_time =
            SessionManager::ClampToWatermark(spec.system_time, w);
        std::vector<Row> expect = Canonical(
            NormalizeAtWatermark(model.Query(model_spec, w, key), w));

        ASSERT_EQ(expect.size(), got.size())
            << "reader " << t << " read " << i << " w=" << w
            << " sys=" << spec.system_time.ToString()
            << " app=" << spec.app_time.ToString() << " key=" << key;
        for (size_t r = 0; r < expect.size(); ++r) {
          for (size_t c = 0; c < expect[r].size(); ++c) {
            EXPECT_EQ(0, expect[r][c].Compare(got[r][c]))
                << "reader " << t << " read " << i << " row " << r << " col "
                << c;
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();

  // After the writer finished, the latest snapshot must equal the full
  // final model verbatim.
  ScanRequest all;
  all.table = "ITEM";
  all.temporal.system_time = TemporalSelector::All();
  all.temporal.app_time = TemporalSelector::All();
  std::vector<Row> got;
  ASSERT_TRUE(server.Read(all, nullptr, &got).ok());
  const int64_t w = server.OpenSnapshot().watermark;
  std::vector<Row> expect =
      Canonical(NormalizeAtWatermark(model.Query(all.temporal, w, -1), w));
  got = Canonical(std::move(got));
  ASSERT_EQ(expect.size(), got.size());
  for (size_t r = 0; r < expect.size(); ++r) {
    for (size_t c = 0; c < expect[r].size(); ++c) {
      ASSERT_EQ(0, expect[r][c].Compare(got[r][c])) << "row " << r;
    }
  }
}

// --- Multi-writer differential fuzz -----------------------------------
//
// N writer threads drive disjoint key ranges through the session's keyed
// (sharded) write admission while readers pin snapshots, against a
// WAL-attached engine with group commit on — the production write path.
// The interleaving is nondeterministic, so the reference model cannot be
// prebuilt; instead every write records its engine-assigned commit
// timestamp *inside the exclusive-lock section*, and after the threads
// join the ops are sorted by that timestamp and replayed through the model
// in the exact serialization order the session chose. Final state, every
// pinned-snapshot read captured during the run, and the state recovered
// from the WAL must all match the model byte-for-byte.

// One writer's deterministic op script over its own key range. Targets are
// always keys this writer inserted, so cross-writer conflicts cannot
// exist by construction (that is the point: disjoint ranges land on
// distinct admission shards with high probability and commit unserialized
// against each other).
std::vector<Op> BuildWriterOps(uint64_t seed, int64_t key_base, int n) {
  Rng rng(seed);
  std::vector<Op> ops;
  std::vector<int64_t> keys;
  int64_t next_key = key_base;
  for (int step = 0; step < n; ++step) {
    int choice = static_cast<int>(rng.UniformInt(0, 9));
    Op op;
    if (choice <= 4 || keys.empty()) {
      int64_t id = next_key++;
      int64_t vb = rng.UniformInt(0, 300);
      int64_t ve =
          rng.Bernoulli(0.3) ? Period::kForever : vb + rng.UniformInt(1, 200);
      op.kind = Op::kInsert;
      op.row = Row{Value(id), Value(double(rng.UniformInt(1, 1000))),
                   Value(rng.Bernoulli(0.5) ? "x" : "y"), Value(vb),
                   Value(ve)};
      keys.push_back(id);
    } else {
      op.id = keys[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1))];
      op.set = {{1, Value(double(rng.UniformInt(1, 1000)))}};
      int64_t wb = rng.UniformInt(0, 400);
      op.window = Period(wb, rng.Bernoulli(0.3) ? Period::kForever
                                                : wb + rng.UniformInt(1, 150));
      switch (choice) {
        case 5:
        case 6:
          op.kind = Op::kUpdateCurrent;
          break;
        case 7:
          op.kind = Op::kSeqUpdate;
          break;
        case 8:
          op.kind = Op::kOverwrite;
          break;
        default:
          op.kind = Op::kDeleteCurrent;
          break;
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// What one op observed when it ran: the engine's commit timestamp (read
// under the exclusive lock, where the clock ticks) and whether the DML
// succeeded. Sorting all writers' records by ts reproduces the session's
// serialization order.
struct OpTrace {
  const Op* op = nullptr;
  int64_t ts = 0;
  bool ok = false;
};

// A pinned-snapshot read captured mid-run, replayed against the model
// after it is built.
struct ReadTrace {
  int64_t w = 0;
  TemporalScanSpec spec;
  int64_t key = -1;
  std::vector<Row> rows;
};

TEST_P(ConcurrentFuzzTest, MultiWriterDisjointRangesMatchSerializedModel) {
  const std::string letter = GetParam();
  const std::string wal_path =
      ::testing::TempDir() + "/mwfuzz_" + letter + ".wal";
  std::remove(wal_path.c_str());

  constexpr int kWriters = 4;
  constexpr int kOpsEach = 110;
  std::vector<std::vector<Op>> scripts;
  for (int t = 0; t < kWriters; ++t) {
    scripts.push_back(
        BuildWriterOps(900 + static_cast<uint64_t>(t),
                       10'000 * (t + 1), kOpsEach));
  }

  Model model;
  int64_t w_final = 0;
  {
    std::unique_ptr<TemporalEngine> engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(wal_path).ok());
    ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
    SessionConfig scfg;
    scfg.scan_threads = 2;
    scfg.write_shards = 8;  // group_commit defaults on: production path
    SessionManager server(engine.get(), scfg);

    std::vector<std::vector<OpTrace>> traces(kWriters);
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        for (const Op& op : scripts[static_cast<size_t>(t)]) {
          OpTrace trace;
          trace.op = &op;
          const int64_t key_val =
              op.kind == Op::kInsert ? op.row[0].AsInt() : op.id;
          Status st = server.WriteKeyed(
              "ITEM", {Value(key_val)}, [&](TemporalEngine& e) {
                Status s = ApplyOp(e, op);
                // Under the exclusive lock: the clock ticked exactly once
                // for this DML (failures tick too), so this is the op's
                // unique position in the serialization order.
                trace.ts = e.Now().micros();
                return s;
              });
          ASSERT_TRUE(st.ok() || st.code() == Status::Code::kNotFound)
              << st.ToString();
          trace.ok = st.ok();
          traces[static_cast<size_t>(t)].push_back(trace);
        }
      });
    }

    constexpr int kReaders = 2;
    constexpr int kReadsEach = 50;
    std::vector<std::vector<ReadTrace>> observations(kReaders);
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        Rng rng(4000 + static_cast<uint64_t>(t));
        for (int i = 0; i < kReadsEach; ++i) {
          ReadTrace obs;
          SessionManager::Snapshot snap = server.OpenSnapshot();
          obs.w = snap.watermark;
          obs.spec.system_time = rng.Bernoulli(0.5)
                                     ? TemporalSelector::All()
                                     : TemporalSelector::AsOf(obs.w);
          obs.spec.app_time =
              rng.Bernoulli(0.5)
                  ? TemporalSelector::All()
                  : TemporalSelector::AsOf(rng.UniformInt(0, 500));
          const int wtr = static_cast<int>(rng.UniformInt(1, kWriters));
          obs.key = rng.Bernoulli(0.5)
                        ? 10'000 * wtr + rng.UniformInt(0, kOpsEach - 1)
                        : -1;
          ScanRequest req;
          req.table = "ITEM";
          req.temporal = obs.spec;
          if (obs.key >= 0) req.equals = {{0, Value(obs.key)}};
          Status st = server.ReadAt(snap, req, nullptr, &obs.rows);
          ASSERT_TRUE(st.ok()) << st.ToString();
          observations[static_cast<size_t>(t)].push_back(std::move(obs));
        }
      });
    }
    for (std::thread& w : writers) w.join();
    for (std::thread& r : readers) r.join();

    // Serialize: commit timestamps are assigned under the exclusive lock,
    // one tick per DML, so sorting recovers the exact apply order.
    std::vector<OpTrace> serialized;
    for (const auto& tr : traces) {
      serialized.insert(serialized.end(), tr.begin(), tr.end());
    }
    std::sort(serialized.begin(), serialized.end(),
              [](const OpTrace& a, const OpTrace& b) { return a.ts < b.ts; });
    for (size_t i = 1; i < serialized.size(); ++i) {
      ASSERT_NE(serialized[i - 1].ts, serialized[i].ts)
          << "two DMLs shared a commit tick";
    }
    for (const OpTrace& trace : serialized) {
      const Op& op = *trace.op;
      bool model_ok = true;
      switch (op.kind) {
        case Op::kInsert:
          model.Insert(op.row, trace.ts);
          break;
        case Op::kUpdateCurrent:
          model_ok = model.UpdateCurrent(op.id, op.set, trace.ts);
          break;
        case Op::kSeqUpdate:
          model_ok = model.Sequenced(op.id, op.window, op.set, 0, trace.ts);
          break;
        case Op::kOverwrite:
          model_ok = model.Sequenced(op.id, op.window, op.set, 2, trace.ts);
          break;
        case Op::kSeqDelete:
          model_ok = model.Sequenced(op.id, op.window, {}, 1, trace.ts);
          break;
        case Op::kDeleteCurrent:
          model_ok = model.DeleteCurrent(op.id, trace.ts);
          break;
      }
      ASSERT_EQ(model_ok, trace.ok)
          << "engine and model disagree on op outcome at ts " << trace.ts;
    }

    // Every write was acknowledged durable, so the watermark must cover
    // the whole serialization; group commit must actually have grouped.
    w_final = server.OpenSnapshot().watermark;
    ASSERT_GE(w_final, serialized.back().ts);
    GroupCommit::Stats gstats = server.GetGroupCommitStats();
    EXPECT_EQ(gstats.acks, static_cast<uint64_t>(kWriters) * kOpsEach);
    EXPECT_GT(gstats.groups, 0u);
    EXPECT_LE(gstats.groups, gstats.acks);

    // Final state, byte-for-byte.
    ScanRequest all;
    all.table = "ITEM";
    all.temporal.system_time = TemporalSelector::All();
    all.temporal.app_time = TemporalSelector::All();
    std::vector<Row> got;
    ASSERT_TRUE(server.Read(all, nullptr, &got).ok());
    std::vector<Row> expect = Canonical(
        NormalizeAtWatermark(model.Query(all.temporal, w_final, -1), w_final));
    got = Canonical(std::move(got));
    ASSERT_EQ(expect.size(), got.size());
    for (size_t r = 0; r < expect.size(); ++r) {
      for (size_t c = 0; c < expect[r].size(); ++c) {
        ASSERT_EQ(0, expect[r][c].Compare(got[r][c])) << "final row " << r;
      }
    }

    // Every pinned-snapshot read captured mid-run, byte-for-byte: the
    // snapshot contract says each must equal the model evaluated at its
    // watermark, no matter which groups were mid-flight when it pinned.
    for (const auto& reader_obs : observations) {
      for (const ReadTrace& obs : reader_obs) {
        TemporalScanSpec clamped = obs.spec;
        clamped.system_time =
            SessionManager::ClampToWatermark(obs.spec.system_time, obs.w);
        std::vector<Row> want = Canonical(NormalizeAtWatermark(
            model.Query(clamped, obs.w, obs.key), obs.w));
        std::vector<Row> have = Canonical(obs.rows);
        ASSERT_EQ(want.size(), have.size())
            << "pinned read at w=" << obs.w << " key=" << obs.key;
        for (size_t r = 0; r < want.size(); ++r) {
          for (size_t c = 0; c < want[r].size(); ++c) {
            ASSERT_EQ(0, want[r][c].Compare(have[r][c]))
                << "pinned read w=" << obs.w << " row " << r;
          }
        }
      }
    }
  }

  // The log the group syncs produced must recover to the same state: no
  // acknowledged transaction lost, no torn group replayed.
  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(letter, wal_path, &recovered, &report).ok());
  ScanRequest all;
  all.table = "ITEM";
  all.temporal.system_time = TemporalSelector::All();
  all.temporal.app_time = TemporalSelector::All();
  std::vector<Row> got;
  recovered->Scan(all, [&](const Row& r) {
    got.push_back(r);
    return true;
  });
  std::vector<Row> expect = Canonical(
      NormalizeAtWatermark(model.Query(all.temporal, w_final, -1), w_final));
  got = Canonical(std::move(got));
  ASSERT_EQ(expect.size(), got.size());
  for (size_t r = 0; r < expect.size(); ++r) {
    for (size_t c = 0; c < expect[r].size(); ++c) {
      ASSERT_EQ(0, expect[r][c].Compare(got[r][c])) << "recovered row " << r;
    }
  }
}

}  // namespace
}  // namespace bih
