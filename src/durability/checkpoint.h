#ifndef TPCBIH_DURABILITY_CHECKPOINT_H_
#define TPCBIH_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "durability/fault.h"
#include "durability/wal.h"

namespace bih {

class TemporalEngine;  // engine/engine.h

// Accounting for one checkpoint write.
struct CheckpointInfo {
  std::string path;                // the published checkpoint file
  uint64_t tables = 0;             // tables snapshotted
  uint64_t rows = 0;               // stored versions snapshotted
  uint64_t bytes = 0;              // checkpoint file size
  uint64_t segments_covered = 0;   // WAL segments folded into the snapshot
  uint64_t segments_removed = 0;   // covered segments deleted afterwards
  int64_t clock_micros = 0;        // commit-clock watermark in the footer

  std::string ToString() const;
};

// Writes crash-consistent engine snapshots that bound recovery to
// log-since-checkpoint instead of total history.
//
// A checkpoint of the log at base path P lives at "P.ckpt" and is itself a
// WAL-format file (same magic, same CRC framing): per table a kCreateTable
// record followed by kSnapshotRows chunks, closed by a kCheckpointFooter
// carrying the commit-clock watermark and the highest WAL segment the
// snapshot covers. The footer doubles as the completeness marker — a file
// without one (a crash mid-write) is ignored by recovery.
//
// Write protocol, in order:
//   1. rotate the WAL, so the snapshot covers exactly segments [1..k]
//   2. stream the snapshot into "P.ckpt.tmp"
//   3. fdatasync the tmp file, atomically rename it to "P.ckpt", fsync the
//      parent directory (all gated by BIH_NO_FSYNC like the WAL itself)
//   4. delete segments <= k — recovery cost is now checkpoint + tail
// A crash at any step leaves either the old checkpoint or the new one
// intact, never a half-published state; the fault injector can kill the
// model at each step (rotate:N, ckpt:N, rename:N) and the chaos sweep
// proves recovery stays prefix-consistent.
//
// The caller must hold exclusive access to the engine for the duration of
// Write (the session layer runs it under the writer lock): a mutation
// between the rotation and the snapshot scan would be captured twice.
class Checkpointer {
 public:
  // `wal_base` is the WAL base path (segment 1). The injector (optional,
  // borrowed) is consulted per checkpoint frame and per rename; share the
  // WAL writer's injector so one crash plan covers both files.
  explicit Checkpointer(std::string wal_base, FaultInjector* fault = nullptr)
      : base_(std::move(wal_base)), fault_(fault) {}

  static std::string CheckpointPath(const std::string& wal_base) {
    return wal_base + ".ckpt";
  }

  // Snapshots `engine` at the current commit watermark. The engine must
  // have the WAL at base_ attached (its writer performs the rotation).
  Status Write(TemporalEngine* engine, CheckpointInfo* info);

 private:
  const std::string base_;
  FaultInjector* fault_;        // not owned
  uint64_t frames_written_ = 0;  // cumulative across checkpoints
  uint64_t renames_ = 0;
};

}  // namespace bih

#endif  // TPCBIH_DURABILITY_CHECKPOINT_H_
