#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/btree_index.h"
#include "storage/column_table.h"
#include "storage/hash_index.h"
#include "storage/row_table.h"
#include "storage/rtree_index.h"

namespace bih {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt},
                 {"name", ColumnType::kString},
                 {"price", ColumnType::kDouble}});
}

TEST(RowTableTest, AppendGetScan) {
  RowTable t(TestSchema());
  RowId a = t.Append({Value(int64_t{1}), Value("x"), Value(1.0)});
  RowId b = t.Append({Value(int64_t{2}), Value("y"), Value(2.0)});
  EXPECT_EQ(2u, t.LiveCount());
  EXPECT_EQ(int64_t{1}, t.Get(a)[0].AsInt());
  EXPECT_EQ("y", t.Get(b)[1].AsString());
  int count = 0;
  t.Scan([&](RowId, const Row&) {
    ++count;
    return true;
  });
  EXPECT_EQ(2, count);
}

TEST(RowTableTest, DeleteSkipsTombstones) {
  RowTable t(TestSchema());
  RowId a = t.Append({Value(int64_t{1}), Value("x"), Value(1.0)});
  t.Append({Value(int64_t{2}), Value("y"), Value(2.0)});
  t.Delete(a);
  EXPECT_EQ(1u, t.LiveCount());
  EXPECT_FALSE(t.IsLive(a));
  std::vector<int64_t> seen;
  t.Scan([&](RowId, const Row& r) {
    seen.push_back(r[0].AsInt());
    return true;
  });
  ASSERT_EQ(1u, seen.size());
  EXPECT_EQ(2, seen[0]);
}

TEST(RowTableTest, ScanEarlyStop) {
  RowTable t(TestSchema());
  for (int i = 0; i < 10; ++i) {
    t.Append({Value(int64_t{i}), Value("r"), Value(0.0)});
  }
  int count = 0;
  t.Scan([&](RowId, const Row&) { return ++count < 3; });
  EXPECT_EQ(3, count);
}

TEST(RowTableTest, InPlaceUpdate) {
  RowTable t(TestSchema());
  RowId a = t.Append({Value(int64_t{1}), Value("x"), Value(1.0)});
  (*t.GetMutable(a))[2] = Value(9.5);
  EXPECT_DOUBLE_EQ(9.5, t.Get(a)[2].AsDouble());
}

TEST(ColumnTableTest, AppendGetRoundTrip) {
  ColumnTable t(TestSchema());
  t.Append({Value(int64_t{7}), Value("abc"), Value(3.25)});
  t.Append({Value(int64_t{8}), Value::Null(), Value(4.5)});
  EXPECT_EQ(int64_t{7}, t.Get(0, 0).AsInt());
  EXPECT_EQ("abc", t.Get(0, 1).AsString());
  EXPECT_TRUE(t.Get(1, 1).is_null());
  EXPECT_DOUBLE_EQ(4.5, t.Get(1, 2).AsDouble());
}

TEST(ColumnTableTest, DictionaryReusesCodes) {
  ColumnTable t(TestSchema());
  for (int i = 0; i < 100; ++i) {
    t.Append({Value(int64_t{i}), Value(i % 2 ? "odd" : "even"), Value(0.0)});
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(i % 2 ? "odd" : "even", t.Get(i, 1).AsString());
  }
}

TEST(ColumnTableTest, SetUpdatesInPlace) {
  ColumnTable t(TestSchema());
  RowId r = t.Append({Value(int64_t{1}), Value("x"), Value(1.0)});
  t.Set(r, 2, Value(2.5));
  EXPECT_DOUBLE_EQ(2.5, t.Get(r, 2).AsDouble());
  t.Set(r, 1, Value::Null());
  EXPECT_TRUE(t.Get(r, 1).is_null());
}

TEST(ColumnTableTest, ProjectedScanTouchesOnlyNeededColumns) {
  ColumnTable t(TestSchema());
  for (int i = 0; i < 10; ++i) {
    t.Append({Value(int64_t{i}), Value("s"), Value(double(i))});
  }
  std::vector<double> prices;
  t.Scan({2}, [&](RowId, const Row& partial) {
    EXPECT_EQ(1u, partial.size());
    prices.push_back(partial[0].AsDouble());
    return true;
  });
  EXPECT_EQ(10u, prices.size());
  EXPECT_DOUBLE_EQ(9.0, prices.back());
}

TEST(ColumnTableTest, AbsorbMovesRows) {
  ColumnTable main(TestSchema()), delta(TestSchema());
  delta.Append({Value(int64_t{1}), Value("a"), Value(1.0)});
  delta.Append({Value(int64_t{2}), Value("b"), Value(2.0)});
  main.Absorb(&delta);
  EXPECT_EQ(0u, delta.LiveCount());
  EXPECT_EQ(2u, main.LiveCount());
  EXPECT_EQ("b", main.Get(1, 1).AsString());
}

// --- B+-tree: randomized equivalence against std::multimap ---------------

struct BTreeModelTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeModelTest, MatchesReferenceMultimap) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  BTreeIndex bt;
  std::multimap<int64_t, RowId> ref;
  for (int step = 0; step < 4000; ++step) {
    int64_t k = rng.UniformInt(0, 200);
    if (rng.Bernoulli(0.7) || ref.empty()) {
      RowId rid = static_cast<RowId>(step);
      bt.Insert({Value(k)}, rid);
      ref.emplace(k, rid);
    } else {
      // Delete a random existing entry.
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(
                       0, static_cast<int64_t>(ref.size()) - 1)));
      EXPECT_TRUE(bt.Erase({Value(it->first)}, it->second));
      ref.erase(it);
    }
  }
  ASSERT_TRUE(bt.CheckInvariants());
  ASSERT_EQ(ref.size(), bt.size());
  // Range scans agree with the reference on random ranges.
  for (int trial = 0; trial < 50; ++trial) {
    int64_t lo = rng.UniformInt(0, 200);
    int64_t hi = lo + rng.UniformInt(0, 50);
    std::multiset<std::pair<int64_t, RowId>> expect, got;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first < hi; ++it) {
      expect.insert({it->first, it->second});
    }
    bt.ScanRange({Value(lo)}, {Value(hi)}, [&](const IndexKey& k, RowId r) {
      got.insert({k[0].AsInt(), r});
      return true;
    });
    EXPECT_EQ(expect, got) << "range [" << lo << "," << hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(BTreeTest, CompositeKeysAndPrefixScan) {
  BTreeIndex bt;
  for (int64_t a = 0; a < 10; ++a) {
    for (int64_t b = 0; b < 10; ++b) {
      bt.Insert({Value(a), Value(b)}, static_cast<RowId>(a * 10 + b));
    }
  }
  std::vector<RowId> got;
  bt.ScanPrefix({Value(int64_t{4})}, [&](const IndexKey&, RowId r) {
    got.push_back(r);
    return true;
  });
  ASSERT_EQ(10u, got.size());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(static_cast<RowId>(40 + i), got[i]);
}

TEST(BTreeTest, DuplicateKeys) {
  BTreeIndex bt;
  for (RowId r = 0; r < 100; ++r) bt.Insert({Value(int64_t{5})}, r);
  size_t count = 0;
  bt.Lookup({Value(int64_t{5})}, [&](RowId) {
    ++count;
    return true;
  });
  EXPECT_EQ(100u, count);
  EXPECT_TRUE(bt.Erase({Value(int64_t{5})}, 42));
  EXPECT_FALSE(bt.Erase({Value(int64_t{5})}, 42));
  EXPECT_EQ(99u, bt.size());
}

TEST(BTreeTest, EarlyStopScan) {
  BTreeIndex bt;
  for (RowId r = 0; r < 1000; ++r) bt.Insert({Value(int64_t(r))}, r);
  size_t seen = 0;
  bt.ScanRange({}, {}, [&](const IndexKey&, RowId) { return ++seen < 10; });
  EXPECT_EQ(10u, seen);
}

TEST(BTreeTest, FirstLastKey) {
  BTreeIndex bt;
  IndexKey k;
  EXPECT_FALSE(bt.FirstKey(&k));
  for (int64_t v : {42, 7, 99, 13}) bt.Insert({Value(v)}, 0);
  ASSERT_TRUE(bt.FirstKey(&k));
  EXPECT_EQ(7, k[0].AsInt());
  ASSERT_TRUE(bt.LastKey(&k));
  EXPECT_EQ(99, k[0].AsInt());
}

TEST(BTreeTest, GrowsTall) {
  BTreeIndex bt;
  for (RowId r = 0; r < 50000; ++r) bt.Insert({Value(int64_t(r))}, r);
  EXPECT_GE(bt.height(), 3);
  EXPECT_TRUE(bt.CheckInvariants());
}

TEST(BTreeTest, StringKeys) {
  BTreeIndex bt;
  bt.Insert({Value("banana")}, 1);
  bt.Insert({Value("apple")}, 2);
  bt.Insert({Value("cherry")}, 3);
  std::vector<std::string> order;
  bt.ScanRange({}, {}, [&](const IndexKey& k, RowId) {
    order.push_back(k[0].AsString());
    return true;
  });
  EXPECT_EQ((std::vector<std::string>{"apple", "banana", "cherry"}), order);
}

// --- R-tree: randomized equivalence against brute force ------------------

struct RTreeModelTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeModelTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  RTreeIndex rt;
  std::vector<std::pair<Rect, RowId>> ref;
  for (RowId r = 0; r < 2000; ++r) {
    int64_t x = rng.UniformInt(0, 1000);
    int64_t y = rng.UniformInt(0, 1000);
    Rect rect{{x, y}, {x + rng.UniformInt(0, 50), y + rng.UniformInt(0, 50)}};
    rt.Insert(rect, r);
    ref.emplace_back(rect, r);
  }
  ASSERT_TRUE(rt.CheckInvariants());
  ASSERT_EQ(ref.size(), rt.size());
  for (int trial = 0; trial < 30; ++trial) {
    int64_t x = rng.UniformInt(0, 1000);
    int64_t y = rng.UniformInt(0, 1000);
    Rect q{{x, y}, {x + rng.UniformInt(0, 100), y + rng.UniformInt(0, 100)}};
    std::set<RowId> expect, got;
    for (const auto& [rect, rid] : ref) {
      if (rect.Intersects(q)) expect.insert(rid);
    }
    rt.Search(q, [&](const Rect&, RowId rid) {
      got.insert(rid);
      return true;
    });
    EXPECT_EQ(expect, got);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeModelTest, ::testing::Values(1, 2, 3));

TEST(RTreeTest, PeriodMapping) {
  RTreeIndex rt;
  // Period [10, 20) and an open-ended period [30, forever).
  rt.Insert(Rect::FromPeriod(Period(10, 20)), 1);
  rt.Insert(Rect::FromPeriod(Period(30, Period::kForever)), 2);
  auto count_at = [&](int64_t t) {
    int n = 0;
    rt.Search(Rect::Point(t, 0), [&](const Rect&, RowId) {
      ++n;
      return true;
    });
    return n;
  };
  EXPECT_EQ(1, count_at(10));
  EXPECT_EQ(1, count_at(19));
  EXPECT_EQ(0, count_at(20));  // half-open end
  EXPECT_EQ(0, count_at(25));
  EXPECT_EQ(1, count_at(30));
  EXPECT_EQ(1, count_at(1'000'000'000));
}

TEST(RTreeTest, EraseRemovesEntry) {
  RTreeIndex rt;
  Rect r{{1, 1}, {2, 2}};
  rt.Insert(r, 7);
  EXPECT_TRUE(rt.Erase(r, 7));
  EXPECT_FALSE(rt.Erase(r, 7));
  EXPECT_EQ(0u, rt.size());
  int n = 0;
  rt.Search(Rect{{0, 0}, {10, 10}}, [&](const Rect&, RowId) {
    ++n;
    return true;
  });
  EXPECT_EQ(0, n);
}

TEST(RTreeTest, EarlyStop) {
  RTreeIndex rt;
  for (RowId r = 0; r < 100; ++r) rt.Insert(Rect{{0, 0}, {1, 1}}, r);
  int n = 0;
  rt.Search(Rect{{0, 0}, {5, 5}}, [&](const Rect&, RowId) { return ++n < 5; });
  EXPECT_EQ(5, n);
}

TEST(HashIndexTest, InsertLookupErase) {
  HashIndex hi;
  hi.Insert({Value(int64_t{1}), Value("a")}, 10);
  hi.Insert({Value(int64_t{1}), Value("a")}, 11);
  hi.Insert({Value(int64_t{2}), Value("b")}, 20);
  std::set<RowId> got;
  hi.Lookup({Value(int64_t{1}), Value("a")}, [&](RowId r) {
    got.insert(r);
    return true;
  });
  EXPECT_EQ((std::set<RowId>{10, 11}), got);
  EXPECT_TRUE(hi.Erase({Value(int64_t{1}), Value("a")}, 10));
  EXPECT_FALSE(hi.Erase({Value(int64_t{1}), Value("a")}, 10));
  EXPECT_EQ(2u, hi.size());
}

}  // namespace
}  // namespace bih
