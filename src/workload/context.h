#ifndef TPCBIH_WORKLOAD_CONTEXT_H_
#define TPCBIH_WORKLOAD_CONTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "bih/generator.h"
#include "engine/engine.h"
#include "tpch/dbgen.h"

namespace bih {

// A loaded benchmark instance: one engine populated with version 0 plus the
// evolved history, together with the interesting time coordinates the
// queries parameterize over (Section 4: the benchmarking service records
// temporal metadata such as the system-time interval of the generator run).
struct WorkloadContext {
  std::unique_ptr<TemporalEngine> engine;

  // System-time anchors.
  Timestamp sys_v0;    // right after the initial load ("version 0")
  Timestamp sys_mid;   // middle of the history evolution
  Timestamp sys_end;   // after the full history (current)

  // Application-time anchors (day numbers).
  int64_t app_early = 0;  // before most of the evolution
  int64_t app_mid = 0;
  int64_t app_late = 0;   // end of the evolution window

  // The customer with the most versions (K queries) and an order with a
  // long history.
  int64_t hot_custkey = 1;
  int64_t hot_orderkey = 1;

  // Kept for building non-temporal baselines and for verification.
  TpchData initial;
  History history;
  HistoryStats stats;
  TpchData end_state;

  TemporalEngine& eng() const { return *engine; }
};

struct WorkloadConfig {
  std::string engine_letter = "A";
  double h = 0.002;  // TPC-H scale
  double m = 0.002;  // history scale (millions of scenarios)
  uint64_t seed = 42;
  size_t batch_size = 1;
};

// Generates data + history once and loads them into a fresh engine.
WorkloadContext BuildWorkload(const WorkloadConfig& config);

// Loads the same pre-generated data/history into another engine letter,
// so engine comparisons use identical input (the archive pattern of
// Section 4.2).
std::unique_ptr<TemporalEngine> LoadEngine(const std::string& letter,
                                           const TpchData& initial,
                                           const History& history,
                                           size_t batch_size = 1,
                                           std::vector<double>* latencies = nullptr,
                                           std::vector<Scenario>* scenarios = nullptr);

// Builds a non-temporal baseline engine (System D layout, no history)
// holding `snapshot` — used for the Fig. 7 slowdown ratios.
std::unique_ptr<TemporalEngine> LoadBaseline(const TpchData& snapshot);

// Applies index tuning settings from Section 5.1.
enum class IndexSetting { kNone, kTime, kKeyTime, kValue };
Status ApplyIndexSetting(TemporalEngine& engine, IndexSetting setting,
                         IndexType type = IndexType::kBTree);

}  // namespace bih

#endif  // TPCBIH_WORKLOAD_CONTEXT_H_
