#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "workload/queries.h"
#include "workload/tpch_queries.h"

namespace bih {
namespace {

// Canonical form for cross-engine comparison: engines emit rows in
// different physical orders, and floating-point aggregates accumulate in
// that order, so results are sorted and doubles compared with tolerance.
Rows Canonical(Rows rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

void ExpectRowsEq(const Rows& a, const Rows& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what << " row " << i;
    for (size_t c = 0; c < a[i].size(); ++c) {
      const Value& x = a[i][c];
      const Value& y = b[i][c];
      if (x.is_double() || y.is_double()) {
        ASSERT_FALSE(x.is_null() != y.is_null()) << what << " " << i << "," << c;
        if (!x.is_null()) {
          double dx = x.AsDouble(), dy = y.AsDouble();
          double tol = 1e-6 * std::max({1.0, std::fabs(dx), std::fabs(dy)});
          ASSERT_NEAR(dx, dy, tol) << what << " row " << i << " col " << c;
        }
      } else {
        ASSERT_EQ(0, x.Compare(y)) << what << " row " << i << " col " << c
                                   << ": " << x.ToString() << " vs "
                                   << y.ToString();
      }
    }
  }
}

// One shared workload, loaded into all four engines.
class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig cfg;
    cfg.engine_letter = "A";
    cfg.h = 0.001;
    cfg.m = 0.002;
    cfg.seed = 77;
    ctx_ = new WorkloadContext(BuildWorkload(cfg));
    engines_ = new std::vector<std::unique_ptr<TemporalEngine>>();
    engines_->push_back(nullptr);  // slot 0: ctx engine (A)
    for (const std::string letter : {"B", "C", "D"}) {
      engines_->push_back(LoadEngine(letter, ctx_->initial, ctx_->history));
    }
  }
  static void TearDownTestSuite() {
    delete engines_;
    delete ctx_;
  }

  static TemporalEngine& Engine(size_t i) {
    return i == 0 ? *ctx_->engine : *(*engines_)[i];
  }
  static const char* Letter(size_t i) {
    static const char* kLetters[4] = {"A", "B", "C", "D"};
    return kLetters[i];
  }

  // Runs `fn` against every engine and expects identical (canonical)
  // results; returns the engine-A result.
  template <typename Fn>
  Rows AllEnginesAgree(const std::string& what, Fn fn) {
    Rows reference = Canonical(fn(Engine(0)));
    for (size_t i = 1; i < 4; ++i) {
      Rows got = Canonical(fn(Engine(i)));
      ExpectRowsEq(reference, got,
                   what + " (A vs " + Letter(i) + ")");
    }
    return reference;
  }

  static WorkloadContext* ctx_;
  static std::vector<std::unique_ptr<TemporalEngine>>* engines_;
};

WorkloadContext* WorkloadTest::ctx_ = nullptr;
std::vector<std::unique_ptr<TemporalEngine>>* WorkloadTest::engines_ = nullptr;

TEST_F(WorkloadTest, QueryAllAgrees) {
  Rows r = AllEnginesAgree("ALL", [&](TemporalEngine& e) {
    return QueryAll(e);
  });
  ASSERT_EQ(1u, r.size());
  EXPECT_GT(r[0][1].AsInt(), 0);
}

TEST_F(WorkloadTest, T1PointPointAgrees) {
  for (auto [sys, app] :
       {std::pair<int64_t, int64_t>{ctx_->sys_end.micros(), ctx_->app_mid},
        {ctx_->sys_v0.micros(), ctx_->app_early},
        {ctx_->sys_mid.micros(), ctx_->app_late}}) {
    AllEnginesAgree("T1", [&, sys = sys, app = app](TemporalEngine& e) {
      return T1(e, TemporalScanSpec::BothAsOf(sys, app));
    });
  }
}

TEST_F(WorkloadTest, T2PointPointAgrees) {
  AllEnginesAgree("T2", [&](TemporalEngine& e) {
    return T2(e, TemporalScanSpec::BothAsOf(ctx_->sys_mid.micros(),
                                            ctx_->app_mid));
  });
}

TEST_F(WorkloadTest, T2CurrentSysVaryingApp) {
  for (int64_t app : {ctx_->app_early, ctx_->app_mid, ctx_->app_late}) {
    Rows r = AllEnginesAgree("T2app", [&, app = app](TemporalEngine& e) {
      return T2(e, TemporalScanSpec::AppAsOf(app));
    });
    ASSERT_EQ(1u, r.size());
  }
}

TEST_F(WorkloadTest, T3TwoTimeTravelsAgrees) {
  AllEnginesAgree("T3", [&](TemporalEngine& e) {
    return T3(e, ctx_->app_early, ctx_->app_late);
  });
}

TEST_F(WorkloadTest, T4EarlyStopReturnsN) {
  for (size_t i = 0; i < 4; ++i) {
    Rows r = T4(Engine(i), TemporalScanSpec::Current(), 5);
    EXPECT_EQ(5u, r.size()) << Letter(i);
  }
}

TEST_F(WorkloadTest, T6SlicesAgree) {
  AllEnginesAgree("T6app", [&](TemporalEngine& e) {
    return T6AppPointSysAll(e, ctx_->app_mid);
  });
  AllEnginesAgree("T6sys", [&](TemporalEngine& e) {
    return T6SysPointAppAll(e, ctx_->sys_mid);
  });
}

TEST_F(WorkloadTest, T7ImplicitEqualsExplicit) {
  for (size_t i = 0; i < 4; ++i) {
    Rows imp = Canonical(T7Implicit(Engine(i)));
    Rows exp = Canonical(T7Explicit(Engine(i)));
    ExpectRowsEq(imp, exp, std::string("T7 on ") + Letter(i));
  }
}

TEST_F(WorkloadTest, T8SimulatedEqualsNativeAppTravel) {
  // The simulated application-time formulation returns the same answer as
  // the native clause (it is only a plan difference).
  for (size_t i = 0; i < 4; ++i) {
    Rows native = T2(Engine(i), TemporalScanSpec::AppAsOf(ctx_->app_mid));
    Rows sim = T8SimulatedAppPoint(Engine(i), ctx_->app_mid,
                                   TemporalSelector::ImplicitCurrent());
    ExpectRowsEq(Canonical(native), Canonical(sim),
                 std::string("T8 on ") + Letter(i));
  }
}

TEST_F(WorkloadTest, K1KeyHistoryAgrees) {
  TemporalScanSpec app_evolution;  // app all, current sys
  app_evolution.app_time = TemporalSelector::All();
  AllEnginesAgree("K1-app", [&](TemporalEngine& e) {
    return K1(e, ctx_->hot_custkey, app_evolution);
  });
  TemporalScanSpec both;
  both.system_time = TemporalSelector::All();
  both.app_time = TemporalSelector::All();
  Rows full = AllEnginesAgree("K1-both", [&](TemporalEngine& e) {
    return K1(e, ctx_->hot_custkey, both);
  });
  EXPECT_GT(full.size(), 1u);  // the hot customer has history
}

TEST_F(WorkloadTest, K2TimeRestrictedIsSubsetOfK1) {
  TemporalScanSpec restricted;
  restricted.system_time =
      TemporalSelector::Between(ctx_->sys_v0.micros(), ctx_->sys_mid.micros());
  restricted.app_time = TemporalSelector::All();
  Rows sub = AllEnginesAgree("K2", [&](TemporalEngine& e) {
    return K2(e, ctx_->hot_custkey, restricted);
  });
  TemporalScanSpec both;
  both.system_time = TemporalSelector::All();
  both.app_time = TemporalSelector::All();
  Rows full = K1(*ctx_->engine, ctx_->hot_custkey, both);
  EXPECT_LE(sub.size(), full.size());
}

TEST_F(WorkloadTest, K3SingleColumnAgrees) {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::All();
  Rows r = AllEnginesAgree("K3", [&](TemporalEngine& e) {
    return K3(e, ctx_->hot_custkey, spec);
  });
  if (!r.empty()) {
    EXPECT_EQ(2u, r[0].size());
  }
}

TEST_F(WorkloadTest, K4TopNVersions) {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::All();
  for (size_t i = 0; i < 4; ++i) {
    Rows top = K4(Engine(i), ctx_->hot_custkey, spec, 3);
    EXPECT_LE(top.size(), 3u);
    // Versions are the latest ones, in descending system-time order.
    const int sys_from =
        Engine(i).GetTableDef("CUSTOMER").schema.num_columns();
    for (size_t j = 1; j < top.size(); ++j) {
      EXPECT_GE(top[j - 1][sys_from].AsInt(), top[j][sys_from].AsInt());
    }
  }
}

TEST_F(WorkloadTest, K5PreviousVersionAgrees) {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::All();
  AllEnginesAgree("K5", [&](TemporalEngine& e) {
    return K5(e, ctx_->hot_custkey, spec);
  });
}

TEST_F(WorkloadTest, K6ValueInTimeAgrees) {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  AllEnginesAgree("K6", [&](TemporalEngine& e) {
    return K6(e, 9000.0, Value(), spec);
  });
}

TEST_F(WorkloadTest, R1StateChangesAgree) {
  Rows r = AllEnginesAgree("R1", [&](TemporalEngine& e) { return R1(e); });
  // Deliveries and payments happened, so state changes exist.
  EXPECT_GT(r.size(), 0u);
}

TEST_F(WorkloadTest, R2StateDurationsAgree) {
  AllEnginesAgree("R2", [&](TemporalEngine& e) { return R2(e); });
}

TEST_F(WorkloadTest, R3NaiveMatchesTimelineSweep) {
  // The quadratic SQL:2011 formulation and the timeline operator must
  // produce the same aggregate at every boundary the naive version reports.
  Rows naive = R3(*ctx_->engine, TemporalAggKind::kCount, /*naive=*/true);
  Rows sweep = R3(*ctx_->engine, TemporalAggKind::kCount, /*naive=*/false);
  ASSERT_FALSE(naive.empty());
  ASSERT_FALSE(sweep.empty());
  size_t si = 0;
  for (const Row& n : naive) {
    int64_t t = n[0].AsInt();
    while (si < sweep.size() && sweep[si][1].AsInt() <= t) ++si;
    // sweep[si] covers t: [begin, end)
    ASSERT_LT(si, sweep.size());
    ASSERT_LE(sweep[si][0].AsInt(), t);
    EXPECT_DOUBLE_EQ(sweep[si][2].AsDouble(), n[1].AsDouble()) << "t=" << t;
  }
}

TEST_F(WorkloadTest, R4StockDifferencesAgree) {
  Rows r = AllEnginesAgree("R4", [&](TemporalEngine& e) {
    return R4(e, 10);
  });
  EXPECT_LE(r.size(), 10u);
}

TEST_F(WorkloadTest, R5TemporalJoinAgrees) {
  AllEnginesAgree("R5", [&](TemporalEngine& e) {
    return R5(e, 5000.0, 100000.0);
  });
}

TEST_F(WorkloadTest, R6AggregationJoinAgrees) {
  AllEnginesAgree("R6", [&](TemporalEngine& e) { return R6(e); });
}

TEST_F(WorkloadTest, R7PriceRaisesAgree) {
  Rows r = AllEnginesAgree("R7", [&](TemporalEngine& e) {
    return R7(e, 7.5);
  });
  // The "Change Price by Supplier" scenario raises by up to 10 percent, so
  // some suppliers qualify.
  EXPECT_GT(r.size(), 0u);
}

TEST_F(WorkloadTest, B3VariantsAgreeAcrossEngines) {
  const int64_t partkey = 55 % static_cast<int64_t>(ctx_->initial.part.size()) + 1;
  for (int variant = 0; variant <= 11; ++variant) {
    AllEnginesAgree("B3." + std::to_string(variant),
                    [&](TemporalEngine& e) {
                      return B3(e, variant, partkey, ctx_->app_mid,
                                ctx_->sys_mid);
                    });
  }
}

TEST_F(WorkloadTest, B3AgnosticSupersetOfPoint) {
  const int64_t partkey = 55 % static_cast<int64_t>(ctx_->initial.part.size()) + 1;
  Rows point = B3(*ctx_->engine, 1, partkey, ctx_->app_mid, ctx_->sys_mid);
  Rows agnostic = B3(*ctx_->engine, 11, partkey, ctx_->app_mid, ctx_->sys_mid);
  EXPECT_GE(agnostic.size(), point.size());
}

TEST_F(WorkloadTest, IndexSettingsPreserveResults) {
  // Apply each tuning setting to a fresh engine A and verify query results
  // do not change.
  auto tuned = LoadEngine("A", ctx_->initial, ctx_->history);
  Rows before_t2 =
      Canonical(T2(*tuned, TemporalScanSpec::BothAsOf(ctx_->sys_mid.micros(),
                                                      ctx_->app_mid)));
  TemporalScanSpec kspec;
  kspec.system_time = TemporalSelector::All();
  kspec.app_time = TemporalSelector::All();
  Rows before_k1 = Canonical(K1(*tuned, ctx_->hot_custkey, kspec));
  for (IndexSetting setting :
       {IndexSetting::kTime, IndexSetting::kKeyTime, IndexSetting::kValue}) {
    ASSERT_TRUE(ApplyIndexSetting(*tuned, setting).ok());
    Rows after_t2 = Canonical(
        T2(*tuned, TemporalScanSpec::BothAsOf(ctx_->sys_mid.micros(),
                                              ctx_->app_mid)));
    ExpectRowsEq(before_t2, after_t2, "T2 under tuning");
    Rows after_k1 = Canonical(K1(*tuned, ctx_->hot_custkey, kspec));
    ExpectRowsEq(before_k1, after_k1, "K1 under tuning");
    for (const TableDef& def : BiHSchema()) {
      ASSERT_TRUE(tuned->DropIndexes(def.name).ok());
    }
  }
}

TEST_F(WorkloadTest, KeyTimeIndexIsUsedForKeyQueries) {
  auto tuned = LoadEngine("A", ctx_->initial, ctx_->history);
  ASSERT_TRUE(ApplyIndexSetting(*tuned, IndexSetting::kKeyTime).ok());
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  K1(*tuned, ctx_->hot_custkey, spec);
  EXPECT_TRUE(tuned->last_stats().used_index);
  // Index access examines far fewer rows than the table has.
  TableStats ts = tuned->GetTableStats("CUSTOMER");
  EXPECT_LT(tuned->last_stats().rows_examined,
            (ts.current_rows + ts.history_rows) / 2);
}

TEST_F(WorkloadTest, GistIndexWorksOnSystemD) {
  auto tuned = LoadEngine("D", ctx_->initial, ctx_->history);
  Rows before = Canonical(T2(*tuned, TemporalScanSpec::AppAsOf(ctx_->app_early)));
  ASSERT_TRUE(
      ApplyIndexSetting(*tuned, IndexSetting::kTime, IndexType::kRTree).ok());
  Rows after = Canonical(T2(*tuned, TemporalScanSpec::AppAsOf(ctx_->app_early)));
  ExpectRowsEq(before, after, "T2 with GiST");
}

TEST_F(WorkloadTest, BaselineMatchesTemporalCurrent) {
  // The non-temporal end-state baseline must agree with the temporal
  // engine's implicit-current view (same data, no history).
  auto baseline = LoadBaseline(ctx_->end_state);
  Rows temporal_now = Canonical(T2(*ctx_->engine, TemporalScanSpec::Current()));
  Rows base_now = Canonical(T2(*baseline, TemporalScanSpec::Current()));
  ExpectRowsEq(temporal_now, base_now, "baseline current");
}

}  // namespace
}  // namespace bih
