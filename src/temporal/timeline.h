#ifndef TPCBIH_TEMPORAL_TIMELINE_H_
#define TPCBIH_TEMPORAL_TIMELINE_H_

#include <functional>
#include <vector>

#include "common/period.h"
#include "common/value.h"

namespace bih {

// Algorithms over sets of timestamped intervals. These implement the
// temporal operators SQL:2011 lacks (Section 3.3 of the paper): temporal
// aggregation (R3) and temporal joins (R5, B3 correlation variants). The
// sweep produces a result row per change point, the paper's definition of
// temporal aggregation.

// One interval-stamped input value.
struct TimelineEntry {
  Period period;
  double value = 0.0;
  // Optional group key for grouped variants; empty = single group.
  Value group;
};

enum class TemporalAggKind { kSum, kCount, kAvg, kMax, kMin };

// Aggregated value over a constancy interval of the timeline.
struct TimelineSlice {
  Period period;   // maximal interval where the aggregate is constant
  double value;    // aggregate over entries active in this interval
  int64_t count;   // number of active entries
};

// Computes aggregate(entries active at t) for every maximal interval with a
// constant active set. Event sweep over interval boundaries: O(n log n).
// Intervals with an empty active set are omitted. kMax/kMin recompute from
// the active multiset; kSum/kCount/kAvg are maintained incrementally.
std::vector<TimelineSlice> TemporalAggregate(std::vector<TimelineEntry> entries,
                                             TemporalAggKind kind);

// Interval overlap join: calls fn(left index, right index, overlap) for all
// pairs whose periods intersect. Plane-sweep over sorted boundaries with an
// active list: O(n log n + output). Join predicates on values are applied by
// the caller inside fn.
void IntervalJoin(const std::vector<Period>& left,
                  const std::vector<Period>& right,
                  const std::function<void(size_t, size_t, const Period&)>& fn);

}  // namespace bih

#endif  // TPCBIH_TEMPORAL_TIMELINE_H_
