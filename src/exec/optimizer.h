#ifndef TPCBIH_EXEC_OPTIMIZER_H_
#define TPCBIH_EXEC_OPTIMIZER_H_

#include <string>

#include "exec/plan.h"

namespace bih {

// Rule-based plan rewriter. Every rule preserves the observable result of
// the tree (the rows Execute materializes at the root, in order); what the
// rules change is how much of the version space the engines touch, which is
// exactly the axis the paper's Section 5 measures. Three rewrites:
//
//  * Predicate pushdown: AND-conjuncts of a Filter sitting on a join move
//    below the join when they reference only one side (right-side column
//    references are rebased by the left width). Left-outer joins only push
//    left-side conjuncts — a right-side filter above the join also sees the
//    NULL-padded rows, so moving it below would change the padding.
//  * Scan folding: a Filter directly over a Scan folds sargable conjuncts
//    into the ScanRequest — equality with a literal into `equals` (the
//    index-eligible form; the paper's Fig. 7 temporal joins hinge on it)
//    and non-strict range bounds into range_col/lo/hi. Folding into the
//    temporal selector comes first: a filter reproducing the bitemporal
//    visibility predicate over the period columns (sys_from <= T < sys_to,
//    or an application period's begin <= T < end) becomes the
//    corresponding AS OF selector — the paper's T8 -> T2 observation that
//    a time-travel predicate stated as a WHERE clause defeats temporal
//    partition pruning until it is recognized as one.
//  * Column pruning: each Scan is told which columns the tree above it
//    actually consumes (ScanRequest::projection). Row width is unchanged —
//    column stores simply skip materializing dead attributes.
//
// The optimizer needs the engine only for schema arity (column counts,
// period column positions); it never executes anything.

struct OptimizerReport {
  int predicates_pushed = 0;   // conjuncts moved below a join
  int conjuncts_folded = 0;    // conjuncts absorbed into equals/range
  int temporal_rewrites = 0;   // visibility filters folded into selectors
  int scans_pruned = 0;        // scans given a projection list

  std::string ToString() const;
};

// Rewrites *plan in place (the root node may be replaced, e.g. when a
// Filter folds away entirely). `report`, when non-null, receives what
// fired — the golden tests assert on it.
void OptimizePlan(PlanPtr* plan, const TemporalEngine& engine,
                  OptimizerReport* report = nullptr);

}  // namespace bih

#endif  // TPCBIH_EXEC_OPTIMIZER_H_
