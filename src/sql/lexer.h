#ifndef TPCBIH_SQL_LEXER_H_
#define TPCBIH_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace bih {
namespace sql {

enum class TokenType {
  kIdent,    // identifier or keyword (case-insensitive)
  kNumber,   // integer or decimal literal
  kString,   // '...' literal (with '' escaping)
  kSymbol,   // punctuation / operator: ( ) , * + - / = <> < <= > >= .
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;   // keywords uppercased; symbols verbatim
  size_t offset = 0;  // position in the input, for error messages
};

// Splits a SQL string into tokens. Returns InvalidArgument on malformed
// input (unterminated string, stray character).
Status Tokenize(const std::string& input, std::vector<Token>* out);

}  // namespace sql
}  // namespace bih

#endif  // TPCBIH_SQL_LEXER_H_
