#include "workload/tpch_queries.h"

#include <algorithm>
#include <string>

#include "tpch/schema.h"

namespace bih {

namespace {

// Scan widths (user columns + the two system-time columns).
constexpr int WR = 5;    // REGION
constexpr int WN = 6;    // NATION
constexpr int WS = 8;    // SUPPLIER
constexpr int WP = 12;   // PART
constexpr int WPS = 8;   // PARTSUPP
constexpr int WC = 11;   // CUSTOMER
constexpr int WO = 14;   // ORDERS
constexpr int WL = 19;   // LINEITEM

int64_t D(int y, int m, int d) { return Date::FromYMD(y, m, d).days(); }

// Per-query plan factory binding the temporal coordinates. Queries build
// one PlanNode tree and Run() it; only the data-dependent ones (Q11's
// threshold, Q15's max, Q22's average) materialize an intermediate and
// continue from a ValuesPlan.
struct Ctx {
  TemporalEngine& e;
  TemporalScanSpec spec;

  PlanPtr Scan(const char* table) const {
    ScanRequest req;
    req.table = table;
    req.temporal = spec;
    return ScanPlan(std::move(req));
  }

  Rows Run(PlanPtr plan) const { return RunPlan(*plan, e); }
};

SortSpec By(int col, bool asc = true) { return SortSpec{Col(col), asc}; }

ExprPtr Revenue(int ext, int disc) {
  return Mul(Col(ext), Sub(Lit(1.0), Col(disc)));
}

Rows Q1(const Ctx& c) {
  namespace l = lineitem;
  PlanPtr li = FilterPlan(c.Scan("LINEITEM"),
                          Le(Col(l::kShipDate), Lit(D(1998, 9, 2))));
  PlanPtr agg = AggregatePlan(
      std::move(li), {l::kReturnFlag, l::kLineStatus},
      {{AggKind::kSum, Col(l::kQuantity)},
       {AggKind::kSum, Col(l::kExtendedPrice)},
       {AggKind::kSum, Revenue(l::kExtendedPrice, l::kDiscount)},
       {AggKind::kSum, Mul(Revenue(l::kExtendedPrice, l::kDiscount),
                           Add(Lit(1.0), Col(l::kTax)))},
       {AggKind::kAvg, Col(l::kQuantity)},
       {AggKind::kAvg, Col(l::kExtendedPrice)},
       {AggKind::kAvg, Col(l::kDiscount)},
       {AggKind::kCount, nullptr}});
  return c.Run(SortPlan(std::move(agg), {By(0), By(1)}));
}

Rows Q2(const Ctx& c) {
  namespace p = part;
  namespace ps = partsupp;
  namespace s = supplier;
  namespace n = nation;
  namespace r = region;
  // Suppliers in EUROPE with nation/region attached; PARTSUPP restricted to
  // those suppliers. The pssnr subtree feeds both the regional minimum and
  // the final join, so materialize it once.
  PlanPtr reg = FilterPlan(c.Scan("REGION"), Eq(Col(r::kName), Lit("EUROPE")));
  PlanPtr sn = HashJoinPlan(c.Scan("SUPPLIER"), c.Scan("NATION"),
                            {s::kNationKey}, {n::kNationKey}, WN);
  PlanPtr snr = HashJoinPlan(std::move(sn), std::move(reg),
                             {WS + n::kRegionKey}, {r::kRegionKey}, WR);
  Rows pssnr = c.Run(HashJoinPlan(c.Scan("PARTSUPP"), std::move(snr),
                                  {ps::kSuppKey}, {s::kSuppKey},
                                  WS + WN + WR));
  // Regional minimum cost per part.
  PlanPtr mincost = AggregatePlan(ValuesPlan(pssnr), {ps::kPartKey},
                                  {{AggKind::kMin, Col(ps::kSupplyCost)}});
  // Parts of interest.
  PlanPtr parts = FilterPlan(
      c.Scan("PART"), And(Eq(Col(p::kSize), Lit(int64_t{15})),
                          Contains(Col(p::kType), Lit("BRASS"))));
  PlanPtr j = HashJoinPlan(std::move(parts), ValuesPlan(std::move(pssnr)),
                           {p::kPartKey}, {ps::kPartKey}, WPS + WS + WN + WR);
  // Attach the regional minimum and keep only cost == min.
  const int jw = WP + WPS + WS + WN + WR;
  PlanPtr withmin = FilterPlan(
      HashJoinPlan(std::move(j), std::move(mincost), {p::kPartKey}, {0}, 2),
      Eq(Col(WP + ps::kSupplyCost), Col(jw + 1)));
  const int so = WP + WPS;  // supplier offset
  const int no = WP + WPS + WS;
  PlanPtr out = ProjectPlan(
      std::move(withmin),
      {Col(so + s::kAcctBal), Col(so + s::kName), Col(no + n::kName),
       Col(p::kPartKey), Col(p::kMfgr)});
  return c.Run(LimitPlan(
      SortPlan(std::move(out), {By(0, false), By(2), By(1), By(3)}), 100));
}

Rows Q3(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  PlanPtr cust = FilterPlan(c.Scan("CUSTOMER"),
                            Eq(Col(cu::kMktSegment), Lit("BUILDING")));
  PlanPtr ords = FilterPlan(c.Scan("ORDERS"),
                            Lt(Col(o::kOrderDate), Lit(D(1995, 3, 15))));
  PlanPtr li = FilterPlan(c.Scan("LINEITEM"),
                          Gt(Col(l::kShipDate), Lit(D(1995, 3, 15))));
  PlanPtr co = HashJoinPlan(std::move(cust), std::move(ords), {cu::kCustKey},
                            {o::kCustKey}, WO);
  PlanPtr col = HashJoinPlan(std::move(co), std::move(li),
                             {WC + o::kOrderKey}, {l::kOrderKey}, WL);
  const int lo = WC + WO;
  PlanPtr agg = AggregatePlan(
      std::move(col),
      {WC + o::kOrderKey, WC + o::kOrderDate, WC + o::kShipPriority},
      {{AggKind::kSum, Revenue(lo + l::kExtendedPrice, lo + l::kDiscount)}});
  return c.Run(
      LimitPlan(SortPlan(std::move(agg), {By(3, false), By(1)}), 10));
}

Rows Q4(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  PlanPtr ords = FilterPlan(
      c.Scan("ORDERS"), And(Ge(Col(o::kOrderDate), Lit(D(1993, 7, 1))),
                            Lt(Col(o::kOrderDate), Lit(D(1993, 10, 1)))));
  PlanPtr late = FilterPlan(c.Scan("LINEITEM"),
                            Lt(Col(l::kCommitDate), Col(l::kReceiptDate)));
  PlanPtr late_keys =
      DistinctPlan(ProjectPlan(std::move(late), {Col(l::kOrderKey)}));
  PlanPtr j = HashJoinPlan(std::move(ords), std::move(late_keys),
                           {o::kOrderKey}, {0}, 1);
  PlanPtr agg = AggregatePlan(std::move(j), {o::kOrderPriority},
                              {{AggKind::kCount, nullptr}});
  return c.Run(SortPlan(std::move(agg), {By(0)}));
}

Rows Q5(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  namespace r = region;
  PlanPtr reg = FilterPlan(c.Scan("REGION"), Eq(Col(r::kName), Lit("ASIA")));
  PlanPtr nat = HashJoinPlan(c.Scan("NATION"), std::move(reg), {n::kRegionKey},
                             {r::kRegionKey}, WR);
  PlanPtr cust = HashJoinPlan(c.Scan("CUSTOMER"), std::move(nat),
                              {cu::kNationKey}, {n::kNationKey}, WN + WR);
  PlanPtr ords = FilterPlan(
      c.Scan("ORDERS"), And(Ge(Col(o::kOrderDate), Lit(D(1994, 1, 1))),
                            Lt(Col(o::kOrderDate), Lit(D(1995, 1, 1)))));
  PlanPtr co = HashJoinPlan(std::move(cust), std::move(ords), {cu::kCustKey},
                            {o::kCustKey}, WO);
  const int oo = WC + WN + WR;
  PlanPtr col = HashJoinPlan(std::move(co), c.Scan("LINEITEM"),
                             {oo + o::kOrderKey}, {l::kOrderKey}, WL);
  const int lo = oo + WO;
  // lineitem supplier must be in the same nation as the customer.
  PlanPtr cols = HashJoinPlan(std::move(col), c.Scan("SUPPLIER"),
                              {lo + l::kSuppKey}, {s::kSuppKey}, WS,
                              JoinType::kInner,
                              Eq(Col(cu::kNationKey),
                                 Col(lo + WL + s::kNationKey)));
  PlanPtr agg = AggregatePlan(
      std::move(cols), {WC + n::kName},
      {{AggKind::kSum, Revenue(lo + l::kExtendedPrice, lo + l::kDiscount)}});
  return c.Run(SortPlan(std::move(agg), {By(1, false)}));
}

Rows Q6(const Ctx& c) {
  namespace l = lineitem;
  PlanPtr li = FilterPlan(
      c.Scan("LINEITEM"),
      And(And(Ge(Col(l::kShipDate), Lit(D(1994, 1, 1))),
              Lt(Col(l::kShipDate), Lit(D(1995, 1, 1)))),
          And(Between(Col(l::kDiscount), Lit(0.05), Lit(0.07)),
              Lt(Col(l::kQuantity), Lit(24.0)))));
  return c.Run(AggregatePlan(
      std::move(li), {},
      {{AggKind::kSum, Mul(Col(l::kExtendedPrice), Col(l::kDiscount))}}));
}

Rows Q7(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  auto nations = [&] {
    return FilterPlan(c.Scan("NATION"), Or(Eq(Col(n::kName), Lit("FRANCE")),
                                           Eq(Col(n::kName), Lit("GERMANY"))));
  };
  PlanPtr sup = HashJoinPlan(c.Scan("SUPPLIER"), nations(), {s::kNationKey},
                             {n::kNationKey}, WN);
  PlanPtr cust = HashJoinPlan(c.Scan("CUSTOMER"), nations(), {cu::kNationKey},
                              {n::kNationKey}, WN);
  PlanPtr li = FilterPlan(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1995, 1, 1))),
                              Le(Col(l::kShipDate), Lit(D(1996, 12, 31)))));
  PlanPtr ls = HashJoinPlan(std::move(li), std::move(sup), {l::kSuppKey},
                            {s::kSuppKey}, WS + WN);
  PlanPtr lso = HashJoinPlan(std::move(ls), c.Scan("ORDERS"), {l::kOrderKey},
                             {orders::kOrderKey}, WO);
  const int oo = WL + WS + WN;
  PlanPtr lsoc = HashJoinPlan(std::move(lso), std::move(cust),
                              {oo + o::kCustKey}, {cu::kCustKey}, WC + WN);
  const int sn = WL + WS + n::kName;            // supplier nation name
  const int cn = oo + WO + WC + n::kName;       // customer nation name
  PlanPtr cross = FilterPlan(
      std::move(lsoc),
      Or(And(Eq(Col(sn), Lit("FRANCE")), Eq(Col(cn), Lit("GERMANY"))),
         And(Eq(Col(sn), Lit("GERMANY")), Eq(Col(cn), Lit("FRANCE")))));
  PlanPtr proj = ProjectPlan(
      std::move(cross), {Col(sn), Col(cn), YearOf(Col(l::kShipDate)),
                         Revenue(l::kExtendedPrice, l::kDiscount)});
  PlanPtr agg =
      AggregatePlan(std::move(proj), {0, 1, 2}, {{AggKind::kSum, Col(3)}});
  return c.Run(SortPlan(std::move(agg), {By(0), By(1), By(2)}));
}

Rows Q8(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  namespace r = region;
  namespace p = part;
  PlanPtr parts = FilterPlan(
      c.Scan("PART"), Eq(Col(p::kType), Lit("ECONOMY ANODIZED STEEL")));
  PlanPtr pl = HashJoinPlan(std::move(parts), c.Scan("LINEITEM"),
                            {p::kPartKey}, {l::kPartKey}, WL);
  const int lo = WP;
  PlanPtr plo = HashJoinPlan(
      std::move(pl),
      FilterPlan(c.Scan("ORDERS"),
                 And(Ge(Col(o::kOrderDate), Lit(D(1995, 1, 1))),
                     Le(Col(o::kOrderDate), Lit(D(1996, 12, 31))))),
      {lo + l::kOrderKey}, {o::kOrderKey}, WO);
  const int oo = WP + WL;
  PlanPtr ploc = HashJoinPlan(std::move(plo), c.Scan("CUSTOMER"),
                              {oo + o::kCustKey}, {cu::kCustKey}, WC);
  const int co = oo + WO;
  PlanPtr reg = FilterPlan(c.Scan("REGION"),
                           Eq(Col(r::kName), Lit("AMERICA")));
  PlanPtr cn = HashJoinPlan(c.Scan("NATION"), std::move(reg), {n::kRegionKey},
                            {r::kRegionKey}, WR);
  PlanPtr plocn = HashJoinPlan(std::move(ploc), std::move(cn),
                               {co + cu::kNationKey}, {n::kNationKey},
                               WN + WR);
  PlanPtr sn = HashJoinPlan(c.Scan("SUPPLIER"), c.Scan("NATION"),
                            {s::kNationKey}, {n::kNationKey}, WN);
  PlanPtr all = HashJoinPlan(std::move(plocn), std::move(sn),
                             {lo + l::kSuppKey}, {s::kSuppKey}, WS + WN);
  const int suppnat = co + WC + WN + WR + WS + n::kName;
  PlanPtr proj = ProjectPlan(
      std::move(all),
      {YearOf(Col(oo + o::kOrderDate)),
       Revenue(lo + l::kExtendedPrice, lo + l::kDiscount),
       Mul(Eq(Col(suppnat), Lit("BRAZIL")),
           Revenue(lo + l::kExtendedPrice, lo + l::kDiscount))});
  PlanPtr agg = AggregatePlan(
      std::move(proj), {0}, {{AggKind::kSum, Col(2)}, {AggKind::kSum, Col(1)}});
  PlanPtr share = ProjectPlan(std::move(agg), {Col(0), Div(Col(1), Col(2))});
  return c.Run(SortPlan(std::move(share), {By(0)}));
}

Rows Q9(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  namespace p = part;
  namespace ps = partsupp;
  PlanPtr parts = FilterPlan(c.Scan("PART"),
                             Contains(Col(p::kName), Lit("green")));
  PlanPtr pl = HashJoinPlan(std::move(parts), c.Scan("LINEITEM"),
                            {p::kPartKey}, {l::kPartKey}, WL);
  const int lo = WP;
  PlanPtr pls = HashJoinPlan(std::move(pl), c.Scan("SUPPLIER"),
                             {lo + l::kSuppKey}, {s::kSuppKey}, WS);
  const int so = WP + WL;
  PlanPtr plsps = HashJoinPlan(std::move(pls), c.Scan("PARTSUPP"),
                               {p::kPartKey, lo + l::kSuppKey},
                               {ps::kPartKey, ps::kSuppKey}, WPS);
  const int pso = so + WS;
  PlanPtr all = HashJoinPlan(std::move(plsps), c.Scan("ORDERS"),
                             {lo + l::kOrderKey}, {o::kOrderKey}, WO);
  const int oo = pso + WPS;
  PlanPtr alln = HashJoinPlan(std::move(all), c.Scan("NATION"),
                              {so + s::kNationKey}, {n::kNationKey}, WN);
  const int no = oo + WO;
  // profit = ext*(1-disc) - supplycost*qty
  PlanPtr proj = ProjectPlan(
      std::move(alln),
      {Col(no + n::kName), YearOf(Col(oo + o::kOrderDate)),
       Sub(Revenue(lo + l::kExtendedPrice, lo + l::kDiscount),
           Mul(Col(pso + ps::kSupplyCost), Col(lo + l::kQuantity)))});
  PlanPtr agg =
      AggregatePlan(std::move(proj), {0, 1}, {{AggKind::kSum, Col(2)}});
  return c.Run(SortPlan(std::move(agg), {By(0), By(1, false)}));
}

Rows Q10(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace n = nation;
  PlanPtr ords = FilterPlan(
      c.Scan("ORDERS"), And(Ge(Col(o::kOrderDate), Lit(D(1993, 10, 1))),
                            Lt(Col(o::kOrderDate), Lit(D(1994, 1, 1)))));
  PlanPtr co = HashJoinPlan(c.Scan("CUSTOMER"), std::move(ords),
                            {cu::kCustKey}, {o::kCustKey}, WO);
  PlanPtr li = FilterPlan(c.Scan("LINEITEM"),
                          Eq(Col(l::kReturnFlag), Lit("R")));
  PlanPtr col = HashJoinPlan(std::move(co), std::move(li),
                             {WC + o::kOrderKey}, {l::kOrderKey}, WL);
  const int lo = WC + WO;
  PlanPtr coln = HashJoinPlan(std::move(col), c.Scan("NATION"),
                              {cu::kNationKey}, {n::kNationKey}, WN);
  const int no = lo + WL;
  PlanPtr agg = AggregatePlan(
      std::move(coln),
      {cu::kCustKey, cu::kName, cu::kAcctBal, cu::kPhone, no + n::kName,
       cu::kAddress},
      {{AggKind::kSum, Revenue(lo + l::kExtendedPrice, lo + l::kDiscount)}});
  return c.Run(LimitPlan(SortPlan(std::move(agg), {By(6, false)}), 20));
}

Rows Q11(const Ctx& c) {
  namespace s = supplier;
  namespace n = nation;
  namespace ps = partsupp;
  PlanPtr nat = FilterPlan(c.Scan("NATION"),
                           Eq(Col(n::kName), Lit("GERMANY")));
  PlanPtr sn = HashJoinPlan(c.Scan("SUPPLIER"), std::move(nat),
                            {s::kNationKey}, {n::kNationKey}, WN);
  Rows pssn = c.Run(HashJoinPlan(c.Scan("PARTSUPP"), std::move(sn),
                                 {ps::kSuppKey}, {s::kSuppKey}, WS + WN));
  ExprPtr value = Mul(Col(ps::kSupplyCost), Col(ps::kAvailQty));
  Rows total = c.Run(AggregatePlan(ValuesPlan(pssn), {},
                                   {{AggKind::kSum, value}}));
  double threshold = total[0][0].is_null()
                         ? 0.0
                         : total[0][0].AsDouble() * 0.0001;
  PlanPtr per_part = AggregatePlan(ValuesPlan(std::move(pssn)),
                                   {ps::kPartKey}, {{AggKind::kSum, value}});
  PlanPtr out =
      FilterPlan(std::move(per_part), Gt(Col(1), Lit(threshold)));
  return c.Run(SortPlan(std::move(out), {By(1, false)}));
}

Rows Q12(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  PlanPtr li = FilterPlan(
      c.Scan("LINEITEM"),
      And(And(Or(Eq(Col(l::kShipMode), Lit("MAIL")),
                 Eq(Col(l::kShipMode), Lit("SHIP"))),
              And(Lt(Col(l::kCommitDate), Col(l::kReceiptDate)),
                  Lt(Col(l::kShipDate), Col(l::kCommitDate)))),
          And(Ge(Col(l::kReceiptDate), Lit(D(1994, 1, 1))),
              Lt(Col(l::kReceiptDate), Lit(D(1995, 1, 1))))));
  PlanPtr lo_ = HashJoinPlan(std::move(li), c.Scan("ORDERS"), {l::kOrderKey},
                             {o::kOrderKey}, WO);
  const int oo = WL;
  ExprPtr high = Or(Eq(Col(oo + o::kOrderPriority), Lit("1-URGENT")),
                    Eq(Col(oo + o::kOrderPriority), Lit("2-HIGH")));
  PlanPtr proj =
      ProjectPlan(std::move(lo_), {Col(l::kShipMode), high, Not(high)});
  PlanPtr agg = AggregatePlan(
      std::move(proj), {0}, {{AggKind::kSum, Col(1)}, {AggKind::kSum, Col(2)}});
  return c.Run(SortPlan(std::move(agg), {By(0)}));
}

Rows Q13(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  // Substituted filter (no o_comment column): exclude unspecified-priority
  // orders, preserving the outer join + filtered-probe plan shape.
  PlanPtr ords = FilterPlan(c.Scan("ORDERS"),
                            Ne(Col(o::kOrderPriority), Lit("4-NOT SPECIFIED")));
  PlanPtr proj_orders =
      ProjectPlan(std::move(ords), {Col(o::kCustKey), Col(o::kOrderKey)});
  PlanPtr co = HashJoinPlan(c.Scan("CUSTOMER"), std::move(proj_orders),
                            {cu::kCustKey}, {0}, 2, JoinType::kLeftOuter);
  PlanPtr counts = AggregatePlan(std::move(co), {cu::kCustKey},
                                 {{AggKind::kCount, Col(WC + 1)}});
  PlanPtr dist = AggregatePlan(std::move(counts), {1},
                               {{AggKind::kCount, nullptr}});
  return c.Run(SortPlan(std::move(dist), {By(1, false), By(0, false)}));
}

Rows Q14(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  PlanPtr li = FilterPlan(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1995, 9, 1))),
                              Lt(Col(l::kShipDate), Lit(D(1995, 10, 1)))));
  PlanPtr lp = HashJoinPlan(std::move(li), c.Scan("PART"), {l::kPartKey},
                            {p::kPartKey}, WP);
  ExprPtr rev = Revenue(l::kExtendedPrice, l::kDiscount);
  ExprPtr promo = Mul(StartsWith(Col(WL + p::kType), Lit("PROMO")), rev);
  PlanPtr agg = AggregatePlan(
      std::move(lp), {}, {{AggKind::kSum, promo}, {AggKind::kSum, rev}});
  return c.Run(ProjectPlan(std::move(agg),
                           {Div(Mul(Lit(100.0), Col(0)), Col(1))}));
}

Rows Q15(const Ctx& c) {
  namespace l = lineitem;
  namespace s = supplier;
  PlanPtr li = FilterPlan(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1996, 1, 1))),
                              Lt(Col(l::kShipDate), Lit(D(1996, 4, 1)))));
  Rows rev = c.Run(AggregatePlan(
      std::move(li), {l::kSuppKey},
      {{AggKind::kSum, Revenue(l::kExtendedPrice, l::kDiscount)}}));
  double best = 0.0;
  for (const Row& r : rev) {
    if (!r[1].is_null()) best = std::max(best, r[1].AsDouble());
  }
  PlanPtr top =
      FilterPlan(ValuesPlan(std::move(rev)), Ge(Col(1), Lit(best)));
  PlanPtr out = HashJoinPlan(std::move(top), c.Scan("SUPPLIER"), {0},
                             {s::kSuppKey}, WS);
  return c.Run(SortPlan(
      ProjectPlan(std::move(out),
                  {Col(2 + s::kSuppKey), Col(2 + s::kName), Col(1)}),
      {By(0)}));
}

Rows Q16(const Ctx& c) {
  namespace p = part;
  namespace ps = partsupp;
  namespace s = supplier;
  static const int64_t kSizes[8] = {49, 14, 23, 45, 19, 3, 36, 9};
  ExprPtr size_in = Eq(Col(p::kSize), Lit(kSizes[0]));
  for (int i = 1; i < 8; ++i) {
    size_in = Or(size_in, Eq(Col(p::kSize), Lit(kSizes[i])));
  }
  PlanPtr parts = FilterPlan(
      c.Scan("PART"),
      And(And(Ne(Col(p::kBrand), Lit("Brand#45")),
              Not(StartsWith(Col(p::kType), Lit("MEDIUM POLISHED")))),
          size_in));
  PlanPtr psp = HashJoinPlan(c.Scan("PARTSUPP"), std::move(parts),
                             {ps::kPartKey}, {p::kPartKey}, WP);
  // Substituted complaints filter: suppliers with negative balance are
  // excluded via anti-join.
  PlanPtr bad = FilterPlan(c.Scan("SUPPLIER"),
                           Lt(Col(s::kAcctBal), Lit(0.0)));
  PlanPtr bad_keys =
      DistinctPlan(ProjectPlan(std::move(bad), {Col(s::kSuppKey)}));
  PlanPtr joined = HashJoinPlan(std::move(psp), std::move(bad_keys),
                                {ps::kSuppKey}, {0}, 1, JoinType::kLeftOuter);
  const int anti = WPS + WP;
  PlanPtr kept = FilterPlan(std::move(joined), IsNull(Col(anti)));
  PlanPtr agg = AggregatePlan(
      std::move(kept), {WPS + p::kBrand, WPS + p::kType, WPS + p::kSize},
      {{AggKind::kCountDistinct, Col(ps::kSuppKey)}});
  return c.Run(
      SortPlan(std::move(agg), {By(3, false), By(0), By(1), By(2)}));
}

Rows Q17(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  PlanPtr parts = FilterPlan(c.Scan("PART"),
                             And(Eq(Col(p::kBrand), Lit("Brand#23")),
                                 Eq(Col(p::kContainer), Lit("MED BOX"))));
  // LINEITEM feeds both the probe and the per-part average: scan once.
  Rows li = c.Run(c.Scan("LINEITEM"));
  PlanPtr lp = HashJoinPlan(ValuesPlan(li), std::move(parts), {l::kPartKey},
                            {p::kPartKey}, WP);
  PlanPtr avgq = AggregatePlan(ValuesPlan(std::move(li)), {l::kPartKey},
                               {{AggKind::kAvg, Col(l::kQuantity)}});
  PlanPtr la = HashJoinPlan(std::move(lp), std::move(avgq), {l::kPartKey},
                            {0}, 2);
  const int avg_col = WL + WP + 1;
  PlanPtr small = FilterPlan(
      std::move(la), Lt(Col(l::kQuantity), Mul(Lit(0.2), Col(avg_col))));
  PlanPtr agg = AggregatePlan(std::move(small), {},
                              {{AggKind::kSum, Col(l::kExtendedPrice)}});
  return c.Run(ProjectPlan(std::move(agg), {Div(Col(0), Lit(7.0))}));
}

Rows Q18(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  PlanPtr big = FilterPlan(
      AggregatePlan(c.Scan("LINEITEM"), {l::kOrderKey},
                    {{AggKind::kSum, Col(l::kQuantity)}}),
      Gt(Col(1), Lit(300.0)));
  PlanPtr ob = HashJoinPlan(c.Scan("ORDERS"), std::move(big), {o::kOrderKey},
                            {0}, 2);
  PlanPtr cob = HashJoinPlan(c.Scan("CUSTOMER"), std::move(ob), {cu::kCustKey},
                             {o::kCustKey}, WO + 2);
  const int oo = WC;
  PlanPtr out = ProjectPlan(
      std::move(cob),
      {Col(cu::kName), Col(cu::kCustKey), Col(oo + o::kOrderKey),
       Col(oo + o::kOrderDate), Col(oo + o::kTotalPrice), Col(oo + WO + 1)});
  return c.Run(
      LimitPlan(SortPlan(std::move(out), {By(4, false), By(3)}), 100));
}

Rows Q19(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  PlanPtr li = FilterPlan(
      c.Scan("LINEITEM"),
      And(Or(Eq(Col(l::kShipMode), Lit("AIR")),
             Eq(Col(l::kShipMode), Lit("REG AIR"))),
          Eq(Col(l::kShipInstruct), Lit("DELIVER IN PERSON"))));
  PlanPtr lp = HashJoinPlan(std::move(li), c.Scan("PART"), {l::kPartKey},
                            {p::kPartKey}, WP);
  auto clause = [&](const char* brand, const char* cont_prefix, double qlo,
                    double qhi, int64_t size_hi) {
    return And(And(Eq(Col(WL + p::kBrand), Lit(brand)),
                   StartsWith(Col(WL + p::kContainer), Lit(cont_prefix))),
               And(Between(Col(l::kQuantity), Lit(qlo), Lit(qhi)),
                   Between(Col(WL + p::kSize), Lit(int64_t{1}),
                           Lit(size_hi))));
  };
  PlanPtr matched = FilterPlan(
      std::move(lp), Or(Or(clause("Brand#12", "SM", 1.0, 11.0, 5),
                           clause("Brand#23", "MED", 10.0, 20.0, 10)),
                        clause("Brand#34", "LG", 20.0, 30.0, 15)));
  return c.Run(AggregatePlan(
      std::move(matched), {},
      {{AggKind::kSum, Revenue(l::kExtendedPrice, l::kDiscount)}}));
}

Rows Q20(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  namespace ps = partsupp;
  namespace s = supplier;
  namespace n = nation;
  PlanPtr parts = FilterPlan(c.Scan("PART"),
                             StartsWith(Col(p::kName), Lit("forest")));
  PlanPtr part_keys =
      DistinctPlan(ProjectPlan(std::move(parts), {Col(p::kPartKey)}));
  PlanPtr li = FilterPlan(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1994, 1, 1))),
                              Lt(Col(l::kShipDate), Lit(D(1995, 1, 1)))));
  PlanPtr usage = AggregatePlan(std::move(li), {l::kPartKey, l::kSuppKey},
                                {{AggKind::kSum, Col(l::kQuantity)}});
  PlanPtr pu = HashJoinPlan(std::move(usage), std::move(part_keys), {0}, {0},
                            1);
  PlanPtr psj = HashJoinPlan(c.Scan("PARTSUPP"), std::move(pu),
                             {ps::kPartKey, ps::kSuppKey}, {0, 1}, 4);
  PlanPtr excess = FilterPlan(
      std::move(psj), Gt(Col(ps::kAvailQty), Mul(Lit(0.5), Col(WPS + 2))));
  PlanPtr supp_keys =
      DistinctPlan(ProjectPlan(std::move(excess), {Col(ps::kSuppKey)}));
  PlanPtr nat = FilterPlan(c.Scan("NATION"),
                           Eq(Col(n::kName), Lit("CANADA")));
  PlanPtr sn = HashJoinPlan(c.Scan("SUPPLIER"), std::move(nat),
                            {s::kNationKey}, {n::kNationKey}, WN);
  PlanPtr out = HashJoinPlan(std::move(sn), std::move(supp_keys),
                             {s::kSuppKey}, {0}, 1);
  return c.Run(SortPlan(
      ProjectPlan(std::move(out), {Col(s::kName), Col(s::kAddress)}), {By(0)}));
}

Rows Q21(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  // LINEITEM feeds three subtrees (per-order distinct suppliers, late
  // lineitems, per-order distinct late suppliers): scan once.
  Rows li = c.Run(c.Scan("LINEITEM"));
  PlanPtr all_sup =
      AggregatePlan(ValuesPlan(li), {l::kOrderKey},
                    {{AggKind::kCountDistinct, Col(l::kSuppKey)}});
  Rows late = c.Run(FilterPlan(ValuesPlan(std::move(li)),
                               Gt(Col(l::kReceiptDate), Col(l::kCommitDate))));
  PlanPtr late_sup =
      AggregatePlan(ValuesPlan(late), {l::kOrderKey},
                    {{AggKind::kCountDistinct, Col(l::kSuppKey)}});
  // Late lineitems of multi-supplier orders where only one supplier is late.
  PlanPtr j1 = HashJoinPlan(ValuesPlan(std::move(late)), std::move(all_sup),
                            {l::kOrderKey}, {0}, 2);
  PlanPtr j2 = HashJoinPlan(std::move(j1), std::move(late_sup),
                            {l::kOrderKey}, {0}, 2);
  PlanPtr culprit = FilterPlan(
      std::move(j2),
      And(Gt(Col(WL + 1), Lit(int64_t{1})),   // several suppliers
          Eq(Col(WL + 3), Lit(int64_t{1})))); // exactly one late
  PlanPtr ords = FilterPlan(c.Scan("ORDERS"),
                            Eq(Col(o::kOrderStatus), Lit("F")));
  PlanPtr co = HashJoinPlan(std::move(culprit), std::move(ords),
                            {l::kOrderKey}, {o::kOrderKey}, WO);
  PlanPtr nat = FilterPlan(c.Scan("NATION"),
                           Eq(Col(n::kName), Lit("SAUDI ARABIA")));
  PlanPtr sn = HashJoinPlan(c.Scan("SUPPLIER"), std::move(nat),
                            {s::kNationKey}, {n::kNationKey}, WN);
  PlanPtr cos = HashJoinPlan(std::move(co), std::move(sn), {l::kSuppKey},
                             {s::kSuppKey}, WS + WN);
  const int so = WL + 4 + WO;
  PlanPtr agg = AggregatePlan(std::move(cos), {so + s::kName},
                              {{AggKind::kCount, nullptr}});
  return c.Run(
      LimitPlan(SortPlan(std::move(agg), {By(1, false), By(0)}), 100));
}

Rows Q22(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  static const char* kPrefixes[7] = {"13", "31", "23", "29", "30", "18", "17"};
  // Country code = first two digits of the phone number.
  Rows cust = c.Run(c.Scan("CUSTOMER"));
  auto prefix_of = [](const Row& r) {
    return r[cu::kPhone].AsString().substr(0, 2);
  };
  Rows eligible;
  for (const Row& r : cust) {
    std::string pre = prefix_of(r);
    for (const char* want : kPrefixes) {
      if (pre == want) {
        eligible.push_back(r);
        break;
      }
    }
  }
  double sum = 0.0;
  int64_t n = 0;
  for (const Row& r : eligible) {
    double b = r[cu::kAcctBal].AsDouble();
    if (b > 0.0) {
      sum += b;
      ++n;
    }
  }
  double avg = n == 0 ? 0.0 : sum / static_cast<double>(n);
  PlanPtr rich = FilterPlan(ValuesPlan(std::move(eligible)),
                            Gt(Col(cu::kAcctBal), Lit(avg)));
  PlanPtr order_keys =
      DistinctPlan(ProjectPlan(c.Scan("ORDERS"), {Col(o::kCustKey)}));
  PlanPtr anti = HashJoinPlan(std::move(rich), std::move(order_keys),
                              {cu::kCustKey}, {0}, 1, JoinType::kLeftOuter);
  Rows no_orders = c.Run(FilterPlan(std::move(anti), IsNull(Col(WC))));
  Rows proj;
  for (const Row& r : no_orders) {
    proj.push_back({Value(prefix_of(r)), r[cu::kAcctBal]});
  }
  PlanPtr agg = AggregatePlan(
      ValuesPlan(std::move(proj)), {0},
      {{AggKind::kCount, nullptr}, {AggKind::kSum, Col(1)}});
  return c.Run(SortPlan(std::move(agg), {By(0)}));
}

}  // namespace

Rows TpchQuery(int number, TemporalEngine& engine,
               const TemporalScanSpec& spec) {
  Ctx c{engine, spec};
  switch (number) {
    case 1: return Q1(c);
    case 2: return Q2(c);
    case 3: return Q3(c);
    case 4: return Q4(c);
    case 5: return Q5(c);
    case 6: return Q6(c);
    case 7: return Q7(c);
    case 8: return Q8(c);
    case 9: return Q9(c);
    case 10: return Q10(c);
    case 11: return Q11(c);
    case 12: return Q12(c);
    case 13: return Q13(c);
    case 14: return Q14(c);
    case 15: return Q15(c);
    case 16: return Q16(c);
    case 17: return Q17(c);
    case 18: return Q18(c);
    case 19: return Q19(c);
    case 20: return Q20(c);
    case 21: return Q21(c);
    case 22: return Q22(c);
    default:
      BIH_CHECK_MSG(false, "TPC-H query number out of range");
  }
  return {};
}

}  // namespace bih
