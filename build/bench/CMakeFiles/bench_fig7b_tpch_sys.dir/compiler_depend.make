# Empty compiler generated dependencies file for bench_fig7b_tpch_sys.
# This may be replaced when dependencies are built.
