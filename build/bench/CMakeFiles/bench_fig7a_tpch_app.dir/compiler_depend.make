# Empty compiler generated dependencies file for bench_fig7a_tpch_app.
# This may be replaced when dependencies are built.
