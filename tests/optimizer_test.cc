// Golden tests for the rule-based optimizer: each rewrite fires where it
// should (asserted through OptimizerReport), never fires where it must not,
// preserves the materialized result exactly, and actually cuts the version
// space the engines touch — the axis the paper's Section 5 measures.
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exec/optimizer.h"
#include "exec/plan.h"
#include "tpch/schema.h"
#include "workload/context.h"

namespace bih {
namespace {

WorkloadContext& Workload(const std::string& letter) {
  static std::map<std::string, WorkloadContext>* cache =
      new std::map<std::string, WorkloadContext>();
  auto it = cache->find(letter);
  if (it == cache->end()) {
    WorkloadConfig cfg;
    cfg.engine_letter = letter;
    cfg.h = 0.001;
    cfg.m = 0.001;
    cfg.seed = 7;
    it = cache->emplace(letter, BuildWorkload(cfg)).first;
  }
  return it->second;
}

TemporalScanSpec FullHistory() {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::All();
  return spec;
}

ScanRequest Req(const std::string& table, const TemporalScanSpec& spec) {
  ScanRequest req;
  req.table = table;
  req.temporal = spec;
  return req;
}

void ExpectRowsIdentical(const Rows& want, const Rows& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(want[r].size(), got[r].size()) << "row " << r;
    for (size_t c = 0; c < want[r].size(); ++c) {
      ASSERT_TRUE(want[r][c] == got[r][c]) << "row " << r << " col " << c;
    }
  }
}

uint64_t TotalExamined(const PlanNode& n) {
  uint64_t sum = n.stats.scan.rows_examined;
  for (const PlanPtr& c : n.children) sum += TotalExamined(*c);
  return sum;
}

// Runs, optimizes, re-runs; asserts result identity and returns the
// (before, after) rows_examined pair for callers that assert pruning.
std::pair<uint64_t, uint64_t> CheckPreserves(PlanPtr* plan,
                                             TemporalEngine& eng,
                                             OptimizerReport* report) {
  Rows want = RunPlan(**plan, eng);
  const uint64_t before = TotalExamined(**plan);
  OptimizePlan(plan, eng, report);
  Rows got = RunPlan(**plan, eng);
  ExpectRowsIdentical(want, got);
  return {before, TotalExamined(**plan)};
}

TEST(OptimizerTest, PushesSingleSideConjunctsBelowJoin) {
  TemporalEngine& eng = Workload("A").eng();
  // One left-only conjunct, one right-only, one cross-side (must stay).
  // CUSTOMER's scan width is 11 (9 user + 2 system columns).
  PlanPtr plan = FilterPlan(
      HashJoinPlan(ScanPlan(Req("CUSTOMER", TemporalScanSpec::Current())),
                   ScanPlan(Req("ORDERS", TemporalScanSpec::Current())),
                   {customer::kCustKey}, {orders::kCustKey}, 14),
      And(And(Gt(Col(customer::kAcctBal), Lit(0.0)),
              Gt(Col(11 + orders::kTotalPrice), Lit(1000.0))),
          Ne(Col(customer::kNationKey), Col(11 + orders::kShipPriority))));
  OptimizerReport rep;
  CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(2, rep.predicates_pushed);
  // The cross-side conjunct keeps a Filter above the join.
  EXPECT_EQ(PlanNode::Kind::kFilter, plan->kind);
  EXPECT_EQ(PlanNode::Kind::kHashJoin, plan->children[0]->kind);
}

TEST(OptimizerTest, LeftOuterJoinOnlyPushesLeftConjuncts) {
  TemporalEngine& eng = Workload("A").eng();
  PlanPtr plan = FilterPlan(
      HashJoinPlan(ScanPlan(Req("CUSTOMER", TemporalScanSpec::Current())),
                   ScanPlan(Req("ORDERS", TemporalScanSpec::Current())),
                   {customer::kCustKey}, {orders::kCustKey}, 14,
                   JoinType::kLeftOuter),
      And(Gt(Col(customer::kAcctBal), Lit(0.0)),
          // Right-side conjunct: above the join it also rejects the
          // NULL-padded rows, so it must not move below.
          Gt(Col(11 + orders::kTotalPrice), Lit(1000.0))));
  OptimizerReport rep;
  CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(1, rep.predicates_pushed);
  EXPECT_EQ(PlanNode::Kind::kFilter, plan->kind);
}

TEST(OptimizerTest, EqualityFoldsIntoScanAndUsesIndex) {
  TemporalEngine& eng = Workload("A").eng();
  const int64_t key = Workload("A").hot_custkey;
  PlanPtr plan =
      FilterPlan(ScanPlan(Req("CUSTOMER", TemporalScanSpec::Current())),
                 Eq(Col(customer::kCustKey), Lit(key)));
  OptimizerReport rep;
  auto [before, after] = CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(1, rep.conjuncts_folded);
  // The Filter folded away entirely; the scan carries the equality and the
  // engine served it from the key index instead of a full scan.
  EXPECT_EQ(PlanNode::Kind::kScan, plan->kind);
  ASSERT_EQ(1u, plan->scan.equals.size());
  EXPECT_LT(after, before);
}

TEST(OptimizerTest, VisibilityPredicateBecomesSystemAsOf) {
  WorkloadContext& ctx = Workload("A");
  TemporalEngine& eng = ctx.eng();
  // T8 -> T2: the bitemporal visibility constraint stated as a WHERE
  // clause over the period columns. ORDERS' scan schema puts the system
  // columns at width-2 / width-1.
  const int width = eng.ScanSchema("ORDERS").num_columns();
  const Value t(ctx.sys_mid.micros());
  PlanPtr plan = FilterPlan(ScanPlan(Req("ORDERS", FullHistory())),
                            And(Le(Col(width - 2), Lit(t)),
                                Gt(Col(width - 1), Lit(t))));
  OptimizerReport rep;
  auto [before, after] = CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(1, rep.temporal_rewrites);
  EXPECT_EQ(PlanNode::Kind::kScan, plan->kind);
  EXPECT_EQ(TemporalSelector::Kind::kPoint,
            plan->scan.temporal.system_time.kind);
  // The engine may still walk every version to evaluate AS OF (System A
  // does), but the rewrite must never examine more — and the scan itself
  // now emits only the visible versions instead of the whole history.
  EXPECT_LE(after, before);
  PlanPtr full = ScanPlan(Req("ORDERS", FullHistory()));
  const size_t history_rows = RunPlan(*full, eng).size();
  EXPECT_LT(plan->stats.rows_output, history_rows);
}

TEST(OptimizerTest, AppTimePredicateBecomesApplicationAsOf) {
  WorkloadContext& ctx = Workload("A");
  TemporalEngine& eng = ctx.eng();
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::ImplicitCurrent();
  spec.app_time = TemporalSelector::All();
  const Value t(ctx.app_mid);
  PlanPtr plan =
      FilterPlan(ScanPlan(Req("CUSTOMER", spec)),
                 And(Le(Col(customer::kVisibleBegin), Lit(t)),
                     Gt(Col(customer::kVisibleEnd), Lit(t))));
  OptimizerReport rep;
  CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(1, rep.temporal_rewrites);
  EXPECT_EQ(PlanNode::Kind::kScan, plan->kind);
  EXPECT_EQ(TemporalSelector::Kind::kPoint, plan->scan.temporal.app_time.kind);
}

TEST(OptimizerTest, StrictBoundsAndNullLiteralsStayInFilter) {
  TemporalEngine& eng = Workload("A").eng();
  PlanPtr plan =
      FilterPlan(ScanPlan(Req("CUSTOMER", TemporalScanSpec::Current())),
                 And(Lt(Col(customer::kAcctBal), Lit(5000.0)),
                     Eq(Col(customer::kName), Lit(Value::Null()))));
  OptimizerReport rep;
  CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(0, rep.conjuncts_folded);
  EXPECT_EQ(PlanNode::Kind::kFilter, plan->kind);
  EXPECT_TRUE(plan->children[0]->scan.equals.empty());
}

TEST(OptimizerTest, BetweenFoldsToRangeConstraint) {
  TemporalEngine& eng = Workload("A").eng();
  PlanPtr plan =
      FilterPlan(ScanPlan(Req("CUSTOMER", TemporalScanSpec::Current())),
                 Between(Col(customer::kAcctBal), Lit(100.0), Lit(9000.0)));
  OptimizerReport rep;
  CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(1, rep.conjuncts_folded);
  EXPECT_EQ(PlanNode::Kind::kScan, plan->kind);
  EXPECT_EQ(customer::kAcctBal, plan->scan.range_col);
}

TEST(OptimizerTest, ColumnPruningMarksScansUnderProjections) {
  TemporalEngine& eng = Workload("A").eng();
  PlanPtr plan =
      ProjectPlan(ScanPlan(Req("CUSTOMER", TemporalScanSpec::Current())),
                  {Col(customer::kCustKey), Col(customer::kAcctBal)});
  OptimizerReport rep;
  CheckPreserves(&plan, eng, &rep);
  EXPECT_EQ(1, rep.scans_pruned);
  EXPECT_EQ((std::vector<int>{customer::kCustKey, customer::kAcctBal}),
            plan->children[0]->scan.projection);
}

TEST(OptimizerTest, EveryRuleIsResultPreservingOnEveryEngine) {
  // The composite query: pushdown, folding, temporal rewrite and pruning
  // all fire in one tree; the result must survive on all four systems.
  for (const char* letter : {"A", "B", "C", "D"}) {
    WorkloadContext& ctx = Workload(letter);
    TemporalEngine& eng = ctx.eng();
    const int width = eng.ScanSchema("ORDERS").num_columns();
    const Value t(ctx.sys_mid.micros());
    PlanPtr plan = ProjectPlan(
        FilterPlan(
            HashJoinPlan(
                ScanPlan(Req("CUSTOMER", TemporalScanSpec::Current())),
                FilterPlan(ScanPlan(Req("ORDERS", FullHistory())),
                           And(Le(Col(width - 2), Lit(t)),
                               Gt(Col(width - 1), Lit(t)))),
                {customer::kCustKey}, {orders::kCustKey}, 14),
            And(Gt(Col(customer::kAcctBal), Lit(0.0)),
                Gt(Col(11 + orders::kTotalPrice), Lit(1000.0)))),
        {Col(customer::kCustKey), Col(11 + orders::kTotalPrice)});
    OptimizerReport rep;
    auto [before, after] = CheckPreserves(&plan, eng, &rep);
    EXPECT_GT(rep.predicates_pushed, 0) << letter;
    EXPECT_EQ(1, rep.temporal_rewrites) << letter;
    EXPECT_GT(rep.scans_pruned, 0) << letter;
    EXPECT_LE(after, before) << letter;
  }
}

}  // namespace
}  // namespace bih
