#ifndef TPCBIH_BIH_GENERATOR_H_
#define TPCBIH_BIH_GENERATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bih/history.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "tpch/dbgen.h"

namespace bih {

struct GeneratorConfig {
  // History scale m: 1.0 corresponds to one million update scenarios.
  double m = 0.001;
  uint64_t seed = 20130813;
  // Optional override of the Table-1 scenario probabilities (same order as
  // enum Scenario); empty = defaults. Used by ablation benches.
  std::vector<double> scenario_weights;
};

// The Bitemporal Data Generator (Section 4.1): evolves a TPC-H version-0
// population through the nine update scenarios, producing
//  * the operation archive (one transaction per scenario execution),
//  * empirical statistics (Tables 1 and 2),
//  * the end-state snapshot ("latest version only" mode) used as the
//    non-temporal baseline of the TPC-H experiments (Fig. 7).
//
// The generator keeps only the currently visible application-time versions
// of every key in memory, like the paper's design; superseded versions are
// final and live only in the emitted archive.
class HistoryGenerator {
 public:
  HistoryGenerator(const TpchData& initial, GeneratorConfig config);

  // Runs all scenarios and returns the archive. Call once.
  History Generate();

  const HistoryStats& stats() const { return stats_; }

  // Current rows after the evolution (application-time versions expanded).
  TpchData EndState() const;

 private:
  using Key = std::vector<Value>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = 0x345678;
      for (const Value& v : k) h = h * 1000003ULL ^ v.Hash();
      return h;
    }
  };
  struct KeyEq {
    bool operator()(const Key& a, const Key& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].Compare(b[i]) != 0) return false;
      }
      return true;
    }
  };
  // Currently visible application-time versions of one key.
  using VersionMap = std::unordered_map<Key, std::vector<Row>, KeyHash, KeyEq>;

  // Scenario emitters; append to txn.ops and mutate the state.
  void NewOrder(HistoryTransaction* txn);
  bool CancelOrder(HistoryTransaction* txn);
  bool DeliverOrder(HistoryTransaction* txn);
  bool ReceivePayment(HistoryTransaction* txn);
  bool UpdateStock(HistoryTransaction* txn);
  bool DelayAvailability(HistoryTransaction* txn);
  bool ChangePriceBySupplier(HistoryTransaction* txn);
  bool UpdateSupplier(HistoryTransaction* txn);
  bool ManipulateOrderData(HistoryTransaction* txn);

  // State mutation mirroring each op kind, so the generator's view matches
  // what engines will contain after replay.
  void ApplyToState(VersionMap* table_state, const TableDef& def,
                    const Operation& op);

  // Emits an op into the transaction and applies it to local state.
  void Emit(HistoryTransaction* txn, Operation op);

  void CountOp(const Operation& op);

  int64_t TodayDays() const { return app_today_.days(); }
  void AdvanceClock();

  Rng rng_;
  GeneratorConfig config_;
  HistoryStats stats_;

  // Per-table current state.
  VersionMap customers_, orders_, lineitems_, parts_, partsupps_, suppliers_;
  std::vector<Row> region_rows_, nation_rows_;
  // Lineitem keys grouped by order.
  std::unordered_map<int64_t, std::vector<int64_t>> lines_of_order_;
  // Partsupp (partkey, suppkey) pairs grouped by supplier.
  std::unordered_map<int64_t, std::vector<int64_t>> parts_of_supplier_;

  // Sampling pools.
  std::vector<int64_t> customer_keys_, part_keys_, supplier_keys_,
      order_keys_, open_orders_, delivered_unpaid_;
  std::vector<std::pair<int64_t, int64_t>> partsupp_keys_;

  int64_t next_custkey_ = 1;
  int64_t next_orderkey_ = 1;
  int64_t suppliers_count_ = 1;
  int64_t parts_count_ = 1;

  Date app_today_;
  double day_accum_ = 0.0;
  double days_per_scenario_ = 0.0;
};

// Replays the archive into an engine as individual transactions; scenarios
// can be grouped into batches of `batch_size` (Fig. 13 knob). Returns the
// per-transaction latencies in microseconds when `latencies` is non-null.
Status ReplayHistory(TemporalEngine& engine, const History& history,
                     size_t batch_size = 1,
                     std::vector<double>* latencies = nullptr,
                     std::vector<Scenario>* scenarios = nullptr);

// Loads the version-0 population into an engine (one insert per row,
// batched per table load like the real loaders).
Status LoadInitialData(TemporalEngine& engine, const TpchData& data);

// Creates all eight benchmark tables in the engine.
Status CreateBiHTables(TemporalEngine& engine);

}  // namespace bih

#endif  // TPCBIH_BIH_GENERATOR_H_
