// Figure 4: T1 with *fixed* temporal parameters (system time right after
// version 0, maximum application time) while the history length grows.
// The result set is constant, so a system that can exploit an index (or is
// scan-robust like the column store) should show flat cost; scan-based
// row stores grow linearly with the history.
//
// Expected shape (Section 5.3.3): without indexes A/B/D scale linearly;
// with Time Indexes they become ~constant; System C is flat either way.
#include <cstdio>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void Run() {
  const double h = EnvScale("BIH_H", 0.001);
  std::vector<double> ms_values;
  for (double m : {0.002, 0.005, 0.01, 0.02}) ms_values.push_back(m);

  PrintHeader("Figure 4: T1 cost vs history size (fixed result)");
  std::printf("%-10s %-12s %14s %14s\n", "m", "engine", "no_index[ms]",
              "time_index[ms]");
  TpchData initial = GenerateTpch({h, 42});
  for (double m : ms_values) {
    GeneratorConfig gcfg;
    gcfg.m = m;
    gcfg.seed = 43;
    HistoryGenerator gen(initial, gcfg);
    History history = gen.Generate();
    for (const std::string& letter : AllEngineLetters()) {
      auto plain = LoadEngine(letter, initial, history);
      // Fixed parameters: just after version 0, at the far end of app time.
      // Version 0 commits at the first tick after the clock epoch.
      Timestamp v0 = CommitClock().NextCommit();
      const int64_t app_max = tpch_dates::kEnd.days();
      auto query = [&](TemporalEngine& e) {
        return T1(e, TemporalScanSpec::BothAsOf(v0.micros() + 1, app_max));
      };
      double no_index = TimeMs([&] { query(*plain); }, 9);
      Status st = ApplyIndexSetting(*plain, IndexSetting::kTime);
      BIH_CHECK_MSG(st.ok(), st.ToString());
      double with_index = TimeMs([&] { query(*plain); }, 9);
      std::printf("%-10.4f System%-6s %14.3f %14.3f\n", m, letter.c_str(),
                  no_index, with_index);
    }
  }
  std::printf(
      "\nShape check: no_index grows with m for row stores (A, B, D); "
      "time_index stays ~flat; System C flat in both columns.\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
