file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_slicing.dir/bench_fig5_slicing.cc.o"
  "CMakeFiles/bench_fig5_slicing.dir/bench_fig5_slicing.cc.o.d"
  "bench_fig5_slicing"
  "bench_fig5_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
