#include "net/tenant.h"

#include <vector>

#include "common/json.h"

namespace bih {
namespace net {

void TenantState::Account(const Status& s) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  switch (s.code()) {
    case Status::Code::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Code::kResourceExhausted:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Code::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Code::kDeadlineExceeded:
      deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Code::kUnavailable:
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

TenantStats TenantState::GetStats() const {
  TenantStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline = deadline_.load(std::memory_order_relaxed);
  s.unavailable = unavailable_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

TenantState* TenantRegistry::GetOrCreate(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(name, std::make_unique<TenantState>(name, quota_))
             .first;
  }
  return it->second.get();
}

std::string TenantRegistry::StatsJson() const {
  // Snapshot the pointers under the lock, render outside it: GetStats()
  // only reads atomics, and a tenant is never destroyed once created.
  std::vector<TenantState*> tenants;
  {
    MutexLock lock(mu_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_) tenants.push_back(state.get());
  }
  std::string s = "{";
  bool first = true;
  for (TenantState* t : tenants) {
    const TenantStats st = t->GetStats();
    if (!first) s += ",";
    first = false;
    s += JsonQuote(t->name()) + ":{";
    s += "\"queries\":" + std::to_string(st.queries);
    s += ",\"ok\":" + std::to_string(st.ok);
    s += ",\"errors\":" + std::to_string(st.errors);
    s += ",\"shed\":" + std::to_string(st.shed);
    s += ",\"cancelled\":" + std::to_string(st.cancelled);
    s += ",\"deadline\":" + std::to_string(st.deadline);
    s += ",\"unavailable\":" + std::to_string(st.unavailable);
    s += ",\"bytes_out\":" + std::to_string(st.bytes_out);
    s += ",\"admission_shed\":" +
         std::to_string(t->admission().GetStats().shed);
    s += "}";
  }
  s += "}";
  return s;
}

}  // namespace net
}  // namespace bih
