#ifndef TPCBIH_TOOLS_ANALYSIS_PARSER_H_
#define TPCBIH_TOOLS_ANALYSIS_PARSER_H_

// Lightweight C++ tokenizer and declaration/body parser for the repo's
// whole-tree analyzer (tools/bih_analyze). This is not a compiler front
// end: it recognizes exactly the subset of C++ the house style produces —
// namespaces, classes/structs (possibly nested), data members with the
// thread-safety annotation macros from src/common/thread_annotations.h,
// and function definitions whose bodies it records as token spans for the
// passes to walk. Anything it cannot classify it skips without guessing;
// the passes are written so a parse gap costs coverage, never a false
// positive.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/source.h"

namespace bih {
namespace analysis {

// --- tokens ----------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind = Kind::kPunct;
  std::string text;  // for kString: the unquoted contents
  size_t line = 0;   // 1-based
};

// Tokenizes the raw lines, skipping comments and preprocessor directives
// but KEEPING string literal contents (the annotation macros accept string
// arguments naming capabilities the C++ grammar cannot reference, e.g.
// private members of another class).
std::vector<Token> Tokenize(const std::vector<std::string>& raw);

// --- declarations ----------------------------------------------------------

// One data member of a class.
struct FieldDecl {
  std::string cls;   // enclosing class, nesting joined with "::"
  std::string name;
  std::string type;  // flattened type text (annotation macros removed)
  size_t line = 0;
  bool is_static = false;
  bool is_const = false;
  bool is_atomic = false;   // std::atomic<...> / std::atomic_flag
  bool is_mutex = false;    // Mutex / SharedMutex anywhere in the type
  bool is_condvar = false;  // CondVar
  std::vector<std::string> guarded_by;
  std::vector<std::string> pt_guarded_by;
  std::vector<std::string> acquired_after;   // raw args (idents or strings)
  std::vector<std::string> acquired_before;
};

// A function definition (with a body) or declaration (annotations only).
struct FunctionDecl {
  std::string cls;  // "" for free functions
  std::string name;
  std::string file;
  size_t line = 0;
  bool has_body = false;
  size_t body_begin = 0;  // token index of '{' (when has_body)
  size_t body_end = 0;    // token index one past the matching '}'
  // Annotation macros on the signature, raw args. TRY_ACQUIRE's leading
  // success-value argument is already dropped.
  std::vector<std::string> requires_caps;   // REQUIRES / REQUIRES_SHARED
  std::vector<std::string> acquires_caps;   // ACQUIRE / ACQUIRE_SHARED /
                                            // TRY_ACQUIRE* / bih-analyze:
                                            // acquires(...) directives
  std::vector<std::string> releases_caps;   // RELEASE* / bih-analyze:
                                            // releases(...) directives
  bool no_thread_safety_analysis = false;
};

struct ClassDecl {
  std::string name;  // nesting joined with "::" (namespaces excluded)
  std::string file;
  size_t line = 0;
  std::vector<FieldDecl> fields;
  bool owns_mutex = false;  // at least one Mutex/SharedMutex field
};

// Parse result for one file. Token storage lives here; FunctionDecl body
// spans index into `tokens`.
struct FileModel {
  const FileText* text = nullptr;  // borrowed
  std::vector<Token> tokens;
  std::vector<ClassDecl> classes;
  std::vector<FunctionDecl> functions;
};

// Whole-tree model with the cross-file indexes the passes resolve against.
struct RepoModel {
  std::vector<FileModel> files;

  // Class name -> merged declaration (fields from the defining file).
  std::map<std::string, ClassDecl> classes;

  // (class, name) and bare-name indexes over *definitions*; the bare-name
  // index maps to every definition sharing the name, so the passes can
  // tell unique names (safe to resolve) from ambiguous ones (skipped).
  // Values are (file index, function index) pairs.
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> defs_by_name;
  std::map<std::string, std::vector<std::pair<size_t, size_t>>>
      defs_by_qualified;  // "Class::name"

  // Signature annotations merged across declaration and definition,
  // keyed "Class::name" (free functions: "name").
  std::map<std::string, FunctionDecl> annotations;

  const FunctionDecl* FindAnnotations(const std::string& qualified) const {
    auto it = annotations.find(qualified);
    return it == annotations.end() ? nullptr : &it->second;
  }
};

// Parses one file. The FileText must outlive the model.
FileModel ParseFile(const FileText& text);

// Parses every file and builds the cross-file indexes.
RepoModel ParseTree(const std::vector<FileText>& texts);

}  // namespace analysis
}  // namespace bih

#endif  // TPCBIH_TOOLS_ANALYSIS_PARSER_H_
