// Join-operator equivalence and golden-answer checks for the temporal
// TPC-H queries on a hand-verifiable configuration.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/plan.h"
#include "workload/tpch_queries.h"
#include "tpch/schema.h"

namespace bih {
namespace {

Row R(std::initializer_list<Value> vals) { return Row(vals); }

Rows Canonical(Rows rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

TEST(MergeJoinTest, MatchesHashJoinOnRandomInputs) {
  auto engine = MakeEngine("A");
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    Rows left, right;
    for (int i = 0; i < 60; ++i) {
      left.push_back(R({Value(rng.UniformInt(0, 15)),
                        Value(double(rng.UniformInt(0, 100)))}));
      right.push_back(R({Value(rng.UniformInt(0, 15)), Value("r")}));
    }
    Rows hash = Canonical(RunPlan(
        *HashJoinPlan(ValuesPlan(left), ValuesPlan(right), {0}, {0}, 2),
        *engine));
    Rows merge = Canonical(RunPlan(
        *MergeJoinPlan(ValuesPlan(left), ValuesPlan(right), {0}, {0}),
        *engine));
    ASSERT_EQ(hash.size(), merge.size()) << "trial " << trial;
    for (size_t i = 0; i < hash.size(); ++i) {
      for (size_t c = 0; c < hash[i].size(); ++c) {
        ASSERT_EQ(0, hash[i][c].Compare(merge[i][c]));
      }
    }
  }
}

TEST(MergeJoinTest, ResidualAndNullKeys) {
  Rows left{R({Value(int64_t{1}), Value(int64_t{10})}),
            R({Value::Null(), Value(int64_t{5})})};
  Rows right{R({Value(int64_t{1}), Value(int64_t{20})}),
             R({Value(int64_t{1}), Value(int64_t{5})}),
             R({Value::Null(), Value(int64_t{7})})};
  auto engine = MakeEngine("A");
  Rows out = RunPlan(*MergeJoinPlan(ValuesPlan(left), ValuesPlan(right),
                                    {0}, {0}, Lt(Col(1), Col(3))),
                     *engine);
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ(20, out[0][3].AsInt());
}

TEST(IndexJoinPlanTest, ProbesEngineWithKeyLookups) {
  auto engine = MakeEngine("A");
  TableDef def;
  def.name = "T";
  def.schema = Schema({{"K", ColumnType::kInt}, {"V", ColumnType::kDouble}});
  def.primary_key = {0};
  def.system_versioned = true;
  ASSERT_TRUE(engine->CreateTable(def).ok());
  for (int64_t k = 1; k <= 50; ++k) {
    ASSERT_TRUE(engine->Insert("T", {Value(k), Value(double(k) * 10)}).ok());
  }
  Rows probes{R({Value(int64_t{3})}), R({Value(int64_t{42})}),
              R({Value(int64_t{99})}), R({Value::Null()})};
  Rows out = RunPlan(*IndexJoinPlan(ValuesPlan(probes), {0}, "T", {0},
                                    TemporalScanSpec::Current()),
                     *engine);
  ASSERT_EQ(2u, out.size());  // 99 misses, NULL skipped
  std::set<int64_t> keys{out[0][0].AsInt(), out[1][0].AsInt()};
  EXPECT_EQ((std::set<int64_t>{3, 42}), keys);
  EXPECT_DOUBLE_EQ(out[0][0].AsInt() == 3 ? 30.0 : 420.0,
                   out[0][2].AsDouble());
  // The engine's key index served the probes.
  EXPECT_TRUE(engine->last_stats().used_index);
}

// Golden-answer tests: a fixed tiny workload where the expected values are
// verified by construction against the generator's own bookkeeping.
class GoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (ctx_ != nullptr) return;
    WorkloadConfig cfg;
    cfg.engine_letter = "A";
    cfg.h = 0.001;
    cfg.m = 0.001;
    cfg.seed = 123;
    ctx_ = new WorkloadContext(BuildWorkload(cfg));
  }
  static WorkloadContext* ctx_;
};

WorkloadContext* GoldenTest::ctx_ = nullptr;

TEST_F(GoldenTest, Q1MatchesDirectComputation) {
  // Recompute the Q1 aggregates straight from the end-state rows.
  const int64_t cutoff = Date::FromYMD(1998, 9, 2).days();
  std::map<std::pair<std::string, std::string>, std::pair<double, int64_t>>
      expect;  // (rf, ls) -> (sum qty, count)
  for (const Row& r : ctx_->end_state.lineitem) {
    if (r[lineitem::kShipDate].AsInt() > cutoff) continue;
    auto& slot = expect[{r[lineitem::kReturnFlag].AsString(),
                         r[lineitem::kLineStatus].AsString()}];
    slot.first += r[lineitem::kQuantity].AsDouble();
    ++slot.second;
  }
  Rows got = TpchQuery(1, *ctx_->engine, TemporalScanSpec::Current());
  ASSERT_EQ(expect.size(), got.size());
  for (const Row& r : got) {
    auto it = expect.find({r[0].AsString(), r[1].AsString()});
    ASSERT_TRUE(it != expect.end());
    EXPECT_NEAR(it->second.first, r[2].AsDouble(), 1e-6);
    EXPECT_EQ(it->second.second, r[9].AsInt());
  }
}

TEST_F(GoldenTest, Q6MatchesDirectComputation) {
  double expect = 0;
  const int64_t lo = Date::FromYMD(1994, 1, 1).days();
  const int64_t hi = Date::FromYMD(1995, 1, 1).days();
  for (const Row& r : ctx_->end_state.lineitem) {
    int64_t ship = r[lineitem::kShipDate].AsInt();
    double disc = r[lineitem::kDiscount].AsDouble();
    if (ship >= lo && ship < hi && disc >= 0.05 - 1e-9 && disc <= 0.07 + 1e-9 &&
        r[lineitem::kQuantity].AsDouble() < 24.0) {
      expect += r[lineitem::kExtendedPrice].AsDouble() * disc;
    }
  }
  Rows got = TpchQuery(6, *ctx_->engine, TemporalScanSpec::Current());
  ASSERT_EQ(1u, got.size());
  if (expect == 0) {
    EXPECT_TRUE(got[0][0].is_null());
  } else {
    EXPECT_NEAR(expect, got[0][0].AsDouble(), 1e-6 * expect);
  }
}

TEST_F(GoldenTest, Q4CountsMatchDirectComputation) {
  // Orders placed in 1993 Q3 that have at least one late lineitem.
  const int64_t lo = Date::FromYMD(1993, 7, 1).days();
  const int64_t hi = Date::FromYMD(1993, 10, 1).days();
  std::set<int64_t> late_orders;
  for (const Row& r : ctx_->end_state.lineitem) {
    if (r[lineitem::kCommitDate].AsInt() < r[lineitem::kReceiptDate].AsInt()) {
      late_orders.insert(r[lineitem::kOrderKey].AsInt());
    }
  }
  std::map<std::string, int64_t> expect;
  for (const Row& r : ctx_->end_state.orders) {
    int64_t od = r[orders::kOrderDate].AsInt();
    if (od >= lo && od < hi &&
        late_orders.count(r[orders::kOrderKey].AsInt())) {
      ++expect[r[orders::kOrderPriority].AsString()];
    }
  }
  Rows got = TpchQuery(4, *ctx_->engine, TemporalScanSpec::Current());
  ASSERT_EQ(expect.size(), got.size());
  for (const Row& r : got) {
    EXPECT_EQ(expect[r[0].AsString()], r[1].AsInt()) << r[0].AsString();
  }
}

}  // namespace
}  // namespace bih
