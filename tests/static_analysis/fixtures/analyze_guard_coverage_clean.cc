// Fixture: must come back clean. One field of every accepted kind:
// guarded, pointer-guarded, atomic, const, static, and an explicitly
// suppressed lifecycle field with its reason.
class Registry {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
  long* epoch_ PT_GUARDED_BY(mu_) = nullptr;
  std::atomic<int> hits_{0};
  const int capacity_ = 16;
  static int instances_;
  // Written before any thread exists, joined on shutdown; never shared.
  std::thread sweeper_;  // bih-lint: allow(guard-coverage)
};
