// Tests for the engine-side plumbing: temporal predicate resolution
// (scan_util) and the rule-based access-path chooser (index_set), plus
// multi-application-time tables (ORDERS has two periods).
#include <set>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/index_set.h"
#include "engine/scan_util.h"
#include "tpch/schema.h"

namespace bih {
namespace {

TEST(ScanUtilTest, ResolveTemporalColsForOrders) {
  TableDef def = OrdersDef();
  TemporalCols tc0 = ResolveTemporalCols(def, 0);
  EXPECT_EQ(orders::kActiveBegin, tc0.app_begin);
  EXPECT_EQ(orders::kActiveEnd, tc0.app_end);
  EXPECT_EQ(def.schema.num_columns(), tc0.sys_from);
  TemporalCols tc1 = ResolveTemporalCols(def, 1);
  EXPECT_EQ(orders::kReceivableBegin, tc1.app_begin);
  EXPECT_EQ(orders::kReceivableEnd, tc1.app_end);
}

TEST(ScanUtilTest, ResolveTemporalColsForDegenerateTable) {
  TemporalCols tc = ResolveTemporalCols(SupplierDef(), 0);
  EXPECT_EQ(-1, tc.app_begin);
  EXPECT_EQ(-1, tc.app_end);
}

TEST(ScanUtilTest, NullSystemColumnsMapToOpenPeriod) {
  Row row{Value(int64_t{1}), Value::Null(), Value::Null()};
  TemporalCols tc;
  tc.sys_from = 1;
  tc.sys_to = 2;
  Period p = RowSystemPeriod(row, tc);
  EXPECT_EQ(Period::kBeginningOfTime, p.begin);
  EXPECT_EQ(Period::kForever, p.end);
}

TEST(ScanUtilTest, MatchesConstraintsRange) {
  Row row{Value(int64_t{5}), Value(2.5)};
  ScanRequest req;
  req.range_col = 1;
  req.range_lo = Value(2.0);
  req.range_hi = Value(3.0);
  EXPECT_TRUE(MatchesConstraints(row, req));
  req.range_lo = Value(2.6);
  EXPECT_FALSE(MatchesConstraints(row, req));
  req.range_lo = Value::Null();  // open lower bound
  req.range_hi = Value(2.4);
  EXPECT_FALSE(MatchesConstraints(row, req));
}

// ---- IndexSet access-path selection -------------------------------------

class IndexSetTest : public ::testing::Test {
 protected:
  // Rows: {key, value, app_begin, app_end, sys_from, sys_to}; 1000 of them
  // with sys_from spread over [0, 1000).
  void SetUp() override {
    for (RowId r = 0; r < 1000; ++r) {
      int64_t key = static_cast<int64_t>(r % 100);
      rows_.push_back({Value(key), Value(double(r % 37)),
                       Value(int64_t(r % 200)), Value(int64_t(r % 200 + 50)),
                       Value(int64_t(r)), Value(Period::kForever)});
    }
    tc_.app_begin = 2;
    tc_.app_end = 3;
    tc_.sys_from = 4;
    tc_.sys_to = 5;
  }

  void Build(IndexSpec spec) {
    set_.AddIndex(spec, [&](const std::function<void(RowId, const Row&)>& fn) {
      for (RowId r = 0; r < rows_.size(); ++r) fn(r, rows_[r]);
    });
  }

  // Runs the chooser; returns emitted row ids (empty optional = no index).
  bool Try(const ScanRequest& req, std::set<RowId>* out,
           std::string* name = nullptr) {
    std::string n;
    bool used = set_.TryIndexAccess(req, tc_, rows_.size(), &n,
                                    [&](RowId rid) {
                                      out->insert(rid);
                                      return true;
                                    });
    if (name != nullptr) *name = n;
    return used;
  }

  std::vector<Row> rows_;
  IndexSet set_;
  TemporalCols tc_;
};

TEST_F(IndexSetTest, KeyEqualityUsesBTree) {
  IndexSpec spec;
  spec.columns = {0};
  spec.type = IndexType::kBTree;
  spec.name = "key_btree";
  Build(spec);
  ScanRequest req;
  req.equals = {{0, Value(int64_t{7})}};
  std::set<RowId> got;
  std::string name;
  ASSERT_TRUE(Try(req, &got, &name));
  EXPECT_EQ("key_btree", name);
  EXPECT_EQ(10u, got.size());  // 1000 rows, 100 keys
  for (RowId r : got) EXPECT_EQ(7, rows_[r][0].AsInt());
}

TEST_F(IndexSetTest, SelectiveTimePointUsesIndexBroadOneDoesNot) {
  IndexSpec spec;
  spec.columns = {4};  // sys_from
  spec.type = IndexType::kBTree;
  spec.name = "sys_btree";
  Build(spec);
  // Selective: sys_from <= 50 covers 5% of entries.
  ScanRequest req;
  req.temporal.system_time = TemporalSelector::AsOf(50);
  std::set<RowId> got;
  ASSERT_TRUE(Try(req, &got));
  EXPECT_EQ(51u, got.size());
  // Broad: sys_from <= 900 covers 90% -> the chooser prefers a table scan.
  req.temporal.system_time = TemporalSelector::AsOf(900);
  got.clear();
  EXPECT_FALSE(Try(req, &got));
}

TEST_F(IndexSetTest, CompositeKeyTimeIndexCombinesEqualityAndBound) {
  IndexSpec spec;
  spec.columns = {0, 4};  // (key, sys_from)
  spec.type = IndexType::kBTree;
  spec.name = "key_sys";
  Build(spec);
  ScanRequest req;
  req.equals = {{0, Value(int64_t{7})}};
  req.temporal.system_time = TemporalSelector::AsOf(500);
  std::set<RowId> got;
  ASSERT_TRUE(Try(req, &got));
  // key 7 appears at rows 7, 107, ..., 907; bound keeps sys_from <= 500.
  EXPECT_EQ(5u, got.size());
  for (RowId r : got) {
    EXPECT_EQ(7, rows_[r][0].AsInt());
    EXPECT_LE(rows_[r][4].AsInt(), 500);
  }
}

TEST_F(IndexSetTest, ValueRangeSelectivityGate) {
  IndexSpec spec;
  spec.columns = {1};  // value in [0, 36]
  spec.type = IndexType::kBTree;
  spec.name = "value_btree";
  Build(spec);
  ScanRequest req;
  req.range_col = 1;
  req.range_lo = Value(35.0);
  req.range_hi = Value(36.0);  // ~5% of the domain
  std::set<RowId> got;
  ASSERT_TRUE(Try(req, &got));
  for (RowId r : got) EXPECT_GE(rows_[r][1].AsDouble(), 35.0);
  // Non-selective range: skipped.
  req.range_lo = Value(1.0);
  req.range_hi = Value::Null();
  got.clear();
  EXPECT_FALSE(Try(req, &got));
}

TEST_F(IndexSetTest, HashIndexRequiresFullEquality) {
  IndexSpec spec;
  spec.columns = {0, 1};
  spec.type = IndexType::kHash;
  spec.name = "hash";
  Build(spec);
  ScanRequest req;
  req.equals = {{0, Value(int64_t{7})}};  // prefix only
  std::set<RowId> got;
  EXPECT_FALSE(Try(req, &got));
  req.equals = {{0, Value(int64_t{7})}, {1, Value(7.0)}};
  std::string name;
  ASSERT_TRUE(Try(req, &got, &name));
  EXPECT_EQ("hash", name);
  for (RowId r : got) {
    EXPECT_EQ(7, rows_[r][0].AsInt());
    EXPECT_DOUBLE_EQ(7.0, rows_[r][1].AsDouble());
  }
}

TEST_F(IndexSetTest, RTreePeriodIndexServesSelectivePoints) {
  IndexSpec spec;
  spec.columns = {2, 3};  // app period
  spec.type = IndexType::kRTree;
  spec.name = "gist";
  Build(spec);
  ScanRequest req;
  req.temporal.app_time = TemporalSelector::AsOf(5);
  std::set<RowId> got;
  std::string name;
  ASSERT_TRUE(Try(req, &got, &name));
  EXPECT_EQ("gist", name);
  for (RowId r : got) {
    EXPECT_LE(rows_[r][2].AsInt(), 5);
    EXPECT_GT(rows_[r][3].AsInt(), 5);
  }
  EXPECT_FALSE(got.empty());
}

TEST_F(IndexSetTest, MaintenanceKeepsIndexInSync) {
  IndexSpec spec;
  spec.columns = {0};
  spec.type = IndexType::kBTree;
  spec.name = "key";
  Build(spec);
  Row extra{Value(int64_t{7}), Value(0.0), Value(int64_t{0}),
            Value(int64_t{10}), Value(int64_t{5000}), Value(Period::kForever)};
  rows_.push_back(extra);
  set_.OnInsert(extra, 1000);
  set_.OnDelete(rows_[7], 7);  // remove one key-7 row
  ScanRequest req;
  req.equals = {{0, Value(int64_t{7})}};
  std::set<RowId> got;
  ASSERT_TRUE(Try(req, &got));
  EXPECT_EQ(10u, got.size());  // 10 - 1 + 1
  EXPECT_TRUE(got.count(1000));
  EXPECT_FALSE(got.count(7));
}

// ---- multiple application times on one table ----------------------------

class MultiPeriodTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MultiPeriodTest, OrdersReceivableTimeIsQueryable) {
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->CreateTable(OrdersDef()).ok());
  // An order active [100, 200) and receivable [200, 260).
  Row order{Value(int64_t{1}), Value(int64_t{1}), Value("F"), Value(1000.0),
            Value(int64_t{100}), Value("1-URGENT"), Value("Clerk#1"),
            Value(int64_t{0}), Value(int64_t{100}), Value(int64_t{200}),
            Value(int64_t{200}), Value(int64_t{260})};
  ASSERT_TRUE(engine->Insert("ORDERS", order).ok());

  auto count_at = [&](int period_index, int64_t t) {
    ScanRequest req;
    req.table = "ORDERS";
    req.temporal = TemporalScanSpec::AppAsOf(t, period_index);
    int n = 0;
    engine->Scan(req, [&](const Row&) {
      ++n;
      return true;
    });
    return n;
  };
  // ACTIVE_TIME (period 0).
  EXPECT_EQ(1, count_at(0, 150));
  EXPECT_EQ(0, count_at(0, 250));
  // RECEIVABLE_TIME (period 1).
  EXPECT_EQ(0, count_at(1, 150));
  EXPECT_EQ(1, count_at(1, 250));
  EXPECT_EQ(0, count_at(1, 300));
}

TEST_P(MultiPeriodTest, SequencedUpdateOnSecondPeriod) {
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->CreateTable(OrdersDef()).ok());
  Row order{Value(int64_t{1}), Value(int64_t{1}), Value("F"), Value(1000.0),
            Value(int64_t{100}), Value("1-URGENT"), Value("Clerk#1"),
            Value(int64_t{0}), Value(int64_t{100}), Value(int64_t{200}),
            Value(int64_t{200}), Value(int64_t{300})};
  ASSERT_TRUE(engine->Insert("ORDERS", order).ok());
  // Sequenced update over the receivable dimension only.
  ASSERT_TRUE(engine->UpdateSequenced("ORDERS", {Value(int64_t{1})},
                                      /*period_index=*/1, Period(250, 300),
                                      {{orders::kTotalPrice, Value(900.0)}})
                  .ok());
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal = TemporalScanSpec::AppAsOf(270, 1);
  double price = 0;
  int n = 0;
  engine->Scan(req, [&](const Row& row) {
    price = row[orders::kTotalPrice].AsDouble();
    ++n;
    return true;
  });
  EXPECT_EQ(1, n);
  EXPECT_DOUBLE_EQ(900.0, price);
  // The active dimension still has the full period (and both splits match
  // an ACTIVE_TIME point query).
  req.temporal = TemporalScanSpec::AppAsOf(150, 0);
  n = 0;
  engine->Scan(req, [&](const Row&) {
    ++n;
    return true;
  });
  EXPECT_EQ(2, n);  // split into receivable [200,250) and [250,300) versions
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MultiPeriodTest,
                         ::testing::Values("A", "B", "C", "D"));

}  // namespace
}  // namespace bih
