#include "workload/tpch_queries.h"

#include <algorithm>

#include "tpch/schema.h"

namespace bih {

namespace {

// Scan widths (user columns + the two system-time columns).
constexpr int WR = 5;    // REGION
constexpr int WN = 6;    // NATION
constexpr int WS = 8;    // SUPPLIER
constexpr int WP = 12;   // PART
constexpr int WPS = 8;   // PARTSUPP
constexpr int WC = 11;   // CUSTOMER
constexpr int WO = 14;   // ORDERS
constexpr int WL = 19;   // LINEITEM

int64_t D(int y, int m, int d) { return Date::FromYMD(y, m, d).days(); }

// Per-query scan helper binding the temporal coordinates.
struct Ctx {
  TemporalEngine& e;
  TemporalScanSpec spec;

  Rows Scan(const char* table) const {
    ScanRequest req;
    req.table = table;
    req.temporal = spec;
    return ScanAll(e, req);
  }
};

ExprPtr Revenue(int ext, int disc) {
  return Mul(Col(ext), Sub(Lit(1.0), Col(disc)));
}

Rows Q1(const Ctx& c) {
  namespace l = lineitem;
  Rows li = FilterRows(c.Scan("LINEITEM"),
                       Le(Col(l::kShipDate), Lit(D(1998, 9, 2))));
  Rows out = HashAggregateRows(
      li, {l::kReturnFlag, l::kLineStatus},
      {{AggKind::kSum, Col(l::kQuantity)},
       {AggKind::kSum, Col(l::kExtendedPrice)},
       {AggKind::kSum, Revenue(l::kExtendedPrice, l::kDiscount)},
       {AggKind::kSum, Mul(Revenue(l::kExtendedPrice, l::kDiscount),
                           Add(Lit(1.0), Col(l::kTax)))},
       {AggKind::kAvg, Col(l::kQuantity)},
       {AggKind::kAvg, Col(l::kExtendedPrice)},
       {AggKind::kAvg, Col(l::kDiscount)},
       {AggKind::kCount, nullptr}});
  return SortRows(std::move(out), {{0, true}, {1, true}});
}

Rows Q2(const Ctx& c) {
  namespace p = part;
  namespace ps = partsupp;
  namespace s = supplier;
  namespace n = nation;
  namespace r = region;
  // Suppliers in EUROPE with nation/region attached.
  Rows supp = c.Scan("SUPPLIER");
  Rows nat = c.Scan("NATION");
  Rows reg = FilterRows(c.Scan("REGION"), Eq(Col(r::kName), Lit("EUROPE")));
  Rows sn = HashJoinRows(supp, nat, {s::kNationKey}, {n::kNationKey}, WN);
  Rows snr = HashJoinRows(sn, reg, {WS + n::kRegionKey}, {r::kRegionKey}, WR);
  // PARTSUPP restricted to those suppliers.
  Rows pssnr = HashJoinRows(c.Scan("PARTSUPP"), snr, {ps::kSuppKey},
                            {s::kSuppKey}, WS + WN + WR);
  // Regional minimum cost per part.
  Rows mincost = HashAggregateRows(pssnr, {ps::kPartKey},
                                   {{AggKind::kMin, Col(ps::kSupplyCost)}});
  // Parts of interest.
  Rows parts = FilterRows(
      c.Scan("PART"), And(Eq(Col(p::kSize), Lit(int64_t{15})),
                          Contains(Col(p::kType), Lit("BRASS"))));
  Rows j = HashJoinRows(parts, pssnr, {p::kPartKey}, {ps::kPartKey},
                        WPS + WS + WN + WR);
  // Attach the regional minimum and keep only cost == min.
  const int jw = WP + WPS + WS + WN + WR;
  Rows withmin = HashJoinRows(j, mincost, {p::kPartKey}, {0}, 2);
  withmin = FilterRows(
      withmin, Eq(Col(WP + ps::kSupplyCost), Col(jw + 1)));
  const int so = WP + WPS;  // supplier offset
  const int no = WP + WPS + WS;
  Rows out = ProjectRows(
      withmin, {Col(so + s::kAcctBal), Col(so + s::kName), Col(no + n::kName),
                Col(p::kPartKey), Col(p::kMfgr)});
  out = SortRows(std::move(out), {{0, false}, {2, true}, {1, true}, {3, true}});
  return LimitRows(std::move(out), 100);
}

Rows Q3(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  Rows cust = FilterRows(c.Scan("CUSTOMER"),
                         Eq(Col(cu::kMktSegment), Lit("BUILDING")));
  Rows ords = FilterRows(c.Scan("ORDERS"),
                         Lt(Col(o::kOrderDate), Lit(D(1995, 3, 15))));
  Rows li = FilterRows(c.Scan("LINEITEM"),
                       Gt(Col(l::kShipDate), Lit(D(1995, 3, 15))));
  Rows co = HashJoinRows(cust, ords, {cu::kCustKey}, {o::kCustKey}, WO);
  Rows col = HashJoinRows(co, li, {WC + o::kOrderKey}, {l::kOrderKey}, WL);
  const int lo = WC + WO;
  Rows agg = HashAggregateRows(
      col, {WC + o::kOrderKey, WC + o::kOrderDate, WC + o::kShipPriority},
      {{AggKind::kSum, Revenue(lo + l::kExtendedPrice, lo + l::kDiscount)}});
  agg = SortRows(std::move(agg), {{3, false}, {1, true}});
  return LimitRows(std::move(agg), 10);
}

Rows Q4(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  Rows ords = FilterRows(
      c.Scan("ORDERS"), And(Ge(Col(o::kOrderDate), Lit(D(1993, 7, 1))),
                            Lt(Col(o::kOrderDate), Lit(D(1993, 10, 1)))));
  Rows late = FilterRows(c.Scan("LINEITEM"),
                         Lt(Col(l::kCommitDate), Col(l::kReceiptDate)));
  Rows late_keys = DistinctRows(ProjectRows(late, {Col(l::kOrderKey)}));
  Rows j = HashJoinRows(ords, late_keys, {o::kOrderKey}, {0}, 1);
  Rows agg = HashAggregateRows(j, {o::kOrderPriority},
                               {{AggKind::kCount, nullptr}});
  return SortRows(std::move(agg), {{0, true}});
}

Rows Q5(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  namespace r = region;
  Rows reg = FilterRows(c.Scan("REGION"), Eq(Col(r::kName), Lit("ASIA")));
  Rows nat = HashJoinRows(c.Scan("NATION"), reg, {n::kRegionKey},
                          {r::kRegionKey}, WR);
  Rows cust = HashJoinRows(c.Scan("CUSTOMER"), nat, {cu::kNationKey},
                           {n::kNationKey}, WN + WR);
  Rows ords = FilterRows(
      c.Scan("ORDERS"), And(Ge(Col(o::kOrderDate), Lit(D(1994, 1, 1))),
                            Lt(Col(o::kOrderDate), Lit(D(1995, 1, 1)))));
  Rows co = HashJoinRows(cust, ords, {cu::kCustKey}, {o::kCustKey}, WO);
  const int oo = WC + WN + WR;
  Rows col = HashJoinRows(co, c.Scan("LINEITEM"), {oo + o::kOrderKey},
                          {l::kOrderKey}, WL);
  const int lo = oo + WO;
  Rows sup = c.Scan("SUPPLIER");
  // lineitem supplier must be in the same nation as the customer.
  Rows cols = HashJoinRows(col, sup, {lo + l::kSuppKey}, {s::kSuppKey}, WS,
                           JoinType::kInner,
                           Eq(Col(cu::kNationKey),
                              Col(lo + WL + s::kNationKey)));
  Rows agg = HashAggregateRows(
      cols, {WC + n::kName},
      {{AggKind::kSum, Revenue(lo + l::kExtendedPrice, lo + l::kDiscount)}});
  return SortRows(std::move(agg), {{1, false}});
}

Rows Q6(const Ctx& c) {
  namespace l = lineitem;
  Rows li = FilterRows(
      c.Scan("LINEITEM"),
      And(And(Ge(Col(l::kShipDate), Lit(D(1994, 1, 1))),
              Lt(Col(l::kShipDate), Lit(D(1995, 1, 1)))),
          And(Between(Col(l::kDiscount), Lit(0.05), Lit(0.07)),
              Lt(Col(l::kQuantity), Lit(24.0)))));
  return HashAggregateRows(
      li, {}, {{AggKind::kSum, Mul(Col(l::kExtendedPrice), Col(l::kDiscount))}});
}

Rows Q7(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  auto nations = FilterRows(c.Scan("NATION"),
                            Or(Eq(Col(n::kName), Lit("FRANCE")),
                               Eq(Col(n::kName), Lit("GERMANY"))));
  Rows sup = HashJoinRows(c.Scan("SUPPLIER"), nations, {s::kNationKey},
                          {n::kNationKey}, WN);
  Rows cust = HashJoinRows(c.Scan("CUSTOMER"), nations, {cu::kNationKey},
                           {n::kNationKey}, WN);
  Rows li = FilterRows(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1995, 1, 1))),
                              Le(Col(l::kShipDate), Lit(D(1996, 12, 31)))));
  Rows ls = HashJoinRows(li, sup, {l::kSuppKey}, {s::kSuppKey}, WS + WN);
  Rows lso = HashJoinRows(ls, c.Scan("ORDERS"), {l::kOrderKey}, {orders::kOrderKey},
                          WO);
  const int oo = WL + WS + WN;
  Rows lsoc = HashJoinRows(lso, cust, {oo + o::kCustKey}, {cu::kCustKey},
                           WC + WN);
  const int sn = WL + WS + n::kName;            // supplier nation name
  const int cn = oo + WO + WC + n::kName;       // customer nation name
  Rows cross = FilterRows(
      lsoc, Or(And(Eq(Col(sn), Lit("FRANCE")), Eq(Col(cn), Lit("GERMANY"))),
               And(Eq(Col(sn), Lit("GERMANY")), Eq(Col(cn), Lit("FRANCE")))));
  Rows proj = ProjectRows(
      cross, {Col(sn), Col(cn), YearOf(Col(l::kShipDate)),
              Revenue(l::kExtendedPrice, l::kDiscount)});
  Rows agg = HashAggregateRows(proj, {0, 1, 2}, {{AggKind::kSum, Col(3)}});
  return SortRows(std::move(agg), {{0, true}, {1, true}, {2, true}});
}

Rows Q8(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  namespace r = region;
  namespace p = part;
  Rows parts = FilterRows(
      c.Scan("PART"), Eq(Col(p::kType), Lit("ECONOMY ANODIZED STEEL")));
  Rows pl = HashJoinRows(parts, c.Scan("LINEITEM"), {p::kPartKey},
                         {l::kPartKey}, WL);
  const int lo = WP;
  Rows plo = HashJoinRows(pl, FilterRows(c.Scan("ORDERS"),
                                         And(Ge(Col(o::kOrderDate),
                                                Lit(D(1995, 1, 1))),
                                             Le(Col(o::kOrderDate),
                                                Lit(D(1996, 12, 31))))),
                          {lo + l::kOrderKey}, {o::kOrderKey}, WO);
  const int oo = WP + WL;
  Rows ploc = HashJoinRows(plo, c.Scan("CUSTOMER"), {oo + o::kCustKey},
                           {cu::kCustKey}, WC);
  const int co = oo + WO;
  Rows reg = FilterRows(c.Scan("REGION"), Eq(Col(r::kName), Lit("AMERICA")));
  Rows cn = HashJoinRows(c.Scan("NATION"), reg, {n::kRegionKey},
                         {r::kRegionKey}, WR);
  Rows plocn = HashJoinRows(ploc, cn, {co + cu::kNationKey}, {n::kNationKey},
                            WN + WR);
  Rows sup = c.Scan("SUPPLIER");
  Rows sn = HashJoinRows(sup, c.Scan("NATION"), {s::kNationKey},
                         {n::kNationKey}, WN);
  Rows all = HashJoinRows(plocn, sn, {lo + l::kSuppKey}, {s::kSuppKey},
                          WS + WN);
  const int suppnat = co + WC + WN + WR + WS + n::kName;
  Rows proj = ProjectRows(
      all, {YearOf(Col(oo + o::kOrderDate)),
            Revenue(lo + l::kExtendedPrice, lo + l::kDiscount),
            Mul(Eq(Col(suppnat), Lit("BRAZIL")),
                Revenue(lo + l::kExtendedPrice, lo + l::kDiscount))});
  Rows agg = HashAggregateRows(
      proj, {0}, {{AggKind::kSum, Col(2)}, {AggKind::kSum, Col(1)}});
  Rows share = ProjectRows(agg, {Col(0), Div(Col(1), Col(2))});
  return SortRows(std::move(share), {{0, true}});
}

Rows Q9(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  namespace p = part;
  namespace ps = partsupp;
  Rows parts = FilterRows(c.Scan("PART"),
                          Contains(Col(p::kName), Lit("green")));
  Rows pl = HashJoinRows(parts, c.Scan("LINEITEM"), {p::kPartKey},
                         {l::kPartKey}, WL);
  const int lo = WP;
  Rows pls = HashJoinRows(pl, c.Scan("SUPPLIER"), {lo + l::kSuppKey},
                          {s::kSuppKey}, WS);
  const int so = WP + WL;
  Rows plsps = HashJoinRows(pls, c.Scan("PARTSUPP"),
                            {p::kPartKey, lo + l::kSuppKey},
                            {ps::kPartKey, ps::kSuppKey}, WPS);
  const int pso = so + WS;
  Rows all = HashJoinRows(plsps, c.Scan("ORDERS"), {lo + l::kOrderKey},
                          {o::kOrderKey}, WO);
  const int oo = pso + WPS;
  Rows alln = HashJoinRows(all, c.Scan("NATION"), {so + s::kNationKey},
                           {n::kNationKey}, WN);
  const int no = oo + WO;
  // profit = ext*(1-disc) - supplycost*qty
  Rows proj = ProjectRows(
      alln,
      {Col(no + n::kName), YearOf(Col(oo + o::kOrderDate)),
       Sub(Revenue(lo + l::kExtendedPrice, lo + l::kDiscount),
           Mul(Col(pso + ps::kSupplyCost), Col(lo + l::kQuantity)))});
  Rows agg = HashAggregateRows(proj, {0, 1}, {{AggKind::kSum, Col(2)}});
  return SortRows(std::move(agg), {{0, true}, {1, false}});
}

Rows Q10(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  namespace n = nation;
  Rows ords = FilterRows(
      c.Scan("ORDERS"), And(Ge(Col(o::kOrderDate), Lit(D(1993, 10, 1))),
                            Lt(Col(o::kOrderDate), Lit(D(1994, 1, 1)))));
  Rows co = HashJoinRows(c.Scan("CUSTOMER"), ords, {cu::kCustKey},
                         {o::kCustKey}, WO);
  Rows li = FilterRows(c.Scan("LINEITEM"),
                       Eq(Col(l::kReturnFlag), Lit("R")));
  Rows col = HashJoinRows(co, li, {WC + o::kOrderKey}, {l::kOrderKey}, WL);
  const int lo = WC + WO;
  Rows coln = HashJoinRows(col, c.Scan("NATION"), {cu::kNationKey},
                           {n::kNationKey}, WN);
  const int no = lo + WL;
  Rows agg = HashAggregateRows(
      coln,
      {cu::kCustKey, cu::kName, cu::kAcctBal, cu::kPhone, no + n::kName,
       cu::kAddress},
      {{AggKind::kSum, Revenue(lo + l::kExtendedPrice, lo + l::kDiscount)}});
  agg = SortRows(std::move(agg), {{6, false}});
  return LimitRows(std::move(agg), 20);
}

Rows Q11(const Ctx& c) {
  namespace s = supplier;
  namespace n = nation;
  namespace ps = partsupp;
  Rows nat = FilterRows(c.Scan("NATION"), Eq(Col(n::kName), Lit("GERMANY")));
  Rows sn = HashJoinRows(c.Scan("SUPPLIER"), nat, {s::kNationKey},
                         {n::kNationKey}, WN);
  Rows pssn = HashJoinRows(c.Scan("PARTSUPP"), sn, {ps::kSuppKey},
                           {s::kSuppKey}, WS + WN);
  ExprPtr value = Mul(Col(ps::kSupplyCost), Col(ps::kAvailQty));
  Rows total = HashAggregateRows(pssn, {}, {{AggKind::kSum, value}});
  double threshold = total[0][0].is_null()
                         ? 0.0
                         : total[0][0].AsDouble() * 0.0001;
  Rows per_part =
      HashAggregateRows(pssn, {ps::kPartKey}, {{AggKind::kSum, value}});
  Rows out = FilterRows(per_part, Gt(Col(1), Lit(threshold)));
  return SortRows(std::move(out), {{1, false}});
}

Rows Q12(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  Rows li = FilterRows(
      c.Scan("LINEITEM"),
      And(And(Or(Eq(Col(l::kShipMode), Lit("MAIL")),
                 Eq(Col(l::kShipMode), Lit("SHIP"))),
              And(Lt(Col(l::kCommitDate), Col(l::kReceiptDate)),
                  Lt(Col(l::kShipDate), Col(l::kCommitDate)))),
          And(Ge(Col(l::kReceiptDate), Lit(D(1994, 1, 1))),
              Lt(Col(l::kReceiptDate), Lit(D(1995, 1, 1))))));
  Rows lo_ = HashJoinRows(li, c.Scan("ORDERS"), {l::kOrderKey},
                          {o::kOrderKey}, WO);
  const int oo = WL;
  ExprPtr high = Or(Eq(Col(oo + o::kOrderPriority), Lit("1-URGENT")),
                    Eq(Col(oo + o::kOrderPriority), Lit("2-HIGH")));
  Rows proj = ProjectRows(lo_, {Col(l::kShipMode), high, Not(high)});
  Rows agg = HashAggregateRows(
      proj, {0}, {{AggKind::kSum, Col(1)}, {AggKind::kSum, Col(2)}});
  return SortRows(std::move(agg), {{0, true}});
}

Rows Q13(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  // Substituted filter (no o_comment column): exclude unspecified-priority
  // orders, preserving the outer join + filtered-probe plan shape.
  Rows ords = FilterRows(c.Scan("ORDERS"),
                         Ne(Col(o::kOrderPriority), Lit("4-NOT SPECIFIED")));
  Rows proj_orders = ProjectRows(ords, {Col(o::kCustKey), Col(o::kOrderKey)});
  Rows co = HashJoinRows(c.Scan("CUSTOMER"), proj_orders, {cu::kCustKey}, {0},
                         2, JoinType::kLeftOuter);
  Rows counts = HashAggregateRows(co, {cu::kCustKey},
                                  {{AggKind::kCount, Col(WC + 1)}});
  Rows dist = HashAggregateRows(counts, {1}, {{AggKind::kCount, nullptr}});
  return SortRows(std::move(dist), {{1, false}, {0, false}});
}

Rows Q14(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  Rows li = FilterRows(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1995, 9, 1))),
                              Lt(Col(l::kShipDate), Lit(D(1995, 10, 1)))));
  Rows lp = HashJoinRows(li, c.Scan("PART"), {l::kPartKey}, {p::kPartKey}, WP);
  ExprPtr rev = Revenue(l::kExtendedPrice, l::kDiscount);
  ExprPtr promo = Mul(StartsWith(Col(WL + p::kType), Lit("PROMO")), rev);
  Rows agg = HashAggregateRows(
      lp, {}, {{AggKind::kSum, promo}, {AggKind::kSum, rev}});
  return ProjectRows(agg, {Div(Mul(Lit(100.0), Col(0)), Col(1))});
}

Rows Q15(const Ctx& c) {
  namespace l = lineitem;
  namespace s = supplier;
  Rows li = FilterRows(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1996, 1, 1))),
                              Lt(Col(l::kShipDate), Lit(D(1996, 4, 1)))));
  Rows rev = HashAggregateRows(
      li, {l::kSuppKey},
      {{AggKind::kSum, Revenue(l::kExtendedPrice, l::kDiscount)}});
  double best = 0.0;
  for (const Row& r : rev) {
    if (!r[1].is_null()) best = std::max(best, r[1].AsDouble());
  }
  Rows top = FilterRows(rev, Ge(Col(1), Lit(best)));
  Rows out = HashJoinRows(top, c.Scan("SUPPLIER"), {0}, {s::kSuppKey}, WS);
  return SortRows(ProjectRows(out, {Col(2 + s::kSuppKey), Col(2 + s::kName),
                                    Col(1)}),
                  {{0, true}});
}

Rows Q16(const Ctx& c) {
  namespace p = part;
  namespace ps = partsupp;
  namespace s = supplier;
  static const int64_t kSizes[8] = {49, 14, 23, 45, 19, 3, 36, 9};
  ExprPtr size_in = Eq(Col(p::kSize), Lit(kSizes[0]));
  for (int i = 1; i < 8; ++i) {
    size_in = Or(size_in, Eq(Col(p::kSize), Lit(kSizes[i])));
  }
  Rows parts = FilterRows(
      c.Scan("PART"),
      And(And(Ne(Col(p::kBrand), Lit("Brand#45")),
              Not(StartsWith(Col(p::kType), Lit("MEDIUM POLISHED")))),
          size_in));
  Rows psp = HashJoinRows(c.Scan("PARTSUPP"), parts, {ps::kPartKey},
                          {p::kPartKey}, WP);
  // Substituted complaints filter: suppliers with negative balance are
  // excluded via anti-join.
  Rows bad = FilterRows(c.Scan("SUPPLIER"), Lt(Col(s::kAcctBal), Lit(0.0)));
  Rows bad_keys = DistinctRows(ProjectRows(bad, {Col(s::kSuppKey)}));
  Rows joined = HashJoinRows(psp, bad_keys, {ps::kSuppKey}, {0}, 1,
                             JoinType::kLeftOuter);
  const int anti = WPS + WP;
  Rows kept = FilterRows(joined, IsNull(Col(anti)));
  Rows agg = HashAggregateRows(
      kept, {WPS + p::kBrand, WPS + p::kType, WPS + p::kSize},
      {{AggKind::kCountDistinct, Col(ps::kSuppKey)}});
  return SortRows(std::move(agg), {{3, false}, {0, true}, {1, true}, {2, true}});
}

Rows Q17(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  Rows parts = FilterRows(c.Scan("PART"),
                          And(Eq(Col(p::kBrand), Lit("Brand#23")),
                              Eq(Col(p::kContainer), Lit("MED BOX"))));
  Rows li = c.Scan("LINEITEM");
  Rows lp = HashJoinRows(li, parts, {l::kPartKey}, {p::kPartKey}, WP);
  Rows avgq = HashAggregateRows(li, {l::kPartKey},
                                {{AggKind::kAvg, Col(l::kQuantity)}});
  Rows la = HashJoinRows(lp, avgq, {l::kPartKey}, {0}, 2);
  const int avg_col = WL + WP + 1;
  Rows small = FilterRows(
      la, Lt(Col(l::kQuantity), Mul(Lit(0.2), Col(avg_col))));
  Rows agg = HashAggregateRows(small, {},
                               {{AggKind::kSum, Col(l::kExtendedPrice)}});
  return ProjectRows(agg, {Div(Col(0), Lit(7.0))});
}

Rows Q18(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  namespace l = lineitem;
  Rows li = c.Scan("LINEITEM");
  Rows big = HashAggregateRows(li, {l::kOrderKey},
                               {{AggKind::kSum, Col(l::kQuantity)}});
  big = FilterRows(big, Gt(Col(1), Lit(300.0)));
  Rows ob = HashJoinRows(c.Scan("ORDERS"), big, {o::kOrderKey}, {0}, 2);
  Rows cob = HashJoinRows(c.Scan("CUSTOMER"), ob, {cu::kCustKey},
                          {o::kCustKey}, WO + 2);
  const int oo = WC;
  Rows out = ProjectRows(
      cob, {Col(cu::kName), Col(cu::kCustKey), Col(oo + o::kOrderKey),
            Col(oo + o::kOrderDate), Col(oo + o::kTotalPrice),
            Col(oo + WO + 1)});
  out = SortRows(std::move(out), {{4, false}, {3, true}});
  return LimitRows(std::move(out), 100);
}

Rows Q19(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  Rows li = FilterRows(
      c.Scan("LINEITEM"),
      And(Or(Eq(Col(l::kShipMode), Lit("AIR")),
             Eq(Col(l::kShipMode), Lit("REG AIR"))),
          Eq(Col(l::kShipInstruct), Lit("DELIVER IN PERSON"))));
  Rows lp = HashJoinRows(li, c.Scan("PART"), {l::kPartKey}, {p::kPartKey}, WP);
  auto clause = [&](const char* brand, const char* cont_prefix, double qlo,
                    double qhi, int64_t size_hi) {
    return And(And(Eq(Col(WL + p::kBrand), Lit(brand)),
                   StartsWith(Col(WL + p::kContainer), Lit(cont_prefix))),
               And(Between(Col(l::kQuantity), Lit(qlo), Lit(qhi)),
                   Between(Col(WL + p::kSize), Lit(int64_t{1}),
                           Lit(size_hi))));
  };
  Rows matched = FilterRows(
      lp, Or(Or(clause("Brand#12", "SM", 1.0, 11.0, 5),
                clause("Brand#23", "MED", 10.0, 20.0, 10)),
             clause("Brand#34", "LG", 20.0, 30.0, 15)));
  return HashAggregateRows(
      matched, {}, {{AggKind::kSum, Revenue(l::kExtendedPrice, l::kDiscount)}});
}

Rows Q20(const Ctx& c) {
  namespace l = lineitem;
  namespace p = part;
  namespace ps = partsupp;
  namespace s = supplier;
  namespace n = nation;
  Rows parts = FilterRows(c.Scan("PART"),
                          StartsWith(Col(p::kName), Lit("forest")));
  Rows part_keys = DistinctRows(ProjectRows(parts, {Col(p::kPartKey)}));
  Rows li = FilterRows(
      c.Scan("LINEITEM"), And(Ge(Col(l::kShipDate), Lit(D(1994, 1, 1))),
                              Lt(Col(l::kShipDate), Lit(D(1995, 1, 1)))));
  Rows usage = HashAggregateRows(li, {l::kPartKey, l::kSuppKey},
                                 {{AggKind::kSum, Col(l::kQuantity)}});
  Rows pu = HashJoinRows(usage, part_keys, {0}, {0}, 1);
  Rows psj = HashJoinRows(c.Scan("PARTSUPP"), pu,
                          {ps::kPartKey, ps::kSuppKey}, {0, 1}, 4);
  Rows excess = FilterRows(
      psj, Gt(Col(ps::kAvailQty), Mul(Lit(0.5), Col(WPS + 2))));
  Rows supp_keys = DistinctRows(ProjectRows(excess, {Col(ps::kSuppKey)}));
  Rows nat = FilterRows(c.Scan("NATION"), Eq(Col(n::kName), Lit("CANADA")));
  Rows sn = HashJoinRows(c.Scan("SUPPLIER"), nat, {s::kNationKey},
                         {n::kNationKey}, WN);
  Rows out = HashJoinRows(sn, supp_keys, {s::kSuppKey}, {0}, 1);
  return SortRows(ProjectRows(out, {Col(s::kName), Col(s::kAddress)}),
                  {{0, true}});
}

Rows Q21(const Ctx& c) {
  namespace o = orders;
  namespace l = lineitem;
  namespace s = supplier;
  namespace n = nation;
  Rows li = c.Scan("LINEITEM");
  // Per order: distinct suppliers overall and distinct late suppliers.
  Rows all_sup = HashAggregateRows(li, {l::kOrderKey},
                                   {{AggKind::kCountDistinct, Col(l::kSuppKey)}});
  Rows late = FilterRows(li, Gt(Col(l::kReceiptDate), Col(l::kCommitDate)));
  Rows late_sup = HashAggregateRows(
      late, {l::kOrderKey}, {{AggKind::kCountDistinct, Col(l::kSuppKey)}});
  // Late lineitems of multi-supplier orders where only one supplier is late.
  Rows j1 = HashJoinRows(late, all_sup, {l::kOrderKey}, {0}, 2);
  Rows j2 = HashJoinRows(j1, late_sup, {l::kOrderKey}, {0}, 2);
  Rows culprit = FilterRows(
      j2, And(Gt(Col(WL + 1), Lit(int64_t{1})),   // several suppliers
              Eq(Col(WL + 3), Lit(int64_t{1})))); // exactly one late
  Rows ords = FilterRows(c.Scan("ORDERS"), Eq(Col(o::kOrderStatus), Lit("F")));
  Rows co = HashJoinRows(culprit, ords, {l::kOrderKey}, {o::kOrderKey}, WO);
  Rows nat = FilterRows(c.Scan("NATION"),
                        Eq(Col(n::kName), Lit("SAUDI ARABIA")));
  Rows sn = HashJoinRows(c.Scan("SUPPLIER"), nat, {s::kNationKey},
                         {n::kNationKey}, WN);
  Rows cos = HashJoinRows(co, sn, {l::kSuppKey}, {s::kSuppKey}, WS + WN);
  const int so = WL + 4 + WO;
  Rows agg = HashAggregateRows(cos, {so + s::kName},
                               {{AggKind::kCount, nullptr}});
  agg = SortRows(std::move(agg), {{1, false}, {0, true}});
  return LimitRows(std::move(agg), 100);
}

Rows Q22(const Ctx& c) {
  namespace cu = customer;
  namespace o = orders;
  static const char* kPrefixes[7] = {"13", "31", "23", "29", "30", "18", "17"};
  // Country code = first two digits of the phone number.
  Rows cust = c.Scan("CUSTOMER");
  auto prefix_of = [](const Row& r) {
    return r[cu::kPhone].AsString().substr(0, 2);
  };
  Rows eligible;
  for (const Row& r : cust) {
    std::string pre = prefix_of(r);
    for (const char* want : kPrefixes) {
      if (pre == want) {
        eligible.push_back(r);
        break;
      }
    }
  }
  double sum = 0.0;
  int64_t n = 0;
  for (const Row& r : eligible) {
    double b = r[cu::kAcctBal].AsDouble();
    if (b > 0.0) {
      sum += b;
      ++n;
    }
  }
  double avg = n == 0 ? 0.0 : sum / static_cast<double>(n);
  Rows rich = FilterRows(eligible, Gt(Col(cu::kAcctBal), Lit(avg)));
  Rows order_keys = DistinctRows(
      ProjectRows(c.Scan("ORDERS"), {Col(o::kCustKey)}));
  Rows anti = HashJoinRows(rich, order_keys, {cu::kCustKey}, {0}, 1,
                           JoinType::kLeftOuter);
  Rows no_orders = FilterRows(anti, IsNull(Col(WC)));
  Rows proj;
  for (const Row& r : no_orders) {
    proj.push_back({Value(prefix_of(r)), r[cu::kAcctBal]});
  }
  Rows agg = HashAggregateRows(
      proj, {0}, {{AggKind::kCount, nullptr}, {AggKind::kSum, Col(1)}});
  return SortRows(std::move(agg), {{0, true}});
}

}  // namespace

Rows TpchQuery(int number, TemporalEngine& engine,
               const TemporalScanSpec& spec) {
  Ctx c{engine, spec};
  switch (number) {
    case 1: return Q1(c);
    case 2: return Q2(c);
    case 3: return Q3(c);
    case 4: return Q4(c);
    case 5: return Q5(c);
    case 6: return Q6(c);
    case 7: return Q7(c);
    case 8: return Q8(c);
    case 9: return Q9(c);
    case 10: return Q10(c);
    case 11: return Q11(c);
    case 12: return Q12(c);
    case 13: return Q13(c);
    case 14: return Q14(c);
    case 15: return Q15(c);
    case 16: return Q16(c);
    case 17: return Q17(c);
    case 18: return Q18(c);
    case 19: return Q19(c);
    case 20: return Q20(c);
    case 21: return Q21(c);
    case 22: return Q22(c);
    default:
      BIH_CHECK_MSG(false, "TPC-H query number out of range");
  }
  return {};
}

}  // namespace bih
