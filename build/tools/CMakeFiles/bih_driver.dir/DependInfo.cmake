
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/bih_driver.cc" "tools/CMakeFiles/bih_driver.dir/bih_driver.cc.o" "gcc" "tools/CMakeFiles/bih_driver.dir/bih_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/bih_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bih_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bih/CMakeFiles/bih_history.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/bih_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/bih_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/bih_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/bih_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bih_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/bih_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bih_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
