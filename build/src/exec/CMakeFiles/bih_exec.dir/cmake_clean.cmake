file(REMOVE_RECURSE
  "CMakeFiles/bih_exec.dir/expr.cc.o"
  "CMakeFiles/bih_exec.dir/expr.cc.o.d"
  "CMakeFiles/bih_exec.dir/operators.cc.o"
  "CMakeFiles/bih_exec.dir/operators.cc.o.d"
  "libbih_exec.a"
  "libbih_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
