// Figure 10: key-in-time restricted by *version count* rather than by a
// time window: Top-N latest versions (K4) and the timestamp-correlated
// previous version (K5), per time dimension.
//
// Expected shape (Section 5.5.2): Top-N helps in some cases (ordered index
// access stops early); the correlated K5 formulation never wins because it
// re-scans the key's versions.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

std::vector<std::unique_ptr<TemporalEngine>>* g_engines =
    new std::vector<std::unique_ptr<TemporalEngine>>();

void RegisterFor(const std::string& label, TemporalEngine* e,
                 const WorkloadContext& ctx) {
  const int64_t key = ctx.hot_custkey;
  TemporalScanSpec app_axis;
  app_axis.app_time = TemporalSelector::All();
  TemporalScanSpec app_past;
  app_past.app_time = TemporalSelector::All();
  app_past.system_time = TemporalSelector::AsOf(ctx.sys_mid.micros());
  TemporalScanSpec sys_axis;
  sys_axis.system_time = TemporalSelector::All();
  sys_axis.app_time = TemporalSelector::All();
  auto add = [&](const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(("Fig10/" + name + "/" + label).c_str(),
                                 [e, fn](benchmark::State& state) {
                                   for (auto _ : state) {
                                     benchmark::DoNotOptimize(fn(*e));
                                   }
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  };
  add("K4_top5_app", [key, app_axis](TemporalEngine& eng) {
    return K4(eng, key, app_axis, 5);
  });
  add("K4_top5_app_past_sys", [key, app_past](TemporalEngine& eng) {
    return K4(eng, key, app_past, 5);
  });
  add("K4_top5_sys", [key, sys_axis](TemporalEngine& eng) {
    return K4(eng, key, sys_axis, 5);
  });
  add("K5_prev_version_app", [key, app_axis](TemporalEngine& eng) {
    return K5(eng, key, app_axis);
  });
  add("K5_prev_version_sys", [key, sys_axis](TemporalEngine& eng) {
    return K5(eng, key, sys_axis);
  });
}

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  for (const std::string& letter : AllEngineLetters()) {
    g_engines->push_back(w.Fresh(letter));
    Status st = ApplyIndexSetting(*g_engines->back(), IndexSetting::kKeyTime);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    RegisterFor("System" + letter, g_engines->back().get(), ctx);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
