#ifndef TPCBIH_STORAGE_ROW_TABLE_H_
#define TPCBIH_STORAGE_ROW_TABLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"

namespace bih {

using RowId = uint64_t;
constexpr RowId kInvalidRowId = ~RowId{0};

// Append-mostly row store segment. Row ids are stable positions; deletion
// marks a tombstone that scans skip. This models the heap table of a
// disk-based RDBMS (Systems A, B, D) at the granularity the benchmark
// observes: full scans, point reads via an index, in-place updates.
class RowTable {
 public:
  explicit RowTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  RowId Append(Row row);

  // Number of live (non-deleted) rows.
  size_t LiveCount() const { return live_count_; }
  // Total slots including tombstones; the upper bound for row ids.
  size_t SlotCount() const { return rows_.size(); }

  bool IsLive(RowId id) const {
    return id < rows_.size() && !deleted_[id];
  }

  const Row& Get(RowId id) const {
    BIH_CHECK(id < rows_.size());
    return rows_[id];
  }
  Row* GetMutable(RowId id) {
    BIH_CHECK(id < rows_.size() && !deleted_[id]);
    return &rows_[id];
  }

  void Delete(RowId id);

  // Invokes fn for every live row in insertion order. Returning false from
  // fn stops the scan early (used for Top-N early exit).
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  void Clear();

 private:
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<uint8_t> deleted_;
  size_t live_count_ = 0;
};

}  // namespace bih

#endif  // TPCBIH_STORAGE_ROW_TABLE_H_
