# Empty dependencies file for bih_driver.
# This may be replaced when dependencies are built.
