#include "engine/consistency.h"

#include <algorithm>

#include <map>

#include "engine/scan_util.h"

namespace bih {

ConsistencyReport CheckBitemporalConsistency(TemporalEngine& engine,
                                             const std::string& table,
                                             bool check_app_overlap,
                                             size_t max_violations) {
  ConsistencyReport report;
  const TableDef& def = engine.GetTableDef(table);
  const int sys_from = def.schema.num_columns();
  const int sys_to = sys_from + 1;

  struct Version {
    Period sys;
    std::vector<Period> app;  // one per application-time dimension
  };
  struct KeyCmp {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };
  std::map<std::vector<Value>, std::vector<Version>, KeyCmp> by_key;

  ScanRequest req;
  req.table = table;
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  engine.Scan(req, [&](const Row& row) {
    std::vector<Value> key;
    for (int c : def.primary_key) key.push_back(row[static_cast<size_t>(c)]);
    Version v;
    v.sys = Period(row[static_cast<size_t>(sys_from)].AsInt(),
                   row[static_cast<size_t>(sys_to)].AsInt());
    for (const AppPeriodDef& ap : def.app_periods) {
      v.app.emplace_back(row[static_cast<size_t>(ap.begin_col)].AsInt(),
                         row[static_cast<size_t>(ap.end_col)].AsInt());
    }
    by_key[std::move(key)].push_back(std::move(v));
    return true;
  });

  auto violate = [&](const std::vector<Value>& key, std::string msg) {
    if (report.violations.size() < max_violations) {
      report.violations.push_back(ConsistencyViolation{table, key, std::move(msg)});
    }
  };

  for (const auto& [key, versions] : by_key) {
    ++report.keys_checked;
    for (const Version& v : versions) {
      ++report.versions_checked;
      if (!v.sys.Valid()) {
        violate(key, "malformed system interval " + v.sys.ToString());
      }
      for (const Period& p : v.app) {
        if (!p.Valid()) {
          violate(key, "malformed application period " + p.ToString());
        }
      }
    }
    if (!check_app_overlap || def.app_periods.empty()) continue;
    for (size_t i = 0; i < versions.size(); ++i) {
      for (size_t j = i + 1; j < versions.size(); ++j) {
        if (!versions[i].sys.Overlaps(versions[j].sys)) continue;
        // Visible simultaneously in system time: the primary application
        // period must not intersect.
        if (versions[i].app[0].Overlaps(versions[j].app[0])) {
          violate(key, "bitemporal overlap: sys " + versions[i].sys.ToString() +
                           "/" + versions[j].sys.ToString() + " app " +
                           versions[i].app[0].ToString() + "/" +
                           versions[j].app[0].ToString());
        }
      }
    }
  }
  return report;
}

}  // namespace bih
