#include "storage/hash_index.h"

#include <algorithm>

namespace bih {

void HashIndex::Insert(const IndexKey& key, RowId rid) {
  map_[key].push_back(rid);
  ++size_;
}

bool HashIndex::Erase(const IndexKey& key, RowId rid) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  auto& rids = it->second;
  auto pos = std::find(rids.begin(), rids.end(), rid);
  if (pos == rids.end()) return false;
  rids.erase(pos);
  if (rids.empty()) map_.erase(it);
  --size_;
  return true;
}

void HashIndex::Lookup(const IndexKey& key,
                       const std::function<bool(RowId)>& fn) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  for (RowId rid : it->second) {
    if (!fn(rid)) return;
  }
}

}  // namespace bih
