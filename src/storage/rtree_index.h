#ifndef TPCBIH_STORAGE_RTREE_INDEX_H_
#define TPCBIH_STORAGE_RTREE_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/period.h"
#include "storage/row_table.h"

namespace bih {

// Axis-aligned rectangle over the (application time, system time) plane, or
// degenerate (1-D) for single-dimension period indexes. Closed box in the
// internal representation; period semantics (half-open) are mapped by the
// caller via end-1.
struct Rect {
  int64_t min[2];
  int64_t max[2];

  static Rect FromPeriod(const Period& p) {
    // 1-D period as a flat box; the second axis is a constant.
    return Rect{{p.begin, 0}, {p.end - 1, 0}};
  }
  static Rect FromPeriods(const Period& x, const Period& y) {
    return Rect{{x.begin, y.begin}, {x.end - 1, y.end - 1}};
  }
  static Rect Point(int64_t x, int64_t y) { return Rect{{x, y}, {x, y}}; }

  bool Intersects(const Rect& o) const {
    return min[0] <= o.max[0] && o.min[0] <= max[0] && min[1] <= o.max[1] &&
           o.min[1] <= max[1];
  }
  bool Contains(const Rect& o) const {
    return min[0] <= o.min[0] && o.max[0] <= max[0] && min[1] <= o.min[1] &&
           o.max[1] <= max[1];
  }
  void Expand(const Rect& o);
  // Area with saturation; used only to pick split partners, so precision
  // loss at the infinity sentinels is harmless.
  double HalfPerimeter() const;
};

// In-memory R-tree (the R-tree instantiation of a GiST, which is how
// PostgreSQL exposes period indexing — Section 2.5 of the paper). Quadratic
// split per Guttman's original algorithm.
class RTreeIndex {
 public:
  RTreeIndex();
  ~RTreeIndex();

  RTreeIndex(const RTreeIndex&) = delete;
  RTreeIndex& operator=(const RTreeIndex&) = delete;

  void Insert(const Rect& rect, RowId rid);

  // Removes one (rect, rid) entry; returns false if absent. The tree is not
  // re-condensed (history indexes in the workload are append-only).
  bool Erase(const Rect& rect, RowId rid);

  // Visits entries whose rectangle intersects `query`. fn returning false
  // stops the search.
  void Search(const Rect& query,
              const std::function<bool(const Rect&, RowId)>& fn) const;

  size_t size() const { return size_; }
  int height() const;

  // Bounding box of all entries; false when empty.
  bool Bounds(Rect* out) const;

  // Checks bounding-box containment invariants; used by tests.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseLeaf(const Rect& rect) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);

  Node* root_;
  size_t size_ = 0;
};

}  // namespace bih

#endif  // TPCBIH_STORAGE_RTREE_INDEX_H_
