#ifndef TPCBIH_ENGINE_SYSTEM_A_H_
#define TPCBIH_ENGINE_SYSTEM_A_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "engine/index_set.h"
#include "engine/scan_util.h"
#include "exec/parallel.h"
#include "storage/hash_index.h"
#include "storage/row_table.h"

namespace bih {

// Architecture A: disk-style row store with native bitemporal support.
//  * Horizontal partitioning: a current table and a history table with the
//    same schema (user columns + system-time interval).
//  * Updates move the outdated version to the history table instantly.
//  * A system-created key index exists on the current table only; history
//    tables carry no indexes unless tuning adds them (Section 5.2).
class SystemAEngine : public TemporalEngine {
 public:
  std::string name() const override { return "SystemA"; }

  Status DoCreateTable(const TableDef& def) override;
  Status CreateIndex(const IndexSpec& spec) override;
  Status DropIndexes(const std::string& table) override;
  const TableDef& GetTableDef(const std::string& table) const override;
  Schema ScanSchema(const std::string& table) const override;
  bool HasTable(const std::string& table) const override {
    return tables_.count(table) > 0;
  }

  Status DoInsert(const std::string& table, Row row) override;
  Status DoUpdateCurrent(const std::string& table, const std::vector<Value>& key,
                       const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateOverwrite(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoDeleteCurrent(const std::string& table,
                       const std::vector<Value>& key) override;
  Status DoDeleteSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period) override;

  std::vector<std::string> ListTables() const override;
  Status DoInstallVersion(const std::string& table, const Row& stored) override;

  void Scan(const ScanRequest& req, const RowCallback& cb) override;
  TableStats GetTableStats(const std::string& table) const override;

 private:
  struct Table {
    TableDef def;
    Schema stored_schema;  // user columns + SYS_TIME_START + SYS_TIME_END
    RowTable current;
    RowTable history;
    // System-created key index on the current partition (DML location and
    // query access). Survives DropIndexes.
    HashIndex pk_current;
    IndexSet current_indexes;
    IndexSet history_indexes;

    Table(TableDef d, Schema stored)
        : def(std::move(d)),
          stored_schema(stored),
          current(stored),
          history(stored) {}
  };

  Table* Find(const std::string& name);
  const Table* Find(const std::string& name) const;

  // Closes version `rid` at time `t`: appends it to history with the system
  // interval truncated and removes it from the current partition.
  void MoveToHistory(Table* t, RowId rid, Timestamp ts);
  // Appends a fresh current version (system interval [ts, forever)).
  RowId InsertCurrent(Table* t, Row user_row, Timestamp ts);

  IndexKey KeyOf(const Table& t, const Row& stored_row) const;
  std::vector<RowId> CurrentVersionsOf(Table* t, const std::vector<Value>& key);

  // Shared plumbing for the three application-time DML flavours.
  Status ApplySequenced(const std::string& table, const std::vector<Value>& key,
                        int period_index, const Period& period,
                        const std::vector<ColumnAssignment>& set, int mode);

  void ScanPartition(const Table& t, bool is_history, const ScanRequest& req,
                     const TemporalCols& tc, const IndexSet& tuning,
                     const ParallelScanPlan& plan, ExecStats* stats,
                     bool* stopped, const RowCallback& cb);

  // Morsel-range entry point of the fallback table scan: filters slots
  // [begin, end) of `part` into `out`. Thread-safe for concurrent morsels
  // of one partition (pure reads).
  void ScanMorsel(const RowTable& part, const ScanRequest& req,
                  const TemporalCols& tc, int64_t now, uint64_t begin,
                  uint64_t end, const std::atomic<bool>& stop,
                  MorselOutput* out) const;

  std::unordered_map<std::string, Table> tables_;
};

}  // namespace bih

#endif  // TPCBIH_ENGINE_SYSTEM_A_H_
