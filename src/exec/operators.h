#ifndef TPCBIH_EXEC_OPERATORS_H_
#define TPCBIH_EXEC_OPERATORS_H_

#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/expr.h"

namespace bih {

// Materialized relational operators. The benchmark runs single queries over
// moderate row counts, so full materialization between operators keeps the
// implementation honest and easy to verify; the storage engines carry the
// architecture-specific costs the paper measures.
//
// Every looping operator takes an optional QueryContext. When the token
// trips mid-loop the operator returns whatever it has produced so far; the
// caller must consult ctx->status() before using the output, since a
// partial result is only valid as "the query failed".
using Rows = std::vector<Row>;

// Materializes a temporal scan.
Rows ScanAll(TemporalEngine& engine, const ScanRequest& req);

Rows FilterRows(const Rows& in, const ExprPtr& pred,
                QueryContext* ctx = nullptr);

Rows ProjectRows(const Rows& in, const std::vector<ExprPtr>& exprs,
                 QueryContext* ctx = nullptr);

enum class JoinType { kInner, kLeftOuter };

// Hash join on equality of the given key columns. For kLeftOuter,
// unmatched left rows are padded with NULLs for the right side.
Rows HashJoinRows(const Rows& left, const Rows& right,
                  const std::vector<int>& left_keys,
                  const std::vector<int>& right_keys, size_t right_width,
                  JoinType type = JoinType::kInner,
                  const ExprPtr& residual = nullptr,
                  QueryContext* ctx = nullptr);

// Sort-merge equi-join: sorts both inputs by their key columns and merges,
// emitting the cross product of equal-key runs. Same output as the hash
// join (inner, modulo order); the algorithm System B's temporal
// reconstruction relies on.
Rows MergeJoinRows(Rows left, Rows right, const std::vector<int>& left_keys,
                   const std::vector<int>& right_keys,
                   const ExprPtr& residual = nullptr,
                   QueryContext* ctx = nullptr);

// Index-nested-loop join: for every left row, probes `table` through the
// engine with equality on (probe key columns -> table columns) under the
// given temporal coordinates. This is the plan shape commercial optimizers
// pick for selective joins — and abandon on temporal tables (Fig. 7).
Rows IndexNestedLoopJoin(TemporalEngine& engine, const Rows& left,
                         const std::vector<int>& left_keys,
                         const std::string& table,
                         const std::vector<int>& table_keys,
                         const TemporalScanSpec& spec,
                         const ExprPtr& residual = nullptr,
                         QueryContext* ctx = nullptr);

enum class AggKind { kSum, kCount, kAvg, kMin, kMax, kCountDistinct };

struct AggSpec {
  AggKind kind;
  // Aggregated expression; ignored for kCount with expr == nullptr (COUNT(*)).
  ExprPtr expr;
};

// Hash aggregation: output rows are group columns followed by one column
// per aggregate, in spec order. With empty `group_cols`, produces exactly
// one row (global aggregate), even over empty input (SQL semantics).
Rows HashAggregateRows(const Rows& in, const std::vector<int>& group_cols,
                       const std::vector<AggSpec>& aggs,
                       QueryContext* ctx = nullptr);

struct SortKey {
  int column;
  bool ascending = true;
};

Rows SortRows(Rows in, const std::vector<SortKey>& keys);

Rows LimitRows(Rows in, size_t n);

// Removes duplicate rows (SELECT DISTINCT).
Rows DistinctRows(const Rows& in, QueryContext* ctx = nullptr);

// Pretty-prints rows for the examples (column names optional).
std::string FormatRows(const Rows& rows, const std::vector<std::string>& names,
                       size_t max_rows = 20);

}  // namespace bih

#endif  // TPCBIH_EXEC_OPERATORS_H_
