#include "engine/index_set.h"

#include <algorithm>
#include <limits>

namespace bih {

void IndexSet::AddIndex(
    const IndexSpec& spec,
    const std::function<void(const std::function<void(RowId, const Row&)>&)>&
        for_each_row) {
  IndexInfo info;
  info.spec = spec;
  switch (spec.type) {
    case IndexType::kBTree:
      info.btree = std::make_unique<BTreeIndex>();
      break;
    case IndexType::kRTree:
      BIH_CHECK_MSG(spec.columns.size() == 2 || spec.columns.size() == 4,
                    "R-tree index needs one or two (begin,end) column pairs");
      info.rtree = std::make_unique<RTreeIndex>();
      break;
    case IndexType::kHash:
      info.hash = std::make_unique<HashIndex>();
      break;
  }
  indexes_.push_back(std::move(info));
  IndexInfo& added = indexes_.back();
  for_each_row([&](RowId rid, const Row& row) {
    if (added.btree) added.btree->Insert(KeyFor(added, row), rid);
    if (added.rtree) added.rtree->Insert(RectFor(added, row), rid);
    if (added.hash) added.hash->Insert(KeyFor(added, row), rid);
  });
}

IndexKey IndexSet::KeyFor(const IndexInfo& info, const Row& row) {
  IndexKey key;
  key.reserve(info.spec.columns.size());
  for (int c : info.spec.columns) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

Rect IndexSet::RectFor(const IndexInfo& info, const Row& row) {
  auto period_at = [&](size_t i) {
    const Value& b = row[static_cast<size_t>(info.spec.columns[i])];
    const Value& e = row[static_cast<size_t>(info.spec.columns[i + 1])];
    return Period(b.is_null() ? Period::kBeginningOfTime : b.AsInt(),
                  e.is_null() ? Period::kForever : e.AsInt());
  };
  if (info.spec.columns.size() == 2) return Rect::FromPeriod(period_at(0));
  return Rect::FromPeriods(period_at(0), period_at(2));
}

void IndexSet::OnInsert(const Row& row, RowId rid) {
  for (IndexInfo& info : indexes_) {
    if (info.btree) info.btree->Insert(KeyFor(info, row), rid);
    if (info.rtree) info.rtree->Insert(RectFor(info, row), rid);
    if (info.hash) info.hash->Insert(KeyFor(info, row), rid);
  }
}

void IndexSet::OnDelete(const Row& row, RowId rid) {
  for (IndexInfo& info : indexes_) {
    if (info.btree) info.btree->Erase(KeyFor(info, row), rid);
    if (info.rtree) info.rtree->Erase(RectFor(info, row), rid);
    if (info.hash) info.hash->Erase(KeyFor(info, row), rid);
  }
}

void IndexSet::OnUpdate(const Row& old_row, const Row& new_row, RowId rid) {
  OnDelete(old_row, rid);
  OnInsert(new_row, rid);
}

double IndexSet::EstimateFraction(const BTreeIndex& bt, const IndexKey& prefix,
                                  const Value& lo, const Value& hi) {
  if (!prefix.empty()) {
    // An equality prefix on leading columns (typically a key) is assumed
    // selective; commercial optimizers treat unique-ish prefixes the same.
    return 0.0;
  }
  IndexKey first, last;
  if (!bt.FirstKey(&first) || !bt.LastKey(&last)) return 0.0;
  const Value& vmin = first[0];
  const Value& vmax = last[0];
  if (vmin.is_null() || vmax.is_null() || vmin.is_string()) return 1.0;
  double dmin = vmin.AsDouble(), dmax = vmax.AsDouble();
  if (dmax <= dmin) return 1.0;
  double qlo = lo.is_null() ? dmin : std::max(dmin, lo.AsDouble());
  double qhi = hi.is_null() ? dmax : std::min(dmax, hi.AsDouble());
  if (qhi < qlo) return 0.0;
  return (qhi - qlo) / (dmax - dmin);
}

namespace {

// Internal representation of a candidate index plan.
struct CandidatePlan {
  enum class Kind { kHashLookup, kBTree, kRTree };
  Kind kind;
  size_t index_pos = 0;
  IndexKey prefix;       // equality values on leading B-tree columns
  Value lo, hi;          // inclusive bound on the next column (null = open)
  bool has_bound = false;
  Rect rect{{0, 0}, {0, 0}};
  int score = 0;
};

// Maps a temporal selector to an inclusive [lo, hi] bound on the period
// *begin* column: begin <= t for AS OF t; begin < end' for ranges.
bool BoundFromSelector(const TemporalSelector& sel, Value* lo, Value* hi) {
  switch (sel.kind) {
    case TemporalSelector::Kind::kPoint:
      *lo = Value::Null();
      *hi = Value(sel.point);
      return true;
    case TemporalSelector::Kind::kRange:
      *lo = Value::Null();
      *hi = Value(sel.range.end - 1);
      return true;
    default:
      return false;
  }
}

// Query rectangle for one dimension of an R-tree period index.
bool RectDimFromSelector(const TemporalSelector& sel, int64_t* lo,
                         int64_t* hi) {
  switch (sel.kind) {
    case TemporalSelector::Kind::kPoint:
      *lo = sel.point;
      *hi = sel.point;
      return true;
    case TemporalSelector::Kind::kRange:
      *lo = sel.range.begin;
      *hi = sel.range.end - 1;
      return true;
    default:
      return false;
  }
}

}  // namespace

bool IndexSet::TryIndexAccess(const ScanRequest& req, const TemporalCols& tc,
                              size_t partition_rows, std::string* index_name,
                              const std::function<bool(RowId)>& emit) const {
  (void)partition_rows;
  CandidatePlan best;
  bool have_best = false;

  for (size_t pos = 0; pos < indexes_.size(); ++pos) {
    const IndexInfo& info = indexes_[pos];
    const auto& cols = info.spec.columns;

    if (info.hash) {
      // Usable only with equality on every indexed column.
      IndexKey key(cols.size());
      size_t matched = 0;
      for (size_t i = 0; i < cols.size(); ++i) {
        for (const auto& [c, v] : req.equals) {
          if (c == cols[i]) {
            key[i] = v;
            ++matched;
            break;
          }
        }
      }
      if (matched == cols.size() && !cols.empty()) {
        CandidatePlan p;
        p.kind = CandidatePlan::Kind::kHashLookup;
        p.index_pos = pos;
        p.prefix = std::move(key);
        p.score = 1000 + static_cast<int>(cols.size()) * 10;
        if (!have_best || p.score > best.score) {
          best = std::move(p);
          have_best = true;
        }
      }
      continue;
    }

    if (info.btree) {
      CandidatePlan p;
      p.kind = CandidatePlan::Kind::kBTree;
      p.index_pos = pos;
      size_t j = 0;
      for (; j < cols.size(); ++j) {
        const Value* eq = nullptr;
        for (const auto& [c, v] : req.equals) {
          if (c == cols[j]) {
            eq = &v;
            break;
          }
        }
        if (eq == nullptr) break;
        p.prefix.push_back(*eq);
      }
      if (j < cols.size()) {
        // Try a bound on the first non-equality column.
        int bcol = cols[j];
        if (bcol == req.range_col &&
            (!req.range_lo.is_null() || !req.range_hi.is_null())) {
          p.lo = req.range_lo;
          p.hi = req.range_hi;
          p.has_bound = true;
        } else if (bcol == tc.sys_from) {
          p.has_bound = BoundFromSelector(req.temporal.system_time, &p.lo, &p.hi);
        } else if (bcol == tc.app_begin) {
          p.has_bound = BoundFromSelector(req.temporal.app_time, &p.lo, &p.hi);
        }
      }
      if (p.prefix.empty() && !p.has_bound) continue;  // unusable
      double fraction =
          EstimateFraction(*info.btree, p.prefix, p.lo, p.hi);
      if (fraction > kSelectivityThreshold) continue;  // scan is cheaper
      p.score = static_cast<int>(p.prefix.size()) * 100 +
                (p.has_bound ? 50 : 0) +
                static_cast<int>((1.0 - fraction) * 10);
      if (!have_best || p.score > best.score) {
        best = std::move(p);
        have_best = true;
      }
      continue;
    }

    if (info.rtree) {
      // Build the query rectangle from the matching temporal dimensions.
      int64_t xlo = std::numeric_limits<int64_t>::min();
      int64_t xhi = std::numeric_limits<int64_t>::max();
      int64_t ylo = 0, yhi = 0;
      bool x_bound = false, y_bound = false;
      auto dim_selector = [&](int bcol) -> const TemporalSelector* {
        if (bcol == tc.app_begin) return &req.temporal.app_time;
        if (bcol == tc.sys_from) return &req.temporal.system_time;
        return nullptr;
      };
      const TemporalSelector* sx = dim_selector(cols[0]);
      if (sx != nullptr) x_bound = RectDimFromSelector(*sx, &xlo, &xhi);
      if (cols.size() == 4) {
        const TemporalSelector* sy = dim_selector(cols[2]);
        if (sy != nullptr) y_bound = RectDimFromSelector(*sy, &ylo, &yhi);
        if (!y_bound) {
          ylo = std::numeric_limits<int64_t>::min();
          yhi = std::numeric_limits<int64_t>::max();
        }
      }
      if (!x_bound && !y_bound) continue;
      // Selectivity estimate from the root bounding box on the x dimension.
      Rect bounds;
      if (info.rtree->Bounds(&bounds) && x_bound) {
        double span = static_cast<double>(bounds.max[0]) -
                      static_cast<double>(bounds.min[0]);
        if (span > 0) {
          double qspan = std::min<double>(static_cast<double>(xhi),
                                          static_cast<double>(bounds.max[0])) -
                         std::max<double>(static_cast<double>(xlo),
                                          static_cast<double>(bounds.min[0]));
          // Overlap predicates also match every period starting before the
          // window that is still open, so this underestimates; weigh it in.
          if (qspan / span > kSelectivityThreshold) continue;
        }
      }
      CandidatePlan p;
      p.kind = CandidatePlan::Kind::kRTree;
      p.index_pos = pos;
      p.rect = Rect{{xlo, ylo}, {xhi, yhi}};
      p.score = 30;  // GiST scans cost more than B-trees; prefer B-trees
      if (!have_best || p.score > best.score) {
        best = std::move(p);
        have_best = true;
      }
      continue;
    }
  }

  if (!have_best) return false;
  const IndexInfo& chosen = indexes_[best.index_pos];
  *index_name = chosen.spec.name;

  switch (best.kind) {
    case CandidatePlan::Kind::kHashLookup:
      chosen.hash->Lookup(best.prefix, emit);
      return true;
    case CandidatePlan::Kind::kRTree:
      chosen.rtree->Search(best.rect,
                           [&](const Rect&, RowId rid) { return emit(rid); });
      return true;
    case CandidatePlan::Kind::kBTree: {
      IndexKey lo_key = best.prefix;
      if (best.has_bound && !best.lo.is_null()) lo_key.push_back(best.lo);
      const size_t plen = best.prefix.size();
      chosen.btree->ScanRange(
          lo_key, {}, [&](const IndexKey& key, RowId rid) {
            // Stop when the equality prefix no longer matches...
            for (size_t i = 0; i < plen; ++i) {
              if (key[i].Compare(best.prefix[i]) != 0) return false;
            }
            // ...or the bound column exceeds the upper bound.
            if (best.has_bound && !best.hi.is_null() && key.size() > plen &&
                key[plen].Compare(best.hi) > 0) {
              return false;
            }
            return emit(rid);
          });
      return true;
    }
  }
  return false;
}

std::vector<std::string> IndexSet::index_names() const {
  std::vector<std::string> names;
  for (const IndexInfo& info : indexes_) names.push_back(info.spec.name);
  return names;
}

}  // namespace bih
