#ifndef TPCBIH_DURABILITY_GROUP_COMMIT_H_
#define TPCBIH_DURABILITY_GROUP_COMMIT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/wal.h"

namespace bih {

// Leader-elected group commit over one WalWriter in deferred-sync mode.
//
// A transaction appends its records (serialized by the session's exclusive
// engine lock), takes a Ticket at the writer's current append LSN, releases
// the engine lock, and calls WaitDurable. The first uncovered waiter with
// no sync in flight elects itself leader, optionally holds the group open
// for writers that announced themselves but have not yet staged (the
// collect phase), then runs one WalWriter::SyncGroup, which makes every
// record staged so far durable in a single fdatasync. Everyone whose
// ticket the advanced durable LSN covers piggybacks, so N concurrent
// commits pay ~1 device sync instead of N. The leader holds no lock during
// the device wait: transactions keep appending while the sync is in flight
// and form the next group (commit pipelining), and waiters covered by an
// earlier group acknowledge through the condition variable the moment
// their group lands, never queueing behind the next group's sync.
//
// The acknowledgment contract: WaitDurable returns OK only once every
// record with LSN <= ticket is on the device. Because commit timestamps
// and LSNs are assigned in the same order (both under the exclusive engine
// lock), "my LSN is durable" implies "every earlier commit is durable" —
// which is what lets the session publish its snapshot watermark in ticket
// order without ever exposing a commit that a crash could still lose.
//
// A failed group sync poisons the coordinator: the batch's transactions
// (and every later one) get the failure status, mirroring the writer's own
// dead-state discipline. The coordinator co-owns the writer so a waiter
// blocked in SyncGroup can never outlive the FILE* it is syncing, even if
// the session swaps in a fresh writer (revive path) meanwhile.
class GroupCommit {
 public:
  // "Make everything up to this LSN durable." Obtained from
  // WalWriter::appended_lsn() after the transaction's records are appended.
  struct Ticket {
    uint64_t lsn = 0;
  };

  struct Stats {
    uint64_t groups = 0;     // device syncs led
    uint64_t acks = 0;       // tickets acknowledged durable
    uint64_t max_group = 0;  // largest LSN advance one sync paid for
  };

  // Flips the writer into deferred-sync mode: from here on Flush() stages
  // and SyncGroup() (driven by WaitDurable) is the only durability point.
  //
  // `staging` (optional) is a counter of writers that have entered the
  // write path but not yet appended their records — the session increments
  // it before taking the engine lock and decrements after staging. A leader
  // about to sync collects: it waits (bounded) for the counter to drain so
  // the group covers writers already committed to joining it, instead of
  // leaving each to pay its own sync one device-wait later. The counter is
  // a scheduling hint only; correctness never depends on it.
  explicit GroupCommit(std::shared_ptr<WalWriter> wal,
                       const std::atomic<int>* staging = nullptr);

  GroupCommit(const GroupCommit&) = delete;
  GroupCommit& operator=(const GroupCommit&) = delete;

  // Blocks until every record with LSN <= t.lsn is durable, leading a group
  // sync if nobody else is. Returns OK exactly when the ticket's records
  // are on the device; any failure means the transaction was never
  // acknowledged (the session degrades to read-only on that signal). A
  // ticket at LSN 0 (transaction appended nothing) returns OK immediately.
  Status WaitDurable(Ticket t) EXCLUDES(mu_);

  uint64_t durable_lsn() const EXCLUDES(mu_);
  Stats GetStats() const EXCLUDES(mu_);
  WalWriter* wal() const { return wal_.get(); }

 private:
  // Co-owned (engine + coordinator): waiters blocked in SyncGroup keep the
  // writer alive across a session-level writer swap.
  const std::shared_ptr<WalWriter> wal_;
  // Owned by the session (outlives the coordinator); see constructor note.
  const std::atomic<int>* const staging_;

  mutable Mutex mu_;
  // True while a leader is between electing itself and publishing its
  // group's result. The leader drops mu_ for the collect phase and the
  // device wait, so waiters covered by an earlier group acknowledge
  // immediately instead of queueing behind the in-flight sync.
  bool sync_inflight_ GUARDED_BY(mu_) = false;
  CondVar cv_;
  uint64_t durable_lsn_ GUARDED_BY(mu_) = 0;
  bool dead_ GUARDED_BY(mu_) = false;
  Status dead_status_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace bih

#endif  // TPCBIH_DURABILITY_GROUP_COMMIT_H_
