# Empty dependencies file for archive_replay_test.
# This may be replaced when dependencies are built.
