#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace bih {
namespace net {

namespace {

// poll() wrapper retrying EINTR; >0 ready, 0 timeout, <0 hard error.
int PollFd(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Slice length while the read/write loops wait: short enough that a drain
// or cancellation is noticed promptly, long enough to keep idle poll cost
// negligible.
constexpr int kPollSliceMs = 20;

}  // namespace

Server::Server(SessionManager* session, ServerConfig cfg)
    : session_(session),
      cfg_(std::move(cfg)),
      tenants_(cfg_.tenant_quota),
      fault_(cfg_.fault) {}

Server::~Server() { Drain(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + cfg_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status st = Status::IoError("bind to " + cfg_.bind_address + ":" +
                                std::to_string(cfg_.port) + " failed: " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status st =
        Status::IoError(std::string("listen failed: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::BumpStat(uint64_t NetServerStats::* field, uint64_t delta) {
  MutexLock lock(stats_mu_);
  stats_.*field += delta;
}

FaultInjector::Action Server::NextSendAction(size_t frame_len) {
  MutexLock lock(fault_mu_);
  if (fault_ == nullptr || !fault_->is_net_mode()) {
    return FaultInjector::Action();
  }
  return fault_->OnNetSend(++send_index_, frame_len);
}

FaultInjector::Action Server::NextAcceptAction() {
  MutexLock lock(fault_mu_);
  if (fault_ == nullptr || !fault_->is_net_mode()) {
    return FaultInjector::Action();
  }
  return fault_->OnAccept(++accept_index_);
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    const int ready = PollFd(listen_fd_, POLLIN, kPollSliceMs);
    if (ready <= 0) continue;
    struct sockaddr_in peer;
    socklen_t len = sizeof(peer);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<struct sockaddr*>(&peer), &len);
    if (fd < 0) continue;
    // Injected accept failure: the handshake completed but the server
    // behaves as if the kernel aborted it — the client sees an immediate
    // close and must reconnect.
    if (NextAcceptAction().fail) {
      BumpStat(&NetServerStats::accept_faults);
      ::close(fd);
      continue;
    }
    std::shared_ptr<Connection> conn;
    {
      MutexLock lock(conns_mu_);
      if (static_cast<int>(conns_.size()) < cfg_.max_connections) {
        conn = std::make_shared<Connection>();
        conn->id = ++next_conn_id_;
        conn->fd = fd;
        conns_[conn->id] = conn;
      }
    }
    if (conn == nullptr) {
      BumpStat(&NetServerStats::rejected_overload);
      ::close(fd);
      continue;
    }
    BumpStat(&NetServerStats::accepted);
    SetNonBlocking(fd);
    MutexLock lock(threads_mu_);
    threads_.emplace_back([this, conn] { ServeConnection(conn); });
  }
}

void Server::ServeConnection(std::shared_ptr<Connection> conn) {
  std::string buf;
  auto last_activity = std::chrono::steady_clock::now();
  bool alive = true;
  while (alive) {
    // Drain every complete frame already buffered; the protocol is
    // strictly request/reply, so in practice this loop runs at most once
    // per wait (a well-behaved client never pipelines).
    bool progressed = true;
    while (alive && progressed) {
      progressed = false;
      size_t consumed = 0;
      std::string payload;
      Status fs = DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                              buf.size(), &consumed, &payload);
      if (fs.ok()) {
        buf.erase(0, consumed);
        BumpStat(&NetServerStats::frames_in);
        Message msg;
        Status ms = DecodeMessage(
            reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
            &msg);
        if (!ms.ok()) {
          BumpStat(&NetServerStats::protocol_errors);
          alive = false;
          break;
        }
        alive = HandleMessage(*conn, msg);
        last_activity = std::chrono::steady_clock::now();
        progressed = true;
      } else if (fs.code() == Status::Code::kIoError) {
        // Oversized length or CRC mismatch: the stream cannot be resynced.
        BumpStat(&NetServerStats::protocol_errors);
        alive = false;
      }
    }
    if (!alive) break;
    // Between requests is the drain point: in-flight work above was
    // finished and its reply flushed; now is when the connection steps
    // aside instead of taking on more.
    if (draining_.load(std::memory_order_acquire)) break;
    const int ready = PollFd(conn->fd, POLLIN, kPollSliceMs);
    if (ready < 0) break;
    if (ready == 0) {
      if (std::chrono::steady_clock::now() - last_activity >=
          cfg_.idle_timeout) {
        break;  // idle (or slow-loris) connection: reclaim the thread
      }
      continue;
    }
    char tmp[4096];
    const ssize_t n = ::recv(conn->fd, tmp, sizeof(tmp), 0);
    if (n == 0) break;  // orderly EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buf.append(tmp, static_cast<size_t>(n));
    last_activity = std::chrono::steady_clock::now();
  }
  // Deregister before closing: Drain's shutdown sweep only touches fds of
  // registered connections, so a recycled descriptor can never be hit.
  {
    MutexLock lock(conns_mu_);
    conns_.erase(conn->id);
  }
  ::close(conn->fd);
}

bool Server::HandleMessage(Connection& conn, const Message& in) {
  Message reply;
  reply.request_id = in.request_id;
  switch (in.type) {
    case MsgType::kHello: {
      if (in.version != kProtocolVersion) {
        reply.type = MsgType::kError;
        reply.status_code =
            static_cast<uint8_t>(Status::Code::kInvalidArgument);
        reply.text = "protocol version " + std::to_string(in.version) +
                     " not supported";
        (void)SendReply(conn, reply);
        return false;
      }
      if (draining_.load(std::memory_order_acquire)) {
        reply.type = MsgType::kError;
        reply.status_code = static_cast<uint8_t>(Status::Code::kUnavailable);
        reply.text = "server is draining";
        reply.retry_hint = "reconnect to a live replica or retry after restart";
        (void)SendReply(conn, reply);
        return false;
      }
      const std::string tenant = in.text.empty() ? "default" : in.text;
      // The tenant is set once; a second Hello is a protocol violation.
      if (conn.tenant != nullptr) {
        reply.type = MsgType::kError;
        reply.status_code =
            static_cast<uint8_t>(Status::Code::kInvalidArgument);
        reply.text = "session already open";
        return SendReply(conn, reply);
      }
      conn.tenant = tenants_.GetOrCreate(tenant);
      conn.scan_threads = static_cast<int>(in.scan_threads);
      reply.type = MsgType::kHelloOk;
      reply.conn_id = conn.id;
      return SendReply(conn, reply);
    }
    case MsgType::kQuery:
      HandleQuery(conn, in, &reply);
      return SendReply(conn, reply);
    case MsgType::kExplain:
      HandleExplain(conn, in, &reply);
      return SendReply(conn, reply);
    case MsgType::kCancel:
      HandleCancel(in);
      reply.type = MsgType::kPong;
      return SendReply(conn, reply);
    case MsgType::kStats:
      reply.type = MsgType::kStatsReply;
      reply.text = StatsJson();
      return SendReply(conn, reply);
    case MsgType::kPing:
      reply.type = MsgType::kPong;
      return SendReply(conn, reply);
    case MsgType::kGoodbye:
      return false;
    default:
      // A server-side tag arriving at the server is a confused peer.
      BumpStat(&NetServerStats::protocol_errors);
      return false;
  }
}

ExecOptions Server::QueryExecOptions(const Connection& conn) const {
  ExecOptions opts = session_->exec_options();
  if (conn.scan_threads > 0) opts.scan_threads = conn.scan_threads;
  return opts;
}

void Server::HandleQuery(Connection& conn, const Message& in, Message* reply) {
  BumpStat(&NetServerStats::queries);
  reply->type = MsgType::kError;
  if (conn.tenant == nullptr) {
    reply->status_code = static_cast<uint8_t>(Status::Code::kInvalidArgument);
    reply->text = "no session: send Hello first";
    return;
  }
  QueryContext ctx =
      in.deadline_ms > 0
          ? QueryContext::WithTimeout(std::chrono::milliseconds(in.deadline_ms))
          : QueryContext();
  // Publish the context for out-of-band cancellation. Cleared (under the
  // same lock) before ctx leaves scope, so a racing kCancel either finds
  // a live context or none.
  {
    MutexLock lock(conn.mu);
    conn.active = &ctx;
    conn.active_request_id = in.request_id;
  }
  sql::SqlResult result;
  // Tenant quota first (bounded queue, fail-fast shedding), then the
  // session's global admission inside ReadTxn. The wait in either queue
  // honours ctx, so a cancel or deadline never leaves a thread parked.
  Status s = conn.tenant->admission().Admit(&ctx);
  if (s.ok()) {
    if (sql::LooksLikeDml(in.text)) {
      // Writes serialize on the session's writer lock and do not carry a
      // context inside; check the budget at the last gate before queueing.
      s = ctx.CheckNow();
      if (s.ok()) {
        s = session_->Write([&](TemporalEngine& eng) {
          return sql::ExecuteSql(eng, in.text, &result, &ctx);
        });
      }
    } else {
      const ExecOptions opts = QueryExecOptions(conn);
      s = session_->ReadTxn(&ctx, [&](TemporalEngine& eng) {
        return sql::ExecuteSql(eng, in.text, &result, &ctx, opts);
      });
    }
    conn.tenant->admission().Release();
  }
  {
    MutexLock lock(conn.mu);
    conn.active = nullptr;
    conn.active_request_id = 0;
  }
  conn.tenant->Account(s);
  if (s.ok()) {
    reply->type = MsgType::kResult;
    reply->columns = std::move(result.columns);
    reply->rows = std::move(result.rows);
    return;
  }
  reply->type = MsgType::kError;
  reply->status_code = static_cast<uint8_t>(s.code());
  reply->text = s.message();
  reply->retry_hint = s.retry_hint();
  reply->retry_after_ms = AdmissionController::RetryAfterMs(s);
}

void Server::HandleExplain(Connection& conn, const Message& in,
                           Message* reply) {
  BumpStat(&NetServerStats::queries);
  reply->type = MsgType::kError;
  if (conn.tenant == nullptr) {
    reply->status_code = static_cast<uint8_t>(Status::Code::kInvalidArgument);
    reply->text = "no session: send Hello first";
    return;
  }
  QueryContext ctx =
      in.deadline_ms > 0
          ? QueryContext::WithTimeout(std::chrono::milliseconds(in.deadline_ms))
          : QueryContext();
  {
    MutexLock lock(conn.mu);
    conn.active = &ctx;
    conn.active_request_id = in.request_id;
  }
  std::string json;
  Status s = conn.tenant->admission().Admit(&ctx);
  if (s.ok()) {
    const ExecOptions opts = QueryExecOptions(conn);
    s = session_->ReadTxn(&ctx, [&](TemporalEngine& eng) {
      return sql::Explain(eng, in.text, &json, &ctx, opts);
    });
    conn.tenant->admission().Release();
  }
  {
    MutexLock lock(conn.mu);
    conn.active = nullptr;
    conn.active_request_id = 0;
  }
  conn.tenant->Account(s);
  if (s.ok()) {
    reply->type = MsgType::kExplainReply;
    reply->text = std::move(json);
    return;
  }
  reply->type = MsgType::kError;
  reply->status_code = static_cast<uint8_t>(s.code());
  reply->text = s.message();
  reply->retry_hint = s.retry_hint();
  reply->retry_after_ms = AdmissionController::RetryAfterMs(s);
}

void Server::HandleCancel(const Message& in) {
  BumpStat(&NetServerStats::cancels);
  std::shared_ptr<Connection> target;
  {
    MutexLock lock(conns_mu_);
    auto it = conns_.find(in.conn_id);
    if (it != conns_.end()) target = it->second;
  }
  if (target == nullptr) return;
  MutexLock lock(target->mu);
  // Only the request the canceller saw: a stale cancel (the query already
  // finished, maybe a new one started) must not kill the wrong request.
  if (target->active != nullptr &&
      target->active_request_id == in.request_id) {
    target->active->Cancel();
  }
}

bool Server::SendReply(Connection& conn, const Message& reply) {
  std::string payload, frame;
  EncodeMessage(reply, &payload);
  EncodeFrame(payload, &frame);
  if (conn.tenant != nullptr) conn.tenant->AddBytesOut(payload.size());
  return SendFrame(conn, frame);
}

bool Server::SendFrame(Connection& conn, const std::string& frame) {
  FaultInjector::Action a = NextSendAction(frame.size());
  if (a.fail) {
    // Mid-response drop: the reply evaporates and the connection dies. The
    // client's contract ("a reply or an observably dead connection") is
    // kept by the death, not the reply.
    BumpStat(&NetServerStats::dropped_responses);
    return false;
  }
  size_t send_len = frame.size();
  if (a.torn) {
    BumpStat(&NetServerStats::torn_frames);
    send_len = std::min(a.keep_bytes, send_len);
  }
  if (a.slow) BumpStat(&NetServerStats::slow_writes);
  const auto deadline =
      std::chrono::steady_clock::now() + cfg_.write_timeout;
  size_t off = 0;
  while (off < send_len) {
    size_t chunk = send_len - off;
    if (a.slow) {
      // Slow-loris send: dribble the frame in eighths with pauses. Bounded
      // by construction (<= 8 sleeps), so injected slowness stretches a
      // response without ever wedging the thread.
      chunk = std::min(chunk, std::max<size_t>(1, frame.size() / 8));
    }
    const ssize_t n = ::send(conn.fd, frame.data() + off, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        (void)PollFd(conn.fd, POLLOUT, kPollSliceMs);
        continue;
      }
      return false;  // peer reset / shutdown: connection is done
    }
    off += static_cast<size_t>(n);
    if (a.slow && off < send_len) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (a.torn) return false;  // half a frame went out; drop the connection
  BumpStat(&NetServerStats::frames_out);
  return true;
}

void Server::Drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(drain_mu_);
    if (drain_done_) return;
    if (drain_running_) {
      // Another thread is draining; wait for it so every caller returns
      // only once the server is truly quiesced.
      while (!drain_done_) {
        drain_cv_.WaitFor(drain_mu_, std::chrono::milliseconds(10));
      }
      return;
    }
    drain_running_ = true;
  }
  // Phase 0: stop taking on work. The accept loop notices within one poll
  // slice; serving threads stop before reading their next request.
  draining_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Phase 1: give in-flight requests until the deadline to finish and
  // flush their replies.
  const auto deadline =
      std::chrono::steady_clock::now() + cfg_.drain_deadline;
  for (;;) {
    {
      MutexLock lock(conns_mu_);
      if (conns_.empty()) break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Phase 2: whatever still runs is cancelled and its socket shut down.
  // The shutdown wakes any blocked poll/recv/send; the cancel unhooks
  // queries waiting in admission queues or scanning rows.
  {
    MutexLock lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      {
        MutexLock cl(conn->mu);
        if (conn->active != nullptr) conn->active->Cancel();
      }
      (void)::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> threads;
  {
    MutexLock lock(threads_mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    MutexLock lock(drain_mu_);
    drain_done_ = true;
  }
  drain_cv_.NotifyAll();
}

NetServerStats Server::GetStats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

std::string Server::StatsJson() const {
  const NetServerStats s = GetStats();
  std::string out = "{\"server\":{";
  out += "\"accepted\":" + std::to_string(s.accepted);
  out += ",\"rejected_overload\":" + std::to_string(s.rejected_overload);
  out += ",\"accept_faults\":" + std::to_string(s.accept_faults);
  out += ",\"frames_in\":" + std::to_string(s.frames_in);
  out += ",\"frames_out\":" + std::to_string(s.frames_out);
  out += ",\"torn_frames\":" + std::to_string(s.torn_frames);
  out += ",\"dropped_responses\":" + std::to_string(s.dropped_responses);
  out += ",\"slow_writes\":" + std::to_string(s.slow_writes);
  out += ",\"protocol_errors\":" + std::to_string(s.protocol_errors);
  out += ",\"queries\":" + std::to_string(s.queries);
  out += ",\"cancels\":" + std::to_string(s.cancels);
  out += ",\"read_only\":";
  out += session_->read_only() ? "true" : "false";
  out += "},\"tenants\":" + tenants_.StatsJson();
  out += "}";
  return out;
}

}  // namespace net
}  // namespace bih
