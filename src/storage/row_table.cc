#include "storage/row_table.h"

namespace bih {

RowId RowTable::Append(Row row) {
  BIH_CHECK_MSG(static_cast<int>(row.size()) == schema_.num_columns(),
                "row arity mismatch for " + schema_.ToString());
  rows_.push_back(std::move(row));
  deleted_.push_back(0);
  ++live_count_;
  return rows_.size() - 1;
}

void RowTable::Delete(RowId id) {
  BIH_CHECK(id < rows_.size());
  if (!deleted_[id]) {
    deleted_[id] = 1;
    --live_count_;
  }
}

void RowTable::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (deleted_[id]) continue;
    if (!fn(id, rows_[id])) return;
  }
}

void RowTable::Clear() {
  rows_.clear();
  deleted_.clear();
  live_count_ = 0;
}

}  // namespace bih
