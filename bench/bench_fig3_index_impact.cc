// Figure 3: impact of the Time Index tuning setting on basic time travel.
// System C ignores indexes (scan-based); System D is additionally measured
// with a GiST (R-tree) index.
//
// Expected shape (Section 5.3.2): limited impact overall — the broad
// temporal predicates fail the optimizer's selectivity bar, so most plans
// stay table scans; the GiST index never beats the B-tree.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void RegisterFor(const std::string& label, TemporalEngine* e,
                 const WorkloadContext& ctx) {
  auto add = [&](const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(("Fig3/" + name + "/" + label).c_str(),
                                 [fn, e](benchmark::State& state) {
                                   for (auto _ : state) {
                                     benchmark::DoNotOptimize(fn(*e));
                                   }
                                 })
        ->Unit(benchmark::kMillisecond);
  };
  const int64_t app_mid = ctx.app_mid;
  const int64_t sys_mid = ctx.sys_mid.micros();
  add("T1_vary_app_curr_sys", [app_mid](TemporalEngine& eng) {
    return T1(eng, TemporalScanSpec::AppAsOf(app_mid));
  });
  add("T1_vary_sys_curr_app", [sys_mid, app_mid](TemporalEngine& eng) {
    return T1(eng, TemporalScanSpec::BothAsOf(sys_mid, app_mid));
  });
  add("T2_vary_app_curr_sys", [app_mid](TemporalEngine& eng) {
    return T2(eng, TemporalScanSpec::AppAsOf(app_mid));
  });
  add("T2_vary_sys_curr_app", [sys_mid, app_mid](TemporalEngine& eng) {
    return T2(eng, TemporalScanSpec::BothAsOf(sys_mid, app_mid));
  });
  add("T5_all_versions", [](TemporalEngine& eng) { return QueryAll(eng); });
}

std::vector<std::unique_ptr<TemporalEngine>>* g_engines =
    new std::vector<std::unique_ptr<TemporalEngine>>();

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  // No-index baselines.
  for (const std::string letter : {"C", "D"}) {
    g_engines->push_back(w.Fresh(letter));
    RegisterFor("System" + letter + "_no_index", g_engines->back().get(), ctx);
  }
  // B-tree time indexes.
  for (const std::string& letter : AllEngineLetters()) {
    g_engines->push_back(w.Fresh(letter));
    Status st = ApplyIndexSetting(*g_engines->back(), IndexSetting::kTime,
                                  IndexType::kBTree);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    RegisterFor("System" + letter + "_btree", g_engines->back().get(), ctx);
  }
  // GiST on System D.
  g_engines->push_back(w.Fresh("D"));
  Status st = ApplyIndexSetting(*g_engines->back(), IndexSetting::kTime,
                                IndexType::kRTree);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  RegisterFor("SystemD_gist", g_engines->back().get(), ctx);
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
