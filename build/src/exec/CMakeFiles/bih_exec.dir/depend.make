# Empty dependencies file for bih_exec.
# This may be replaced when dependencies are built.
