#ifndef TPCBIH_EXEC_PLAN_H_
#define TPCBIH_EXEC_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/exec_options.h"
#include "exec/expr.h"
#include "exec/rows.h"

namespace bih {

// Composable query plans over the temporal engines. A query is a tree of
// PlanNodes executed bottom-up through one entry point, Execute(); the SQL
// layer, the benchmark workloads and the examples all build trees instead
// of calling operator kernels directly (the kernels are internal to
// src/exec — bih_lint enforces the boundary).
//
// Operators materialize fully between nodes. Sort-merge join and hash
// aggregation fan out over the ScanScheduler morsel pool when the resolved
// ExecOptions ask for more than one thread; their output (rows and
// per-node counters alike) is byte-identical to serial execution at any
// thread count — see the morsel-order merge notes in plan.cc.
//
// Every looping operator consults the QueryContext passed to Execute. When
// the token trips mid-node, Execute stops and returns the context's status;
// the partial output is only valid as "the query failed".

enum class JoinType { kInner, kLeftOuter };

enum class AggKind { kSum, kCount, kAvg, kMin, kMax, kCountDistinct };

struct AggSpec {
  AggKind kind;
  // Aggregated expression; ignored for kCount with expr == nullptr
  // (COUNT(*)).
  ExprPtr expr;
};

struct SortSpec {
  // Sort key evaluated against the input row (a plain Col(i) for column
  // sorts; SQL ORDER BY binds arbitrary expressions).
  ExprPtr key;
  bool ascending = true;
};

// Per-node execution counters, reset and refilled by every Execute run.
// For kScan and kIndexJoin nodes, `scan` carries the engine-side counters
// (rows examined, partitions touched, index choice) of the node's last
// engine access; these match the serial scan exactly at any thread count.
struct PlanStats {
  uint64_t rows_output = 0;
  ExecStats scan;
};

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

struct PlanNode {
  enum class Kind {
    kScan,       // leaf: one temporal table access
    kValues,     // leaf: pre-materialized rows
    kFilter,
    kProject,
    kHashJoin,   // children: {left, right}
    kMergeJoin,  // children: {left, right}; parallel run-emission
    kIndexJoin,  // child: {left}; per-row engine probes into `index_table`
    kCrossJoin,  // children: {left, right}; optional residual predicate
    kAggregate,  // parallel partial/final aggregation
    kSort,
    kLimit,
    kDistinct,
  };

  Kind kind;
  std::vector<PlanPtr> children;

  // kScan: ctx and parallelism knobs are injected at execution time for
  // fields the request leaves unset.
  ScanRequest scan;
  // kValues
  Rows values;
  // kFilter predicate; also the join residual for the join kinds.
  ExprPtr predicate;
  // kProject
  std::vector<ExprPtr> exprs;
  // Equi-join key columns (kHashJoin/kMergeJoin/kIndexJoin). right_keys
  // index the right child's rows for the in-memory joins and the probed
  // table's scan schema for kIndexJoin.
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  // kHashJoin: width of the right side, for kLeftOuter NULL padding.
  size_t right_width = 0;
  JoinType join_type = JoinType::kInner;
  // kIndexJoin probe target.
  std::string index_table;
  TemporalScanSpec index_spec;
  // kAggregate: output rows are group columns followed by one column per
  // aggregate, in spec order. With empty group_cols, exactly one row
  // (global aggregate), even over empty input (SQL semantics).
  std::vector<int> group_cols;
  std::vector<AggSpec> aggs;
  // kSort: stable sort over the evaluated keys.
  std::vector<SortSpec> sort_keys;
  // kLimit
  size_t limit = 0;

  // Execution counters of the latest run (reset by Execute).
  mutable PlanStats stats;

  const char* KindName() const;
};

// ---- Builders -----------------------------------------------------------

PlanPtr ScanPlan(ScanRequest req);
PlanPtr ValuesPlan(Rows rows);
PlanPtr FilterPlan(PlanPtr input, ExprPtr predicate);
PlanPtr ProjectPlan(PlanPtr input, std::vector<ExprPtr> exprs);
// Hash join on equality of the given key columns; NULL keys never match.
// For kLeftOuter, unmatched left rows are padded with right_width NULLs.
PlanPtr HashJoinPlan(PlanPtr left, PlanPtr right, std::vector<int> left_keys,
                     std::vector<int> right_keys, size_t right_width,
                     JoinType type = JoinType::kInner,
                     ExprPtr residual = nullptr);
// Sort-merge equi-join: sorts both inputs by (key, input position) and
// merges, emitting the cross product of equal-key runs. Same rows as the
// inner hash join, in key order.
PlanPtr MergeJoinPlan(PlanPtr left, PlanPtr right, std::vector<int> left_keys,
                      std::vector<int> right_keys, ExprPtr residual = nullptr);
// Index-nested-loop join: for every left row, probes `table` through the
// engine with equality on (left key columns -> table columns) under the
// given temporal coordinates. The plan shape commercial optimizers pick for
// selective joins — and abandon on temporal tables (Fig. 7).
PlanPtr IndexJoinPlan(PlanPtr left, std::vector<int> left_keys,
                      std::string table, std::vector<int> table_keys,
                      TemporalScanSpec spec, ExprPtr residual = nullptr);
// Nested-loop cross product with an optional residual predicate (the SQL
// fallback when a join has no equality conjunct).
PlanPtr CrossJoinPlan(PlanPtr left, PlanPtr right, ExprPtr residual = nullptr);
PlanPtr AggregatePlan(PlanPtr input, std::vector<int> group_cols,
                      std::vector<AggSpec> aggs);
PlanPtr SortPlan(PlanPtr input, std::vector<SortSpec> keys);
PlanPtr LimitPlan(PlanPtr input, size_t n);
// Removes duplicate rows, keeping first occurrences (SELECT DISTINCT).
PlanPtr DistinctPlan(PlanPtr input);

// ---- Execution ----------------------------------------------------------

// Executes the tree bottom-up against `engine`, materializing the root's
// output into *out and per-node counters into each node's `stats`. `opts`
// supplies parallelism defaults for every scan and parallel operator in the
// tree (fields a Scan node pinned itself win; whatever is still unset
// resolves through the process defaults). On interruption, returns the
// context's status and *out holds the partial output produced so far.
Status Execute(const PlanNode& plan, TemporalEngine& engine,
               const ExecOptions& opts, QueryContext* ctx, Rows* out);

// Convenience wrapper for callers that treat plan failure the way the old
// free-function operators did: returns whatever rows were produced; an
// interrupt (cancel/deadline) surfaces through ctx->status() and yields the
// partial result, while any other failure aborts (BIH_CHECK).
Rows RunPlan(const PlanNode& plan, TemporalEngine& engine,
             QueryContext* ctx = nullptr, const ExecOptions& opts = {});

// Stable JSON rendering of the tree with per-node stats from the latest
// Execute run — the payload of EXPLAIN. Key order is fixed; strings go
// through common/json escaping.
std::string PlanToJson(const PlanNode& plan);

}  // namespace bih

#endif  // TPCBIH_EXEC_PLAN_H_
