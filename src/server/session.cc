#include "server/session.h"

#include <algorithm>

namespace bih {

SessionManager::SessionManager(TemporalEngine* engine, SessionConfig cfg)
    : engine_(engine), admission_(cfg.admission) {
  Init(cfg);
}

SessionManager::SessionManager(std::unique_ptr<TemporalEngine> engine,
                               SessionConfig cfg)
    : owned_engine_(std::move(engine)),
      engine_(owned_engine_.get()),
      admission_(cfg.admission) {
  Init(cfg);
}

void SessionManager::Init(SessionConfig cfg) {
  const int shards = std::max(1, cfg.write_shards);
  shard_mu_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shard_mu_.push_back(std::make_unique<Mutex>());
  }
  {
    // No concurrent access can exist yet, but taking the writer lock keeps
    // the engine-touching setup on the same annotated path as Write().
    WriterLock lock(rw_mu_);
    // Anything loaded before the session layer took over (bulk load, WAL
    // recovery) becomes the base snapshot.
    engine_->PrepareForReads();
    PublishWatermark();
    if (cfg.group_commit && engine_->wal() != nullptr) {
      group_ = std::make_shared<GroupCommit>(engine_->SharedWal(), &staging_);
    }
  }
  scan_threads_ = cfg.scan_threads > 0 ? cfg.scan_threads : DefaultScanThreads();
  if (scan_threads_ > 1) {
    // The coordinator of each read participates in its own scan, so the
    // pool only needs threads - 1 helpers.
    scheduler_ = std::make_unique<ScanScheduler>(scan_threads_ - 1);
  }
  watchdog_period_ = cfg.watchdog_period;
  if (watchdog_period_.count() > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

SessionManager::~SessionManager() {
  if (watchdog_.joinable()) {
    {
      MutexLock lock(watchdog_mu_);
      shutdown_ = true;
    }
    watchdog_cv_.NotifyAll();
    watchdog_.join();
  }
}

void SessionManager::PublishWatermark() {
  watermark_.store(engine_->Now().micros(), std::memory_order_release);
}

void SessionManager::AdvanceWatermark(int64_t commit_ts) {
  int64_t cur = watermark_.load(std::memory_order_relaxed);
  while (commit_ts > cur &&
         !watermark_.compare_exchange_weak(cur, commit_ts,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
    // cur reloaded by the failed CAS; loop ends once someone at or past
    // commit_ts has published.
  }
}

void SessionManager::WatchdogLoop() {
  MutexLock lock(watchdog_mu_);
  while (!shutdown_) {
    watchdog_cv_.WaitFor(watchdog_mu_, watchdog_period_);
    if (shutdown_) return;
    const auto now = QueryContext::Clock::now();
    uint64_t killed = 0;
    {
      MutexLock reg(inflight_mu_);
      for (QueryContext* ctx : inflight_) {
        if (ctx->has_deadline() && now >= ctx->deadline() &&
            !ctx->cancel_requested()) {
          ctx->Cancel();  // attributed to the deadline by the context
          ++killed;
        }
      }
    }
    if (killed > 0) {
      MutexLock st(stats_mu_);
      stats_.watchdog_kills += killed;
    }
  }
}

TemporalSelector SessionManager::ClampToWatermark(const TemporalSelector& sel,
                                                  int64_t watermark) {
  // The engines keep every version queryable (closing a version moves it,
  // it is never destroyed), so restricting the system-time selector to
  // [beginning, watermark] reproduces the state at that commit exactly:
  // versions committed later begin after the watermark and cannot match.
  switch (sel.kind) {
    case TemporalSelector::Kind::kImplicitCurrent:
      // "Current" for this session means current as of the snapshot.
      return TemporalSelector::AsOf(watermark);
    case TemporalSelector::Kind::kPoint:
      return TemporalSelector::AsOf(std::min(sel.point, watermark));
    case TemporalSelector::Kind::kRange:
      // Half-open range: end watermark+1 keeps versions that begin exactly
      // at the watermark visible.
      return TemporalSelector::Between(
          std::min(sel.range.begin, watermark),
          std::min(sel.range.end, watermark + 1));
    case TemporalSelector::Kind::kAll:
      return TemporalSelector::Between(Period::kBeginningOfTime,
                                       watermark + 1);
  }
  return sel;
}

Status SessionManager::Read(ScanRequest req, QueryContext* ctx,
                            std::vector<Row>* out) {
  return ReadAt(OpenSnapshot(), std::move(req), ctx, out);
}

Status SessionManager::ReadAt(Snapshot snap, ScanRequest req,
                              QueryContext* ctx, std::vector<Row>* out) {
  out->clear();
  Status s = DoRead(snap, req, ctx, out);
  AccountRead(s);
  if (!s.ok()) out->clear();
  return s;
}

Status SessionManager::ReadTxn(
    QueryContext* ctx, const std::function<Status(TemporalEngine&)>& fn) {
  Status s = DoReadTxn(ctx, fn);
  AccountRead(s);
  return s;
}

void SessionManager::AccountRead(const Status& s) {
  MutexLock lock(stats_mu_);
  switch (s.code()) {
    case Status::Code::kOk:
      ++stats_.reads_ok;
      break;
    case Status::Code::kDeadlineExceeded:
      ++stats_.reads_deadline;
      break;
    case Status::Code::kCancelled:
      ++stats_.reads_cancelled;
      break;
    case Status::Code::kResourceExhausted:
      ++stats_.reads_shed;
      break;
    default:
      break;
  }
}

bool SessionManager::PollLockShared(QueryContext* ctx, Status* why) {
  while (!rw_mu_.try_lock_shared()) {
    if (ctx != nullptr) {
      *why = ctx->CheckNow();
      if (!why->ok()) return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

Status SessionManager::DoRead(Snapshot snap, ScanRequest& req,
                              QueryContext* ctx, std::vector<Row>* out) {
  if (ctx != nullptr) {
    Status s = ctx->CheckNow();
    if (!s.ok()) return s;
  }
  Status admitted = admission_.Admit(ctx);
  if (!admitted.ok()) return admitted;

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.insert(ctx);
  }

  Status result = Status::OK();
  if (PollLockShared(ctx, &result)) {
    req.temporal.system_time =
        ClampToWatermark(req.temporal.system_time, snap.watermark);
    req.ctx = ctx;
    // Intra-query parallelism: reads that do not choose a width inherit
    // the manager's; workers run strictly within this shared-lock scope
    // (the scan drains its morsels before returning), so parallel reads
    // see the same pinned snapshot as serial ones.
    req.exec = MergeExecOptions(req.exec, exec_options());
    ExecStats stats;  // keep concurrent scans off the shared stats slot
    req.stats = &stats;
    engine_->Scan(req, [&](const Row& row) {
      out->push_back(row);
      // A version still open at the snapshot may have been closed by a
      // later write before this scan ran; its stored SYS_TIME_END is then
      // past the watermark. Rewriting it to forever makes reads against
      // the same snapshot byte-identical no matter how writes interleave.
      Row& r = out->back();
      if (!r.empty() && r.back().is_int() &&
          r.back().AsInt() > snap.watermark) {
        r.back() = Value(Period::kForever);
      }
      return true;
    });
    if (ctx != nullptr) result = ctx->status();
    rw_mu_.unlock_shared();
  }

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.erase(ctx);
  }
  admission_.Release();
  return result;
}

Status SessionManager::DoReadTxn(
    QueryContext* ctx, const std::function<Status(TemporalEngine&)>& fn) {
  if (ctx != nullptr) {
    Status s = ctx->CheckNow();
    if (!s.ok()) return s;
  }
  Status admitted = admission_.Admit(ctx);
  if (!admitted.ok()) return admitted;

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.insert(ctx);
  }

  Status result = Status::OK();
  if (PollLockShared(ctx, &result)) {
    result = fn(*engine_);
    // A deadline or cancellation that fired mid-callback wins over whatever
    // the callback returned: an interrupted composite read must not be
    // reported as a clean success (or as a confusing secondary error).
    if (ctx != nullptr) {
      Status interrupted = ctx->status();
      if (!interrupted.ok()) result = interrupted;
    }
    rw_mu_.unlock_shared();
  }

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.erase(ctx);
  }
  admission_.Release();
  return result;
}

void SessionManager::DegradeIfWalDead() {
  WalWriter* wal = engine_->wal();
  if (wal != nullptr && wal->dead()) {
    read_only_.store(true, std::memory_order_release);
  }
}

void SessionManager::DegradeNow() {
  read_only_.store(true, std::memory_order_release);
}

Status SessionManager::ReadOnlyStatus() const {
  return Status::Unavailable(
      "session is read-only: the write-ahead log failed and the in-memory "
      "state may be ahead of the durable state",
      "snapshot reads continue at the last durable commit; restart the "
      "server and recover from the log to restore writes");
}

size_t SessionManager::ShardFor(const std::string& table,
                                const std::vector<Value>& key,
                                const Row* row) const {
  // Keyed DML serializes per (table, leading key value); the leading value
  // is the primary-key prefix in every schema this repo loads, so writes
  // to distinct keys land on distinct shards with high probability. A
  // collision only costs concurrency, never correctness: the exclusive
  // engine lock inside DoWrite is the real serialization point.
  size_t h = std::hash<std::string>{}(table);
  const Value* lead = nullptr;
  if (!key.empty()) {
    lead = &key.front();
  } else if (row != nullptr && !row->empty()) {
    lead = &row->front();
  }
  if (lead != nullptr) {
    h ^= lead->Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h % shard_mu_.size();
}

void SessionManager::LockShards(int shard) {
  if (shard != kAllShards) {
    shard_mu_[static_cast<size_t>(shard)]->lock();
    return;
  }
  // Barrier: ascending index order, the same order every keyed writer uses
  // implicitly (it holds exactly one), so the sweep cannot deadlock
  // against them or against a concurrent barrier.
  for (auto& mu : shard_mu_) mu->lock();
}

void SessionManager::UnlockShards(int shard) {
  if (shard != kAllShards) {
    shard_mu_[static_cast<size_t>(shard)]->unlock();
    return;
  }
  for (auto it = shard_mu_.rbegin(); it != shard_mu_.rend(); ++it) {
    (*it)->unlock();
  }
}

Status SessionManager::Write(
    const std::function<Status(TemporalEngine&)>& fn) {
  return DoWrite(kAllShards, fn);
}

Status SessionManager::WriteKeyed(
    const std::string& table, const std::vector<Value>& key,
    const std::function<Status(TemporalEngine&)>& fn) {
  return DoWrite(static_cast<int>(ShardFor(table, key, nullptr)), fn);
}

Status SessionManager::DoWrite(
    int shard, const std::function<Status(TemporalEngine&)>& fn) {
  // Fast path: a degraded session rejects writes without ever contending
  // for the writer lock, so the rejection cannot stall running reads.
  if (read_only_.load(std::memory_order_acquire)) {
    MutexLock st(stats_mu_);
    ++stats_.writes_unavailable;
    return ReadOnlyStatus();
  }
  LockShards(shard);
  // Re-check after the (possibly long) shard wait: a writer ahead of us on
  // this shard may have degraded the session meanwhile.
  if (read_only_.load(std::memory_order_acquire)) {
    UnlockShards(shard);
    MutexLock st(stats_mu_);
    ++stats_.writes_unavailable;
    return ReadOnlyStatus();
  }

  // Group mode hands the durability wait a snapshot of the coordinator
  // (shared_ptr: a revive may swap in a fresh one while we wait) plus the
  // write's ticket and commit timestamp, all captured under the exclusive
  // lock where LSN order and commit order are the same order.
  std::shared_ptr<GroupCommit> group;
  GroupCommit::Ticket ticket;
  int64_t commit_ts = 0;

  // Announce before queueing on the writer lock: a group-commit leader
  // about to sync sees the counter and holds the group open until we have
  // staged, folding our commit into its fdatasync instead of leaving us to
  // lead our own one device-wait later. Decremented under the lock once
  // our records (and ticket) are in.
  staging_.fetch_add(1, std::memory_order_release);

  Status s;
  {
    WriterLock lock(rw_mu_);
    s = fn(*engine_);
    // Publish deferred engine state (System B's undo log) while we still
    // hold the writer side, so subsequent scans are pure reads.
    engine_->PrepareForReads();
    if (group_ != nullptr) {
      group = group_;
      ticket.lsn = group->wal()->appended_lsn();
      commit_ts = engine_->Now().micros();
      // An append failure (as opposed to a sync failure) kills the WAL
      // while we still hold the lock; degrade here as before.
      DegradeIfWalDead();
    } else {
      // Single-lane path: the engine synced inside fn, so completion and
      // durability coincide and the watermark can advance immediately. It
      // moves even on failure: a failed statement may sit inside a batch
      // whose earlier statements committed.
      PublishWatermark();
      // A write that killed the WAL leaves durable state behind in-memory
      // state; from here on the session serves the pinned snapshots but
      // accepts no further writes.
      DegradeIfWalDead();
    }
    staging_.fetch_sub(1, std::memory_order_release);
    {
      MutexLock st(stats_mu_);
      ++stats_.writes;
    }
  }

  if (group != nullptr) {
    // The exclusive lock is gone: readers and other shards proceed while
    // we wait for the device. The coordinator batches every waiter that
    // piles up here into one fdatasync.
    Status durable = group->WaitDurable(ticket);
    if (durable.ok()) {
      // Acknowledged. Only now may readers pin this commit: timestamps
      // reach the watermark in durability order, which equals commit
      // order, so a pinned snapshot never spans a half-durable suffix.
      AdvanceWatermark(commit_ts);
    } else {
      // Never acknowledged — the commit may not survive a crash, so its
      // timestamp must never reach the watermark. Degrade without the
      // lock (read_only_ only ever flips false -> true outside a revive).
      DegradeNow();
      if (s.ok()) s = durable;
    }
  }
  UnlockShards(shard);
  return s;
}

Status SessionManager::RunCheckpoint(Checkpointer* cp, CheckpointInfo* info) {
  // Barrier on every admission shard: keyed writers hold their shard
  // across the durability wait, so once the sweep completes no write is
  // between "applied" and "acknowledged" — the checkpoint's rotation then
  // never races a group sync it didn't account for.
  LockShards(kAllShards);
  Status result = RunCheckpointLocked(cp, info);
  UnlockShards(kAllShards);
  return result;
}

Status SessionManager::RunCheckpointLocked(Checkpointer* cp,
                                           CheckpointInfo* info) {
  WriterLock lock(rw_mu_);
  if (read_only_.load(std::memory_order_acquire)) {
    // Revive path. The dead writer stopped at some segment k with an
    // unknown durable suffix; nothing can ever be appended there again.
    // Open a fresh writer at k+1 and checkpoint through it: the
    // checkpoint's own rotation then covers segments 1..k+1, so the
    // snapshot — taken from the in-memory state, which is a superset of
    // anything the dead segment held — supersedes the lost suffix, and
    // the covered segments (the dead one included) are deleted.
    WalWriter* dead = engine_->wal();
    if (dead == nullptr) return ReadOnlyStatus();
    std::unique_ptr<WalWriter> fresh;
    // The segment-create sync runs under the exclusive rw_mu_ on purpose:
    // this is the revive path of a degraded (read-only) engine inside a
    // checkpoint that already holds every admission shard, so no write can
    // be stalled by it — there is nothing to release the lock for.
    Status st =
        // bih-lint: allow(blocking-under-lock)
        WalWriter::OpenAt(dead->path(), dead->segment_index() + 1,
                          /*fault=*/nullptr, &fresh);
    if (!st.ok()) return st;  // still read-only; nothing changed
    BIH_RETURN_IF_ERROR(engine_->AttachWal(std::move(fresh)));
    Status cs = cp->Write(engine_, info);
    WalWriter* now = engine_->wal();
    if (!cs.ok() || now == nullptr || now->dead()) {
      // The revive itself failed (e.g. the checkpoint could not publish,
      // or the fresh writer died during the rotation). Stay read-only:
      // the durable state is still the pre-failure prefix, and claiming
      // writability against a dead log would reopen the hole this path
      // exists to close.
      return cs.ok() ? ReadOnlyStatus() : cs;
    }
    if (group_ != nullptr) {
      // Re-arm group commit over the fresh writer. The old coordinator is
      // poisoned (its writer is the dead one); any straggler still waiting
      // on it holds its own shared_ptr and gets the dead status.
      group_ = std::make_shared<GroupCommit>(engine_->SharedWal(), &staging_);
    }
    read_only_.store(false, std::memory_order_release);
    return Status::OK();
  }
  Status s = cp->Write(engine_, info);
  // The rotation may have killed the writer (injected or real): degrade
  // rather than let the next commit fail confusingly.
  DegradeIfWalDead();
  return s;
}

Status SessionManager::Insert(const std::string& table, Row row) {
  const int shard = static_cast<int>(ShardFor(table, {}, &row));
  return DoWrite(shard, [&](TemporalEngine& eng) {
    return eng.Insert(table, std::move(row));
  });
}

Status SessionManager::UpdateCurrent(const std::string& table,
                                     const std::vector<Value>& key,
                                     const std::vector<ColumnAssignment>& set) {
  const int shard = static_cast<int>(ShardFor(table, key, nullptr));
  return DoWrite(shard, [&](TemporalEngine& eng) {
    return eng.UpdateCurrent(table, key, set);
  });
}

Status SessionManager::DeleteCurrent(const std::string& table,
                                     const std::vector<Value>& key) {
  const int shard = static_cast<int>(ShardFor(table, key, nullptr));
  return DoWrite(
      shard, [&](TemporalEngine& eng) { return eng.DeleteCurrent(table, key); });
}

SessionManager::ServerStats SessionManager::GetStats() const {
  ServerStats s;
  {
    MutexLock lock(stats_mu_);
    s = stats_;
  }
  s.admission = admission_.GetStats();
  return s;
}

GroupCommit::Stats SessionManager::GetGroupCommitStats() {
  std::shared_ptr<GroupCommit> group;
  {
    ReaderLock lock(rw_mu_);
    group = group_;
  }
  return group != nullptr ? group->GetStats() : GroupCommit::Stats{};
}

}  // namespace bih
