#ifndef TPCBIH_EXEC_ROWS_H_
#define TPCBIH_EXEC_ROWS_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace bih {

// A fully materialized result set. The benchmark runs single queries over
// moderate row counts, so full materialization between plan nodes keeps the
// executor honest and easy to verify; the storage engines carry the
// architecture-specific costs the paper measures.
using Rows = std::vector<Row>;

// Pretty-prints rows for the examples and the driver (column names
// optional).
std::string FormatRows(const Rows& rows, const std::vector<std::string>& names,
                       size_t max_rows = 20);

}  // namespace bih

#endif  // TPCBIH_EXEC_ROWS_H_
