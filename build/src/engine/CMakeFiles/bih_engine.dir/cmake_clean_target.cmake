file(REMOVE_RECURSE
  "libbih_engine.a"
)
