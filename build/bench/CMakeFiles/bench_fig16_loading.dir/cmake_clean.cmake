file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_loading.dir/bench_fig16_loading.cc.o"
  "CMakeFiles/bench_fig16_loading.dir/bench_fig16_loading.cc.o.d"
  "bench_fig16_loading"
  "bench_fig16_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
