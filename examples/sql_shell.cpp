// Interactive temporal SQL shell over a loaded TPC-BiH workload.
//
//   ./sql_shell [engine-letter]
//
// Loads the benchmark data into one engine and reads SELECT statements from
// stdin. Try:
//   SELECT COUNT(*) FROM ORDERS;
//   SELECT COUNT(*) FROM ORDERS FOR SYSTEM_TIME ALL;
//   SELECT O_ORDERSTATUS, COUNT(*), AVG(O_TOTALPRICE) FROM ORDERS
//     GROUP BY O_ORDERSTATUS ORDER BY O_ORDERSTATUS;
//   SELECT C_NAME, C_ACCTBAL FROM CUSTOMER FOR BUSINESS_TIME AS OF
//     DATE '1996-06-01' WHERE C_ACCTBAL > 9000 ORDER BY C_ACCTBAL DESC
//     LIMIT 5;
//   SELECT O_ORDERKEY FROM ORDERS FOR BUSINESS_TIME RECEIVABLE_TIME
//     AS OF DATE '1997-01-01' LIMIT 5;
#include <cstdio>
#include <iostream>
#include <string>

#include "sql/executor.h"
#include "workload/context.h"

using namespace bih;

int main(int argc, char** argv) {
  std::string letter = argc > 1 ? argv[1] : "A";
  WorkloadConfig cfg;
  cfg.engine_letter = letter;
  cfg.h = 0.002;
  cfg.m = 0.002;
  std::printf("loading TPC-BiH workload into System %s ...\n", letter.c_str());
  WorkloadContext ctx = BuildWorkload(cfg);
  std::printf(
      "tables: REGION NATION SUPPLIER PART PARTSUPP CUSTOMER ORDERS "
      "LINEITEM\nsystem time range: %lld .. %lld (micros)\n"
      "type SELECT / INSERT / UPDATE / DELETE statements "
      "(FOR PORTION OF BUSINESS_TIME works), empty line to quit\n\n",
      static_cast<long long>(ctx.sys_v0.micros()),
      static_cast<long long>(ctx.sys_end.micros()));

  std::string line, statement;
  while (true) {
    std::printf(statement.empty() ? "bih> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty() && statement.empty()) break;
    statement += line + "\n";
    // Execute once the statement looks complete (ends with ';') or the
    // user enters a blank line.
    if (line.find(';') == std::string::npos && !line.empty()) continue;
    sql::SqlResult result;
    Status st = sql::ExecuteSql(ctx.eng(), statement, &result);
    statement.clear();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      continue;
    }
    std::printf("%s(%zu rows; %llu rows examined, index: %s)\n\n",
                FormatRows(result.rows, result.columns, 25).c_str(),
                result.rows.size(),
                static_cast<unsigned long long>(
                    ctx.eng().last_stats().rows_examined),
                ctx.eng().last_stats().used_index
                    ? ctx.eng().last_stats().index_name.c_str()
                    : "none");
  }
  return 0;
}
