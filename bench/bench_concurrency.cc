// Concurrency: throughput of the session layer under parallel readers, a
// mixed read/write stream, and deliberate overload. Not a paper figure —
// the EDBT 2014 study is single-stream — but the natural follow-up
// question: what do the four architectures cost once a server puts real
// concurrency in front of them?
//
//   reads:    point lookups + occasional audit scans, 1..8 threads
//   mixed:    as above with one write per 32 operations per thread
//   overload: 8 threads against 2 admission slots and 2ms deadlines; the
//             counters report how much load the server sheds to keep the
//             latency of admitted queries flat.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "server/session.h"

namespace bih {
namespace bench {
namespace {

std::vector<std::unique_ptr<SessionManager>>* g_servers =
    new std::vector<std::unique_ptr<SessionManager>>();

uint64_t NextHash(uint64_t* h) {
  *h = *h * 6364136223846793005ULL + 1442695040888963407ULL;
  return *h >> 16;
}

uint64_t ThreadSeed(const benchmark::State& state) {
  return 0x9e3779b97f4a7c15ULL *
         (static_cast<uint64_t>(state.thread_index()) + 1);
}

ScanRequest PointLookup(int64_t custkey) {
  ScanRequest req;
  req.table = "CUSTOMER";
  req.equals = {{0, Value(custkey)}};
  return req;
}

ScanRequest AuditScan() {
  ScanRequest req;
  req.table = "CUSTOMER";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  return req;
}

void BM_SessionReads(benchmark::State& state, SessionManager* server,
                     int64_t n_cust) {
  uint64_t h = ThreadSeed(state);
  uint64_t rows = 0;
  for (auto _ : state) {
    uint64_t r = NextHash(&h);
    ScanRequest req = r % 64 == 0
                          ? AuditScan()
                          : PointLookup(1 + static_cast<int64_t>(r % n_cust));
    std::vector<Row> out;
    Status st = server->Read(req, nullptr, &out);
    if (st.ok()) rows += out.size();
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(rows);
}

void BM_SessionMixed(benchmark::State& state, SessionManager* server,
                     int64_t n_cust) {
  uint64_t h = ThreadSeed(state);
  for (auto _ : state) {
    uint64_t r = NextHash(&h);
    int64_t key = 1 + static_cast<int64_t>(r % n_cust);
    if (r % 32 == 0) {
      Status st = server->UpdateCurrent("CUSTOMER", {Value(key)},
                                        {{5, Value(double(r % 10000))}});
      benchmark::DoNotOptimize(st.ok());
    } else {
      std::vector<Row> out;
      Status st = server->Read(PointLookup(key), nullptr, &out);
      benchmark::DoNotOptimize(st.ok());
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SessionOverload(benchmark::State& state, SessionManager* server,
                        int64_t n_cust) {
  uint64_t h = ThreadSeed(state);
  uint64_t ok = 0, shed = 0, late = 0;
  for (auto _ : state) {
    uint64_t r = NextHash(&h);
    ScanRequest req = r % 8 == 0
                          ? AuditScan()
                          : PointLookup(1 + static_cast<int64_t>(r % n_cust));
    QueryContext ctx(QueryContext::Clock::now() + std::chrono::milliseconds(2));
    std::vector<Row> out;
    Status st = server->Read(req, &ctx, &out);
    if (st.ok()) {
      ++ok;
    } else if (st.code() == Status::Code::kResourceExhausted) {
      ++shed;
    } else {
      ++late;
    }
  }
  state.counters["ok"] = static_cast<double>(ok);
  state.counters["shed"] = static_cast<double>(shed);
  state.counters["deadline"] = static_cast<double>(late);
  state.SetItemsProcessed(state.iterations());
}

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const int64_t n_cust =
      static_cast<int64_t>(w.ctx().initial.customer.size());
  for (const std::string& letter : AllEngineLetters()) {
    g_servers->push_back(
        std::make_unique<SessionManager>(&w.Engine(letter)));
    SessionManager* server = g_servers->back().get();
    benchmark::RegisterBenchmark(
        ("Concurrency/reads/System" + letter).c_str(),
        [server, n_cust](benchmark::State& st) {
          BM_SessionReads(st, server, n_cust);
        })
        ->Threads(1)
        ->Threads(2)
        ->Threads(4)
        ->Threads(8)
        ->UseRealTime()
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("Concurrency/mixed/System" + letter).c_str(),
        [server, n_cust](benchmark::State& st) {
          BM_SessionMixed(st, server, n_cust);
        })
        ->Threads(4)
        ->UseRealTime()
        ->Unit(benchmark::kMicrosecond);

    // A separate session over the same engine with tight admission: 8
    // threads into 2 slots. Shed + deadline + ok accounts for every query.
    SessionConfig tight;
    tight.admission.max_inflight = 2;
    tight.admission.max_queued = 2;
    g_servers->push_back(
        std::make_unique<SessionManager>(&w.Engine(letter), tight));
    SessionManager* tight_server = g_servers->back().get();
    benchmark::RegisterBenchmark(
        ("Concurrency/overload/System" + letter).c_str(),
        [tight_server, n_cust](benchmark::State& st) {
          BM_SessionOverload(st, tight_server, n_cust);
        })
        ->Threads(8)
        ->UseRealTime()
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
