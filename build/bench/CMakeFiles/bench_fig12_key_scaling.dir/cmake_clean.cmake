file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_key_scaling.dir/bench_fig12_key_scaling.cc.o"
  "CMakeFiles/bench_fig12_key_scaling.dir/bench_fig12_key_scaling.cc.o.d"
  "bench_fig12_key_scaling"
  "bench_fig12_key_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_key_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
