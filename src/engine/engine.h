#ifndef TPCBIH_ENGINE_ENGINE_H_
#define TPCBIH_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/chrono.h"
#include "common/value.h"
#include "temporal/clock.h"
#include "temporal/sequenced.h"
#include "temporal/temporal.h"

namespace bih {

// Index structure choices offered by the tuning experiments (Section 5.1).
enum class IndexType { kBTree, kRTree, kHash };

// Which physical partition of a table an index is built on. Engines without
// a current/history split treat kCurrent/kHistory as the single table.
enum class PartitionSel { kCurrent, kHistory };

// A tuning index request. `columns` are positions in the table's *scan
// schema* (user columns followed by the two system-time columns, see
// TemporalEngine::ScanSchema). For kRTree the columns must name one or two
// (begin, end) period column pairs.
struct IndexSpec {
  std::string table;
  PartitionSel partition = PartitionSel::kCurrent;
  std::vector<int> columns;
  IndexType type = IndexType::kBTree;
  std::string name;
};

// One table access issued by a benchmark query.
struct ScanRequest {
  std::string table;
  TemporalScanSpec temporal;
  // Equality constraints on scan-schema columns (typically the primary key).
  std::vector<std::pair<int, Value>> equals;
  // Optional range constraint lo <= col <= hi; a null Value leaves the side
  // unbounded. Used by the value-in-time queries (K6).
  int range_col = -1;
  Value range_lo;
  Value range_hi;
  // Columns the consumer will read; empty means all. Column-store engines
  // only guarantee the projected columns are populated in emitted rows.
  std::vector<int> projection;
};

// Execution counters for the last Scan; the tests assert plan shape (which
// partitions were touched, whether an index was chosen) and the benches
// report them next to timings.
struct ExecStats {
  uint64_t rows_examined = 0;
  uint64_t rows_output = 0;
  int partitions_touched = 0;
  bool used_index = false;
  std::string index_name;
  bool touched_history = false;
};

// Per-table size information (Section 5.2 architecture analysis).
struct TableStats {
  size_t current_rows = 0;
  size_t history_rows = 0;
  size_t pending_undo = 0;  // System B only
};

using RowCallback = std::function<bool(const Row&)>;

// Abstract bitemporal storage engine. The four implementations reproduce
// the four anonymized systems of the paper (see DESIGN.md for the mapping).
//
// Scan output layout ("scan schema"): the user columns of the table
// definition in order, then SYS_TIME_START and SYS_TIME_END (timestamps).
// Application-time periods are ordinary user columns per the TableDef.
class TemporalEngine {
 public:
  virtual ~TemporalEngine() = default;

  virtual std::string name() const = 0;

  // True when the engine natively supports application-time periods.
  // Engines without native support (Systems C and D) still store the period
  // columns as plain data; sequenced DML is then emulated client-side by
  // the engine wrapper, mirroring how the paper ports the workload.
  virtual bool native_app_time() const { return true; }

  // --- DDL -----------------------------------------------------------
  virtual Status CreateTable(const TableDef& def) = 0;
  virtual Status CreateIndex(const IndexSpec& spec) = 0;
  virtual Status DropIndexes(const std::string& table) = 0;

  virtual const TableDef& GetTableDef(const std::string& table) const = 0;
  virtual Schema ScanSchema(const std::string& table) const = 0;
  virtual bool HasTable(const std::string& table) const = 0;

  // --- Transactions ----------------------------------------------------
  // DML statements outside Begin/Commit auto-commit individually. Batched
  // statements share one commit timestamp (the Fig. 13 batch-size knob).
  virtual void Begin();
  virtual Status Commit();

  // --- DML -------------------------------------------------------------
  virtual Status Insert(const std::string& table, Row row) = 0;

  // Bulk load with explicit system-time periods appended to each row
  // (arity = user columns + 2). Only engines without engine-managed system
  // time accept this (System D); others return Unimplemented, which is the
  // paper's reason history loading must replay individual transactions.
  virtual Status BulkLoad(const std::string& table, std::vector<Row> rows);

  // Updates every currently visible version of `key` (non-temporal update:
  // only the system time moves).
  virtual Status UpdateCurrent(const std::string& table,
                               const std::vector<Value>& key,
                               const std::vector<ColumnAssignment>& set) = 0;

  // SEQUENCED VALIDTIME UPDATE over `period` of application time dimension
  // `period_index`.
  virtual Status UpdateSequenced(const std::string& table,
                                 const std::vector<Value>& key,
                                 int period_index, const Period& period,
                                 const std::vector<ColumnAssignment>& set) = 0;

  // Overwrite semantics (Table 2 "Overwrite App.Time"): replaces the
  // overlapped range with a single new version spanning exactly `period`.
  virtual Status UpdateOverwrite(const std::string& table,
                                 const std::vector<Value>& key,
                                 int period_index, const Period& period,
                                 const std::vector<ColumnAssignment>& set) = 0;

  // Deletes every currently visible version of `key`.
  virtual Status DeleteCurrent(const std::string& table,
                               const std::vector<Value>& key) = 0;

  virtual Status DeleteSequenced(const std::string& table,
                                 const std::vector<Value>& key,
                                 int period_index, const Period& period) = 0;

  // --- Query -----------------------------------------------------------
  virtual void Scan(const ScanRequest& req, const RowCallback& cb) = 0;

  const ExecStats& last_stats() const { return stats_; }
  virtual TableStats GetTableStats(const std::string& table) const = 0;

  // Engine-maintenance hook: System C's delta->main merge; no-op elsewhere.
  virtual void Maintain() {}

  Timestamp Now() const { return clock_.Now(); }

 protected:
  // Commit timestamp for the mutation being executed; allocates a new tick
  // in auto-commit mode and reuses the transaction stamp inside Begin/Commit.
  Timestamp MutationTime();

  CommitClock clock_;
  bool in_txn_ = false;
  Timestamp txn_time_;
  ExecStats stats_;
};

// Factory: engines named "A".."D" (architecture letter as in the paper).
std::unique_ptr<TemporalEngine> MakeEngine(const std::string& letter);

// All four architecture letters, in paper order.
const std::vector<std::string>& AllEngineLetters();

}  // namespace bih

#endif  // TPCBIH_ENGINE_ENGINE_H_
