#include "durability/fault.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bih {

FaultInjector FaultInjector::FailNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kFailWrite;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::TransientNth(uint64_t n, uint64_t attempts) {
  FaultInjector fi;
  fi.mode_ = Mode::kTransientWrite;
  fi.trigger_write_ = n;
  fi.transient_attempts_ = attempts == 0 ? 1 : attempts;
  fi.transient_left_.store(fi.transient_attempts_, std::memory_order_relaxed);
  return fi;
}

void FaultInjector::CopyFrom(const FaultInjector& other) {
  mode_ = other.mode_;
  trigger_write_ = other.trigger_write_;
  transient_attempts_ = other.transient_attempts_;
  keep_bytes_ = other.keep_bytes_;
  flip_offset_ = other.flip_offset_;
  flip_mask_ = other.flip_mask_;
  transient_left_.store(other.transient_left_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  triggered_.store(other.triggered_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  crashed_.store(other.crashed_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

FaultInjector FaultInjector::TornNth(uint64_t n, size_t keep_bytes) {
  FaultInjector fi;
  fi.mode_ = Mode::kTornWrite;
  fi.trigger_write_ = n;
  fi.keep_bytes_ = keep_bytes;
  return fi;
}

FaultInjector FaultInjector::FlipByteNth(uint64_t n, size_t offset,
                                         uint8_t mask) {
  FaultInjector fi;
  fi.mode_ = Mode::kFlipByte;
  fi.trigger_write_ = n;
  fi.flip_offset_ = offset;
  fi.flip_mask_ = mask == 0 ? 0x01 : mask;
  return fi;
}

FaultInjector FaultInjector::FailSyncNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kFailSync;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::FailGroupFlushNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kFailGroupFlush;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::FailRotateNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kFailRotate;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::FailCheckpointNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kFailCheckpoint;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::TornRenameNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kTornRename;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::NetTornNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kNetTornFrame;
  fi.trigger_write_ = n == 0 ? 1 : n;
  return fi;
}

FaultInjector FaultInjector::NetDropNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kNetDropResponse;
  fi.trigger_write_ = n == 0 ? 1 : n;
  return fi;
}

FaultInjector FaultInjector::NetSlowNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kNetSlowWrite;
  fi.trigger_write_ = n == 0 ? 1 : n;
  return fi;
}

FaultInjector FaultInjector::NetAcceptFailNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kNetFailAccept;
  fi.trigger_write_ = n == 0 ? 1 : n;
  return fi;
}

FaultInjector FaultInjector::FromEnv(const char* var) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') return FaultInjector();
  // The network plans nest a second mode word ("net:torn:5"), which the
  // single-word sscanf below cannot parse; peel the prefix off first.
  if (std::strncmp(v, "net:", 4) == 0) {
    char sub[12] = {0};
    unsigned long long n = 0;
    if (std::sscanf(v + 4, "%11[a-z]:%llu", sub, &n) == 2 && n > 0) {
      if (std::strcmp(sub, "torn") == 0) return NetTornNth(n);
      if (std::strcmp(sub, "drop") == 0) return NetDropNth(n);
      if (std::strcmp(sub, "slow") == 0) return NetSlowNth(n);
      if (std::strcmp(sub, "accept") == 0) return NetAcceptFailNth(n);
    }
    return FaultInjector();
  }
  char mode[12] = {0};
  unsigned long long n = 0, extra = 0;
  int fields = std::sscanf(v, "%11[a-z]:%llu:%llu", mode, &n, &extra);
  if (fields >= 2 && n > 0) {
    if (std::strcmp(mode, "fail") == 0) return FailNth(n);
    if (std::strcmp(mode, "transient") == 0) {
      return TransientNth(n, fields >= 3 ? extra : 1);
    }
    if (std::strcmp(mode, "torn") == 0) {
      return TornNth(n, static_cast<size_t>(extra));
    }
    if (std::strcmp(mode, "flip") == 0) {
      return FlipByteNth(n, static_cast<size_t>(extra));
    }
    if (std::strcmp(mode, "sync") == 0) return FailSyncNth(n);
    if (std::strcmp(mode, "group") == 0) return FailGroupFlushNth(n);
    if (std::strcmp(mode, "rotate") == 0) return FailRotateNth(n);
    if (std::strcmp(mode, "ckpt") == 0) return FailCheckpointNth(n);
    if (std::strcmp(mode, "rename") == 0) return TornRenameNth(n);
  }
  return FaultInjector();
}

FaultInjector FaultInjector::FromSeed(uint64_t seed, uint64_t max_write) {
  // splitmix64 steps; any fixed mixing works, it only has to be stable.
  auto next = [&seed]() {
    seed += 0x9e3779b97f4a7c15ULL;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  if (max_write == 0) max_write = 1;
  uint64_t trigger = 1 + next() % max_write;
  switch (next() % 3) {
    case 0:
      return FailNth(trigger);
    case 1:
      return TornNth(trigger, static_cast<size_t>(next() % 64));
    default:
      return FlipByteNth(trigger, static_cast<size_t>(next() % 256),
                         static_cast<uint8_t>(1u << (next() % 8)));
  }
}

FaultInjector::Action FaultInjector::OnWrite(uint64_t write_index,
                                             size_t frame_len) {
  Action a;
  if (crashed_.load(std::memory_order_relaxed)) {
    a.fail = true;
    return a;
  }
  if (mode_ == Mode::kNone || write_index != trigger_write_) return a;
  if (mode_ == Mode::kTransientWrite) {
    const uint64_t left = transient_left_.load(std::memory_order_relaxed);
    if (left == 0) return a;  // outage over: this attempt passes
    transient_left_.store(left - 1, std::memory_order_relaxed);
    triggered_.store(true, std::memory_order_relaxed);
    a.fail = true;  // no crash: a clean EIO, nothing persisted
    return a;
  }
  switch (mode_) {
    case Mode::kFailWrite:
      triggered_.store(true, std::memory_order_relaxed);
      crashed_.store(true, std::memory_order_relaxed);
      a.fail = true;
      break;
    case Mode::kTornWrite:
      triggered_.store(true, std::memory_order_relaxed);
      crashed_.store(true, std::memory_order_relaxed);
      a.torn = true;
      a.keep_bytes = keep_bytes_ < frame_len ? keep_bytes_ : frame_len;
      break;
    case Mode::kFlipByte:
      triggered_.store(true, std::memory_order_relaxed);
      a.flip = true;
      a.flip_offset = frame_len == 0 ? 0 : flip_offset_ % frame_len;
      a.flip_mask = flip_mask_;
      break;
    default:
      break;  // crash-point modes never trigger on record writes
  }
  return a;
}

FaultInjector::Action FaultInjector::OnCrashPoint(Mode m, uint64_t index) {
  Action a;
  if (crashed_.load(std::memory_order_relaxed)) {
    a.fail = true;
    return a;
  }
  if (mode_ != m || index != trigger_write_) return a;
  triggered_.store(true, std::memory_order_relaxed);
  crashed_.store(true, std::memory_order_relaxed);
  a.fail = true;
  return a;
}

FaultInjector::Action FaultInjector::OnSync(uint64_t sync_index) {
  return OnCrashPoint(Mode::kFailSync, sync_index);
}

FaultInjector::Action FaultInjector::OnGroupFlush(uint64_t group_index) {
  return OnCrashPoint(Mode::kFailGroupFlush, group_index);
}

FaultInjector::Action FaultInjector::OnRotate(uint64_t rotate_index) {
  return OnCrashPoint(Mode::kFailRotate, rotate_index);
}

FaultInjector::Action FaultInjector::OnCheckpointWrite(uint64_t frame_index) {
  return OnCrashPoint(Mode::kFailCheckpoint, frame_index);
}

FaultInjector::Action FaultInjector::OnRename(uint64_t rename_index) {
  return OnCrashPoint(Mode::kTornRename, rename_index);
}

FaultInjector::Action FaultInjector::OnNetSend(uint64_t send_index,
                                               size_t frame_len) {
  Action a;
  if (send_index == 0 || trigger_write_ == 0 ||
      send_index % trigger_write_ != 0) {
    return a;
  }
  switch (mode_) {
    case Mode::kNetTornFrame:
      triggered_.store(true, std::memory_order_relaxed);
      a.torn = true;
      a.keep_bytes = frame_len / 2;
      break;
    case Mode::kNetDropResponse:
      triggered_.store(true, std::memory_order_relaxed);
      a.fail = true;
      break;
    case Mode::kNetSlowWrite:
      triggered_.store(true, std::memory_order_relaxed);
      a.slow = true;
      break;
    default:
      break;  // durability modes never trigger on network sends
  }
  return a;
}

FaultInjector::Action FaultInjector::OnAccept(uint64_t accept_index) {
  Action a;
  if (mode_ != Mode::kNetFailAccept || accept_index == 0 ||
      trigger_write_ == 0 || accept_index % trigger_write_ != 0) {
    return a;
  }
  triggered_.store(true, std::memory_order_relaxed);
  a.fail = true;
  return a;
}

std::string FaultInjector::ToString() const {
  switch (mode_) {
    case Mode::kNone:
      return "none";
    case Mode::kFailWrite:
      return "fail:" + std::to_string(trigger_write_);
    case Mode::kTransientWrite:
      return "transient:" + std::to_string(trigger_write_) + ":" +
             std::to_string(transient_attempts_);
    case Mode::kTornWrite:
      return "torn:" + std::to_string(trigger_write_) + ":" +
             std::to_string(keep_bytes_);
    case Mode::kFlipByte:
      return "flip:" + std::to_string(trigger_write_) + ":" +
             std::to_string(flip_offset_);
    case Mode::kFailSync:
      return "sync:" + std::to_string(trigger_write_);
    case Mode::kFailGroupFlush:
      return "group:" + std::to_string(trigger_write_);
    case Mode::kFailRotate:
      return "rotate:" + std::to_string(trigger_write_);
    case Mode::kFailCheckpoint:
      return "ckpt:" + std::to_string(trigger_write_);
    case Mode::kTornRename:
      return "rename:" + std::to_string(trigger_write_);
    case Mode::kNetTornFrame:
      return "net:torn:" + std::to_string(trigger_write_);
    case Mode::kNetDropResponse:
      return "net:drop:" + std::to_string(trigger_write_);
    case Mode::kNetSlowWrite:
      return "net:slow:" + std::to_string(trigger_write_);
    case Mode::kNetFailAccept:
      return "net:accept:" + std::to_string(trigger_write_);
  }
  return "?";
}

}  // namespace bih
