#include "common/period.h"

#include <cstdio>

namespace bih {

std::string Period::ToString() const {
  char lo[24], hi[24];
  if (begin == kBeginningOfTime) {
    std::snprintf(lo, sizeof(lo), "-inf");
  } else {
    std::snprintf(lo, sizeof(lo), "%lld", static_cast<long long>(begin));
  }
  if (end == kForever) {
    std::snprintf(hi, sizeof(hi), "inf");
  } else {
    std::snprintf(hi, sizeof(hi), "%lld", static_cast<long long>(end));
  }
  return std::string("[") + lo + ", " + hi + ")";
}

}  // namespace bih
