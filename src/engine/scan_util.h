#ifndef TPCBIH_ENGINE_SCAN_UTIL_H_
#define TPCBIH_ENGINE_SCAN_UTIL_H_

#include "catalog/schema.h"
#include "common/value.h"
#include "engine/engine.h"
#include "temporal/temporal.h"

namespace bih {

// Positions of the temporal columns inside a scan-schema row. `app_begin`/
// `app_end` are -1 for tables without application time (or when the request
// does not constrain it).
struct TemporalCols {
  int sys_from = -1;
  int sys_to = -1;
  int app_begin = -1;
  int app_end = -1;
};

// Derives the temporal column positions for `def` under the scan schema
// (user columns + sys_from + sys_to) and the requested app period.
TemporalCols ResolveTemporalCols(const TableDef& def, int app_period_index);

// Extracts the system-time period of a scan-schema row.
Period RowSystemPeriod(const Row& row, const TemporalCols& tc);

// Extracts the application-time period; requires app columns present.
Period RowAppPeriod(const Row& row, const TemporalCols& tc);

// Full temporal qualification of a row under the request's selectors.
// `now` is the engine's current system time in micros.
bool MatchesTemporal(const Row& row, const TemporalScanSpec& spec,
                     const TemporalCols& tc, int64_t now);

// Non-temporal residual predicates (equality list + range constraint).
bool MatchesConstraints(const Row& row, const ScanRequest& req);

// Records that one partition of this scan was served by index `name`.
// Every engine's index access paths report through this helper so the
// ExecStats contract is uniform: used_index means *some* partition used an
// index, and index_name lists the chosen index of each served partition in
// scan order, comma-separated (engine_test.cc asserts this).
inline void RecordIndexUse(ExecStats* stats, const std::string& name) {
  stats->used_index = true;
  if (!stats->index_name.empty()) stats->index_name += ",";
  stats->index_name += name;
}

}  // namespace bih

#endif  // TPCBIH_ENGINE_SCAN_UTIL_H_
