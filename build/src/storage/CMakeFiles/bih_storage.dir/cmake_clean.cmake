file(REMOVE_RECURSE
  "CMakeFiles/bih_storage.dir/btree_index.cc.o"
  "CMakeFiles/bih_storage.dir/btree_index.cc.o.d"
  "CMakeFiles/bih_storage.dir/column_table.cc.o"
  "CMakeFiles/bih_storage.dir/column_table.cc.o.d"
  "CMakeFiles/bih_storage.dir/hash_index.cc.o"
  "CMakeFiles/bih_storage.dir/hash_index.cc.o.d"
  "CMakeFiles/bih_storage.dir/row_table.cc.o"
  "CMakeFiles/bih_storage.dir/row_table.cc.o.d"
  "CMakeFiles/bih_storage.dir/rtree_index.cc.o"
  "CMakeFiles/bih_storage.dir/rtree_index.cc.o.d"
  "libbih_storage.a"
  "libbih_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
