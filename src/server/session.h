#ifndef TPCBIH_SERVER_SESSION_H_
#define TPCBIH_SERVER_SESSION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "durability/checkpoint.h"
#include "durability/group_commit.h"
#include "engine/engine.h"
#include "exec/parallel.h"
#include "server/admission.h"

namespace bih {

// Knobs for one SessionManager.
struct SessionConfig {
  AdmissionConfig admission;
  // How often the watchdog sweeps the in-flight registry for overdue
  // queries. Zero disables the watchdog thread entirely.
  std::chrono::milliseconds watchdog_period{10};
  // Threads one scan may use (intra-query parallelism); 0 resolves to the
  // process default (BIH_SCAN_THREADS / SetDefaultScanThreads), 1 keeps
  // every read serial. When > 1, the manager owns a ScanScheduler sized
  // for this width and injects it into reads that do not bring their own.
  int scan_threads = 0;
  // Group commit: when true and the engine carries a WAL, the manager owns
  // durability through a GroupCommit coordinator — per-DML Flush() stages
  // instead of syncing, the exclusive engine lock is released before the
  // device wait, and concurrent commits share one fdatasync. False keeps
  // the single-lane sync-per-commit path (useful as a bench baseline).
  bool group_commit = true;
  // Write-admission shards (clamped to >= 1). Keyed writes (Insert/
  // UpdateCurrent/DeleteCurrent) serialize per shard — hash of (table,
  // first key value) — instead of against every other writer, so
  // independent updates overlap their durability waits; generic Write()
  // is a barrier that takes all shards. Sharding is pure admission
  // discipline: the short exclusive apply under rw_mu_ stays the
  // serialization point, so correctness never depends on the hash.
  int write_shards = 16;
};

// Concurrent front door for a TemporalEngine. The engines themselves are
// single-threaded; this layer adds the discipline a server needs:
//
//  * Reads run concurrently under a shared lock against a *pinned
//    snapshot*: the system-time watermark published by the last completed
//    write. Because the bitemporal stores never destroy versions, clamping
//    a query's system-time selector to the watermark yields exactly the
//    state at that commit, so a reader never observes half of a later
//    batch no matter how writes interleave.
//  * Writes pass shard admission first (keyed writes serialize per
//    (table, key)-hash shard; generic writes barrier on all shards), then
//    take the exclusive side of the lock for the in-memory apply and WAL
//    append, reusing the engines' existing WAL-mirrored DML path
//    unchanged; after each write the engine publishes deferred state
//    (System B's undo log) so subsequent scans are pure reads.
//  * With group commit enabled (the default when the engine has a WAL),
//    the exclusive lock is released *before* the device sync: the write
//    takes a durability ticket at its append LSN and waits on the
//    GroupCommit coordinator, so concurrent writers on different shards
//    share one fdatasync. The watermark advances only after the ticket is
//    acknowledged durable — readers can never pin a commit that a crash
//    could still lose, and because commit timestamps and LSNs are issued
//    in the same order under the exclusive lock, watermark publication in
//    durability order equals publication in commit order.
//  * Every read passes admission control first (bounded queue + load
//    shedding) and carries an optional QueryContext checked per row; a
//    background watchdog cancels queries that outlive their deadline even
//    if they are stuck off the per-row path.
//  * When the write-ahead log dies (device failure, injected or real), the
//    manager degrades to read-only instead of taking the server down:
//    every subsequent write returns kUnavailable with a retry hint, while
//    pinned-snapshot reads keep serving the state at the last durable
//    commit. Restarting and recovering from the log restores writes.
//
// Every read call returns exactly one of: kOk (with rows), kDeadlineExceeded,
// kCancelled, or kResourceExhausted. An interrupted read leaves engine state
// untouched and returns no partial rows.
//
// Lock discipline (enforced by -Wthread-safety, see thread_annotations.h):
// shard admission locks come first (ascending index), then rw_mu_ protects
// the engine; inflight_mu_, watchdog_mu_ and stats_mu_ are leaf locks taken
// in that order after watchdog_mu_ by the watchdog sweep. The GroupCommit
// coordinator's internal mutex is only ever taken with no session lock
// held (durability waits happen after rw_mu_ is released). The watermark
// is the one deliberate lock-free handoff: stored under rw_mu_ exclusively
// in the legacy path (PublishWatermark) or by CAS-max after durability in
// the group path (AdvanceWatermark); either way the release-store pairs
// with the acquire-load in OpenSnapshot.
class SessionManager {
 public:
  // Serves an engine owned by someone else (e.g. a WorkloadContext).
  explicit SessionManager(TemporalEngine* engine, SessionConfig cfg = {});
  // Takes ownership of the engine.
  explicit SessionManager(std::unique_ptr<TemporalEngine> engine,
                          SessionConfig cfg = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // A pinned system-time position. Reads against the same snapshot return
  // the same result regardless of concurrent writes.
  struct Snapshot {
    int64_t watermark = 0;
  };

  // Pins the current watermark (the last completed write). Lock-free: the
  // acquire-load pairs with PublishWatermark's release-store under rw_mu_.
  Snapshot OpenSnapshot() const {
    return Snapshot{watermark_.load(std::memory_order_acquire)};
  }

  // --- Reads -----------------------------------------------------------
  // Runs `req` against the current snapshot / `snap`, appending rows to
  // `out`. `ctx` (optional, borrowed) carries deadline and cancellation;
  // on a non-OK return `out` is left empty.
  Status Read(ScanRequest req, QueryContext* ctx, std::vector<Row>* out);
  Status ReadAt(Snapshot snap, ScanRequest req, QueryContext* ctx,
                std::vector<Row>* out);

  // Runs `fn` on the engine under the shared (reader) side of the lock,
  // with the same admission control, in-flight registration and watchdog
  // coverage as Read(). This is how composite read-only work (the SQL
  // front end's scans, joins and aggregations) runs against a consistent
  // engine: writers are excluded for the duration, and a deadline or
  // cancellation that fires mid-callback overrides fn's own status. The
  // callback must not mutate the engine.
  Status ReadTxn(QueryContext* ctx,
                 const std::function<Status(TemporalEngine&)>& fn);

  // --- Writes ----------------------------------------------------------
  // Runs `fn` on the engine under the exclusive lock; any combination of
  // DML (including Begin/Commit batches) is atomic with respect to
  // readers, and the watermark advances once the write is durable. Takes
  // every admission shard (barrier), so it serializes against all keyed
  // writers — the convenience wrappers below route through the same core
  // but hold only their own shard.
  Status Write(const std::function<Status(TemporalEngine&)>& fn);

  // Like Write(), but admitted on the shard of (table, key) instead of the
  // all-shards barrier: writes to different shards overlap their
  // durability waits (under group commit they usually share one device
  // sync). `fn` must only touch rows of that key — the exclusive engine
  // lock still makes any violation atomic, but a violation serializes
  // against the wrong shard and may observe another in-flight writer's
  // committed-but-unacknowledged rows, exactly what keyed admission
  // promises callers it prevents.
  Status WriteKeyed(const std::string& table, const std::vector<Value>& key,
                    const std::function<Status(TemporalEngine&)>& fn);

  Status Insert(const std::string& table, Row row);
  Status UpdateCurrent(const std::string& table, const std::vector<Value>& key,
                       const std::vector<ColumnAssignment>& set);
  Status DeleteCurrent(const std::string& table, const std::vector<Value>& key);

  // Runs a checkpoint under the exclusive lock (the checkpointer requires
  // no mutation between its WAL rotation and its snapshot scan). Readers
  // proceed again as soon as it returns; writes queue behind it.
  //
  // On a session degraded to read-only this is also the revive path: a
  // fresh WAL writer is opened at the segment after the dead one, the
  // checkpoint folds the entire in-memory state into a snapshot covering
  // every earlier segment, and — only if both steps succeed and the fresh
  // writer is still healthy — writes are re-enabled (and, under group
  // commit, a fresh coordinator is armed over the fresh writer). A failed
  // revive leaves the session read-only: recovery then still lands on the
  // pre-failure durable state, never on a hole.
  Status RunCheckpoint(Checkpointer* cp, CheckpointInfo* info);

  // --- Degraded operation ----------------------------------------------
  // True once the manager has flipped to read-only after a WAL failure.
  // Writes are rejected with kUnavailable; reads are unaffected.
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }

  // --- Introspection ---------------------------------------------------
  struct ServerStats {
    AdmissionController::Stats admission;
    uint64_t reads_ok = 0;
    uint64_t reads_deadline = 0;
    uint64_t reads_cancelled = 0;
    uint64_t reads_shed = 0;
    uint64_t writes = 0;
    uint64_t writes_unavailable = 0;  // rejected while degraded read-only
    uint64_t watchdog_kills = 0;
  };
  ServerStats GetStats() const;

  // Group-commit counters (zeroes when group commit is off or the engine
  // has no WAL). groups < acks is the amortization working: several
  // acknowledged commits shared one device sync. Takes the reader side of
  // the engine lock (the coordinator handle lives under it).
  GroupCommit::Stats GetGroupCommitStats();

  // Resolved write-admission shard count (>= 1).
  int write_shards() const { return static_cast<int>(shard_mu_.size()); }

  // Escape hatch for single-threaded setup and test assertions: hands out
  // the engine without the lock the concurrent paths require. Callers must
  // not race it against Read/Write.
  TemporalEngine& engine() NO_THREAD_SAFETY_ANALYSIS { return *engine_; }
  const AdmissionConfig& admission_config() const {
    return admission_.config();
  }

  // The manager's worker pool (null when configured serial) and resolved
  // per-scan thread count. The cancellation tests poll the scheduler's
  // idle count to prove interrupted parallel reads leave no worker busy.
  ScanScheduler* scheduler() { return scheduler_.get(); }
  int scan_threads() const { return scan_threads_; }

  // The session's resolved execution defaults, as injected into every read
  // whose request leaves the knobs unset. The SQL front end and the network
  // server pass this straight to Execute()/ExecuteSql so plan operators
  // (parallel joins, aggregation) share the session's worker pool.
  ExecOptions exec_options() {
    ExecOptions opts;
    opts.scan_threads = scan_threads_;
    opts.scheduler = scheduler_.get();
    return opts;
  }

  // Clamps a system-time selector so it cannot observe commits after
  // `watermark`. Exposed for the tests' reference models.
  static TemporalSelector ClampToWatermark(const TemporalSelector& sel,
                                           int64_t watermark);

 private:
  void Init(SessionConfig cfg);
  void WatchdogLoop();

  // The single writer core. `shard` >= 0 holds that one admission shard;
  // kAllShards barriers on every shard in ascending index order. Inside:
  // exclusive rw_mu_ for fn + commit bookkeeping, then (group mode) the
  // lock is dropped and the write waits on its durability ticket before
  // the watermark advances.
  static constexpr int kAllShards = -1;
  Status DoWrite(int shard, const std::function<Status(TemporalEngine&)>& fn);

  // RunCheckpoint's body, entered with every admission shard held.
  Status RunCheckpointLocked(Checkpointer* cp, CheckpointInfo* info);

  // Maps a keyed write to its admission shard.
  size_t ShardFor(const std::string& table, const std::vector<Value>& key,
                  const Row* row) const;

  // Runtime-indexed lock sets defeat the static analysis, so the shard
  // acquire/release pair is annotated away; discipline is by construction:
  // ascending index acquisition (no shard-shard deadlock) and shards
  // always taken before rw_mu_. The bih-analyze directives feed the same
  // facts to the whole-repo lock-graph pass.
  // bih-analyze: acquires(shard_mu_)
  void LockShards(int shard) NO_THREAD_SAFETY_ANALYSIS;
  // bih-analyze: releases(shard_mu_)
  void UnlockShards(int shard) NO_THREAD_SAFETY_ANALYSIS;

  Status DoRead(Snapshot snap, ScanRequest& req, QueryContext* ctx,
                std::vector<Row>* out);
  Status DoReadTxn(QueryContext* ctx,
                   const std::function<Status(TemporalEngine&)>& fn);
  // Folds one finished read's outcome into the per-code counters.
  void AccountRead(const Status& s);

  // Acquires the reader side of rw_mu_ in short polled slices so a reader
  // stuck behind a long write still honours its QueryContext. Returns true
  // with the shared lock held; false (lock not held) with *why set to the
  // context's failure status.
  bool PollLockShared(QueryContext* ctx, Status* why)
      TRY_ACQUIRE_SHARED(true, rw_mu_);

  // Publishes the snapshot readers pin. The release-store pairs with the
  // acquire-load in OpenSnapshot; requiring the writer lock here is what
  // makes the handoff an annotated acquire/release pair instead of a bare
  // atomic store racing half-finished writes. Used by the legacy
  // (sync-per-commit) path, where completion and durability coincide.
  void PublishWatermark() REQUIRES(rw_mu_);

  // Group-mode watermark publication, called *after* rw_mu_ is released
  // once the write's durability ticket is acknowledged. CAS-max with
  // release ordering: ticket acknowledgments arrive in LSN (= commit)
  // order from the coordinator, but the waiters themselves race to store,
  // so the max keeps a straggler from moving the snapshot backwards.
  void AdvanceWatermark(int64_t commit_ts);

  // Flips to read-only if the engine's WAL has died. Called after every
  // write/checkpoint while still holding the exclusive lock.
  void DegradeIfWalDead() REQUIRES(rw_mu_);
  // Lock-free degrade for the group path, where the durability failure
  // surfaces after rw_mu_ is already released. read_only_ only ever goes
  // false -> true, so the bare store cannot lose a revive (revives happen
  // under the exclusive lock in RunCheckpoint, which observes the flag
  // again before re-enabling).
  void DegradeNow();
  // The stable kUnavailable writes receive while degraded.
  Status ReadOnlyStatus() const;

  std::unique_ptr<TemporalEngine> owned_engine_;
  // The pointer is set once in the constructor and never reassigned; the
  // *pointee* is the shared state: readers scan it under the shared side
  // of rw_mu_, writers mutate it under the exclusive side.
  TemporalEngine* engine_ PT_GUARDED_BY(rw_mu_) = nullptr;

  // Intra-query parallelism: helpers shared by all concurrent reads. Both
  // are fixed in Init() before any thread exists, immutable afterwards.
  int scan_threads_ = 1;  // bih-lint: allow(guard-coverage) set once in Init
  std::unique_ptr<ScanScheduler> scheduler_;

  // Readers shared, writers exclusive. Readers acquire with try_lock_shared
  // in short polled slices (PollLockShared) so a reader stuck behind a long
  // write still honours its QueryContext. (Not try_lock_shared_for: the
  // timed rwlock acquisition compiles to pthread_rwlock_clockrdlock, which
  // TSan does not intercept, and this layer must stay TSan-clean.)
  // Ordering: after the admission shards (writers admit, then lock), and
  // before the legacy WAL writer's mutex (DoWrite appends and
  // DegradeIfWalDead polls dead() under the exclusive lock). String args:
  // the shard vector and the cross-class WalWriter member cannot be named
  // by the C++ attribute grammar here.
  SharedMutex rw_mu_ ACQUIRED_AFTER("SessionManager::shard_mu_")
      ACQUIRED_BEFORE("WalWriter::mu_");

  // System time of the last *durable* write; readers pin this. Advanced by
  // PublishWatermark() under rw_mu_ (legacy path) or by AdvanceWatermark()
  // CAS-max after durability (group path); read lock-free in
  // OpenSnapshot().
  std::atomic<int64_t> watermark_{0};

  // Flips once (false -> true) when the WAL dies; checked lock-free on the
  // write fast path so rejected writes never queue behind the writer lock.
  // Set under rw_mu_ by DegradeIfWalDead, or lock-free by DegradeNow when
  // a group durability wait fails after the lock is gone. Cleared (revive)
  // only under rw_mu_ in RunCheckpoint.
  std::atomic<bool> read_only_{false};

  // Write admission shards (size fixed in Init, >= 1). Keyed writes hold
  // shard_mu_[ShardFor(...)]; Write()/RunCheckpoint barrier on all of
  // them. Always acquired in ascending index order, always before rw_mu_.
  std::vector<std::unique_ptr<Mutex>> shard_mu_;

  // Durability coordinator; non-null iff group commit is enabled and the
  // engine carries a WAL. Re-armed (fresh coordinator over the fresh
  // writer) by RunCheckpoint's revive path. Guarded by rw_mu_: the group
  // path snapshots the shared_ptr under the exclusive lock, and waiters
  // keep their snapshot alive across a revive swap.
  std::shared_ptr<GroupCommit> group_ GUARDED_BY(rw_mu_);

  // Writers between write admission and staging (records appended, ticket
  // taken). A group-commit leader reads it to hold the group open for
  // writers already committed to joining — a scheduling hint for batching,
  // never a correctness dependency. Outlives every coordinator built over
  // it (coordinators are owned by this session or by in-flight waiters
  // whose DoWrite frame is inside the session's lifetime).
  std::atomic<int> staging_{0};

  AdmissionController admission_;

  // In-flight registry for the watchdog. Leaf lock: taken after
  // watchdog_mu_ by the sweep, alone by readers registering themselves.
  Mutex inflight_mu_ ACQUIRED_AFTER(watchdog_mu_);
  std::unordered_set<QueryContext*> inflight_ GUARDED_BY(inflight_mu_);

  // Fixed in Init() before the watchdog thread spawns, immutable after.
  std::chrono::milliseconds watchdog_period_{0};  // bih-lint: allow(guard-coverage)
  // Lifecycle-only: spawned in Init, joined in Shutdown; no third thread
  // ever touches the handle. bih-lint: allow(guard-coverage)
  std::thread watchdog_;
  Mutex watchdog_mu_;
  CondVar watchdog_cv_;
  bool shutdown_ GUARDED_BY(watchdog_mu_) = false;

  // Leaf lock: the watchdog sweep and DoWrite's commit bookkeeping both
  // finish inside it without taking anything further.
  mutable Mutex stats_mu_ ACQUIRED_AFTER(watchdog_mu_, rw_mu_);
  ServerStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace bih

#endif  // TPCBIH_SERVER_SESSION_H_
