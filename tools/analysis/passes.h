#ifndef TPCBIH_TOOLS_ANALYSIS_PASSES_H_
#define TPCBIH_TOOLS_ANALYSIS_PASSES_H_

// The three whole-repo passes behind tools/bih_analyze:
//
//  [lock-order]          cycles in the declared+observed lock-order graph
//                        (potential deadlocks, reported with the witness
//                        path of every edge), and observed nestings with
//                        no declared ACQUIRED_AFTER/ACQUIRED_BEFORE path.
//  [guard-coverage]      mutable fields of mutex-owning classes that are
//                        neither GUARDED_BY/PT_GUARDED_BY, atomic, const,
//                        internally synchronized, nor suppressed.
//  [blocking-under-lock] blocking calls (fsync family, CV waits, socket
//                        I/O, sleeps, joins) reached — possibly through a
//                        call chain — while a mutex from the no-blocking
//                        set is held.
//
// Findings use the shared "path:line: [rule] message" format and the
// shared suppression syntax (// bih-lint: allow(<rule>)).

#include <string>
#include <vector>

#include "analysis/lock_graph.h"
#include "analysis/parser.h"
#include "analysis/source.h"

namespace bih {
namespace analysis {

struct AnalyzeOptions {
  // Mutexes ("Class::field") that must never be held across a blocking
  // call. Defaults (applied unless `no_default_no_block`) encode the
  // repo's durability invariants: the session's reader/writer gate and
  // the WAL/group-commit staging mutexes.
  std::vector<std::string> no_block;
  bool no_default_no_block = false;
};

struct AnalyzeResult {
  std::vector<Finding> findings;
  size_t files_scanned = 0;
  RepoModel repo;
  LockGraph graph;
};

// Runs all three passes over the loaded tree.
AnalyzeResult Analyze(const std::vector<FileText>& texts,
                      const AnalyzeOptions& opts);

// Serializes findings + the lock graph as a JSON report.
std::string ToJson(const AnalyzeResult& result);

// Human-readable dump of nodes, edges, and cycles (for --dump-graph).
std::string DumpGraph(const LockGraph& graph);

}  // namespace analysis
}  // namespace bih

#endif  // TPCBIH_TOOLS_ANALYSIS_PASSES_H_
