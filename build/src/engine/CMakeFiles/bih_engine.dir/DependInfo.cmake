
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/consistency.cc" "src/engine/CMakeFiles/bih_engine.dir/consistency.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/consistency.cc.o.d"
  "/root/repo/src/engine/engine_base.cc" "src/engine/CMakeFiles/bih_engine.dir/engine_base.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/engine_base.cc.o.d"
  "/root/repo/src/engine/index_set.cc" "src/engine/CMakeFiles/bih_engine.dir/index_set.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/index_set.cc.o.d"
  "/root/repo/src/engine/scan_util.cc" "src/engine/CMakeFiles/bih_engine.dir/scan_util.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/scan_util.cc.o.d"
  "/root/repo/src/engine/system_a.cc" "src/engine/CMakeFiles/bih_engine.dir/system_a.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/system_a.cc.o.d"
  "/root/repo/src/engine/system_b.cc" "src/engine/CMakeFiles/bih_engine.dir/system_b.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/system_b.cc.o.d"
  "/root/repo/src/engine/system_c.cc" "src/engine/CMakeFiles/bih_engine.dir/system_c.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/system_c.cc.o.d"
  "/root/repo/src/engine/system_d.cc" "src/engine/CMakeFiles/bih_engine.dir/system_d.cc.o" "gcc" "src/engine/CMakeFiles/bih_engine.dir/system_d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/temporal/CMakeFiles/bih_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bih_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/bih_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bih_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
