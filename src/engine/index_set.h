#ifndef TPCBIH_ENGINE_INDEX_SET_H_
#define TPCBIH_ENGINE_INDEX_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/scan_util.h"
#include "storage/btree_index.h"
#include "storage/hash_index.h"
#include "storage/rtree_index.h"

namespace bih {

// The secondary indexes of one physical partition, with a rule-based access
// path chooser. The chooser mirrors what the paper observed in the
// commercial optimizers: index plans are only selected when the estimated
// selectivity is high ("once the result becomes small enough relative to
// the original size, an index-based plan is used", Section 5.3.3); for
// broad temporal predicates the systems fall back to table scans.
class IndexSet {
 public:
  // Fraction of the partition an index access may target before the planner
  // prefers a table scan.
  static constexpr double kSelectivityThreshold = 0.25;

  bool empty() const { return indexes_.empty(); }
  void Clear() { indexes_.clear(); }

  // Registers an index and builds it by scanning existing rows through
  // `for_each_row` (scan-schema rows with stable row ids).
  void AddIndex(
      const IndexSpec& spec,
      const std::function<void(const std::function<void(RowId, const Row&)>&)>&
          for_each_row);

  // DML maintenance. Rows are scan-schema rows.
  void OnInsert(const Row& row, RowId rid);
  void OnDelete(const Row& row, RowId rid);
  // In-place update: delete + insert with the same row id.
  void OnUpdate(const Row& old_row, const Row& new_row, RowId rid);

  // Attempts to serve the request from one index. On success, emits
  // candidate row ids (residual predicates remain the caller's job),
  // stores the chosen index name and returns true. `partition_rows` feeds
  // the selectivity estimate.
  bool TryIndexAccess(const ScanRequest& req, const TemporalCols& tc,
                      size_t partition_rows, std::string* index_name,
                      const std::function<bool(RowId)>& emit) const;

  std::vector<std::string> index_names() const;

 private:
  struct IndexInfo {
    IndexSpec spec;
    std::unique_ptr<BTreeIndex> btree;
    std::unique_ptr<RTreeIndex> rtree;
    std::unique_ptr<HashIndex> hash;
  };

  static IndexKey KeyFor(const IndexInfo& info, const Row& row);
  static Rect RectFor(const IndexInfo& info, const Row& row);

  // Estimated fraction of entries a one-sided/two-sided bound on the first
  // key column selects, from the index's key extremes. Returns 1.0 when no
  // estimate is possible.
  static double EstimateFraction(const BTreeIndex& bt, const IndexKey& prefix,
                                 const Value& lo, const Value& hi);

  std::vector<IndexInfo> indexes_;
};

}  // namespace bih

#endif  // TPCBIH_ENGINE_INDEX_SET_H_
