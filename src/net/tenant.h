#ifndef TPCBIH_NET_TENANT_H_
#define TPCBIH_NET_TENANT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "server/admission.h"

namespace bih {
namespace net {

// Per-tenant admission limits, layered *above* the SessionManager's global
// admission control: a tenant first competes for its own bounded quota,
// then the admitted query competes for the shared engine. The layering is
// what isolates tenants — one tenant flooding its queue is shed at its own
// boundary and cannot starve the global queue dry for everyone else.
struct TenantQuota {
  int max_inflight = 4;
  int max_queued = 8;
  std::chrono::milliseconds retry_after{25};
};

// Snapshot of one tenant's counters.
struct TenantStats {
  uint64_t queries = 0;      // requests that reached the tenant boundary
  uint64_t ok = 0;
  uint64_t errors = 0;       // non-OK outcomes other than the ones below
  uint64_t shed = 0;         // kResourceExhausted (tenant or global quota)
  uint64_t cancelled = 0;
  uint64_t deadline = 0;
  uint64_t unavailable = 0;  // kUnavailable (read-only degradation)
  uint64_t bytes_out = 0;    // response payload bytes
};

// One tenant: a name, its own AdmissionController, and outcome counters.
// Counters are relaxed atomics — they are monotone tallies read only by
// stats reporting, never used for synchronization.
class TenantState {
 public:
  TenantState(std::string name, const TenantQuota& quota)
      : name_(std::move(name)),
        admission_(AdmissionConfig{quota.max_inflight, quota.max_queued,
                                   quota.retry_after}) {}

  TenantState(const TenantState&) = delete;
  TenantState& operator=(const TenantState&) = delete;

  const std::string& name() const { return name_; }
  AdmissionController& admission() { return admission_; }

  // Folds one finished request's outcome into the counters.
  void Account(const Status& s);
  // Adds one response's payload bytes (tallied where the frame is sent).
  void AddBytesOut(size_t n) {
    bytes_out_.fetch_add(n, std::memory_order_relaxed);
  }

  TenantStats GetStats() const;

 private:
  const std::string name_;
  AdmissionController admission_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_{0};
  std::atomic<uint64_t> unavailable_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

// Get-or-create registry keyed by tenant name. Tenants are never removed:
// a benchmark run's tenant set is small and fixed, and stable pointers let
// connections hold their TenantState* without further locking.
class TenantRegistry {
 public:
  explicit TenantRegistry(const TenantQuota& quota) : quota_(quota) {}

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // The returned pointer stays valid for the registry's lifetime.
  TenantState* GetOrCreate(const std::string& name);

  // {"<name>":{...counters...},...} — one member per tenant, names
  // JSON-escaped via the shared helper (tenant names arrive from the wire
  // and are attacker-shaped by definition). The server embeds this object
  // under its own "tenants" key.
  std::string StatsJson() const;

 private:
  const TenantQuota quota_;
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_
      GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace bih

#endif  // TPCBIH_NET_TENANT_H_
