#include "sql/parser.h"

#include <cstdlib>

#include "common/chrono.h"
#include "sql/lexer.h"

namespace bih {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status ParseDmlStatement(DmlStatement* out) {
    if (Accept("INSERT")) {
      out->kind = DmlStatement::Kind::kInsert;
      BIH_RETURN_IF_ERROR(Expect("INTO"));
      BIH_RETURN_IF_ERROR(ExpectIdent(&out->table));
      BIH_RETURN_IF_ERROR(Expect("VALUES"));
      BIH_RETURN_IF_ERROR(Expect("("));
      do {
        SqlExprPtr v;
        BIH_RETURN_IF_ERROR(ParseExpr(&v));
        out->values.push_back(std::move(v));
      } while (Accept(","));
      BIH_RETURN_IF_ERROR(Expect(")"));
    } else if (Accept("UPDATE")) {
      out->kind = DmlStatement::Kind::kUpdate;
      BIH_RETURN_IF_ERROR(ExpectIdent(&out->table));
      BIH_RETURN_IF_ERROR(ParsePortion(out));
      BIH_RETURN_IF_ERROR(Expect("SET"));
      do {
        std::string col;
        BIH_RETURN_IF_ERROR(ExpectIdent(&col));
        BIH_RETURN_IF_ERROR(Expect("="));
        SqlExprPtr v;
        BIH_RETURN_IF_ERROR(ParseExpr(&v));
        out->assignments.emplace_back(std::move(col), std::move(v));
      } while (Accept(","));
      if (Accept("WHERE")) {
        BIH_RETURN_IF_ERROR(ParseExpr(&out->where));
      }
    } else if (Accept("DELETE")) {
      out->kind = DmlStatement::Kind::kDelete;
      BIH_RETURN_IF_ERROR(Expect("FROM"));
      BIH_RETURN_IF_ERROR(ExpectIdent(&out->table));
      BIH_RETURN_IF_ERROR(ParsePortion(out));
      if (Accept("WHERE")) {
        BIH_RETURN_IF_ERROR(ParseExpr(&out->where));
      }
    } else {
      return Error("expected INSERT, UPDATE or DELETE");
    }
    Accept(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return Status::OK();
  }

  Status Parse(SelectStatement* out) {
    BIH_RETURN_IF_ERROR(Expect("SELECT"));
    out->distinct = Accept("DISTINCT");
    if (Accept("*")) {
      out->select_star = true;
    } else {
      do {
        SelectItem item;
        BIH_RETURN_IF_ERROR(ParseExpr(&item.expr));
        if (Accept("AS")) {
          BIH_RETURN_IF_ERROR(ExpectIdent(&item.alias));
        } else if (Peek().type == TokenType::kIdent && !IsClauseKeyword()) {
          item.alias = Peek().text;
          Advance();
        }
        out->items.push_back(std::move(item));
      } while (Accept(","));
    }
    BIH_RETURN_IF_ERROR(Expect("FROM"));
    BIH_RETURN_IF_ERROR(ParseTableRef(&out->from));
    while (Accept("INNER") || Check("JOIN")) {
      BIH_RETURN_IF_ERROR(Expect("JOIN"));
      Join join;
      BIH_RETURN_IF_ERROR(ParseTableRef(&join.table));
      BIH_RETURN_IF_ERROR(Expect("ON"));
      BIH_RETURN_IF_ERROR(ParseExpr(&join.on));
      out->joins.push_back(std::move(join));
    }
    if (Accept("WHERE")) {
      BIH_RETURN_IF_ERROR(ParseExpr(&out->where));
    }
    if (Accept("GROUP")) {
      BIH_RETURN_IF_ERROR(Expect("BY"));
      do {
        SqlExprPtr e;
        BIH_RETURN_IF_ERROR(ParseExpr(&e));
        out->group_by.push_back(std::move(e));
      } while (Accept(","));
    }
    if (Accept("HAVING")) {
      BIH_RETURN_IF_ERROR(ParseExpr(&out->having));
    }
    if (Accept("ORDER")) {
      BIH_RETURN_IF_ERROR(Expect("BY"));
      do {
        OrderItem item;
        BIH_RETURN_IF_ERROR(ParseExpr(&item.expr));
        if (Accept("DESC")) {
          item.ascending = false;
        } else {
          Accept("ASC");
        }
        out->order_by.push_back(std::move(item));
      } while (Accept(","));
    }
    if (Accept("LIMIT")) {
      if (Peek().type != TokenType::kNumber) {
        return Error("LIMIT expects a number");
      }
      out->limit = std::strtoll(Peek().text.c_str(), nullptr, 10);
      Advance();
    }
    Accept(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return Status::OK();
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }
  bool Check(const std::string& text) const { return Peek().text == text; }
  bool Accept(const std::string& text) {
    if (Check(text)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const std::string& text) {
    if (!Accept(text)) {
      return Error("expected '" + text + "' but found '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectIdent(std::string* out) {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected an identifier, found '" + Peek().text + "'");
    }
    *out = Peek().text;
    Advance();
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " (at offset " +
                                   std::to_string(Peek().offset) + ")");
  }

  // True when the upcoming identifier starts a clause, so it cannot be an
  // implicit alias.
  bool IsClauseKeyword() const {
    const std::string& t = Peek().text;
    return t == "FROM" || t == "WHERE" || t == "GROUP" || t == "ORDER" ||
           t == "LIMIT" || t == "JOIN" || t == "INNER" || t == "ON" ||
           t == "HAVING" || t == "FOR" || t == "AS";
  }

  // --- temporal clauses --------------------------------------------------

  // Parses a time literal: number, DATE '...' or TIMESTAMP '...'. Dates
  // resolve to day numbers for business time and to microseconds for
  // system time.
  Status ParseTimePoint(bool system_axis, int64_t* out) {
    if (Peek().type == TokenType::kNumber) {
      *out = std::strtoll(Peek().text.c_str(), nullptr, 10);
      Advance();
      return Status::OK();
    }
    bool is_date = Accept("DATE");
    bool is_ts = !is_date && Accept("TIMESTAMP");
    if (!is_date && !is_ts) {
      return Error("expected a time literal");
    }
    if (Peek().type != TokenType::kString) {
      return Error("expected a quoted date/timestamp");
    }
    std::string text = Peek().text;
    Advance();
    Date d;
    std::string date_part = text.substr(0, text.find(' '));
    if (!Date::Parse(date_part, &d)) {
      return Error("malformed date '" + text + "'");
    }
    int64_t micros = Timestamp::FromDate(d).micros();
    size_t sp = text.find(' ');
    if (sp != std::string::npos) {
      int hh = 0, mm = 0;
      double ss = 0;
      if (std::sscanf(text.c_str() + sp + 1, "%d:%d:%lf", &hh, &mm, &ss) >= 2) {
        micros += (int64_t{hh} * 3600 + int64_t{mm} * 60) *
                      Timestamp::kMicrosPerSecond +
                  static_cast<int64_t>(ss * 1e6);
      }
    }
    *out = system_axis || is_ts ? micros : int64_t{d.days()};
    return Status::OK();
  }

  Status ParseTemporalClause(TableRef* ref) {
    // Caller consumed FOR.
    bool system_axis;
    if (Accept("SYSTEM_TIME")) {
      system_axis = true;
    } else if (Accept("BUSINESS_TIME")) {
      system_axis = false;
      // Optional period name (tables can carry several application times).
      if (Peek().type == TokenType::kIdent && !Check("AS") && !Check("ALL") &&
          !Check("FROM")) {
        ref->app_period = Peek().text;
        Advance();
      }
    } else {
      return Error("expected SYSTEM_TIME or BUSINESS_TIME after FOR");
    }
    TemporalSelector sel;
    if (Accept("AS")) {
      BIH_RETURN_IF_ERROR(Expect("OF"));
      int64_t t;
      BIH_RETURN_IF_ERROR(ParseTimePoint(system_axis, &t));
      sel = TemporalSelector::AsOf(t);
    } else if (Accept("FROM")) {
      int64_t a, b;
      BIH_RETURN_IF_ERROR(ParseTimePoint(system_axis, &a));
      BIH_RETURN_IF_ERROR(Expect("TO"));
      BIH_RETURN_IF_ERROR(ParseTimePoint(system_axis, &b));
      sel = TemporalSelector::Between(a, b);
    } else if (Accept("ALL")) {
      sel = TemporalSelector::All();
    } else {
      return Error("expected AS OF, FROM .. TO, or ALL");
    }
    if (system_axis) {
      ref->system_time = sel;
    } else {
      ref->app_time = sel;
      ref->has_app_clause = true;
    }
    return Status::OK();
  }

  // [FOR PORTION OF <period> FROM <t1> TO <t2>] — SQL:2011 sequenced DML.
  Status ParsePortion(DmlStatement* out) {
    if (!Accept("FOR")) return Status::OK();
    BIH_RETURN_IF_ERROR(Expect("PORTION"));
    BIH_RETURN_IF_ERROR(Expect("OF"));
    BIH_RETURN_IF_ERROR(ExpectIdent(&out->portion_period));
    BIH_RETURN_IF_ERROR(Expect("FROM"));
    BIH_RETURN_IF_ERROR(ParseTimePoint(false, &out->portion_from));
    BIH_RETURN_IF_ERROR(Expect("TO"));
    BIH_RETURN_IF_ERROR(ParseTimePoint(false, &out->portion_to));
    out->has_portion = true;
    return Status::OK();
  }

  Status ParseTableRef(TableRef* ref) {
    BIH_RETURN_IF_ERROR(ExpectIdent(&ref->table));
    while (Accept("FOR")) {
      BIH_RETURN_IF_ERROR(ParseTemporalClause(ref));
    }
    if (Peek().type == TokenType::kIdent && !IsClauseKeyword()) {
      ref->alias = Peek().text;
      Advance();
    } else {
      ref->alias = ref->table;
    }
    // Temporal clauses may also follow the alias (Teradata style).
    while (Accept("FOR")) {
      BIH_RETURN_IF_ERROR(ParseTemporalClause(ref));
    }
    return Status::OK();
  }

  // --- expressions ---------------------------------------------------------

  Status ParseExpr(SqlExprPtr* out) { return ParseOr(out); }

  Status ParseOr(SqlExprPtr* out) {
    BIH_RETURN_IF_ERROR(ParseAnd(out));
    while (Accept("OR")) {
      SqlExprPtr rhs;
      BIH_RETURN_IF_ERROR(ParseAnd(&rhs));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kBinary;
      e->op = "OR";
      e->children = {*out, rhs};
      *out = std::move(e);
    }
    return Status::OK();
  }

  Status ParseAnd(SqlExprPtr* out) {
    BIH_RETURN_IF_ERROR(ParseNot(out));
    while (Accept("AND")) {
      SqlExprPtr rhs;
      BIH_RETURN_IF_ERROR(ParseNot(&rhs));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kBinary;
      e->op = "AND";
      e->children = {*out, rhs};
      *out = std::move(e);
    }
    return Status::OK();
  }

  Status ParseNot(SqlExprPtr* out) {
    if (Accept("NOT")) {
      SqlExprPtr inner;
      BIH_RETURN_IF_ERROR(ParseNot(&inner));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kUnary;
      e->op = "NOT";
      e->children = {inner};
      *out = std::move(e);
      return Status::OK();
    }
    return ParseComparison(out);
  }

  Status ParseComparison(SqlExprPtr* out) {
    BIH_RETURN_IF_ERROR(ParseAdditive(out));
    const std::string& t = Peek().text;
    if (t == "=" || t == "<>" || t == "<" || t == "<=" || t == ">" ||
        t == ">=") {
      std::string op = t;
      Advance();
      SqlExprPtr rhs;
      BIH_RETURN_IF_ERROR(ParseAdditive(&rhs));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kBinary;
      e->op = op;
      e->children = {*out, rhs};
      *out = std::move(e);
      return Status::OK();
    }
    if (Accept("BETWEEN")) {
      SqlExprPtr lo, hi;
      BIH_RETURN_IF_ERROR(ParseAdditive(&lo));
      BIH_RETURN_IF_ERROR(Expect("AND"));
      BIH_RETURN_IF_ERROR(ParseAdditive(&hi));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kBetween;
      e->children = {*out, lo, hi};
      *out = std::move(e);
      return Status::OK();
    }
    if (Accept("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return Error("LIKE expects a string literal");
      }
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kLike;
      e->op = Peek().text;  // pattern
      e->children = {*out};
      Advance();
      *out = std::move(e);
      return Status::OK();
    }
    return Status::OK();
  }

  Status ParseAdditive(SqlExprPtr* out) {
    BIH_RETURN_IF_ERROR(ParseMultiplicative(out));
    while (Check("+") || Check("-")) {
      std::string op = Peek().text;
      Advance();
      SqlExprPtr rhs;
      BIH_RETURN_IF_ERROR(ParseMultiplicative(&rhs));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kBinary;
      e->op = op;
      e->children = {*out, rhs};
      *out = std::move(e);
    }
    return Status::OK();
  }

  Status ParseMultiplicative(SqlExprPtr* out) {
    BIH_RETURN_IF_ERROR(ParsePrimary(out));
    while (Check("*") || Check("/")) {
      std::string op = Peek().text;
      Advance();
      SqlExprPtr rhs;
      BIH_RETURN_IF_ERROR(ParsePrimary(&rhs));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kBinary;
      e->op = op;
      e->children = {*out, rhs};
      *out = std::move(e);
    }
    return Status::OK();
  }

  static bool IsAggregate(const std::string& name) {
    return name == "SUM" || name == "AVG" || name == "COUNT" ||
           name == "MIN" || name == "MAX";
  }

  Status ParsePrimary(SqlExprPtr* out) {
    auto e = std::make_shared<SqlExpr>();
    if (Peek().type == TokenType::kNumber) {
      e->kind = SqlExpr::Kind::kLiteral;
      if (Peek().text.find('.') == std::string::npos) {
        e->literal = Value(static_cast<int64_t>(
            std::strtoll(Peek().text.c_str(), nullptr, 10)));
      } else {
        e->literal = Value(std::strtod(Peek().text.c_str(), nullptr));
      }
      Advance();
      *out = std::move(e);
      return Status::OK();
    }
    if (Peek().type == TokenType::kString) {
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = Value(Peek().text);
      Advance();
      *out = std::move(e);
      return Status::OK();
    }
    if (Check("(")) {
      Advance();
      BIH_RETURN_IF_ERROR(ParseExpr(out));
      return Expect(")");
    }
    if (Check("-")) {
      // Unary minus: 0 - x.
      Advance();
      SqlExprPtr inner;
      BIH_RETURN_IF_ERROR(ParsePrimary(&inner));
      auto zero = std::make_shared<SqlExpr>();
      zero->kind = SqlExpr::Kind::kLiteral;
      zero->literal = Value(int64_t{0});
      e->kind = SqlExpr::Kind::kBinary;
      e->op = "-";
      e->children = {zero, inner};
      *out = std::move(e);
      return Status::OK();
    }
    if (Peek().type != TokenType::kIdent) {
      return Error("expected an expression, found '" + Peek().text + "'");
    }
    std::string first = Peek().text;
    Advance();
    // DATE / TIMESTAMP literal.
    if ((first == "DATE" || first == "TIMESTAMP") &&
        Peek().type == TokenType::kString) {
      Date d;
      std::string text = Peek().text;
      if (!Date::Parse(text.substr(0, text.find(' ')), &d)) {
        return Error("malformed date '" + text + "'");
      }
      Advance();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = first == "DATE" ? Value(d) : Value(Timestamp::FromDate(d));
      *out = std::move(e);
      return Status::OK();
    }
    // Aggregate call.
    if (IsAggregate(first) && Check("(")) {
      Advance();
      e->kind = SqlExpr::Kind::kAggregate;
      e->func = first;
      if (first == "COUNT" && Accept("*")) {
        auto star = std::make_shared<SqlExpr>();
        star->kind = SqlExpr::Kind::kStar;
        e->children = {star};
      } else {
        SqlExprPtr arg;
        BIH_RETURN_IF_ERROR(ParseExpr(&arg));
        e->children = {arg};
      }
      BIH_RETURN_IF_ERROR(Expect(")"));
      *out = std::move(e);
      return Status::OK();
    }
    // Column reference, possibly qualified.
    e->kind = SqlExpr::Kind::kColumn;
    if (Check(".")) {
      Advance();
      e->qualifier = first;
      BIH_RETURN_IF_ERROR(ExpectIdent(&e->name));
    } else {
      e->name = first;
    }
    *out = std::move(e);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseSelect(const std::string& input, SelectStatement* out) {
  std::vector<Token> tokens;
  BIH_RETURN_IF_ERROR(Tokenize(input, &tokens));
  Parser parser(std::move(tokens));
  return parser.Parse(out);
}

Status ParseDml(const std::string& input, DmlStatement* out) {
  std::vector<Token> tokens;
  BIH_RETURN_IF_ERROR(Tokenize(input, &tokens));
  Parser parser(std::move(tokens));
  return parser.ParseDmlStatement(out);
}

bool LooksLikeDml(const std::string& input) {
  std::vector<Token> tokens;
  if (!Tokenize(input, &tokens).ok() || tokens.empty()) return false;
  const std::string& t = tokens[0].text;
  return t == "INSERT" || t == "UPDATE" || t == "DELETE";
}

}  // namespace sql
}  // namespace bih
