// Fixture: must trip [blocking-under-lock] when run with
// --no-block Staging::mu_ — Persist calls fdatasync while still holding
// the staging mutex, stalling every writer queued behind it.
class Staging {
 public:
  void Persist() {
    MutexLock lock(mu_);
    ++flushes_;
    ::fdatasync(fd_);
  }

 private:
  Mutex mu_;
  int flushes_ GUARDED_BY(mu_) = 0;
  const int fd_ = -1;
};
