// Fixture: must trip [raw-socket]. Global-scope socket syscalls outside
// src/net/ bypass the one layer that owns EINTR retries, poll-slice
// deadlines and the BIH_FAULT=net injection hooks; everything else is
// supposed to talk through net::Client / net::Server.
#include <sys/socket.h>

int OpenRawSocket() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  return fd;
}
