// Differential tests for the parallel plan operators: for every engine
// architecture and query class, the rows AND the per-node counters of a
// parallel run must be byte-identical to the serial run at any thread
// count. This is the executable form of the plan.h contract — parallelism
// is a speed knob, never an observable one.
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel.h"
#include "exec/plan.h"
#include "tpch/schema.h"
#include "workload/context.h"

namespace bih {
namespace {

// One small workload per engine letter, built once (the differential sweep
// below runs dozens of plans against each).
WorkloadContext& Workload(const std::string& letter) {
  static std::map<std::string, WorkloadContext>* cache =
      new std::map<std::string, WorkloadContext>();
  auto it = cache->find(letter);
  if (it == cache->end()) {
    WorkloadConfig cfg;
    cfg.engine_letter = letter;
    cfg.h = 0.001;
    cfg.m = 0.001;
    cfg.seed = 7;
    it = cache->emplace(letter, BuildWorkload(cfg)).first;
  }
  return it->second;
}

ScanScheduler& Pool() {
  static ScanScheduler* pool = new ScanScheduler(7);
  return *pool;
}

TemporalScanSpec FullHistory() {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::All();
  return spec;
}

ScanRequest Req(const std::string& table) {
  ScanRequest req;
  req.table = table;
  req.temporal = FullHistory();
  return req;
}

// The query classes of the sweep: a scan, the two parallel operators
// (sort-merge join, hash aggregation) and a composite tree above them.
PlanPtr BuildQuery(const std::string& cls) {
  if (cls == "scan") {
    return ScanPlan(Req("ORDERS"));
  }
  if (cls == "merge-join") {
    return MergeJoinPlan(ScanPlan(Req("CUSTOMER")), ScanPlan(Req("ORDERS")),
                         {customer::kCustKey}, {orders::kCustKey});
  }
  if (cls == "hash-agg") {
    return AggregatePlan(ScanPlan(Req("ORDERS")), {orders::kOrderStatus},
                         {{AggKind::kSum, Col(orders::kTotalPrice)},
                          {AggKind::kAvg, Col(orders::kTotalPrice)},
                          {AggKind::kMin, Col(orders::kTotalPrice)},
                          {AggKind::kMax, Col(orders::kTotalPrice)},
                          {AggKind::kCount, nullptr},
                          {AggKind::kCountDistinct, Col(orders::kCustKey)}});
  }
  // Composite: join feeds a grouped aggregation feeds a sort, so morsel
  // boundaries of one parallel operator become the input of the next.
  return SortPlan(
      AggregatePlan(
          MergeJoinPlan(ScanPlan(Req("CUSTOMER")), ScanPlan(Req("ORDERS")),
                        {customer::kCustKey}, {orders::kCustKey}),
          {customer::kNationKey},
          // CUSTOMER's scan width is 9 user columns + 2 system columns.
          {{AggKind::kSum, Col(11 + orders::kTotalPrice)},
           {AggKind::kCount, nullptr}}),
      {SortSpec{Col(0), true}});
}

const char* kClasses[] = {"scan", "merge-join", "hash-agg", "join-agg-sort"};
const char* kEngines[] = {"A", "B", "C", "D"};

// Flattened per-node counters, in preorder; serial and parallel runs must
// produce equal vectors (rows_output per node and the engine-side scan
// counters alike).
struct NodeStats {
  std::string kind;
  uint64_t rows_output;
  uint64_t scan_examined;
  uint64_t scan_output;
  int partitions;
  bool used_index;
  std::string index_name;

  bool operator==(const NodeStats& o) const {
    return kind == o.kind && rows_output == o.rows_output &&
           scan_examined == o.scan_examined && scan_output == o.scan_output &&
           partitions == o.partitions && used_index == o.used_index &&
           index_name == o.index_name;
  }
};

void CollectStats(const PlanNode& n, std::vector<NodeStats>* out) {
  out->push_back({n.KindName(), n.stats.rows_output, n.stats.scan.rows_examined,
                  n.stats.scan.rows_output, n.stats.scan.partitions_touched,
                  n.stats.scan.used_index, n.stats.scan.index_name});
  for (const PlanPtr& c : n.children) CollectStats(*c, out);
}

void ExpectRowsIdentical(const Rows& want, const Rows& got,
                         const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(want[r].size(), got[r].size()) << label << " row " << r;
    for (size_t c = 0; c < want[r].size(); ++c) {
      ASSERT_TRUE(want[r][c] == got[r][c])
          << label << " row " << r << " col " << c;
    }
  }
}

TEST(ParallelExecTest, EveryEngineClassAndThreadCountMatchesSerial) {
  for (const char* letter : kEngines) {
    TemporalEngine& eng = Workload(letter).eng();
    for (const char* cls : kClasses) {
      PlanPtr plan = BuildQuery(cls);
      const std::string label = std::string(letter) + "/" + cls;

      // Serial baseline. A tiny morsel keeps the test meaningful at the
      // small workload scale — a single-morsel input never engages.
      ExecOptions serial;
      serial.scan_threads = 1;
      serial.morsel_size = 64;
      Rows want;
      ASSERT_TRUE(Execute(*plan, eng, serial, nullptr, &want).ok()) << label;
      std::vector<NodeStats> want_stats;
      CollectStats(*plan, &want_stats);

      for (int threads = 2; threads <= 8; ++threads) {
        ExecOptions opts;
        opts.scan_threads = threads;
        opts.morsel_size = 64;
        opts.scheduler = &Pool();
        Rows got;
        ASSERT_TRUE(Execute(*plan, eng, opts, nullptr, &got).ok())
            << label << " threads=" << threads;
        ExpectRowsIdentical(want, got,
                            label + " threads=" + std::to_string(threads));
        std::vector<NodeStats> got_stats;
        CollectStats(*plan, &got_stats);
        EXPECT_EQ(want_stats, got_stats)
            << label << " threads=" << threads << ": counters diverged";
      }
    }
  }
}

TEST(ParallelExecTest, SchedulerDrainedAfterEveryRun) {
  TemporalEngine& eng = Workload("A").eng();
  PlanPtr plan = BuildQuery("join-agg-sort");
  ExecOptions opts;
  opts.scan_threads = 8;
  opts.morsel_size = 64;
  opts.scheduler = &Pool();
  Rows out;
  ASSERT_TRUE(Execute(*plan, eng, opts, nullptr, &out).ok());
  // Helpers park again once the last morsel retires; give the handoff a
  // moment but insist on full drain (a stuck helper is a real bug).
  for (int spin = 0; spin < 2000; ++spin) {
    if (Pool().idle_workers() == Pool().num_workers()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(Pool().num_workers(), Pool().idle_workers());
}

TEST(ParallelExecTest, MorselSizeDoesNotChangeOutput) {
  TemporalEngine& eng = Workload("B").eng();
  PlanPtr plan = BuildQuery("merge-join");
  ExecOptions serial;
  serial.scan_threads = 1;
  Rows want;
  ASSERT_TRUE(Execute(*plan, eng, serial, nullptr, &want).ok());
  for (uint64_t morsel : {16u, 64u, 1000u, 100000u}) {
    ExecOptions opts;
    opts.scan_threads = 4;
    opts.morsel_size = morsel;
    opts.scheduler = &Pool();
    Rows got;
    ASSERT_TRUE(Execute(*plan, eng, opts, nullptr, &got).ok());
    ExpectRowsIdentical(want, got, "morsel=" + std::to_string(morsel));
  }
}

}  // namespace
}  // namespace bih
