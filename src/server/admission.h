#ifndef TPCBIH_SERVER_ADMISSION_H_
#define TPCBIH_SERVER_ADMISSION_H_

#include <chrono>
#include <cstdint>

#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace bih {

// Limits for the admission controller. The defaults suit the tests; the
// driver sizes max_inflight from --max-inflight / --threads.
struct AdmissionConfig {
  // Queries executing at once; further arrivals queue.
  int max_inflight = 8;
  // Queries allowed to wait for a slot; beyond this the server sheds load.
  int max_queued = 16;
  // Hint clients receive in the kResourceExhausted message.
  std::chrono::milliseconds retry_after{50};
};

// Bounded admission with load shedding. Every query calls Admit() before it
// runs and Release() after (the session layer does both). Three outcomes:
//   - a free slot: run immediately;
//   - all slots busy but queue not full: block until a slot frees, watching
//     the query's own deadline/cancellation while waiting;
//   - queue full: fail fast with kResourceExhausted and a retry-after hint.
// Rejecting beyond a bounded queue is what keeps the server's latency
// distribution flat under overload instead of growing without bound.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& cfg) : cfg_(cfg) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Blocks until the query holds an execution slot. `ctx` (optional,
  // borrowed) is consulted while queued: a deadline or cancellation that
  // fires in the queue abandons the wait with that status. Returns
  // kResourceExhausted immediately when the queue is full.
  Status Admit(QueryContext* ctx);

  // Returns the slot taken by a successful Admit().
  void Release();

  // Recovers the retry-after hint (milliseconds) from a kResourceExhausted
  // status produced by Admit(). The hint rides in the message text
  // ("... retry after Nms"); this is the one sanctioned parser, so the
  // network layer can surface the hint as a structured field instead of
  // re-deriving it. Returns 0 for any other status.
  static uint32_t RetryAfterMs(const Status& s);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed = 0;             // rejected with kResourceExhausted
    uint64_t abandoned_queued = 0; // gave up waiting (deadline/cancel)
    int inflight = 0;
    int queued = 0;
  };
  Stats GetStats() const;

  const AdmissionConfig& config() const { return cfg_; }

 private:
  const AdmissionConfig cfg_;
  mutable Mutex mu_;
  CondVar cv_;
  int inflight_ GUARDED_BY(mu_) = 0;
  int queued_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t shed_ GUARDED_BY(mu_) = 0;
  uint64_t abandoned_queued_ GUARDED_BY(mu_) = 0;
};

}  // namespace bih

#endif  // TPCBIH_SERVER_ADMISSION_H_
