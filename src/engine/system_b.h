#ifndef TPCBIH_ENGINE_SYSTEM_B_H_
#define TPCBIH_ENGINE_SYSTEM_B_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "engine/index_set.h"
#include "engine/scan_util.h"
#include "exec/parallel.h"
#include "storage/hash_index.h"
#include "storage/row_table.h"

namespace bih {

// Architecture B: row store with native bitemporal support and the most
// elaborate bookkeeping of the four systems (Section 5.2):
//  * The current table holds no temporal information at all; system-time
//    metadata (start timestamp, transaction id, statement type) lives in a
//    vertically partitioned side table and must be joined back — by an
//    actual sort/merge join with sorting on both sides — whenever a query
//    involves system time.
//  * The history table extends the user schema with the system interval
//    plus the extra metadata columns.
//  * Updates are first buffered in an undo log; a simulated background
//    process moves them to the history table in batches, which produces the
//    97th-percentile loading spikes of Fig. 16.
class SystemBEngine : public TemporalEngine {
 public:
  // Undo entries accumulated before the background writer kicks in. Sized
  // so that a few percent of update transactions hit the drain, matching
  // the paper's observation that ~5% of loading latencies spike by orders
  // of magnitude (Section 5.8).
  static constexpr size_t kUndoFlushThreshold = 32;

  std::string name() const override { return "SystemB"; }

  Status DoCreateTable(const TableDef& def) override;
  Status CreateIndex(const IndexSpec& spec) override;
  Status DropIndexes(const std::string& table) override;
  const TableDef& GetTableDef(const std::string& table) const override;
  Schema ScanSchema(const std::string& table) const override;
  bool HasTable(const std::string& table) const override {
    return tables_.count(table) > 0;
  }

  Status DoInsert(const std::string& table, Row row) override;
  Status DoUpdateCurrent(const std::string& table, const std::vector<Value>& key,
                       const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateOverwrite(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoDeleteCurrent(const std::string& table,
                       const std::vector<Value>& key) override;
  Status DoDeleteSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period) override;

  std::vector<std::string> ListTables() const override;
  Status DoInstallVersion(const std::string& table, const Row& stored) override;

  void Scan(const ScanRequest& req, const RowCallback& cb) override;
  TableStats GetTableStats(const std::string& table) const override;

  // Drains every table's undo log so that concurrent snapshot readers never
  // trigger the background-writer simulation from the scan path.
  void PrepareForReads() override;

 private:
  // Metadata record of one current row in the vertical partition.
  struct VersionMeta {
    RowId row_ref = kInvalidRowId;
    int64_t sys_from = 0;
    int64_t txn_id = 0;
    int64_t stmt_type = 0;  // 0=insert 1=update 2=delete
  };

  struct Table {
    TableDef def;
    Schema stored_schema;   // scan schema: user + sys interval
    Schema history_schema;  // user + sys interval + txn metadata
    RowTable current;       // user columns only
    // Vertical partition. Kept in *update order*, not row order: every
    // update re-appends the row's metadata record, so reconstruction really
    // has to sort (Section 5.3.1 attributes B's overhead to this join).
    std::vector<VersionMeta> versions;
    std::unordered_map<RowId, size_t> version_slot;  // row -> versions index
    RowTable history;
    std::vector<Row> undo_log;  // closed versions awaiting the writer
    HashIndex pk_current;
    IndexSet current_indexes;   // indexed over scan-schema rows
    IndexSet history_indexes;

    Table(TableDef d, Schema stored, Schema hist)
        : def(std::move(d)),
          stored_schema(stored),
          history_schema(hist),
          current(def.schema),
          history(hist) {}
  };

  Table* Find(const std::string& name);
  const Table* Find(const std::string& name) const;

  IndexKey KeyOf(const Table& t, const Row& user_row) const;
  Row StoredRowOf(const Table& t, RowId rid) const;

  RowId InsertCurrent(Table* t, Row user_row, Timestamp ts, int stmt);
  void CloseVersion(Table* t, RowId rid, Timestamp ts, int stmt);
  void FlushUndo(Table* t);

  Status ApplySequenced(const std::string& table, const std::vector<Value>& key,
                        int period_index, const Period& period,
                        const std::vector<ColumnAssignment>& set, int mode);

  void ScanCurrentWithReconstruction(Table* t, const ScanRequest& req,
                                     const TemporalCols& tc,
                                     const ParallelScanPlan& plan,
                                     ExecStats* stats, bool* stopped,
                                     const RowCallback& cb);

  // Morsel-range entry points of the three fallback scan loops; each
  // filters slots [begin, end) into `out` and is thread-safe for
  // concurrent morsels (pure reads; the undo log is drained before any
  // history scan fans out).
  void ScanCurrentMorsel(const Table& t, const ScanRequest& req,
                         const TemporalCols& tc, int64_t now, uint64_t begin,
                         uint64_t end, const std::atomic<bool>& stop,
                         MorselOutput* out) const;
  void ScanReconstructionMorsel(const Table& t,
                                const std::vector<int64_t>& sys_from_of,
                                const ScanRequest& req, const TemporalCols& tc,
                                int64_t now, uint64_t begin, uint64_t end,
                                const std::atomic<bool>& stop,
                                MorselOutput* out) const;
  void ScanHistoryMorsel(const Table& t, const ScanRequest& req,
                         const TemporalCols& tc, int64_t now, uint64_t begin,
                         uint64_t end, const std::atomic<bool>& stop,
                         MorselOutput* out) const;

  std::unordered_map<std::string, Table> tables_;
  int64_t next_txn_id_ = 1;
};

}  // namespace bih

#endif  // TPCBIH_ENGINE_SYSTEM_B_H_
