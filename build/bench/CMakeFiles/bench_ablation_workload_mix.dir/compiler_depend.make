# Empty compiler generated dependencies file for bench_ablation_workload_mix.
# This may be replaced when dependencies are built.
