#include "catalog/schema.h"

namespace bih {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
    case ColumnType::kDate:
      return "DATE";
    case ColumnType::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::ColumnIndex(const std::string& name) const {
  int i = FindColumn(name);
  BIH_CHECK_MSG(i >= 0, "no column named " + name);
  return i;
}

Schema Schema::Extend(const std::vector<Column>& extra) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), extra.begin(), extra.end());
  return Schema(std::move(cols));
}

Schema Schema::Project(const std::vector<int>& cols) const {
  std::vector<Column> out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(columns_[static_cast<size_t>(c)]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) s += ", ";
    s += columns_[i].name;
    s += " ";
    s += ColumnTypeName(columns_[i].type);
  }
  s += ")";
  return s;
}

int TableDef::FindAppPeriod(const std::string& period_name) const {
  for (size_t i = 0; i < app_periods.size(); ++i) {
    if (app_periods[i].name == period_name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace bih
