#ifndef TPCBIH_COMMON_STATUS_H_
#define TPCBIH_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace bih {

// Lightweight error propagation without exceptions. Mirrors the
// absl::Status/arrow::Status pattern used by database codebases: functions
// that can fail return a Status (or StatusOr-like pair) and callers decide
// how to react.
//
// The class itself is [[nodiscard]]: any call that returns a Status and
// ignores it is a compile error under -Werror=unused-result (set for the
// whole tree), so a dropped recovery/load/commit status cannot slip through
// review. Deliberate drops must say so with a (void) cast and a comment.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kUnimplemented,
    kInternal,
    kIoError,
    // Concurrent-session outcomes (src/server/): the query ran out of its
    // deadline budget, was cancelled by the client or the watchdog, or was
    // shed by admission control before it started.
    kDeadlineExceeded,
    kCancelled,
    kResourceExhausted,
    // The service is temporarily refusing the operation but expects to (or
    // could, after operator action) accept it again: the canonical producer
    // is a SessionManager whose WAL went dead and which degraded to
    // read-only. Unlike kIoError this is a *policy* answer — the caller is
    // told what still works (reads) and what to do (retry against a
    // recovered store), not handed a raw device error.
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  // `retry_hint` tells the caller how to get un-stuck ("recover from
  // checkpoint and retry", "retry read-only"); it is folded into the
  // message after a fixed marker so drivers can surface it separately.
  static Status Unavailable(std::string msg, std::string retry_hint = "") {
    if (!retry_hint.empty()) {
      msg += kRetryHintMarker;
      msg += retry_hint;
    }
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // The retry hint carried by an Unavailable status, or "" when none was
  // attached (or the code is not kUnavailable).
  std::string retry_hint() const;

  std::string ToString() const;

 private:
  static constexpr const char* kRetryHintMarker = "; retry: ";

 private:
  Code code_;
  std::string message_;
};

// Terminates the process with a message when an internal invariant is
// violated. Used for programming errors, not for data-dependent failures.
[[noreturn]] void FatalError(const char* file, int line, const std::string& msg);

#define BIH_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::bih::FatalError(__FILE__, __LINE__, "check failed: " #cond);  \
    }                                                                 \
  } while (0)

#define BIH_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::bih::FatalError(__FILE__, __LINE__,                             \
                        std::string("check failed: " #cond ": ") + (msg)); \
    }                                                                   \
  } while (0)

#define BIH_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::bih::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace bih

#endif  // TPCBIH_COMMON_STATUS_H_
