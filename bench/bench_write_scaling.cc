// Update-stream writer scaling: the same per-key update stream driven
// through the session layer's two write paths — single-lane (group commit
// off: every commit pays its own fdatasync under the writer lock) and
// group commit (writers on distinct admission shards stage under the lock,
// then share batched fdatasyncs) — at 1, 2, 4 and 8 writer threads. Not a
// paper figure: the EDBT 2014 study drives a single writer; this is the
// question its successor would ask next, and the acceptance gate for the
// group-commit write path (>= 2.5x at 4 writers over single-lane).
//
// Durability is real: this bench never sets BIH_NO_FSYNC (and scrubs it if
// inherited), because the whole point of group commit is amortizing the
// device wait — with syncs stubbed out both lanes measure the same lock.
//
// Knobs: BIH_WSCALE_OPS updates per thread (400), BIH_WSCALE_ROWS fixture
// size (512), BIH_WSCALE_SHARDS admission shards (16). Output: a human
// table plus BENCH_write_scaling.json (path via BIH_WRITE_SCALING_JSON).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/schema.h"
#include "common/period.h"
#include "engine/engine.h"
#include "server/session.h"

namespace bih {
namespace bench {
namespace {

int EnvInt(const char* name, int fallback, int lo, int hi) {
  if (const char* v = std::getenv(name)) {
    const int x = std::atoi(v);
    if (x >= lo && x <= hi) return x;
  }
  return fallback;
}

std::unique_ptr<TemporalEngine> BuildEngine(int64_t rows) {
  auto engine = MakeEngine("A");
  TableDef def;
  def.name = "ITEM";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"PRICE", ColumnType::kDouble},
                       {"NOTE", ColumnType::kString},
                       {"VB", ColumnType::kDate},
                       {"VE", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"VALIDITY", 3, 4}};
  def.system_versioned = true;
  if (!engine->CreateTable(def).ok()) return nullptr;
  for (int64_t i = 1; i <= rows; ++i) {
    Status st = engine->Insert(
        "ITEM", {Value(i), Value(static_cast<double>(i) * 0.5),
                 Value("n" + std::to_string(i % 89)), Value(int64_t{0}),
                 Value(Period::kForever)});
    if (!st.ok()) return nullptr;
  }
  return engine;
}

struct LaneResult {
  double ups = 0.0;          // acknowledged updates per second
  uint64_t errors = 0;
  uint64_t syncs = 0;        // device syncs the run paid
  uint64_t groups = 0;       // group-commit: syncs led by a waiter
  uint64_t acks = 0;         // group-commit: tickets acknowledged
  uint64_t max_group = 0;    // largest LSN advance one sync covered
};

// One measured run: `threads` writers stream UpdateCurrent over disjoint
// key stripes of the preloaded table through the sharded session path.
LaneResult RunLane(bool group_commit, int threads, int ops, int64_t rows,
                   int shards, const std::string& wal_path) {
  LaneResult r;
  std::remove(wal_path.c_str());
  auto engine = BuildEngine(rows);
  if (engine == nullptr) return r;
  // Attach the log after the fixture load: preloading is not the measured
  // stream, and this keeps both lanes' logs byte-comparable.
  if (!engine->EnableWal(wal_path).ok()) return r;

  SessionConfig cfg;
  cfg.group_commit = group_commit;
  cfg.write_shards = shards;
  cfg.watchdog_period = std::chrono::milliseconds(0);
  SessionManager session(engine.get(), cfg);

  std::vector<uint64_t> errs(static_cast<size_t>(threads), 0);
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      // Disjoint stripes: writer t updates keys t, t+threads, t+2*threads…
      // so no two writers ever contend on one key's shard by necessity.
      for (int i = 0; i < ops; ++i) {
        const int64_t key =
            1 + (static_cast<int64_t>(t) +
                 static_cast<int64_t>(i) * threads) % rows;
        Status st = session.UpdateCurrent(
            "ITEM", {Value(key)},
            {{1, Value(static_cast<double>(i) + 0.25)}});
        if (!st.ok()) ++errs[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& th : ts) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  for (uint64_t e : errs) r.errors += e;
  const uint64_t total = static_cast<uint64_t>(threads) *
                         static_cast<uint64_t>(ops) -
                         r.errors;
  r.ups = wall > 0.0 ? static_cast<double>(total) / wall : 0.0;
  r.syncs = engine->wal() != nullptr ? engine->wal()->syncs() : 0;
  GroupCommit::Stats gs = session.GetGroupCommitStats();
  r.groups = gs.groups;
  r.acks = gs.acks;
  r.max_group = gs.max_group;
  return r;
}

int Run() {
  // Group commit only helps when the device wait is real; make sure an
  // inherited fsync stub cannot silently turn this into a lock benchmark.
  ::unsetenv("BIH_NO_FSYNC");

  const int ops = EnvInt("BIH_WSCALE_OPS", 400, 1, 1000000);
  const int64_t rows = EnvInt("BIH_WSCALE_ROWS", 512, 8, 1000000);
  const int shards = EnvInt("BIH_WSCALE_SHARDS", 16, 1, 256);
  const std::vector<int> lanes = {1, 2, 4, 8};

  std::printf("bench_write_scaling: %d updates/thread over %lld keys, "
              "%d shards, real fdatasync (System A)\n",
              ops, static_cast<long long>(rows), shards);

  std::string json_lanes;
  double single4 = 0.0, group4 = 0.0;
  for (int threads : lanes) {
    const std::string tag = std::to_string(threads);
    LaneResult single = RunLane(false, threads, ops, rows, shards,
                                "bench_wscale_single_" + tag + ".wal");
    LaneResult group = RunLane(true, threads, ops, rows, shards,
                               "bench_wscale_group_" + tag + ".wal");
    const double speedup = single.ups > 0.0 ? group.ups / single.ups : 0.0;
    if (threads == 4) {
      single4 = single.ups;
      group4 = group.ups;
    }
    std::printf("%2d writers  single-lane %9.0f upd/s (%llu syncs)   "
                "group %9.0f upd/s (%llu syncs, %llu groups / %llu acks, "
                "max batch %llu)   speedup %.2fx\n",
                threads, single.ups,
                static_cast<unsigned long long>(single.syncs), group.ups,
                static_cast<unsigned long long>(group.syncs),
                static_cast<unsigned long long>(group.groups),
                static_cast<unsigned long long>(group.acks),
                static_cast<unsigned long long>(group.max_group), speedup);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"threads\":%d,\"single_lane_ups\":%.1f,\"single_lane_syncs\":"
        "%llu,\"group_ups\":%.1f,\"group_syncs\":%llu,\"groups\":%llu,"
        "\"acks\":%llu,\"max_group\":%llu,\"errors\":%llu,\"speedup\":%.3f}",
        json_lanes.empty() ? "" : ",", threads, single.ups,
        static_cast<unsigned long long>(single.syncs), group.ups,
        static_cast<unsigned long long>(group.syncs),
        static_cast<unsigned long long>(group.groups),
        static_cast<unsigned long long>(group.acks),
        static_cast<unsigned long long>(group.max_group),
        static_cast<unsigned long long>(single.errors + group.errors),
        speedup);
    json_lanes += buf;
  }

  const double speedup4 = single4 > 0.0 ? group4 / single4 : 0.0;
  std::printf("group commit at 4 writers: %.2fx over single-lane "
              "(acceptance gate: >= 2.5x)\n",
              speedup4);

  const char* path = std::getenv("BIH_WRITE_SCALING_JSON");
  const std::string out =
      path != nullptr ? path : "BENCH_write_scaling.json";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"write_scaling\",\"ops_per_thread\":%d,"
               "\"rows\":%lld,\"shards\":%d,\"speedup_at_4_writers\":%.3f,"
               "\"lanes\":[%s]}\n",
               ops, static_cast<long long>(rows), shards, speedup4,
               json_lanes.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() { return bih::bench::Run(); }
