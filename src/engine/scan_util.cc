#include "engine/scan_util.h"

namespace bih {

TemporalCols ResolveTemporalCols(const TableDef& def, int app_period_index) {
  TemporalCols tc;
  tc.sys_from = def.schema.num_columns();
  tc.sys_to = def.schema.num_columns() + 1;
  if (!def.app_periods.empty()) {
    BIH_CHECK(app_period_index >= 0 &&
              app_period_index < static_cast<int>(def.app_periods.size()));
    tc.app_begin = def.app_periods[static_cast<size_t>(app_period_index)].begin_col;
    tc.app_end = def.app_periods[static_cast<size_t>(app_period_index)].end_col;
  }
  return tc;
}

Period RowSystemPeriod(const Row& row, const TemporalCols& tc) {
  const Value& from = row[static_cast<size_t>(tc.sys_from)];
  const Value& to = row[static_cast<size_t>(tc.sys_to)];
  return Period(from.is_null() ? Period::kBeginningOfTime : from.AsInt(),
                to.is_null() ? Period::kForever : to.AsInt());
}

Period RowAppPeriod(const Row& row, const TemporalCols& tc) {
  const Value& b = row[static_cast<size_t>(tc.app_begin)];
  const Value& e = row[static_cast<size_t>(tc.app_end)];
  return Period(b.is_null() ? Period::kBeginningOfTime : b.AsInt(),
                e.is_null() ? Period::kForever : e.AsInt());
}

bool MatchesTemporal(const Row& row, const TemporalScanSpec& spec,
                     const TemporalCols& tc, int64_t now) {
  if (!spec.system_time.Matches(RowSystemPeriod(row, tc), now)) return false;
  if (tc.app_begin >= 0) {
    // Application time "now" is the date corresponding to the system clock;
    // the benchmark always pins application time explicitly, so the implicit
    // case simply accepts all versions (non-sequenced semantics).
    if (spec.app_time.kind != TemporalSelector::Kind::kImplicitCurrent &&
        !spec.app_time.Matches(RowAppPeriod(row, tc), now)) {
      return false;
    }
  }
  return true;
}

bool MatchesConstraints(const Row& row, const ScanRequest& req) {
  for (const auto& [col, val] : req.equals) {
    if (row[static_cast<size_t>(col)].Compare(val) != 0) return false;
  }
  if (req.range_col >= 0) {
    const Value& v = row[static_cast<size_t>(req.range_col)];
    if (v.is_null()) return false;
    if (!req.range_lo.is_null() && v.Compare(req.range_lo) < 0) return false;
    if (!req.range_hi.is_null() && v.Compare(req.range_hi) > 0) return false;
  }
  return true;
}

}  // namespace bih
