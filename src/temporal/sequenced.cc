#include "temporal/sequenced.h"

namespace bih {

namespace {

Row WithAssignments(Row row, const std::vector<ColumnAssignment>& set) {
  for (const ColumnAssignment& a : set) {
    row[static_cast<size_t>(a.column)] = a.value;
  }
  return row;
}

}  // namespace

void SetRowPeriod(Row* row, int begin_col, int end_col, const Period& p) {
  (*row)[static_cast<size_t>(begin_col)] = Value(p.begin);
  (*row)[static_cast<size_t>(end_col)] = Value(p.end);
}

SequencedOps PlanSequencedUpdate(const std::vector<Row>& versions,
                                 int begin_col, int end_col,
                                 const Period& update_period,
                                 const std::vector<ColumnAssignment>& set) {
  SequencedOps ops;
  for (size_t i = 0; i < versions.size(); ++i) {
    const Row& v = versions[i];
    Period p = RowPeriod(v, begin_col, end_col);
    if (!p.Overlaps(update_period)) continue;
    ops.to_close.push_back(i);
    // Leftover before the update window keeps the old values.
    if (p.begin < update_period.begin) {
      Row left = v;
      SetRowPeriod(&left, begin_col, end_col,
                   Period(p.begin, update_period.begin));
      ops.to_insert.push_back(std::move(left));
    }
    // Overlap carries the assignments.
    Period mid = p.Intersect(update_period);
    Row changed = WithAssignments(v, set);
    SetRowPeriod(&changed, begin_col, end_col, mid);
    ops.to_insert.push_back(std::move(changed));
    // Leftover after the window keeps the old values.
    if (p.end > update_period.end) {
      Row right = v;
      SetRowPeriod(&right, begin_col, end_col, Period(update_period.end, p.end));
      ops.to_insert.push_back(std::move(right));
    }
  }
  return ops;
}

SequencedOps PlanSequencedDelete(const std::vector<Row>& versions,
                                 int begin_col, int end_col,
                                 const Period& delete_period) {
  SequencedOps ops;
  for (size_t i = 0; i < versions.size(); ++i) {
    const Row& v = versions[i];
    Period p = RowPeriod(v, begin_col, end_col);
    if (!p.Overlaps(delete_period)) continue;
    ops.to_close.push_back(i);
    if (p.begin < delete_period.begin) {
      Row left = v;
      SetRowPeriod(&left, begin_col, end_col,
                   Period(p.begin, delete_period.begin));
      ops.to_insert.push_back(std::move(left));
    }
    if (p.end > delete_period.end) {
      Row right = v;
      SetRowPeriod(&right, begin_col, end_col, Period(delete_period.end, p.end));
      ops.to_insert.push_back(std::move(right));
    }
  }
  return ops;
}

SequencedOps PlanOverwriteUpdate(const std::vector<Row>& versions,
                                 int begin_col, int end_col,
                                 const Period& update_period,
                                 const std::vector<ColumnAssignment>& set) {
  SequencedOps ops;
  const Row* base = nullptr;
  int64_t best_begin = Period::kBeginningOfTime;
  for (size_t i = 0; i < versions.size(); ++i) {
    const Row& v = versions[i];
    Period p = RowPeriod(v, begin_col, end_col);
    if (!p.Overlaps(update_period)) continue;
    ops.to_close.push_back(i);
    // Leftovers outside the overwrite window survive.
    if (p.begin < update_period.begin) {
      Row left = v;
      SetRowPeriod(&left, begin_col, end_col,
                   Period(p.begin, update_period.begin));
      ops.to_insert.push_back(std::move(left));
    }
    if (p.end > update_period.end) {
      Row right = v;
      SetRowPeriod(&right, begin_col, end_col, Period(update_period.end, p.end));
      ops.to_insert.push_back(std::move(right));
    }
    if (p.begin >= best_begin) {
      best_begin = p.begin;
      base = &v;
    }
  }
  if (base != nullptr) {
    Row merged = WithAssignments(*base, set);
    SetRowPeriod(&merged, begin_col, end_col, update_period);
    ops.to_insert.push_back(std::move(merged));
  }
  return ops;
}

}  // namespace bih
