#ifndef TPCBIH_SQL_PARSER_H_
#define TPCBIH_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace bih {
namespace sql {

// Parses one temporal SELECT statement. Supported grammar (a pragmatic
// subset of SQL:2011's temporal extensions):
//
//   SELECT <expr [AS name], ...> | *
//   FROM <table> [FOR SYSTEM_TIME AS OF <t> | FROM <t1> TO <t2> | ALL]
//                [FOR BUSINESS_TIME [<period>] AS OF <t> | FROM..TO | ALL]
//                [<alias>]
//   [JOIN <table> [temporal clauses] [<alias>] ON <expr>]...
//   [WHERE <expr>] [GROUP BY <expr>, ...] [HAVING <expr>]
//   [ORDER BY <expr> [ASC|DESC], ...] [LIMIT <n>]
//
// Time literals: a bare number (micros for system time, day number for
// business time), DATE 'YYYY-MM-DD', or TIMESTAMP 'YYYY-MM-DD[ hh:mm:ss]'.
// Expressions: arithmetic, comparisons, AND/OR/NOT, BETWEEN,
// LIKE 'x%'/'%x%'/'%x' and the aggregates SUM/AVG/COUNT/MIN/MAX.
Status ParseSelect(const std::string& input, SelectStatement* out);

// Parses one DML statement:
//   INSERT INTO <table> VALUES (<literal>, ...)
//   UPDATE <table> [FOR PORTION OF <period> FROM <t1> TO <t2>]
//     SET <col> = <literal expr>, ... [WHERE <expr>]
//   DELETE FROM <table> [FOR PORTION OF <period> FROM <t1> TO <t2>]
//     [WHERE <expr>]
// FOR PORTION OF maps to the SEQUENCED application-time model.
Status ParseDml(const std::string& input, DmlStatement* out);

// True when the statement starts with INSERT/UPDATE/DELETE.
bool LooksLikeDml(const std::string& input);

}  // namespace sql
}  // namespace bih

#endif  // TPCBIH_SQL_PARSER_H_
