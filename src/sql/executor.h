#ifndef TPCBIH_SQL_EXECUTOR_H_
#define TPCBIH_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/operators.h"
#include "sql/ast.h"

namespace bih {
namespace sql {

struct SqlResult {
  std::vector<std::string> columns;
  Rows rows;
};

// Binds and executes a parsed statement against an engine. `ctx`
// (optional, borrowed) carries the request deadline and cancellation: it is
// consulted per scanned row and at every operator boundary, and an
// interrupted query returns the context's verdict with `out` untouched by
// partial results.
Status ExecuteSelect(TemporalEngine& engine, const SelectStatement& stmt,
                     SqlResult* out, QueryContext* ctx = nullptr);

// Executes a parsed DML statement; `out` reports the number of affected
// keys in a single-row result. Assignments and inserted values must be
// constant expressions (the engine applies one value set per key). `ctx`
// is checked between keys; an interruption mid-batch commits the keys
// already applied (the batch is a sequence of single-key statements, not
// one atomic statement) and reports the verdict.
Status ExecuteDml(TemporalEngine& engine, const DmlStatement& stmt,
                  SqlResult* out, QueryContext* ctx = nullptr);

// Parses + executes in one step; dispatches on the leading keyword
// (SELECT vs INSERT/UPDATE/DELETE).
Status ExecuteSql(TemporalEngine& engine, const std::string& text,
                  SqlResult* out, QueryContext* ctx = nullptr);

}  // namespace sql
}  // namespace bih

#endif  // TPCBIH_SQL_EXECUTOR_H_
