// Figure 5: temporal slicing (T6) — pin one dimension, retrieve the full
// range of the other — plus the simulated-application-time variant (T9)
// and the ALL upper bound.
//
// Expected shape (Section 5.3.4): slicing is *cheaper* than point-point
// time travel for the column store; indexes bring little because result
// sets are large; simulated app time behaves like the native clause.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "exec/parallel.h"

namespace bih {
namespace bench {
namespace {

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  for (const std::string& letter : AllEngineLetters()) {
    TemporalEngine* e = &w.Engine(letter);
    auto add = [&](const std::string& name, auto fn) {
      benchmark::RegisterBenchmark(("Fig5/" + name + "/System" + letter).c_str(),
                                   [fn, e](benchmark::State& state) {
                                     for (auto _ : state) {
                                       benchmark::DoNotOptimize(fn(*e));
                                     }
                                   })
          ->Unit(benchmark::kMillisecond);
    };
    const int64_t app_mid = ctx.app_mid;
    const Timestamp sys_mid = ctx.sys_mid;
    add("T6_app_point_over_sys", [app_mid](TemporalEngine& eng) {
      return T6AppPointSysAll(eng, app_mid);
    });
    add("T6_simulated_app_over_sys", [app_mid](TemporalEngine& eng) {
      return T9SimulatedAppSlice(eng, app_mid);
    });
    add("T6_sys_point_over_app", [sys_mid](TemporalEngine& eng) {
      return T6SysPointAppAll(eng, sys_mid);
    });
    add("T5_all_versions", [](TemporalEngine& eng) { return QueryAll(eng); });

    // Morsel-parallel scaling sweep on the scan-bound full slices: the same
    // queries at 1/2/4/8 scan threads (DESIGN.md "Parallel execution").
    // 1 thread takes the untouched serial path, so threads:1 vs the plain
    // registration above shows the parallel plumbing's overhead is nil.
    auto add_mt = [&](const std::string& name, int t, auto fn) {
      benchmark::RegisterBenchmark(("Fig5/" + name + "/threads:" +
                                    std::to_string(t) + "/System" + letter)
                                       .c_str(),
                                   [fn, e, t](benchmark::State& state) {
                                     SetDefaultScanThreads(t);
                                     for (auto _ : state) {
                                       benchmark::DoNotOptimize(fn(*e));
                                     }
                                     SetDefaultScanThreads(0);
                                   })
          ->Unit(benchmark::kMillisecond);
    };
    for (int t : {1, 2, 4, 8}) {
      add_mt("T6_sys_point_over_app", t, [sys_mid](TemporalEngine& eng) {
        return T6SysPointAppAll(eng, sys_mid);
      });
      add_mt("T5_all_versions", t,
             [](TemporalEngine& eng) { return QueryAll(eng); });
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
