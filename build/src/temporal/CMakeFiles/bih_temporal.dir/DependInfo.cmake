
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/sequenced.cc" "src/temporal/CMakeFiles/bih_temporal.dir/sequenced.cc.o" "gcc" "src/temporal/CMakeFiles/bih_temporal.dir/sequenced.cc.o.d"
  "/root/repo/src/temporal/temporal.cc" "src/temporal/CMakeFiles/bih_temporal.dir/temporal.cc.o" "gcc" "src/temporal/CMakeFiles/bih_temporal.dir/temporal.cc.o.d"
  "/root/repo/src/temporal/timeline.cc" "src/temporal/CMakeFiles/bih_temporal.dir/timeline.cc.o" "gcc" "src/temporal/CMakeFiles/bih_temporal.dir/timeline.cc.o.d"
  "/root/repo/src/temporal/timeline_index.cc" "src/temporal/CMakeFiles/bih_temporal.dir/timeline_index.cc.o" "gcc" "src/temporal/CMakeFiles/bih_temporal.dir/timeline_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bih_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/bih_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
