#ifndef TPCBIH_ENGINE_ENGINE_H_
#define TPCBIH_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/chrono.h"
#include "common/query_context.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "durability/wal.h"
#include "exec/exec_options.h"
#include "temporal/clock.h"
#include "temporal/sequenced.h"
#include "temporal/temporal.h"

namespace bih {

class ScanScheduler;  // src/exec/parallel.h

// Index structure choices offered by the tuning experiments (Section 5.1).
enum class IndexType { kBTree, kRTree, kHash };

// Which physical partition of a table an index is built on. Engines without
// a current/history split treat kCurrent/kHistory as the single table.
enum class PartitionSel { kCurrent, kHistory };

// A tuning index request. `columns` are positions in the table's *scan
// schema* (user columns followed by the two system-time columns, see
// TemporalEngine::ScanSchema). For kRTree the columns must name one or two
// (begin, end) period column pairs.
struct IndexSpec {
  std::string table;
  PartitionSel partition = PartitionSel::kCurrent;
  std::vector<int> columns;
  IndexType type = IndexType::kBTree;
  std::string name;
};

// Execution counters for the last Scan; the tests assert plan shape (which
// partitions were touched, whether an index was chosen) and the benches
// report them next to timings.
struct ExecStats {
  uint64_t rows_examined = 0;
  uint64_t rows_output = 0;
  int partitions_touched = 0;
  // True when any scanned partition was served by an index; index_name then
  // lists the chosen index of each served partition in scan order,
  // comma-separated. Engines that never consult indexes (System C ignores
  // them, Section 5.3.2) leave both at their defaults.
  bool used_index = false;
  std::string index_name;
  bool touched_history = false;
};

// One table access issued by a benchmark query.
struct ScanRequest {
  std::string table;
  TemporalScanSpec temporal;
  // Equality constraints on scan-schema columns (typically the primary key).
  std::vector<std::pair<int, Value>> equals;
  // Optional range constraint lo <= col <= hi; a null Value leaves the side
  // unbounded. Used by the value-in-time queries (K6).
  int range_col = -1;
  Value range_lo;
  Value range_hi;
  // Columns the consumer will read; empty means all. Column-store engines
  // only guarantee the projected columns are populated in emitted rows.
  std::vector<int> projection;
  // Cooperative deadline/cancellation token (borrowed, may be null). The
  // scan loops consult it per row and stop early once it trips; the token
  // then carries kDeadlineExceeded or kCancelled. Engine state is never
  // touched by an interrupted read.
  QueryContext* ctx = nullptr;
  // When set, the scan's counters are written here instead of the engine's
  // last_stats() slot. Publication to the shared slot is serialized (no
  // data race), but concurrent scans overwrite each other's counters
  // last-writer-wins — a caller that needs the counters of *its own* scan
  // (the morsel scheduler, join probes, the server layer) sets this.
  ExecStats* stats = nullptr;
  // Consolidated intra-query parallelism knobs (threads, morsel size, worker
  // pool). Unset fields resolve through the session's ExecOptions and then
  // the process defaults; see exec/exec_options.h. Index access paths are
  // always serial. Results and counters are byte-identical to the serial
  // scan at any setting.
  ExecOptions exec;
};

// Per-table size information (Section 5.2 architecture analysis).
struct TableStats {
  size_t current_rows = 0;
  size_t history_rows = 0;
  size_t pending_undo = 0;  // System B only
};

using RowCallback = std::function<bool(const Row&)>;

// Abstract bitemporal storage engine. The four implementations reproduce
// the four anonymized systems of the paper (see DESIGN.md for the mapping).
//
// Scan output layout ("scan schema"): the user columns of the table
// definition in order, then SYS_TIME_START and SYS_TIME_END (timestamps).
// Application-time periods are ordinary user columns per the TableDef.
//
// DDL and DML are template methods: the public non-virtual entry points
// allocate the commit timestamp, dispatch to the per-engine Do* virtuals,
// and mirror every successful mutation to the attached write-ahead log —
// so all four architectures gain durability without engine-specific code.
class TemporalEngine {
 public:
  virtual ~TemporalEngine() = default;

  virtual std::string name() const = 0;

  // True when the engine natively supports application-time periods.
  // Engines without native support (Systems C and D) still store the period
  // columns as plain data; sequenced DML is then emulated client-side by
  // the engine wrapper, mirroring how the paper ports the workload.
  virtual bool native_app_time() const { return true; }

  // --- DDL -----------------------------------------------------------
  Status CreateTable(const TableDef& def);
  virtual Status CreateIndex(const IndexSpec& spec) = 0;
  virtual Status DropIndexes(const std::string& table) = 0;

  virtual const TableDef& GetTableDef(const std::string& table) const = 0;
  virtual Schema ScanSchema(const std::string& table) const = 0;
  virtual bool HasTable(const std::string& table) const = 0;

  // --- Transactions ----------------------------------------------------
  // DML statements outside Begin/Commit auto-commit individually. Batched
  // statements share one commit timestamp (the Fig. 13 batch-size knob).
  // With a WAL attached, a batch is durable only once Commit has flushed
  // its records plus a commit marker; auto-commit statements flush
  // individually.
  void Begin();
  Status Commit();

  // --- DML -------------------------------------------------------------
  Status Insert(const std::string& table, Row row);

  // Bulk load with explicit system-time periods appended to each row
  // (arity = user columns + 2). Only engines without engine-managed system
  // time accept this (System D); others return Unimplemented, which is the
  // paper's reason history loading must replay individual transactions.
  Status BulkLoad(const std::string& table, std::vector<Row> rows);

  // Updates every currently visible version of `key` (non-temporal update:
  // only the system time moves).
  Status UpdateCurrent(const std::string& table, const std::vector<Value>& key,
                       const std::vector<ColumnAssignment>& set);

  // SEQUENCED VALIDTIME UPDATE over `period` of application time dimension
  // `period_index`.
  Status UpdateSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set);

  // Overwrite semantics (Table 2 "Overwrite App.Time"): replaces the
  // overlapped range with a single new version spanning exactly `period`.
  Status UpdateOverwrite(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set);

  // Deletes every currently visible version of `key`.
  Status DeleteCurrent(const std::string& table,
                       const std::vector<Value>& key);

  Status DeleteSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period);

  // --- Durability ------------------------------------------------------
  // Opens (creating/truncating) a write-ahead log at `path`; from here on
  // every committed mutation — DDL included — is mirrored to it. `fault`
  // (optional, borrowed) injects deterministic write failures for crash
  // testing. When a log write fails, the mutating call returns kIoError:
  // the in-memory state is then ahead of the durable state, exactly as in
  // a crashed process, and recovery from the log yields the state at the
  // last durable commit.
  Status EnableWal(const std::string& path, FaultInjector* fault = nullptr);
  Status AttachWal(std::unique_ptr<WalWriter> wal);
  WalWriter* wal() const { return wal_.get(); }
  // Shared ownership handle for the group-commit coordinator: durability
  // waiters hold this so a session-level writer swap (the revive path) can
  // never close the FILE* from under an in-flight group sync.
  std::shared_ptr<WalWriter> SharedWal() const { return wal_; }

  // Applies one logged mutation at its original commit timestamp, keeping
  // the engine clock ahead of it; crash recovery only (engine/recovery.h).
  // Never mirrored to an attached WAL.
  Status ApplyWalRecord(const WalRecord& rec);

  // --- Checkpointing ---------------------------------------------------
  // Table names in deterministic (sorted) order; the checkpointer walks
  // these to snapshot the whole engine.
  virtual std::vector<std::string> ListTables() const = 0;
  // Installs one stored version (scan-schema layout: user columns followed
  // by SYS_TIME_START and SYS_TIME_END) directly into the engine's physical
  // partitions — current/delta for an open interval, history for a closed
  // one — bypassing DML semantics and WAL mirroring. Checkpoint restore
  // only: call on a freshly created engine before it serves anything.
  Status InstallVersion(const std::string& table, const Row& stored) {
    return DoInstallVersion(table, stored);
  }

  // --- Query -----------------------------------------------------------
  virtual void Scan(const ScanRequest& req, const RowCallback& cb) = 0;

  // Counters of the most recently completed Scan that did not redirect them
  // via ScanRequest::stats. Publication is serialized, so concurrent readers
  // are race-free, but which scan "wins" the slot is last-writer-wins —
  // callers that need their own scan's counters pass ScanRequest::stats.
  ExecStats last_stats() const {
    MutexLock lock(stats_mu_);
    return stats_;
  }
  virtual TableStats GetTableStats(const std::string& table) const = 0;

  // Engine-maintenance hook: System C's delta->main merge; no-op elsewhere.
  virtual void Maintain() {}

  // Publishes any lazily-deferred state so that subsequent Scans are pure
  // reads. The session layer (src/server/) calls this while it still holds
  // the exclusive writer lock after each mutation; concurrent snapshot
  // readers may then share the engine without mutating it. System B drains
  // its undo log here (its history scans otherwise flush on demand);
  // elsewhere a no-op.
  virtual void PrepareForReads() {}

  Timestamp Now() const { return clock_.Now(); }

 protected:
  // Per-engine implementations of the public template methods above. They
  // must not allocate commit timestamps themselves: MutationTime() returns
  // the stamp chosen by the dispatching wrapper (or, during recovery, the
  // original stamp recorded in the log).
  virtual Status DoCreateTable(const TableDef& def) = 0;
  virtual Status DoInsert(const std::string& table, Row row) = 0;
  virtual Status DoBulkLoad(const std::string& table, std::vector<Row> rows);
  virtual Status DoUpdateCurrent(const std::string& table,
                                 const std::vector<Value>& key,
                                 const std::vector<ColumnAssignment>& set) = 0;
  virtual Status DoUpdateSequenced(
      const std::string& table, const std::vector<Value>& key,
      int period_index, const Period& period,
      const std::vector<ColumnAssignment>& set) = 0;
  virtual Status DoUpdateOverwrite(
      const std::string& table, const std::vector<Value>& key,
      int period_index, const Period& period,
      const std::vector<ColumnAssignment>& set) = 0;
  virtual Status DoDeleteCurrent(const std::string& table,
                                 const std::vector<Value>& key) = 0;
  virtual Status DoDeleteSequenced(const std::string& table,
                                   const std::vector<Value>& key,
                                   int period_index, const Period& period) = 0;
  virtual Status DoInstallVersion(const std::string& table,
                                  const Row& stored) = 0;

  // Commit timestamp for the mutation being executed, as allocated by the
  // dispatching wrapper: a fresh tick in auto-commit mode, the transaction
  // stamp inside Begin/Commit, the logged stamp during recovery.
  Timestamp MutationTime() const { return mutation_time_; }

  // Engines call this at the end of a Scan whose request left `stats` null.
  // The lock only serializes the publication slot; it is never held while
  // scanning, so concurrent readers contend for nanoseconds per query.
  void PublishStats(const ExecStats& s) const {
    MutexLock lock(stats_mu_);
    stats_ = s;
  }

  // The engine is externally synchronized: every mutation (and so every
  // touch of the transaction state below) runs under the session layer's
  // exclusive rw_mu_. stats_mu_ exists only for the PublishStats slot,
  // which concurrent readers hit; it guards nothing else in this class.
  CommitClock clock_;    // bih-lint: allow(guard-coverage)
  bool in_txn_ = false;  // bih-lint: allow(guard-coverage)
  Timestamp txn_time_;   // bih-lint: allow(guard-coverage)

 private:
  mutable Mutex stats_mu_;
  mutable ExecStats stats_ GUARDED_BY(stats_mu_);

  // Allocates the stamp MutationTime() hands to the Do* layer.
  void AllocateMutationTime() {
    mutation_time_ = in_txn_ ? txn_time_ : clock_.NextCommit();
  }
  // Mirrors a successful mutation to the WAL: buffered inside a
  // transaction, appended + flushed immediately in auto-commit mode.
  Status LogMutation(WalRecord rec);

  Timestamp mutation_time_;  // bih-lint: allow(guard-coverage) write path only
  // Shared with the group-commit coordinator (see SharedWal()); the engine
  // is still the writer's home — AttachWal replaces it wholesale.
  std::shared_ptr<WalWriter> wal_;
  std::vector<WalRecord> txn_wal_;  // bih-lint: allow(guard-coverage) write path only
};

// Factory: engines named "A".."D" (architecture letter as in the paper).
std::unique_ptr<TemporalEngine> MakeEngine(const std::string& letter);

// All four architecture letters, in paper order.
const std::vector<std::string>& AllEngineLetters();

}  // namespace bih

#endif  // TPCBIH_ENGINE_ENGINE_H_
