// Wire-protocol overhead: the same SQL statement stream executed in-process
// (SessionManager::ReadTxn + the SQL front end, the ceiling) and over the
// network service layer with N connections spread across M tenants. Not a
// paper figure — the EDBT 2014 study drives embedded engines — but the
// first question any server deployment asks: what do framing, CRC, one
// thread per connection and two layers of admission control cost, and how
// do the latency percentiles move?
//
// Knobs: BIH_SERVE_CONNS (default 8), BIH_SERVE_TENANTS (4),
// BIH_SERVE_OPS per connection (400), BIH_SERVE_ROWS fixture size (2000).
// Output: a human table plus machine-readable BENCH_serve.json (path
// overridable via BIH_SERVE_JSON).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/schema.h"
#include "common/period.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "server/session.h"
#include "sql/executor.h"

namespace bih {
namespace bench {
namespace {

int EnvInt(const char* name, int fallback, int lo, int hi) {
  if (const char* v = std::getenv(name)) {
    const int x = std::atoi(v);
    if (x >= lo && x <= hi) return x;
  }
  return fallback;
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx = std::min(
      v->size() - 1, static_cast<size_t>(p * static_cast<double>(v->size())));
  return (*v)[idx];
}

std::unique_ptr<TemporalEngine> BuildEngine(int64_t rows) {
  auto engine = MakeEngine("A");
  TableDef def;
  def.name = "ITEM";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"PRICE", ColumnType::kDouble},
                       {"NOTE", ColumnType::kString},
                       {"VB", ColumnType::kDate},
                       {"VE", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"VALIDITY", 3, 4}};
  def.system_versioned = true;
  if (!engine->CreateTable(def).ok()) return nullptr;
  for (int64_t i = 1; i <= rows; ++i) {
    Status st = engine->Insert(
        "ITEM", {Value(i), Value(static_cast<double>(i) * 0.25),
                 Value("n" + std::to_string(i % 97)), Value(int64_t{0}),
                 Value(Period::kForever)});
    if (!st.ok()) return nullptr;
  }
  return engine;
}

std::vector<std::string> MakeQueries(int64_t rows) {
  std::vector<std::string> qs;
  for (int64_t k = 0; k < 16; ++k) {
    qs.push_back("SELECT ID, PRICE, NOTE FROM ITEM WHERE ID = " +
                 std::to_string(1 + (k * 131) % rows));
  }
  return qs;
}

struct LatencySummary {
  uint64_t ops = 0;
  uint64_t errors = 0;
  double wall_s = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double qps() const { return wall_s > 0.0 ? ops / wall_s : 0.0; }
};

LatencySummary Summarize(std::vector<std::vector<double>>* per_thread,
                         uint64_t errors, double wall_s) {
  std::vector<double> all;
  for (const auto& v : *per_thread) all.insert(all.end(), v.begin(), v.end());
  LatencySummary s;
  s.ops = all.size();
  s.errors = errors;
  s.wall_s = wall_s;
  s.p50_us = Percentile(&all, 0.50);
  s.p90_us = Percentile(&all, 0.90);
  s.p99_us = Percentile(&all, 0.99);
  s.max_us = Percentile(&all, 1.0);
  return s;
}

// The in-process ceiling: same statements, same session layer, no wire.
LatencySummary RunInProcess(SessionManager* session,
                            const std::vector<std::string>& queries,
                            int threads, int ops) {
  std::vector<std::vector<double>> lat(static_cast<size_t>(threads));
  std::vector<uint64_t> errs(static_cast<size_t>(threads), 0);
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < ops; ++i) {
        const std::string& q = queries[(t * 31 + i) % queries.size()];
        const auto t0 = std::chrono::steady_clock::now();
        sql::SqlResult res;
        Status st = session->ReadTxn(nullptr, [&](TemporalEngine& eng) {
          return sql::ExecuteSql(eng, q, &res);
        });
        const auto t1 = std::chrono::steady_clock::now();
        if (!st.ok()) {
          ++errs[t];
          continue;
        }
        lat[t].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (auto& th : ts) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  uint64_t errors = 0;
  for (uint64_t e : errs) errors += e;
  return Summarize(&lat, errors, wall);
}

// The served path: each connection is a thread with its own Client, spread
// round-robin across tenants.
LatencySummary RunServed(uint16_t port, const std::vector<std::string>& queries,
                         int conns, int tenants, int ops) {
  std::vector<std::vector<double>> lat(static_cast<size_t>(conns));
  std::vector<uint64_t> errs(static_cast<size_t>(conns), 0);
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int t = 0; t < conns; ++t) {
    ts.emplace_back([&, t] {
      net::Client c;
      if (!c.Connect("127.0.0.1", port,
                     "tenant-" + std::to_string(t % tenants))
               .ok()) {
        errs[t] += static_cast<uint64_t>(ops);
        return;
      }
      for (int i = 0; i < ops; ++i) {
        const std::string& q = queries[(t * 31 + i) % queries.size()];
        net::QueryReply reply;
        const auto t0 = std::chrono::steady_clock::now();
        Status st = c.Query(q, /*deadline_ms=*/10000, &reply);
        const auto t1 = std::chrono::steady_clock::now();
        if (!st.ok()) {
          ++errs[t];
          continue;
        }
        lat[t].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (auto& th : ts) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  uint64_t errors = 0;
  for (uint64_t e : errs) errors += e;
  return Summarize(&lat, errors, wall);
}

void PrintRow(const char* name, const LatencySummary& s) {
  std::printf("%-12s %8llu ops %8.0f q/s  p50 %7.1fus  p90 %7.1fus  "
              "p99 %7.1fus  max %8.1fus  errors %llu\n",
              name, static_cast<unsigned long long>(s.ops), s.qps(), s.p50_us,
              s.p90_us, s.p99_us, s.max_us,
              static_cast<unsigned long long>(s.errors));
}

std::string JsonBlock(const LatencySummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"ops\":%llu,\"errors\":%llu,\"qps\":%.1f,"
                "\"p50_us\":%.1f,\"p90_us\":%.1f,\"p99_us\":%.1f,"
                "\"max_us\":%.1f}",
                static_cast<unsigned long long>(s.ops),
                static_cast<unsigned long long>(s.errors), s.qps(), s.p50_us,
                s.p90_us, s.p99_us, s.max_us);
  return buf;
}

int Run() {
  const int conns = EnvInt("BIH_SERVE_CONNS", 8, 1, 512);
  const int tenants = EnvInt("BIH_SERVE_TENANTS", 4, 1, 64);
  const int ops = EnvInt("BIH_SERVE_OPS", 400, 1, 1000000);
  const int64_t rows = EnvInt("BIH_SERVE_ROWS", 2000, 10, 10000000);

  auto engine = BuildEngine(rows);
  if (engine == nullptr) {
    std::fprintf(stderr, "fixture load failed\n");
    return 1;
  }
  const std::vector<std::string> queries = MakeQueries(rows);
  SessionManager session(engine.get());

  std::printf("bench_serve: %d connections x %d tenants, %d ops each, "
              "%lld-row ITEM (System A)\n",
              conns, tenants, ops, static_cast<long long>(rows));
  // Warm both paths once so first-touch costs (lazy indexes, page faults)
  // do not land in the measured percentiles.
  (void)RunInProcess(&session, queries, conns, 8);
  const LatencySummary inproc = RunInProcess(&session, queries, conns, ops);
  PrintRow("in-process", inproc);

  net::Server server(&session, net::ServerConfig{});
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  (void)RunServed(server.port(), queries, conns, tenants, 8);
  const LatencySummary served =
      RunServed(server.port(), queries, conns, tenants, ops);
  server.Drain();
  PrintRow("served", served);
  if (inproc.p50_us > 0.0) {
    std::printf("wire overhead: p50 %+.1fus (%.2fx), p99 %+.1fus (%.2fx)\n",
                served.p50_us - inproc.p50_us, served.p50_us / inproc.p50_us,
                served.p99_us - inproc.p99_us,
                inproc.p99_us > 0.0 ? served.p99_us / inproc.p99_us : 0.0);
  }

  const char* path = std::getenv("BIH_SERVE_JSON");
  const std::string out = path != nullptr ? path : "BENCH_serve.json";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"serve\",\"connections\":%d,\"tenants\":%d,"
               "\"ops_per_connection\":%d,\"rows\":%lld,"
               "\"in_process\":%s,\"served\":%s}\n",
               conns, tenants, ops, static_cast<long long>(rows),
               JsonBlock(inproc).c_str(), JsonBlock(served).c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() { return bih::bench::Run(); }
