#include "storage/rtree_index.h"

#include <algorithm>
#include <cmath>

namespace bih {

namespace {
constexpr size_t kMaxNodeEntries = 32;

double SpanOf(int64_t lo, int64_t hi) {
  return static_cast<double>(hi) - static_cast<double>(lo);
}
}  // namespace

void Rect::Expand(const Rect& o) {
  min[0] = std::min(min[0], o.min[0]);
  min[1] = std::min(min[1], o.min[1]);
  max[0] = std::max(max[0], o.max[0]);
  max[1] = std::max(max[1], o.max[1]);
}

double Rect::HalfPerimeter() const {
  return SpanOf(min[0], max[0]) + SpanOf(min[1], max[1]);
}

struct RTreeIndex::Entry {
  Rect rect;
  RowId rid;
};

struct RTreeIndex::Node {
  bool is_leaf;
  Node* parent = nullptr;
  Rect mbr{{0, 0}, {-1, -1}};  // invalid until first entry
  std::vector<Entry> entries;    // leaf payload
  std::vector<Node*> children;   // internal payload

  explicit Node(bool leaf) : is_leaf(leaf) {}

  size_t Count() const { return is_leaf ? entries.size() : children.size(); }

  void RecomputeMbr() {
    bool first = true;
    auto add = [&](const Rect& r) {
      if (first) {
        mbr = r;
        first = false;
      } else {
        mbr.Expand(r);
      }
    };
    if (is_leaf) {
      for (const Entry& e : entries) add(e.rect);
    } else {
      for (const Node* c : children) add(c->mbr);
    }
  }
};

RTreeIndex::RTreeIndex() { root_ = new Node(/*leaf=*/true); }

RTreeIndex::~RTreeIndex() {
  std::function<void(Node*)> destroy = [&](Node* n) {
    for (auto* c : n->children) destroy(c);
    delete n;
  };
  destroy(root_);
}

RTreeIndex::Node* RTreeIndex::ChooseLeaf(const Rect& rect) const {
  Node* n = root_;
  while (!n->is_leaf) {
    // Least-enlargement heuristic.
    Node* best = nullptr;
    double best_delta = 0.0, best_size = 0.0;
    for (Node* c : n->children) {
      Rect grown = c->mbr;
      grown.Expand(rect);
      double delta = grown.HalfPerimeter() - c->mbr.HalfPerimeter();
      double sz = c->mbr.HalfPerimeter();
      if (best == nullptr || delta < best_delta ||
          (delta == best_delta && sz < best_size)) {
        best = c;
        best_delta = delta;
        best_size = sz;
      }
    }
    n = best;
  }
  return n;
}

void RTreeIndex::Insert(const Rect& rect, RowId rid) {
  Node* leaf = ChooseLeaf(rect);
  leaf->entries.push_back(Entry{rect, rid});
  if (leaf->Count() == 1) {
    leaf->mbr = rect;
  } else {
    leaf->mbr.Expand(rect);
  }
  AdjustUpward(leaf);
  if (leaf->Count() > kMaxNodeEntries) SplitNode(leaf);
  ++size_;
}

void RTreeIndex::AdjustUpward(Node* node) {
  for (Node* p = node->parent; p != nullptr; p = p->parent) {
    Rect before = p->mbr;
    p->mbr.Expand(node->mbr);
    if (before.Contains(p->mbr) && p->mbr.Contains(before)) break;
    node = p;
  }
}

void RTreeIndex::SplitNode(Node* node) {
  // Quadratic split: pick the two seeds wasting the most area together,
  // then greedily assign the remainder.
  auto rect_of = [&](size_t i) -> const Rect& {
    return node->is_leaf ? node->entries[i].rect : node->children[i]->mbr;
  };
  size_t n = node->Count();
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Rect combo = rect_of(i);
      combo.Expand(rect_of(j));
      double waste = combo.HalfPerimeter() - rect_of(i).HalfPerimeter() -
                     rect_of(j).HalfPerimeter();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto* right = new Node(node->is_leaf);
  right->parent = node->parent;
  std::vector<size_t> to_left{seed_a}, to_right{seed_b};
  Rect left_mbr = rect_of(seed_a), right_mbr = rect_of(seed_b);
  for (size_t i = 0; i < n; ++i) {
    if (i == seed_a || i == seed_b) continue;
    Rect gl = left_mbr;
    gl.Expand(rect_of(i));
    Rect gr = right_mbr;
    gr.Expand(rect_of(i));
    double dl = gl.HalfPerimeter() - left_mbr.HalfPerimeter();
    double dr = gr.HalfPerimeter() - right_mbr.HalfPerimeter();
    // Keep the groups balanced enough to satisfy the min-fill invariant.
    bool go_left;
    if (to_left.size() >= n - kMaxNodeEntries / 4) {
      go_left = false;
    } else if (to_right.size() >= n - kMaxNodeEntries / 4) {
      go_left = true;
    } else {
      go_left = dl <= dr;
    }
    if (go_left) {
      to_left.push_back(i);
      left_mbr = gl;
    } else {
      to_right.push_back(i);
      right_mbr = gr;
    }
  }

  if (node->is_leaf) {
    std::vector<Entry> left_entries, right_entries;
    for (size_t i : to_left) left_entries.push_back(std::move(node->entries[i]));
    for (size_t i : to_right) right_entries.push_back(std::move(node->entries[i]));
    node->entries = std::move(left_entries);
    right->entries = std::move(right_entries);
  } else {
    std::vector<Node*> left_children, right_children;
    for (size_t i : to_left) left_children.push_back(node->children[i]);
    for (size_t i : to_right) right_children.push_back(node->children[i]);
    node->children = std::move(left_children);
    right->children = std::move(right_children);
    for (Node* c : right->children) c->parent = right;
  }
  node->RecomputeMbr();
  right->RecomputeMbr();

  if (node->parent == nullptr) {
    auto* new_root = new Node(/*leaf=*/false);
    new_root->children = {node, right};
    node->parent = new_root;
    right->parent = new_root;
    new_root->RecomputeMbr();
    root_ = new_root;
    return;
  }
  Node* parent = node->parent;
  parent->children.push_back(right);
  parent->RecomputeMbr();
  AdjustUpward(parent);
  if (parent->Count() > kMaxNodeEntries) SplitNode(parent);
}

bool RTreeIndex::Erase(const Rect& rect, RowId rid) {
  bool erased = false;
  std::function<bool(Node*)> walk = [&](Node* n) -> bool {
    if (!n->mbr.Intersects(rect) && n->Count() > 0) return true;
    if (n->is_leaf) {
      for (size_t i = 0; i < n->entries.size(); ++i) {
        if (n->entries[i].rid == rid && n->entries[i].rect.Contains(rect) &&
            rect.Contains(n->entries[i].rect)) {
          n->entries.erase(n->entries.begin() + static_cast<long>(i));
          n->RecomputeMbr();
          erased = true;
          return false;
        }
      }
      return true;
    }
    for (Node* c : n->children) {
      if (!walk(c)) {
        n->RecomputeMbr();
        return false;
      }
    }
    return true;
  };
  walk(root_);
  if (erased) --size_;
  return erased;
}

void RTreeIndex::Search(
    const Rect& query,
    const std::function<bool(const Rect&, RowId)>& fn) const {
  std::function<bool(const Node*)> walk = [&](const Node* n) -> bool {
    if (n->Count() == 0) return true;
    if (!n->mbr.Intersects(query)) return true;
    if (n->is_leaf) {
      for (const Entry& e : n->entries) {
        if (e.rect.Intersects(query)) {
          if (!fn(e.rect, e.rid)) return false;
        }
      }
      return true;
    }
    for (const Node* c : n->children) {
      if (!walk(c)) return false;
    }
    return true;
  };
  walk(root_);
}

bool RTreeIndex::Bounds(Rect* out) const {
  if (size_ == 0) return false;
  *out = root_->mbr;
  return true;
}

int RTreeIndex::height() const {
  int h = 1;
  for (Node* n = root_; !n->is_leaf; n = n->children[0]) ++h;
  return h;
}

bool RTreeIndex::CheckInvariants() const {
  size_t count = 0;
  std::function<bool(const Node*)> check = [&](const Node* n) -> bool {
    if (n->is_leaf) {
      for (const Entry& e : n->entries) {
        ++count;
        if (!n->mbr.Contains(e.rect)) return false;
      }
      return true;
    }
    for (const Node* c : n->children) {
      if (c->parent != n) return false;
      if (!n->mbr.Contains(c->mbr)) return false;
      if (!check(c)) return false;
    }
    return true;
  };
  if (!check(root_)) return false;
  return count == size_;
}

}  // namespace bih
