#ifndef TPCBIH_EXEC_EXEC_OPTIONS_H_
#define TPCBIH_EXEC_EXEC_OPTIONS_H_

#include <cstdint>

namespace bih {

class ScanScheduler;

// The consolidated intra-query parallelism knobs, threaded through every
// layer that issues scans: ScanRequest::exec (per-scan), the plan executor
// (per-query), SessionManager (per-server defaults), the driver's
// --scan-threads/--morsel-size flags and the net protocol's hello frame.
// A zero/null field means "unset": each layer fills only the fields the
// caller left open (see MergeExecOptions), and whatever is still unset at
// the engine resolves through DefaultScanThreads() / kDefaultMorselSize /
// the process-wide pool in ResolveScanPlan.
struct ExecOptions {
  // Threads a fallback full scan (or a parallel operator) may use: 0
  // resolves to the process default (BIH_SCAN_THREADS or
  // SetDefaultScanThreads), 1 forces the serial path. Index access paths
  // are always serial. Results and counters are byte-identical to serial
  // execution at any setting.
  int scan_threads = 0;
  // Rows per morsel; 0 means kDefaultMorselSize.
  uint64_t morsel_size = 0;
  // Worker pool to borrow helpers from (borrowed, may be null). Null falls
  // back to the process-wide pool when the resolved thread count is > 1.
  ScanScheduler* scheduler = nullptr;
};

// Fills the unset fields of `opts` from `defaults` and returns the result;
// fields the caller already pinned win. This is the one merge rule every
// layer uses, so "request overrides session overrides process" holds by
// construction.
inline ExecOptions MergeExecOptions(ExecOptions opts,
                                    const ExecOptions& defaults) {
  if (opts.scan_threads == 0) opts.scan_threads = defaults.scan_threads;
  if (opts.morsel_size == 0) opts.morsel_size = defaults.morsel_size;
  if (opts.scheduler == nullptr) opts.scheduler = defaults.scheduler;
  return opts;
}

}  // namespace bih

#endif  // TPCBIH_EXEC_EXEC_OPTIONS_H_
