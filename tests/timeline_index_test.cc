#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "temporal/timeline_index.h"

namespace bih {
namespace {

TEST(TimelineIndexTest, BasicTimeTravel) {
  TimelineIndex idx(4);
  idx.Add(0, Period(10, 20));
  idx.Add(1, Period(15, Period::kForever));
  idx.Add(2, Period(0, 5));
  idx.Finalize();
  auto active_at = [&](int64_t t) {
    std::set<uint32_t> s;
    idx.VisitActiveAt(t, [&](uint32_t v) {
      s.insert(v);
      return true;
    });
    return s;
  };
  EXPECT_EQ((std::set<uint32_t>{2}), active_at(0));
  EXPECT_EQ((std::set<uint32_t>{}), active_at(5));  // half-open end
  EXPECT_EQ((std::set<uint32_t>{0}), active_at(10));
  EXPECT_EQ((std::set<uint32_t>{0, 1}), active_at(17));
  EXPECT_EQ((std::set<uint32_t>{1}), active_at(20));
  EXPECT_EQ((std::set<uint32_t>{1}), active_at(1'000'000));
}

TEST(TimelineIndexTest, EmptyAndDegenerate) {
  TimelineIndex idx;
  idx.Add(7, Period(5, 5));  // empty period: ignored
  idx.Finalize();
  int n = 0;
  idx.VisitActiveAt(5, [&](uint32_t) {
    ++n;
    return true;
  });
  EXPECT_EQ(0, n);
  EXPECT_EQ(0u, idx.event_count());
}

struct TimelineIndexModelTest : public ::testing::TestWithParam<int> {};

TEST_P(TimelineIndexModelTest, MatchesBruteForceAcrossCheckpointSizes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<Period> periods;
  for (uint32_t v = 0; v < 500; ++v) {
    int64_t b = rng.UniformInt(0, 1000);
    periods.emplace_back(
        b, rng.Bernoulli(0.2) ? Period::kForever : b + rng.UniformInt(1, 300));
  }
  for (size_t interval : {size_t{8}, size_t{64}, size_t{100000}}) {
    TimelineIndex idx(interval);
    for (uint32_t v = 0; v < periods.size(); ++v) idx.Add(v, periods[v]);
    idx.Finalize();
    for (int trial = 0; trial < 60; ++trial) {
      int64_t t = rng.UniformInt(-5, 1400);
      std::set<uint32_t> expect, got;
      for (uint32_t v = 0; v < periods.size(); ++v) {
        if (periods[v].Contains(t)) expect.insert(v);
      }
      idx.VisitActiveAt(t, [&](uint32_t v) {
        got.insert(v);
        return true;
      });
      ASSERT_EQ(expect, got) << "t=" << t << " interval=" << interval;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineIndexModelTest,
                         ::testing::Values(1, 2, 3));

TEST(TimelineIndexTest, SweepDeltasReconstructCounts) {
  Rng rng(9);
  std::vector<Period> periods;
  for (uint32_t v = 0; v < 300; ++v) {
    int64_t b = rng.UniformInt(0, 500);
    periods.emplace_back(b, b + rng.UniformInt(1, 100));
  }
  TimelineIndex idx(32);
  for (uint32_t v = 0; v < periods.size(); ++v) idx.Add(v, periods[v]);
  idx.Finalize();
  int64_t running = 0;
  idx.SweepIntervals([&](const TimelineIndex::Delta& d) {
    running += static_cast<int64_t>(d.activated->size()) -
               static_cast<int64_t>(d.deactivated->size());
    // The running count equals a brute-force count at the interval start.
    int64_t expect = 0;
    for (const Period& p : periods) {
      if (p.Contains(d.interval.begin)) ++expect;
    }
    EXPECT_EQ(expect, running) << "at " << d.interval.begin;
    return true;
  });
  EXPECT_EQ(0, running);  // all closed periods eventually deactivate
}

TEST(TimelineIndexTest, CheckpointsBoundReplayWork) {
  TimelineIndex idx(16);
  for (uint32_t v = 0; v < 10000; ++v) {
    idx.Add(v, Period(v, v + 5));
  }
  idx.Finalize();
  EXPECT_GT(idx.checkpoint_count(), 100u);
  // Spot-check correctness near the end (worst case for replay).
  std::set<uint32_t> got;
  idx.VisitActiveAt(9999, [&](uint32_t v) {
    got.insert(v);
    return true;
  });
  EXPECT_EQ((std::set<uint32_t>{9995, 9996, 9997, 9998, 9999}), got);
}

TEST(TimelineIndexTest, AddAfterFinalizeAborts) {
  TimelineIndex idx;
  idx.Finalize();
  EXPECT_DEATH(idx.Add(0, Period(0, 1)), "Finalize");
}

}  // namespace
}  // namespace bih
