// Figure 2: basic point-point time travel (T1, T2) and the full-history
// upper bound (ALL/T5) on all four engines, out-of-the-box (no indexes).
//
// Expected shape (paper Section 5.3.1): current-system-time queries are
// cheapest; varying system time adds the history partition (System B pays
// an extra reconstruction join); ALL is the most expensive.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  for (const std::string& letter : AllEngineLetters()) {
    TemporalEngine* e = &w.Engine(letter);
    auto add = [&](const std::string& name, auto fn) {
      benchmark::RegisterBenchmark(("Fig2/" + name + "/System" + letter).c_str(),
                                   [fn, e](benchmark::State& state) {
                                     for (auto _ : state) {
                                       benchmark::DoNotOptimize(fn(*e));
                                     }
                                   })
          ->Unit(benchmark::kMillisecond);
    };
    const int64_t app_mid = ctx.app_mid;
    const int64_t sys_mid = ctx.sys_mid.micros();
    add("T1_vary_app_curr_sys", [app_mid](TemporalEngine& eng) {
      return T1(eng, TemporalScanSpec::AppAsOf(app_mid));
    });
    add("T1_vary_sys_curr_app", [sys_mid, app_mid](TemporalEngine& eng) {
      return T1(eng, TemporalScanSpec::BothAsOf(sys_mid, app_mid));
    });
    add("T2_vary_app_curr_sys", [app_mid](TemporalEngine& eng) {
      return T2(eng, TemporalScanSpec::AppAsOf(app_mid));
    });
    add("T2_vary_sys_curr_app", [sys_mid, app_mid](TemporalEngine& eng) {
      return T2(eng, TemporalScanSpec::BothAsOf(sys_mid, app_mid));
    });
    add("T5_all_versions", [](TemporalEngine& eng) { return QueryAll(eng); });
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
