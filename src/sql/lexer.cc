#include "sql/lexer.h"

#include <cctype>

namespace bih {
namespace sql {

Status Tokenize(const std::string& input, std::vector<Token>* out) {
  out->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // Line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      tok.type = TokenType::kIdent;
      tok.text = input.substr(i, j - i);
      for (char& ch : tok.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (input[j] == '.' && !seen_dot))) {
        seen_dot |= input[j] == '.';
        ++j;
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      std::string s;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            s += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        s += input[j++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      i = j;
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = input.substr(i, 2);
        if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
          tok.type = TokenType::kSymbol;
          tok.text = two == "!=" ? "<>" : two;
          out->push_back(tok);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),*+-/=<>.;";
      if (kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " + std::to_string(i));
      }
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    }
    out->push_back(std::move(tok));
  }
  out->push_back(Token{TokenType::kEnd, "", n});
  return Status::OK();
}

}  // namespace sql
}  // namespace bih
