// Fixture: direct operator-kernel calls outside src/exec/ must trip the
// exec-api rule. The plan tree (exec/plan.h) is the only sanctioned way to
// run operators; kernels bypass ExecOptions, the optimizer, cancellation
// and ExecStats.
#include "exec/operators.h"  // retired header: flagged on its own

#include <vector>

namespace fixture {

struct Rows {};
Rows HashJoinRows(const Rows&, const Rows&);
Rows SortRows(const Rows&);

Rows Query(const Rows& left, const Rows& right) {
  Rows joined = HashJoinRows(left, right);  // flagged: kernel call
  return SortRows(joined);                  // flagged: kernel call
}

}  // namespace fixture
