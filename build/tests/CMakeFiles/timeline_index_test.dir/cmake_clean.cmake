file(REMOVE_RECURSE
  "CMakeFiles/timeline_index_test.dir/timeline_index_test.cc.o"
  "CMakeFiles/timeline_index_test.dir/timeline_index_test.cc.o.d"
  "timeline_index_test"
  "timeline_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
