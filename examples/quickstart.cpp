// Quickstart: create a bitemporal table, evolve it, and time-travel.
//
// Demonstrates the core public API: TemporalEngine (four architectures),
// TableDef with application-time periods, sequenced DML, and temporal scans
// (AS OF on either axis, slices, full history).
#include <cstdio>

#include "engine/engine.h"
#include "exec/plan.h"
#include "exec/rows.h"

using namespace bih;

namespace {

TableDef EmployeeDef() {
  TableDef def;
  def.name = "EMPLOYEE";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"NAME", ColumnType::kString},
                       {"DEPARTMENT", ColumnType::kString},
                       {"SALARY", ColumnType::kDouble},
                       {"VALID_FROM", ColumnType::kDate},
                       {"VALID_TO", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"EMPLOYMENT", 4, 5}};  // application time
  def.system_versioned = true;               // system time
  return def;
}

void Show(TemporalEngine& engine, const char* title, const ScanRequest& req) {
  Rows rows = RunPlan(*ScanPlan(req), engine);
  std::printf("\n-- %s (%zu rows)\n", title, rows.size());
  std::printf("%s", FormatRows(rows,
                               {"id", "name", "dept", "salary", "from", "to",
                                "sys_start", "sys_end"})
                        .c_str());
}

}  // namespace

int main() {
  // Pick any of the four architectures ("A".."D"); they answer identically,
  // they just store and plan differently.
  auto engine = MakeEngine("A");
  Status st = engine->CreateTable(EmployeeDef());
  BIH_CHECK_MSG(st.ok(), st.ToString());

  const int64_t jan = Date::FromYMD(2020, 1, 1).days();
  const int64_t jun = Date::FromYMD(2020, 6, 1).days();
  const int64_t dec = Date::FromYMD(2020, 12, 1).days();

  // Hire two employees; employment valid from January, open-ended.
  st = engine->Insert("EMPLOYEE", {Value(int64_t{1}), Value("ada"),
                                   Value("eng"), Value(90000.0), Value(jan),
                                   Value(Period::kForever)});
  BIH_CHECK_MSG(st.ok(), st.ToString());
  st = engine->Insert("EMPLOYEE", {Value(int64_t{2}), Value("grace"),
                                   Value("ops"), Value(80000.0), Value(jan),
                                   Value(Period::kForever)});
  BIH_CHECK_MSG(st.ok(), st.ToString());
  Timestamp before_raise = engine->Now();

  // A sequenced update: ada's salary rises from June onwards. The engine
  // splits her employment period: [jan, jun) keeps the old salary.
  st = engine->UpdateSequenced("EMPLOYEE", {Value(int64_t{1})}, 0,
                               Period(jun, Period::kForever),
                               {{3, Value(105000.0)}});
  BIH_CHECK_MSG(st.ok(), st.ToString());

  // A non-temporal correction: grace's department was recorded wrong all
  // along; only the system time moves.
  st = engine->UpdateCurrent("EMPLOYEE", {Value(int64_t{2})},
                             {{2, Value("eng")}});
  BIH_CHECK_MSG(st.ok(), st.ToString());

  ScanRequest req;
  req.table = "EMPLOYEE";
  Show(*engine, "current state", req);

  req.temporal = TemporalScanSpec::AppAsOf(Date::FromYMD(2020, 3, 1).days());
  Show(*engine, "salaries as valid in March (application time)", req);

  req.temporal = TemporalScanSpec::AppAsOf(dec);
  Show(*engine, "salaries as valid in December (application time)", req);

  req.temporal = TemporalScanSpec::SystemAsOf(before_raise.micros());
  Show(*engine, "what the database believed before the raise (system time)",
       req);

  TemporalScanSpec everything;
  everything.system_time = TemporalSelector::All();
  everything.app_time = TemporalSelector::All();
  req.temporal = everything;
  Show(*engine, "complete bitemporal history", req);

  // Plan introspection: the scan statistics show which partitions a query
  // touched and whether an index served it.
  const ExecStats& stats = engine->last_stats();
  std::printf("\nlast scan: %llu rows examined, %d partitions, history=%s\n",
              static_cast<unsigned long long>(stats.rows_examined),
              stats.partitions_touched, stats.touched_history ? "yes" : "no");
  return 0;
}
