#include "storage/column_table.h"

namespace bih {

uint32_t ColumnTable::StringColumn::Intern(const std::string& s) {
  auto it = lookup.find(s);
  if (it != lookup.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(dict.size());
  dict.push_back(s);
  lookup.emplace(s, code);
  return code;
}

ColumnTable::ColumnTable(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_columns()));
  for (const Column& c : schema_.columns()) {
    switch (c.type) {
      case ColumnType::kInt:
      case ColumnType::kDate:
      case ColumnType::kTimestamp:
        columns_.emplace_back(std::vector<int64_t>{});
        break;
      case ColumnType::kDouble:
        columns_.emplace_back(std::vector<double>{});
        break;
      case ColumnType::kString:
        columns_.emplace_back(StringColumn{});
        break;
    }
  }
}

RowId ColumnTable::Append(const Row& row) {
  BIH_CHECK_MSG(static_cast<int>(row.size()) == schema_.num_columns(),
                "row arity mismatch for " + schema_.ToString());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    nulls_.push_back(v.is_null() ? 1 : 0);
    ColumnData& col = columns_[static_cast<size_t>(c)];
    if (auto* iv = std::get_if<std::vector<int64_t>>(&col)) {
      iv->push_back(v.is_null() ? 0 : v.AsInt());
    } else if (auto* dv = std::get_if<std::vector<double>>(&col)) {
      dv->push_back(v.is_null() ? 0.0 : v.AsDouble());
    } else {
      auto& sc = std::get<StringColumn>(col);
      sc.codes.push_back(v.is_null() ? 0 : sc.Intern(v.AsString()));
    }
  }
  deleted_.push_back(0);
  ++size_;
  ++live_count_;
  return size_ - 1;
}

Value ColumnTable::Get(RowId id, int col) const {
  BIH_CHECK(id < size_);
  if (nulls_[id * static_cast<size_t>(schema_.num_columns()) +
             static_cast<size_t>(col)]) {
    return Value::Null();
  }
  const ColumnData& c = columns_[static_cast<size_t>(col)];
  if (auto* iv = std::get_if<std::vector<int64_t>>(&c)) return Value((*iv)[id]);
  if (auto* dv = std::get_if<std::vector<double>>(&c)) return Value((*dv)[id]);
  const auto& sc = std::get<StringColumn>(c);
  return Value(sc.dict[sc.codes[id]]);
}

Row ColumnTable::GetRow(RowId id) const {
  Row row(static_cast<size_t>(schema_.num_columns()));
  for (int c = 0; c < schema_.num_columns(); ++c) {
    row[static_cast<size_t>(c)] = Get(id, c);
  }
  return row;
}

void ColumnTable::Set(RowId id, int col, const Value& v) {
  BIH_CHECK(id < size_);
  size_t null_pos = id * static_cast<size_t>(schema_.num_columns()) +
                    static_cast<size_t>(col);
  nulls_[null_pos] = v.is_null() ? 1 : 0;
  if (v.is_null()) return;
  ColumnData& c = columns_[static_cast<size_t>(col)];
  if (auto* iv = std::get_if<std::vector<int64_t>>(&c)) {
    (*iv)[id] = v.AsInt();
  } else if (auto* dv = std::get_if<std::vector<double>>(&c)) {
    (*dv)[id] = v.AsDouble();
  } else {
    auto& sc = std::get<StringColumn>(c);
    sc.codes[id] = sc.Intern(v.AsString());
  }
}

void ColumnTable::Delete(RowId id) {
  BIH_CHECK(id < size_);
  if (!deleted_[id]) {
    deleted_[id] = 1;
    --live_count_;
  }
}

void ColumnTable::Scan(const std::vector<int>& needed,
                       const std::function<bool(RowId, const Row&)>& fn) const {
  Row scratch(needed.size());
  for (RowId id = 0; id < size_; ++id) {
    if (deleted_[id]) continue;
    for (size_t i = 0; i < needed.size(); ++i) scratch[i] = Get(id, needed[i]);
    if (!fn(id, scratch)) return;
  }
}

void ColumnTable::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  for (RowId id = 0; id < size_; ++id) {
    if (deleted_[id]) continue;
    Row row = GetRow(id);
    if (!fn(id, row)) return;
  }
}

void ColumnTable::Absorb(ColumnTable* from) {
  BIH_CHECK(from != nullptr);
  from->Scan([&](RowId, const Row& row) {
    Append(row);
    return true;
  });
  from->Clear();
}

void ColumnTable::Clear() {
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnData& col = columns_[c];
    if (auto* iv = std::get_if<std::vector<int64_t>>(&col)) {
      iv->clear();
    } else if (auto* dv = std::get_if<std::vector<double>>(&col)) {
      dv->clear();
    } else {
      auto& sc = std::get<StringColumn>(col);
      sc.codes.clear();
      // Keep the dictionary: re-interning after a merge is wasted work.
    }
  }
  nulls_.clear();
  deleted_.clear();
  size_ = 0;
  live_count_ = 0;
}

}  // namespace bih
