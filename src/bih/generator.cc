#include "bih/generator.h"

#include <algorithm>
#include <chrono>

#include "tpch/schema.h"

namespace bih {

namespace {

// Table definitions by name, shared by state bookkeeping.
const TableDef& DefOf(const std::string& name) {
  static const std::vector<TableDef>* defs =
      new std::vector<TableDef>(BiHSchema());
  for (const TableDef& d : *defs) {
    if (d.name == name) return d;
  }
  BIH_CHECK_MSG(false, "unknown table " + name);
  return (*defs)[0];
}

std::vector<Value> KeyFromRow(const TableDef& def, const Row& row) {
  std::vector<Value> key;
  key.reserve(def.primary_key.size());
  for (int c : def.primary_key) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

}  // namespace

HistoryGenerator::HistoryGenerator(const TpchData& initial,
                                   GeneratorConfig config)
    : rng_(config.seed), config_(std::move(config)),
      app_today_(tpch_dates::kCurrent) {
  // Ingest version 0 into the current-state maps and the sampling pools.
  auto ingest = [&](const std::vector<Row>& rows, const char* table,
                    VersionMap* state) {
    const TableDef& def = DefOf(table);
    for (const Row& row : rows) {
      (*state)[KeyFromRow(def, row)].push_back(row);
    }
  };
  ingest(initial.customer, "CUSTOMER", &customers_);
  ingest(initial.orders, "ORDERS", &orders_);
  ingest(initial.lineitem, "LINEITEM", &lineitems_);
  ingest(initial.part, "PART", &parts_);
  ingest(initial.partsupp, "PARTSUPP", &partsupps_);
  ingest(initial.supplier, "SUPPLIER", &suppliers_);
  region_rows_ = initial.region;
  nation_rows_ = initial.nation;

  for (const Row& r : initial.customer) {
    int64_t k = r[customer::kCustKey].AsInt();
    customer_keys_.push_back(k);
    next_custkey_ = std::max(next_custkey_, k + 1);
  }
  for (const Row& r : initial.part) {
    part_keys_.push_back(r[part::kPartKey].AsInt());
  }
  for (const Row& r : initial.supplier) {
    supplier_keys_.push_back(r[supplier::kSuppKey].AsInt());
  }
  for (const Row& r : initial.partsupp) {
    int64_t p = r[partsupp::kPartKey].AsInt();
    int64_t s = r[partsupp::kSuppKey].AsInt();
    partsupp_keys_.emplace_back(p, s);
    parts_of_supplier_[s].push_back(p);
  }
  for (const Row& r : initial.orders) {
    int64_t o = r[orders::kOrderKey].AsInt();
    order_keys_.push_back(o);
    next_orderkey_ = std::max(next_orderkey_, o + 1);
    const std::string& status = r[orders::kOrderStatus].AsString();
    if (status != "F") open_orders_.push_back(o);
  }
  for (const Row& r : initial.lineitem) {
    lines_of_order_[r[lineitem::kOrderKey].AsInt()].push_back(
        r[lineitem::kLineNumber].AsInt());
  }
  suppliers_count_ = static_cast<int64_t>(supplier_keys_.size());
  parts_count_ = static_cast<int64_t>(part_keys_.size());

  const int64_t n_scenarios =
      std::max<int64_t>(1, static_cast<int64_t>(config_.m * 1e6));
  const double span_days =
      static_cast<double>(tpch_dates::kCurrent.DaysUntil(tpch_dates::kEnd));
  days_per_scenario_ = span_days / static_cast<double>(n_scenarios);
}

void HistoryGenerator::AdvanceClock() {
  day_accum_ += days_per_scenario_;
  if (day_accum_ >= 1.0) {
    int32_t whole = static_cast<int32_t>(day_accum_);
    app_today_ = app_today_.AddDays(whole);
    day_accum_ -= whole;
  }
}

void HistoryGenerator::CountOp(const Operation& op) {
  TableOpStats& st = stats_.per_table[op.table];
  const TableDef& def = DefOf(op.table);
  switch (op.kind) {
    case Operation::Kind::kInsert:
      if (def.HasAppTime()) {
        ++st.app_insert;
      } else {
        ++st.nontemporal_insert;
      }
      break;
    case Operation::Kind::kUpdateCurrent: {
      // Assignments that touch application-period bounds are effectively
      // application-time updates even when issued as plain updates.
      bool touches_app = false;
      for (const ColumnAssignment& a : op.set) {
        for (const AppPeriodDef& ap : def.app_periods) {
          touches_app |= a.column == ap.begin_col || a.column == ap.end_col;
        }
      }
      if (touches_app) {
        ++st.app_update;
      } else {
        ++st.nontemporal_update;
      }
      break;
    }
    case Operation::Kind::kUpdateSequenced:
      ++st.app_update;
      break;
    case Operation::Kind::kUpdateOverwrite:
      ++st.overwrite_app;
      break;
    case Operation::Kind::kDeleteCurrent:
      ++st.deletes;
      break;
    case Operation::Kind::kDeleteSequenced:
      // A sequenced delete over a suffix window is the SEQUENCED model's
      // way of shortening a validity period; Table 2 counts these among
      // the application-time updates, its Delete column counts only full
      // row deletions.
      ++st.app_update;
      break;
  }
  ++stats_.total_operations;
}

void HistoryGenerator::ApplyToState(VersionMap* table_state,
                                    const TableDef& def, const Operation& op) {
  switch (op.kind) {
    case Operation::Kind::kInsert:
      (*table_state)[KeyFromRow(def, op.row)].push_back(op.row);
      return;
    case Operation::Kind::kDeleteCurrent:
      table_state->erase(op.key);
      return;
    default:
      break;
  }
  auto it = table_state->find(op.key);
  BIH_CHECK_MSG(it != table_state->end(),
                "generator state desync on " + def.name);
  std::vector<Row>& versions = it->second;
  if (op.kind == Operation::Kind::kUpdateCurrent) {
    for (Row& v : versions) {
      for (const ColumnAssignment& a : op.set) {
        v[static_cast<size_t>(a.column)] = a.value;
      }
    }
    return;
  }
  const AppPeriodDef& ap = def.app_periods[static_cast<size_t>(op.period_index)];
  SequencedOps ops;
  switch (op.kind) {
    case Operation::Kind::kUpdateSequenced:
      ops = PlanSequencedUpdate(versions, ap.begin_col, ap.end_col, op.period,
                                op.set);
      break;
    case Operation::Kind::kUpdateOverwrite:
      ops = PlanOverwriteUpdate(versions, ap.begin_col, ap.end_col, op.period,
                                op.set);
      break;
    case Operation::Kind::kDeleteSequenced:
      ops = PlanSequencedDelete(versions, ap.begin_col, ap.end_col, op.period);
      break;
    default:
      BIH_CHECK(false);
  }
  std::vector<Row> next;
  for (size_t i = 0; i < versions.size(); ++i) {
    if (std::find(ops.to_close.begin(), ops.to_close.end(), i) ==
        ops.to_close.end()) {
      next.push_back(std::move(versions[i]));
    }
  }
  for (Row& r : ops.to_insert) next.push_back(std::move(r));
  if (next.empty()) {
    table_state->erase(it);
  } else {
    it->second = std::move(next);
  }
}

void HistoryGenerator::Emit(HistoryTransaction* txn, Operation op) {
  CountOp(op);
  VersionMap* state = nullptr;
  if (op.table == "CUSTOMER") state = &customers_;
  else if (op.table == "ORDERS") state = &orders_;
  else if (op.table == "LINEITEM") state = &lineitems_;
  else if (op.table == "PART") state = &parts_;
  else if (op.table == "PARTSUPP") state = &partsupps_;
  else if (op.table == "SUPPLIER") state = &suppliers_;
  BIH_CHECK_MSG(state != nullptr, "unexpected table " + op.table);
  ApplyToState(state, DefOf(op.table), op);
  txn->ops.push_back(std::move(op));
}

void HistoryGenerator::NewOrder(HistoryTransaction* txn) {
  const int64_t today = TodayDays();
  int64_t ck;
  if (rng_.Bernoulli(0.5) || customer_keys_.empty()) {
    // Register a new customer, visible from today on.
    ck = next_custkey_++;
    int64_t nk = rng_.UniformInt(0, 24);
    char name[32], phone[24];
    std::snprintf(name, sizeof(name), "Customer#%09lld",
                  static_cast<long long>(ck));
    std::snprintf(phone, sizeof(phone), "%02d-%03d-%03d-%04d",
                  static_cast<int>(nk + 10),
                  static_cast<int>(rng_.UniformInt(100, 999)),
                  static_cast<int>(rng_.UniformInt(100, 999)),
                  static_cast<int>(rng_.UniformInt(1000, 9999)));
    static const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                       "HOUSEHOLD", "MACHINERY"};
    Operation op;
    op.kind = Operation::Kind::kInsert;
    op.table = "CUSTOMER";
    op.row = {Value(ck), Value(name), Value("new customer address"),
              Value(nk), Value(phone),
              Value(rng_.UniformInt(0, 999999) / 100.0),
              Value(kSegments[rng_.UniformInt(0, 4)]), Value(today),
              Value(Period::kForever)};
    Emit(txn, std::move(op));
    customer_keys_.push_back(ck);
  } else {
    // Existing customer places the order; the account balance moves.
    ck = customer_keys_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(customer_keys_.size()) - 1))];
    const Row& cust = customers_[{Value(ck)}].front();
    double bal = cust[customer::kAcctBal].AsDouble();
    Operation op;
    op.kind = Operation::Kind::kUpdateCurrent;
    op.table = "CUSTOMER";
    op.key = {Value(ck)};
    op.set = {{customer::kAcctBal,
               Value(bal - rng_.UniformInt(100, 50000) / 100.0)}};
    Emit(txn, std::move(op));
  }

  const int64_t o = next_orderkey_++;
  static const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
  static const char* kShipModes[7] = {"AIR", "FOB", "MAIL", "RAIL",
                                      "REG AIR", "SHIP", "TRUCK"};
  static const char* kShipInstructs[4] = {"COLLECT COD", "DELIVER IN PERSON",
                                          "NONE", "TAKE BACK RETURN"};
  int nlines = static_cast<int>(rng_.UniformInt(1, 7));
  double total = 0.0;
  std::vector<Operation> line_ops;
  for (int ln = 1; ln <= nlines; ++ln) {
    int64_t p = part_keys_[static_cast<size_t>(
        rng_.UniformInt(0, parts_count_ - 1))];
    int64_t i = rng_.UniformInt(0, 3);
    int64_t s = PartSuppSupplier(p, i, suppliers_count_);
    double qty = static_cast<double>(rng_.UniformInt(1, 50));
    double price = (90000.0 + ((p / 10) % 20001) + 100.0 * (p % 1000)) / 100.0;
    double ext = qty * price;
    double disc = rng_.UniformInt(0, 10) / 100.0;
    double tax = rng_.UniformInt(0, 8) / 100.0;
    int64_t ship = today + rng_.UniformInt(1, 121);
    int64_t commit = today + rng_.UniformInt(30, 90);
    int64_t receipt = ship + rng_.UniformInt(1, 30);
    total += ext * (1.0 + tax) * (1.0 - disc);
    Operation op;
    op.kind = Operation::Kind::kInsert;
    op.table = "LINEITEM";
    op.row = {Value(o), Value(p), Value(s), Value(int64_t{ln}), Value(qty),
              Value(ext), Value(disc), Value(tax), Value("N"), Value("O"),
              Value(ship), Value(commit), Value(receipt),
              Value(kShipInstructs[rng_.UniformInt(0, 3)]),
              Value(kShipModes[rng_.UniformInt(0, 6)]), Value(ship),
              Value(receipt)};
    line_ops.push_back(std::move(op));
  }
  Operation order_op;
  order_op.kind = Operation::Kind::kInsert;
  order_op.table = "ORDERS";
  char clerk[24];
  std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                static_cast<int>(rng_.UniformInt(1, 1000)));
  order_op.row = {Value(o),
                  Value(ck),
                  Value("O"),
                  Value(total),
                  Value(today),
                  Value(kPriorities[rng_.UniformInt(0, 4)]),
                  Value(clerk),
                  Value(int64_t{0}),
                  Value(today),
                  Value(Period::kForever),
                  Value(today + 30),
                  Value(Period::kForever)};
  Emit(txn, std::move(order_op));
  for (Operation& op : line_ops) {
    lines_of_order_[o].push_back(op.row[lineitem::kLineNumber].AsInt());
    Emit(txn, std::move(op));
  }
  order_keys_.push_back(o);
  open_orders_.push_back(o);
}

bool HistoryGenerator::CancelOrder(HistoryTransaction* txn) {
  if (open_orders_.empty()) return false;
  size_t idx = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(open_orders_.size()) - 1));
  int64_t o = open_orders_[idx];
  open_orders_[idx] = open_orders_.back();
  open_orders_.pop_back();

  for (int64_t ln : lines_of_order_[o]) {
    Operation op;
    op.kind = Operation::Kind::kDeleteCurrent;
    op.table = "LINEITEM";
    op.key = {Value(o), Value(ln)};
    Emit(txn, std::move(op));
  }
  lines_of_order_.erase(o);
  Operation op;
  op.kind = Operation::Kind::kDeleteCurrent;
  op.table = "ORDERS";
  op.key = {Value(o)};
  Emit(txn, std::move(op));
  return true;
}

bool HistoryGenerator::DeliverOrder(HistoryTransaction* txn) {
  if (open_orders_.empty()) return false;
  size_t idx = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(open_orders_.size()) - 1));
  int64_t o = open_orders_[idx];
  open_orders_[idx] = open_orders_.back();
  open_orders_.pop_back();

  // Delivery date: after the latest active-period begin of every current
  // version, so the sequenced close below always leaves a remainder.
  int64_t max_begin = Period::kBeginningOfTime;
  for (const Row& v : orders_[{Value(o)}]) {
    max_begin = std::max(max_begin, v[orders::kActiveBegin].AsInt());
  }
  int64_t d = std::max(max_begin + 1, TodayDays());

  Operation op;
  op.kind = Operation::Kind::kUpdateCurrent;
  op.table = "ORDERS";
  op.key = {Value(o)};
  op.set = {{orders::kOrderStatus, Value("F")},
            {orders::kReceivableBegin, Value(d)},
            {orders::kReceivableEnd, Value(Period::kForever)}};
  Emit(txn, std::move(op));
  // Close the ACTIVE_TIME dimension with proper sequenced semantics: the
  // order is no longer active from the delivery date on.
  Operation close;
  close.kind = Operation::Kind::kDeleteSequenced;
  close.table = "ORDERS";
  close.key = {Value(o)};
  close.period_index = 0;
  close.period = Period(d, Period::kForever);
  Emit(txn, std::move(close));

  // Only lines already shipped by the delivery date get their receipt
  // confirmed; future-shipped lines keep their projected active period.
  // This keeps LINEITEM strongly insert-dominated, as in Table 2.
  for (int64_t ln : lines_of_order_[o]) {
    auto it = lineitems_.find({Value(o), Value(ln)});
    if (it == lineitems_.end()) continue;
    int64_t lbegin = it->second.front()[lineitem::kActiveBegin].AsInt();
    if (lbegin >= d) continue;
    Operation lop;
    lop.kind = Operation::Kind::kUpdateCurrent;
    lop.table = "LINEITEM";
    lop.key = {Value(o), Value(ln)};
    lop.set = {{lineitem::kLineStatus, Value("F")},
               {lineitem::kReceiptDate, Value(std::max(lbegin + 1, d))},
               {lineitem::kActiveEnd, Value(std::max(lbegin + 1, d))}};
    Emit(txn, std::move(lop));
  }
  delivered_unpaid_.push_back(o);
  return true;
}

bool HistoryGenerator::ReceivePayment(HistoryTransaction* txn) {
  if (delivered_unpaid_.empty()) return false;
  size_t idx = static_cast<size_t>(rng_.UniformInt(
      0, static_cast<int64_t>(delivered_unpaid_.size()) - 1));
  int64_t o = delivered_unpaid_[idx];
  delivered_unpaid_[idx] = delivered_unpaid_.back();
  delivered_unpaid_.pop_back();

  const Row& order = orders_[{Value(o)}].front();
  int64_t recv_begin = order[orders::kReceivableBegin].AsInt();
  int64_t d = std::max(recv_begin + 1, TodayDays());
  double total = order[orders::kTotalPrice].AsDouble();
  int64_t ck = order[orders::kCustKey].AsInt();

  Operation op;
  op.kind = Operation::Kind::kUpdateCurrent;
  op.table = "ORDERS";
  op.key = {Value(o)};
  op.set = {{orders::kReceivableEnd, Value(d)}};
  Emit(txn, std::move(op));

  auto cit = customers_.find({Value(ck)});
  if (cit != customers_.end()) {
    double bal = cit->second.front()[customer::kAcctBal].AsDouble();
    Operation cop;
    cop.kind = Operation::Kind::kUpdateCurrent;
    cop.table = "CUSTOMER";
    cop.key = {Value(ck)};
    cop.set = {{customer::kAcctBal, Value(bal + total / 100.0)}};
    Emit(txn, std::move(cop));
  }
  return true;
}

bool HistoryGenerator::UpdateStock(HistoryTransaction* txn) {
  if (partsupp_keys_.empty()) return false;
  auto [p, s] = partsupp_keys_[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(partsupp_keys_.size()) - 1))];
  Operation op;
  op.kind = Operation::Kind::kUpdateSequenced;
  op.table = "PARTSUPP";
  op.key = {Value(p), Value(s)};
  op.period_index = 0;
  op.period = Period(TodayDays(), Period::kForever);
  op.set = {{partsupp::kAvailQty, Value(rng_.UniformInt(1, 9999))}};
  Emit(txn, std::move(op));
  return true;
}

bool HistoryGenerator::DelayAvailability(HistoryTransaction* txn) {
  if (part_keys_.empty()) return false;
  int64_t p = part_keys_[static_cast<size_t>(
      rng_.UniformInt(0, parts_count_ - 1))];
  const Row& part_row = parts_[{Value(p)}].front();
  double price = part_row[part::kRetailPrice].AsDouble();
  int64_t new_begin = TodayDays() + rng_.UniformInt(1, 90);
  Operation op;
  op.kind = Operation::Kind::kUpdateOverwrite;
  op.table = "PART";
  op.key = {Value(p)};
  op.period_index = 0;
  op.period = Period(new_begin, Period::kForever);
  op.set = {{part::kRetailPrice,
             Value(price * (1.0 + rng_.UniformInt(-3, 3) / 100.0))}};
  Emit(txn, std::move(op));
  return true;
}

bool HistoryGenerator::ChangePriceBySupplier(HistoryTransaction* txn) {
  if (supplier_keys_.empty()) return false;
  int64_t s = supplier_keys_[static_cast<size_t>(
      rng_.UniformInt(0, suppliers_count_ - 1))];
  auto it = parts_of_supplier_.find(s);
  if (it == parts_of_supplier_.end() || it->second.empty()) return false;
  int n = static_cast<int>(rng_.UniformInt(
      1, std::min<int64_t>(3, static_cast<int64_t>(it->second.size()))));
  for (int i = 0; i < n; ++i) {
    int64_t p = it->second[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(it->second.size()) - 1))];
    auto ps = partsupps_.find({Value(p), Value(s)});
    if (ps == partsupps_.end()) continue;
    double cost = ps->second.front()[partsupp::kSupplyCost].AsDouble();
    // Up to +10% so that R7 ("raised by more than 7.5% in one update")
    // has a non-empty, selective answer.
    double factor = 1.0 + rng_.UniformInt(-50, 100) / 1000.0;
    Operation op;
    op.kind = Operation::Kind::kUpdateOverwrite;
    op.table = "PARTSUPP";
    op.key = {Value(p), Value(s)};
    op.period_index = 0;
    op.period = Period(TodayDays(), Period::kForever);
    op.set = {{partsupp::kSupplyCost, Value(cost * factor)}};
    Emit(txn, std::move(op));
  }
  return !txn->ops.empty();
}

bool HistoryGenerator::UpdateSupplier(HistoryTransaction* txn) {
  if (supplier_keys_.empty()) return false;
  int64_t s = supplier_keys_[static_cast<size_t>(
      rng_.UniformInt(0, suppliers_count_ - 1))];
  Operation op;
  op.kind = Operation::Kind::kUpdateCurrent;
  op.table = "SUPPLIER";
  op.key = {Value(s)};
  op.set = {{supplier::kAcctBal,
             Value(rng_.UniformInt(-99999, 999999) / 100.0)}};
  Emit(txn, std::move(op));
  return true;
}

bool HistoryGenerator::ManipulateOrderData(HistoryTransaction* txn) {
  static const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
  for (int attempt = 0; attempt < 8; ++attempt) {
    int64_t o = order_keys_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(order_keys_.size()) - 1))];
    auto it = orders_.find({Value(o)});
    if (it == orders_.end()) continue;  // cancelled
    const Row& order = it->second.front();
    int64_t begin = order[orders::kActiveBegin].AsInt();
    int64_t wb = begin + rng_.UniformInt(0, 30);
    int64_t we = wb + rng_.UniformInt(1, 60);
    Operation op;
    op.kind = Operation::Kind::kUpdateOverwrite;
    op.table = "ORDERS";
    op.key = {Value(o)};
    op.period_index = 0;
    op.period = Period(wb, we);
    op.set = {{orders::kOrderPriority,
               Value(kPriorities[rng_.UniformInt(0, 4)])}};
    Emit(txn, std::move(op));
    return true;
  }
  return false;
}

History HistoryGenerator::Generate() {
  History history;
  const int64_t n_scenarios =
      std::max<int64_t>(1, static_cast<int64_t>(config_.m * 1e6));
  history.reserve(static_cast<size_t>(n_scenarios));
  std::vector<double> probs = config_.scenario_weights.empty()
                                  ? ScenarioProbabilities()
                                  : config_.scenario_weights;
  for (int64_t i = 0; i < n_scenarios; ++i) {
    AdvanceClock();
    HistoryTransaction txn;
    bool done = false;
    while (!done) {
      txn.scenario = static_cast<Scenario>(rng_.WeightedChoice(probs));
      txn.ops.clear();
      switch (txn.scenario) {
        case Scenario::kNewOrder:
          NewOrder(&txn);
          done = true;
          break;
        case Scenario::kCancelOrder:
          done = CancelOrder(&txn);
          break;
        case Scenario::kDeliverOrder:
          done = DeliverOrder(&txn);
          break;
        case Scenario::kReceivePayment:
          done = ReceivePayment(&txn);
          break;
        case Scenario::kUpdateStock:
          done = UpdateStock(&txn);
          break;
        case Scenario::kDelayAvailability:
          done = DelayAvailability(&txn);
          break;
        case Scenario::kChangePriceBySupplier:
          done = ChangePriceBySupplier(&txn);
          break;
        case Scenario::kUpdateSupplier:
          done = UpdateSupplier(&txn);
          break;
        case Scenario::kManipulateOrderData:
          done = ManipulateOrderData(&txn);
          break;
        case Scenario::kCount:
          break;
      }
    }
    ++stats_.scenario_counts[static_cast<size_t>(txn.scenario)];
    ++stats_.total_transactions;
    history.push_back(std::move(txn));
  }
  return history;
}

TpchData HistoryGenerator::EndState() const {
  TpchData out;
  out.region = region_rows_;
  out.nation = nation_rows_;
  auto dump = [](const VersionMap& state, std::vector<Row>* rows) {
    for (const auto& [key, versions] : state) {
      for (const Row& v : versions) rows->push_back(v);
    }
  };
  dump(customers_, &out.customer);
  dump(orders_, &out.orders);
  dump(lineitems_, &out.lineitem);
  dump(parts_, &out.part);
  dump(partsupps_, &out.partsupp);
  dump(suppliers_, &out.supplier);
  return out;
}

Status CreateBiHTables(TemporalEngine& engine) {
  for (const TableDef& def : BiHSchema()) {
    BIH_RETURN_IF_ERROR(engine.CreateTable(def));
  }
  return Status::OK();
}

Status LoadInitialData(TemporalEngine& engine, const TpchData& data) {
  // The whole version-0 population commits as one transaction, so every
  // initial row shares the first system timestamp ("version 0").
  engine.Begin();
  for (const TableDef& def : BiHSchema()) {
    for (const Row& row : data.TableRows(def.name)) {
      BIH_RETURN_IF_ERROR(engine.Insert(def.name, row));
    }
  }
  return engine.Commit();
}

Status ReplayHistory(TemporalEngine& engine, const History& history,
                     size_t batch_size, std::vector<double>* latencies,
                     std::vector<Scenario>* scenarios) {
  if (batch_size == 0) batch_size = 1;
  size_t i = 0;
  while (i < history.size()) {
    size_t end = std::min(history.size(), i + batch_size);
    auto t0 = std::chrono::steady_clock::now();
    engine.Begin();
    for (size_t j = i; j < end; ++j) {
      for (const Operation& op : history[j].ops) {
        Status st;
        switch (op.kind) {
          case Operation::Kind::kInsert:
            st = engine.Insert(op.table, op.row);
            break;
          case Operation::Kind::kUpdateCurrent:
            st = engine.UpdateCurrent(op.table, op.key, op.set);
            break;
          case Operation::Kind::kUpdateSequenced:
            st = engine.UpdateSequenced(op.table, op.key, op.period_index,
                                        op.period, op.set);
            break;
          case Operation::Kind::kUpdateOverwrite:
            st = engine.UpdateOverwrite(op.table, op.key, op.period_index,
                                        op.period, op.set);
            break;
          case Operation::Kind::kDeleteCurrent:
            st = engine.DeleteCurrent(op.table, op.key);
            break;
          case Operation::Kind::kDeleteSequenced:
            st = engine.DeleteSequenced(op.table, op.key, op.period_index,
                                        op.period);
            break;
        }
        if (!st.ok()) return st;
      }
    }
    BIH_RETURN_IF_ERROR(engine.Commit());
    auto t1 = std::chrono::steady_clock::now();
    if (latencies != nullptr) {
      latencies->push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    if (scenarios != nullptr) {
      scenarios->push_back(history[i].scenario);
    }
    i = end;
  }
  return Status::OK();
}

}  // namespace bih
