#include "common/rng.h"

#include <cmath>

namespace bih {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : state_) s = SplitMix64(&x);
  zipf_n_ = 0;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BIH_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Debiased modulo via rejection sampling.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % range);
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return (Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    BIH_CHECK(w >= 0.0);
    total += w;
  }
  BIH_CHECK(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

double Rng::Exponential(double mean) {
  BIH_CHECK(mean > 0.0);
  double u = UniformDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

int64_t Rng::Zipf(int64_t n, double theta) {
  BIH_CHECK(n >= 1);
  BIH_CHECK(theta > 0.0 && theta < 1.0);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = Zeta(n, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    double zeta2 = Zeta(2, theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  double u = UniformDouble();
  double uz = u * zipf_zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, zipf_theta_)) return 2;
  return 1 + static_cast<int64_t>(
                 double(zipf_n_) *
                 std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

}  // namespace bih
