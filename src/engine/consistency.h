#ifndef TPCBIH_ENGINE_CONSISTENCY_H_
#define TPCBIH_ENGINE_CONSISTENCY_H_

#include <string>
#include <vector>

#include "engine/engine.h"

namespace bih {

// Bitemporal consistency checking (the "non-trivial aspects such as
// (temporal) consistency" of Section 4). For every key of a table the
// checker verifies, over the full stored history:
//
//  1. No bitemporal overlap: two versions of one key must never be visible
//     at the same system instant with intersecting application periods —
//     a fact may have only one value per (system, application) coordinate.
//  2. Well-formed periods: application begin < end, system begin < end.
//  3. Exactly the versions with an open system interval are the currently
//     visible ones the engine reports.
struct ConsistencyViolation {
  std::string table;
  std::vector<Value> key;
  std::string message;
};

struct ConsistencyReport {
  size_t keys_checked = 0;
  size_t versions_checked = 0;
  std::vector<ConsistencyViolation> violations;

  bool ok() const { return violations.empty(); }
};

// Checks one table. `check_app_overlap` can be disabled for tables whose
// workload manipulates period columns as plain data (the benchmark's
// ORDERS/LINEITEM delivery updates), where transient overlaps are allowed.
ConsistencyReport CheckBitemporalConsistency(TemporalEngine& engine,
                                             const std::string& table,
                                             bool check_app_overlap = true,
                                             size_t max_violations = 20);

}  // namespace bih

#endif  // TPCBIH_ENGINE_CONSISTENCY_H_
