// Differential parallel-vs-serial scan harness (the PR's headline test).
//
// The morsel-driven scan path promises *byte-identical* output: same rows,
// same order, same ExecStats, for every engine, query class, morsel size
// and thread count — so the whole sweep below compares parallel runs
// against a serial baseline without any canonicalization. A second sweep
// randomizes specs/morsels/threads and injects deadlines, and the
// cancellation tests prove an interrupted parallel scan returns exactly one
// status and leaves no pool worker running (scheduler idle-count). Run
// under TSan in CI alongside the concurrency suites.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/engine.h"
#include "exec/parallel.h"
#include "reference_model.h"
#include "server/session.h"
#include "temporal/clock.h"

namespace bih {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// A bitemporal ITEM population with plenty of current and history versions,
// plus the lockstep reference model (one commit tick per DML statement,
// successful or not, exactly like the engines' dispatch wrappers).
struct Loaded {
  std::unique_ptr<TemporalEngine> engine;
  Model model;
  std::vector<int64_t> commit_ts;
  std::vector<int64_t> keys;
};

Loaded BuildLoadedEngine(const std::string& letter, uint64_t seed,
                         int num_ops) {
  Loaded l;
  l.engine = MakeEngine(letter);
  EXPECT_TRUE(l.engine->CreateTable(FuzzItemDef()).ok());
  Rng rng(seed);
  CommitClock clock;
  int64_t next_key = 1;
  for (int i = 0; i < num_ops; ++i) {
    const int choice = static_cast<int>(rng.UniformInt(0, 9));
    const int64_t ts = clock.NextCommit().micros();
    l.commit_ts.push_back(ts);
    if (choice <= 3 || l.keys.empty()) {
      const int64_t id = next_key++;
      const int64_t vb = rng.UniformInt(0, 300);
      const int64_t ve = rng.Bernoulli(0.3) ? Period::kForever
                                            : vb + rng.UniformInt(1, 200);
      Row row{Value(id), Value(double(rng.UniformInt(1, 1000))),
              Value(rng.Bernoulli(0.5) ? "x" : "y"), Value(vb), Value(ve)};
      l.model.Insert(row, ts);
      l.keys.push_back(id);
      EXPECT_TRUE(l.engine->Insert("ITEM", std::move(row)).ok());
    } else {
      const int64_t id = l.keys[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(l.keys.size()) - 1))];
      std::vector<ColumnAssignment> set = {
          {1, Value(double(rng.UniformInt(1, 1000)))}};
      const int64_t wb = rng.UniformInt(0, 400);
      const Period window(wb, rng.Bernoulli(0.3)
                                  ? Period::kForever
                                  : wb + rng.UniformInt(1, 150));
      Status st;
      bool expect_ok = false;
      switch (choice) {
        case 4:
        case 5:
          expect_ok = l.model.UpdateCurrent(id, set, ts);
          st = l.engine->UpdateCurrent("ITEM", {Value(id)}, set);
          break;
        case 6:
          expect_ok = l.model.Sequenced(id, window, set, 0, ts);
          st = l.engine->UpdateSequenced("ITEM", {Value(id)}, 0, window, set);
          break;
        case 7:
          expect_ok = l.model.Sequenced(id, window, set, 2, ts);
          st = l.engine->UpdateOverwrite("ITEM", {Value(id)}, 0, window, set);
          break;
        case 8:
          expect_ok = l.model.Sequenced(id, window, {}, 1, ts);
          st = l.engine->DeleteSequenced("ITEM", {Value(id)}, 0, window);
          break;
        default:
          expect_ok = l.model.DeleteCurrent(id, ts);
          st = l.engine->DeleteCurrent("ITEM", {Value(id)});
          break;
      }
      EXPECT_EQ(expect_ok, st.ok()) << "op " << i << ": " << st.ToString();
    }
  }
  // Publish deferred state (System B's undo log) so that every scan below
  // is a pure read — the precondition for fanning morsels out to threads.
  l.engine->PrepareForReads();
  return l;
}

// The five query classes of the differential sweep.
struct QueryCase {
  std::string name;
  TemporalScanSpec spec;
  int64_t key = -1;       // -1: no key constraint
  bool aggregate = false; // compare SUM/COUNT instead of (only) rows
};

std::vector<QueryCase> QueryCases(const Loaded& l) {
  const int64_t mid_ts = l.commit_ts[l.commit_ts.size() / 2];
  const int64_t late_ts = l.commit_ts[(l.commit_ts.size() * 3) / 4];
  std::vector<QueryCase> cases;
  {
    QueryCase q;  // time travel: one system-time point, all of app time
    q.name = "time_travel";
    q.spec.system_time = TemporalSelector::AsOf(mid_ts);
    q.spec.app_time = TemporalSelector::All();
    cases.push_back(q);
  }
  {
    QueryCase q;  // timeslice: one app-time point across all versions
    q.name = "timeslice";
    q.spec.system_time = TemporalSelector::All();
    q.spec.app_time = TemporalSelector::AsOf(150);
    cases.push_back(q);
  }
  {
    QueryCase q;  // key in time: one key's full history
    q.name = "key_in_time";
    q.spec.system_time = TemporalSelector::All();
    q.spec.app_time = TemporalSelector::All();
    q.key = l.keys[l.keys.size() / 2];
    cases.push_back(q);
  }
  {
    QueryCase q;  // bitemporal: points on both axes
    q.name = "bitemporal";
    q.spec.system_time = TemporalSelector::AsOf(late_ts);
    q.spec.app_time = TemporalSelector::AsOf(200);
    cases.push_back(q);
  }
  {
    QueryCase q;  // aggregate over a full scan (order-sensitive FP sum)
    q.name = "aggregate";
    q.spec.system_time = TemporalSelector::All();
    q.spec.app_time = TemporalSelector::All();
    q.aggregate = true;
    cases.push_back(q);
  }
  return cases;
}

ScanRequest MakeRequest(const QueryCase& qc, int threads, uint64_t morsel,
                        ScanScheduler* pool, ExecStats* stats) {
  ScanRequest req;
  req.table = "ITEM";
  req.temporal = qc.spec;
  if (qc.key >= 0) req.equals = {{0, Value(qc.key)}};
  req.exec.scan_threads = threads;
  req.exec.morsel_size = morsel;
  req.exec.scheduler = pool;
  req.stats = stats;
  return req;
}

std::vector<Row> RunScan(TemporalEngine& e, const QueryCase& qc, int threads,
                         uint64_t morsel, ScanScheduler* pool,
                         ExecStats* stats) {
  ScanRequest req = MakeRequest(qc, threads, morsel, pool, stats);
  std::vector<Row> rows;
  e.Scan(req, [&](const Row& r) {
    rows.push_back(r);
    return true;
  });
  return rows;
}

// Byte-for-byte: same count, same order, same cell values.
void ExpectIdenticalRows(const std::vector<Row>& expect,
                         const std::vector<Row>& got,
                         const std::string& what) {
  ASSERT_EQ(expect.size(), got.size()) << what;
  for (size_t r = 0; r < expect.size(); ++r) {
    ASSERT_EQ(expect[r].size(), got[r].size()) << what << " row " << r;
    for (size_t c = 0; c < expect[r].size(); ++c) {
      ASSERT_EQ(0, expect[r][c].Compare(got[r][c]))
          << what << " row " << r << " col " << c;
    }
  }
}

void ExpectIdenticalStats(const ExecStats& expect, const ExecStats& got,
                          const std::string& what) {
  EXPECT_EQ(expect.rows_examined, got.rows_examined) << what;
  EXPECT_EQ(expect.rows_output, got.rows_output) << what;
  EXPECT_EQ(expect.partitions_touched, got.partitions_touched) << what;
  EXPECT_EQ(expect.used_index, got.used_index) << what;
  EXPECT_EQ(expect.index_name, got.index_name) << what;
  EXPECT_EQ(expect.touched_history, got.touched_history) << what;
}

// Order-sensitive aggregate: identical row order implies an identical
// floating-point sum, which is exactly what the ordered merge guarantees.
std::pair<uint64_t, double> SumPrice(const std::vector<Row>& rows) {
  double sum = 0.0;
  for (const Row& r : rows) sum += r[1].AsDouble();
  return {rows.size(), sum};
}

bool SchedulerDrained(ScanScheduler* pool, milliseconds timeout) {
  const auto until = steady_clock::now() + timeout;
  while (steady_clock::now() < until) {
    if (pool->idle_workers() == pool->num_workers()) return true;
    std::this_thread::yield();
  }
  return pool->idle_workers() == pool->num_workers();
}

class ParallelScanTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Engines, ParallelScanTest,
                         ::testing::ValuesIn(AllEngineLetters()));

// Satellite 1: engine x query class x morsel {1, 7, 64, whole-partition} x
// threads 1..8, every combination byte-compared against the serial scan.
TEST_P(ParallelScanTest, DifferentialSweepMatchesSerialByteForByte) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/11, /*num_ops=*/700);
  ScanScheduler pool(/*helpers=*/7);
  // Effectively one morsel spanning any partition: the engagement rule then
  // keeps the scan serial, which must also be byte-identical.
  const uint64_t kWholePartition = uint64_t{1} << 30;
  const uint64_t kMorsels[] = {1, 7, 64, kWholePartition};

  for (const QueryCase& qc : QueryCases(l)) {
    ExecStats serial_stats;
    const std::vector<Row> serial =
        RunScan(*l.engine, qc, /*threads=*/1, /*morsel=*/0, nullptr,
                &serial_stats);
    // The sweep only means something if the full scans return work to split.
    if (!qc.aggregate && qc.key < 0) {
      EXPECT_GT(serial.size(), 0u) << qc.name;
    }

    for (uint64_t morsel : kMorsels) {
      for (int threads = 1; threads <= 8; ++threads) {
        const std::string what = GetParam() + "/" + qc.name + "/morsel=" +
                                 std::to_string(morsel) +
                                 "/threads=" + std::to_string(threads);
        ExecStats par_stats;
        const std::vector<Row> par =
            RunScan(*l.engine, qc, threads, morsel, &pool, &par_stats);
        ExpectIdenticalRows(serial, par, what);
        ExpectIdenticalStats(serial_stats, par_stats, what);
        if (qc.aggregate) {
          EXPECT_EQ(SumPrice(serial), SumPrice(par)) << what;
        }
      }
    }
  }
  EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000)));
}

// The parallel path must agree with the storage-independent brute-force
// model, not only with the serial scan (guards against a bug both paths
// share downstream of the reference).
TEST_P(ParallelScanTest, ParallelScanMatchesReferenceModel) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/23, /*num_ops=*/400);
  ScanScheduler pool(/*helpers=*/7);
  QueryCase qc;
  qc.name = "all_versions";
  qc.spec.system_time = TemporalSelector::All();
  qc.spec.app_time = TemporalSelector::All();
  const int64_t now = l.engine->Now().micros();
  ExecStats stats;
  std::vector<Row> got = Canonical(
      RunScan(*l.engine, qc, /*threads=*/8, /*morsel=*/16, &pool, &stats));
  std::vector<Row> expect = Canonical(l.model.Query(qc.spec, now, -1));
  ExpectIdenticalRows(expect, got, GetParam() + "/model");
}

// Satellite 1 (randomized leg): random specs, keys, morsel sizes and thread
// counts; occasional injected deadlines. Whenever a run completes it must
// be byte-identical to serial; when it trips it must report exactly one
// status and drain the pool.
TEST_P(ParallelScanTest, RandomizedDifferentialWithInjectedDeadlines) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/5, /*num_ops=*/500);
  ScanScheduler pool(/*helpers=*/7);
  Rng rng(99);
  const int kIters = 60;
  for (int i = 0; i < kIters; ++i) {
    QueryCase qc;
    qc.name = "iter" + std::to_string(i);
    auto pick_ts = [&] {
      return l.commit_ts[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(l.commit_ts.size()) - 1))];
    };
    switch (rng.UniformInt(0, 2)) {
      case 0:
        qc.spec.system_time = TemporalSelector::AsOf(pick_ts());
        break;
      case 1: {
        int64_t a = pick_ts(), b = pick_ts();
        if (a > b) std::swap(a, b);
        qc.spec.system_time = TemporalSelector::Between(a, b + 1);
        break;
      }
      default:
        qc.spec.system_time = TemporalSelector::All();
        break;
    }
    switch (rng.UniformInt(0, 2)) {
      case 0:
        qc.spec.app_time = TemporalSelector::AsOf(rng.UniformInt(0, 500));
        break;
      case 1: {
        int64_t a = rng.UniformInt(0, 400);
        qc.spec.app_time =
            TemporalSelector::Between(a, a + rng.UniformInt(1, 200));
        break;
      }
      default:
        qc.spec.app_time = TemporalSelector::All();
        break;
    }
    if (rng.Bernoulli(0.3)) {
      qc.key = l.keys[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(l.keys.size()) - 1))];
    }
    const int threads = static_cast<int>(rng.UniformInt(2, 8));
    const uint64_t morsel = static_cast<uint64_t>(rng.UniformInt(1, 128));

    if (rng.Bernoulli(0.25)) {
      // Injected deadline: anywhere from already-expired to "usually
      // finishes". Either outcome is legal; the invariants are a single
      // coherent status, no partial output on failure, and a drained pool.
      QueryContext ctx = QueryContext::WithTimeout(
          std::chrono::microseconds(rng.UniformInt(0, 500)));
      ExecStats stats;
      ScanRequest req = MakeRequest(qc, threads, morsel, &pool, &stats);
      req.ctx = &ctx;
      std::vector<Row> rows;
      l.engine->Scan(req, [&](const Row& r) {
        rows.push_back(r);
        return true;
      });
      const Status st = ctx.status();
      EXPECT_EQ(st.code(), ctx.status().code()) << "status must be sticky";
      if (st.ok()) {
        ExecStats serial_stats;
        ExpectIdenticalRows(
            RunScan(*l.engine, qc, 1, 0, nullptr, &serial_stats), rows,
            qc.name + "/deadline-survived");
      } else {
        EXPECT_EQ(Status::Code::kDeadlineExceeded, st.code()) << qc.name;
      }
      EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000))) << qc.name;
      continue;
    }

    ExecStats serial_stats;
    const std::vector<Row> serial =
        RunScan(*l.engine, qc, 1, 0, nullptr, &serial_stats);
    ExecStats par_stats;
    const std::vector<Row> par =
        RunScan(*l.engine, qc, threads, morsel, &pool, &par_stats);
    const std::string what = GetParam() + "/" + qc.name + "/threads=" +
                             std::to_string(threads) +
                             "/morsel=" + std::to_string(morsel);
    ExpectIdenticalRows(serial, par, what);
    ExpectIdenticalStats(serial_stats, par_stats, what);
  }
}

// Top-N early stop (the consumer returns false): the parallel scan must
// stop at the same row and report the same rows_examined the serial scan
// would — the examined_at bookkeeping in the ordered merge.
TEST_P(ParallelScanTest, TopNEarlyStopKeepsExactSerialCounters) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/31, /*num_ops=*/600);
  ScanScheduler pool(/*helpers=*/7);
  QueryCase qc;
  qc.spec.system_time = TemporalSelector::All();
  qc.spec.app_time = TemporalSelector::All();
  for (size_t top_n : {1, 5, 23}) {
    for (uint64_t morsel : {uint64_t{3}, uint64_t{64}}) {
      auto run = [&](int threads, ScanScheduler* p, ExecStats* stats) {
        ScanRequest req = MakeRequest(qc, threads, morsel, p, stats);
        std::vector<Row> rows;
        l.engine->Scan(req, [&](const Row& r) {
          rows.push_back(r);
          return rows.size() < top_n;
        });
        return rows;
      };
      ExecStats serial_stats, par_stats;
      const std::vector<Row> serial = run(1, nullptr, &serial_stats);
      const std::vector<Row> par = run(8, &pool, &par_stats);
      const std::string what = GetParam() + "/topN=" + std::to_string(top_n) +
                               "/morsel=" + std::to_string(morsel);
      ExpectIdenticalRows(serial, par, what);
      ExpectIdenticalStats(serial_stats, par_stats, what);
    }
  }
  EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000)));
}

// Satellite 3: a parallel scan cancelled from its own callback stops after
// exactly the rows emitted so far, reports kCancelled once, and the pool
// drains back to fully idle.
TEST_P(ParallelScanTest, CancelFromCallbackStopsParallelScanPromptly) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/17, /*num_ops=*/600);
  ScanScheduler pool(/*helpers=*/7);
  QueryContext ctx;
  QueryCase qc;
  qc.spec.system_time = TemporalSelector::All();
  qc.spec.app_time = TemporalSelector::All();
  ExecStats stats;
  ScanRequest req = MakeRequest(qc, /*threads=*/8, /*morsel=*/1, &pool, &stats);
  req.ctx = &ctx;
  int emitted = 0;
  l.engine->Scan(req, [&](const Row&) {
    if (++emitted == 3) ctx.Cancel();
    return true;
  });
  EXPECT_EQ(3, emitted);
  EXPECT_EQ(Status::Code::kCancelled, ctx.status().code());
  EXPECT_EQ(Status::Code::kCancelled, ctx.status().code());  // exactly one
  EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000)));
}

// Satellite 3: an already-expired deadline trips on the coordinator's first
// per-morsel check — no rows are emitted, the status is kDeadlineExceeded
// (stable across repeated reads), and no worker stays busy.
TEST_P(ParallelScanTest, DeadlineExceededLeavesNoWorkerRunning) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/13, /*num_ops=*/600);
  ScanScheduler pool(/*helpers=*/7);
  QueryContext ctx(QueryContext::Clock::now() - milliseconds(1));
  QueryCase qc;
  qc.spec.system_time = TemporalSelector::All();
  qc.spec.app_time = TemporalSelector::All();
  ExecStats stats;
  ScanRequest req = MakeRequest(qc, /*threads=*/8, /*morsel=*/4, &pool, &stats);
  req.ctx = &ctx;
  int emitted = 0;
  l.engine->Scan(req, [&](const Row&) {
    ++emitted;
    return true;
  });
  EXPECT_EQ(0, emitted);
  EXPECT_EQ(Status::Code::kDeadlineExceeded, ctx.status().code());
  EXPECT_EQ(Status::Code::kDeadlineExceeded, ctx.status().code());
  EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000)));
}

// Satellite 3 (watchdog path): Cancel() arriving from *another thread*
// mid-scan — the exact mechanism the session watchdog uses — must reach
// the workers through the per-row cancel poll and stop work everywhere.
TEST_P(ParallelScanTest, ExternalCancelMidScanPropagatesToAllWorkers) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/19, /*num_ops=*/600);
  ScanScheduler pool(/*helpers=*/7);
  QueryContext ctx;
  QueryCase qc;
  qc.spec.system_time = TemporalSelector::All();
  qc.spec.app_time = TemporalSelector::All();
  ExecStats stats;
  ScanRequest req = MakeRequest(qc, /*threads=*/8, /*morsel=*/2, &pool, &stats);
  req.ctx = &ctx;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ctx.Cancel();
  });
  int emitted = 0;
  ExecStats serial_stats;
  const size_t total = RunScan(*l.engine, qc, 1, 0, nullptr, &serial_stats).size();
  l.engine->Scan(req, [&](const Row&) {
    ++emitted;
    // Slow the emission so the cancel reliably lands mid-scan.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return true;
  });
  killer.join();
  EXPECT_LT(static_cast<size_t>(emitted), total);
  EXPECT_EQ(Status::Code::kCancelled, ctx.status().code());
  EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000)));
}

// Satellite 3 (session watchdog): through the SessionManager, ever-tighter
// deadlines must eventually yield kDeadlineExceeded from a parallel read;
// afterwards the manager's own pool is fully idle, the failed read returned
// no rows, and the next unrestricted read succeeds.
TEST_P(ParallelScanTest, SessionDeadlineDrainsManagerPool) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/3, /*num_ops=*/500);
  SessionConfig cfg;
  cfg.scan_threads = 4;
  cfg.watchdog_period = milliseconds(1);
  SessionManager server(l.engine.get(), cfg);
  ASSERT_NE(nullptr, server.scheduler());
  EXPECT_EQ(4, server.scan_threads());

  ScanRequest req;
  req.table = "ITEM";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  req.exec.morsel_size = 2;  // many morsels => many deadline check points

  bool saw_deadline = false;
  for (int64_t budget_us : {2000, 500, 100, 20, 5, 0}) {
    QueryContext ctx =
        QueryContext::WithTimeout(std::chrono::microseconds(budget_us));
    std::vector<Row> rows;
    Status st = server.Read(req, &ctx, &rows);
    if (st.code() == Status::Code::kDeadlineExceeded) {
      saw_deadline = true;
      EXPECT_TRUE(rows.empty());
      break;
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(SchedulerDrained(server.scheduler(), milliseconds(2000)));
  EXPECT_GE(server.GetStats().reads_deadline, 1u);

  std::vector<Row> rows;
  ASSERT_TRUE(server.Read(req, nullptr, &rows).ok());
  EXPECT_GT(rows.size(), 0u);
}

// Lock-discipline regression (referenced from ScanScheduler::Retire): after
// a cancelled parallel scan, Retire's stop/drain handoff must leave every
// helper idle before the scheduler is handed to the next query. The
// *immediate* reuse below — no settling sleep between the cancelled scan and
// the full one — is the part that catches a broken drain: a helper still
// chewing the old job would race the new job's merge and break the
// byte-identical guarantee.
TEST_P(ParallelScanTest, RetireDrainsHelpersBeforeImmediateReuse) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/37, /*num_ops=*/600);
  ScanScheduler pool(/*helpers=*/7);
  QueryCase qc;
  qc.spec.system_time = TemporalSelector::All();
  qc.spec.app_time = TemporalSelector::All();
  ExecStats serial_stats;
  const std::vector<Row> serial =
      RunScan(*l.engine, qc, 1, 0, nullptr, &serial_stats);
  ASSERT_GT(serial.size(), 3u);

  for (int round = 0; round < 5; ++round) {
    QueryContext ctx;
    ExecStats stats;
    ScanRequest req =
        MakeRequest(qc, /*threads=*/8, /*morsel=*/1, &pool, &stats);
    req.ctx = &ctx;
    int emitted = 0;
    l.engine->Scan(req, [&](const Row&) {
      if (++emitted == 2) ctx.Cancel();
      return true;
    });
    EXPECT_EQ(Status::Code::kCancelled, ctx.status().code());
    // Retire must have fully drained by the time Scan returned: the pool is
    // reusable right now, with no straggler worker from the dead job.
    ExecStats reuse_stats;
    const std::vector<Row> reuse =
        RunScan(*l.engine, qc, /*threads=*/8, /*morsel=*/2, &pool,
                &reuse_stats);
    ExpectIdenticalRows(serial, reuse,
                        GetParam() + "/retire-reuse round " +
                            std::to_string(round));
    ExpectIdenticalStats(serial_stats, reuse_stats,
                         GetParam() + "/retire-reuse round " +
                             std::to_string(round));
  }
  // Workers re-park asynchronously after the retire handoff; what Retire
  // guarantees synchronously is that no helper still touches the dead job
  // (proven by the byte-identical reuse above).
  EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000)));
}

// Same handoff under deadline abandonment instead of an in-band cancel:
// after Scan returns the job is retired, so the pool drains back to fully
// idle with no further work posted.
TEST_P(ParallelScanTest, RetireDrainsAfterDeadlineAbandonment) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/41, /*num_ops=*/600);
  ScanScheduler pool(/*helpers=*/7);
  QueryCase qc;
  qc.spec.system_time = TemporalSelector::All();
  qc.spec.app_time = TemporalSelector::All();
  for (int64_t budget_us : {0, 5, 50}) {
    QueryContext ctx =
        QueryContext::WithTimeout(std::chrono::microseconds(budget_us));
    ExecStats stats;
    ScanRequest req =
        MakeRequest(qc, /*threads=*/8, /*morsel=*/1, &pool, &stats);
    req.ctx = &ctx;
    std::vector<Row> rows;
    l.engine->Scan(req, [&](const Row& r) {
      rows.push_back(r);
      return true;
    });
    // Whether the scan beat the deadline or not, every helper must have
    // left the job by the time Scan returns (Retire's guarantee) and the
    // pool returns to fully idle without any new work being posted.
    EXPECT_TRUE(SchedulerDrained(&pool, milliseconds(2000)))
        << GetParam() << " budget=" << budget_us;
  }
}

// Lock-discipline regression (SessionManager watermark publication): the
// watermark a reader acquires from OpenSnapshot must never lag a write that
// already returned — PublishWatermark's release store under the exclusive
// lock pairs with the acquire load in OpenSnapshot. A stale watermark would
// make the pinned snapshot silently exclude the freshest committed rows.
TEST_P(ParallelScanTest, WatermarkPublicationCoversCompletedWrites) {
  Loaded l = BuildLoadedEngine(GetParam(), /*seed=*/43, /*num_ops=*/200);
  SessionConfig cfg;
  cfg.scan_threads = 4;
  SessionManager server(l.engine.get(), cfg);

  std::atomic<int64_t> last_committed{0};
  std::atomic<bool> done{false};
  std::thread observer([&] {
    int64_t prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      SessionManager::Snapshot snap = server.OpenSnapshot();
      // Monotone: published watermarks never move backwards.
      EXPECT_GE(snap.watermark, prev);
      prev = snap.watermark;
      std::this_thread::yield();
    }
  });

  int64_t next_key = 100000;
  for (int i = 0; i < 50; ++i) {
    const int64_t id = next_key++;
    Status st = server.Write([&](TemporalEngine& e) {
      return e.Insert("ITEM", Row{Value(id), Value(1.0), Value("w"),
                                  Value(int64_t{0}),
                                  Value(Period::kForever)});
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    const int64_t committed = l.engine->Now().micros();
    last_committed.store(committed);
    // The write has returned, so the very next snapshot must carry a
    // watermark at or past the commit clock the write advanced.
    SessionManager::Snapshot snap = server.OpenSnapshot();
    EXPECT_GE(snap.watermark, committed - 1) << "write " << i;
  }
  done.store(true, std::memory_order_release);
  observer.join();
}

// Reads through the session layer must be byte-identical whether the
// manager runs them serial or parallel (the pinned-snapshot rewrite of
// SYS_TIME_END included).
TEST_P(ParallelScanTest, SessionReadsIdenticalSerialAndParallel) {
  Loaded serial_side = BuildLoadedEngine(GetParam(), /*seed=*/29, 400);
  Loaded parallel_side = BuildLoadedEngine(GetParam(), /*seed=*/29, 400);
  SessionConfig serial_cfg;
  serial_cfg.scan_threads = 1;
  SessionConfig parallel_cfg;
  parallel_cfg.scan_threads = 8;
  SessionManager serial_server(serial_side.engine.get(), serial_cfg);
  SessionManager parallel_server(parallel_side.engine.get(), parallel_cfg);

  ScanRequest req;
  req.table = "ITEM";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  req.exec.morsel_size = 8;

  std::vector<Row> serial_rows, parallel_rows;
  ASSERT_TRUE(serial_server.Read(req, nullptr, &serial_rows).ok());
  ASSERT_TRUE(parallel_server.Read(req, nullptr, &parallel_rows).ok());
  ExpectIdenticalRows(serial_rows, parallel_rows, GetParam() + "/session");
}

}  // namespace
}  // namespace bih
