#include "analysis/passes.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/json.h"

namespace bih {
namespace analysis {

namespace {

const char* kLockOrder = "lock-order";
const char* kGuardCoverage = "guard-coverage";
const char* kBlocking = "blocking-under-lock";

// Default no-blocking set: holding either of these across a device wait
// or a sleep stalls every reader and writer (rw_mu_) or the whole group
// commit staging lane (GroupCommit::mu_ — the leader must drop it before
// SyncGroup's fdatasync, the released-mutex device-wait invariant).
// WalWriter::mu_ is deliberately NOT here: the legacy single-lane WAL
// path syncs under its mutex by design — that is exactly the bottleneck
// the group-commit lane exists to bypass. Pass --no-block WalWriter::mu_
// to audit it anyway.
const char* kDefaultNoBlock[] = {
    "SessionManager::rw_mu_",
    "GroupCommit::mu_",
};

const FileText* FindText(const std::vector<FileText>& texts,
                         const std::string& path) {
  for (const FileText& t : texts) {
    if (t.path == path) return &t;
  }
  return nullptr;
}

bool SuppressedAt(const std::vector<FileText>& texts, const std::string& path,
                  size_t line, const char* rule) {
  const FileText* t = FindText(texts, path);
  return t != nullptr && line > 0 && Suppressed(*t, line - 1, rule);
}

std::string JoinNodes(const std::vector<std::string>& nodes) {
  std::string out;
  for (const std::string& n : nodes) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

std::string DescribeWitness(const LockEdge& e) {
  if (e.witnesses.empty()) {
    return e.from + " -> " + e.to + " (declared)";
  }
  const Witness& w = e.witnesses.front();
  std::string out = e.from + " -> " + e.to + " observed in " + w.func + " (" +
                    w.file + ":" + std::to_string(w.line) + ")";
  if (!w.chain.empty()) out += " via " + w.chain;
  return out;
}

void RunLockOrderPass(const std::vector<FileText>& texts,
                      const AnalyzeResult& r, std::vector<Finding>* findings) {
  const LockGraph& g = r.graph;

  for (const LockGraph::Cycle& c : g.cycles) {
    // Anchor the finding at the first observed witness; a cycle built
    // purely from declared edges anchors at the first edge's `to` field.
    std::string path;
    size_t line = 0;
    for (const LockEdge* e : c.edges) {
      if (!e->witnesses.empty()) {
        path = e->witnesses.front().file;
        line = e->witnesses.front().line;
        break;
      }
    }
    if (path.empty() && !c.edges.empty()) {
      const FieldDecl* f = nullptr;
      // Declared edges carry no witness; use the graph's resolver-free
      // fallback: report at line 1 of the first file we know about.
      (void)f;
      path = c.edges.front()->to;
      line = 1;
    }
    std::vector<std::string> loop = c.nodes;
    loop.push_back(c.nodes.front());
    std::string msg = "potential deadlock cycle: " + JoinNodes(loop);
    for (const LockEdge* e : c.edges) {
      msg += "; " + DescribeWitness(*e);
    }
    if (SuppressedAt(texts, path, line, kLockOrder)) continue;
    findings->push_back({path, line, kLockOrder, msg});
  }

  // Observed nesting with no declared ordering path.
  for (const auto& kv : g.edges) {
    const LockEdge& e = kv.second;
    if (e.witnesses.empty()) continue;  // declared-only
    if (e.declared || g.DeclaredPath(e.from, e.to)) continue;
    const Witness& w = e.witnesses.front();
    if (SuppressedAt(texts, w.file, w.line, kLockOrder)) continue;
    std::string msg = "observed lock order " + e.from + " -> " + e.to +
                      " in " + w.func;
    if (!w.chain.empty()) msg += " via " + w.chain;
    msg += " has no declared ACQUIRED_AFTER/ACQUIRED_BEFORE path; annotate "
           "the ordering or suppress here";
    findings->push_back({w.file, w.line, kLockOrder, msg});
  }
}

// True when the field's declared type names a class that owns a mutex
// (looked through pointers/smart pointers/containers): such members
// synchronize themselves.
bool InternallySynchronized(const RepoModel& repo, const FieldDecl& f) {
  std::string word;
  for (char c : f.type + " ") {
    if (IsIdentChar(c)) {
      word += c;
      continue;
    }
    if (!word.empty()) {
      auto it = repo.classes.find(word);
      if (it != repo.classes.end() && it->second.owns_mutex) return true;
    }
    word.clear();
  }
  return false;
}

void RunGuardCoveragePass(const std::vector<FileText>& texts,
                          const AnalyzeResult& r,
                          std::vector<Finding>* findings) {
  for (const auto& kv : r.repo.classes) {
    const ClassDecl& cls = kv.second;
    if (!cls.owns_mutex) continue;
    for (const FieldDecl& f : cls.fields) {
      if (f.is_mutex || f.is_condvar) continue;
      if (f.is_static || f.is_const || f.is_atomic) continue;
      if (!f.guarded_by.empty() || !f.pt_guarded_by.empty()) continue;
      if (InternallySynchronized(r.repo, f)) continue;
      if (SuppressedAt(texts, cls.file, f.line, kGuardCoverage)) continue;
      findings->push_back(
          {cls.file, f.line, kGuardCoverage,
           "field '" + f.name + "' of mutex-owning class '" + cls.name +
               "' is neither GUARDED_BY/PT_GUARDED_BY, atomic, const, nor "
               "suppressed with a reason"});
    }
  }
}

void RunBlockingPass(const std::vector<FileText>& texts,
                     const AnalyzeResult& r, const AnalyzeOptions& opts,
                     std::vector<Finding>* findings) {
  std::set<std::string> no_block;
  if (!opts.no_default_no_block) {
    for (const char* m : kDefaultNoBlock) no_block.insert(m);
  }
  for (const std::string& m : opts.no_block) no_block.insert(m);

  std::set<std::string> reported;  // "file:line:mutex" dedup
  for (const BlockObservation& o : r.graph.block_observations) {
    if (o.suppressed) continue;
    for (const std::string& held : o.held) {
      if (o.exempt.count(held) || !no_block.count(held)) continue;
      std::string key =
          o.file + ":" + std::to_string(o.line) + ":" + held;
      if (!reported.insert(key).second) continue;
      std::string msg = "blocking call " + o.what;
      if (!o.chain.empty()) {
        msg += " (via " + o.chain + ", blocks at " + o.origin + ")";
      }
      msg += " while holding " + held +
             ", which is in the no-blocking set; release it first or "
             "suppress here with a reason";
      findings->push_back({o.file, o.line, kBlocking, msg});
    }
  }
}

}  // namespace

AnalyzeResult Analyze(const std::vector<FileText>& texts,
                      const AnalyzeOptions& opts) {
  AnalyzeResult result;
  result.files_scanned = texts.size();
  result.repo = ParseTree(texts);
  LockResolver resolver(result.repo);
  result.graph = BuildLockGraph(result.repo, resolver);
  RunLockOrderPass(texts, result, &result.findings);
  RunGuardCoveragePass(texts, result, &result.findings);
  RunBlockingPass(texts, result, opts, &result.findings);
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });
  return result;
}

std::string ToJson(const AnalyzeResult& result) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"bih_analyze\",\n";
  out << "  \"files_scanned\": " << result.files_scanned << ",\n";
  out << "  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i ? ",\n" : "\n");
    out << "    {\"path\": " << JsonQuote(f.path) << ", \"line\": " << f.line
        << ", \"rule\": " << JsonQuote(f.rule)
        << ", \"message\": " << JsonQuote(f.message) << "}";
  }
  out << (result.findings.empty() ? "],\n" : "\n  ],\n");
  out << "  \"lock_graph\": {\n    \"nodes\": [";
  size_t i = 0;
  for (const std::string& n : result.graph.nodes) {
    out << (i++ ? ", " : "") << JsonQuote(n);
  }
  out << "],\n    \"edges\": [";
  i = 0;
  for (const auto& kv : result.graph.edges) {
    const LockEdge& e = kv.second;
    out << (i++ ? ",\n" : "\n");
    out << "      {\"from\": " << JsonQuote(e.from)
        << ", \"to\": " << JsonQuote(e.to)
        << ", \"declared\": " << (e.declared ? "true" : "false")
        << ", \"observed\": " << (e.witnesses.empty() ? "false" : "true")
        << "}";
  }
  out << (result.graph.edges.empty() ? "],\n" : "\n    ],\n");
  out << "    \"cycles\": " << result.graph.cycles.size() << "\n  }\n}\n";
  return out.str();
}

std::string DumpGraph(const LockGraph& graph) {
  std::ostringstream out;
  out << "nodes (" << graph.nodes.size() << "):\n";
  for (const std::string& n : graph.nodes) out << "  " << n << "\n";
  out << "edges (" << graph.edges.size() << "):\n";
  for (const auto& kv : graph.edges) {
    const LockEdge& e = kv.second;
    out << "  " << e.from << " -> " << e.to
        << (e.declared ? " [declared]" : "")
        << (!e.witnesses.empty() ? " [observed]" : "") << "\n";
    for (const Witness& w : e.witnesses) {
      out << "      " << w.func << " (" << w.file << ":" << w.line << ")";
      if (!w.chain.empty()) out << " via " << w.chain;
      out << "\n";
    }
  }
  out << "cycles (" << graph.cycles.size() << "):\n";
  for (const LockGraph::Cycle& c : graph.cycles) {
    std::vector<std::string> loop = c.nodes;
    loop.push_back(c.nodes.front());
    out << "  " << JoinNodes(loop) << "\n";
  }
  return out.str();
}

}  // namespace analysis
}  // namespace bih
