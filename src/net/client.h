#ifndef TPCBIH_NET_CLIENT_H_
#define TPCBIH_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"

namespace bih {
namespace net {

// One query's outcome as the client saw it.
struct QueryReply {
  // The server's verdict (decoded from kResult/kError), or the transport
  // failure (kIoError) when the connection died before a reply landed.
  Status status;
  uint32_t retry_after_ms = 0;  // overload hint from a kError reply
  std::vector<std::string> columns;
  std::vector<Row> rows;
  // The reply frame's exact payload bytes, when one arrived. The chaos
  // soak compares this against a locally-encoded expected message to prove
  // responses are byte-identical to in-process execution.
  std::string raw_payload;
  uint64_t request_id = 0;
};

// Minimal blocking client for the bih wire protocol. Single-threaded and
// strictly request/reply: one outstanding request at a time per client.
// Cancellation of a peer's query (CancelPeer) therefore rides a *second*
// Client instance, exactly like Postgres' out-of-band cancel connection.
//
// Every receive is bounded by `recv_timeout_ms` (default 10 s), so a
// server that drops a response (injected or real) turns into a timely
// kIoError on this side, never a hung client thread.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and performs the Hello handshake for `tenant`. `scan_threads`
  // > 0 asks the server to run this session's queries with that many
  // intra-query threads (capped server-side); 0 keeps the server default.
  Status Connect(const std::string& host, uint16_t port,
                 const std::string& tenant, int scan_threads = 0);

  // Sends one SQL query and waits for its reply. Transport failures are
  // reported in out->status (and also returned); after a transport failure
  // the connection is dead and only Close() is useful.
  Status Query(const std::string& sql, uint32_t deadline_ms, QueryReply* out);

  // Cancels (conn_id, request_id) on the server. Fire-and-forget semantics:
  // the acknowledging kPong is consumed but a missing one is not an error
  // worth surfacing (the race with query completion is inherent).
  Status CancelPeer(uint64_t conn_id, uint64_t request_id);

  // EXPLAIN: plans + optimizes + executes `sql` (a SELECT, without the
  // EXPLAIN keyword) and returns the plan/optimizer JSON in *json.
  Status Explain(const std::string& sql, uint32_t deadline_ms,
                 std::string* json);

  // Fetches the server's stats JSON.
  Status GetStatsJson(std::string* out);

  Status Ping();

  // Best-effort Goodbye, then closes the socket. Idempotent.
  void Close();

  bool connected() const { return fd_ >= 0; }
  // This session's server-assigned connection id (for CancelPeer targeting).
  uint64_t conn_id() const { return conn_id_; }
  // The id Query() will stamp on its next request.
  uint64_t next_request_id() const { return next_request_id_; }

  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

 private:
  // Sends one frame and reads exactly one reply frame.
  Status RoundTrip(const Message& req, Message* reply, std::string* payload);
  Status SendAll(const std::string& frame);
  // Reads until one complete frame is buffered or the timeout expires.
  Status RecvFrame(std::string* payload);

  int fd_ = -1;
  uint64_t conn_id_ = 0;
  uint64_t next_request_id_ = 1;
  int recv_timeout_ms_ = 10000;
  std::string buf_;  // bytes received beyond the last complete frame
};

}  // namespace net
}  // namespace bih

#endif  // TPCBIH_NET_CLIENT_H_
