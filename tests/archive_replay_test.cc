// End-to-end archive workflow (the Section 4 pipeline): generate → save →
// load → replay must produce the same engine state as replaying the
// in-memory history directly, on every engine.
#include <cstdio>

#include <gtest/gtest.h>

#include "bih/generator.h"
#include "tpch/schema.h"
#include "workload/context.h"

namespace bih {
namespace {

TEST(ArchiveReplayTest, ReplayFromDiskMatchesDirectReplay) {
  TpchConfig tcfg;
  tcfg.scale = 0.001;
  tcfg.seed = 31;
  TpchData initial = GenerateTpch(tcfg);
  GeneratorConfig gcfg;
  gcfg.m = 0.001;
  gcfg.seed = 32;
  HistoryGenerator gen(initial, gcfg);
  History history = gen.Generate();

  std::string path = ::testing::TempDir() + "/bih_replay_archive.txt";
  ASSERT_TRUE(SaveHistory(history, path).ok());
  History loaded;
  ASSERT_TRUE(LoadHistory(path, &loaded).ok());
  std::remove(path.c_str());

  for (const std::string letter : {"A", "B", "C", "D"}) {
    auto direct = LoadEngine(letter, initial, history);
    auto from_disk = LoadEngine(letter, initial, loaded);
    for (const TableDef& def : BiHSchema()) {
      TableStats a = direct->GetTableStats(def.name);
      TableStats b = from_disk->GetTableStats(def.name);
      EXPECT_EQ(a.current_rows, b.current_rows) << letter << " " << def.name;
      EXPECT_EQ(a.history_rows, b.history_rows) << letter << " " << def.name;
    }
    // Spot-check a full-history aggregate agrees exactly.
    ScanRequest req;
    req.table = "ORDERS";
    req.temporal.system_time = TemporalSelector::All();
    req.temporal.app_time = TemporalSelector::All();
    double sum_a = 0, sum_b = 0;
    direct->Scan(req, [&](const Row& r) {
      sum_a += r[orders::kTotalPrice].AsDouble();
      return true;
    });
    from_disk->Scan(req, [&](const Row& r) {
      sum_b += r[orders::kTotalPrice].AsDouble();
      return true;
    });
    EXPECT_DOUBLE_EQ(sum_a, sum_b) << letter;
  }
}

TEST(ArchiveReplayTest, ScenarioWeightOverridesRespectZeroes) {
  TpchConfig tcfg;
  tcfg.scale = 0.001;
  tcfg.seed = 33;
  TpchData initial = GenerateTpch(tcfg);
  GeneratorConfig gcfg;
  gcfg.m = 0.001;
  gcfg.seed = 34;
  // Only inserts: every other scenario weight is zero.
  gcfg.scenario_weights = {1.0, 0, 0, 0, 0, 0, 0, 0, 0};
  HistoryGenerator gen(initial, gcfg);
  History history = gen.Generate();
  for (const HistoryTransaction& txn : history) {
    EXPECT_EQ(Scenario::kNewOrder, txn.scenario);
  }
  const HistoryStats& st = gen.stats();
  EXPECT_EQ(0u, st.per_table.count("PARTSUPP"));
  EXPECT_EQ(0u, st.per_table.count("SUPPLIER"));
  // Orders only grow.
  EXPECT_EQ(0, st.per_table.at("ORDERS").deletes);
}

TEST(ArchiveReplayTest, EndStateMatchesBaselineCounts) {
  TpchConfig tcfg;
  tcfg.scale = 0.001;
  tcfg.seed = 35;
  TpchData initial = GenerateTpch(tcfg);
  GeneratorConfig gcfg;
  gcfg.m = 0.002;
  gcfg.seed = 36;
  HistoryGenerator gen(initial, gcfg);
  History history = gen.Generate();
  TpchData end = gen.EndState();
  auto baseline = LoadBaseline(end);
  auto engine = LoadEngine("A", initial, history);
  for (const TableDef& def : BiHSchema()) {
    ScanRequest req;
    req.table = def.name;
    size_t live = 0, base = 0;
    engine->Scan(req, [&](const Row&) {
      ++live;
      return true;
    });
    baseline->Scan(req, [&](const Row&) {
      ++base;
      return true;
    });
    EXPECT_EQ(base, live) << def.name;
  }
}

}  // namespace
}  // namespace bih
