#ifndef TPCBIH_WORKLOAD_QUERIES_H_
#define TPCBIH_WORKLOAD_QUERIES_H_

#include <string>

#include "exec/plan.h"
#include "temporal/timeline.h"
#include "workload/context.h"

namespace bih {

// The synthetic query classes of the benchmark (Section 3.3). Every
// function returns the materialized result so tests can assert semantics;
// benches time the calls. Unless noted, parameters follow the paper's
// choices (e.g., T1 on PARTSUPP because its current cardinality is stable,
// T2 on ORDERS because it grows).

// ---- Time travel (T) -------------------------------------------------

// ALL / T5: complete history of ORDERS (upper bound for one-table queries).
Rows QueryAll(TemporalEngine& engine);

// T1: point-point time travel on PARTSUPP; returns {avg(supplycost), count}.
Rows T1(TemporalEngine& engine, const TemporalScanSpec& spec);

// T2: point-point time travel on ORDERS; returns {avg(totalprice), count}.
Rows T2(TemporalEngine& engine, const TemporalScanSpec& spec);

// T3: two time travels on the same table (CUSTOMER balances at two
// application times, joined by key); returns rows whose balance changed.
Rows T3(TemporalEngine& engine, int64_t app_t1, int64_t app_t2);

// T4: time travel with early stop (first n qualifying orders).
Rows T4(TemporalEngine& engine, const TemporalScanSpec& spec, size_t n);

// T6: temporal slicing on ORDERS; one dimension pinned, the other fully
// retrieved. Returns {avg(totalprice), count}.
Rows T6AppPointSysAll(TemporalEngine& engine, int64_t app_point);
Rows T6SysPointAppAll(TemporalEngine& engine, Timestamp sys_point);

// T7: current time travel, implicit (no system-time clause) vs explicit
// (AS OF <now>); identical answers, different plans (Fig. 6).
Rows T7Implicit(TemporalEngine& engine);
Rows T7Explicit(TemporalEngine& engine);

// T8/T9: simulated application time — the application-time constraint is
// issued as plain value predicates on the period columns instead of a
// temporal clause. T8 = point (like T2), T9 = slice (like T6).
Rows T8SimulatedAppPoint(TemporalEngine& engine, int64_t app_point,
                         const TemporalSelector& sys);
Rows T9SimulatedAppSlice(TemporalEngine& engine, int64_t app_point);

// ---- Pure-key / audit (K) --------------------------------------------

// K1: full history of one customer; ordered by system-time start.
Rows K1(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec);

// K2: K1 restricted to a temporal range (pass a range selector in `spec`).
Rows K2(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec);

// K3: K2 returning a single column (projection pushdown).
Rows K3(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec);

// K4: latest n versions (Top-N over the version count).
Rows K4(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec,
        size_t n);

// K5: the version directly preceding the latest one, found by timestamp
// correlation (the self-join formulation the paper uses).
Rows K5(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec);

// K6: history of customers selected by value: acctbal >= lo (and < hi if
// hi is non-null).
Rows K6(TemporalEngine& engine, double lo, Value hi,
        const TemporalScanSpec& spec);

// ---- Range-timeslice (R) ----------------------------------------------

// R1: state changes of ORDERS along system time (status transitions).
Rows R1(TemporalEngine& engine);

// R2: state durations — time each order spent in status 'O' (system time).
Rows R2(TemporalEngine& engine);

// R3: temporal aggregation over ORDERS totalprice: a new result row per
// change point. `naive` follows the SQL:2011 formulation the paper had to
// use (boundary extraction + per-boundary evaluation); otherwise a
// timeline-sweep implementation (the operator DBMSs lack).
Rows R3(TemporalEngine& engine, TemporalAggKind kind, bool naive);

// R4: parts with the smallest difference in stock level over the history.
Rows R4(TemporalEngine& engine, size_t top_n);

// R5: temporal join — customers with balance < `balance_lim` while having
// active orders with totalprice > `price_lim` (system-time correlation).
Rows R5(TemporalEngine& engine, double balance_lim, double price_lim);

// R6: temporal aggregation combined with a join of two temporal tables:
// per nation, count of customer versions active at each order state change.
Rows R6(TemporalEngine& engine);

// R7: suppliers who increased a supply cost by more than `pct` percent in
// one update (previous-version correlation over the full key set).
Rows R7(TemporalEngine& engine, double pct);

// ---- Bitemporal dimension queries (B3.x, Table 3) ----------------------

// variant 0 is the non-temporal self-join baseline B3; 1..11 are the
// bitemporal combinations of Table 3.
Rows B3(TemporalEngine& engine, int variant, int64_t partkey,
        int64_t app_point, Timestamp sys_past);

}  // namespace bih

#endif  // TPCBIH_WORKLOAD_QUERIES_H_
