#include "common/value.h"

#include <cstdio>
#include <functional>

namespace bih {

int Value::Compare(const Value& other) const {
  const bool ln = is_null(), rn = other.is_null();
  if (ln || rn) {
    if (ln && rn) return 0;
    return ln ? -1 : 1;
  }
  if (is_string() || other.is_string()) {
    BIH_CHECK_MSG(is_string() && other.is_string(),
                  "comparing string with non-string");
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }
  if (is_int() && other.is_int()) {
    int64_t a = AsInt(), b = other.AsInt();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  double a = AsDouble(), b = other.AsDouble();
  return a < b ? -1 : (a == b ? 0 : 1);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_int()) return std::hash<int64_t>{}(AsInt());
  if (is_double()) {
    double d = AsDouble();
    // Ensure int-valued doubles hash like ints is NOT required: hash joins
    // only mix same-typed keys. Hash raw bits.
    return std::hash<double>{}(d);
  }
  return std::hash<std::string>{}(AsString());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", AsDouble());
    return buf;
  }
  return AsString();
}

size_t HashRowKey(const Row& row, const std::vector<int>& cols) {
  size_t h = 0x345678;
  for (int c : cols) {
    h = h * 1000003ULL ^ row[static_cast<size_t>(c)].Hash();
  }
  return h;
}

}  // namespace bih
