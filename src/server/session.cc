#include "server/session.h"

#include <algorithm>

namespace bih {

SessionManager::SessionManager(TemporalEngine* engine, SessionConfig cfg)
    : engine_(engine), admission_(cfg.admission) {
  Init(cfg);
}

SessionManager::SessionManager(std::unique_ptr<TemporalEngine> engine,
                               SessionConfig cfg)
    : owned_engine_(std::move(engine)),
      engine_(owned_engine_.get()),
      admission_(cfg.admission) {
  Init(cfg);
}

void SessionManager::Init(SessionConfig cfg) {
  {
    // No concurrent access can exist yet, but taking the writer lock keeps
    // the engine-touching setup on the same annotated path as Write().
    WriterLock lock(rw_mu_);
    // Anything loaded before the session layer took over (bulk load, WAL
    // recovery) becomes the base snapshot.
    engine_->PrepareForReads();
    PublishWatermark();
  }
  scan_threads_ = cfg.scan_threads > 0 ? cfg.scan_threads : DefaultScanThreads();
  if (scan_threads_ > 1) {
    // The coordinator of each read participates in its own scan, so the
    // pool only needs threads - 1 helpers.
    scheduler_ = std::make_unique<ScanScheduler>(scan_threads_ - 1);
  }
  watchdog_period_ = cfg.watchdog_period;
  if (watchdog_period_.count() > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

SessionManager::~SessionManager() {
  if (watchdog_.joinable()) {
    {
      MutexLock lock(watchdog_mu_);
      shutdown_ = true;
    }
    watchdog_cv_.NotifyAll();
    watchdog_.join();
  }
}

void SessionManager::PublishWatermark() {
  watermark_.store(engine_->Now().micros(), std::memory_order_release);
}

void SessionManager::WatchdogLoop() {
  MutexLock lock(watchdog_mu_);
  while (!shutdown_) {
    watchdog_cv_.WaitFor(watchdog_mu_, watchdog_period_);
    if (shutdown_) return;
    const auto now = QueryContext::Clock::now();
    uint64_t killed = 0;
    {
      MutexLock reg(inflight_mu_);
      for (QueryContext* ctx : inflight_) {
        if (ctx->has_deadline() && now >= ctx->deadline() &&
            !ctx->cancel_requested()) {
          ctx->Cancel();  // attributed to the deadline by the context
          ++killed;
        }
      }
    }
    if (killed > 0) {
      MutexLock st(stats_mu_);
      stats_.watchdog_kills += killed;
    }
  }
}

TemporalSelector SessionManager::ClampToWatermark(const TemporalSelector& sel,
                                                  int64_t watermark) {
  // The engines keep every version queryable (closing a version moves it,
  // it is never destroyed), so restricting the system-time selector to
  // [beginning, watermark] reproduces the state at that commit exactly:
  // versions committed later begin after the watermark and cannot match.
  switch (sel.kind) {
    case TemporalSelector::Kind::kImplicitCurrent:
      // "Current" for this session means current as of the snapshot.
      return TemporalSelector::AsOf(watermark);
    case TemporalSelector::Kind::kPoint:
      return TemporalSelector::AsOf(std::min(sel.point, watermark));
    case TemporalSelector::Kind::kRange:
      // Half-open range: end watermark+1 keeps versions that begin exactly
      // at the watermark visible.
      return TemporalSelector::Between(
          std::min(sel.range.begin, watermark),
          std::min(sel.range.end, watermark + 1));
    case TemporalSelector::Kind::kAll:
      return TemporalSelector::Between(Period::kBeginningOfTime,
                                       watermark + 1);
  }
  return sel;
}

Status SessionManager::Read(ScanRequest req, QueryContext* ctx,
                            std::vector<Row>* out) {
  return ReadAt(OpenSnapshot(), std::move(req), ctx, out);
}

Status SessionManager::ReadAt(Snapshot snap, ScanRequest req,
                              QueryContext* ctx, std::vector<Row>* out) {
  out->clear();
  Status s = DoRead(snap, req, ctx, out);
  AccountRead(s);
  if (!s.ok()) out->clear();
  return s;
}

Status SessionManager::ReadTxn(
    QueryContext* ctx, const std::function<Status(TemporalEngine&)>& fn) {
  Status s = DoReadTxn(ctx, fn);
  AccountRead(s);
  return s;
}

void SessionManager::AccountRead(const Status& s) {
  MutexLock lock(stats_mu_);
  switch (s.code()) {
    case Status::Code::kOk:
      ++stats_.reads_ok;
      break;
    case Status::Code::kDeadlineExceeded:
      ++stats_.reads_deadline;
      break;
    case Status::Code::kCancelled:
      ++stats_.reads_cancelled;
      break;
    case Status::Code::kResourceExhausted:
      ++stats_.reads_shed;
      break;
    default:
      break;
  }
}

bool SessionManager::PollLockShared(QueryContext* ctx, Status* why) {
  while (!rw_mu_.try_lock_shared()) {
    if (ctx != nullptr) {
      *why = ctx->CheckNow();
      if (!why->ok()) return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

Status SessionManager::DoRead(Snapshot snap, ScanRequest& req,
                              QueryContext* ctx, std::vector<Row>* out) {
  if (ctx != nullptr) {
    Status s = ctx->CheckNow();
    if (!s.ok()) return s;
  }
  Status admitted = admission_.Admit(ctx);
  if (!admitted.ok()) return admitted;

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.insert(ctx);
  }

  Status result = Status::OK();
  if (PollLockShared(ctx, &result)) {
    req.temporal.system_time =
        ClampToWatermark(req.temporal.system_time, snap.watermark);
    req.ctx = ctx;
    // Intra-query parallelism: reads that do not choose a width inherit
    // the manager's; workers run strictly within this shared-lock scope
    // (the scan drains its morsels before returning), so parallel reads
    // see the same pinned snapshot as serial ones.
    if (req.scan_threads == 0) req.scan_threads = scan_threads_;
    if (req.scheduler == nullptr) req.scheduler = scheduler_.get();
    ExecStats stats;  // keep concurrent scans off the shared stats slot
    req.stats = &stats;
    engine_->Scan(req, [&](const Row& row) {
      out->push_back(row);
      // A version still open at the snapshot may have been closed by a
      // later write before this scan ran; its stored SYS_TIME_END is then
      // past the watermark. Rewriting it to forever makes reads against
      // the same snapshot byte-identical no matter how writes interleave.
      Row& r = out->back();
      if (!r.empty() && r.back().is_int() &&
          r.back().AsInt() > snap.watermark) {
        r.back() = Value(Period::kForever);
      }
      return true;
    });
    if (ctx != nullptr) result = ctx->status();
    rw_mu_.unlock_shared();
  }

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.erase(ctx);
  }
  admission_.Release();
  return result;
}

Status SessionManager::DoReadTxn(
    QueryContext* ctx, const std::function<Status(TemporalEngine&)>& fn) {
  if (ctx != nullptr) {
    Status s = ctx->CheckNow();
    if (!s.ok()) return s;
  }
  Status admitted = admission_.Admit(ctx);
  if (!admitted.ok()) return admitted;

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.insert(ctx);
  }

  Status result = Status::OK();
  if (PollLockShared(ctx, &result)) {
    result = fn(*engine_);
    // A deadline or cancellation that fired mid-callback wins over whatever
    // the callback returned: an interrupted composite read must not be
    // reported as a clean success (or as a confusing secondary error).
    if (ctx != nullptr) {
      Status interrupted = ctx->status();
      if (!interrupted.ok()) result = interrupted;
    }
    rw_mu_.unlock_shared();
  }

  if (ctx != nullptr) {
    MutexLock reg(inflight_mu_);
    inflight_.erase(ctx);
  }
  admission_.Release();
  return result;
}

void SessionManager::DegradeIfWalDead() {
  WalWriter* wal = engine_->wal();
  if (wal != nullptr && wal->dead()) {
    read_only_.store(true, std::memory_order_release);
  }
}

Status SessionManager::ReadOnlyStatus() const {
  return Status::Unavailable(
      "session is read-only: the write-ahead log failed and the in-memory "
      "state may be ahead of the durable state",
      "snapshot reads continue at the last durable commit; restart the "
      "server and recover from the log to restore writes");
}

Status SessionManager::Write(
    const std::function<Status(TemporalEngine&)>& fn) {
  // Fast path: a degraded session rejects writes without ever contending
  // for the writer lock, so the rejection cannot stall running reads.
  if (read_only_.load(std::memory_order_acquire)) {
    MutexLock st(stats_mu_);
    ++stats_.writes_unavailable;
    return ReadOnlyStatus();
  }
  {
    WriterLock lock(rw_mu_);
    Status s = fn(*engine_);
    // Publish deferred engine state (System B's undo log) while we still
    // hold the writer side, then advance the snapshot readers pin. The
    // watermark moves even on failure: a failed statement may sit inside a
    // batch whose earlier statements committed.
    engine_->PrepareForReads();
    PublishWatermark();
    // A write that killed the WAL leaves durable state behind in-memory
    // state; from here on the session serves the pinned snapshots but
    // accepts no further writes.
    DegradeIfWalDead();
    {
      MutexLock st(stats_mu_);
      ++stats_.writes;
    }
    return s;
  }
}

Status SessionManager::RunCheckpoint(Checkpointer* cp, CheckpointInfo* info) {
  WriterLock lock(rw_mu_);
  if (read_only_.load(std::memory_order_acquire)) {
    // Revive path. The dead writer stopped at some segment k with an
    // unknown durable suffix; nothing can ever be appended there again.
    // Open a fresh writer at k+1 and checkpoint through it: the
    // checkpoint's own rotation then covers segments 1..k+1, so the
    // snapshot — taken from the in-memory state, which is a superset of
    // anything the dead segment held — supersedes the lost suffix, and
    // the covered segments (the dead one included) are deleted.
    WalWriter* dead = engine_->wal();
    if (dead == nullptr) return ReadOnlyStatus();
    std::unique_ptr<WalWriter> fresh;
    Status st =
        WalWriter::OpenAt(dead->path(), dead->segment_index() + 1,
                          /*fault=*/nullptr, &fresh);
    if (!st.ok()) return st;  // still read-only; nothing changed
    BIH_RETURN_IF_ERROR(engine_->AttachWal(std::move(fresh)));
    Status cs = cp->Write(engine_, info);
    WalWriter* now = engine_->wal();
    if (!cs.ok() || now == nullptr || now->dead()) {
      // The revive itself failed (e.g. the checkpoint could not publish,
      // or the fresh writer died during the rotation). Stay read-only:
      // the durable state is still the pre-failure prefix, and claiming
      // writability against a dead log would reopen the hole this path
      // exists to close.
      return cs.ok() ? ReadOnlyStatus() : cs;
    }
    read_only_.store(false, std::memory_order_release);
    return Status::OK();
  }
  Status s = cp->Write(engine_, info);
  // The rotation may have killed the writer (injected or real): degrade
  // rather than let the next commit fail confusingly.
  DegradeIfWalDead();
  return s;
}

Status SessionManager::Insert(const std::string& table, Row row) {
  return Write([&](TemporalEngine& eng) {
    return eng.Insert(table, std::move(row));
  });
}

Status SessionManager::UpdateCurrent(const std::string& table,
                                     const std::vector<Value>& key,
                                     const std::vector<ColumnAssignment>& set) {
  return Write([&](TemporalEngine& eng) {
    return eng.UpdateCurrent(table, key, set);
  });
}

Status SessionManager::DeleteCurrent(const std::string& table,
                                     const std::vector<Value>& key) {
  return Write(
      [&](TemporalEngine& eng) { return eng.DeleteCurrent(table, key); });
}

SessionManager::ServerStats SessionManager::GetStats() const {
  ServerStats s;
  {
    MutexLock lock(stats_mu_);
    s = stats_;
  }
  s.admission = admission_.GetStats();
  return s;
}

}  // namespace bih
