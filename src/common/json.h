#ifndef TPCBIH_COMMON_JSON_H_
#define TPCBIH_COMMON_JSON_H_

#include <string>

namespace bih {

// Escapes `s` for embedding inside a JSON string literal (the quotes are
// NOT added): '"' and '\\' are backslash-escaped, the named control
// characters use their short forms (\n, \t, \r, \b, \f) and every other
// byte below 0x20 becomes \u00XX. Every hand-rolled JSON emitter in the
// tree must route string fields through here — an unescaped quote in a
// fault-injection reason or an errno message silently corrupts the CI
// artifacts that diff these reports.
std::string JsonEscape(const std::string& s);

// Convenience: `s` escaped and wrapped in double quotes, ready to drop
// after a "key": in an emitter.
std::string JsonQuote(const std::string& s);

}  // namespace bih

#endif  // TPCBIH_COMMON_JSON_H_
