#include <gtest/gtest.h>

#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace bih {
namespace sql {
namespace {

// --- lexer ----------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  std::vector<Token> toks;
  ASSERT_TRUE(Tokenize("SELECT a.b, 42 FROM t WHERE x >= 3.5", &toks).ok());
  EXPECT_EQ("SELECT", toks[0].text);
  EXPECT_EQ(TokenType::kIdent, toks[1].type);
  EXPECT_EQ("A", toks[1].text);  // keywords and idents are uppercased
  EXPECT_EQ(".", toks[2].text);
  EXPECT_EQ("42", toks[5].text);
  EXPECT_EQ(">=", toks[10].text);
  EXPECT_EQ(TokenType::kEnd, toks.back().type);
}

TEST(LexerTest, StringsWithEscapes) {
  std::vector<Token> toks;
  ASSERT_TRUE(Tokenize("'it''s'", &toks).ok());
  EXPECT_EQ(TokenType::kString, toks[0].type);
  EXPECT_EQ("it's", toks[0].text);
  EXPECT_FALSE(Tokenize("'unterminated", &toks).ok());
}

TEST(LexerTest, CommentsAndErrors) {
  std::vector<Token> toks;
  ASSERT_TRUE(Tokenize("SELECT -- a comment\n1", &toks).ok());
  EXPECT_EQ("1", toks[1].text);
  EXPECT_FALSE(Tokenize("SELECT @", &toks).ok());
}

// --- parser ---------------------------------------------------------------

TEST(ParserTest, TemporalClauses) {
  SelectStatement stmt;
  ASSERT_TRUE(ParseSelect("SELECT * FROM ACCOUNT FOR SYSTEM_TIME AS OF 123 "
                          "FOR BUSINESS_TIME AS OF DATE '2020-06-01' a",
                          &stmt)
                  .ok());
  EXPECT_TRUE(stmt.select_star);
  EXPECT_EQ("ACCOUNT", stmt.from.table);
  EXPECT_EQ("A", stmt.from.alias);
  EXPECT_EQ(TemporalSelector::Kind::kPoint, stmt.from.system_time.kind);
  EXPECT_EQ(123, stmt.from.system_time.point);
  EXPECT_EQ(TemporalSelector::Kind::kPoint, stmt.from.app_time.kind);
  EXPECT_EQ(Date::FromYMD(2020, 6, 1).days(), stmt.from.app_time.point);
}

TEST(ParserTest, SystemTimeRangeAndAll) {
  SelectStatement stmt;
  ASSERT_TRUE(
      ParseSelect("SELECT * FROM T FOR SYSTEM_TIME FROM 5 TO 10", &stmt).ok());
  EXPECT_EQ(TemporalSelector::Kind::kRange, stmt.from.system_time.kind);
  EXPECT_EQ(Period(5, 10), stmt.from.system_time.range);
  ASSERT_TRUE(ParseSelect("SELECT * FROM T FOR SYSTEM_TIME ALL", &stmt).ok());
  EXPECT_EQ(TemporalSelector::Kind::kAll, stmt.from.system_time.kind);
}

TEST(ParserTest, NamedBusinessPeriod) {
  SelectStatement stmt;
  ASSERT_TRUE(ParseSelect(
                  "SELECT * FROM ORDERS FOR BUSINESS_TIME RECEIVABLE_TIME "
                  "AS OF 100",
                  &stmt)
                  .ok());
  EXPECT_EQ("RECEIVABLE_TIME", stmt.from.app_period);
}

TEST(ParserTest, JoinsWhereGroupOrderLimit) {
  SelectStatement stmt;
  ASSERT_TRUE(ParseSelect(
                  "SELECT c.NAME, SUM(o.TOTAL) AS revenue "
                  "FROM CUSTOMER c JOIN ORDERS o ON c.ID = o.CUST_ID "
                  "WHERE o.TOTAL > 100 GROUP BY c.NAME "
                  "HAVING SUM(o.TOTAL) > 1000 "
                  "ORDER BY revenue DESC LIMIT 10;",
                  &stmt)
                  .ok());
  EXPECT_EQ(2u, stmt.items.size());
  EXPECT_EQ("REVENUE", stmt.items[1].alias);
  EXPECT_EQ(1u, stmt.joins.size());
  EXPECT_NE(nullptr, stmt.where);
  EXPECT_EQ(1u, stmt.group_by.size());
  EXPECT_NE(nullptr, stmt.having);
  EXPECT_EQ(1u, stmt.order_by.size());
  EXPECT_FALSE(stmt.order_by[0].ascending);
  EXPECT_EQ(10, stmt.limit);
}

TEST(ParserTest, Errors) {
  SelectStatement stmt;
  EXPECT_FALSE(ParseSelect("SELECT", &stmt).ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM", &stmt).ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM T WHERE", &stmt).ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM T LIMIT x", &stmt).ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM T trailing garbage !", &stmt).ok());
  EXPECT_FALSE(
      ParseSelect("SELECT * FROM T FOR SYSTEM_TIME NEARBY 3", &stmt).ok());
}

// --- end-to-end -----------------------------------------------------------

class SqlExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = MakeEngine("A");
    TableDef def;
    def.name = "ACCOUNT";
    def.schema = Schema({{"ID", ColumnType::kInt},
                         {"OWNER", ColumnType::kString},
                         {"BALANCE", ColumnType::kDouble},
                         {"VB", ColumnType::kDate},
                         {"VE", ColumnType::kDate}});
    def.primary_key = {0};
    def.app_periods = {{"VALIDITY", 3, 4}};
    def.system_versioned = true;
    ASSERT_TRUE(engine_->CreateTable(def).ok());
    TableDef owners;
    owners.name = "OWNER_INFO";
    owners.schema = Schema({{"OWNER", ColumnType::kString},
                            {"REGION", ColumnType::kString}});
    owners.primary_key = {0};
    ASSERT_TRUE(engine_->CreateTable(owners).ok());

    auto ins = [&](int64_t id, const char* owner, double bal, int64_t b,
                   int64_t e) {
      ASSERT_TRUE(engine_
                      ->Insert("ACCOUNT", {Value(id), Value(owner), Value(bal),
                                           Value(b), Value(e)})
                      .ok());
    };
    ins(1, "ann", 100.0, 0, Period::kForever);
    ins(2, "bob", 250.0, 0, Period::kForever);
    ins(3, "cat", -40.0, 50, 150);
    before_update_ = engine_->Now();
    ASSERT_TRUE(engine_->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                       {{2, Value(175.0)}}).ok());
    ASSERT_TRUE(engine_->Insert("OWNER_INFO", {Value("ann"), Value("west")})
                    .ok());
    ASSERT_TRUE(engine_->Insert("OWNER_INFO", {Value("bob"), Value("east")})
                    .ok());
  }

  Rows Run(const std::string& text, std::vector<std::string>* cols = nullptr) {
    SqlResult result;
    Status st = ExecuteSql(*engine_, text, &result);
    EXPECT_TRUE(st.ok()) << st.ToString() << " for: " << text;
    if (cols != nullptr) *cols = result.columns;
    return result.rows;
  }

  std::unique_ptr<TemporalEngine> engine_;
  Timestamp before_update_;
};

TEST_F(SqlExecTest, SelectStarCurrent) {
  std::vector<std::string> cols;
  Rows rows = Run("SELECT * FROM ACCOUNT", &cols);
  EXPECT_EQ(3u, rows.size());
  ASSERT_EQ(7u, cols.size());  // 5 user + 2 system columns
  EXPECT_EQ("SYS_TIME_START", cols[5]);
}

TEST_F(SqlExecTest, ProjectionAndWhere) {
  Rows rows = Run("SELECT OWNER, BALANCE * 2 AS double_bal FROM ACCOUNT "
                  "WHERE BALANCE > 150 ORDER BY OWNER");
  ASSERT_EQ(2u, rows.size());
  EXPECT_EQ("ann", rows[0][0].AsString());
  EXPECT_DOUBLE_EQ(350.0, rows[0][1].AsDouble());
  EXPECT_EQ("bob", rows[1][0].AsString());
}

TEST_F(SqlExecTest, SystemTimeTravel) {
  std::string q = "SELECT BALANCE FROM ACCOUNT FOR SYSTEM_TIME AS OF " +
                  std::to_string(before_update_.micros()) + " WHERE ID = 1";
  Rows rows = Run(q);
  ASSERT_EQ(1u, rows.size());
  EXPECT_DOUBLE_EQ(100.0, rows[0][0].AsDouble());  // pre-update value
  rows = Run("SELECT BALANCE FROM ACCOUNT WHERE ID = 1");
  EXPECT_DOUBLE_EQ(175.0, rows[0][0].AsDouble());
}

TEST_F(SqlExecTest, BusinessTimeTravel) {
  // Account 3 is valid only in [50, 150).
  Rows rows = Run("SELECT ID FROM ACCOUNT FOR BUSINESS_TIME AS OF 100");
  EXPECT_EQ(3u, rows.size());
  rows = Run("SELECT ID FROM ACCOUNT FOR BUSINESS_TIME AS OF 10");
  EXPECT_EQ(2u, rows.size());
  for (const Row& r : rows) EXPECT_NE(3, r[0].AsInt());
}

TEST_F(SqlExecTest, SystemTimeAllSeesHistory) {
  Rows rows = Run("SELECT COUNT(*) FROM ACCOUNT FOR SYSTEM_TIME ALL");
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(4, rows[0][0].AsInt());  // three inserts + one closed version
}

TEST_F(SqlExecTest, AggregatesWithGroupBy) {
  Rows rows = Run(
      "SELECT OWNER, COUNT(*), SUM(BALANCE), MIN(BALANCE) "
      "FROM ACCOUNT FOR SYSTEM_TIME ALL GROUP BY OWNER ORDER BY OWNER");
  ASSERT_EQ(3u, rows.size());
  EXPECT_EQ("ann", rows[0][0].AsString());
  EXPECT_EQ(2, rows[0][1].AsInt());
  EXPECT_DOUBLE_EQ(275.0, rows[0][2].AsDouble());
  EXPECT_DOUBLE_EQ(100.0, rows[0][3].AsDouble());
}

TEST_F(SqlExecTest, Having) {
  Rows rows = Run("SELECT OWNER FROM ACCOUNT FOR SYSTEM_TIME ALL "
                  "GROUP BY OWNER HAVING COUNT(*) > 1");
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ("ann", rows[0][0].AsString());
}

TEST_F(SqlExecTest, JoinWithQualifiedColumns) {
  Rows rows = Run(
      "SELECT a.OWNER, i.REGION FROM ACCOUNT a "
      "JOIN OWNER_INFO i ON a.OWNER = i.OWNER ORDER BY a.OWNER");
  ASSERT_EQ(2u, rows.size());
  EXPECT_EQ("ann", rows[0][0].AsString());
  EXPECT_EQ("west", rows[0][1].AsString());
  EXPECT_EQ("east", rows[1][1].AsString());
}

TEST_F(SqlExecTest, JoinWithResidualPredicate) {
  Rows rows = Run(
      "SELECT a.ID FROM ACCOUNT a JOIN OWNER_INFO i "
      "ON a.OWNER = i.OWNER AND a.BALANCE > 200");
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(2, rows[0][0].AsInt());  // bob, 250
}

TEST_F(SqlExecTest, LikeAndBetween) {
  Rows rows = Run("SELECT ID FROM ACCOUNT WHERE OWNER LIKE 'a%'");
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(1, rows[0][0].AsInt());
  rows = Run("SELECT ID FROM ACCOUNT WHERE BALANCE BETWEEN 150 AND 300 "
             "ORDER BY ID");
  EXPECT_EQ(2u, rows.size());
}

TEST_F(SqlExecTest, SelectDistinct) {
  Rows rows = Run("SELECT DISTINCT OWNER FROM ACCOUNT FOR SYSTEM_TIME ALL "
                  "ORDER BY OWNER");
  ASSERT_EQ(3u, rows.size());  // ann appears twice in the history
  EXPECT_EQ("ann", rows[0][0].AsString());
  EXPECT_EQ("bob", rows[1][0].AsString());
  EXPECT_EQ("cat", rows[2][0].AsString());
}

TEST_F(SqlExecTest, CountStarOnEmptyResult) {
  Rows rows = Run("SELECT COUNT(*) FROM ACCOUNT WHERE BALANCE > 99999");
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(0, rows[0][0].AsInt());
}

TEST_F(SqlExecTest, ErrorsAreStatuses) {
  SqlResult result;
  EXPECT_EQ(Status::Code::kNotFound,
            ExecuteSql(*engine_, "SELECT * FROM NOPE", &result).code());
  EXPECT_FALSE(ExecuteSql(*engine_, "SELECT NOPE FROM ACCOUNT", &result).ok());
  EXPECT_FALSE(
      ExecuteSql(*engine_, "SELECT OWNER FROM ACCOUNT GROUP BY ID", &result)
          .ok());  // OWNER not in GROUP BY
  EXPECT_FALSE(ExecuteSql(*engine_,
                          "SELECT * FROM OWNER_INFO FOR BUSINESS_TIME AS OF 3",
                          &result)
                   .ok());  // table has no application time
  EXPECT_FALSE(ExecuteSql(
                   *engine_,
                   "SELECT * FROM ACCOUNT FOR BUSINESS_TIME NOPE AS OF 3",
                   &result)
                   .ok());  // unknown period name
}

TEST_F(SqlExecTest, DmlInsertThroughSql) {
  Rows r = Run("INSERT INTO ACCOUNT VALUES (4, 'dan', 77.5, 0, 200)");
  ASSERT_EQ(1u, r.size());
  EXPECT_EQ(1, r[0][0].AsInt());
  Rows check = Run("SELECT BALANCE FROM ACCOUNT WHERE ID = 4");
  ASSERT_EQ(1u, check.size());
  EXPECT_DOUBLE_EQ(77.5, check[0][0].AsDouble());
}

TEST_F(SqlExecTest, DmlUpdateCurrent) {
  Rows r = Run("UPDATE ACCOUNT SET BALANCE = 999 WHERE OWNER = 'bob'");
  EXPECT_EQ(1, r[0][0].AsInt());
  Rows check = Run("SELECT BALANCE FROM ACCOUNT WHERE ID = 2");
  EXPECT_DOUBLE_EQ(999.0, check[0][0].AsDouble());
  // History kept the old value.
  Rows hist = Run("SELECT COUNT(*) FROM ACCOUNT FOR SYSTEM_TIME ALL "
                  "WHERE ID = 2");
  EXPECT_EQ(2, hist[0][0].AsInt());
}

TEST_F(SqlExecTest, DmlUpdateForPortionOfBusinessTime) {
  // Split cat's validity [50,150): new balance only over [80,120).
  Rows r = Run("UPDATE ACCOUNT FOR PORTION OF BUSINESS_TIME FROM 80 TO 120 "
               "SET BALANCE = 5 WHERE ID = 3");
  EXPECT_EQ(1, r[0][0].AsInt());
  Rows mid = Run("SELECT BALANCE FROM ACCOUNT FOR BUSINESS_TIME AS OF 100 "
                 "WHERE ID = 3");
  ASSERT_EQ(1u, mid.size());
  EXPECT_DOUBLE_EQ(5.0, mid[0][0].AsDouble());
  Rows before = Run("SELECT BALANCE FROM ACCOUNT FOR BUSINESS_TIME AS OF 60 "
                    "WHERE ID = 3");
  ASSERT_EQ(1u, before.size());
  EXPECT_DOUBLE_EQ(-40.0, before[0][0].AsDouble());
}

TEST_F(SqlExecTest, DmlDeleteForPortionLeavesGap) {
  Run("DELETE FROM ACCOUNT FOR PORTION OF BUSINESS_TIME FROM 60 TO 100 "
      "WHERE ID = 3");
  EXPECT_TRUE(Run("SELECT ID FROM ACCOUNT FOR BUSINESS_TIME AS OF 80 "
                  "WHERE ID = 3")
                  .empty());
  EXPECT_EQ(1u, Run("SELECT ID FROM ACCOUNT FOR BUSINESS_TIME AS OF 55 "
                    "WHERE ID = 3")
                    .size());
}

TEST_F(SqlExecTest, DmlDeleteCurrent) {
  Rows r = Run("DELETE FROM ACCOUNT WHERE BALANCE < 0");
  EXPECT_EQ(1, r[0][0].AsInt());  // cat
  EXPECT_EQ(2u, Run("SELECT ID FROM ACCOUNT").size());
  // Still in the history.
  EXPECT_EQ(1u, Run("SELECT ID FROM ACCOUNT FOR SYSTEM_TIME ALL "
                    "WHERE ID = 3")
                    .size());
}

TEST_F(SqlExecTest, DmlErrors) {
  SqlResult result;
  EXPECT_FALSE(ExecuteSql(*engine_, "INSERT INTO ACCOUNT VALUES (1)", &result)
                   .ok());  // arity
  EXPECT_FALSE(
      ExecuteSql(*engine_, "UPDATE NOPE SET X = 1", &result).ok());
  EXPECT_FALSE(ExecuteSql(*engine_,
                          "UPDATE ACCOUNT SET BALANCE = BALANCE + 1",
                          &result)
                   .ok());  // non-constant assignment
  EXPECT_FALSE(ExecuteSql(*engine_,
                          "UPDATE OWNER_INFO FOR PORTION OF BUSINESS_TIME "
                          "FROM 1 TO 2 SET REGION = 'x'",
                          &result)
                   .ok());  // table has no application time
}

TEST_F(SqlExecTest, SameAnswerOnAllEngines) {
  // The SQL layer sits on the engine API, so every architecture answers
  // SQL identically; sanity-check one aggregate on each.
  for (const std::string& letter : AllEngineLetters()) {
    auto e = MakeEngine(letter);
    TableDef def = engine_->GetTableDef("ACCOUNT");
    ASSERT_TRUE(e->CreateTable(def).ok());
    ASSERT_TRUE(e->Insert("ACCOUNT", {Value(int64_t{1}), Value("x"),
                                      Value(10.0), Value(int64_t{0}),
                                      Value(Period::kForever)})
                    .ok());
    ASSERT_TRUE(e->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                 {{2, Value(20.0)}})
                    .ok());
    SqlResult r;
    ASSERT_TRUE(ExecuteSql(*e,
                           "SELECT SUM(BALANCE) FROM ACCOUNT "
                           "FOR SYSTEM_TIME ALL",
                           &r)
                    .ok());
    EXPECT_DOUBLE_EQ(30.0, r.rows[0][0].AsDouble()) << letter;
  }
}

}  // namespace
}  // namespace sql
}  // namespace bih
