#include "common/query_context.h"

namespace bih {

void QueryContext::Fail(bool deadline_passed) {
  verdict_ = deadline_passed ? Verdict::kDeadlineExceeded : Verdict::kCancelled;
}

bool QueryContext::KeepGoing() {
  if (verdict_ != Verdict::kRunning) return false;
  const bool cancelled = cancel_.load(std::memory_order_relaxed);
  if (!cancelled && !has_deadline_) return true;
  if (cancelled) {
    Fail(has_deadline_ && Clock::now() >= deadline_);
    return false;
  }
  if (++calls_since_clock_check_ >= kClockCheckInterval) {
    calls_since_clock_check_ = 0;
    if (Clock::now() >= deadline_) {
      Fail(/*deadline_passed=*/true);
      return false;
    }
  }
  return true;
}

Status QueryContext::CheckNow() {
  if (verdict_ == Verdict::kRunning) {
    const bool deadline_passed = has_deadline_ && Clock::now() >= deadline_;
    if (cancel_.load(std::memory_order_relaxed) || deadline_passed) {
      Fail(deadline_passed);
    }
  }
  return status();
}

Status QueryContext::status() const {
  switch (verdict_) {
    case Verdict::kRunning:
      return Status::OK();
    case Verdict::kCancelled:
      return Status::Cancelled("query cancelled");
    case Verdict::kDeadlineExceeded:
      return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::Internal("unreachable");
}

}  // namespace bih
