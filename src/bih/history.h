#ifndef TPCBIH_BIH_HISTORY_H_
#define TPCBIH_BIH_HISTORY_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/period.h"
#include "common/value.h"
#include "temporal/sequenced.h"

namespace bih {

// One DML statement of the history, in engine-neutral form. The generator
// archive is a sequence of transactions of these operations; the same
// archive populates every engine (Section 4 of the paper).
struct Operation {
  enum class Kind {
    kInsert,
    kUpdateCurrent,     // non-temporal update: only system time moves
    kUpdateSequenced,   // sequenced application-time update
    kUpdateOverwrite,   // overwrite application-time update
    kDeleteCurrent,
    kDeleteSequenced,
  };

  Kind kind;
  std::string table;
  Row row;                      // kInsert payload
  std::vector<Value> key;      // all other kinds
  int period_index = 0;        // application-time dimension
  Period period;               // sequenced/overwrite window
  std::vector<ColumnAssignment> set;
};

// The nine update scenarios of Table 1.
enum class Scenario {
  kNewOrder = 0,
  kCancelOrder,
  kDeliverOrder,
  kReceivePayment,
  kUpdateStock,
  kDelayAvailability,
  kChangePriceBySupplier,
  kUpdateSupplier,
  kManipulateOrderData,
  kCount,
};

const char* ScenarioName(Scenario s);

// Scenario probabilities (Table 1). "New Order" internally selects a new
// customer with probability 0.5 and an existing one otherwise.
std::vector<double> ScenarioProbabilities();

// One scenario execution = one transaction when replayed.
struct HistoryTransaction {
  Scenario scenario;
  std::vector<Operation> ops;
};

using History = std::vector<HistoryTransaction>;

// Operation category counters per table, the raw material of Table 2.
struct TableOpStats {
  int64_t app_insert = 0;
  int64_t app_update = 0;
  int64_t nontemporal_insert = 0;
  int64_t nontemporal_update = 0;
  int64_t deletes = 0;
  int64_t overwrite_app = 0;

  int64_t TotalOps() const {
    return app_insert + app_update + nontemporal_insert + nontemporal_update +
           deletes + overwrite_app;
  }
};

struct HistoryStats {
  std::array<int64_t, static_cast<size_t>(Scenario::kCount)> scenario_counts{};
  std::map<std::string, TableOpStats> per_table;
  int64_t total_transactions = 0;
  int64_t total_operations = 0;
};

// --- Archive serialization (Section 4.1: the generator result is written
// to a system-independent archive that every DBMS load reads back) --------

// Writes the history to a file; line-oriented, versioned format.
Status SaveHistory(const History& history, const std::string& path);
// Reads an archive produced by SaveHistory.
Status LoadHistory(const std::string& path, History* out);

}  // namespace bih

#endif  // TPCBIH_BIH_HISTORY_H_
