#ifndef TPCBIH_COMMON_THREAD_ANNOTATIONS_H_
#define TPCBIH_COMMON_THREAD_ANNOTATIONS_H_
// bih-lint: allow-file(naked-mutex)  -- this header IS the wrapper layer.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Clang Thread Safety Analysis support (the Capability/GUARDED_BY system).
//
// Under clang, `-Wthread-safety` turns these macros into a compile-time
// race detector: every field annotated GUARDED_BY(mu) may only be touched
// while `mu` is held, functions annotated REQUIRES(mu) may only be called
// with `mu` held, and the scoped guards below tell the analysis exactly
// where a capability is acquired and released. Under any other compiler
// the macros expand to nothing and the wrappers are zero-cost veneers over
// the std primitives, so the tree builds identically with gcc.
//
// House rules (enforced by tools/bih_lint):
//  * No naked std::mutex / std::shared_mutex / std::condition_variable /
//    std::lock_guard / std::unique_lock outside this header — concurrency
//    code uses bih::Mutex / bih::SharedMutex / bih::CondVar and the guards
//    below so the analysis sees every acquisition.
//  * Condition-variable predicates are written as explicit `while` loops in
//    the waiting function's body (never as lambdas passed to wait()): the
//    analysis cannot see that a predicate lambda runs under the lock, but
//    it fully understands a loop in a scope that holds the capability.
//  * A deliberate escape hatch (single-threaded setup, test-only accessors)
//    is marked NO_THREAD_SAFETY_ANALYSIS with a comment saying why.

#if defined(__clang__)
#define BIH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BIH_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// A type that acts as a lock ("capability" in the analysis' vocabulary).
#define CAPABILITY(x) BIH_THREAD_ANNOTATION(capability(x))
// A RAII type that acquires in its constructor and releases in its dtor.
#define SCOPED_CAPABILITY BIH_THREAD_ANNOTATION(scoped_lockable)

// Data members: may only be read/written while holding the capability.
#define GUARDED_BY(x) BIH_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the *pointee* is protected, the pointer itself is not.
#define PT_GUARDED_BY(x) BIH_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) BIH_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) BIH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function preconditions: capability must be held on entry (and still on
// exit); the _SHARED form accepts a read lock.
#define REQUIRES(...) BIH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  BIH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function effects: acquires / releases the named capabilities.
#define ACQUIRE(...) BIH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  BIH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) BIH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  BIH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  BIH_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Conditional acquisition: first argument is the return value that means
// "acquired" (our wrappers follow std and return true on success).
#define TRY_ACQUIRE(...) \
  BIH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  BIH_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Declares that the capability must NOT be held (guards against
// self-deadlock on non-reentrant locks).
#define EXCLUDES(...) BIH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion to the analysis: "trust me, it is held here". Used to
// document handoffs the analysis cannot follow (e.g. state published via a
// release-store that readers acquire-load).
#define ASSERT_CAPABILITY(x) BIH_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  BIH_THREAD_ANNOTATION(assert_shared_capability(x))

// For functions returning a reference to a capability-protected member.
#define RETURN_CAPABILITY(x) BIH_THREAD_ANNOTATION(lock_returned(x))

// Opt a function out entirely. Every use carries a justifying comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  BIH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bih {

// Annotated std::mutex. The analysis only tracks locks it can see being
// acquired, so all of src/ locks through this wrapper.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis the lock is held when the holder cannot be proven
  // statically. Runtime no-op.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Annotated std::shared_mutex: exclusive for writers, shared for readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  // Generic release: the scoped object holds the shared side, and
  // release_generic matches whichever mode the constructor acquired.
  ~ReaderLock() RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to bih::Mutex. Deliberately minimal: only
// un-predicated waits, so that every predicate is an explicit loop in the
// caller (which the analysis can check against the guarded fields it
// reads). Wait/WaitFor release and reacquire `mu` internally; the REQUIRES
// contract is what the caller sees, and it holds on both edges.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

 private:
  // condition_variable_any works with any BasicLockable, so it waits on the
  // annotated Mutex directly; the unlock/relock it performs internally sits
  // in a system header, outside the analysis' jurisdiction.
  std::condition_variable_any cv_;
};

}  // namespace bih

#endif  // TPCBIH_COMMON_THREAD_ANNOTATIONS_H_
