// Fixture: every violation below carries a bih-lint allow() marker, so the
// run must come back clean — this is the test that suppressions work.
#include <cassert>
#include <mutex>

struct Status {
  bool ok() const { return true; }
};

Status DoWork();

std::mutex g_mu;  // bih-lint: allow(naked-mutex)

void Caller(int* cursor) {
  // bih-lint: allow(ignored-status)
  DoWork();
  assert(++*cursor > 0);  // bih-lint: allow(assert-side-effect)
  // bih-lint: allow(naked-mutex)
  std::lock_guard<std::mutex> lock(g_mu);
}
