#ifndef TPCBIH_SQL_EXECUTOR_H_
#define TPCBIH_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/plan.h"
#include "sql/ast.h"

namespace bih {
namespace sql {

struct SqlResult {
  std::vector<std::string> columns;
  Rows rows;
};

// Lowers a parsed SELECT into a PlanNode tree (no execution, no engine
// mutation — only schema lookups). *columns receives the output column
// names. The tree is un-optimized; callers run OptimizePlan before
// Execute, as ExecuteSelect does.
Status PlanSelect(TemporalEngine& engine, const SelectStatement& stmt,
                  PlanPtr* plan, std::vector<std::string>* columns);

// Binds and executes a parsed statement against an engine: plans,
// optimizes, executes. `ctx` (optional, borrowed) carries the request
// deadline and cancellation: it is consulted per scanned row and at every
// operator boundary, and an interrupted query returns the context's
// verdict. `opts` supplies the execution defaults (scan width, worker
// pool) every plan operator inherits — a server session passes its
// exec_options() here.
Status ExecuteSelect(TemporalEngine& engine, const SelectStatement& stmt,
                     SqlResult* out, QueryContext* ctx = nullptr,
                     const ExecOptions& opts = {});

// Executes a parsed DML statement; `out` reports the number of affected
// keys in a single-row result. Assignments and inserted values must be
// constant expressions (the engine applies one value set per key). `ctx`
// is checked between keys; an interruption mid-batch commits the keys
// already applied (the batch is a sequence of single-key statements, not
// one atomic statement) and reports the verdict.
Status ExecuteDml(TemporalEngine& engine, const DmlStatement& stmt,
                  SqlResult* out, QueryContext* ctx = nullptr);

// Parses + executes in one step; dispatches on the leading keyword
// (SELECT vs INSERT/UPDATE/DELETE). A statement prefixed with EXPLAIN
// plans, optimizes and executes the query, then returns a single-row
// result (column "PLAN") holding the JSON plan tree with per-node
// execution counters and the optimizer report — see Explain().
Status ExecuteSql(TemporalEngine& engine, const std::string& text,
                  SqlResult* out, QueryContext* ctx = nullptr,
                  const ExecOptions& opts = {});

// EXPLAIN worker: plans `text` (a SELECT without the EXPLAIN keyword),
// runs the optimizer, executes the optimized tree, and renders
// {"optimizer": {...rule counters...}, "plan": {...PlanToJson tree...}}
// into *json. Stable key order — tests and tools parse it.
Status Explain(TemporalEngine& engine, const std::string& text,
               std::string* json, QueryContext* ctx = nullptr,
               const ExecOptions& opts = {});

}  // namespace sql
}  // namespace bih

#endif  // TPCBIH_SQL_EXECUTOR_H_
