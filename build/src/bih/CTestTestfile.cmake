# CMake generated Testfile for 
# Source directory: /root/repo/src/bih
# Build directory: /root/repo/build/src/bih
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
