// Fixture: must trip [ignored-status]. A statement-position bare call of a
// Status-returning function silently drops the error.
struct Status {
  bool ok() const { return true; }
};

Status DoWork();

void Caller() {
  DoWork();
}
