#include "exec/expr.h"

namespace bih {

namespace {

Value Arith(Expr::Op op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_int() && b.is_int() && op != Expr::Op::kDiv) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case Expr::Op::kAdd:
        return Value(x + y);
      case Expr::Op::kSub:
        return Value(x - y);
      case Expr::Op::kMul:
        return Value(x * y);
      default:
        break;
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case Expr::Op::kAdd:
      return Value(x + y);
    case Expr::Op::kSub:
      return Value(x - y);
    case Expr::Op::kMul:
      return Value(x * y);
    case Expr::Op::kDiv:
      return y == 0.0 ? Value::Null() : Value(x / y);
    default:
      break;
  }
  return Value::Null();
}

Value Compare3(Expr::Op op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int c = a.Compare(b);
  bool r = false;
  switch (op) {
    case Expr::Op::kEq:
      r = c == 0;
      break;
    case Expr::Op::kNe:
      r = c != 0;
      break;
    case Expr::Op::kLt:
      r = c < 0;
      break;
    case Expr::Op::kLe:
      r = c <= 0;
      break;
    case Expr::Op::kGt:
      r = c > 0;
      break;
    case Expr::Op::kGe:
      r = c >= 0;
      break;
    default:
      break;
  }
  return Value(int64_t{r});
}

}  // namespace

Value Expr::Eval(const Row& row) const {
  switch (op_) {
    case Op::kColumn:
      return row[static_cast<size_t>(column_)];
    case Op::kLiteral:
      return literal_;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
      return Arith(op_, children_[0]->Eval(row), children_[1]->Eval(row));
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return Compare3(op_, children_[0]->Eval(row), children_[1]->Eval(row));
    case Op::kAnd: {
      // Short-circuit; NULL treated as false for filter purposes.
      Value a = children_[0]->Eval(row);
      if (a.is_null() || a.AsInt() == 0) return Value(int64_t{0});
      Value b = children_[1]->Eval(row);
      return Value(int64_t{!b.is_null() && b.AsInt() != 0});
    }
    case Op::kOr: {
      Value a = children_[0]->Eval(row);
      if (!a.is_null() && a.AsInt() != 0) return Value(int64_t{1});
      Value b = children_[1]->Eval(row);
      return Value(int64_t{!b.is_null() && b.AsInt() != 0});
    }
    case Op::kNot: {
      Value a = children_[0]->Eval(row);
      if (a.is_null()) return Value::Null();
      return Value(int64_t{a.AsInt() == 0});
    }
    case Op::kIsNull:
      return Value(int64_t{children_[0]->Eval(row).is_null()});
    case Op::kContains: {
      Value s = children_[0]->Eval(row);
      Value n = children_[1]->Eval(row);
      if (s.is_null() || n.is_null()) return Value::Null();
      return Value(
          int64_t{s.AsString().find(n.AsString()) != std::string::npos});
    }
    case Op::kStartsWith: {
      Value s = children_[0]->Eval(row);
      Value p = children_[1]->Eval(row);
      if (s.is_null() || p.is_null()) return Value::Null();
      return Value(int64_t{s.AsString().rfind(p.AsString(), 0) == 0});
    }
    case Op::kBetween: {
      Value x = children_[0]->Eval(row);
      Value lo = children_[1]->Eval(row);
      Value hi = children_[2]->Eval(row);
      if (x.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      return Value(int64_t{x.Compare(lo) >= 0 && x.Compare(hi) <= 0});
    }
    case Op::kYear: {
      Value d = children_[0]->Eval(row);
      if (d.is_null()) return Value::Null();
      int y, m, dd;
      d.AsDate().ToYMD(&y, &m, &dd);
      return Value(int64_t{y});
    }
  }
  return Value::Null();
}

ExprPtr Col(int column) { return std::make_shared<Expr>(column); }
ExprPtr Lit(Value v) { return std::make_shared<Expr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
ExprPtr Lit(double v) { return Lit(Value(v)); }
ExprPtr Lit(const char* v) { return Lit(Value(v)); }

namespace {
ExprPtr Mk(Expr::Op op, std::vector<ExprPtr> ch) {
  return std::make_shared<Expr>(op, std::move(ch));
}
}  // namespace

ExprPtr Add(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kAdd, {a, b}); }
ExprPtr Sub(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kSub, {a, b}); }
ExprPtr Mul(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kMul, {a, b}); }
ExprPtr Div(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kDiv, {a, b}); }
ExprPtr Eq(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kEq, {a, b}); }
ExprPtr Ne(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kNe, {a, b}); }
ExprPtr Lt(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kLt, {a, b}); }
ExprPtr Le(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kLe, {a, b}); }
ExprPtr Gt(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kGt, {a, b}); }
ExprPtr Ge(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kGe, {a, b}); }
ExprPtr And(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kAnd, {a, b}); }
ExprPtr Or(ExprPtr a, ExprPtr b) { return Mk(Expr::Op::kOr, {a, b}); }
ExprPtr Not(ExprPtr a) { return Mk(Expr::Op::kNot, {a}); }
ExprPtr IsNull(ExprPtr a) { return Mk(Expr::Op::kIsNull, {a}); }
ExprPtr Contains(ExprPtr s, ExprPtr needle) {
  return Mk(Expr::Op::kContains, {s, needle});
}
ExprPtr StartsWith(ExprPtr s, ExprPtr prefix) {
  return Mk(Expr::Op::kStartsWith, {s, prefix});
}
ExprPtr Between(ExprPtr x, ExprPtr lo, ExprPtr hi) {
  return Mk(Expr::Op::kBetween, {x, lo, hi});
}
ExprPtr YearOf(ExprPtr date) { return Mk(Expr::Op::kYear, {date}); }

}  // namespace bih
