#include "temporal/temporal.h"

namespace bih {

std::string TemporalSelector::ToString() const {
  switch (kind) {
    case Kind::kImplicitCurrent:
      return "CURRENT";
    case Kind::kPoint:
      return "AS OF " + std::to_string(point);
    case Kind::kRange:
      return "FROM " + std::to_string(range.begin) + " TO " +
             std::to_string(range.end);
    case Kind::kAll:
      return "ALL";
  }
  return "?";
}

}  // namespace bih
