#ifndef TPCBIH_ENGINE_SYSTEM_D_H_
#define TPCBIH_ENGINE_SYSTEM_D_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "engine/index_set.h"
#include "engine/scan_util.h"
#include "exec/parallel.h"
#include "storage/hash_index.h"
#include "storage/row_table.h"

namespace bih {

// Architecture D: disk-style row store *without* native temporal support
// (Section 2.5). The application models both time dimensions as ordinary
// columns in one non-partitioned table:
//  * no current/history split — every query sees all versions and filters;
//  * system time is maintained by the application layer (this wrapper), so
//    explicit timestamps are allowed and histories can be bulk loaded,
//    which is why loading is far cheaper than on the native engines;
//  * both B-tree and GiST (R-tree) tuning indexes are available.
class SystemDEngine : public TemporalEngine {
 public:
  std::string name() const override { return "SystemD"; }
  bool native_app_time() const override { return false; }

  Status DoCreateTable(const TableDef& def) override;
  Status CreateIndex(const IndexSpec& spec) override;
  Status DropIndexes(const std::string& table) override;
  const TableDef& GetTableDef(const std::string& table) const override;
  Schema ScanSchema(const std::string& table) const override;
  bool HasTable(const std::string& table) const override {
    return tables_.count(table) > 0;
  }

  Status DoInsert(const std::string& table, Row row) override;
  Status DoBulkLoad(const std::string& table, std::vector<Row> rows) override;
  Status DoUpdateCurrent(const std::string& table, const std::vector<Value>& key,
                       const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateOverwrite(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoDeleteCurrent(const std::string& table,
                       const std::vector<Value>& key) override;
  Status DoDeleteSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period) override;

  std::vector<std::string> ListTables() const override;
  Status DoInstallVersion(const std::string& table, const Row& stored) override;

  void Scan(const ScanRequest& req, const RowCallback& cb) override;
  TableStats GetTableStats(const std::string& table) const override;

 private:
  struct Table {
    TableDef def;
    Schema stored_schema;  // user columns + SYS_TIME_START + SYS_TIME_END
    RowTable data;
    // Application-side bookkeeping of the visible versions per key; plays
    // the role of the app logic the paper says non-temporal deployments
    // must implement themselves. Not consulted by query planning.
    HashIndex current_by_key;
    IndexSet indexes;

    Table(TableDef d, Schema stored)
        : def(std::move(d)), stored_schema(stored), data(stored) {}
  };

  Table* Find(const std::string& name);
  const Table* Find(const std::string& name) const;

  IndexKey KeyOf(const Table& t, const Row& row) const;
  RowId InsertVersion(Table* t, Row user_row, Timestamp ts);
  void CloseVersion(Table* t, RowId rid, Timestamp ts);

  Status ApplySequenced(const std::string& table, const std::vector<Value>& key,
                        int period_index, const Period& period,
                        const std::vector<ColumnAssignment>& set, int mode);

  // Morsel-range entry point of the all-versions table scan: filters slots
  // [begin, end) of `part` into `out`. Thread-safe for concurrent morsels
  // (pure reads).
  void ScanMorsel(const RowTable& part, const ScanRequest& req,
                  const TemporalCols& tc, int64_t now, uint64_t begin,
                  uint64_t end, const std::atomic<bool>& stop,
                  MorselOutput* out) const;

  std::unordered_map<std::string, Table> tables_;
};

}  // namespace bih

#endif  // TPCBIH_ENGINE_SYSTEM_D_H_
