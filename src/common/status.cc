#include "common/status.h"

namespace bih {

std::string Status::ToString() const {
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case Code::kNotFound:
      return "NotFound: " + message_;
    case Code::kAlreadyExists:
      return "AlreadyExists: " + message_;
    case Code::kOutOfRange:
      return "OutOfRange: " + message_;
    case Code::kUnimplemented:
      return "Unimplemented: " + message_;
    case Code::kInternal:
      return "Internal: " + message_;
    case Code::kIoError:
      return "IoError: " + message_;
    case Code::kDeadlineExceeded:
      return "DeadlineExceeded: " + message_;
    case Code::kCancelled:
      return "Cancelled: " + message_;
    case Code::kResourceExhausted:
      return "ResourceExhausted: " + message_;
    case Code::kUnavailable:
      return "Unavailable: " + message_;
  }
  return "Unknown";
}

std::string Status::retry_hint() const {
  if (code_ != Code::kUnavailable) return "";
  const size_t pos = message_.find(kRetryHintMarker);
  if (pos == std::string::npos) return "";
  return message_.substr(pos + std::string(kRetryHintMarker).size());
}

void FatalError(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s:%d] %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace bih
