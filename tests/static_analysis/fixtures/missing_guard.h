// Fixture: must trip [include-guard] — no #ifndef/#define pair and no
// #pragma once, so double inclusion is an ODR hazard.
inline int MissingGuard() { return 1; }
