// Ablation beyond the paper: what a native Timeline Index (Kaufmann et
// al., SIGMOD 2013 — cited by the paper as the research the commercial
// systems ignore) would buy the benchmark's worst operations.
//
//  1. System-time travel on ORDERS: engine scan vs snapshot reconstruction
//     through the index, across checkpoint intervals (the classic space/
//     replay tradeoff of the structure).
//  2. Temporal aggregation (R3): the SQL-style quadratic plan vs the
//     one-pass event sweep over the index.
#include <cstdio>

#include "bench_common.h"
#include "temporal/timeline_index.h"
#include "tpch/schema.h"

namespace bih {
namespace bench {
namespace {

double benchmark_dummy_ = 0;

void Run() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  TemporalEngine& engine = w.Engine("C");

  // Materialize the full ORDERS version history once and index it.
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  Rows versions = RunPlan(*ScanPlan(req), engine);
  const int sys_from = ctx.engine->GetTableDef("ORDERS").schema.num_columns();
  const int sys_to = sys_from + 1;

  PrintHeader("Ablation: Timeline Index vs engine scans (ORDERS history, " +
              std::to_string(versions.size()) + " versions)");

  for (size_t interval : {size_t{64}, size_t{512}, size_t{4096}}) {
    TimelineIndex idx(interval);
    double build_ms = TimeMs([&] {
      TimelineIndex rebuilt(interval);
      for (uint32_t v = 0; v < versions.size(); ++v) {
        rebuilt.Add(v, Period(versions[v][static_cast<size_t>(sys_from)].AsInt(),
                              versions[v][static_cast<size_t>(sys_to)].AsInt()));
      }
      rebuilt.Finalize();
    });
    for (uint32_t v = 0; v < versions.size(); ++v) {
      idx.Add(v, Period(versions[v][static_cast<size_t>(sys_from)].AsInt(),
                        versions[v][static_cast<size_t>(sys_to)].AsInt()));
    }
    idx.Finalize();

    // Time travel: aggregate totalprice over the snapshot at sys_mid.
    double tt_index_ms = TimeMs([&] {
      double sum = 0;
      int64_t n = 0;
      idx.VisitActiveAt(ctx.sys_mid.micros(), [&](uint32_t v) {
        sum += versions[v][orders::kTotalPrice].AsDouble();
        ++n;
        return true;
      });
      benchmark_dummy_ += sum + double(n);
    });
    std::printf(
        "checkpoint_interval=%-6zu build=%8.2fms  time_travel=%8.3fms  "
        "(%zu checkpoints)\n",
        interval, build_ms, tt_index_ms, idx.checkpoint_count());
  }

  double tt_engine_ms =
      TimeMs([&] { T2(engine, TemporalScanSpec::SystemAsOf(
                              ctx.sys_mid.micros())); });
  std::printf("engine scan time travel:        %8.3fms\n", tt_engine_ms);

  // Temporal aggregation through the index sweep.
  TimelineIndex idx(512);
  for (uint32_t v = 0; v < versions.size(); ++v) {
    idx.Add(v, Period(versions[v][static_cast<size_t>(sys_from)].AsInt(),
                      versions[v][static_cast<size_t>(sys_to)].AsInt()));
  }
  idx.Finalize();
  double agg_index_ms = TimeMs([&] {
    double sum = 0;
    size_t slices = 0;
    idx.SweepIntervals([&](const TimelineIndex::Delta& d) {
      for (uint32_t v : *d.activated) {
        sum += versions[v][orders::kTotalPrice].AsDouble();
      }
      for (uint32_t v : *d.deactivated) {
        sum -= versions[v][orders::kTotalPrice].AsDouble();
      }
      ++slices;
      return true;
    });
    benchmark_dummy_ += sum + double(slices);
  });
  double agg_naive_ms =
      TimeMs([&] { R3(engine, TemporalAggKind::kSum, /*naive=*/true); }, 1);
  std::printf(
      "\nR3 temporal aggregation: SQL-style %10.1fms   timeline sweep "
      "%8.3fms   (%.0fx)\n",
      agg_naive_ms, agg_index_ms, agg_naive_ms / std::max(agg_index_ms, 1e-3));
  std::printf(
      "\nShape check: index time travel beats full scans by an order of "
      "magnitude; smaller checkpoint intervals trade memory for faster "
      "snapshots; the sweep removes the quadratic R3 blowup entirely.\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
