file(REMOVE_RECURSE
  "CMakeFiles/bih_history.dir/generator.cc.o"
  "CMakeFiles/bih_history.dir/generator.cc.o.d"
  "CMakeFiles/bih_history.dir/history.cc.o"
  "CMakeFiles/bih_history.dir/history.cc.o.d"
  "libbih_history.a"
  "libbih_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
