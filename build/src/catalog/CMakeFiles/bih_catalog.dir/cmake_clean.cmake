file(REMOVE_RECURSE
  "CMakeFiles/bih_catalog.dir/schema.cc.o"
  "CMakeFiles/bih_catalog.dir/schema.cc.o.d"
  "libbih_catalog.a"
  "libbih_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
