file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_key_full.dir/bench_fig8_key_full.cc.o"
  "CMakeFiles/bench_fig8_key_full.dir/bench_fig8_key_full.cc.o.d"
  "bench_fig8_key_full"
  "bench_fig8_key_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_key_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
