// Concurrent differential test: a writer thread replays a random mutation
// sequence through the session layer while reader threads pin snapshots and
// scan. Every read is checked against the brute-force reference model
// evaluated *at the pinned watermark* — the model is fully built before the
// threads start (the operation sequence is deterministic and the commit
// clock ticks in lockstep), so the reference itself is immutable and the
// comparison needs no synchronization with the writer.
//
// A version that is open at watermark w but closed by a later write stores
// a SYS_TIME_END past w; the session layer rewrites that to "forever" when
// serving snapshot w, and the model's output is normalized the same way.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/engine.h"
#include "reference_model.h"
#include "server/session.h"
#include "temporal/clock.h"

namespace bih {
namespace {

struct Op {
  enum Kind {
    kInsert,
    kUpdateCurrent,
    kSeqUpdate,
    kOverwrite,
    kSeqDelete,
    kDeleteCurrent
  };
  Kind kind = kInsert;
  Row row;      // kInsert
  int64_t id = 0;
  std::vector<ColumnAssignment> set;
  Period window{0, 0};
  bool expect_ok = true;
};

// Builds the deterministic op sequence and applies it to the model with a
// lockstep commit clock (one tick per op, exactly like the engines' DML
// entry points — failed statements consume a tick too).
std::vector<Op> BuildOps(uint64_t seed, Model* model,
                         std::vector<int64_t>* commit_ts,
                         std::vector<int64_t>* keys) {
  Rng rng(seed);
  CommitClock clock;
  std::vector<Op> ops;
  int64_t next_key = 1;
  const int kOps = 250;
  for (int step = 0; step < kOps; ++step) {
    int choice = static_cast<int>(rng.UniformInt(0, 9));
    int64_t ts = clock.NextCommit().micros();
    commit_ts->push_back(ts);
    Op op;
    if (choice <= 3 || keys->empty()) {
      int64_t id = next_key++;
      int64_t vb = rng.UniformInt(0, 300);
      int64_t ve = rng.Bernoulli(0.3) ? Period::kForever
                                      : vb + rng.UniformInt(1, 200);
      op.kind = Op::kInsert;
      op.row = Row{Value(id), Value(double(rng.UniformInt(1, 1000))),
                   Value(rng.Bernoulli(0.5) ? "x" : "y"), Value(vb),
                   Value(ve)};
      model->Insert(op.row, ts);
      keys->push_back(id);
    } else {
      op.id = (*keys)[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(keys->size()) - 1))];
      op.set = {{1, Value(double(rng.UniformInt(1, 1000)))}};
      int64_t wb = rng.UniformInt(0, 400);
      op.window = Period(wb, rng.Bernoulli(0.3) ? Period::kForever
                                                : wb + rng.UniformInt(1, 150));
      switch (choice) {
        case 4:
        case 5:
          op.kind = Op::kUpdateCurrent;
          op.expect_ok = model->UpdateCurrent(op.id, op.set, ts);
          break;
        case 6:
          op.kind = Op::kSeqUpdate;
          op.expect_ok = model->Sequenced(op.id, op.window, op.set, 0, ts);
          break;
        case 7:
          op.kind = Op::kOverwrite;
          op.expect_ok = model->Sequenced(op.id, op.window, op.set, 2, ts);
          break;
        case 8:
          op.kind = Op::kSeqDelete;
          op.expect_ok = model->Sequenced(op.id, op.window, {}, 1, ts);
          break;
        default:
          op.kind = Op::kDeleteCurrent;
          op.expect_ok = model->DeleteCurrent(op.id, ts);
          break;
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

Status ApplyOp(TemporalEngine& e, const Op& op) {
  switch (op.kind) {
    case Op::kInsert:
      return e.Insert("ITEM", op.row);
    case Op::kUpdateCurrent:
      return e.UpdateCurrent("ITEM", {Value(op.id)}, op.set);
    case Op::kSeqUpdate:
      return e.UpdateSequenced("ITEM", {Value(op.id)}, 0, op.window, op.set);
    case Op::kOverwrite:
      return e.UpdateOverwrite("ITEM", {Value(op.id)}, 0, op.window, op.set);
    case Op::kSeqDelete:
      return e.DeleteSequenced("ITEM", {Value(op.id)}, 0, op.window);
    case Op::kDeleteCurrent:
      return e.DeleteCurrent("ITEM", {Value(op.id)});
  }
  return Status::Internal("unreachable");
}

// Model rows for versions still open at `w` carry their final close time;
// map anything past the watermark back to forever (the engine side of the
// comparison is normalized identically by the session layer).
std::vector<Row> NormalizeAtWatermark(std::vector<Row> rows, int64_t w) {
  for (Row& r : rows) {
    if (!r.empty() && r.back().is_int() && r.back().AsInt() > w) {
      r.back() = Value(Period::kForever);
    }
  }
  return rows;
}

class ConcurrentFuzzTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Engines, ConcurrentFuzzTest,
                         ::testing::ValuesIn(AllEngineLetters()));

TEST_P(ConcurrentFuzzTest, SnapshotReadsMatchModelUnderConcurrentWrites) {
  const uint64_t seed = 7;
  Model model;
  std::vector<int64_t> commit_ts;
  std::vector<int64_t> keys;
  std::vector<Op> ops = BuildOps(seed, &model, &commit_ts, &keys);

  std::unique_ptr<TemporalEngine> engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
  // Give the manager a worker pool so reads may fan morsels out; each read
  // below picks its own width, proving pinned-snapshot semantics survive
  // intra-query parallelism at any setting.
  SessionConfig scfg;
  scfg.scan_threads = 8;
  SessionManager server(engine.get(), scfg);

  std::thread writer([&] {
    for (size_t i = 0; i < ops.size(); ++i) {
      Status st =
          server.Write([&](TemporalEngine& e) { return ApplyOp(e, ops[i]); });
      EXPECT_EQ(ops[i].expect_ok, st.ok())
          << "op " << i << ": " << st.ToString();
      // Occasional mid-stream maintenance (System C delta merge) — it does
      // not consume a commit tick, so the clocks stay in lockstep.
      if (i % 83 == 82) {
        Status maint_st = server.Write([](TemporalEngine& e) {
          e.Maintain();
          return Status::OK();
        });
        EXPECT_TRUE(maint_st.ok()) << maint_st.ToString();
      }
    }
  });

  constexpr int kReaders = 3;
  constexpr int kReadsEach = 80;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(seed * 31 + static_cast<uint64_t>(t));
      for (int i = 0; i < kReadsEach; ++i) {
        SessionManager::Snapshot snap = server.OpenSnapshot();
        const int64_t w = snap.watermark;
        auto pick_ts = [&] {
          return commit_ts[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(commit_ts.size()) - 1))];
        };
        TemporalScanSpec spec;
        switch (rng.UniformInt(0, 2)) {
          case 0:
            spec.system_time = TemporalSelector::AsOf(pick_ts());
            break;
          case 1: {
            int64_t a = pick_ts(), b = pick_ts();
            if (a > b) std::swap(a, b);
            spec.system_time = TemporalSelector::Between(a, b + 1);
            break;
          }
          default:
            spec.system_time = TemporalSelector::All();
            break;
        }
        switch (rng.UniformInt(0, 2)) {
          case 0:
            spec.app_time = TemporalSelector::AsOf(rng.UniformInt(0, 500));
            break;
          case 1: {
            int64_t a = rng.UniformInt(0, 400);
            spec.app_time =
                TemporalSelector::Between(a, a + rng.UniformInt(1, 200));
            break;
          }
          default:
            spec.app_time = TemporalSelector::All();
            break;
        }
        int64_t key = rng.Bernoulli(0.4)
                          ? keys[static_cast<size_t>(rng.UniformInt(
                                0, static_cast<int64_t>(keys.size()) - 1))]
                          : -1;

        ScanRequest req;
        req.table = "ITEM";
        req.temporal = spec;
        if (key >= 0) req.equals = {{0, Value(key)}};
        // Random intra-query parallelism per read (1 = serial path).
        req.scan_threads = static_cast<int>(rng.UniformInt(1, 8));
        req.morsel_size = static_cast<uint64_t>(rng.UniformInt(1, 96));
        std::vector<Row> got;
        Status st = server.ReadAt(snap, req, nullptr, &got);
        ASSERT_TRUE(st.ok()) << st.ToString();
        got = Canonical(std::move(got));

        // Reference: the *final* model queried with the same clamped
        // selector — versions born after the watermark cannot match, so
        // this is exactly the state at the snapshot.
        TemporalScanSpec model_spec = spec;
        model_spec.system_time =
            SessionManager::ClampToWatermark(spec.system_time, w);
        std::vector<Row> expect = Canonical(
            NormalizeAtWatermark(model.Query(model_spec, w, key), w));

        ASSERT_EQ(expect.size(), got.size())
            << "reader " << t << " read " << i << " w=" << w
            << " sys=" << spec.system_time.ToString()
            << " app=" << spec.app_time.ToString() << " key=" << key;
        for (size_t r = 0; r < expect.size(); ++r) {
          for (size_t c = 0; c < expect[r].size(); ++c) {
            EXPECT_EQ(0, expect[r][c].Compare(got[r][c]))
                << "reader " << t << " read " << i << " row " << r << " col "
                << c;
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();

  // After the writer finished, the latest snapshot must equal the full
  // final model verbatim.
  ScanRequest all;
  all.table = "ITEM";
  all.temporal.system_time = TemporalSelector::All();
  all.temporal.app_time = TemporalSelector::All();
  std::vector<Row> got;
  ASSERT_TRUE(server.Read(all, nullptr, &got).ok());
  const int64_t w = server.OpenSnapshot().watermark;
  std::vector<Row> expect =
      Canonical(NormalizeAtWatermark(model.Query(all.temporal, w, -1), w));
  got = Canonical(std::move(got));
  ASSERT_EQ(expect.size(), got.size());
  for (size_t r = 0; r < expect.size(); ++r) {
    for (size_t c = 0; c < expect[r].size(); ++c) {
      ASSERT_EQ(0, expect[r][c].Compare(got[r][c])) << "row " << r;
    }
  }
}

}  // namespace
}  // namespace bih
