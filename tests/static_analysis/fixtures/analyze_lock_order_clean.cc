// Fixture: must come back clean. Same two mutexes as the deadlock fixture,
// but every path acquires them in one order and that order is declared
// with ACQUIRED_AFTER — the observed nesting has a declared path, so the
// lock-order pass stays quiet.
class Account {
 public:
  void TransferAB() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
    ++balance_a_;
    --balance_b_;
  }

  void TransferBA() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
    --balance_a_;
    ++balance_b_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_ ACQUIRED_AFTER(a_mu_);
  int balance_a_ GUARDED_BY(a_mu_) = 0;
  int balance_b_ GUARDED_BY(b_mu_) = 0;
};
