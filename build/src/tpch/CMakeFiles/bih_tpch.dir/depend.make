# Empty dependencies file for bih_tpch.
# This may be replaced when dependencies are built.
