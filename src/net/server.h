#ifndef TPCBIH_NET_SERVER_H_
#define TPCBIH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/fault.h"
#include "net/protocol.h"
#include "net/tenant.h"
#include "server/session.h"

namespace bih {
namespace net {

struct ServerConfig {
  // 0 binds an ephemeral port; port() reports the one the kernel chose.
  uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  // Connections beyond this are accepted and immediately closed (the
  // kernel has already completed the handshake; closing is the only way
  // to signal overload without reading).
  int max_connections = 256;
  TenantQuota tenant_quota;
  // A connection with no complete request for this long is closed. This is
  // the slow-loris bound on the *read* side: a client dribbling a frame
  // byte-by-byte holds a connection, not a thread pool's future.
  std::chrono::milliseconds idle_timeout{30000};
  // Budget for pushing one response frame to the kernel; a peer that stops
  // draining its socket loses the connection, not the server a thread.
  std::chrono::milliseconds write_timeout{5000};
  // Drain(): how long in-flight requests may keep running before they are
  // cancelled and the sockets are shut down.
  std::chrono::milliseconds drain_deadline{2000};
  // Injected network faults (borrowed; net modes only). All consultation is
  // serialized by the server, so one plan covers all connections.
  FaultInjector* fault = nullptr;
};

struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_overload = 0;  // closed at accept: too many connections
  uint64_t accept_faults = 0;      // injected accept failures
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t torn_frames = 0;        // injected torn sends
  uint64_t dropped_responses = 0;  // injected pre-send drops
  uint64_t slow_writes = 0;        // injected slow-loris sends
  uint64_t protocol_errors = 0;    // corrupt/oversized/unparseable frames
  uint64_t queries = 0;
  uint64_t cancels = 0;
};

// The network front end: a length-prefixed binary protocol server fronting
// one SessionManager. One OS thread per connection (the benchmark's client
// counts are hundreds, not millions), requests on a connection are strictly
// sequential — the server never reads request N+1 before the reply to N is
// on the wire. That single rule is the backpressure story: a tenant whose
// quota is exhausted gets its kResourceExhausted reply and nothing of that
// tenant's is buffered server-side beyond the one frame being served.
//
// Robustness contract:
//  * every complete request gets exactly one reply frame, or the connection
//    dies observably (torn frame / reset) — never a silent drop;
//  * per-request deadlines ride the wire (deadline_ms) and propagate into
//    a QueryContext that the session's watchdog also sweeps;
//  * cancellation is Postgres-style out-of-band: kCancel(conn_id,
//    request_id) on any connection cancels the in-flight query of that
//    connection if the ids still match;
//  * a session degraded to read-only answers writes with a structured
//    kUnavailable error frame carrying the retry hint;
//  * Drain() (SIGTERM) stops accepting, lets in-flight work finish within
//    drain_deadline, then cancels and shuts sockets; it never hangs.
class Server {
 public:
  Server(SessionManager* session, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts the accept thread.
  Status Start();

  // The bound port (after Start); useful with cfg.port == 0.
  uint16_t port() const { return port_; }

  // Graceful shutdown; idempotent and safe from any thread (the first
  // caller performs the drain, later callers block until it finishes).
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  NetServerStats GetStats() const;
  // Server counters plus the per-tenant block from TenantRegistry.
  std::string StatsJson() const;

  TenantRegistry& tenants() { return tenants_; }

 private:
  // Per-connection state shared between the serving thread and the threads
  // that may cancel it (kCancel handlers, Drain).
  struct Connection {
    // id and fd are fixed by AcceptLoop before the serving thread exists;
    // tenant and scan_threads are set by the kHello handler and stable for
    // the rest of the connection. None is ever written concurrently.
    uint64_t id = 0;                // bih-lint: allow(guard-coverage)
    int fd = -1;                    // bih-lint: allow(guard-coverage)
    TenantState* tenant = nullptr;  // bih-lint: allow(guard-coverage)
    // Session-scoped intra-query parallelism override from the hello frame;
    // 0 keeps the server's default. Merged into ExecOptions per query.
    int scan_threads = 0;  // bih-lint: allow(guard-coverage)
    // Nested inside the registry lock by Drain, which sweeps every
    // connection's active query under conns_mu_.
    Mutex mu ACQUIRED_AFTER("Server::conns_mu_");
    // The in-flight query this connection is executing, if any. Registered
    // under mu just before execution and cleared (under mu) before the
    // context leaves scope, so a concurrent Cancel can never dangle.
    QueryContext* active GUARDED_BY(mu) = nullptr;
    uint64_t active_request_id GUARDED_BY(mu) = 0;
  };

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Connection> conn);
  // Dispatches one decoded request. Returns false when the connection
  // should close (goodbye, protocol violation, injected drop).
  bool HandleMessage(Connection& conn, const Message& in);
  void HandleQuery(Connection& conn, const Message& in, Message* reply);
  void HandleExplain(Connection& conn, const Message& in, Message* reply);
  void HandleCancel(const Message& in);
  // Session defaults overlaid with the connection's hello-frame override.
  ExecOptions QueryExecOptions(const Connection& conn) const;

  // Sends one reply frame through the fault injector. False = the
  // connection must die (injected drop/torn frame, peer gone, timeout).
  bool SendReply(Connection& conn, const Message& reply);
  // Raw fault-checked frame write; bytes_out reports payload bytes sent.
  bool SendFrame(Connection& conn, const std::string& frame);

  // Consults the shared injector under fault_mu_ (the injector's counters
  // are not thread-safe on their own).
  FaultInjector::Action NextSendAction(size_t frame_len);
  FaultInjector::Action NextAcceptAction();

  void BumpStat(uint64_t NetServerStats::* field, uint64_t delta = 1);

  SessionManager* session_;  // borrowed
  const ServerConfig cfg_;
  TenantRegistry tenants_;

  // Lifecycle-only: written by Start before the accept thread is spawned,
  // read/joined by Stop after draining; never touched concurrently.
  int listen_fd_ = -1;  // bih-lint: allow(guard-coverage)
  uint16_t port_ = 0;   // bih-lint: allow(guard-coverage)
  std::thread accept_thread_;  // bih-lint: allow(guard-coverage)

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};

  // Serializes the drain sequence itself; drained_ flips once at the end.
  Mutex drain_mu_;
  CondVar drain_cv_;
  bool drain_done_ GUARDED_BY(drain_mu_) = false;
  bool drain_running_ GUARDED_BY(drain_mu_) = false;

  // Live connections, keyed by conn id, for kCancel routing and Drain's
  // cancel-and-shutdown sweep. A serving thread removes itself *before*
  // closing its fd, so the sweep can never shut down a recycled fd.
  mutable Mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);
  uint64_t next_conn_id_ GUARDED_BY(conns_mu_) = 0;

  // Serving threads; joined by Drain after the sockets are shut down.
  Mutex threads_mu_ ACQUIRED_AFTER(conns_mu_);
  std::vector<std::thread> threads_ GUARDED_BY(threads_mu_);

  // The injector and its operation counters move together.
  Mutex fault_mu_;
  FaultInjector* fault_ GUARDED_BY(fault_mu_) PT_GUARDED_BY(fault_mu_);
  uint64_t send_index_ GUARDED_BY(fault_mu_) = 0;
  uint64_t accept_index_ GUARDED_BY(fault_mu_) = 0;

  mutable Mutex stats_mu_;
  NetServerStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace net
}  // namespace bih

#endif  // TPCBIH_NET_SERVER_H_
