file(REMOVE_RECURSE
  "CMakeFiles/order_analytics.dir/order_analytics.cpp.o"
  "CMakeFiles/order_analytics.dir/order_analytics.cpp.o.d"
  "order_analytics"
  "order_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
