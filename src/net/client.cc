#include "net/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace bih {
namespace net {

namespace {

int PollFd(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace

Status Client::Connect(const std::string& host, uint16_t port,
                       const std::string& tenant, int scan_threads) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Status::IoError("connect to " + host + ":" +
                                std::to_string(port) + " failed: " +
                                std::strerror(errno));
    Close();
    return st;
  }
  Message hello;
  hello.type = MsgType::kHello;
  hello.text = tenant;
  hello.scan_threads =
      scan_threads > 0 ? static_cast<uint32_t>(scan_threads) : 0;
  hello.request_id = next_request_id_++;
  Message reply;
  std::string payload;
  Status st = RoundTrip(hello, &reply, &payload);
  if (!st.ok()) {
    Close();
    return st;
  }
  if (reply.type == MsgType::kError) {
    Close();
    return Status(static_cast<Status::Code>(reply.status_code), reply.text);
  }
  if (reply.type != MsgType::kHelloOk) {
    Close();
    return Status::IoError("unexpected reply to Hello");
  }
  conn_id_ = reply.conn_id;
  return Status::OK();
}

Status Client::Query(const std::string& sql, uint32_t deadline_ms,
                     QueryReply* out) {
  *out = QueryReply();
  if (fd_ < 0) {
    out->status = Status::IoError("client not connected");
    return out->status;
  }
  Message req;
  req.type = MsgType::kQuery;
  req.text = sql;
  req.deadline_ms = deadline_ms;
  req.request_id = next_request_id_++;
  out->request_id = req.request_id;
  Message reply;
  Status st = RoundTrip(req, &reply, &out->raw_payload);
  if (!st.ok()) {
    out->status = st;
    return st;
  }
  if (reply.request_id != req.request_id) {
    // A reply for a different request on a strictly sequential connection
    // means the stream is out of step — treat the connection as corrupt.
    out->status = Status::IoError("reply request id mismatch");
    return out->status;
  }
  switch (reply.type) {
    case MsgType::kResult:
      out->status = Status::OK();
      out->columns = std::move(reply.columns);
      out->rows = std::move(reply.rows);
      break;
    case MsgType::kError:
      out->status =
          Status(static_cast<Status::Code>(reply.status_code), reply.text);
      out->retry_after_ms = reply.retry_after_ms;
      break;
    default:
      out->status = Status::IoError("unexpected reply type to Query");
      break;
  }
  return out->status;
}

Status Client::CancelPeer(uint64_t conn_id, uint64_t request_id) {
  if (fd_ < 0) return Status::IoError("client not connected");
  Message req;
  req.type = MsgType::kCancel;
  req.conn_id = conn_id;
  req.request_id = request_id;
  Message reply;
  std::string payload;
  // The kPong ack is consumed to keep the stream in step; whether the
  // cancel landed before the query finished is inherently racy and not an
  // error either way.
  return RoundTrip(req, &reply, &payload);
}

Status Client::Explain(const std::string& sql, uint32_t deadline_ms,
                       std::string* json) {
  json->clear();
  if (fd_ < 0) return Status::IoError("client not connected");
  Message req;
  req.type = MsgType::kExplain;
  req.text = sql;
  req.deadline_ms = deadline_ms;
  req.request_id = next_request_id_++;
  Message reply;
  std::string payload;
  BIH_RETURN_IF_ERROR(RoundTrip(req, &reply, &payload));
  if (reply.request_id != req.request_id) {
    return Status::IoError("reply request id mismatch");
  }
  if (reply.type == MsgType::kError) {
    return Status(static_cast<Status::Code>(reply.status_code), reply.text);
  }
  if (reply.type != MsgType::kExplainReply) {
    return Status::IoError("unexpected reply to Explain");
  }
  *json = std::move(reply.text);
  return Status::OK();
}

Status Client::GetStatsJson(std::string* out) {
  out->clear();
  if (fd_ < 0) return Status::IoError("client not connected");
  Message req;
  req.type = MsgType::kStats;
  req.request_id = next_request_id_++;
  Message reply;
  std::string payload;
  BIH_RETURN_IF_ERROR(RoundTrip(req, &reply, &payload));
  if (reply.type != MsgType::kStatsReply) {
    return Status::IoError("unexpected reply to Stats");
  }
  *out = std::move(reply.text);
  return Status::OK();
}

Status Client::Ping() {
  if (fd_ < 0) return Status::IoError("client not connected");
  Message req;
  req.type = MsgType::kPing;
  req.request_id = next_request_id_++;
  Message reply;
  std::string payload;
  BIH_RETURN_IF_ERROR(RoundTrip(req, &reply, &payload));
  if (reply.type != MsgType::kPong) {
    return Status::IoError("unexpected reply to Ping");
  }
  return Status::OK();
}

void Client::Close() {
  if (fd_ < 0) return;
  Message bye;
  bye.type = MsgType::kGoodbye;
  std::string payload, frame;
  EncodeMessage(bye, &payload);
  EncodeFrame(payload, &frame);
  (void)SendAll(frame);  // best effort; the server may already be gone
  ::close(fd_);
  fd_ = -1;
  conn_id_ = 0;
  buf_.clear();
}

Status Client::RoundTrip(const Message& req, Message* reply,
                         std::string* payload) {
  std::string p, frame;
  EncodeMessage(req, &p);
  EncodeFrame(p, &frame);
  BIH_RETURN_IF_ERROR(SendAll(frame));
  BIH_RETURN_IF_ERROR(RecvFrame(payload));
  return DecodeMessage(reinterpret_cast<const uint8_t*>(payload->data()),
                       payload->size(), reply);
}

Status Client::SendAll(const std::string& frame) {
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::RecvFrame(std::string* payload) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(recv_timeout_ms_);
  for (;;) {
    size_t consumed = 0;
    Status fs = DecodeFrame(reinterpret_cast<const uint8_t*>(buf_.data()),
                            buf_.size(), &consumed, payload);
    if (fs.ok()) {
      buf_.erase(0, consumed);
      return Status::OK();
    }
    if (fs.code() == Status::Code::kIoError) return fs;  // corrupt stream
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::IoError("recv timed out waiting for reply frame");
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    const int ready =
        PollFd(fd_, POLLIN, static_cast<int>(left.count()) + 1);
    if (ready < 0) {
      return Status::IoError(std::string("poll failed: ") +
                             std::strerror(errno));
    }
    if (ready == 0) continue;  // loop re-checks the deadline
    char tmp[4096];
    const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    buf_.append(tmp, static_cast<size_t>(n));
  }
}

}  // namespace net
}  // namespace bih
