#ifndef TPCBIH_TOOLS_ANALYSIS_LOCK_GRAPH_H_
#define TPCBIH_TOOLS_ANALYSIS_LOCK_GRAPH_H_

// Lock-order graph construction for bih_analyze.
//
// Nodes are mutex identities "Class::field" — one node per declared
// bih::Mutex / bih::SharedMutex data member. A vector-of-mutex member
// (the session's write-shard array) is one node: internal ordering inside
// the vector (ascending index) is a runtime protocol the graph cannot
// check, but its position relative to every OTHER lock is.
//
// Edges mean "left is acquired before right" and come from two places:
//  * declared: ACQUIRED_AFTER / ACQUIRED_BEFORE annotations on the field;
//  * observed: a body walk that tracks the held-lock set through
//    MutexLock/WriterLock/ReaderLock scopes, manual .lock()/.unlock()
//    calls, ACQUIRE/TRY_ACQUIRE contracts and `// bih-analyze:
//    acquires(...)` directives on called functions, and a fixpoint over
//    direct calls so acquisitions deep in a callee chain still order
//    against locks the caller holds.
//
// The walk is deliberately conservative about names: a call or mutex
// expression that does not resolve to exactly one candidate is skipped.
// A parse gap costs coverage, never a false positive.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/parser.h"

namespace bih {
namespace analysis {

// Where an observed fact was seen. `chain` is a human-readable call chain
// ("SessionManager::DoWrite -> GroupCommit::WaitDurable") for facts that
// were propagated into a caller; empty for direct observations.
struct Witness {
  std::string func;  // qualified function the fact was attributed to
  std::string file;
  size_t line = 0;
  std::string chain;
};

struct LockEdge {
  std::string from;  // acquired first
  std::string to;    // acquired second (while `from` is held)
  bool declared = false;
  std::vector<Witness> witnesses;  // observed sites (empty if declared-only)
};

// A site at which a function may block (fsync, CV wait, socket I/O,
// sleep, thread join), possibly deep in a callee. `exempt` lists mutexes
// that do NOT count as held across the blocking point: the mutex a CV
// wait releases internally, and any mutex whose holding was explicitly
// waived by a suppression at the original site.
struct BlockSite {
  std::string what;  // the blocking callee ("fdatasync", "CondVar::Wait")
  std::string file;  // original site
  size_t line = 0;
  std::string chain;  // call chain from the function owning this summary
  std::set<std::string> exempt;
};

// Per-function fixpoint summary.
struct FuncSummary {
  // Mutex id -> first witness of an acquisition (own body or transitive).
  std::map<std::string, Witness> acquires;
  std::vector<BlockSite> blocks;
};

// One blocking point observed during the final walk, with the lock
// context needed by the blocking-under-lock pass. `suppressed` means a
// `// bih-lint: allow(blocking-under-lock)` waiver covers the site.
struct BlockObservation {
  std::string func;   // qualified function the site was observed in
  std::string what;
  std::string file;   // site (call site for propagated blocks)
  size_t line = 0;
  std::string origin;  // "file:line" of the root blocking call
  std::string chain;   // call chain, empty for direct sites
  std::set<std::string> held;
  std::set<std::string> exempt;
  bool suppressed = false;
};

struct LockGraph {
  std::set<std::string> nodes;  // every declared Mutex/SharedMutex field
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  std::map<std::string, FuncSummary> summaries;  // by qualified name
  std::vector<BlockObservation> block_observations;

  // Pairs (a, b) with a declared acquired-before path a -> ... -> b
  // (transitive closure of declared edges only).
  std::set<std::pair<std::string, std::string>> declared_closure;

  struct Cycle {
    std::vector<std::string> nodes;  // in order; front() == min element
    std::vector<const LockEdge*> edges;
  };
  std::vector<Cycle> cycles;

  bool DeclaredPath(const std::string& a, const std::string& b) const {
    return declared_closure.count({a, b}) != 0;
  }
};

// Resolves mutex names against the repo model.
class LockResolver {
 public:
  explicit LockResolver(const RepoModel& repo);

  // Resolves a mutex expression spine (identifier, possibly from an
  // annotation string argument "Class::field") seen inside class `cls`
  // ("" for free functions). Returns "" when not exactly one candidate.
  std::string Resolve(const std::string& name, const std::string& cls) const;

  const FieldDecl* Field(const std::string& id) const;
  const std::set<std::string>& AllMutexes() const { return all_; }

 private:
  const RepoModel& repo_;
  std::set<std::string> all_;                          // "Class::field"
  std::map<std::string, std::vector<std::string>> by_name_;  // field -> ids
};

// Builds the full graph: declared edges from field annotations, observed
// edges + block sites from the fixpoint body walk, cycles, closure.
LockGraph BuildLockGraph(const RepoModel& repo, const LockResolver& resolver);

}  // namespace analysis
}  // namespace bih

#endif  // TPCBIH_TOOLS_ANALYSIS_LOCK_GRAPH_H_
