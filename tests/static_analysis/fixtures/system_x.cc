// Fixture: must trip [scan-ctx]. The file name matches the engine pattern
// (system_*.cc) and the Scan implementation — it takes a ScanRequest —
// neither polls the QueryContext nor delegates to a scan helper, so a long
// scan could never be cancelled.
struct Row {
  int key = 0;
};

struct ScanRequest {
  int limit = 0;
};

int ScanEverything(const ScanRequest& req, const Row* rows, int n) {
  int matched = 0;
  for (int i = 0; i < n && i < req.limit; ++i) {
    matched += rows[i].key;
  }
  return matched;
}
