#ifndef TPCBIH_DURABILITY_WAL_H_
#define TPCBIH_DURABILITY_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/period.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "durability/fault.h"
#include "temporal/sequenced.h"

namespace bih {

// Binary write-ahead log shared by all four engines. The log is engine-
// neutral: it records logical mutations (the same vocabulary as the archive
// Operation) together with the commit timestamp the engine assigned, so
// replaying it into a fresh engine of any architecture reproduces the exact
// bitemporal state — including system-time coordinates.
//
// File layout: an 8-byte magic ("BIHWAL01"), then framed records:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// payload = u8 kind, u8 flags, i64 commit_ts, kind-specific body. Strings
// are u32 length + bytes, values are 1-byte-tagged (null/int/double/str).
// A record with flags bit kInTxn set is only durable once a later kCommit
// record closes its transaction; recovery discards an unterminated batch,
// which is how a crash between Begin and the Commit flush loses exactly the
// uncommitted suffix and nothing else.
//
// The log is segmented: segment 1 lives at the base path itself (so a
// never-rotated log is byte-compatible with the pre-segmentation format)
// and segment i >= 2 at "<base>.NNNNNN". Rotation is driven by the
// checkpointer (durability/checkpoint.h); recovery replays the segment
// chain in index order.

// CRC-32 (IEEE 802.3 polynomial, reflected). Exposed so tests can craft
// deliberately corrupt frames.
uint32_t WalCrc32(const uint8_t* data, size_t n);

// The 8-byte file magic shared by log segments and checkpoint files.
std::string WalFileMagic();

// --- durable-sync primitives ---------------------------------------------
// These are the only sanctioned fsync/fdatasync call sites in the tree
// (tools/bih_lint enforces it): every durability decision goes through
// here, where BIH_NO_FSYNC can turn real device syncs off for tests and
// benches that churn thousands of tiny throwaway logs.

// True unless BIH_NO_FSYNC is set (re-read per call so tests can flip it).
bool DurableSyncEnabled();
// fdatasync of `f`'s descriptor; EINTR is retried. No-op when sync is
// disabled. `path` is only used for error messages.
Status SyncFileNow(std::FILE* f, const std::string& path);
// fsync of the directory containing `path`, making a create/rename of that
// name durable. No-op when sync is disabled.
Status SyncParentDir(const std::string& path);

// --- segment naming -------------------------------------------------------

// Path of segment `index` (1-based) of the log at `base`: `base` itself for
// index 1, "<base>.NNNNNN" (zero-padded) beyond.
std::string WalSegmentPath(const std::string& base, uint64_t index);

struct WalSegment {
  uint64_t index = 0;
  std::string path;
};

// All existing segments of the log at `base`, sorted by index. Missing
// leading segments (truncated by a checkpoint) are simply absent.
std::vector<WalSegment> ListWalSegments(const std::string& base);

// Deletes segments with index < keep_from (checkpoint truncation). The
// number of files removed is reported via `removed` when non-null.
Status RemoveWalSegmentsBefore(const std::string& base, uint64_t keep_from,
                               uint64_t* removed = nullptr);

struct WalRecord {
  enum class Kind : uint8_t {
    kCreateTable = 1,
    kInsert = 2,
    kUpdateCurrent = 3,
    kUpdateSequenced = 4,
    kUpdateOverwrite = 5,
    kDeleteCurrent = 6,
    kDeleteSequenced = 7,
    kBulkLoad = 8,
    kCommit = 9,  // closes the open transaction's records
    // Checkpoint-file records (durability/checkpoint.h); never produced by
    // live mutation logging.
    kSnapshotRows = 10,     // a chunk of stored versions of one table
    kCheckpointFooter = 11  // marks the checkpoint complete and readable
  };
  static constexpr uint8_t kInTxn = 0x01;  // flags bit

  Kind kind = Kind::kCommit;
  uint8_t flags = 0;
  int64_t ts = 0;  // commit timestamp (micros); 0 for DDL;
                   // clock watermark for kCheckpointFooter

  std::string table;                    // all DML kinds, kSnapshotRows
  TableDef def;                         // kCreateTable
  Row row;                              // kInsert
  std::vector<Row> rows;                // kBulkLoad, kSnapshotRows
  std::vector<Value> key;               // update/delete kinds
  int period_index = 0;                 // sequenced kinds
  Period period;                        // sequenced kinds
  std::vector<ColumnAssignment> set;    // update kinds
  uint64_t segments_covered = 0;        // kCheckpointFooter: highest WAL
                                        // segment folded into the snapshot

  bool in_txn() const { return (flags & kInTxn) != 0; }
};

// Serializes `rec` into the payload encoding (no frame header).
void EncodeWalRecord(const WalRecord& rec, std::string* out);
// Parses a payload produced by EncodeWalRecord.
Status DecodeWalRecord(const uint8_t* data, size_t n, WalRecord* out);

// Appends framed records to a log file. Writes go through the optional
// FaultInjector. Clean failures (an injected EIO before any byte landed,
// or a failed fflush/fdatasync) are retried with bounded exponential
// backoff before giving up; a short physical write is never retried,
// because the on-disk state is unknown. Once an append, flush or rotation
// has definitively failed, the writer is dead: dead_reason() keeps the one
// actionable first error and every further call returns the same terse
// kIoError referencing it (the in-memory engine state is then ahead of the
// durable state, exactly like a real crash — the session layer reacts by
// degrading to read-only).
//
// Flush() is the durability point of a commit: it pushes buffered bytes to
// the OS and then fdatasyncs the segment (unless BIH_NO_FSYNC is set).
//
// Group commit: SetDeferredSync(true) turns Flush() into a stage-only
// operation (fflush to the OS, no device sync); durability then comes from
// SyncGroup(), which flushes the stream, captures the append LSN, and pays
// one fdatasync for every record appended so far — with the writer's mutex
// released during the device wait, so later transactions keep appending
// into the stream while the sync is in flight (commit pipelining). The
// group-commit coordinator (durability/group_commit.h) elects the leader
// that calls it.
//
// Thread safety: the writer carries its own mutex, so Append/Flush/Rotate
// are safe from any thread. In the session layer all writes already arrive
// serialized under the exclusive engine lock; the internal lock makes the
// log's frame integrity independent of that outer discipline (and lets
// -Wthread-safety prove nothing touches the stream unlocked).
class WalWriter {
 public:
  // Attempts per record/flush/sync: the first try plus two retries, backing
  // off 1ms then 2ms. Enough to ride out a transient EINTR/ENOSPC-race
  // style hiccup without stalling a commit visibly.
  static constexpr int kMaxWriteAttempts = 3;

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Creates/truncates segment 1 of the log at `path`, writes the magic and
  // makes the creation durable (file + parent directory sync). The injector
  // (optional) is borrowed and must outlive the writer.
  static Status Open(const std::string& path, FaultInjector* fault,
                     std::unique_ptr<WalWriter>* out);

  // Creates/truncates segment `segment_index` (>= 1) of the log at `path`
  // and opens a writer positioned there, leaving earlier segments alone.
  // This is the revive path out of read-only degradation: a session whose
  // writer died at segment k opens a fresh writer at k+1, checkpoints the
  // in-memory state (covering everything before the fresh segment), and
  // resumes writes — recovery then never needs the dead segment's lost
  // suffix.
  static Status OpenAt(const std::string& path, uint64_t segment_index,
                       FaultInjector* fault, std::unique_ptr<WalWriter>* out);

  Status Append(const WalRecord& rec) EXCLUDES(mu_);
  // Pushes buffered bytes to the OS and syncs the device (the durability
  // point of a commit). In deferred-sync mode the device sync is skipped:
  // the record is staged and SyncGroup() pays for it later.
  Status Flush() EXCLUDES(mu_);
  // Finishes the current segment (flush + sync) and starts the next one.
  // Called by the checkpointer at the checkpoint watermark so the snapshot
  // covers exactly the finished segments. Rotation always syncs the device,
  // deferred mode or not: a segment boundary is a durability boundary.
  Status Rotate() EXCLUDES(mu_);

  // --- group commit ------------------------------------------------------
  // Switches Flush() between sync-per-commit (false, the default) and
  // stage-only (true). The session layer flips this once when it takes
  // ownership of durability via a GroupCommit coordinator.
  void SetDeferredSync(bool deferred) EXCLUDES(mu_);
  // Records appended so far across segments — the LSN ticket a transaction
  // hands to the group-commit coordinator ("make everything up to here
  // durable").
  uint64_t appended_lsn() const EXCLUDES(mu_);
  // One batched durability point: flush the stream, capture the append
  // LSN, fdatasync the device (fault-checked per attempt via OnSync, with
  // the same retry/backoff as the per-commit path; OnGroupFlush fires once
  // between staging and the sync — the "crash with the group in the page
  // cache" point). The writer's mutex is RELEASED during the device wait.
  // On success *durable_upto (optional) is the LSN the sync proved durable.
  Status SyncGroup(uint64_t* durable_upto) EXCLUDES(mu_);

  const std::string& path() const { return path_; }
  uint64_t records_written() const {
    MutexLock lock(mu_);
    return records_written_;
  }
  uint64_t bytes_written() const {
    MutexLock lock(mu_);
    return bytes_written_;
  }
  uint64_t segment_index() const {
    MutexLock lock(mu_);
    return segment_index_;
  }
  uint64_t syncs() const {
    MutexLock lock(mu_);
    return syncs_;
  }
  uint64_t group_syncs() const {
    MutexLock lock(mu_);
    return group_syncs_;
  }
  bool dead() const {
    MutexLock lock(mu_);
    return dead_;
  }
  // The first definitive failure, verbatim; empty while the writer lives.
  std::string dead_reason() const {
    MutexLock lock(mu_);
    return dead_reason_;
  }

 private:
  WalWriter(std::string path, std::FILE* f, FaultInjector* fault,
            uint64_t header_bytes, uint64_t segment_index = 1)
      : path_(std::move(path)),
        file_(f),
        fault_(fault),
        bytes_written_(header_bytes),
        segment_index_(segment_index) {}

  // Records the first definitive failure and returns its status; later
  // calls while dead get the same stable terse error from DeadStatus().
  Status MarkDead(std::string reason) REQUIRES(mu_);
  Status DeadStatus() const REQUIRES(mu_);
  // fflush with bounded retries; marks the writer dead on exhaustion.
  Status FlushLocked() REQUIRES(mu_);
  // One sync point (fault-checked, retried, BIH_NO_FSYNC-gated).
  Status SyncLocked() REQUIRES(mu_);

  const std::string path_;  // base path (= segment 1), immutable

  // Everything below is the log stream's integrity: the FILE*, the injected
  // fault plan (its trigger counter mutates per write), the frame counters
  // and the scratch buffers must move together, one frame at a time.
  mutable Mutex mu_;
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  FaultInjector* fault_ GUARDED_BY(mu_) PT_GUARDED_BY(mu_) = nullptr;  // not owned
  uint64_t records_written_ GUARDED_BY(mu_) = 0;  // across all segments
  uint64_t bytes_written_ GUARDED_BY(mu_) = 0;    // across all segments
  uint64_t segment_index_ GUARDED_BY(mu_) = 1;
  uint64_t syncs_ GUARDED_BY(mu_) = 0;
  uint64_t group_syncs_ GUARDED_BY(mu_) = 0;
  uint64_t rotations_ GUARDED_BY(mu_) = 0;
  // Group-commit state. While a group's device sync is in flight the FILE*
  // must not be swapped or closed: SyncGroup sets sync_inflight_ and drops
  // mu_ for the wait; Rotate and the destructor wait on sync_cv_ for the
  // flag to clear before touching file_.
  bool deferred_sync_ GUARDED_BY(mu_) = false;
  bool sync_inflight_ GUARDED_BY(mu_) = false;
  CondVar sync_cv_;
  bool dead_ GUARDED_BY(mu_) = false;
  std::string dead_reason_ GUARDED_BY(mu_);
  // Scratch space reused across Append calls; at steady state appending a
  // record allocates nothing (this keeps the logging tax on the Fig. 16
  // loading path well under 2x).
  std::string payload_buf_ GUARDED_BY(mu_);
  std::string frame_buf_ GUARDED_BY(mu_);
};

// Result of scanning a log file up to the first torn or corrupt frame.
struct WalScanResult {
  std::vector<WalRecord> records;  // the valid prefix
  uint64_t bytes_total = 0;        // file size
  uint64_t bytes_salvaged = 0;     // offset just past the last valid record
  bool tail_dropped = false;       // trailing garbage was ignored
  std::string tail_reason;         // why the tail was cut (empty when clean)
};

// Reads every valid record of `path`. A bad magic is an error; a torn or
// CRC-corrupt tail is NOT — the valid prefix is returned and the tail
// described in `out` (graceful degradation; the caller decides whether to
// TruncateWalTail the file).
Status ScanWal(const std::string& path, WalScanResult* out);

// Truncates `path` to `bytes`, discarding a corrupt tail found by ScanWal
// so future appends extend a clean log.
Status TruncateWalTail(const std::string& path, uint64_t bytes);

}  // namespace bih

#endif  // TPCBIH_DURABILITY_WAL_H_
