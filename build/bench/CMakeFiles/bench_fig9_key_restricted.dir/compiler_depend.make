# Empty compiler generated dependencies file for bench_fig9_key_restricted.
# This may be replaced when dependencies are built.
