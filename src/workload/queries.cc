#include "workload/queries.h"

#include <algorithm>
#include <map>

#include "tpch/schema.h"

namespace bih {

namespace {

int SysFromCol(TemporalEngine& engine, const std::string& table) {
  return engine.GetTableDef(table).schema.num_columns();
}

TemporalScanSpec AllVersions() {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::All();
  return spec;
}

// One engine access as a single-node plan (the common leaf of the query
// classes below).
Rows ScanRows(TemporalEngine& engine, ScanRequest req) {
  return RunPlan(*ScanPlan(std::move(req)), engine);
}

Rows AggregateAvgCount(TemporalEngine& engine, const ScanRequest& req,
                       int value_col) {
  double sum = 0.0;
  int64_t n = 0;
  engine.Scan(req, [&](const Row& row) {
    const Value& v = row[static_cast<size_t>(value_col)];
    if (!v.is_null()) {
      sum += v.AsDouble();
      ++n;
    }
    return true;
  });
  return {Row{n == 0 ? Value::Null() : Value(sum / static_cast<double>(n)),
              Value(n)}};
}

}  // namespace

Rows QueryAll(TemporalEngine& engine) {
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal = AllVersions();
  req.projection = {orders::kTotalPrice};
  return AggregateAvgCount(engine, req, orders::kTotalPrice);
}

Rows T1(TemporalEngine& engine, const TemporalScanSpec& spec) {
  ScanRequest req;
  req.table = "PARTSUPP";
  req.temporal = spec;
  req.projection = {partsupp::kSupplyCost};
  return AggregateAvgCount(engine, req, partsupp::kSupplyCost);
}

Rows T2(TemporalEngine& engine, const TemporalScanSpec& spec) {
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal = spec;
  req.projection = {orders::kTotalPrice};
  return AggregateAvgCount(engine, req, orders::kTotalPrice);
}

Rows T3(TemporalEngine& engine, int64_t app_t1, int64_t app_t2) {
  ScanRequest req;
  req.table = "CUSTOMER";
  req.temporal = TemporalScanSpec::AppAsOf(app_t1);
  req.projection = {customer::kCustKey, customer::kAcctBal};
  ScanRequest req2 = req;
  req2.temporal = TemporalScanSpec::AppAsOf(app_t2);
  const size_t width = static_cast<size_t>(SysFromCol(engine, "CUSTOMER") + 2);
  const int bal2 = static_cast<int>(width) + customer::kAcctBal;
  PlanPtr plan = ProjectPlan(
      FilterPlan(HashJoinPlan(ScanPlan(std::move(req)),
                              ScanPlan(std::move(req2)), {customer::kCustKey},
                              {customer::kCustKey}, width),
                 Ne(Col(customer::kAcctBal), Col(bal2))),
      {Col(customer::kCustKey), Col(customer::kAcctBal), Col(bal2)});
  return RunPlan(*plan, engine);
}

Rows T4(TemporalEngine& engine, const TemporalScanSpec& spec, size_t n) {
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal = spec;
  Rows out;
  engine.Scan(req, [&](const Row& row) {
    out.push_back(row);
    return out.size() < n;  // early stop
  });
  return out;
}

Rows T6AppPointSysAll(TemporalEngine& engine, int64_t app_point) {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::AsOf(app_point);
  return T2(engine, spec);
}

Rows T6SysPointAppAll(TemporalEngine& engine, Timestamp sys_point) {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::AsOf(sys_point.micros());
  spec.app_time = TemporalSelector::All();
  return T2(engine, spec);
}

Rows T7Implicit(TemporalEngine& engine) {
  return T2(engine, TemporalScanSpec::Current());
}

Rows T7Explicit(TemporalEngine& engine) {
  return T2(engine, TemporalScanSpec::SystemAsOf(engine.Now().micros()));
}

Rows T8SimulatedAppPoint(TemporalEngine& engine, int64_t app_point,
                         const TemporalSelector& sys) {
  // The application-time constraint travels as plain predicates evaluated
  // by the client, never as a temporal clause (no index, no pruning).
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal.system_time = sys;
  req.projection = {orders::kTotalPrice, orders::kActiveBegin,
                    orders::kActiveEnd};
  double sum = 0.0;
  int64_t n = 0;
  engine.Scan(req, [&](const Row& row) {
    const Value& b = row[orders::kActiveBegin];
    const Value& e = row[orders::kActiveEnd];
    if (b.is_null() || e.is_null()) return true;
    if (b.AsInt() <= app_point && app_point < e.AsInt()) {
      sum += row[orders::kTotalPrice].AsDouble();
      ++n;
    }
    return true;
  });
  return {Row{n == 0 ? Value::Null() : Value(sum / static_cast<double>(n)),
              Value(n)}};
}

Rows T9SimulatedAppSlice(TemporalEngine& engine, int64_t app_point) {
  return T8SimulatedAppPoint(engine, app_point, TemporalSelector::All());
}

namespace {

ScanRequest CustomerKeyRequest(int64_t custkey, const TemporalScanSpec& spec) {
  ScanRequest req;
  req.table = "CUSTOMER";
  req.temporal = spec;
  req.equals = {{customer::kCustKey, Value(custkey)}};
  return req;
}

}  // namespace

Rows K1(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec) {
  const int sys_from = SysFromCol(engine, "CUSTOMER");
  PlanPtr plan = SortPlan(ScanPlan(CustomerKeyRequest(custkey, spec)),
                          {SortSpec{Col(sys_from), true}});
  return RunPlan(*plan, engine);
}

Rows K2(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec) {
  return K1(engine, custkey, spec);
}

Rows K3(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec) {
  ScanRequest req = CustomerKeyRequest(custkey, spec);
  req.projection = {customer::kAcctBal};
  const int sys_from = SysFromCol(engine, "CUSTOMER");
  PlanPtr plan =
      ProjectPlan(SortPlan(ScanPlan(std::move(req)),
                           {SortSpec{Col(sys_from), true}}),
                  {Col(customer::kAcctBal), Col(sys_from)});
  return RunPlan(*plan, engine);
}

Rows K4(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec,
        size_t n) {
  const int sys_from = SysFromCol(engine, "CUSTOMER");
  PlanPtr plan = LimitPlan(SortPlan(ScanPlan(CustomerKeyRequest(custkey, spec)),
                                    {SortSpec{Col(sys_from), false}}),
                           n);
  return RunPlan(*plan, engine);
}

Rows K5(TemporalEngine& engine, int64_t custkey, const TemporalScanSpec& spec) {
  // Correlated formulation: find the newest version, then re-scan for the
  // newest version strictly older than it — two key accesses, like the SQL.
  const int sys_from = SysFromCol(engine, "CUSTOMER");
  int64_t latest = Period::kBeginningOfTime;
  engine.Scan(CustomerKeyRequest(custkey, spec), [&](const Row& row) {
    latest = std::max(latest, row[static_cast<size_t>(sys_from)].AsInt());
    return true;
  });
  Row best;
  int64_t best_from = Period::kBeginningOfTime;
  engine.Scan(CustomerKeyRequest(custkey, spec), [&](const Row& row) {
    int64_t from = row[static_cast<size_t>(sys_from)].AsInt();
    if (from < latest && from > best_from) {
      best_from = from;
      best = row;
    }
    return true;
  });
  Rows out;
  if (!best.empty()) out.push_back(std::move(best));
  return out;
}

Rows K6(TemporalEngine& engine, double lo, Value hi,
        const TemporalScanSpec& spec) {
  ScanRequest req;
  req.table = "CUSTOMER";
  req.temporal = spec;
  req.range_col = customer::kAcctBal;
  req.range_lo = Value(lo);
  req.range_hi = std::move(hi);
  PlanPtr plan = SortPlan(ScanPlan(std::move(req)),
                          {SortSpec{Col(customer::kCustKey), true}});
  return RunPlan(*plan, engine);
}

Rows R1(TemporalEngine& engine) {
  // Two temporal evaluations of ORDERS joined on the key with the system
  // intervals meeting: each joined pair is one state transition.
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal.system_time = TemporalSelector::All();
  req.projection = {orders::kOrderKey, orders::kOrderStatus};
  ScanRequest req2 = req;
  const int sys_from = SysFromCol(engine, "ORDERS");
  const int sys_to = sys_from + 1;
  const int w = sys_from + 2;
  ExprPtr meets = And(Eq(Col(sys_to), Col(w + sys_from)),
                      Ne(Col(orders::kOrderStatus), Col(w + orders::kOrderStatus)));
  PlanPtr plan = ProjectPlan(
      HashJoinPlan(ScanPlan(std::move(req)), ScanPlan(std::move(req2)),
                   {orders::kOrderKey}, {orders::kOrderKey},
                   static_cast<size_t>(w), JoinType::kInner, meets),
      {Col(orders::kOrderKey), Col(orders::kOrderStatus),
       Col(w + orders::kOrderStatus), Col(w + sys_from)});
  return RunPlan(*plan, engine);
}

Rows R2(TemporalEngine& engine) {
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal.system_time = TemporalSelector::All();
  req.projection = {orders::kOrderKey, orders::kOrderStatus};
  Rows h = ScanRows(engine, std::move(req));
  const int sys_from = SysFromCol(engine, "ORDERS");
  const int sys_to = sys_from + 1;
  const int64_t now = engine.Now().micros();
  // Duration spent in the open state, per order.
  std::map<int64_t, int64_t> dur;
  for (const Row& row : h) {
    if (row[orders::kOrderStatus].AsString() != "O") continue;
    int64_t b = row[static_cast<size_t>(sys_from)].AsInt();
    int64_t e = row[static_cast<size_t>(sys_to)].AsInt();
    if (e == Period::kForever) e = now;
    dur[row[orders::kOrderKey].AsInt()] += e - b;
  }
  Rows out;
  for (const auto& [k, d] : dur) out.push_back({Value(k), Value(d)});
  return out;
}

Rows R3(TemporalEngine& engine, TemporalAggKind kind, bool naive) {
  ScanRequest req;
  req.table = "ORDERS";
  req.temporal.system_time = TemporalSelector::All();
  req.projection = {orders::kTotalPrice};
  const int sys_from = SysFromCol(engine, "ORDERS");
  const int sys_to = sys_from + 1;

  if (!naive) {
    // Timeline sweep — the dedicated temporal-aggregation operator the
    // paper finds missing from all systems (cf. the Timeline Index work).
    std::vector<TimelineEntry> entries;
    engine.Scan(req, [&](const Row& row) {
      TimelineEntry e;
      e.period = Period(row[static_cast<size_t>(sys_from)].AsInt(),
                        row[static_cast<size_t>(sys_to)].AsInt());
      e.value = row[orders::kTotalPrice].AsDouble();
      entries.push_back(e);
      return true;
    });
    std::vector<TimelineSlice> slices = TemporalAggregate(std::move(entries), kind);
    Rows out;
    out.reserve(slices.size());
    for (const TimelineSlice& s : slices) {
      out.push_back({Value(s.period.begin), Value(s.period.end),
                     Value(s.value), Value(s.count)});
    }
    return out;
  }

  // Naive SQL:2011 formulation: project all interval boundaries, then for
  // each boundary re-evaluate the aggregate over the versions active there.
  // This is the "rather costly join over the time interval boundaries
  // followed by a grouping" of Section 3.3 — quadratic, hence the orders-of-
  // magnitude blowup of Fig. 14.
  Rows versions = ScanRows(engine, req);
  std::vector<int64_t> boundaries;
  for (const Row& row : versions) {
    boundaries.push_back(row[static_cast<size_t>(sys_from)].AsInt());
    int64_t e = row[static_cast<size_t>(sys_to)].AsInt();
    if (e != Period::kForever) boundaries.push_back(e);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  Rows out;
  for (int64_t b : boundaries) {
    double sum = 0.0, mn = 0.0, mx = 0.0;
    int64_t count = 0;
    for (const Row& row : versions) {
      int64_t vb = row[static_cast<size_t>(sys_from)].AsInt();
      int64_t ve = row[static_cast<size_t>(sys_to)].AsInt();
      if (vb <= b && b < ve) {
        double v = row[orders::kTotalPrice].AsDouble();
        if (count == 0) {
          mn = mx = v;
        } else {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        sum += v;
        ++count;
      }
    }
    if (count == 0) continue;
    double value = 0.0;
    switch (kind) {
      case TemporalAggKind::kSum:
        value = sum;
        break;
      case TemporalAggKind::kCount:
        value = static_cast<double>(count);
        break;
      case TemporalAggKind::kAvg:
        value = sum / static_cast<double>(count);
        break;
      case TemporalAggKind::kMax:
        value = mx;
        break;
      case TemporalAggKind::kMin:
        value = mn;
        break;
    }
    out.push_back({Value(b), Value(value), Value(count)});
  }
  return out;
}

Rows R4(TemporalEngine& engine, size_t top_n) {
  // The SQL accesses PARTSUPP twice (min and max sub-selects); mirror that.
  ScanRequest req;
  req.table = "PARTSUPP";
  req.temporal = AllVersions();
  req.projection = {partsupp::kPartKey, partsupp::kSuppKey,
                    partsupp::kAvailQty};
  ScanRequest req2 = req;
  PlanPtr mins = AggregatePlan(
      ScanPlan(std::move(req)), {partsupp::kPartKey, partsupp::kSuppKey},
      {{AggKind::kMin, Col(partsupp::kAvailQty)}});
  PlanPtr maxs = AggregatePlan(
      ScanPlan(std::move(req2)), {partsupp::kPartKey, partsupp::kSuppKey},
      {{AggKind::kMax, Col(partsupp::kAvailQty)}});
  // (p, s, min, p, s, max) -> (p, s, max-min)
  PlanPtr plan = LimitPlan(
      SortPlan(ProjectPlan(HashJoinPlan(std::move(mins), std::move(maxs),
                                        {0, 1}, {0, 1}, 3),
                           {Col(0), Col(1), Sub(Col(5), Col(2))}),
               {SortSpec{Col(2), true}, SortSpec{Col(0), true},
                SortSpec{Col(1), true}}),
      top_n);
  return RunPlan(*plan, engine);
}

Rows R5(TemporalEngine& engine, double balance_lim, double price_lim) {
  ScanRequest creq;
  creq.table = "CUSTOMER";
  creq.temporal.system_time = TemporalSelector::All();
  creq.projection = {customer::kCustKey, customer::kAcctBal};
  const int c_sys_from = SysFromCol(engine, "CUSTOMER");

  ScanRequest oreq;
  oreq.table = "ORDERS";
  oreq.temporal.system_time = TemporalSelector::All();
  oreq.projection = {orders::kCustKey, orders::kTotalPrice};
  const int o_sys_from = SysFromCol(engine, "ORDERS");

  const int cw = c_sys_from + 2;
  // Overlap of the two system-time intervals.
  ExprPtr overlap =
      And(Lt(Col(c_sys_from), Col(cw + o_sys_from + 1)),
          Lt(Col(cw + o_sys_from), Col(c_sys_from + 1)));
  PlanPtr plan = DistinctPlan(ProjectPlan(
      HashJoinPlan(
          FilterPlan(ScanPlan(std::move(creq)),
                     Lt(Col(customer::kAcctBal), Lit(balance_lim))),
          FilterPlan(ScanPlan(std::move(oreq)),
                     Gt(Col(orders::kTotalPrice), Lit(price_lim))),
          {customer::kCustKey}, {orders::kCustKey},
          static_cast<size_t>(o_sys_from + 2), JoinType::kInner, overlap),
      {Col(customer::kCustKey)}));
  return RunPlan(*plan, engine);
}

Rows R6(TemporalEngine& engine) {
  // Temporal aggregation + join: per nation, number of (order version,
  // customer version) pairs whose system intervals overlap.
  ScanRequest creq;
  creq.table = "CUSTOMER";
  creq.temporal.system_time = TemporalSelector::All();
  creq.projection = {customer::kCustKey, customer::kNationKey};
  const int c_sys_from = SysFromCol(engine, "CUSTOMER");

  ScanRequest oreq;
  oreq.table = "ORDERS";
  oreq.temporal.system_time = TemporalSelector::All();
  oreq.projection = {orders::kCustKey};
  const int o_sys_from = SysFromCol(engine, "ORDERS");

  const int cw = c_sys_from + 2;
  ExprPtr overlap =
      And(Lt(Col(c_sys_from), Col(cw + o_sys_from + 1)),
          Lt(Col(cw + o_sys_from), Col(c_sys_from + 1)));
  PlanPtr plan = AggregatePlan(
      HashJoinPlan(ScanPlan(std::move(creq)), ScanPlan(std::move(oreq)),
                   {customer::kCustKey}, {orders::kCustKey},
                   static_cast<size_t>(o_sys_from + 2), JoinType::kInner,
                   overlap),
      {customer::kNationKey}, {{AggKind::kCount, nullptr}});
  return RunPlan(*plan, engine);
}

Rows R7(TemporalEngine& engine, double pct) {
  ScanRequest req;
  req.table = "PARTSUPP";
  req.temporal.system_time = TemporalSelector::All();
  req.projection = {partsupp::kPartKey, partsupp::kSuppKey,
                    partsupp::kSupplyCost};
  const int sys_from = SysFromCol(engine, "PARTSUPP");
  Rows rows = ScanRows(engine, std::move(req));
  // Previous-version correlation for every key: order each key's versions
  // by system time and compare successive supply costs.
  struct Ver {
    int64_t from;
    double cost;
  };
  std::map<std::pair<int64_t, int64_t>, std::vector<Ver>> by_key;
  for (const Row& row : rows) {
    by_key[{row[partsupp::kPartKey].AsInt(), row[partsupp::kSuppKey].AsInt()}]
        .push_back(Ver{row[static_cast<size_t>(sys_from)].AsInt(),
                       row[partsupp::kSupplyCost].AsDouble()});
  }
  const double factor = 1.0 + pct / 100.0;
  Rows out;
  for (auto& [key, vers] : by_key) {
    std::sort(vers.begin(), vers.end(),
              [](const Ver& a, const Ver& b) { return a.from < b.from; });
    for (size_t i = 1; i < vers.size(); ++i) {
      if (vers[i - 1].cost > 0 && vers[i].cost > vers[i - 1].cost * factor) {
        out.push_back({Value(key.second), Value(key.first),
                       Value(vers[i].cost / vers[i - 1].cost)});
      }
    }
  }
  return RunPlan(*DistinctPlan(ProjectPlan(ValuesPlan(std::move(out)),
                                           {Col(0)})),
                 engine);
}

Rows B3(TemporalEngine& engine, int variant, int64_t partkey,
        int64_t app_point, Timestamp sys_past) {
  // Table 3 coordinates: application in {Point, Correlation, Agnostic},
  // system in {Point/Current, Point/Past, Correlation, Agnostic}.
  enum class App { kPoint, kCorr, kAgnostic };
  enum class Sys { kCurrent, kPast, kCorr, kAgnostic };
  App app;
  Sys sys;
  switch (variant) {
    case 0:   // non-temporal baseline: plain self-join on current data
      app = App::kAgnostic;
      sys = Sys::kCurrent;
      break;
    case 1:
      app = App::kPoint;
      sys = Sys::kCurrent;
      break;
    case 2:
      app = App::kPoint;
      sys = Sys::kPast;
      break;
    case 3:
      app = App::kCorr;
      sys = Sys::kCurrent;
      break;
    case 4:
      app = App::kPoint;
      sys = Sys::kCorr;
      break;
    case 5:
      app = App::kCorr;
      sys = Sys::kCorr;
      break;
    case 6:
      app = App::kAgnostic;
      sys = Sys::kCurrent;
      break;
    case 7:
      app = App::kAgnostic;
      sys = Sys::kPast;
      break;
    case 8:
      app = App::kAgnostic;
      sys = Sys::kCorr;
      break;
    case 9:
      app = App::kPoint;
      sys = Sys::kAgnostic;
      break;
    case 10:
      app = App::kCorr;
      sys = Sys::kAgnostic;
      break;
    default:
      app = App::kAgnostic;
      sys = Sys::kAgnostic;
      break;
  }

  TemporalScanSpec spec;
  switch (sys) {
    case Sys::kCurrent:
      spec.system_time = TemporalSelector::ImplicitCurrent();
      break;
    case Sys::kPast:
      spec.system_time = TemporalSelector::AsOf(sys_past.micros());
      break;
    case Sys::kCorr:
    case Sys::kAgnostic:
      spec.system_time = TemporalSelector::All();
      break;
  }
  switch (app) {
    case App::kPoint:
      spec.app_time = TemporalSelector::AsOf(app_point);
      break;
    case App::kCorr:
    case App::kAgnostic:
      spec.app_time = TemporalSelector::All();
      break;
  }

  ScanRequest left;
  left.table = "PARTSUPP";
  left.temporal = spec;
  left.equals = {{partsupp::kPartKey, Value(partkey)}};

  ScanRequest right = left;
  right.equals.clear();

  const int sys_from = SysFromCol(engine, "PARTSUPP");
  const int w = sys_from + 2;
  ExprPtr residual = nullptr;
  if (app == App::kCorr) {
    residual = And(Lt(Col(partsupp::kValidBegin), Col(w + partsupp::kValidEnd)),
                   Lt(Col(w + partsupp::kValidBegin), Col(partsupp::kValidEnd)));
  }
  if (sys == Sys::kCorr) {
    ExprPtr sys_overlap = And(Lt(Col(sys_from), Col(w + sys_from + 1)),
                              Lt(Col(w + sys_from), Col(sys_from + 1)));
    residual = residual == nullptr ? sys_overlap : And(residual, sys_overlap);
  }
  PlanPtr plan = SortPlan(
      DistinctPlan(ProjectPlan(
          HashJoinPlan(ScanPlan(std::move(left)), ScanPlan(std::move(right)),
                       {partsupp::kSuppKey}, {partsupp::kSuppKey},
                       static_cast<size_t>(w), JoinType::kInner, residual),
          {Col(w + partsupp::kPartKey)})),
      {SortSpec{Col(0), true}});
  return RunPlan(*plan, engine);
}

}  // namespace bih
