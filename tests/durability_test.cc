// Unit tests for the durability layer: WAL record encoding, CRC framing,
// torn-tail salvage, deterministic fault injection, and single-engine
// recovery behavior (batch atomicity, report accounting).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "durability/fault.h"
#include "durability/wal.h"
#include "engine/recovery.h"

namespace bih {
namespace {

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TableDef ItemDef() {
  TableDef def;
  def.name = "ITEM";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"PRICE", ColumnType::kDouble},
                       {"NOTE", ColumnType::kString},
                       {"VB", ColumnType::kDate},
                       {"VE", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"VALIDITY", 3, 4}};
  def.system_versioned = true;
  return def;
}

Row ItemRow(int64_t id, double price, const std::string& note, int64_t vb,
            int64_t ve) {
  return Row{Value(id), Value(price), Value(note), Value(vb), Value(ve)};
}

TEST(WalCodecTest, AllRecordKindsRoundTrip) {
  std::vector<WalRecord> recs;
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kCreateTable;
    r.def = ItemDef();
    recs.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kInsert;
    r.ts = 12345;
    r.table = "ITEM";
    r.row = ItemRow(7, 99.5, "hello", 10, Period::kForever);
    r.row.push_back(Value::Null());
    recs.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kUpdateSequenced;
    r.flags = WalRecord::kInTxn;
    r.ts = 777;
    r.table = "ITEM";
    r.key = {Value(int64_t{7})};
    r.period_index = 1;
    r.period = Period(5, 25);
    r.set = {{1, Value(3.5)}, {2, Value("note")}};
    recs.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kDeleteSequenced;
    r.ts = 999;
    r.table = "ITEM";
    r.key = {Value(int64_t{9})};
    r.period = Period(0, Period::kForever);
    recs.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kBulkLoad;
    r.ts = 4;
    r.table = "ITEM";
    r.rows = {ItemRow(1, 1.0, "a", 0, 9), ItemRow(2, 2.0, "b", 3, 8)};
    recs.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecord::Kind::kCommit;
    r.ts = 4242;
    recs.push_back(r);
  }

  const std::string path = TmpPath("roundtrip.wal");
  {
    std::unique_ptr<WalWriter> w;
    ASSERT_TRUE(WalWriter::Open(path, nullptr, &w).ok());
    for (const WalRecord& r : recs) ASSERT_TRUE(w->Append(r).ok());
    ASSERT_TRUE(w->Flush().ok());
    EXPECT_EQ(recs.size(), w->records_written());
  }
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(path, &scan).ok());
  EXPECT_FALSE(scan.tail_dropped);
  EXPECT_EQ(scan.bytes_total, scan.bytes_salvaged);
  ASSERT_EQ(recs.size(), scan.records.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    const WalRecord& a = recs[i];
    const WalRecord& b = scan.records[i];
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << i;
    EXPECT_EQ(a.flags, b.flags) << i;
    EXPECT_EQ(a.ts, b.ts) << i;
    EXPECT_EQ(a.table, b.table) << i;
    ASSERT_EQ(a.row.size(), b.row.size()) << i;
    for (size_t c = 0; c < a.row.size(); ++c) {
      EXPECT_EQ(0, a.row[c].Compare(b.row[c])) << i << ":" << c;
    }
    ASSERT_EQ(a.key.size(), b.key.size()) << i;
    EXPECT_EQ(a.period_index, b.period_index) << i;
    EXPECT_EQ(a.period.begin, b.period.begin) << i;
    EXPECT_EQ(a.period.end, b.period.end) << i;
    ASSERT_EQ(a.set.size(), b.set.size()) << i;
    for (size_t c = 0; c < a.set.size(); ++c) {
      EXPECT_EQ(a.set[c].column, b.set[c].column);
      EXPECT_EQ(0, a.set[c].value.Compare(b.set[c].value));
    }
    ASSERT_EQ(a.rows.size(), b.rows.size()) << i;
  }
  // Round-trip the table definition too.
  const TableDef& def = scan.records[0].def;
  EXPECT_EQ("ITEM", def.name);
  EXPECT_EQ(5, def.schema.num_columns());
  EXPECT_EQ(ColumnType::kDouble, def.schema.column(1).type);
  ASSERT_EQ(1u, def.primary_key.size());
  ASSERT_EQ(1u, def.app_periods.size());
  EXPECT_EQ(3, def.app_periods[0].begin_col);
  EXPECT_TRUE(def.system_versioned);
}

TEST(WalCodecTest, CrcDetectsBitFlip) {
  const std::string path = TmpPath("flip.wal");
  FaultInjector fi = FaultInjector::FlipByteNth(2, 13);
  std::unique_ptr<WalWriter> w;
  ASSERT_TRUE(WalWriter::Open(path, &fi, &w).ok());
  WalRecord rec;
  rec.kind = WalRecord::Kind::kInsert;
  rec.ts = 1;
  rec.table = "ITEM";
  rec.row = ItemRow(1, 1.0, "aaaa", 0, 5);
  ASSERT_TRUE(w->Append(rec).ok());
  ASSERT_TRUE(w->Append(rec).ok());  // this frame gets a byte flipped
  ASSERT_TRUE(w->Append(rec).ok());  // valid but beyond the corruption
  ASSERT_TRUE(w->Flush().ok());
  w.reset();

  WalScanResult scan;
  ASSERT_TRUE(ScanWal(path, &scan).ok());
  // Only the record before the corruption survives; nothing after a bad
  // CRC can be trusted.
  EXPECT_EQ(1u, scan.records.size());
  EXPECT_TRUE(scan.tail_dropped);
  EXPECT_NE(std::string::npos, scan.tail_reason.find("crc mismatch"));
  EXPECT_LT(scan.bytes_salvaged, scan.bytes_total);
}

TEST(WalCodecTest, TornTailIsSalvagedAndTruncatable) {
  const std::string path = TmpPath("torn.wal");
  FaultInjector fi = FaultInjector::TornNth(3, 5);  // 5 bytes of record 3
  std::unique_ptr<WalWriter> w;
  ASSERT_TRUE(WalWriter::Open(path, &fi, &w).ok());
  WalRecord rec;
  rec.kind = WalRecord::Kind::kInsert;
  rec.ts = 9;
  rec.table = "ITEM";
  rec.row = ItemRow(2, 2.0, "bb", 1, 7);
  ASSERT_TRUE(w->Append(rec).ok());
  ASSERT_TRUE(w->Append(rec).ok());
  Status st = w->Append(rec);
  EXPECT_EQ(Status::Code::kIoError, st.code());
  // Dead after the torn write, like a crashed process.
  EXPECT_EQ(Status::Code::kIoError, w->Append(rec).code());
  w.reset();

  WalScanResult scan;
  ASSERT_TRUE(ScanWal(path, &scan).ok());
  EXPECT_EQ(2u, scan.records.size());
  EXPECT_TRUE(scan.tail_dropped);
  EXPECT_NE(std::string::npos, scan.tail_reason.find("torn"));
  EXPECT_LT(scan.bytes_salvaged, scan.bytes_total);

  // Truncating to the salvage point yields a clean log again.
  ASSERT_TRUE(TruncateWalTail(path, scan.bytes_salvaged).ok());
  WalScanResult rescan;
  ASSERT_TRUE(ScanWal(path, &rescan).ok());
  EXPECT_EQ(2u, rescan.records.size());
  EXPECT_FALSE(rescan.tail_dropped);
  EXPECT_EQ(rescan.bytes_total, rescan.bytes_salvaged);
}

TEST(WalCodecTest, BadMagicIsAnError) {
  const std::string path = TmpPath("magic.wal");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("NOTAWAL!", f);
  std::fclose(f);
  WalScanResult scan;
  Status st = ScanWal(path, &scan);
  EXPECT_EQ(Status::Code::kIoError, st.code());
}

TEST(FaultInjectorTest, EnvParsingAndDeterminism) {
  setenv("BIH_FAULT", "torn:7:3", 1);
  FaultInjector fi = FaultInjector::FromEnv();
  EXPECT_EQ(FaultInjector::Mode::kTornWrite, fi.mode());
  EXPECT_EQ(7u, fi.trigger_write());
  unsetenv("BIH_FAULT");
  EXPECT_EQ(FaultInjector::Mode::kNone, FaultInjector::FromEnv().mode());

  setenv("BIH_FAULT", "fail:3", 1);
  fi = FaultInjector::FromEnv();
  EXPECT_EQ(FaultInjector::Mode::kFailWrite, fi.mode());
  unsetenv("BIH_FAULT");

  // Same seed, same plan.
  FaultInjector a = FaultInjector::FromSeed(11, 100);
  FaultInjector b = FaultInjector::FromSeed(11, 100);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_GE(a.trigger_write(), 1u);
  EXPECT_LE(a.trigger_write(), 100u);
}

TEST(FaultInjectorTest, TransientFailsFirstAttemptOnly) {
  FaultInjector fi = FaultInjector::TransientNth(2);
  EXPECT_FALSE(fi.OnWrite(1, 64).fail);   // record 1 passes
  EXPECT_TRUE(fi.OnWrite(2, 64).fail);    // record 2, attempt 1: EIO
  EXPECT_FALSE(fi.OnWrite(2, 64).fail);   // record 2, attempt 2: passes
  EXPECT_FALSE(fi.OnWrite(3, 64).fail);   // no crash afterwards
  EXPECT_TRUE(fi.triggered());

  setenv("BIH_FAULT", "transient:5", 1);
  FaultInjector env = FaultInjector::FromEnv();
  EXPECT_EQ(FaultInjector::Mode::kTransientWrite, env.mode());
  EXPECT_EQ(5u, env.trigger_write());
  unsetenv("BIH_FAULT");
}

TEST(EngineWalTest, TransientWriteFailureIsRetriedAndDurable) {
  const std::string path = TmpPath("transient.wal");
  // Record 2 (the first insert) fails on its first attempt; the writer's
  // backoff retry must absorb it without surfacing an error.
  FaultInjector fi = FaultInjector::TransientNth(2);
  auto engine = MakeEngine("A");
  ASSERT_TRUE(engine->EnableWal(path, &fi).ok());
  ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(1, 1.0, "a", 0, 9)).ok());
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(2, 2.0, "b", 0, 9)).ok());
  EXPECT_TRUE(fi.triggered());
  engine.reset();

  // The retried record really landed: recovery replays both inserts.
  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine("A", path, &recovered, &report).ok());
  EXPECT_FALSE(report.tail_dropped);
  EXPECT_EQ(2u, recovered->GetTableStats("ITEM").current_rows);
}

TEST(EngineWalTest, FailedWalWriteSurfacesIoError) {
  const std::string path = TmpPath("fail.wal");
  FaultInjector fi = FaultInjector::FailNth(3);  // DDL + insert ok, then fail
  auto engine = MakeEngine("A");
  ASSERT_TRUE(engine->EnableWal(path, &fi).ok());
  ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(1, 1.0, "a", 0, 9)).ok());
  Status st = engine->Insert("ITEM", ItemRow(2, 2.0, "b", 0, 9));
  EXPECT_EQ(Status::Code::kIoError, st.code());
}

TEST(EngineWalTest, UncommittedBatchIsDroppedOnRecovery) {
  const std::string path = TmpPath("batch.wal");
  // Batch layout: [create][i1][i2][commit][i3][i4][commit-fails].
  FaultInjector fi = FaultInjector::FailNth(7);
  auto engine = MakeEngine("B");
  ASSERT_TRUE(engine->EnableWal(path, &fi).ok());
  ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
  engine->Begin();
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(1, 1.0, "a", 0, 9)).ok());
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(2, 2.0, "b", 0, 9)).ok());
  ASSERT_TRUE(engine->Commit().ok());
  engine->Begin();
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(3, 3.0, "c", 0, 9)).ok());
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(4, 4.0, "d", 0, 9)).ok());
  Status st = engine->Commit();
  EXPECT_EQ(Status::Code::kIoError, st.code());
  // Closing the engine flushes the two appended-but-uncommitted records to
  // disk; recovery must stage them, see no commit marker, and drop them.
  engine.reset();

  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine("B", path, &recovered, &report).ok());
  // Only the first batch is durable.
  TableStats ts = recovered->GetTableStats("ITEM");
  EXPECT_EQ(2u, ts.current_rows);
  EXPECT_EQ(2u, report.ops_dropped);
  EXPECT_EQ(1u, report.txns_committed);
  EXPECT_EQ(3u, report.records_applied);  // create + 2 inserts
}

TEST(EngineWalTest, RecoveryPreservesCommitTimestamps) {
  const std::string path = TmpPath("stamps.wal");
  auto engine = MakeEngine("C");
  ASSERT_TRUE(engine->EnableWal(path).ok());
  ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(1, 1.0, "a", 0, 50)).ok());
  ASSERT_TRUE(
      engine->UpdateCurrent("ITEM", {Value(int64_t{1})}, {{1, Value(2.5)}})
          .ok());
  ASSERT_TRUE(
      engine
          ->UpdateSequenced("ITEM", {Value(int64_t{1})}, 0, Period(10, 20),
                            {{1, Value(9.0)}})
          .ok());

  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine("C", path, &recovered, &report).ok());
  EXPECT_FALSE(report.tail_dropped);
  EXPECT_EQ(recovered->Now().micros(), engine->Now().micros());

  auto dump = [](TemporalEngine& e) {
    ScanRequest req;
    req.table = "ITEM";
    req.temporal.system_time = TemporalSelector::All();
    req.temporal.app_time = TemporalSelector::All();
    std::vector<Row> rows;
    e.Scan(req, [&](const Row& r) {
      rows.push_back(r);
      return true;
    });
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    });
    return rows;
  };
  std::vector<Row> orig = dump(*engine);
  std::vector<Row> rec = dump(*recovered);
  ASSERT_EQ(orig.size(), rec.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    ASSERT_EQ(orig[i].size(), rec[i].size());
    for (size_t c = 0; c < orig[i].size(); ++c) {
      EXPECT_EQ(0, orig[i][c].Compare(rec[i][c])) << "row " << i << " col " << c;
    }
  }
}

// --- segments, rotation & checkpoint truncation ---------------------------

TEST(WalSegmentTest, SegmentNamingListingAndTruncation) {
  const std::string base = TmpPath("seg.wal");
  EXPECT_EQ(base, WalSegmentPath(base, 1));
  EXPECT_EQ(base + ".000002", WalSegmentPath(base, 2));
  EXPECT_EQ(base + ".000123", WalSegmentPath(base, 123));

  std::unique_ptr<WalWriter> w;
  ASSERT_TRUE(WalWriter::Open(base, nullptr, &w).ok());
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCommit;
  rec.ts = 1;
  ASSERT_TRUE(w->Append(rec).ok());
  ASSERT_TRUE(w->Rotate().ok());
  rec.ts = 2;
  ASSERT_TRUE(w->Append(rec).ok());
  ASSERT_TRUE(w->Rotate().ok());
  rec.ts = 3;
  ASSERT_TRUE(w->Append(rec).ok());
  ASSERT_TRUE(w->Flush().ok());
  EXPECT_EQ(3u, w->segment_index());
  EXPECT_EQ(3u, w->records_written());  // cumulative across segments
  w.reset();

  std::vector<WalSegment> segs = ListWalSegments(base);
  ASSERT_EQ(3u, segs.size());
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(i + 1, segs[i].index);
    WalScanResult scan;
    ASSERT_TRUE(ScanWal(segs[i].path, &scan).ok());
    ASSERT_EQ(1u, scan.records.size());
    EXPECT_EQ(static_cast<int64_t>(i + 1), scan.records[0].ts);
    EXPECT_FALSE(scan.tail_dropped);
  }

  // Checkpoint truncation: drop every segment the snapshot already covers.
  uint64_t removed = 0;
  ASSERT_TRUE(RemoveWalSegmentsBefore(base, 3, &removed).ok());
  EXPECT_EQ(2u, removed);
  segs = ListWalSegments(base);
  ASSERT_EQ(1u, segs.size());
  EXPECT_EQ(3u, segs[0].index);
  // Truncating again is a no-op, not an error.
  ASSERT_TRUE(RemoveWalSegmentsBefore(base, 3, &removed).ok());
  EXPECT_EQ(0u, removed);
}

// --- writer death: one actionable error, then a stable rejection ----------

TEST(WalWriterTest, TransientExhaustionMarksWriterDeadExactlyOnce) {
  const std::string path = TmpPath("exhaust.wal");
  // Record 2 fails on 5 consecutive attempts — beyond the writer's
  // 3-attempt backoff budget, so this "transient" behaves like a device
  // outage the retry loop cannot ride out.
  FaultInjector fi = FaultInjector::TransientNth(2, 5);
  std::unique_ptr<WalWriter> w;
  ASSERT_TRUE(WalWriter::Open(path, &fi, &w).ok());
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCommit;
  rec.ts = 1;
  ASSERT_TRUE(w->Append(rec).ok());

  // The killing call surfaces the one actionable error...
  Status first = w->Append(rec);
  ASSERT_EQ(Status::Code::kIoError, first.code());
  EXPECT_NE(std::string::npos,
            first.message().find("injected write failure on wal record 2"));
  EXPECT_NE(std::string::npos, first.message().find(path));
  EXPECT_TRUE(w->dead());
  EXPECT_EQ(first.message(), w->dead_reason());

  // ...and every later call gets the same stable terse rejection pointing
  // back at recovery, instead of a fresh variant per retried append.
  Status again = w->Append(rec);
  ASSERT_EQ(Status::Code::kIoError, again.code());
  EXPECT_NE(std::string::npos, again.message().find("is dead"));
  EXPECT_EQ(again.message(), w->Append(rec).message());
  EXPECT_EQ(again.message(), w->Flush().message());
  EXPECT_EQ(again.message(), w->Rotate().message());
  // The actionable first error is preserved, never overwritten.
  EXPECT_EQ(first.message(), w->dead_reason());
  EXPECT_EQ(1u, w->records_written());
}

TEST(WalWriterTest, TransientWithinBackoffBudgetSurvives) {
  const std::string path = TmpPath("survive.wal");
  // Two failed attempts, third passes: inside the 3-attempt budget.
  FaultInjector fi = FaultInjector::TransientNth(1, 2);
  std::unique_ptr<WalWriter> w;
  ASSERT_TRUE(WalWriter::Open(path, &fi, &w).ok());
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCommit;
  rec.ts = 42;
  ASSERT_TRUE(w->Append(rec).ok());
  ASSERT_TRUE(w->Flush().ok());
  EXPECT_TRUE(fi.triggered());
  EXPECT_FALSE(w->dead());
  w.reset();

  WalScanResult scan;
  ASSERT_TRUE(ScanWal(path, &scan).ok());
  ASSERT_EQ(1u, scan.records.size());
  EXPECT_EQ(42, scan.records[0].ts);
}

TEST(WalWriterTest, SyncFailureExhaustsRetriesAndKillsWriter) {
  const std::string path = TmpPath("sync_dead.wal");
  FaultInjector fi = FaultInjector::FailSyncNth(1);
  std::unique_ptr<WalWriter> w;
  ASSERT_TRUE(WalWriter::Open(path, &fi, &w).ok());
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCommit;
  ASSERT_TRUE(w->Append(rec).ok());
  // The commit's durability point is the sync; a sync that keeps failing
  // past the retry budget must kill the writer, because the durable prefix
  // is unknown from here on.
  Status st = w->Flush();
  ASSERT_EQ(Status::Code::kIoError, st.code());
  EXPECT_NE(std::string::npos, st.message().find("wal sync failed"));
  EXPECT_NE(std::string::npos,
            st.message().find("injected sync failure at sync point 1"));
  EXPECT_TRUE(w->dead());
}

TEST(FaultInjectorTest, CrashPointModesParseFromEnvAndRoundTrip) {
  const struct {
    const char* spec;
    FaultInjector::Mode mode;
  } kCases[] = {
      {"transient:4:7", FaultInjector::Mode::kTransientWrite},
      {"sync:3", FaultInjector::Mode::kFailSync},
      {"rotate:2", FaultInjector::Mode::kFailRotate},
      {"ckpt:5", FaultInjector::Mode::kFailCheckpoint},
      {"rename:1", FaultInjector::Mode::kTornRename},
  };
  for (const auto& c : kCases) {
    setenv("BIH_FAULT", c.spec, 1);
    FaultInjector fi = FaultInjector::FromEnv();
    EXPECT_EQ(c.mode, fi.mode()) << c.spec;
    EXPECT_EQ(c.spec, fi.ToString()) << c.spec;
  }
  unsetenv("BIH_FAULT");
}

TEST(EngineWalTest, TransientEnvBeyondBackoffSurfacesSingleError) {
  const std::string path = TmpPath("exhaust_env.wal");
  // What an operator would set to model a write outage: record 3 (the
  // second insert) fails on 9 consecutive attempts.
  setenv("BIH_FAULT", "transient:3:9", 1);
  FaultInjector fi = FaultInjector::FromEnv();
  unsetenv("BIH_FAULT");
  auto engine = MakeEngine("D");
  ASSERT_TRUE(engine->EnableWal(path, &fi).ok());
  ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
  ASSERT_TRUE(engine->Insert("ITEM", ItemRow(1, 1.0, "a", 0, 9)).ok());

  Status st = engine->Insert("ITEM", ItemRow(2, 2.0, "b", 0, 9));
  EXPECT_EQ(Status::Code::kIoError, st.code());
  EXPECT_NE(std::string::npos, st.message().find("injected write failure"));

  // Dead exactly once: the next write repeats the terse rejection rather
  // than a second "actionable" variant.
  Status next = engine->Insert("ITEM", ItemRow(3, 3.0, "c", 0, 9));
  EXPECT_EQ(Status::Code::kIoError, next.code());
  EXPECT_NE(std::string::npos, next.message().find("is dead"));
  engine.reset();

  // The durable prefix (everything before the outage) recovers cleanly.
  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine("D", path, &recovered, &report).ok());
  EXPECT_EQ(1u, recovered->GetTableStats("ITEM").current_rows);
}

}  // namespace
}  // namespace bih
