# Empty compiler generated dependencies file for bench_fig12_key_scaling.
# This may be replaced when dependencies are built.
