file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_tpch_sys.dir/bench_fig7b_tpch_sys.cc.o"
  "CMakeFiles/bench_fig7b_tpch_sys.dir/bench_fig7b_tpch_sys.cc.o.d"
  "bench_fig7b_tpch_sys"
  "bench_fig7b_tpch_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_tpch_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
