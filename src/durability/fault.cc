#include "durability/fault.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bih {

FaultInjector FaultInjector::FailNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kFailWrite;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::TransientNth(uint64_t n) {
  FaultInjector fi;
  fi.mode_ = Mode::kTransientWrite;
  fi.trigger_write_ = n;
  return fi;
}

FaultInjector FaultInjector::TornNth(uint64_t n, size_t keep_bytes) {
  FaultInjector fi;
  fi.mode_ = Mode::kTornWrite;
  fi.trigger_write_ = n;
  fi.keep_bytes_ = keep_bytes;
  return fi;
}

FaultInjector FaultInjector::FlipByteNth(uint64_t n, size_t offset,
                                         uint8_t mask) {
  FaultInjector fi;
  fi.mode_ = Mode::kFlipByte;
  fi.trigger_write_ = n;
  fi.flip_offset_ = offset;
  fi.flip_mask_ = mask == 0 ? 0x01 : mask;
  return fi;
}

FaultInjector FaultInjector::FromEnv(const char* var) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') return FaultInjector();
  char mode[12] = {0};
  unsigned long long n = 0, extra = 0;
  if (std::sscanf(v, "%11[a-z]:%llu:%llu", mode, &n, &extra) >= 2 && n > 0) {
    if (std::strcmp(mode, "fail") == 0) return FailNth(n);
    if (std::strcmp(mode, "transient") == 0) return TransientNth(n);
    if (std::strcmp(mode, "torn") == 0) {
      return TornNth(n, static_cast<size_t>(extra));
    }
    if (std::strcmp(mode, "flip") == 0) {
      return FlipByteNth(n, static_cast<size_t>(extra));
    }
  }
  return FaultInjector();
}

FaultInjector FaultInjector::FromSeed(uint64_t seed, uint64_t max_write) {
  // splitmix64 steps; any fixed mixing works, it only has to be stable.
  auto next = [&seed]() {
    seed += 0x9e3779b97f4a7c15ULL;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  if (max_write == 0) max_write = 1;
  uint64_t trigger = 1 + next() % max_write;
  switch (next() % 3) {
    case 0:
      return FailNth(trigger);
    case 1:
      return TornNth(trigger, static_cast<size_t>(next() % 64));
    default:
      return FlipByteNth(trigger, static_cast<size_t>(next() % 256),
                         static_cast<uint8_t>(1u << (next() % 8)));
  }
}

FaultInjector::Action FaultInjector::OnWrite(uint64_t write_index,
                                             size_t frame_len) {
  Action a;
  if (crashed_) {
    a.fail = true;
    return a;
  }
  if (mode_ == Mode::kNone || write_index != trigger_write_) return a;
  if (mode_ == Mode::kTransientWrite && triggered_) {
    return a;  // the retry of the triggering record succeeds
  }
  triggered_ = true;
  switch (mode_) {
    case Mode::kFailWrite:
      crashed_ = true;
      a.fail = true;
      break;
    case Mode::kTransientWrite:
      a.fail = true;  // no crash: one clean EIO, nothing persisted
      break;
    case Mode::kTornWrite:
      crashed_ = true;
      a.torn = true;
      a.keep_bytes = keep_bytes_ < frame_len ? keep_bytes_ : frame_len;
      break;
    case Mode::kFlipByte:
      a.flip = true;
      a.flip_offset = frame_len == 0 ? 0 : flip_offset_ % frame_len;
      a.flip_mask = flip_mask_;
      break;
    case Mode::kNone:
      break;
  }
  return a;
}

std::string FaultInjector::ToString() const {
  switch (mode_) {
    case Mode::kNone:
      return "none";
    case Mode::kFailWrite:
      return "fail:" + std::to_string(trigger_write_);
    case Mode::kTransientWrite:
      return "transient:" + std::to_string(trigger_write_);
    case Mode::kTornWrite:
      return "torn:" + std::to_string(trigger_write_) + ":" +
             std::to_string(keep_bytes_);
    case Mode::kFlipByte:
      return "flip:" + std::to_string(trigger_write_) + ":" +
             std::to_string(flip_offset_);
  }
  return "?";
}

}  // namespace bih
