file(REMOVE_RECURSE
  "CMakeFiles/bih_engine.dir/consistency.cc.o"
  "CMakeFiles/bih_engine.dir/consistency.cc.o.d"
  "CMakeFiles/bih_engine.dir/engine_base.cc.o"
  "CMakeFiles/bih_engine.dir/engine_base.cc.o.d"
  "CMakeFiles/bih_engine.dir/index_set.cc.o"
  "CMakeFiles/bih_engine.dir/index_set.cc.o.d"
  "CMakeFiles/bih_engine.dir/scan_util.cc.o"
  "CMakeFiles/bih_engine.dir/scan_util.cc.o.d"
  "CMakeFiles/bih_engine.dir/system_a.cc.o"
  "CMakeFiles/bih_engine.dir/system_a.cc.o.d"
  "CMakeFiles/bih_engine.dir/system_b.cc.o"
  "CMakeFiles/bih_engine.dir/system_b.cc.o.d"
  "CMakeFiles/bih_engine.dir/system_c.cc.o"
  "CMakeFiles/bih_engine.dir/system_c.cc.o.d"
  "CMakeFiles/bih_engine.dir/system_d.cc.o"
  "CMakeFiles/bih_engine.dir/system_d.cc.o.d"
  "libbih_engine.a"
  "libbih_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
