#ifndef TPCBIH_TOOLS_ANALYSIS_SOURCE_H_
#define TPCBIH_TOOLS_ANALYSIS_SOURCE_H_

// Shared source-handling layer for the repo's static-analysis tools
// (tools/bih_lint and tools/bih_analyze): file collection, comment/string
// stripping, the one suppression syntax both tools honour, and the tiny
// token helpers the line-oriented lint rules are written against.
//
// Suppressions (always with a reason in the surrounding code):
//   // bih-lint: allow(<rule>)       this line or the next line
//   // bih-lint: allow-file(<rule>)  whole file, within the first 40 lines
//
// The same syntax covers every rule of both tools, so a reader never has
// to know which binary enforces the rule being waived.

#include <filesystem>
#include <string>
#include <vector>

namespace bih {
namespace analysis {

// One reported violation. `rule` is the suppression key ("naked-mutex",
// "lock-order", ...); output format is "path:line: [rule] message".
struct Finding {
  std::string path;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// A loaded source file: the raw lines (where suppression comments live)
// and a "code" view with comments and string/char literal *contents*
// blanked to spaces, so rule matchers never trip on prose or test data.
// The quote characters themselves survive in the code view.
struct FileText {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

bool HasSuffix(const std::string& s, const char* suf);
bool IsSourceFile(const std::filesystem::path& p);
bool IsHeader(const std::string& path);

// Blanks comments and string/char literal contents, keeping line structure.
std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& raw);

// --- suppression handling --------------------------------------------------

bool LineAllows(const std::string& raw_line, const std::string& rule);
bool FileAllows(const FileText& f, const std::string& rule);
// True when a finding at 0-based line `idx` is suppressed on its own line,
// on the previous line, or file-wide.
bool Suppressed(const FileText& f, size_t idx, const std::string& rule);

// --- token helpers (no <regex>: slow, and these tools run in CI) -----------

bool IsIdentChar(char c);

// Finds `token` in `line` at identifier boundaries. Returns npos if absent.
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0);

// --- file collection -------------------------------------------------------

// Directories the recursive walk never descends into: build trees
// (build, build-asan, ...), lint/analyzer fixtures (deliberately dirty),
// and dotted directories.
bool SkipDir(const std::filesystem::path& p);

// Collects source files under `root` (a file or a directory) into `files`.
void Collect(const std::filesystem::path& root,
             std::vector<std::filesystem::path>* files);

// Loads one file into the raw + code views.
FileText LoadFile(const std::filesystem::path& p);

// Resolves the tool's command line into a sorted, deduplicated load list:
// explicit paths if any were given, otherwise `default_subdirs` under
// `root`.
std::vector<FileText> LoadTree(const std::string& root,
                               const std::vector<std::string>& explicit_paths,
                               const std::vector<std::string>& default_subdirs);

// Sorts findings by (path, line) and prints them in the shared
// "path:line: [rule] message" format, then the one-line summary. Returns
// the process exit code: 0 clean, 1 when anything fired.
int ReportFindings(std::vector<Finding>* findings, size_t files_scanned,
                   const char* tool_name);

}  // namespace analysis
}  // namespace bih

#endif  // TPCBIH_TOOLS_ANALYSIS_SOURCE_H_
