#include "bih/history.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace bih {

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kNewOrder:
      return "New Order";
    case Scenario::kCancelOrder:
      return "Cancel Order";
    case Scenario::kDeliverOrder:
      return "Deliver Order";
    case Scenario::kReceivePayment:
      return "Receive Payment";
    case Scenario::kUpdateStock:
      return "Update Stock";
    case Scenario::kDelayAvailability:
      return "Delay Availability";
    case Scenario::kChangePriceBySupplier:
      return "Change Price by Supplier";
    case Scenario::kUpdateSupplier:
      return "Update Supplier";
    case Scenario::kManipulateOrderData:
      return "Manipulate Order Data";
    case Scenario::kCount:
      break;
  }
  return "?";
}

std::vector<double> ScenarioProbabilities() {
  // Table 1. The OCR of the paper garbles some probabilities; these values
  // are reconstructed to sum to 1.0 and to reproduce the Table-2 operation
  // mix (LINEITEM insert-dominated, CUSTOMER update-dominated, PART/
  // PARTSUPP update-only, SUPPLIER non-temporal only). See DESIGN.md.
  return {
      0.30,  // New Order (with new customer in half of the cases)
      0.05,  // Cancel Order
      0.25,  // Deliver Order
      0.20,  // Receive Payment
      0.05,  // Update Stock
      0.05,  // Delay Availability
      0.05,  // Change Price by Supplier
      0.04,  // Update Supplier
      0.01,  // Manipulate Order Data
  };
}

namespace {

// Archive format: one record per line.
//  T <scenario>            -- transaction start
//  O <kind> <table> <period_index> <begin> <end>  -- operation header
//  R <n> <v>...            -- row payload (insert)
//  K <n> <v>...            -- key values
//  S <n> (<col> <v>)...    -- assignments
// Values are encoded as one of: "N" (null), "I<int>", "D<double>",
// "S<len>:<bytes>".

void EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += "N";
  } else if (v.is_int()) {
    *out += "I" + std::to_string(v.AsInt());
  } else if (v.is_double()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "D%.17g", v.AsDouble());
    *out += buf;
  } else {
    const std::string& s = v.AsString();
    *out += "S" + std::to_string(s.size()) + ":" + s;
  }
  *out += " ";
}

// Parses one encoded value starting at *pos; advances *pos past it.
bool DecodeValue(const std::string& line, size_t* pos, Value* out) {
  if (*pos >= line.size()) return false;
  char tag = line[*pos];
  ++*pos;
  if (tag == 'N') {
    *out = Value::Null();
    ++*pos;  // trailing space
    return true;
  }
  size_t sp;
  if (tag == 'I' || tag == 'D') {
    sp = line.find(' ', *pos);
    if (sp == std::string::npos) sp = line.size();
    std::string tok = line.substr(*pos, sp - *pos);
    if (tag == 'I') {
      *out = Value(static_cast<int64_t>(std::strtoll(tok.c_str(), nullptr, 10)));
    } else {
      *out = Value(std::strtod(tok.c_str(), nullptr));
    }
    *pos = sp + 1;
    return true;
  }
  if (tag == 'S') {
    size_t colon = line.find(':', *pos);
    if (colon == std::string::npos) return false;
    size_t len = static_cast<size_t>(
        std::strtoull(line.substr(*pos, colon - *pos).c_str(), nullptr, 10));
    if (colon + 1 + len > line.size()) return false;
    *out = Value(line.substr(colon + 1, len));
    *pos = colon + 1 + len + 1;
    return true;
  }
  return false;
}

}  // namespace

Status SaveHistory(const History& history, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "TPCBIH-ARCHIVE v1 %zu\n", history.size());
  std::string buf;
  for (const HistoryTransaction& txn : history) {
    std::fprintf(f, "T %d\n", static_cast<int>(txn.scenario));
    for (const Operation& op : txn.ops) {
      std::fprintf(f, "O %d %s %d %" PRId64 " %" PRId64 "\n",
                   static_cast<int>(op.kind), op.table.c_str(),
                   op.period_index, op.period.begin, op.period.end);
      if (op.kind == Operation::Kind::kInsert) {
        buf.clear();
        for (const Value& v : op.row) EncodeValue(v, &buf);
        std::fprintf(f, "R %zu %s\n", op.row.size(), buf.c_str());
      } else {
        buf.clear();
        for (const Value& v : op.key) EncodeValue(v, &buf);
        std::fprintf(f, "K %zu %s\n", op.key.size(), buf.c_str());
        buf.clear();
        for (const ColumnAssignment& a : op.set) {
          buf += std::to_string(a.column) + " ";
          EncodeValue(a.value, &buf);
        }
        std::fprintf(f, "S %zu %s\n", op.set.size(), buf.c_str());
      }
    }
  }
  bool write_error = std::ferror(f) != 0;
  write_error |= std::fclose(f) != 0;
  if (write_error) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Status LoadHistory(const std::string& path, History* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  out->clear();
  char linebuf[1 << 16];
  size_t lineno = 0;
  // Every malformed record is reported with its 1-based line number so a
  // corrupt multi-megabyte archive is debuggable.
  auto fail = [&](const std::string& what) {
    std::fclose(f);
    return Status::InvalidArgument(path + " line " + std::to_string(lineno) +
                                   ": " + what);
  };
  if (!std::fgets(linebuf, sizeof(linebuf), f)) {
    ++lineno;
    return fail("empty archive");
  }
  ++lineno;
  size_t declared = 0;
  if (std::sscanf(linebuf, "TPCBIH-ARCHIVE v1 %zu", &declared) != 1) {
    return fail("bad archive header");
  }
  Operation* cur_op = nullptr;
  while (std::fgets(linebuf, sizeof(linebuf), f)) {
    ++lineno;
    std::string line(linebuf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == 'T') {
      int scen = 0;
      if (std::sscanf(line.c_str(), "T %d", &scen) != 1 || scen < 0 ||
          scen >= static_cast<int>(Scenario::kCount)) {
        return fail("bad transaction record: " + line);
      }
      out->push_back(HistoryTransaction{static_cast<Scenario>(scen), {}});
      cur_op = nullptr;
    } else if (line[0] == 'O') {
      if (out->empty()) {
        return fail("operation before transaction");
      }
      int kind = 0, period_index = 0;
      char table[64];
      long long b = 0, e = 0;
      if (std::sscanf(line.c_str(), "O %d %63s %d %lld %lld", &kind, table,
                      &period_index, &b, &e) != 5) {
        return fail("bad operation record: " + line);
      }
      if (kind < static_cast<int>(Operation::Kind::kInsert) ||
          kind > static_cast<int>(Operation::Kind::kDeleteSequenced)) {
        return fail("bad operation kind " + std::to_string(kind));
      }
      Operation op;
      op.kind = static_cast<Operation::Kind>(kind);
      op.table = table;
      op.period_index = period_index;
      op.period = Period(b, e);
      out->back().ops.push_back(std::move(op));
      cur_op = &out->back().ops.back();
    } else if (line[0] == 'R' || line[0] == 'K' || line[0] == 'S') {
      if (cur_op == nullptr) {
        return fail("payload before operation");
      }
      size_t n = 0;
      size_t pos = line.find(' ', 2);
      if (pos == std::string::npos) {
        return fail("bad payload record");
      }
      n = static_cast<size_t>(
          std::strtoull(line.substr(2, pos - 2).c_str(), nullptr, 10));
      // Each encoded value occupies at least two characters, so a count
      // past half the line length is corruption, not data (and would
      // otherwise drive a huge reserve()).
      if (n > line.size() / 2 + 1) {
        return fail("implausible payload count " + std::to_string(n));
      }
      ++pos;
      if (line[0] == 'R' || line[0] == 'K') {
        std::vector<Value>& dst =
            line[0] == 'R' ? cur_op->row : cur_op->key;
        dst.clear();
        dst.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          Value v;
          if (!DecodeValue(line, &pos, &v)) {
            return fail("bad value " + std::to_string(i + 1) + " of " +
                        std::to_string(n));
          }
          dst.push_back(std::move(v));
        }
      } else {
        cur_op->set.clear();
        cur_op->set.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          size_t sp = line.find(' ', pos);
          if (sp == std::string::npos) {
            return fail("bad assignment " + std::to_string(i + 1) + " of " +
                        std::to_string(n));
          }
          int col = std::atoi(line.substr(pos, sp - pos).c_str());
          pos = sp + 1;
          Value v;
          if (!DecodeValue(line, &pos, &v)) {
            return fail("bad assignment value " + std::to_string(i + 1));
          }
          cur_op->set.push_back(ColumnAssignment{col, std::move(v)});
        }
      }
    } else {
      return fail("unknown record type '" + line.substr(0, 1) + "'");
    }
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("read error in " + path + " near line " +
                           std::to_string(lineno));
  }
  if (out->size() != declared) {
    return Status::InvalidArgument(
        path + ": archive truncated (" + std::to_string(out->size()) + " of " +
        std::to_string(declared) + " transactions)");
  }
  return Status::OK();
}

}  // namespace bih
