#ifndef TPCBIH_DURABILITY_FAULT_H_
#define TPCBIH_DURABILITY_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace bih {

// Deterministic fault injection for the durability layer's physical
// operations: framed record writes, sync (fdatasync) points, segment
// rotations, checkpoint frame writes and the checkpoint's atomic rename.
//
// The injector is consulted once per *attempt* of each operation. A write
// can pass, fail outright (as if the disk returned EIO), fail a bounded
// number of attempts (a transient error the writer's retry loop should
// absorb), persist only a prefix of the frame (a torn write: the classic
// crash-mid-append), or have one byte flipped before it lands (silent media
// corruption). Sync/rotate/checkpoint/rename faults model a process killed
// at that exact durability step. After any crashing trigger the injector is
// "crashed": every later operation fails, modeling a process that never
// comes back between the fault and recovery. A transient trigger does not
// crash: a later attempt at the same record succeeds.
//
// All decisions are a pure function of the plan and the operation counters,
// so a given configuration reproduces the same byte stream every run; the
// CI crash sweep relies on this.
class FaultInjector {
 public:
  enum class Mode {
    kNone,
    kFailWrite,
    kTransientWrite,
    kTornWrite,
    kFlipByte,
    kFailSync,        // kill at the Nth fdatasync point
    kFailGroupFlush,  // kill the Nth group commit between staging and sync
    kFailRotate,      // kill mid segment rotation
    kFailCheckpoint,  // kill mid checkpoint write (torn .tmp file)
    kTornRename,      // kill just before the checkpoint's atomic rename
    // Network crash points (src/net/). Unlike the durability modes these
    // are *periodic* — every Nth send/accept misbehaves — and they never
    // latch crashed_: a dropped connection takes one client down, not the
    // whole server, so the injector must keep serving later operations.
    kNetTornFrame,     // send only a prefix of every Nth frame, then drop
    kNetDropResponse,  // drop the connection before every Nth send
    kNetSlowWrite,     // slow-loris: dribble every Nth frame byte-wise
    kNetFailAccept,    // fail every Nth accept
  };

  struct Action {
    bool fail = false;          // drop the operation, return kIoError
    bool torn = false;          // persist only keep_bytes, then crash
    size_t keep_bytes = 0;      // prefix length for a torn write
    bool flip = false;          // XOR one byte of the frame
    size_t flip_offset = 0;
    uint8_t flip_mask = 0x01;
    bool slow = false;          // dribble the frame out byte-wise
  };

  FaultInjector() = default;
  // The injector is a value type (factories return it, tests copy plans
  // around), but its trigger state is atomic — see the member comment — so
  // the copies are spelled out.
  FaultInjector(const FaultInjector& other) { CopyFrom(other); }
  FaultInjector& operator=(const FaultInjector& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  // Fail the nth frame write (1-based) and every one after it.
  static FaultInjector FailNth(uint64_t n);
  // Fail `attempts` consecutive attempts at the nth frame write; the next
  // attempt passes. With attempts >= the writer's retry budget this models
  // an outage the retry loop cannot ride out.
  static FaultInjector TransientNth(uint64_t n, uint64_t attempts = 1);
  // Persist only `keep_bytes` of the nth frame, then crash. keep_bytes
  // beyond the frame length persists the whole frame (the fault degrades
  // to a clean crash after the record).
  static FaultInjector TornNth(uint64_t n, size_t keep_bytes);
  // Flip `mask` into byte `offset` of the nth frame (offset is clamped to
  // the frame). The write itself succeeds; corruption is only discovered
  // by CRC at recovery time.
  static FaultInjector FlipByteNth(uint64_t n, size_t offset,
                                   uint8_t mask = 0x01);
  // Kill the process model at the nth sync point (fdatasync on commit).
  static FaultInjector FailSyncNth(uint64_t n);
  // Kill the process model inside the nth group commit: the batch's frames
  // are staged (flushed to the OS) but the device sync never happens, so
  // every transaction in the group stays unacknowledged.
  static FaultInjector FailGroupFlushNth(uint64_t n);
  // Kill the process model during the nth WAL segment rotation.
  static FaultInjector FailRotateNth(uint64_t n);
  // Kill the process model at the nth checkpoint frame write, leaving a
  // torn .tmp file behind.
  static FaultInjector FailCheckpointNth(uint64_t n);
  // Kill the process model just before the nth checkpoint rename: the
  // finished .tmp file is never published.
  static FaultInjector TornRenameNth(uint64_t n);
  // Tear every nth response frame: only half the frame reaches the wire,
  // then the connection drops.
  static FaultInjector NetTornNth(uint64_t n);
  // Drop the connection just before every nth response frame is sent.
  static FaultInjector NetDropNth(uint64_t n);
  // Dribble every nth response frame out in tiny chunks (slow-loris).
  static FaultInjector NetSlowNth(uint64_t n);
  // Fail every nth accept() as if the kernel returned ECONNABORTED.
  static FaultInjector NetAcceptFailNth(uint64_t n);
  // Parses BIH_FAULT ("fail:N" | "transient:N" | "transient:N:K" |
  // "torn:N:KEEP" | "flip:N:OFF" | "sync:N" | "group:N" | "rotate:N" |
  // "ckpt:N" | "rename:N" | "net:torn:N" | "net:drop:N" | "net:slow:N" |
  // "net:accept:N") from the environment; returns a no-op injector when
  // unset or malformed.
  static FaultInjector FromEnv(const char* var = "BIH_FAULT");
  // Derives a pseudo-random plan from a seed: mode, trigger write in
  // [1, max_write] and torn/flip parameters are all functions of the seed.
  static FaultInjector FromSeed(uint64_t seed, uint64_t max_write);

  // Called by the WAL writer before appending frame number `write_index`
  // (1-based) of `frame_len` bytes.
  Action OnWrite(uint64_t write_index, size_t frame_len);
  // Called before sync point number `sync_index` (1-based).
  Action OnSync(uint64_t sync_index);
  // Called by the WAL writer at group commit number `group_index` (1-based),
  // after the group's frames are flushed to the OS but before the batched
  // device sync.
  Action OnGroupFlush(uint64_t group_index);
  // Called before segment rotation number `rotate_index` (1-based).
  Action OnRotate(uint64_t rotate_index);
  // Called by the checkpointer before checkpoint frame `frame_index`
  // (1-based, counted across checkpoints).
  Action OnCheckpointWrite(uint64_t frame_index);
  // Called just before atomic rename number `rename_index` (1-based).
  Action OnRename(uint64_t rename_index);
  // Called by the network server before sending response frame number
  // `send_index` (1-based, counted server-wide) of `frame_len` bytes.
  // Periodic: every index divisible by the plan's N misbehaves.
  Action OnNetSend(uint64_t send_index, size_t frame_len);
  // Called after every successful accept(); a `fail` action makes the
  // server close the connection immediately, as if accept had failed.
  Action OnAccept(uint64_t accept_index);

  // True for the periodic network modes (they never latch crashed_).
  bool is_net_mode() const {
    return mode_ == Mode::kNetTornFrame || mode_ == Mode::kNetDropResponse ||
           mode_ == Mode::kNetSlowWrite || mode_ == Mode::kNetFailAccept;
  }

  Mode mode() const { return mode_; }
  uint64_t trigger_write() const { return trigger_write_; }
  bool triggered() const { return triggered_.load(std::memory_order_relaxed); }
  std::string ToString() const;

 private:
  // Shared handling of the crash-point hooks (sync/group/rotate/ckpt/
  // rename): fail everything once crashed, crash when `m` triggers at
  // `index`.
  Action OnCrashPoint(Mode m, uint64_t index);
  void CopyFrom(const FaultInjector& other);

  Mode mode_ = Mode::kNone;
  uint64_t trigger_write_ = 0;  // 1-based operation index of the fault
  uint64_t transient_attempts_ = 1;
  size_t keep_bytes_ = 0;
  size_t flip_offset_ = 0;
  uint8_t flip_mask_ = 0x01;
  // The trigger state is atomic because group commit moved the WAL's sync
  // points off the session's exclusive writer lock: a group-sync leader
  // (under the WAL mutex) and the checkpointer (under the session lock) can
  // now consult one plan concurrently. The plan itself (mode, trigger) is
  // immutable after construction; only these counters mutate, and relaxed
  // ordering is enough — determinism is only promised for the sequential
  // crash sweeps.
  std::atomic<uint64_t> transient_left_{0};
  std::atomic<bool> triggered_{false};
  std::atomic<bool> crashed_{false};
};

}  // namespace bih

#endif  // TPCBIH_DURABILITY_FAULT_H_
