#ifndef TPCBIH_STORAGE_BTREE_INDEX_H_
#define TPCBIH_STORAGE_BTREE_INDEX_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/value.h"
#include "storage/row_table.h"

namespace bih {

// Composite index key: values of the indexed columns in index order.
using IndexKey = std::vector<Value>;

// Lexicographic comparison; a strict prefix orders before its extensions.
int CompareKeys(const IndexKey& a, const IndexKey& b);

// In-memory B+-tree multimap from composite keys to row ids.
//
// Duplicates are allowed; entries are (key, row id) pairs ordered by key
// then row id. Deletion removes entries without merging underfull nodes —
// the same lazy strategy PostgreSQL's nbtree uses — because the benchmark
// workload is insert/append heavy and never bulk-deletes from an index.
class BTreeIndex {
 public:
  BTreeIndex();
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(const IndexKey& key, RowId rid);

  // Removes one (key, rid) entry. Returns false if it was not present.
  bool Erase(const IndexKey& key, RowId rid);

  // Visits entries with lo <= key < hi in key order. fn returning false
  // stops the scan (Top-N early exit). Either bound may be empty ({}): an
  // empty lo means "from the beginning", an empty hi means "to the end".
  void ScanRange(const IndexKey& lo, const IndexKey& hi,
                 const std::function<bool(const IndexKey&, RowId)>& fn) const;

  // Visits all entries whose key starts with `prefix`.
  void ScanPrefix(const IndexKey& prefix,
                  const std::function<bool(const IndexKey&, RowId)>& fn) const;

  // Visits entries with key exactly equal to `key`.
  void Lookup(const IndexKey& key,
              const std::function<bool(RowId)>& fn) const;

  size_t size() const { return size_; }
  int height() const;

  // Smallest/largest key in the index; false when empty. Used by the access
  // path chooser's selectivity estimate.
  bool FirstKey(IndexKey* out) const;
  bool LastKey(IndexKey* out) const;

  // Internal invariant check used by tests: key order within and across
  // nodes, child separation, and leaf chain consistency.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct LeafEntry;

  Node* FindLeaf(const IndexKey& key, RowId rid) const;
  void InsertIntoLeaf(Node* leaf, LeafEntry entry);
  void SplitLeaf(Node* leaf);
  void SplitInternal(Node* node);
  void InsertIntoParent(Node* left, IndexKey sep, Node* right);

  Node* root_;
  Node* first_leaf_;
  size_t size_ = 0;
};

}  // namespace bih

#endif  // TPCBIH_STORAGE_BTREE_INDEX_H_
