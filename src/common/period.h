#ifndef TPCBIH_COMMON_PERIOD_H_
#define TPCBIH_COMMON_PERIOD_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

namespace bih {

// Half-open time interval [begin, end) over an abstract int64 time axis.
// Application-time periods use Date::days() values; system-time periods use
// Timestamp::micros() values (or logical commit numbers). `kForever` marks a
// period that is still open ("until changed"), matching the NULL/9999-12-31
// sentinels real systems use for the current version.
struct Period {
  static constexpr int64_t kForever = std::numeric_limits<int64_t>::max();
  static constexpr int64_t kBeginningOfTime = std::numeric_limits<int64_t>::min();

  int64_t begin = 0;
  int64_t end = kForever;

  Period() = default;
  Period(int64_t b, int64_t e) : begin(b), end(e) {}

  static Period From(int64_t b) { return Period(b, kForever); }
  static Period All() { return Period(kBeginningOfTime, kForever); }

  bool Valid() const { return begin < end; }
  bool Empty() const { return begin >= end; }
  bool IsOpenEnded() const { return end == kForever; }

  // Point containment: t in [begin, end).
  bool Contains(int64_t t) const { return begin <= t && t < end; }
  // Interval containment.
  bool Contains(const Period& other) const {
    return begin <= other.begin && other.end <= end;
  }
  bool Overlaps(const Period& other) const {
    return begin < other.end && other.begin < end;
  }
  // Allen's "meets": this ends exactly where other begins.
  bool Meets(const Period& other) const { return end == other.begin; }

  Period Intersect(const Period& other) const {
    return Period(std::max(begin, other.begin), std::min(end, other.end));
  }

  int64_t Duration() const { return end - begin; }

  friend bool operator==(const Period& a, const Period& b) {
    return a.begin == b.begin && a.end == b.end;
  }

  std::string ToString() const;
};

}  // namespace bih

#endif  // TPCBIH_COMMON_PERIOD_H_
