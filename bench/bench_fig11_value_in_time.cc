// Figure 11: value-in-time (K6) — tracing customers selected by a balance
// predicate rather than by key — with and without a Value index, at two
// selectivities.
//
// Expected shape (Section 5.5.3): without an index everything is a table
// scan; the value index pays off only for the selective filter, the
// non-selective one falls back to scans.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

std::vector<std::unique_ptr<TemporalEngine>>* g_engines =
    new std::vector<std::unique_ptr<TemporalEngine>>();

void RegisterFor(const std::string& label, TemporalEngine* e,
                 const WorkloadContext& ctx) {
  TemporalScanSpec app_curr;
  app_curr.app_time = TemporalSelector::All();
  TemporalScanSpec app_past;
  app_past.app_time = TemporalSelector::All();
  app_past.system_time = TemporalSelector::AsOf(ctx.sys_mid.micros());
  TemporalScanSpec sys_axis;
  sys_axis.system_time = TemporalSelector::All();
  auto add = [&](const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(("Fig11/" + name + "/" + label).c_str(),
                                 [e, fn](benchmark::State& state) {
                                   for (auto _ : state) {
                                     benchmark::DoNotOptimize(fn(*e));
                                   }
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  };
  // Highly selective: balances close to the top of the range.
  add("K6_selective_app_curr_sys", [app_curr](TemporalEngine& eng) {
    return K6(eng, 9900.0, Value(), app_curr);
  });
  add("K6_selective_app_past_sys", [app_past](TemporalEngine& eng) {
    return K6(eng, 9900.0, Value(), app_past);
  });
  add("K6_selective_sys_curr_app", [sys_axis](TemporalEngine& eng) {
    return K6(eng, 9900.0, Value(), sys_axis);
  });
  // Non-selective: half of all balances qualify.
  add("K6_nonselective_sys", [sys_axis](TemporalEngine& eng) {
    return K6(eng, 0.0, Value(), sys_axis);
  });
}

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  for (const std::string& letter : AllEngineLetters()) {
    g_engines->push_back(w.Fresh(letter));
    RegisterFor("System" + letter + "_no_index", g_engines->back().get(), ctx);
    g_engines->push_back(w.Fresh(letter));
    Status st = ApplyIndexSetting(*g_engines->back(), IndexSetting::kValue);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    RegisterFor("System" + letter + "_value_index", g_engines->back().get(),
                ctx);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
