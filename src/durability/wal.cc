#include "durability/wal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace bih {

namespace {

// Backoff before retry `attempt` (1-based attempt that just failed):
// 1ms, 2ms, 4ms, ... Bounded by kMaxWriteAttempts so the worst case adds
// single-digit milliseconds to a commit.
void BackoffAfterAttempt(int attempt) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1ll << (attempt - 1)));
}

// --- primitive encoders --------------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutI64(int64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void PutValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    PutU8(0, out);
  } else if (v.is_int()) {
    PutU8(1, out);
    PutI64(v.AsInt(), out);
  } else if (v.is_double()) {
    PutU8(2, out);
    double d = v.AsDouble();
    char buf[8];
    std::memcpy(buf, &d, 8);
    out->append(buf, 8);
  } else {
    PutU8(3, out);
    PutString(v.AsString(), out);
  }
}

void PutRow(const Row& row, std::string* out) {
  PutU32(static_cast<uint32_t>(row.size()), out);
  for (const Value& v : row) PutValue(v, out);
}

// --- primitive decoders (bounds-checked cursor) --------------------------

struct Cursor {
  const uint8_t* p;
  size_t left;

  bool Get(void* dst, size_t n) {
    if (left < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  bool GetU8(uint8_t* v) { return Get(v, 1); }
  bool GetU32(uint32_t* v) { return Get(v, 4); }
  bool GetI64(int64_t* v) { return Get(v, 8); }
  bool GetString(std::string* s) {
    uint32_t n;
    if (!GetU32(&n) || left < n) return false;
    s->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }
  bool GetValue(Value* v) {
    uint8_t tag;
    if (!GetU8(&tag)) return false;
    switch (tag) {
      case 0:
        *v = Value::Null();
        return true;
      case 1: {
        int64_t i;
        if (!GetI64(&i)) return false;
        *v = Value(i);
        return true;
      }
      case 2: {
        double d;
        if (!Get(&d, 8)) return false;
        *v = Value(d);
        return true;
      }
      case 3: {
        std::string s;
        if (!GetString(&s)) return false;
        *v = Value(std::move(s));
        return true;
      }
      default:
        return false;
    }
  }
  bool GetRow(Row* row) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    // Guard against absurd counts from corrupt frames before reserving.
    if (n > left) return false;
    row->clear();
    row->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Value v;
      if (!GetValue(&v)) return false;
      row->push_back(std::move(v));
    }
    return true;
  }
};

void PutTableDef(const TableDef& def, std::string* out) {
  PutString(def.name, out);
  PutU32(static_cast<uint32_t>(def.schema.num_columns()), out);
  for (const Column& c : def.schema.columns()) {
    PutString(c.name, out);
    PutU8(static_cast<uint8_t>(c.type), out);
  }
  PutU32(static_cast<uint32_t>(def.primary_key.size()), out);
  for (int k : def.primary_key) PutU32(static_cast<uint32_t>(k), out);
  PutU32(static_cast<uint32_t>(def.app_periods.size()), out);
  for (const AppPeriodDef& ap : def.app_periods) {
    PutString(ap.name, out);
    PutU32(static_cast<uint32_t>(ap.begin_col), out);
    PutU32(static_cast<uint32_t>(ap.end_col), out);
  }
  PutU8(def.system_versioned ? 1 : 0, out);
}

bool GetTableDef(Cursor* c, TableDef* def) {
  if (!c->GetString(&def->name)) return false;
  uint32_t ncols;
  if (!c->GetU32(&ncols) || ncols > c->left) return false;
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column col;
    uint8_t ty;
    if (!c->GetString(&col.name) || !c->GetU8(&ty)) return false;
    col.type = static_cast<ColumnType>(ty);
    cols.push_back(std::move(col));
  }
  def->schema = Schema(std::move(cols));
  uint32_t npk;
  if (!c->GetU32(&npk) || npk > c->left) return false;
  def->primary_key.clear();
  for (uint32_t i = 0; i < npk; ++i) {
    uint32_t k;
    if (!c->GetU32(&k)) return false;
    def->primary_key.push_back(static_cast<int>(k));
  }
  uint32_t nap;
  if (!c->GetU32(&nap) || nap > c->left) return false;
  def->app_periods.clear();
  for (uint32_t i = 0; i < nap; ++i) {
    AppPeriodDef ap;
    uint32_t b, e;
    if (!c->GetString(&ap.name) || !c->GetU32(&b) || !c->GetU32(&e)) {
      return false;
    }
    ap.begin_col = static_cast<int>(b);
    ap.end_col = static_cast<int>(e);
    def->app_periods.push_back(std::move(ap));
  }
  uint8_t sv;
  if (!c->GetU8(&sv)) return false;
  def->system_versioned = sv != 0;
  return true;
}

const char kWalMagic[8] = {'B', 'I', 'H', 'W', 'A', 'L', '0', '1'};

const uint32_t* CrcTable() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

}  // namespace

uint32_t WalCrc32(const uint8_t* data, size_t n) {
  const uint32_t* table = CrcTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string WalFileMagic() {
  return std::string(kWalMagic, sizeof(kWalMagic));
}

// --- durable-sync primitives ----------------------------------------------

bool DurableSyncEnabled() {
  return std::getenv("BIH_NO_FSYNC") == nullptr;
}

Status SyncFileNow(std::FILE* f, const std::string& path) {
  if (!DurableSyncEnabled()) return Status::OK();
#if defined(__unix__) || defined(__APPLE__)
  const int fd = fileno(f);
  if (fd < 0) {
    return Status::IoError("no descriptor to sync for " + path);
  }
  int rc;
#if defined(__APPLE__)
  while ((rc = fsync(fd)) != 0 && errno == EINTR) {
  }
#else
  while ((rc = fdatasync(fd)) != 0 && errno == EINTR) {
  }
#endif
  if (rc != 0) {
    return Status::IoError("fdatasync failed for " + path + ": " +
                           std::strerror(errno));
  }
#else
  (void)f;
  (void)path;
#endif
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  if (!DurableSyncEnabled()) return Status::OK();
#if defined(__unix__) || defined(__APPLE__)
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + dir +
                           " for sync: " + std::strerror(errno));
  }
  int rc;
  while ((rc = fsync(fd)) != 0 && errno == EINTR) {
  }
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("directory fsync failed for " + dir + ": " +
                           std::strerror(saved_errno));
  }
#else
  (void)path;
#endif
  return Status::OK();
}

// --- segment naming -------------------------------------------------------

std::string WalSegmentPath(const std::string& base, uint64_t index) {
  if (index <= 1) return base;
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(index));
  return base + suffix;
}

std::vector<WalSegment> ListWalSegments(const std::string& base) {
  std::vector<WalSegment> segments;
  std::error_code ec;
  if (std::filesystem::exists(base, ec)) {
    segments.push_back(WalSegment{1, base});
  }
  const std::filesystem::path base_path(base);
  const std::string stem = base_path.filename().string() + ".";
  std::filesystem::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= stem.size() || name.compare(0, stem.size(), stem) != 0) {
      continue;
    }
    const std::string suffix = name.substr(stem.size());
    if (suffix.size() < 6 ||
        !std::all_of(suffix.begin(), suffix.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      continue;  // not a segment (e.g. base.ckpt, base.ckpt.tmp)
    }
    const uint64_t index = std::strtoull(suffix.c_str(), nullptr, 10);
    if (index >= 2) segments.push_back(WalSegment{index, entry.path().string()});
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegment& a, const WalSegment& b) {
              return a.index < b.index;
            });
  return segments;
}

Status RemoveWalSegmentsBefore(const std::string& base, uint64_t keep_from,
                               uint64_t* removed) {
  uint64_t count = 0;
  Status first_error = Status::OK();
  for (const WalSegment& seg : ListWalSegments(base)) {
    if (seg.index >= keep_from) continue;
    std::error_code ec;
    const bool did_remove = std::filesystem::remove(seg.path, ec);
    if (ec) {
      if (first_error.ok()) {
        first_error = Status::IoError("cannot remove wal segment " + seg.path +
                                      ": " + ec.message());
      }
    } else if (did_remove) {
      ++count;
    }
  }
  if (removed != nullptr) *removed = count;
  return first_error;
}

void EncodeWalRecord(const WalRecord& rec, std::string* out) {
  out->clear();
  PutU8(static_cast<uint8_t>(rec.kind), out);
  PutU8(rec.flags, out);
  PutI64(rec.ts, out);
  switch (rec.kind) {
    case WalRecord::Kind::kCreateTable:
      PutTableDef(rec.def, out);
      break;
    case WalRecord::Kind::kInsert:
      PutString(rec.table, out);
      PutRow(rec.row, out);
      break;
    case WalRecord::Kind::kBulkLoad:
      PutString(rec.table, out);
      PutU32(static_cast<uint32_t>(rec.rows.size()), out);
      for (const Row& r : rec.rows) PutRow(r, out);
      break;
    case WalRecord::Kind::kUpdateCurrent:
      PutString(rec.table, out);
      PutRow(rec.key, out);
      PutU32(static_cast<uint32_t>(rec.set.size()), out);
      for (const ColumnAssignment& a : rec.set) {
        PutU32(static_cast<uint32_t>(a.column), out);
        PutValue(a.value, out);
      }
      break;
    case WalRecord::Kind::kUpdateSequenced:
    case WalRecord::Kind::kUpdateOverwrite:
      PutString(rec.table, out);
      PutRow(rec.key, out);
      PutU32(static_cast<uint32_t>(rec.period_index), out);
      PutI64(rec.period.begin, out);
      PutI64(rec.period.end, out);
      PutU32(static_cast<uint32_t>(rec.set.size()), out);
      for (const ColumnAssignment& a : rec.set) {
        PutU32(static_cast<uint32_t>(a.column), out);
        PutValue(a.value, out);
      }
      break;
    case WalRecord::Kind::kDeleteCurrent:
      PutString(rec.table, out);
      PutRow(rec.key, out);
      break;
    case WalRecord::Kind::kDeleteSequenced:
      PutString(rec.table, out);
      PutRow(rec.key, out);
      PutU32(static_cast<uint32_t>(rec.period_index), out);
      PutI64(rec.period.begin, out);
      PutI64(rec.period.end, out);
      break;
    case WalRecord::Kind::kCommit:
      break;
    case WalRecord::Kind::kSnapshotRows:
      PutString(rec.table, out);
      PutU32(static_cast<uint32_t>(rec.rows.size()), out);
      for (const Row& r : rec.rows) PutRow(r, out);
      break;
    case WalRecord::Kind::kCheckpointFooter:
      PutI64(static_cast<int64_t>(rec.segments_covered), out);
      break;
  }
}

Status DecodeWalRecord(const uint8_t* data, size_t n, WalRecord* out) {
  Cursor c{data, n};
  uint8_t kind, flags;
  int64_t ts;
  if (!c.GetU8(&kind) || !c.GetU8(&flags) || !c.GetI64(&ts)) {
    return Status::IoError("wal record header truncated");
  }
  if (kind < static_cast<uint8_t>(WalRecord::Kind::kCreateTable) ||
      kind > static_cast<uint8_t>(WalRecord::Kind::kCheckpointFooter)) {
    return Status::IoError("wal record has unknown kind " +
                           std::to_string(kind));
  }
  out->kind = static_cast<WalRecord::Kind>(kind);
  out->flags = flags;
  out->ts = ts;
  bool ok = true;
  auto get_set = [&c](std::vector<ColumnAssignment>* set) {
    uint32_t nset;
    if (!c.GetU32(&nset) || nset > c.left) return false;
    set->clear();
    for (uint32_t i = 0; i < nset; ++i) {
      uint32_t col;
      Value v;
      if (!c.GetU32(&col) || !c.GetValue(&v)) return false;
      set->push_back(ColumnAssignment{static_cast<int>(col), std::move(v)});
    }
    return true;
  };
  switch (out->kind) {
    case WalRecord::Kind::kCreateTable:
      ok = GetTableDef(&c, &out->def);
      break;
    case WalRecord::Kind::kInsert:
      ok = c.GetString(&out->table) && c.GetRow(&out->row);
      break;
    case WalRecord::Kind::kBulkLoad: {
      uint32_t nrows;
      ok = c.GetString(&out->table) && c.GetU32(&nrows) && nrows <= c.left;
      if (ok) {
        out->rows.clear();
        out->rows.reserve(nrows);
        for (uint32_t i = 0; ok && i < nrows; ++i) {
          Row r;
          ok = c.GetRow(&r);
          out->rows.push_back(std::move(r));
        }
      }
      break;
    }
    case WalRecord::Kind::kUpdateCurrent:
      ok = c.GetString(&out->table) && c.GetRow(&out->key) &&
           get_set(&out->set);
      break;
    case WalRecord::Kind::kUpdateSequenced:
    case WalRecord::Kind::kUpdateOverwrite: {
      uint32_t pi = 0;
      ok = c.GetString(&out->table) && c.GetRow(&out->key) && c.GetU32(&pi) &&
           c.GetI64(&out->period.begin) && c.GetI64(&out->period.end) &&
           get_set(&out->set);
      out->period_index = static_cast<int>(pi);
      break;
    }
    case WalRecord::Kind::kDeleteCurrent:
      ok = c.GetString(&out->table) && c.GetRow(&out->key);
      break;
    case WalRecord::Kind::kDeleteSequenced: {
      uint32_t pi = 0;
      ok = c.GetString(&out->table) && c.GetRow(&out->key) && c.GetU32(&pi) &&
           c.GetI64(&out->period.begin) && c.GetI64(&out->period.end);
      out->period_index = static_cast<int>(pi);
      break;
    }
    case WalRecord::Kind::kCommit:
      break;
    case WalRecord::Kind::kSnapshotRows: {
      uint32_t nrows;
      ok = c.GetString(&out->table) && c.GetU32(&nrows) && nrows <= c.left;
      if (ok) {
        out->rows.clear();
        out->rows.reserve(nrows);
        for (uint32_t i = 0; ok && i < nrows; ++i) {
          Row r;
          ok = c.GetRow(&r);
          out->rows.push_back(std::move(r));
        }
      }
      break;
    }
    case WalRecord::Kind::kCheckpointFooter: {
      int64_t covered = 0;
      ok = c.GetI64(&covered) && covered >= 0;
      out->segments_covered = static_cast<uint64_t>(covered);
      break;
    }
  }
  if (!ok || c.left != 0) {
    return Status::IoError("wal record payload malformed");
  }
  return Status::OK();
}

// --- writer --------------------------------------------------------------

WalWriter::~WalWriter() {
  MutexLock lock(mu_);
  // Shared ownership (engine + group-commit coordinator) means destruction
  // only happens after the last waiter is gone, but an in-flight sync must
  // still finish before the FILE* goes away.
  while (sync_inflight_) sync_cv_.Wait(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Open(const std::string& path, FaultInjector* fault,
                       std::unique_ptr<WalWriter>* out) {
  return OpenAt(path, 1, fault, out);
}

Status WalWriter::OpenAt(const std::string& path, uint64_t segment_index,
                         FaultInjector* fault,
                         std::unique_ptr<WalWriter>* out) {
  if (segment_index == 0) segment_index = 1;
  const std::string seg_path = WalSegmentPath(path, segment_index);
  std::FILE* f = std::fopen(seg_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create wal file " + seg_path);
  }
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), f) != sizeof(kWalMagic) ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IoError("cannot write wal magic to " + seg_path);
  }
  // The empty log itself must survive a crash: sync the file, then the
  // parent directory so the new name is durable too.
  Status st = SyncFileNow(f, seg_path);
  if (st.ok()) st = SyncParentDir(seg_path);
  if (!st.ok()) {
    std::fclose(f);
    return st;
  }
  out->reset(new WalWriter(path, f, fault, sizeof(kWalMagic), segment_index));
  return Status::OK();
}

Status WalWriter::MarkDead(std::string reason) {
  dead_ = true;
  dead_reason_ = std::move(reason);
  return Status::IoError(dead_reason_);
}

Status WalWriter::DeadStatus() const {
  // Deliberately terse and stable: the actionable detail was surfaced once
  // by the call that killed the writer and stays available in dead_reason();
  // a load loop retrying thousands of appends should not spam variants.
  return Status::IoError("wal writer for " + path_ +
                         " is dead; writes are rejected until recovery");
}

Status WalWriter::FlushLocked() {
  // fflush failures (EINTR, momentary ENOSPC) leave the stream buffer
  // intact, so the flush can simply be retried.
  for (int attempt = 1; std::fflush(file_) != 0; ++attempt) {
    if (attempt >= kMaxWriteAttempts) {
      return MarkDead("wal flush failed for " + path_ + ": " +
                      std::strerror(errno));
    }
    BackoffAfterAttempt(attempt);
  }
  return Status::OK();
}

Status WalWriter::SyncLocked() {
  const uint64_t sync_index = syncs_ + 1;
  for (int attempt = 1;; ++attempt) {
    std::string cause;
    if (fault_ != nullptr && fault_->OnSync(sync_index).fail) {
      cause = "injected sync failure at sync point " +
              std::to_string(sync_index);
    } else {
      Status st = SyncFileNow(file_, path_);
      if (!st.ok()) cause = st.message();
    }
    if (cause.empty()) {
      ++syncs_;
      return Status::OK();
    }
    // A failed fdatasync leaves the durable prefix unknown but the stream
    // intact; retrying the sync is safe (it either completes, proving the
    // full prefix durable, or the writer dies here).
    if (attempt >= kMaxWriteAttempts) {
      return MarkDead("wal sync failed for " + path_ + " (" + cause + ")");
    }
    BackoffAfterAttempt(attempt);
  }
}

Status WalWriter::Append(const WalRecord& rec) {
  MutexLock lock(mu_);
  if (dead_) return DeadStatus();
  std::string& payload = payload_buf_;
  EncodeWalRecord(rec, &payload);
  std::string& frame = frame_buf_;
  frame.clear();
  frame.reserve(payload.size() + 8);
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc =
      WalCrc32(reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame.append(payload);

  for (int attempt = 1;; ++attempt) {
    size_t write_len = frame.size();
    if (fault_ != nullptr) {
      FaultInjector::Action a =
          fault_->OnWrite(records_written_ + 1, frame.size());
      if (a.fail) {
        // A clean failure: nothing reached the file, so retrying the same
        // frame is safe. Transient errors pass on a later attempt; a
        // crashed injector keeps failing until the attempts run out.
        if (attempt < kMaxWriteAttempts) {
          BackoffAfterAttempt(attempt);
          continue;
        }
        return MarkDead("injected write failure on wal record " +
                        std::to_string(records_written_ + 1) + " of " + path_);
      }
      if (a.flip) {
        frame[a.flip_offset] = static_cast<char>(
            static_cast<uint8_t>(frame[a.flip_offset]) ^ a.flip_mask);
      }
      if (a.torn) write_len = a.keep_bytes;
    }
    size_t n = std::fwrite(frame.data(), 1, write_len, file_);
    bytes_written_ += n;
    if (n != write_len || write_len != frame.size()) {
      // A short physical write is not retryable: an unknown prefix of the
      // frame is already on disk, and appending the frame again would
      // corrupt the log rather than repair it.
      std::fflush(file_);
      return MarkDead("torn wal write on record " +
                      std::to_string(records_written_ + 1) + " of " + path_);
    }
    ++records_written_;
    return Status::OK();
  }
}

Status WalWriter::Flush() {
  MutexLock lock(mu_);
  if (dead_) return DeadStatus();
  BIH_RETURN_IF_ERROR(FlushLocked());
  // Deferred mode: the record is staged in the OS; the group-commit leader
  // pays the device sync for the whole batch in SyncGroup().
  if (deferred_sync_) return Status::OK();
  return SyncLocked();
}

void WalWriter::SetDeferredSync(bool deferred) {
  MutexLock lock(mu_);
  deferred_sync_ = deferred;
}

uint64_t WalWriter::appended_lsn() const {
  MutexLock lock(mu_);
  return records_written_;
}

Status WalWriter::SyncGroup(uint64_t* durable_upto) {
  mu_.lock();
  // A previous group's device sync may still be in flight (another leader,
  // or a rotation); the FILE* must stay stable for the wait below.
  while (sync_inflight_) sync_cv_.Wait(mu_);
  if (dead_) {
    Status dead = DeadStatus();
    mu_.unlock();
    return dead;
  }
  Status st = FlushLocked();
  if (st.ok()) {
    const uint64_t group_index = group_syncs_ + 1;
    if (fault_ != nullptr && fault_->OnGroupFlush(group_index).fail) {
      // Crash between staging the group and its device sync: the batch sits
      // in the page cache, no transaction in it was ever acknowledged.
      st = MarkDead("injected group-flush crash at group " +
                    std::to_string(group_index) + " of " + path_);
    }
  }
  if (!st.ok()) {
    mu_.unlock();
    return st;
  }
  // Everything appended up to here is staged; that is what this sync makes
  // durable. Appends that land during the device wait ride the next group.
  const uint64_t target = records_written_;
  ++group_syncs_;
  sync_inflight_ = true;
  for (int attempt = 1;; ++attempt) {
    const uint64_t sync_index = syncs_ + 1;
    const bool injected =
        fault_ != nullptr && fault_->OnSync(sync_index).fail;
    std::FILE* f = file_;  // stable: rotation waits for !sync_inflight_
    mu_.unlock();
    // The device wait runs unlocked — this is the commit pipeline: later
    // transactions append (and even fflush) into the stream while the
    // group's fdatasync is in flight.
    std::string cause;
    if (injected) {
      cause =
          "injected sync failure at sync point " + std::to_string(sync_index);
    } else {
      Status sync_st = SyncFileNow(f, path_);
      if (!sync_st.ok()) cause = sync_st.message();
    }
    mu_.lock();
    if (cause.empty()) {
      ++syncs_;
      break;
    }
    if (attempt >= kMaxWriteAttempts) {
      st = MarkDead("wal sync failed for " + path_ + " (" + cause + ")");
      break;
    }
    BackoffAfterAttempt(attempt);
  }
  sync_inflight_ = false;
  sync_cv_.NotifyAll();
  if (st.ok() && durable_upto != nullptr) *durable_upto = target;
  mu_.unlock();
  return st;
}

Status WalWriter::Rotate() {
  MutexLock lock(mu_);
  // Never swap the FILE* from under an in-flight group sync.
  while (sync_inflight_) sync_cv_.Wait(mu_);
  if (dead_) return DeadStatus();
  // Finish the outgoing segment first: rotation must never leave synced
  // and unsynced bytes on different sides of the boundary.
  BIH_RETURN_IF_ERROR(FlushLocked());
  BIH_RETURN_IF_ERROR(SyncLocked());
  const uint64_t rotate_index = rotations_ + 1;
  if (fault_ != nullptr && fault_->OnRotate(rotate_index).fail) {
    return MarkDead("injected rotation failure at rotation " +
                    std::to_string(rotate_index) + " of " + path_);
  }
  const std::string next_path = WalSegmentPath(path_, segment_index_ + 1);
  std::FILE* next = std::fopen(next_path.c_str(), "wb");
  if (next == nullptr) {
    return MarkDead("cannot create wal segment " + next_path);
  }
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), next) !=
          sizeof(kWalMagic) ||
      std::fflush(next) != 0) {
    std::fclose(next);
    return MarkDead("cannot write wal magic to " + next_path);
  }
  Status st = SyncFileNow(next, next_path);
  if (st.ok()) st = SyncParentDir(next_path);
  if (!st.ok()) {
    std::fclose(next);
    return MarkDead("wal rotation sync failed (" + st.message() + ")");
  }
  std::fclose(file_);
  file_ = next;
  ++segment_index_;
  ++rotations_;
  bytes_written_ += sizeof(kWalMagic);
  return Status::OK();
}

// --- reader --------------------------------------------------------------

Status ScanWal(const std::string& path, WalScanResult* out) {
  *out = WalScanResult();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open wal file " + path);
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    return Status::IoError("read error on wal file " + path);
  }
  out->bytes_total = contents.size();
  if (contents.size() < sizeof(kWalMagic) ||
      std::memcmp(contents.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IoError("bad wal magic in " + path);
  }
  const uint8_t* base = reinterpret_cast<const uint8_t*>(contents.data());
  size_t pos = sizeof(kWalMagic);
  out->bytes_salvaged = pos;
  while (pos < contents.size()) {
    if (contents.size() - pos < 8) {
      out->tail_dropped = true;
      out->tail_reason = "torn frame header at offset " + std::to_string(pos);
      break;
    }
    uint32_t len, crc;
    std::memcpy(&len, base + pos, 4);
    std::memcpy(&crc, base + pos + 4, 4);
    if (contents.size() - pos - 8 < len) {
      out->tail_dropped = true;
      out->tail_reason = "torn record payload at offset " + std::to_string(pos);
      break;
    }
    const uint8_t* payload = base + pos + 8;
    if (WalCrc32(payload, len) != crc) {
      out->tail_dropped = true;
      out->tail_reason = "crc mismatch at offset " + std::to_string(pos);
      break;
    }
    WalRecord rec;
    Status st = DecodeWalRecord(payload, len, &rec);
    if (!st.ok()) {
      out->tail_dropped = true;
      out->tail_reason = st.message() + " at offset " + std::to_string(pos);
      break;
    }
    out->records.push_back(std::move(rec));
    pos += 8 + len;
    out->bytes_salvaged = pos;
  }
  return Status::OK();
}

Status TruncateWalTail(const std::string& path, uint64_t bytes) {
  // Portable truncate: rewrite the prefix. WAL repair is a recovery-time
  // operation, not a hot path.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open wal file " + path);
  std::string contents(bytes, '\0');
  size_t n = std::fread(contents.data(), 1, bytes, f);
  std::fclose(f);
  if (n != bytes) {
    return Status::IoError("wal file " + path + " shorter than salvage point");
  }
  f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot rewrite wal file " + path);
  bool ok = std::fwrite(contents.data(), 1, bytes, f) == bytes;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::IoError("failed truncating wal file " + path);
  return Status::OK();
}

}  // namespace bih
