// bih_lint: repo-aware static checks that a generic linter cannot express.
//
// The tool walks src/, tests/, tools/ and bench/ (or the paths given on the
// command line) and enforces the house rules that keep the concurrency and
// error-handling story honest:
//
//   include-guard       every header carries a #ifndef/#define include guard
//   naked-mutex         no raw <mutex>/<shared_mutex> primitives outside the
//                       annotated wrappers in src/common/thread_annotations.h
//   ignored-status      no statement-position bare call of a function that
//                       returns bih::Status (the [[nodiscard]] attribute
//                       catches these at compile time; the lint catches them
//                       in code that is not compiled on every config, e.g.
//                       fixture sources and sanitizer-gated branches)
//   assert-side-effect  no assert() whose argument mutates state (++/--/=);
//                       NDEBUG builds would silently skip the mutation
//   scan-ctx            engine scan loops (Scan* functions in
//                       src/engine/system_*.cc) must poll the QueryContext
//                       (KeepGoing/CheckNow/MorselInterrupted) or delegate to
//                       a scan helper that does, so deadline/cancel stay
//                       responsive at any data size
//   raw-io              no direct fflush/fsync/fdatasync calls outside
//                       src/durability/ — the sanctioned sync sites there
//                       carry the BIH_NO_FSYNC gate, EINTR retries and the
//                       fault-injection hooks, and a sync elsewhere forks
//                       the durability protocol
//   raw-socket          no global-scope socket syscalls (::socket, ::bind,
//                       ::accept, ::send, ::recv, ...) outside src/net/ —
//                       the network layer is where EINTR retries, poll
//                       deadlines and the net fault-injection hooks live;
//                       everything else talks through net::Client/Server.
//                       (raw-io still applies *inside* src/net/: sockets
//                       yes, fsync no.)
//
// Suppressions (always with a reason in the surrounding code):
//   // bih-lint: allow(<rule>)       this line or the next line
//   // bih-lint: allow-file(<rule>)  whole file, within the first 40 lines
//
// Output is "path:line: [rule] message", one finding per line, then a
// summary. Exit status 1 when anything fired, 0 on a clean tree.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/source.h"

namespace fs = std::filesystem;

namespace {

// File walking, comment/string stripping, the suppression syntax and the
// "path:line: [rule] message" output format live in tools/analysis/ and
// are shared with bih_analyze; this file holds only the lint rules.
using bih::analysis::FileText;
using bih::analysis::Finding;
using bih::analysis::FindToken;
using bih::analysis::HasSuffix;
using bih::analysis::IsHeader;
using bih::analysis::IsIdentChar;
using bih::analysis::LoadTree;
using bih::analysis::ReportFindings;
using bih::analysis::Suppressed;

// --- rule: include-guard ----------------------------------------------------

void CheckIncludeGuard(const FileText& f, std::vector<Finding>* out) {
  if (!IsHeader(f.path)) return;
  bool saw_ifndef = false, saw_define = false;
  std::string guard;
  for (const std::string& line : f.code) {
    std::istringstream is(line);
    std::string tok;
    is >> tok;
    if (!saw_ifndef) {
      if (tok == "#ifndef") {
        is >> guard;
        saw_ifndef = true;
      } else if (tok == "#pragma") {
        std::string once;
        is >> once;
        if (once == "once") return;  // accepted, though #ifndef is the idiom
      } else if (!tok.empty() && tok[0] == '#') {
        break;  // some other directive before any guard: no guard
      }
      continue;
    }
    if (tok == "#define") {
      std::string name;
      is >> name;
      if (name == guard) saw_define = true;
      break;  // the #define must directly follow the #ifndef
    }
    if (!tok.empty()) break;
  }
  if (!(saw_ifndef && saw_define)) {
    if (!Suppressed(f, 0, "include-guard")) {
      out->push_back({f.path, 1, "include-guard",
                      "header has no #ifndef/#define include guard"});
    }
  }
}

// --- rule: naked-mutex ------------------------------------------------------

const char* kNakedMutexTokens[] = {
    "std::mutex",        "std::timed_mutex",       "std::recursive_mutex",
    "std::shared_mutex", "std::shared_timed_mutex", "std::condition_variable",
    "std::condition_variable_any", "std::lock_guard", "std::unique_lock",
    "std::shared_lock",  "std::scoped_lock",
};

void CheckNakedMutex(const FileText& f, std::vector<Finding>* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    for (const char* tok : kNakedMutexTokens) {
      if (FindToken(f.code[i], tok) != std::string::npos) {
        if (!Suppressed(f, i, "naked-mutex")) {
          out->push_back({f.path, i + 1, "naked-mutex",
                          std::string(tok) +
                              " used directly; use the annotated wrappers in "
                              "src/common/thread_annotations.h (bih::Mutex, "
                              "bih::MutexLock, bih::CondVar, ...)"});
        }
        break;  // one finding per line is enough
      }
    }
  }
}

// --- rule: raw-io -----------------------------------------------------------
//
// Durability is a protocol, not a call: every fflush/fsync/fdatasync must go
// through the sanctioned sync sites in src/durability/ (SyncFileNow,
// SyncParentDir, WalWriter), where the BIH_NO_FSYNC gate, EINTR retry and
// fault injection live. A stray fflush elsewhere silently forks the
// durability story — it either double-pays the sync tax or, worse, creates
// a second place that decides what "durable" means.

const char* kRawIoTokens[] = {"fflush", "fsync", "fdatasync"};

void CheckRawIo(const FileText& f, std::vector<Finding>* out) {
  // The durability layer is the sanctioned home of these calls.
  if (f.path.find("src/durability/") != std::string::npos) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const char* tok : kRawIoTokens) {
      size_t pos = FindToken(line, tok);
      if (pos == std::string::npos) continue;
      // Only calls (token directly followed by an open paren); a comment or
      // string mention was already blanked by StripCommentsAndStrings.
      size_t after = pos + std::strlen(tok);
      size_t nb = line.find_first_not_of(' ', after);
      if (nb == std::string::npos || line[nb] != '(') continue;
      if (!Suppressed(f, i, "raw-io")) {
        out->push_back({f.path, i + 1, "raw-io",
                        std::string(tok) +
                            "() outside src/durability/; route durability "
                            "through SyncFileNow/SyncParentDir/WalWriter so "
                            "BIH_NO_FSYNC gating and fault injection apply"});
      }
      break;  // one finding per line is enough
    }
  }
}

// --- rule: raw-socket -------------------------------------------------------
//
// The repo's convention writes socket syscalls with an explicit global
// scope (::socket, ::send, ...), which is also what makes them lintable
// without tripping on std::bind, method calls named send()/accept(), or
// the net layer's own wrappers. The rule flags a global-scope call of any
// of these names outside src/net/: one layer owns the sockets, so the
// EINTR handling, poll-slice deadlines and BIH_FAULT=net hooks there are
// never bypassed. Tests that need a hand-rolled socket (e.g. to feed the
// server a deliberately torn frame) say so with an allow() suppression.

const char* kRawSocketTokens[] = {
    "socket", "bind",        "listen",   "accept",      "connect",
    "send",   "recv",        "shutdown", "setsockopt",  "getsockname",
    "sendto", "recvfrom",    "sendmsg",  "recvmsg",     "getpeername",
};

void CheckRawSocket(const FileText& f, std::vector<Finding>* out) {
  if (f.path.find("src/net/") != std::string::npos) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const char* tok : kRawSocketTokens) {
      size_t pos = FindToken(line, tok);
      if (pos == std::string::npos) continue;
      // Global-scope call only: "::token(" where the "::" is not the tail
      // of a qualified name (std::bind, boost::asio::connect, ...).
      if (pos < 2 || line[pos - 1] != ':' || line[pos - 2] != ':') continue;
      if (pos >= 3 && (IsIdentChar(line[pos - 3]) || line[pos - 3] == ':')) {
        continue;
      }
      size_t after = pos + std::strlen(tok);
      size_t nb = line.find_first_not_of(' ', after);
      if (nb == std::string::npos || line[nb] != '(') continue;
      if (!Suppressed(f, i, "raw-socket")) {
        out->push_back({f.path, i + 1, "raw-socket",
                        std::string("::") + tok +
                            "() outside src/net/; socket I/O goes through "
                            "net::Client/net::Server so EINTR retries, poll "
                            "deadlines and BIH_FAULT=net injection apply"});
      }
      break;  // one finding per line is enough
    }
  }
}

// --- rule: exec-api ---------------------------------------------------------
//
// The plan tree is the execution API: operators compose as PlanNodes and run
// through Execute()/RunPlan(), which is where ExecOptions, the optimizer,
// cancellation polling and ExecStats live. Calling an operator kernel
// directly bypasses all four, so outside src/exec/ the kernel entry points
// (and the retired exec/operators.h header) are off limits.

const char* kExecKernelTokens[] = {
    "ScanAll",       "FilterRows",        "ProjectRows",
    "HashJoinRows",  "MergeJoinRows",     "IndexNestedLoopJoin",
    "HashAggregateRows", "SortRows",      "LimitRows",
    "DistinctRows"};

void CheckExecApi(const FileText& f, std::vector<Finding>* out) {
  // The executor's own implementation (and its headers) are the sanctioned
  // home of the kernels.
  if (f.path.find("src/exec/") != std::string::npos) return;
  for (size_t i = 0; i < f.raw.size(); ++i) {
    // Includes live in raw text (string stripping blanks the path).
    if (f.raw[i].find("#include") != std::string::npos &&
        f.raw[i].find("exec/operators.h") != std::string::npos &&
        !Suppressed(f, i, "exec-api")) {
      out->push_back({f.path, i + 1, "exec-api",
                      "exec/operators.h is retired; build a PlanNode tree "
                      "(exec/plan.h) and run it through Execute()/RunPlan()"});
    }
  }
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const char* tok : kExecKernelTokens) {
      size_t pos = FindToken(line, tok);
      if (pos == std::string::npos) continue;
      // Only calls: the token directly followed by '('.
      size_t after = pos + std::strlen(tok);
      size_t nb = line.find_first_not_of(' ', after);
      if (nb == std::string::npos || line[nb] != '(') continue;
      if (!Suppressed(f, i, "exec-api")) {
        out->push_back({f.path, i + 1, "exec-api",
                        std::string(tok) +
                            "() outside src/exec/; operator kernels are "
                            "internal — compose a PlanNode tree (exec/plan.h) "
                            "so ExecOptions, the optimizer, cancellation and "
                            "ExecStats apply"});
      }
      break;  // one finding per line is enough
    }
  }
}

// --- rule: ignored-status ---------------------------------------------------

// Pass 1 (across all files): for every "<ReturnType> Name(" declaration or
// definition, classify Name by return type. A name counts as Status-
// returning only when *no* visible declaration gives it a different return
// type — e.g. the reference model's void Insert() must not make every
// engine->Insert() drop a false positive, and vice versa.
const char* kDeclKeywords[] = {
    "return", "if",     "while",  "for",      "switch", "case",   "else",
    "do",     "new",    "delete", "throw",    "goto",   "sizeof", "co_return",
    "co_await", "and",  "or",     "not",      "operator"};

bool IsDeclKeyword(const std::string& s) {
  for (const char* k : kDeclKeywords) {
    if (s == k) return true;
  }
  return false;
}

void CollectFunctionReturns(const FileText& f, std::set<std::string>* status,
                            std::set<std::string>* other) {
  for (const std::string& line : f.code) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] != '(') continue;
      // Function name directly before the paren.
      size_t name_end = i;
      size_t name_start = name_end;
      while (name_start > 0 && IsIdentChar(line[name_start - 1])) --name_start;
      if (name_start == name_end) continue;
      std::string name = line.substr(name_start, name_end - name_start);
      // Back over "Class::" qualifiers (Status Foo::Bar(...)).
      size_t j = name_start;
      while (j >= 2 && line[j - 1] == ':' && line[j - 2] == ':') {
        j -= 2;
        while (j > 0 && IsIdentChar(line[j - 1])) --j;
      }
      while (j > 0 && line[j - 1] == ' ') --j;
      if (j == 0) continue;  // nothing before the name: call or definition?
      char prev = line[j - 1];
      if (IsIdentChar(prev)) {
        size_t a_end = j;
        size_t a_start = a_end;
        while (a_start > 0 && IsIdentChar(line[a_start - 1])) --a_start;
        std::string ret = line.substr(a_start, a_end - a_start);
        if (IsDeclKeyword(ret)) continue;          // "return Foo(...)" etc.
        if (std::isdigit(static_cast<unsigned char>(ret[0]))) continue;
        if (ret == "Status") {
          status->insert(name);
        } else {
          other->insert(name);  // "void Insert(", "bool Append(", ...
        }
      } else if (prev == '*' || prev == '&') {
        other->insert(name);  // pointer/reference return type
      } else if (prev == '>' && (j < 2 || line[j - 2] != '-')) {
        other->insert(name);  // "std::vector<Row> Foo(" — not "obj->Foo("
      }
      // Any other context ('.', '(', ',', "->") is a call, not a signature.
    }
  }
}

// Pass 2: a line that is exactly a bare call statement of a collected name —
// "Foo(...);" or "obj.Foo(...);" or "ptr->Foo(...);" — ignores the Status.
void CheckIgnoredStatus(const FileText& f, const std::set<std::string>& names,
                        std::vector<Finding>* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t");
    if (line[e] != ';') continue;
    std::string stmt = line.substr(b, e - b + 1);
    // The line must *start* a statement, not continue a multi-line
    // expression ("Status st =\n  Foo();" or "EXPECT_EQ(x,\n  Foo());").
    bool starts_statement = true;
    for (size_t p = i; p-- > 0;) {
      size_t pe = f.code[p].find_last_not_of(" \t");
      if (pe == std::string::npos) continue;  // blank / comment-only line
      char last = f.code[p][pe];
      size_t pb = f.code[p].find_first_not_of(" \t");
      bool preprocessor = f.code[p][pb] == '#';
      starts_statement = last == ';' || last == '{' || last == '}' ||
                         last == ':' || preprocessor;
      break;
    }
    if (!starts_statement) continue;
    // A tail with more closes than opens belongs to an enclosing call.
    int balance = 0;
    for (char c : stmt) {
      if (c == '(') ++balance;
      if (c == ')') --balance;
    }
    if (balance < 0) continue;
    // Statement must be a single call expression ending in ");" with no
    // assignment/return/declaration in front of the callee.
    size_t paren = stmt.find('(');
    if (paren == std::string::npos || stmt[stmt.size() - 2] != ')') continue;
    std::string head = stmt.substr(0, paren);
    // Reject anything with operators that imply the value is consumed or
    // that this is a declaration ("Status st = Foo(...)", "return Foo(...)").
    if (head.find('=') != std::string::npos) continue;
    if (head.find(' ') != std::string::npos) continue;  // "return Foo", "Status Foo"
    if (head.find("BIH_") != std::string::npos) continue;  // macros handle it
    // Callee name: identifier chars at the tail of head, after ./->/::.
    size_t name_start = head.size();
    while (name_start > 0 && IsIdentChar(head[name_start - 1])) --name_start;
    std::string callee = head.substr(name_start);
    if (callee.empty() || !names.count(callee)) continue;
    if (!Suppressed(f, i, "ignored-status")) {
      out->push_back({f.path, i + 1, "ignored-status",
                      "result of Status-returning call '" + callee +
                          "' is dropped; assign and check it, or cast to "
                          "(void) with a comment"});
    }
  }
}

// --- rule: assert-side-effect -----------------------------------------------

void CheckAssertSideEffect(const FileText& f, std::vector<Finding>* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    size_t pos = FindToken(line, "assert");
    if (pos == std::string::npos) continue;
    // static_assert is compile-time; FindToken already rejects it because
    // '_' is an identifier character, but be explicit for clarity.
    size_t open = line.find('(', pos);
    if (open == std::string::npos) continue;
    // Argument text up to the matching close paren (single line is enough:
    // the repo style keeps asserts on one line).
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t j = open; j < line.size(); ++j) {
      if (line[j] == '(') ++depth;
      if (line[j] == ')' && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == std::string::npos) close = line.size();
    std::string arg = line.substr(open + 1, close - open - 1);
    bool mutates = arg.find("++") != std::string::npos ||
                   arg.find("--") != std::string::npos;
    if (!mutates) {
      // A lone '=' (not ==, !=, <=, >=) assigns inside the assert.
      for (size_t j = 0; j < arg.size(); ++j) {
        if (arg[j] != '=') continue;
        char prev = j > 0 ? arg[j - 1] : '\0';
        char nxt = j + 1 < arg.size() ? arg[j + 1] : '\0';
        if (nxt == '=' || prev == '=' || prev == '!' || prev == '<' ||
            prev == '>') {
          if (nxt == '=') ++j;  // skip the second char of the operator
          continue;
        }
        mutates = true;
        break;
      }
    }
    if (mutates && !Suppressed(f, i, "assert-side-effect")) {
      out->push_back({f.path, i + 1, "assert-side-effect",
                      "assert() argument has a side effect; NDEBUG builds "
                      "skip it — hoist the mutation out of the assert"});
    }
  }
}

// --- rule: scan-ctx ---------------------------------------------------------

// Engine scan implementations must stay cancellable: every function named
// Scan* in src/engine/system_*.cc either polls the QueryContext or hands the
// rows to a helper that does.
void CheckScanCtx(const FileText& f, std::vector<Finding>* out) {
  std::string base = fs::path(f.path).filename().string();
  if (base.rfind("system_", 0) != 0 || !HasSuffix(base, ".cc")) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    // Function definition heuristic: "Scan<Name>(" appears and the
    // statement opens a brace on this or a following line before a ';'.
    size_t pos = std::string::npos;
    for (size_t from = 0;;) {
      size_t p = line.find("Scan", from);
      if (p == std::string::npos) break;
      bool left_ok = p == 0 || !IsIdentChar(line[p - 1]);
      // Member calls ("part->Scan(", "t->delta.Scan(") are uses, not
      // definitions; qualified definitions ("SystemAEngine::Scan(") stay.
      if (left_ok && p > 0 &&
          (line[p - 1] == '.' ||
           (p > 1 && line[p - 1] == '>' && line[p - 2] == '-'))) {
        left_ok = false;
      }
      if (left_ok) {
        size_t q = p + 4;
        while (q < line.size() && IsIdentChar(line[q])) ++q;
        if (q < line.size() && line[q] == '(') {
          pos = p;
          break;
        }
      }
      from = p + 4;
    }
    if (pos == std::string::npos) continue;
    // Must look like a definition: find '{' before any ';' scanning forward.
    size_t j = i;
    bool is_def = false;
    size_t body_start_line = i;
    for (; j < f.code.size() && j < i + 5; ++j) {
      const std::string& l2 = f.code[j];
      size_t start = j == i ? pos : 0;
      for (size_t k = start; k < l2.size(); ++k) {
        if (l2[k] == ';') {
          is_def = false;
          goto decided;
        }
        if (l2[k] == '{') {
          is_def = true;
          body_start_line = j;
          goto decided;
        }
      }
    }
  decided:
    if (!is_def) continue;
    // Only scan *implementations* are in scope: the signature names a
    // ScanRequest (or the morsel plumbing). Metadata helpers that merely
    // start with "Scan" (ScanSchema, ...) have nothing to poll.
    bool takes_request = false;
    for (size_t k = i; k <= body_start_line && k < f.code.size(); ++k) {
      if (f.code[k].find("ScanRequest") != std::string::npos ||
          f.code[k].find("Morsel") != std::string::npos) {
        takes_request = true;
        break;
      }
    }
    if (!takes_request) continue;
    // Walk the brace-matched body and look for a context poll or a
    // delegation to another Scan*/ParallelScanPartition call.
    int depth = 0;
    bool entered = false;
    bool ok = false;
    size_t end_line = body_start_line;
    for (size_t k = body_start_line; k < f.code.size(); ++k) {
      const std::string& l2 = f.code[k];
      for (char c : l2) {
        if (c == '{') {
          ++depth;
          entered = true;
        }
        if (c == '}') --depth;
      }
      if (entered && k > i) {
        const std::string& b = f.code[k];
        if (b.find("KeepGoing(") != std::string::npos ||
            b.find("CheckNow(") != std::string::npos ||
            b.find("MorselInterrupted(") != std::string::npos ||
            b.find("ParallelScanPartition(") != std::string::npos) {
          ok = true;
        }
        // Delegation: a call (not definition) of another Scan* function.
        size_t sp = b.find("Scan");
        while (!ok && sp != std::string::npos) {
          bool left_ok2 = sp == 0 || !IsIdentChar(b[sp - 1]);
          size_t q = sp + 4;
          while (q < b.size() && IsIdentChar(b[q])) ++q;
          if (left_ok2 && q < b.size() && b[q] == '(') ok = true;
          sp = b.find("Scan", sp + 4);
        }
      }
      if (entered && depth == 0) {
        end_line = k;
        break;
      }
    }
    if (!ok && !Suppressed(f, i, "scan-ctx")) {
      out->push_back({f.path, i + 1, "scan-ctx",
                      "engine scan function does not poll the QueryContext "
                      "(KeepGoing/CheckNow/MorselInterrupted) or delegate to "
                      "a scan helper; long scans must stay cancellable"});
    }
    i = end_line;  // resume after this function body
  }
}

// --- driver -----------------------------------------------------------------

const char* kRuleNames[] = {"include-guard",      "naked-mutex",
                            "ignored-status",     "assert-side-effect",
                            "scan-ctx",           "raw-io",
                            "raw-socket",         "exec-api"};

int Usage() {
  std::fprintf(stderr,
               "usage: bih_lint [--root DIR] [--list-rules] [PATH...]\n"
               "Walks src/ tests/ tools/ bench/ under --root (default \".\")\n"
               "or the explicit PATHs, and reports house-rule violations.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const char* r : kRuleNames) std::printf("%s\n", r);
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") return Usage();
    explicit_paths.push_back(arg);
  }

  std::vector<FileText> texts =
      LoadTree(root, explicit_paths, {"src", "tests", "tools", "bench"});

  // The thread_annotations header is the one place allowed to name the raw
  // primitives; it carries its own allow-file comment, so no special case
  // is needed here.
  std::set<std::string> status_fns, other_fns;
  for (const FileText& f : texts) {
    CollectFunctionReturns(f, &status_fns, &other_fns);
  }
  // Ambiguous names (declared with Status somewhere and something else
  // elsewhere) are dropped: a lint false positive costs more trust than the
  // occasional missed overload, and the compiler's [[nodiscard]] still
  // covers every compiled call site.
  for (const std::string& name : other_fns) status_fns.erase(name);

  std::vector<Finding> findings;
  for (const FileText& f : texts) {
    CheckIncludeGuard(f, &findings);
    CheckNakedMutex(f, &findings);
    CheckIgnoredStatus(f, status_fns, &findings);
    CheckAssertSideEffect(f, &findings);
    CheckScanCtx(f, &findings);
    CheckRawIo(f, &findings);
    CheckRawSocket(f, &findings);
    CheckExecApi(f, &findings);
  }

  return ReportFindings(&findings, texts.size(), "bih_lint");
}
