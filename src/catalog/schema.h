#ifndef TPCBIH_CATALOG_SCHEMA_H_
#define TPCBIH_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace bih {

enum class ColumnType {
  kInt,        // 64-bit integer
  kDouble,     // 64-bit float (DECIMAL columns are represented as double)
  kString,     // variable-length character data
  kDate,       // stored as int64 day number
  kTimestamp,  // stored as int64 microseconds
};

const char* ColumnTypeName(ColumnType t);

struct Column {
  std::string name;
  ColumnType type;
};

// Ordered list of named, typed columns. Column positions are stable and act
// as the attribute identifiers everywhere in the executor.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Returns the position of `name`, or -1 if absent.
  int FindColumn(const std::string& name) const;
  // Like FindColumn but fatal on absence; use for statically known names.
  int ColumnIndex(const std::string& name) const;

  // Schema with `extra` columns appended (used by history-table layouts that
  // extend the base schema with system-time attributes).
  Schema Extend(const std::vector<Column>& extra) const;
  // Schema consisting of the selected column positions.
  Schema Project(const std::vector<int>& cols) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

// An application-time period: two date columns of the table delimiting
// [begin, end). SQL:2011 `PERIOD FOR <name> (begin_col, end_col)`.
struct AppPeriodDef {
  std::string name;
  int begin_col = -1;
  int end_col = -1;
};

// Logical (user-facing) definition of a benchmark table: data columns,
// primary key, zero or more application-time periods, and whether the table
// is system-versioned. The engines decide the physical layout.
struct TableDef {
  std::string name;
  Schema schema;
  std::vector<int> primary_key;     // column positions forming the key
  std::vector<AppPeriodDef> app_periods;
  bool system_versioned = false;

  bool HasAppTime() const { return !app_periods.empty(); }
  // Position of the period named `name` within app_periods, or -1.
  int FindAppPeriod(const std::string& period_name) const;
};

}  // namespace bih

#endif  // TPCBIH_CATALOG_SCHEMA_H_
