# Empty dependencies file for bih_workload.
# This may be replaced when dependencies are built.
