#ifndef TPCBIH_SQL_EXECUTOR_H_
#define TPCBIH_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/operators.h"
#include "sql/ast.h"

namespace bih {
namespace sql {

struct SqlResult {
  std::vector<std::string> columns;
  Rows rows;
};

// Binds and executes a parsed statement against an engine.
Status ExecuteSelect(TemporalEngine& engine, const SelectStatement& stmt,
                     SqlResult* out);

// Executes a parsed DML statement; `out` reports the number of affected
// keys in a single-row result. Assignments and inserted values must be
// constant expressions (the engine applies one value set per key).
Status ExecuteDml(TemporalEngine& engine, const DmlStatement& stmt,
                  SqlResult* out);

// Parses + executes in one step; dispatches on the leading keyword
// (SELECT vs INSERT/UPDATE/DELETE).
Status ExecuteSql(TemporalEngine& engine, const std::string& text,
                  SqlResult* out);

}  // namespace sql
}  // namespace bih

#endif  // TPCBIH_SQL_EXECUTOR_H_
