#include "analysis/lock_graph.h"

#include <algorithm>
#include <functional>

namespace bih {
namespace analysis {

namespace {

bool IsLockOp(const std::string& s) {
  return s == "lock" || s == "try_lock" || s == "Lock" || s == "TryLock";
}
bool IsSharedLockOp(const std::string& s) {
  return s == "lock_shared" || s == "try_lock_shared";
}
bool IsUnlockOp(const std::string& s) {
  return s == "unlock" || s == "unlock_shared" || s == "Unlock";
}
bool IsRaiiLock(const std::string& s) {
  return s == "MutexLock" || s == "WriterLock" || s == "ReaderLock";
}
bool IsCvWait(const std::string& s) { return s == "Wait" || s == "WaitFor"; }

// Free/primitive calls that park the calling thread. Matched at call sites
// (identifier followed by '('); `join` only as a member call so plain
// functions named join elsewhere don't trip it.
bool IsBlockingPrimitive(const std::string& s) {
  return s == "fdatasync" || s == "fsync" || s == "SyncFileNow" ||
         s == "SyncParentDir" || s == "sleep_for" || s == "sleep_until" ||
         s == "nanosleep" || s == "usleep" || s == "poll" || s == "send" ||
         s == "recv" || s == "accept" || s == "connect";
}

bool IsCtrl(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "catch" || s == "sizeof" || s == "throw";
}

}  // namespace

// --- LockResolver ----------------------------------------------------------

namespace {

// A mutex member that is a reference or raw pointer at the top level of
// its type is an alias to a lock owned elsewhere (the RAII guard classes
// hold `Mutex&`), not a lock identity of its own. Owning containers
// (vector<unique_ptr<Mutex>>) keep the * / & inside the angle brackets
// and stay identities.
bool IsAliasMutex(const FieldDecl& f) {
  int angle = 0;
  for (char c : f.type) {
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (angle == 0 && (c == '&' || c == '*')) return true;
  }
  return false;
}

}  // namespace

LockResolver::LockResolver(const RepoModel& repo) : repo_(repo) {
  for (const auto& kv : repo.classes) {
    for (const FieldDecl& f : kv.second.fields) {
      if (!f.is_mutex || IsAliasMutex(f)) continue;
      std::string id = kv.first + "::" + f.name;
      all_.insert(id);
      by_name_[f.name].push_back(id);
    }
  }
}

std::string LockResolver::Resolve(const std::string& name,
                                  const std::string& cls) const {
  if (name.empty()) return "";
  if (name.find("::") != std::string::npos) {
    return all_.count(name) ? name : "";
  }
  // Innermost enclosing class first: for cls "A::B" try "A::B::name",
  // then "A::name".
  std::string scope = cls;
  while (!scope.empty()) {
    std::string id = scope + "::" + name;
    if (all_.count(id)) return id;
    size_t cut = scope.rfind("::");
    scope = cut == std::string::npos ? "" : scope.substr(0, cut);
  }
  auto it = by_name_.find(name);
  if (it != by_name_.end() && it->second.size() == 1) return it->second[0];
  return "";
}

const FieldDecl* LockResolver::Field(const std::string& id) const {
  size_t cut = id.rfind("::");
  if (cut == std::string::npos) return nullptr;
  auto it = repo_.classes.find(id.substr(0, cut));
  if (it == repo_.classes.end()) return nullptr;
  std::string name = id.substr(cut + 2);
  for (const FieldDecl& f : it->second.fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

// --- body walker -----------------------------------------------------------

namespace {

struct EdgeObs {
  std::string from, to;
  Witness w;
};

struct WalkResult {
  std::map<std::string, Witness> acquires;
  std::vector<BlockSite> summary_blocks;
  std::vector<EdgeObs> edges;
  std::vector<BlockObservation> block_obs;
};

class BodyWalker {
 public:
  BodyWalker(const RepoModel& repo, const LockResolver& resolver,
             const std::map<std::string, FuncSummary>& summaries,
             const std::map<std::string, std::vector<std::string>>& callables)
      : repo_(repo),
        resolver_(resolver),
        summaries_(summaries),
        callables_(callables) {}

  WalkResult Walk(const FileModel& fm, const FunctionDecl& fn) {
    out_ = WalkResult();
    fm_ = &fm;
    fn_ = &fn;
    qualified_ = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
    held_.clear();
    depth_ = 0;

    // Annotations usually live on the header declaration while the body
    // is in the .cc — seed from the merged view.
    const FunctionDecl* merged = repo_.FindAnnotations(qualified_);
    const FunctionDecl& ann = merged != nullptr ? *merged : fn;
    for (const std::string& cap : ann.requires_caps) {
      std::string id = resolver_.Resolve(cap, fn.cls);
      if (!id.empty()) held_.push_back({id, -1, fn.line});
    }
    for (const std::string& cap : ann.acquires_caps) {
      // ACQUIRE/TRY_ACQUIRE describe the state on (successful) return,
      // not throughout the body — a try-lock retry loop spends most of
      // its time NOT holding the lock. Record the acquisition in the
      // summary for callers, but do not treat it as held here; the
      // body's own lock operations supply the held set.
      std::string id = resolver_.Resolve(cap, fn.cls);
      if (!id.empty() && !out_.acquires.count(id)) {
        out_.acquires[id] = {qualified_, fm.text->path, fn.line, ""};
      }
    }

    const std::vector<Token>& t = fm.tokens;
    for (size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      const Token& tok = t[i];
      if (tok.kind == Token::Kind::kPunct) {
        // Lambda bodies are skipped: the dominant pattern in this tree
        // hands them to worker threads (AcceptLoop, the scan scheduler),
        // where the caller's held set does NOT apply. Walking them inline
        // would invent lock orders across threads.
        if (tok.text == "[" && IsLambdaIntro(i)) {
          i = SkipLambda(i, fn.body_end);
          continue;
        }
        if (tok.text == "{") ++depth_;
        if (tok.text == "}") {
          --depth_;
          PopScopes();
        }
        continue;
      }
      if (tok.kind != Token::Kind::kIdent) continue;
      bool has_paren = NextIs(i, "(");
      if (!has_paren) continue;

      // RAII guard declaration: MutexLock l(expr); the guard class name is
      // followed by the variable name, so has_paren is false on the class
      // token — catch it one token early.
      if (IsRaiiLock(tok.text)) continue;  // handled below via variable
      if (i > 0 && t[i - 1].kind == Token::Kind::kIdent &&
          IsRaiiLock(t[i - 1].text)) {
        HandleRaii(i);
        continue;
      }

      bool member = i > 0 && t[i - 1].kind == Token::Kind::kPunct &&
                    (t[i - 1].text == "." || t[i - 1].text == "->");
      if (member && (IsLockOp(tok.text) || IsSharedLockOp(tok.text))) {
        std::string id = ResolveObject(i - 2);
        // A negated try-lock (`while (!mu.try_lock()) ...`) reaches the
        // following statements on *failure*: record that the function may
        // acquire the lock, but do not mark it held.
        bool negated = i >= 3 && t[i - 2].kind == Token::Kind::kIdent &&
                       t[i - 3].kind == Token::Kind::kPunct &&
                       t[i - 3].text == "!";
        if (!id.empty()) Acquire(id, tok.line, /*push=*/!negated);
        continue;
      }
      if (member && IsUnlockOp(tok.text)) {
        std::string id = ResolveObject(i - 2);
        if (!id.empty()) Release(id);
        continue;
      }
      if (member && IsCvWait(tok.text)) {
        std::set<std::string> exempt;
        std::string arg = FirstArgSpine(i + 1);
        std::string id = resolver_.Resolve(arg, fn.cls);
        if (!id.empty()) exempt.insert(id);
        Block("CondVar::" + tok.text, tok.line, exempt);
        continue;
      }
      if (IsBlockingPrimitive(tok.text) ||
          (member && tok.text == "join")) {
        Block(tok.text, tok.line, {});
        continue;
      }
      if (IsCtrl(tok.text) || IsRaiiLock(tok.text)) continue;
      HandleCall(i, member);
    }
    return out_;
  }

 private:
  struct Held {
    std::string id;
    int depth;  // scope depth of a RAII guard; -1 for manual locks
    size_t line;
  };

  const RepoModel& repo_;
  const LockResolver& resolver_;
  const std::map<std::string, FuncSummary>& summaries_;
  const std::map<std::string, std::vector<std::string>>& callables_;

  const FileModel* fm_ = nullptr;
  const FunctionDecl* fn_ = nullptr;
  std::string qualified_;
  WalkResult out_;
  std::vector<Held> held_;
  int depth_ = 0;

  bool NextIs(size_t i, const char* p) const {
    const std::vector<Token>& t = fm_->tokens;
    return i + 1 < t.size() && t[i + 1].kind == Token::Kind::kPunct &&
           t[i + 1].text == p;
  }

  // '[' starts a lambda capture unless it subscripts a value (previous
  // token is an identifier that is not a keyword, a ']' or a ')') or is a
  // structured binding (`auto& [id, conn] : conns_` / `auto [a, b] = f()`),
  // recognised by the ':' or '=' that follows the matching ']'.
  bool IsLambdaIntro(size_t i) const {
    const std::vector<Token>& t = fm_->tokens;
    if (i == 0) return false;
    const Token& p = t[i - 1];
    if (p.kind == Token::Kind::kPunct && (p.text == "]" || p.text == ")")) {
      return false;
    }
    if (p.kind != Token::Kind::kIdent || IsCtrl(p.text)) {
      size_t close = SkipGroup(i, "[", "]", t.size());
      if (close + 1 < t.size() && t[close + 1].kind == Token::Kind::kPunct &&
          (t[close + 1].text == ":" || t[close + 1].text == "=")) {
        return false;
      }
    }
    if (p.kind == Token::Kind::kIdent) return IsCtrl(p.text);
    return p.kind == Token::Kind::kPunct || p.kind == Token::Kind::kString;
  }

  // Skips a lambda starting at the '[' token; returns the index of the
  // body's closing '}' (or the capture ']' when no body follows).
  size_t SkipLambda(size_t i, size_t limit) const {
    const std::vector<Token>& t = fm_->tokens;
    size_t j = SkipGroup(i, "[", "]", limit);
    if (j + 1 < limit && t[j + 1].kind == Token::Kind::kPunct &&
        t[j + 1].text == "(") {
      j = SkipGroup(j + 1, "(", ")", limit);
    }
    // Allow a short specifier tail (mutable, noexcept, -> Type) before the
    // body; give up if no '{' appears within a few tokens.
    for (size_t k = j + 1; k < j + 8 && k < limit; ++k) {
      if (t[k].kind != Token::Kind::kPunct) continue;
      if (t[k].text == "{") return SkipGroup(k, "{", "}", limit);
      if (t[k].text == ";" || t[k].text == ",") break;
    }
    return j;
  }

  size_t SkipGroup(size_t open, const char* o, const char* c,
                   size_t limit) const {
    const std::vector<Token>& t = fm_->tokens;
    int d = 0;
    for (size_t k = open; k < limit; ++k) {
      if (t[k].kind != Token::Kind::kPunct) continue;
      if (t[k].text == o) ++d;
      if (t[k].text == c && --d == 0) return k;
    }
    return limit - 1;
  }

  void PopScopes() {
    held_.erase(std::remove_if(held_.begin(), held_.end(),
                               [&](const Held& h) {
                                 return h.depth >= 0 && h.depth > depth_;
                               }),
                held_.end());
  }

  std::set<std::string> HeldIds() const {
    std::set<std::string> out;
    for (const Held& h : held_) out.insert(h.id);
    return out;
  }

  bool SuppressedAt(size_t line, const char* rule) const {
    return line > 0 && Suppressed(*fm_->text, line - 1, rule);
  }

  // Records an acquisition of `id` at `line`: one observed edge per
  // currently-held mutex, a summary entry, optionally a held-stack push.
  void Acquire(const std::string& id, size_t line, bool push) {
    for (const std::string& h : HeldIds()) {
      if (h == id) continue;
      out_.edges.push_back({h, id, {qualified_, fm_->text->path, line, ""}});
    }
    if (!out_.acquires.count(id)) {
      out_.acquires[id] = {qualified_, fm_->text->path, line, ""};
    }
    if (push) held_.push_back({id, -1, line});
  }

  void AcquireRaii(const std::string& id, size_t line) {
    for (const std::string& h : HeldIds()) {
      if (h == id) continue;
      out_.edges.push_back({h, id, {qualified_, fm_->text->path, line, ""}});
    }
    if (!out_.acquires.count(id)) {
      out_.acquires[id] = {qualified_, fm_->text->path, line, ""};
    }
    held_.push_back({id, depth_, line});
  }

  void Release(const std::string& id) {
    for (size_t k = held_.size(); k-- > 0;) {
      if (held_[k].id == id) {
        held_.erase(held_.begin() + k);
        return;
      }
    }
  }

  // A blocking point in this function's own body.
  void Block(const std::string& what, size_t line,
             std::set<std::string> exempt) {
    BlockObservation o;
    o.func = qualified_;
    o.what = what;
    o.file = fm_->text->path;
    o.line = line;
    o.origin = o.file + ":" + std::to_string(line);
    o.held = HeldIds();
    o.exempt = exempt;
    o.suppressed = SuppressedAt(line, "blocking-under-lock");
    out_.block_obs.push_back(o);

    BlockSite s;
    s.what = what;
    s.file = o.file;
    s.line = line;
    s.exempt = exempt;
    if (o.suppressed) {
      // A waiver at the site covers every lock held *here*; callers
      // holding something else still get flagged.
      for (const std::string& h : o.held) s.exempt.insert(h);
    }
    AddSummaryBlock(s);
  }

  void AddSummaryBlock(const BlockSite& s) {
    for (const BlockSite& e : out_.summary_blocks) {
      if (e.file == s.file && e.line == s.line && e.what == s.what) return;
    }
    if (out_.summary_blocks.size() < 32) out_.summary_blocks.push_back(s);
  }

  // `MutexLock l(expr)` — i is the variable-name token, i+1 the '('.
  void HandleRaii(size_t i) {
    std::string arg = FirstArgSpine(i + 1);
    std::string id = resolver_.Resolve(arg, fn_->cls);
    if (!id.empty()) AcquireRaii(id, fm_->tokens[i].line);
  }

  // Spine of the first argument of the call whose '(' is at `open`:
  // the last identifier before any '[' or top-level ','.
  std::string FirstArgSpine(size_t open) const {
    const std::vector<Token>& t = fm_->tokens;
    int depth = 0;
    std::string last;
    for (size_t j = open; j < t.size(); ++j) {
      const Token& tok = t[j];
      if (tok.kind == Token::Kind::kPunct) {
        if (tok.text == "(") {
          ++depth;
          continue;
        }
        if (tok.text == ")") {
          if (--depth == 0) break;
          continue;
        }
        if (depth == 1 && (tok.text == "," || tok.text == "[")) break;
        continue;
      }
      if (tok.kind == Token::Kind::kIdent && depth == 1) last = tok.text;
    }
    return last;
  }

  // Object identifier for a member access ending at token index `j`
  // (the token before '.' / '->'). Steps back over one index/call group:
  // `shard_mu_[i]->lock()` resolves to shard_mu_.
  std::string ObjectName(size_t j) const {
    const std::vector<Token>& t = fm_->tokens;
    if (j >= t.size()) return "";
    if (t[j].kind == Token::Kind::kPunct &&
        (t[j].text == "]" || t[j].text == ")")) {
      const std::string close = t[j].text;
      const std::string open = close == "]" ? "[" : "(";
      int d = 0;
      for (size_t k = j + 1; k-- > 0;) {
        if (t[k].kind == Token::Kind::kPunct) {
          if (t[k].text == close) ++d;
          if (t[k].text == open && --d == 0) {
            if (k > 0 && t[k - 1].kind == Token::Kind::kIdent) {
              return t[k - 1].text;
            }
            return "";
          }
        }
        if (k == 0) break;
      }
      return "";
    }
    if (t[j].kind == Token::Kind::kIdent) return t[j].text;
    return "";
  }

  std::string ResolveObject(size_t j) const {
    return resolver_.Resolve(ObjectName(j), fn_->cls);
  }

  // A general call site: resolve the callee conservatively, then apply
  // its ACQUIRE/RELEASE contract and propagate its fixpoint summary.
  void HandleCall(size_t i, bool member) {
    const std::vector<Token>& t = fm_->tokens;
    const std::string& name = t[i].text;
    std::string callee = ResolveCallee(i, member);
    if (callee.empty()) return;
    size_t line = t[i].line;
    std::string callee_cls;
    size_t cut = callee.rfind("::");
    if (cut != std::string::npos) callee_cls = callee.substr(0, cut);

    // The callee's internal acquisitions and blocking points happen
    // before its ACQUIRE contract takes effect for the caller, so
    // propagation uses the held set as of the call.
    std::set<std::string> held = HeldIds();

    const FunctionDecl* ann = repo_.FindAnnotations(callee);
    if (ann != nullptr) {
      for (const std::string& cap : ann->acquires_caps) {
        std::string id = resolver_.Resolve(cap, callee_cls);
        if (!id.empty()) Acquire(id, line, /*push=*/true);
      }
      for (const std::string& cap : ann->releases_caps) {
        std::string id = resolver_.Resolve(cap, callee_cls);
        if (!id.empty()) Release(id);
      }
    }

    auto sit = summaries_.find(callee);
    if (sit == summaries_.end()) return;
    const FuncSummary& sum = sit->second;
    for (const auto& kv : sum.acquires) {
      const std::string& id = kv.first;
      std::string chain =
          callee + (kv.second.chain.empty() ? "" : " -> " + kv.second.chain);
      for (const std::string& h : held) {
        if (h == id) continue;
        out_.edges.push_back(
            {h, id, {qualified_, fm_->text->path, line, chain}});
      }
      if (!out_.acquires.count(id)) {
        out_.acquires[id] = {qualified_, fm_->text->path, line, chain};
      }
    }
    for (const BlockSite& b : sum.blocks) {
      BlockObservation o;
      o.func = qualified_;
      o.what = b.what;
      o.file = fm_->text->path;
      o.line = line;
      o.origin = b.file + ":" + std::to_string(b.line);
      o.chain = callee + (b.chain.empty() ? "" : " -> " + b.chain);
      o.held = held;
      o.exempt = b.exempt;
      o.suppressed = SuppressedAt(line, "blocking-under-lock");
      out_.block_obs.push_back(o);

      BlockSite s = b;
      s.chain = o.chain;
      if (o.suppressed) {
        for (const std::string& h : held) s.exempt.insert(h);
      }
      AddSummaryBlock(s);
    }
    (void)name;
  }

  std::string ResolveCallee(size_t i, bool member) const {
    const std::vector<Token>& t = fm_->tokens;
    const std::string& name = t[i].text;
    // Explicit qualification: A::name(...).
    if (i >= 2 && t[i - 1].kind == Token::Kind::kPunct &&
        t[i - 1].text == "::" && t[i - 2].kind == Token::Kind::kIdent) {
      std::string q = t[i - 2].text + "::" + name;
      auto it = callables_.find(name);
      if (it != callables_.end()) {
        for (const std::string& cand : it->second) {
          if (cand == q || HasSuffix(cand, ("::" + q).c_str())) return cand;
        }
      }
      return "";
    }
    if (member) {
      // Object type, when the object is a data member of the current
      // class whose type names exactly one known class.
      std::string obj = ObjectName(i - 2);
      std::string cls = ObjectClass(obj);
      if (!cls.empty()) {
        std::string q = cls + "::" + name;
        if (callables_.count(name)) {
          for (const std::string& cand : callables_.at(name)) {
            if (cand == q) return cand;
          }
        }
        return UniqueByName(name);
      }
      return UniqueByName(name);
    }
    // Bare call: same class (innermost to outermost), then unique global.
    std::string scope = fn_->cls;
    while (!scope.empty()) {
      std::string q = scope + "::" + name;
      auto it = callables_.find(name);
      if (it != callables_.end()) {
        for (const std::string& cand : it->second) {
          if (cand == q) return cand;
        }
      }
      size_t cut = scope.rfind("::");
      scope = cut == std::string::npos ? "" : scope.substr(0, cut);
    }
    return UniqueByName(name);
  }

  std::string UniqueByName(const std::string& name) const {
    auto it = callables_.find(name);
    if (it != callables_.end() && it->second.size() == 1) {
      return it->second[0];
    }
    return "";
  }

  // Class named by the declared type of field `obj` of the current class
  // (or an enclosing class). "" when unknown or ambiguous.
  std::string ObjectClass(const std::string& obj) const {
    if (obj.empty()) return "";
    std::string scope = fn_->cls;
    while (!scope.empty()) {
      auto it = repo_.classes.find(scope);
      if (it != repo_.classes.end()) {
        for (const FieldDecl& f : it->second.fields) {
          if (f.name != obj) continue;
          // Scan the type text for a known class name.
          std::string found;
          std::string word;
          for (char c : f.type + " ") {
            if (IsIdentChar(c)) {
              word += c;
              continue;
            }
            if (!word.empty() && repo_.classes.count(word)) {
              if (!found.empty() && found != word) return "";
              found = word;
            }
            word.clear();
          }
          return found;
        }
      }
      size_t cut = scope.rfind("::");
      scope = cut == std::string::npos ? "" : scope.substr(0, cut);
    }
    return "";
  }
};

}  // namespace

// --- graph building --------------------------------------------------------

namespace {

void AddEdge(LockGraph* g, const std::string& from, const std::string& to,
             bool declared, const Witness* w) {
  LockEdge& e = g->edges[{from, to}];
  e.from = from;
  e.to = to;
  e.declared |= declared;
  if (w != nullptr && e.witnesses.size() < 4) e.witnesses.push_back(*w);
}

void FindCycles(LockGraph* g) {
  // Adjacency.
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const auto& kv : g->edges) adj[kv.first.first].push_back(&kv.second);

  // Enumerate simple cycles whose smallest node is the start (each cycle
  // found exactly once). Graphs here have a handful of nodes; depth is
  // capped defensively.
  std::vector<std::string> path;
  std::vector<const LockEdge*> epath;
  std::set<std::string> on_path;

  std::function<void(const std::string&, const std::string&)> dfs =
      [&](const std::string& start, const std::string& cur) {
        if (g->cycles.size() >= 20 || path.size() > 8) return;
        auto it = adj.find(cur);
        if (it == adj.end()) return;
        for (const LockEdge* e : it->second) {
          if (e->to == start) {
            LockGraph::Cycle c;
            c.nodes = path;
            c.edges = epath;
            c.edges.push_back(e);
            g->cycles.push_back(std::move(c));
            continue;
          }
          if (e->to < start || on_path.count(e->to)) continue;
          path.push_back(e->to);
          epath.push_back(e);
          on_path.insert(e->to);
          dfs(start, e->to);
          on_path.erase(e->to);
          epath.pop_back();
          path.pop_back();
        }
      };

  for (const std::string& n : g->nodes) {
    path = {n};
    epath.clear();
    on_path = {n};
    dfs(n, n);
  }
}

}  // namespace

LockGraph BuildLockGraph(const RepoModel& repo, const LockResolver& resolver) {
  LockGraph g;
  g.nodes = resolver.AllMutexes();

  // Declared edges from field annotations.
  for (const auto& kv : repo.classes) {
    for (const FieldDecl& f : kv.second.fields) {
      if (!f.is_mutex) continue;
      std::string self = kv.first + "::" + f.name;
      for (const std::string& arg : f.acquired_after) {
        std::string other = resolver.Resolve(arg, kv.first);
        if (!other.empty()) AddEdge(&g, other, self, true, nullptr);
      }
      for (const std::string& arg : f.acquired_before) {
        std::string other = resolver.Resolve(arg, kv.first);
        if (!other.empty()) AddEdge(&g, self, other, true, nullptr);
      }
    }
  }

  // Index of callable names -> qualified names (definitions and annotated
  // declarations both count).
  std::map<std::string, std::vector<std::string>> callables;
  {
    std::set<std::string> seen;
    auto add = [&](const std::string& qualified, const std::string& name) {
      if (!seen.insert(qualified).second) return;
      callables[name].push_back(qualified);
    };
    for (const auto& kv : repo.defs_by_qualified) {
      size_t cut = kv.first.rfind("::");
      add(kv.first,
          cut == std::string::npos ? kv.first : kv.first.substr(cut + 2));
    }
    for (const auto& kv : repo.annotations) {
      add(kv.first, kv.second.name);
    }
  }

  // Seed summaries for functions the walker skips (NO_THREAD_SAFETY_ANALYSIS
  // escape hatches) from their `// bih-analyze: acquires(...)` directives.
  for (const auto& kv : repo.annotations) {
    const FunctionDecl& fn = kv.second;
    if (!fn.no_thread_safety_analysis) continue;
    FuncSummary& sum = g.summaries[kv.first];
    for (const std::string& cap : fn.acquires_caps) {
      std::string id = resolver.Resolve(cap, fn.cls);
      if (!id.empty() && !sum.acquires.count(id)) {
        sum.acquires[id] = {kv.first, fn.file, fn.line, ""};
      }
    }
  }

  // Fixpoint over function summaries.
  BodyWalker walker(repo, resolver, g.summaries, callables);
  auto skip = [&](const FunctionDecl& fn) {
    if (!fn.has_body) return true;
    std::string q = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
    const FunctionDecl* ann = repo.FindAnnotations(q);
    return ann != nullptr && ann->no_thread_safety_analysis;
  };
  for (int iter = 0; iter < 20; ++iter) {
    bool changed = false;
    for (const FileModel& fm : repo.files) {
      for (const FunctionDecl& fn : fm.functions) {
        if (skip(fn)) continue;
        std::string q = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
        WalkResult r = walker.Walk(fm, fn);
        FuncSummary& sum = g.summaries[q];
        for (const auto& kv : r.acquires) {
          if (sum.acquires.insert(kv).second) changed = true;
        }
        for (const BlockSite& b : r.summary_blocks) {
          bool present = false;
          for (const BlockSite& e : sum.blocks) {
            present = present ||
                      (e.file == b.file && e.line == b.line && e.what == b.what);
          }
          if (!present && sum.blocks.size() < 32) {
            sum.blocks.push_back(b);
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  // Final walk: observed edges and block observations for the passes.
  for (const FileModel& fm : repo.files) {
    for (const FunctionDecl& fn : fm.functions) {
      if (skip(fn)) continue;
      WalkResult r = walker.Walk(fm, fn);
      for (const EdgeObs& e : r.edges) {
        AddEdge(&g, e.from, e.to, false, &e.w);
      }
      for (BlockObservation& o : r.block_obs) {
        g.block_observations.push_back(std::move(o));
      }
    }
  }

  // Transitive closure of declared edges.
  std::vector<std::string> nodes(g.nodes.begin(), g.nodes.end());
  std::set<std::pair<std::string, std::string>>& cl = g.declared_closure;
  for (const auto& kv : g.edges) {
    if (kv.second.declared) cl.insert(kv.first);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    std::vector<std::pair<std::string, std::string>> add;
    for (const auto& ab : cl) {
      for (const auto& bc : cl) {
        if (ab.second != bc.first) continue;
        std::pair<std::string, std::string> ac{ab.first, bc.second};
        if (!cl.count(ac)) add.push_back(ac);
      }
    }
    for (const auto& p : add) {
      cl.insert(p);
      grew = true;
    }
  }

  FindCycles(&g);
  return g;
}

}  // namespace analysis
}  // namespace bih
