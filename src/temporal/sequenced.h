#ifndef TPCBIH_TEMPORAL_SEQUENCED_H_
#define TPCBIH_TEMPORAL_SEQUENCED_H_

#include <utility>
#include <vector>

#include "common/period.h"
#include "common/value.h"

namespace bih {

// Column assignment applied by an update: row[column] = value.
struct ColumnAssignment {
  int column;
  Value value;
};

// Result of planning a sequenced application-time DML statement against the
// existing application-time versions of one key. `to_close` indexes into the
// input version vector: those versions end (move to history in system time).
// `to_insert` are replacement rows with adjusted application-time periods.
struct SequencedOps {
  std::vector<size_t> to_close;
  std::vector<Row> to_insert;
};

// Plans a SEQUENCED VALIDTIME UPDATE (Snodgrass): rows whose application
// period [begin_col, end_col) overlaps `update_period` are split so that the
// overlapping part carries the assignments while the non-overlapping
// leftovers keep the old values. Rows outside the period are untouched.
//
// `versions` are the currently visible (in system time) application-time
// versions of a single key. The begin/end columns must hold int64 values.
SequencedOps PlanSequencedUpdate(const std::vector<Row>& versions,
                                 int begin_col, int end_col,
                                 const Period& update_period,
                                 const std::vector<ColumnAssignment>& set);

// Plans a SEQUENCED VALIDTIME DELETE: the overlap with `delete_period`
// disappears; leftovers before/after survive as new versions.
SequencedOps PlanSequencedDelete(const std::vector<Row>& versions,
                                 int begin_col, int end_col,
                                 const Period& delete_period);

// Plans a NONSEQUENCED (overwrite) update: every version overlapping the
// period is closed and one new row spanning exactly `update_period` with the
// assignments applied (based on the latest overlapped version's values) is
// inserted. Matches the "Overwrite App. Time" operations of Table 2.
SequencedOps PlanOverwriteUpdate(const std::vector<Row>& versions,
                                 int begin_col, int end_col,
                                 const Period& update_period,
                                 const std::vector<ColumnAssignment>& set);

// Returns the application-time period stored in `row`.
inline Period RowPeriod(const Row& row, int begin_col, int end_col) {
  return Period(row[static_cast<size_t>(begin_col)].AsInt(),
                row[static_cast<size_t>(end_col)].AsInt());
}

// Writes `p` into the period columns of `row`.
void SetRowPeriod(Row* row, int begin_col, int end_col, const Period& p);

}  // namespace bih

#endif  // TPCBIH_TEMPORAL_SEQUENCED_H_
