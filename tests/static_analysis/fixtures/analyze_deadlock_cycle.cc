// Fixture: must trip [lock-order] with a deadlock cycle. TransferAB and
// TransferBA acquire the same two mutexes in opposite orders — the
// canonical AB/BA deadlock. bih_analyze must name BOTH witness paths in
// the cycle finding (the test regex asserts TransferAB and TransferBA
// appear in the same message).
class Account {
 public:
  void TransferAB() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
    ++balance_a_;
    --balance_b_;
  }

  void TransferBA() {
    MutexLock b(b_mu_);
    MutexLock a(a_mu_);
    --balance_a_;
    ++balance_b_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int balance_a_ GUARDED_BY(a_mu_) = 0;
  int balance_b_ GUARDED_BY(b_mu_) = 0;
};
