#include "common/chrono.h"

#include <cstdio>

#include "common/status.h"

namespace bih {

namespace {

// Days-from-civil / civil-from-days algorithms by Howard Hinnant
// (public domain), the standard proleptic Gregorian conversions.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                                     // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                          // [1, 12]
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Date Date::FromYMD(int year, int month, int day) {
  BIH_CHECK(month >= 1 && month <= 12);
  BIH_CHECK(day >= 1 && day <= 31);
  return Date(static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month), static_cast<unsigned>(day))));
}

void Date::ToYMD(int* year, int* month, int* day) const {
  unsigned m, d;
  CivilFromDays(days_, year, &m, &d);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

std::string Date::ToString() const {
  int y, m, d;
  ToYMD(&y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

bool Date::Parse(const std::string& s, Date* out) {
  int y, m, d;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *out = FromYMD(y, m, d);
  return true;
}

std::string Timestamp::ToString() const {
  int64_t days = micros_ / kMicrosPerDay;
  int64_t rem = micros_ % kMicrosPerDay;
  if (rem < 0) {
    rem += kMicrosPerDay;
    days -= 1;
  }
  Date d(static_cast<int32_t>(days));
  int64_t secs = rem / kMicrosPerSecond;
  int64_t us = rem % kMicrosPerSecond;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s %02d:%02d:%02d.%06d",
                d.ToString().c_str(), static_cast<int>(secs / 3600),
                static_cast<int>((secs / 60) % 60), static_cast<int>(secs % 60),
                static_cast<int>(us));
  return buf;
}

}  // namespace bih
