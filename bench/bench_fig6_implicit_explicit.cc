// Figure 6: implicit current time travel (no system-time clause) vs an
// explicit AS OF <current timestamp>, on the engines with a native
// current/history split (A, B, C).
//
// Expected shape (Section 5.3.5): identical answers, but the explicit
// variant reads the history partition because no optimizer recognizes that
// AS OF <now> could prune it — explicit is consistently slower.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  for (const std::string letter : {"A", "B", "C"}) {
    TemporalEngine* e = &w.Engine(letter);
    benchmark::RegisterBenchmark(
        ("Fig6/T7_implicit_current/System" + letter).c_str(),
        [e](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(T7Implicit(*e));
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Fig6/T7_explicit_current/System" + letter).c_str(),
        [e](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(T7Explicit(*e));
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
