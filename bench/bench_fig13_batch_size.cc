// Figure 13: effect of the loading batch size (scenarios per transaction)
// on the key-range query of Fig. 12 — fewer, larger transactions mean
// fewer distinct system timestamps and fewer undo flushes.
//
// Expected shape (Section 5.5.4): System B benefits most from growing
// batches; the other systems change little.
#include <cstdio>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void Run() {
  const double h = EnvScale("BIH_H", 0.001);
  const double m = EnvScale("BIH_M", 0.002);
  PrintHeader("Figure 13: key query cost vs loading batch size");
  std::printf("%-12s %-12s %14s\n", "batch", "engine", "K1[ms]");
  TpchData initial = GenerateTpch({h, 42});
  GeneratorConfig gcfg;
  gcfg.m = m;
  gcfg.seed = 43;
  HistoryGenerator gen(initial, gcfg);
  History history = gen.Generate();
  std::map<int64_t, int64_t> cust_ops;
  for (const HistoryTransaction& txn : history) {
    for (const Operation& op : txn.ops) {
      if (op.table == "CUSTOMER" && op.kind != Operation::Kind::kInsert) {
        ++cust_ops[op.key[0].AsInt()];
      }
    }
  }
  int64_t hot = 1;
  for (const auto& [k, n] : cust_ops) {
    if (n > cust_ops[hot]) hot = k;
  }
  for (size_t batch : {size_t{1}, size_t{10}, size_t{100}, size_t{1000}}) {
    for (const std::string& letter : AllEngineLetters()) {
      auto engine = LoadEngine(letter, initial, history, batch);
      Status st = ApplyIndexSetting(*engine, IndexSetting::kKeyTime);
      BIH_CHECK_MSG(st.ok(), st.ToString());
      TemporalScanSpec spec;
      spec.app_time = TemporalSelector::All();
      spec.system_time = TemporalSelector::All();
      double ms = TimeMs([&] { K1(*engine, hot, spec); }, 5);
      std::printf("%-12zu System%-6s %14.3f\n", batch, letter.c_str(), ms);
    }
  }
  std::printf("\nShape check: System B improves as the batch grows; the "
              "other systems are largely insensitive.\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
