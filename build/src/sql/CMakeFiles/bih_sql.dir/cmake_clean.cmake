file(REMOVE_RECURSE
  "CMakeFiles/bih_sql.dir/executor.cc.o"
  "CMakeFiles/bih_sql.dir/executor.cc.o.d"
  "CMakeFiles/bih_sql.dir/lexer.cc.o"
  "CMakeFiles/bih_sql.dir/lexer.cc.o.d"
  "CMakeFiles/bih_sql.dir/parser.cc.o"
  "CMakeFiles/bih_sql.dir/parser.cc.o.d"
  "libbih_sql.a"
  "libbih_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
