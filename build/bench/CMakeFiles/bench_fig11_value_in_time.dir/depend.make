# Empty dependencies file for bench_fig11_value_in_time.
# This may be replaced when dependencies are built.
