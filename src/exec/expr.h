#ifndef TPCBIH_EXEC_EXPR_H_
#define TPCBIH_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace bih {

// Scalar expression tree evaluated row-at-a-time. Booleans are int64 0/1;
// a NULL operand generally yields NULL (SQL three-valued logic at the level
// the benchmark queries need: filters treat NULL as false).
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Op {
    kColumn,
    kLiteral,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kIsNull,
    kContains,    // string containment (LIKE '%x%')
    kStartsWith,  // LIKE 'x%'
    kBetween,     // a <= x <= b, children: {x, a, b}
    kYear,        // EXTRACT(YEAR FROM <date column>)
  };

  Expr(Op op, std::vector<ExprPtr> children)
      : op_(op), children_(std::move(children)) {}
  Expr(int column) : op_(Op::kColumn), column_(column) {}
  explicit Expr(Value literal) : op_(Op::kLiteral), literal_(std::move(literal)) {}

  Value Eval(const Row& row) const;

  // Convenience: evaluates as a filter predicate (NULL -> false).
  bool Test(const Row& row) const {
    Value v = Eval(row);
    return !v.is_null() && v.AsInt() != 0;
  }

  Op op() const { return op_; }
  int column() const { return column_; }
  // Structural accessors for the plan optimizer (expression analysis and
  // column rebasing). `literal()` is only meaningful for kLiteral nodes.
  const Value& literal() const { return literal_; }
  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  Op op_;
  int column_ = -1;
  Value literal_;
  std::vector<ExprPtr> children_;
};

// Builder helpers; the workload queries compose these.
ExprPtr Col(int column);
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr IsNull(ExprPtr a);
ExprPtr Contains(ExprPtr s, ExprPtr needle);
ExprPtr StartsWith(ExprPtr s, ExprPtr prefix);
ExprPtr Between(ExprPtr x, ExprPtr lo, ExprPtr hi);
ExprPtr YearOf(ExprPtr date);

}  // namespace bih

#endif  // TPCBIH_EXEC_EXPR_H_
