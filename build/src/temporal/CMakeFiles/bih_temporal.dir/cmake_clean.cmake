file(REMOVE_RECURSE
  "CMakeFiles/bih_temporal.dir/sequenced.cc.o"
  "CMakeFiles/bih_temporal.dir/sequenced.cc.o.d"
  "CMakeFiles/bih_temporal.dir/temporal.cc.o"
  "CMakeFiles/bih_temporal.dir/temporal.cc.o.d"
  "CMakeFiles/bih_temporal.dir/timeline.cc.o"
  "CMakeFiles/bih_temporal.dir/timeline.cc.o.d"
  "CMakeFiles/bih_temporal.dir/timeline_index.cc.o"
  "CMakeFiles/bih_temporal.dir/timeline_index.cc.o.d"
  "libbih_temporal.a"
  "libbih_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
