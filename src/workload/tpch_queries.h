#ifndef TPCBIH_WORKLOAD_TPCH_QUERIES_H_
#define TPCBIH_WORKLOAD_TPCH_QUERIES_H_

#include "exec/plan.h"
#include "workload/context.h"

namespace bih {

// The 22 TPC-H queries, extended so that every table access runs under the
// given temporal coordinates (the H query class of Section 3.3: "use the 22
// standard TPC-H queries and extend them to allow the specification of both
// a system and an application time point"). Passing a default spec yields
// the plain (current) TPC-H semantics used for the non-temporal baseline.
//
// Two deliberate substitutions (our schema, like paper Figure 1, carries no
// comment columns on ORDERS/SUPPLIER/PART):
//  * Q13's o_comment filter becomes an order-priority filter;
//  * Q16's supplier-complaints filter becomes a negative-balance filter.
// Both preserve the plan shape (anti-join/filtered join); see DESIGN.md.
Rows TpchQuery(int number, TemporalEngine& engine,
               const TemporalScanSpec& spec);

}  // namespace bih

#endif  // TPCBIH_WORKLOAD_TPCH_QUERIES_H_
