# Empty dependencies file for bench_fig14_range_timeslice.
# This may be replaced when dependencies are built.
