#include "storage/btree_index.h"

#include <algorithm>

namespace bih {

namespace {
constexpr size_t kMaxEntries = 64;  // fanout; split threshold for both levels
}  // namespace

int CompareKeys(const IndexKey& a, const IndexKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

struct BTreeIndex::LeafEntry {
  IndexKey key;
  RowId rid;
};

struct BTreeIndex::Node {
  bool is_leaf;
  Node* parent = nullptr;
  // Leaf payload.
  std::vector<LeafEntry> entries;
  Node* next = nullptr;  // leaf chain for range scans
  Node* prev = nullptr;
  // Internal payload: children.size() == separators.size() + 1. Child i
  // holds keys < separators[i]; child i+1 holds keys >= separators[i].
  std::vector<IndexKey> separators;
  std::vector<Node*> children;

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

namespace {

// (key, rid) pair ordering used throughout: by key, then by row id so that
// duplicate keys have a deterministic total order.
int CompareEntry(const IndexKey& key, RowId rid, const IndexKey& ekey,
                 RowId erid) {
  int c = CompareKeys(key, ekey);
  if (c != 0) return c;
  if (rid == erid) return 0;
  return rid < erid ? -1 : 1;
}

}  // namespace

BTreeIndex::BTreeIndex() {
  root_ = new Node(/*leaf=*/true);
  first_leaf_ = root_;
}

BTreeIndex::~BTreeIndex() {
  std::function<void(Node*)> destroy = [&](Node* node) {
    if (!node->is_leaf) {
      for (auto* c : node->children) destroy(c);
    }
    delete node;
  };
  destroy(root_);
}

BTreeIndex::Node* BTreeIndex::FindLeaf(const IndexKey& key, RowId rid) const {
  // Descends to the leftmost leaf that can contain `key`. On equality with a
  // separator we go left, because equal keys may span a node boundary and
  // scans walk the leaf chain forward from the found position.
  (void)rid;
  Node* n = root_;
  while (!n->is_leaf) {
    size_t i = 0;
    while (i < n->separators.size()) {
      if (CompareKeys(key, n->separators[i]) <= 0) break;
      ++i;
    }
    n = n->children[i];
  }
  return n;
}

void BTreeIndex::Insert(const IndexKey& key, RowId rid) {
  Node* leaf = FindLeaf(key, rid);
  InsertIntoLeaf(leaf, LeafEntry{key, rid});
  ++size_;
}

void BTreeIndex::InsertIntoLeaf(Node* leaf, LeafEntry entry) {
  auto it = std::upper_bound(
      leaf->entries.begin(), leaf->entries.end(), entry,
      [](const LeafEntry& a, const LeafEntry& b) {
        return CompareEntry(a.key, a.rid, b.key, b.rid) < 0;
      });
  leaf->entries.insert(it, std::move(entry));
  if (leaf->entries.size() > kMaxEntries) SplitLeaf(leaf);
}

void BTreeIndex::SplitLeaf(Node* leaf) {
  auto* right = new Node(/*leaf=*/true);
  size_t mid = leaf->entries.size() / 2;
  right->entries.assign(std::make_move_iterator(leaf->entries.begin() + mid),
                        std::make_move_iterator(leaf->entries.end()));
  leaf->entries.resize(mid);
  right->next = leaf->next;
  if (right->next) right->next->prev = right;
  right->prev = leaf;
  leaf->next = right;
  InsertIntoParent(leaf, right->entries.front().key, right);
}

void BTreeIndex::SplitInternal(Node* node) {
  auto* right = new Node(/*leaf=*/false);
  size_t mid = node->separators.size() / 2;
  IndexKey up = std::move(node->separators[mid]);
  right->separators.assign(
      std::make_move_iterator(node->separators.begin() + mid + 1),
      std::make_move_iterator(node->separators.end()));
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  for (auto* c : right->children) c->parent = right;
  node->separators.resize(mid);
  node->children.resize(mid + 1);
  InsertIntoParent(node, std::move(up), right);
}

void BTreeIndex::InsertIntoParent(Node* left, IndexKey sep, Node* right) {
  if (left->parent == nullptr) {
    auto* new_root = new Node(/*leaf=*/false);
    new_root->separators.push_back(std::move(sep));
    new_root->children.push_back(left);
    new_root->children.push_back(right);
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  Node* parent = left->parent;
  right->parent = parent;
  size_t pos = 0;
  while (pos < parent->children.size() && parent->children[pos] != left) ++pos;
  BIH_CHECK(pos < parent->children.size());
  parent->separators.insert(parent->separators.begin() + pos, std::move(sep));
  parent->children.insert(parent->children.begin() + pos + 1, right);
  if (parent->separators.size() > kMaxEntries) SplitInternal(parent);
}

bool BTreeIndex::Erase(const IndexKey& key, RowId rid) {
  Node* leaf = FindLeaf(key, rid);
  // Equal keys may continue in subsequent leaves; walk the chain.
  for (Node* n = leaf; n != nullptr; n = n->next) {
    for (size_t i = 0; i < n->entries.size(); ++i) {
      int c = CompareKeys(n->entries[i].key, key);
      if (c > 0) return false;
      if (c == 0 && n->entries[i].rid == rid) {
        n->entries.erase(n->entries.begin() + static_cast<long>(i));
        --size_;
        return true;
      }
    }
  }
  return false;
}

void BTreeIndex::ScanRange(
    const IndexKey& lo, const IndexKey& hi,
    const std::function<bool(const IndexKey&, RowId)>& fn) const {
  Node* n;
  size_t start = 0;
  if (lo.empty()) {
    n = first_leaf_;
  } else {
    n = FindLeaf(lo, 0);
    // The first qualifying entry may be in this leaf or later ones.
    while (n && start >= n->entries.size()) {
      n = n->next;
      start = 0;
    }
    if (n) {
      auto it = std::lower_bound(n->entries.begin(), n->entries.end(), lo,
                                 [](const LeafEntry& e, const IndexKey& k) {
                                   return CompareKeys(e.key, k) < 0;
                                 });
      start = static_cast<size_t>(it - n->entries.begin());
    }
  }
  for (; n != nullptr; n = n->next, start = 0) {
    for (size_t i = start; i < n->entries.size(); ++i) {
      const LeafEntry& e = n->entries[i];
      if (!hi.empty() && CompareKeys(e.key, hi) >= 0) return;
      if (!fn(e.key, e.rid)) return;
    }
  }
}

void BTreeIndex::ScanPrefix(
    const IndexKey& prefix,
    const std::function<bool(const IndexKey&, RowId)>& fn) const {
  ScanRange(prefix, {}, [&](const IndexKey& key, RowId rid) {
    // Stop once the prefix no longer matches.
    if (key.size() < prefix.size()) return false;
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (key[i].Compare(prefix[i]) != 0) return false;
    }
    return fn(key, rid);
  });
}

void BTreeIndex::Lookup(const IndexKey& key,
                        const std::function<bool(RowId)>& fn) const {
  ScanPrefix(key, [&](const IndexKey& k, RowId rid) {
    if (k.size() != key.size()) return true;  // longer key, same prefix
    return fn(rid);
  });
}

bool BTreeIndex::FirstKey(IndexKey* out) const {
  for (Node* n = first_leaf_; n != nullptr; n = n->next) {
    if (!n->entries.empty()) {
      *out = n->entries.front().key;
      return true;
    }
  }
  return false;
}

bool BTreeIndex::LastKey(IndexKey* out) const {
  Node* n = root_;
  while (!n->is_leaf) n = n->children.back();
  // Lazy deletion can leave trailing empty leaves; walk back if needed.
  while (n != nullptr && n->entries.empty()) n = n->prev;
  if (n == nullptr) return false;
  *out = n->entries.back().key;
  return true;
}

int BTreeIndex::height() const {
  int h = 1;
  for (Node* n = root_; !n->is_leaf; n = n->children[0]) ++h;
  return h;
}

bool BTreeIndex::CheckInvariants() const {
  // Key ordering along the leaf chain. (Within a run of equal keys the row
  // id order is only guaranteed within one leaf; the index is a multimap and
  // scans never rely on cross-leaf rid order.)
  const LeafEntry* prev = nullptr;
  size_t count = 0;
  for (Node* n = first_leaf_; n != nullptr; n = n->next) {
    BIH_CHECK(n->is_leaf);
    for (const LeafEntry& e : n->entries) {
      if (prev != nullptr && CompareKeys(prev->key, e.key) > 0) {
        return false;
      }
      prev = &e;
      ++count;
    }
  }
  if (count != size_) return false;
  // Separator sanity on internal nodes.
  std::function<bool(Node*)> check = [&](Node* n) -> bool {
    if (n->is_leaf) return true;
    if (n->children.size() != n->separators.size() + 1) return false;
    for (size_t i = 0; i + 1 < n->separators.size(); ++i) {
      if (CompareKeys(n->separators[i], n->separators[i + 1]) > 0) return false;
    }
    for (auto* c : n->children) {
      if (c->parent != n) return false;
      if (!check(c)) return false;
    }
    return true;
  };
  return check(root_);
}

}  // namespace bih
