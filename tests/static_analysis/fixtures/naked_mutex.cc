// Fixture: must trip [naked-mutex]. Raw standard-library primitives bypass
// the annotated wrappers, so -Wthread-safety cannot see the lock discipline.
#include <mutex>

std::mutex g_mu;
int g_count = 0;

void Bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_count;
}
