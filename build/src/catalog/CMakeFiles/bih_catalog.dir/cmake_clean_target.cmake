file(REMOVE_RECURSE
  "libbih_catalog.a"
)
