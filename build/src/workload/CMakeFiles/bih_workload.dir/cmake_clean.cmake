file(REMOVE_RECURSE
  "CMakeFiles/bih_workload.dir/context.cc.o"
  "CMakeFiles/bih_workload.dir/context.cc.o.d"
  "CMakeFiles/bih_workload.dir/queries.cc.o"
  "CMakeFiles/bih_workload.dir/queries.cc.o.d"
  "CMakeFiles/bih_workload.dir/tpch_queries.cc.o"
  "CMakeFiles/bih_workload.dir/tpch_queries.cc.o.d"
  "libbih_workload.a"
  "libbih_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
