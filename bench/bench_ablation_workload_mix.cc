// Ablation beyond the paper: how the scenario mix (Table 1) shapes the
// engine comparison. The generator's probabilities are a knob; three
// characteristic mixes stress different architecture trade-offs:
//  * paper mix      — Table 1 as published;
//  * insert-heavy   — append-mostly history (new orders dominate);
//  * update-heavy   — churn on existing keys (payments/stock/prices).
// For each mix: history size per table, plus T2 system time travel and K1
// key-in-time costs per engine.
#include <cstdio>

#include "bench_common.h"
#include "tpch/schema.h"

namespace bih {
namespace bench {
namespace {

struct Mix {
  const char* name;
  std::vector<double> weights;  // Table-1 scenario order
};

void Run() {
  const double h = EnvScale("BIH_H", 0.002);
  const double m = EnvScale("BIH_M", 0.004);
  TpchData initial = GenerateTpch({h, 42});

  const std::vector<Mix> mixes = {
      {"paper", {}},
      {"insert-heavy", {0.70, 0.02, 0.10, 0.08, 0.02, 0.02, 0.02, 0.03, 0.01}},
      {"update-heavy", {0.06, 0.02, 0.22, 0.22, 0.14, 0.10, 0.12, 0.10, 0.02}},
  };

  PrintHeader("Ablation: scenario-mix sensitivity");
  for (const Mix& mix : mixes) {
    GeneratorConfig gcfg;
    gcfg.m = m;
    gcfg.seed = 19;
    gcfg.scenario_weights = mix.weights;
    HistoryGenerator gen(initial, gcfg);
    History history = gen.Generate();
    std::printf("\nmix=%s (%lld ops)\n", mix.name,
                static_cast<long long>(gen.stats().total_operations));
    for (const std::string& letter : AllEngineLetters()) {
      auto engine = LoadEngine(letter, initial, history);
      TableStats ord = engine->GetTableStats("ORDERS");
      TableStats cust = engine->GetTableStats("CUSTOMER");
      // Hot customer of this mix.
      int64_t hot = 1;
      {
        std::map<int64_t, int64_t> ops;
        for (const HistoryTransaction& txn : history) {
          for (const Operation& op : txn.ops) {
            if (op.table == "CUSTOMER" && op.kind != Operation::Kind::kInsert) {
              ++ops[op.key[0].AsInt()];
            }
          }
        }
        for (const auto& [k, n] : ops) {
          if (n > ops[hot]) hot = k;
        }
      }
      Timestamp mid(engine->Now().micros() / 2 +
                    Timestamp::FromDate(Date::FromYMD(1995, 6, 17)).micros() / 2);
      double t2 = TimeMs([&] {
        T2(*engine, TemporalScanSpec::SystemAsOf(mid.micros()));
      });
      TemporalScanSpec full;
      full.system_time = TemporalSelector::All();
      full.app_time = TemporalSelector::All();
      double k1 = TimeMs([&] { K1(*engine, hot, full); }, 5);
      std::printf(
          "  System%-2s orders(cur/hist)=%6zu/%-6zu cust=%5zu/%-5zu "
          "T2_sysTT=%8.3fms  K1=%8.3fms\n",
          letter.c_str(), ord.current_rows, ord.history_rows,
          cust.current_rows, cust.history_rows, t2, k1);
    }
  }
  std::printf(
      "\nShape check: the update-heavy mix widens the gap between the "
      "current/history-split systems (A, C) and the single-table System D "
      "on time travel, and deepens System B's reconstruction penalty; the "
      "insert-heavy mix narrows all gaps (history stays small).\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
