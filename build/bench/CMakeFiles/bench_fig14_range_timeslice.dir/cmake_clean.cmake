file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_range_timeslice.dir/bench_fig14_range_timeslice.cc.o"
  "CMakeFiles/bench_fig14_range_timeslice.dir/bench_fig14_range_timeslice.cc.o.d"
  "bench_fig14_range_timeslice"
  "bench_fig14_range_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_range_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
