#include <cstdio>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "bih/generator.h"
#include "bih/history.h"
#include "tpch/schema.h"
#include "workload/context.h"

namespace bih {
namespace {

class HistoryGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig tcfg;
    tcfg.scale = 0.001;
    tcfg.seed = 5;
    initial_ = new TpchData(GenerateTpch(tcfg));
    GeneratorConfig gcfg;
    gcfg.m = 0.003;  // 3000 scenarios
    gcfg.seed = 6;
    gen_ = new HistoryGenerator(*initial_, gcfg);
    history_ = new History(gen_->Generate());
  }
  static void TearDownTestSuite() {
    delete history_;
    delete gen_;
    delete initial_;
  }
  static TpchData* initial_;
  static HistoryGenerator* gen_;
  static History* history_;
};

TpchData* HistoryGenTest::initial_ = nullptr;
HistoryGenerator* HistoryGenTest::gen_ = nullptr;
History* HistoryGenTest::history_ = nullptr;

TEST_F(HistoryGenTest, TransactionCountMatchesScale) {
  EXPECT_EQ(3000u, history_->size());
  EXPECT_EQ(3000, gen_->stats().total_transactions);
}

TEST_F(HistoryGenTest, ScenarioMixFollowsTable1) {
  // Table 1 probabilities within sampling tolerance.
  const HistoryStats& st = gen_->stats();
  std::vector<double> probs = ScenarioProbabilities();
  for (size_t i = 0; i < probs.size(); ++i) {
    double got = static_cast<double>(st.scenario_counts[i]) / 3000.0;
    EXPECT_NEAR(probs[i], got, 0.03)
        << ScenarioName(static_cast<Scenario>(i));
  }
}

TEST_F(HistoryGenTest, Table2OperationShape) {
  const auto& per_table = gen_->stats().per_table;
  // NATION and REGION are never touched.
  EXPECT_EQ(0u, per_table.count("NATION"));
  EXPECT_EQ(0u, per_table.count("REGION"));
  // SUPPLIER: only non-temporal updates (degenerate table).
  const TableOpStats& sup = per_table.at("SUPPLIER");
  EXPECT_GT(sup.nontemporal_update, 0);
  EXPECT_EQ(sup.TotalOps(), sup.nontemporal_update);
  // PART and PARTSUPP receive only updates, never inserts or deletes.
  for (const char* t : {"PART", "PARTSUPP"}) {
    const TableOpStats& st = per_table.at(t);
    EXPECT_EQ(0, st.app_insert + st.nontemporal_insert) << t;
    EXPECT_EQ(0, st.deletes) << t;
    EXPECT_GT(st.app_update + st.overwrite_app, 0) << t;
  }
  // PART, PARTSUPP, CUSTOMER(no), ORDERS see overwrites (Table 2 flags).
  EXPECT_GT(per_table.at("PART").overwrite_app, 0);
  EXPECT_GT(per_table.at("PARTSUPP").overwrite_app, 0);
  EXPECT_GT(per_table.at("ORDERS").overwrite_app, 0);
  // LINEITEM is insert-dominated (> 60 percent of insert+update+delete).
  const TableOpStats& li = per_table.at("LINEITEM");
  // CUSTOMER is update-dominated (> 70 percent).
  const TableOpStats& cu = per_table.at("CUSTOMER");
  double li_ins = static_cast<double>(li.app_insert + li.nontemporal_insert);
  EXPECT_GT(li_ins / static_cast<double>(li.TotalOps()), 0.55);
  double cu_upd =
      static_cast<double>(cu.app_update + cu.nontemporal_update);
  EXPECT_GT(cu_upd / static_cast<double>(cu.TotalOps()), 0.65);
  // ORDERS sees a mix of inserts, updates and deletes.
  const TableOpStats& ord = per_table.at("ORDERS");
  EXPECT_GT(ord.app_insert, 0);
  EXPECT_GT(ord.app_update + ord.nontemporal_update, 0);
  EXPECT_GT(ord.deletes, 0);
}

TEST_F(HistoryGenTest, DeterministicForSeed) {
  GeneratorConfig gcfg;
  gcfg.m = 0.003;
  gcfg.seed = 6;
  HistoryGenerator again(*initial_, gcfg);
  History h2 = again.Generate();
  ASSERT_EQ(history_->size(), h2.size());
  for (size_t i = 0; i < history_->size(); ++i) {
    ASSERT_EQ((*history_)[i].scenario, h2[i].scenario) << i;
    ASSERT_EQ((*history_)[i].ops.size(), h2[i].ops.size()) << i;
  }
}

TEST_F(HistoryGenTest, ReplayMatchesEndStateOnEveryEngine) {
  TpchData end = gen_->EndState();
  // Count current rows per table from the generator's own state.
  for (const std::string& letter : AllEngineLetters()) {
    auto engine = LoadEngine(letter, *initial_, *history_);
    for (const TableDef& def : BiHSchema()) {
      ScanRequest req;
      req.table = def.name;
      size_t n = 0;
      engine->Scan(req, [&](const Row&) {
        ++n;
        return true;
      });
      EXPECT_EQ(end.TableRows(def.name).size(), n)
          << def.name << " on engine " << letter;
    }
  }
}

TEST_F(HistoryGenTest, ReplayBalancesMatchEndState) {
  TpchData end = gen_->EndState();
  std::map<int64_t, double> want;
  for (const Row& r : end.customer) {
    want[r[customer::kCustKey].AsInt()] = r[customer::kAcctBal].AsDouble();
  }
  auto engine = LoadEngine("A", *initial_, *history_);
  ScanRequest req;
  req.table = "CUSTOMER";
  engine->Scan(req, [&](const Row& r) {
    auto it = want.find(r[customer::kCustKey].AsInt());
    EXPECT_TRUE(it != want.end());
    if (it != want.end()) {
      EXPECT_DOUBLE_EQ(it->second, r[customer::kAcctBal].AsDouble());
    }
    return true;
  });
}

TEST_F(HistoryGenTest, BatchingPreservesFinalState) {
  auto one = LoadEngine("A", *initial_, *history_, 1);
  auto batched = LoadEngine("A", *initial_, *history_, 64);
  for (const TableDef& def : BiHSchema()) {
    TableStats a = one->GetTableStats(def.name);
    TableStats b = batched->GetTableStats(def.name);
    EXPECT_EQ(a.current_rows, b.current_rows) << def.name;
    // Larger transactions absorb intra-batch churn (same-timestamp version
    // chains are not retained), so batching can only shrink the history —
    // the storage effect of Fig. 13 the paper alludes to.
    EXPECT_LE(b.history_rows + b.pending_undo, a.history_rows + a.pending_undo)
        << def.name;
  }
}

TEST_F(HistoryGenTest, ArchiveRoundTrip) {
  std::string path = ::testing::TempDir() + "/bih_archive_test.txt";
  ASSERT_TRUE(SaveHistory(*history_, path).ok());
  History loaded;
  ASSERT_TRUE(LoadHistory(path, &loaded).ok());
  ASSERT_EQ(history_->size(), loaded.size());
  for (size_t i = 0; i < history_->size(); ++i) {
    const HistoryTransaction& a = (*history_)[i];
    const HistoryTransaction& b = loaded[i];
    ASSERT_EQ(a.scenario, b.scenario);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t j = 0; j < a.ops.size(); ++j) {
      const Operation& x = a.ops[j];
      const Operation& y = b.ops[j];
      ASSERT_EQ(x.kind, y.kind);
      ASSERT_EQ(x.table, y.table);
      ASSERT_EQ(x.period_index, y.period_index);
      ASSERT_EQ(x.period, y.period);
      ASSERT_EQ(x.row.size(), y.row.size());
      for (size_t c = 0; c < x.row.size(); ++c) {
        ASSERT_EQ(0, x.row[c].Compare(y.row[c])) << i << "/" << j << "/" << c;
      }
      ASSERT_EQ(x.key.size(), y.key.size());
      for (size_t c = 0; c < x.key.size(); ++c) {
        ASSERT_EQ(0, x.key[c].Compare(y.key[c]));
      }
      ASSERT_EQ(x.set.size(), y.set.size());
      for (size_t c = 0; c < x.set.size(); ++c) {
        ASSERT_EQ(x.set[c].column, y.set[c].column);
        ASSERT_EQ(0, x.set[c].value.Compare(y.set[c].value));
      }
    }
  }
  std::remove(path.c_str());
}

TEST_F(HistoryGenTest, LoadHistoryRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/bih_bad_archive.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "not an archive\n");
  std::fclose(f);
  History loaded;
  EXPECT_FALSE(LoadHistory(path, &loaded).ok());
  EXPECT_FALSE(LoadHistory("/nonexistent/path", &loaded).ok());
  std::remove(path.c_str());
}

// Every way an archive can rot on disk must come back as a descriptive
// InvalidArgument naming the offending line — never a silent mis-parse.
TEST_F(HistoryGenTest, LoadHistoryReportsCorruptionWithLineNumbers) {
  std::string path = ::testing::TempDir() + "/bih_corrupt_archive.txt";
  auto write = [&](const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(content.c_str(), f);
    std::fclose(f);
  };
  auto expect_error = [&](const std::string& content,
                          const std::string& needle) {
    write(content);
    History loaded;
    Status st = LoadHistory(path, &loaded);
    ASSERT_FALSE(st.ok()) << "accepted: " << content;
    EXPECT_EQ(Status::Code::kInvalidArgument, st.code());
    EXPECT_NE(std::string::npos, st.ToString().find(needle))
        << st.ToString() << " should mention '" << needle << "'";
  };

  const std::string header = "TPCBIH-ARCHIVE v1 1\n";
  // Transaction count mismatch: declared 2, only 1 present.
  expect_error("TPCBIH-ARCHIVE v1 2\nT 0\n", "truncated");
  // Out-of-range scenario / operation kind.
  expect_error(header + "T 99\n", "line 2");
  expect_error(header + "T 0\nO 42 ORDERS 0 0 100\nK 0 \n", "line 3");
  // Payload rows before any operation header.
  expect_error(header + "T 0\nR 1 I5 \n", "line 3");
  // Operation before any transaction.
  expect_error(header + "O 0 ORDERS 0 0 100\nR 1 I5 \n", "line 2");
  // Value count larger than the line could possibly hold.
  expect_error(header + "T 0\nO 0 ORDERS 0 0 100\nR 999999 I5 \n",
               "payload count");
  // Declared value missing from the payload.
  expect_error(header + "T 0\nO 0 ORDERS 0 0 100\nR 2 I5 \n", "line 4");
  // A record type that does not exist.
  expect_error(header + "T 0\nX what\n", "unknown record");

  // Truncating a valid archive mid-file is detected by the header count.
  ASSERT_TRUE(SaveHistory(*history_, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  std::string keep;
  char buf[1 << 16];
  for (int i = 0; i < 40 && std::fgets(buf, sizeof(buf), f); ++i) keep += buf;
  std::fclose(f);
  write(keep);
  History loaded;
  Status st = LoadHistory(path, &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string::npos, st.ToString().find("truncated"))
      << st.ToString();
  std::remove(path.c_str());
}

TEST_F(HistoryGenTest, AppTimeAdvancesThroughHistory) {
  // Later transactions use later application dates: compare the insert
  // dates of the first and last NEW_ORDER transactions.
  int64_t first_date = -1, last_date = -1;
  for (const HistoryTransaction& txn : *history_) {
    if (txn.scenario != Scenario::kNewOrder) continue;
    for (const Operation& op : txn.ops) {
      if (op.table == "ORDERS" && op.kind == Operation::Kind::kInsert) {
        int64_t d = op.row[orders::kOrderDate].AsInt();
        if (first_date < 0) first_date = d;
        last_date = d;
      }
    }
  }
  ASSERT_GE(first_date, 0);
  EXPECT_GT(last_date, first_date);
  EXPECT_LE(last_date, tpch_dates::kEnd.days());
}

TEST_F(HistoryGenTest, HistoryGrowthRatios) {
  // CUSTOMER and SUPPLIER accumulate proportionally more history per tuple
  // than ORDERS and LINEITEM (Section 3.2).
  const auto& pt = gen_->stats().per_table;
  auto ratio = [&](const char* table, size_t tuples) {
    return static_cast<double>(pt.at(table).TotalOps()) /
           static_cast<double>(tuples);
  };
  double cust = ratio("CUSTOMER", initial_->customer.size());
  double sup = ratio("SUPPLIER", initial_->supplier.size());
  double ord = ratio("ORDERS", initial_->orders.size());
  double li = ratio("LINEITEM", initial_->lineitem.size());
  EXPECT_GT(cust, ord);
  EXPECT_GT(sup, li);
}

TEST(ScenarioTest, ProbabilitiesSumToOne) {
  double sum = 0;
  for (double p : ScenarioProbabilities()) sum += p;
  EXPECT_NEAR(1.0, sum, 1e-9);
  EXPECT_EQ(static_cast<size_t>(Scenario::kCount),
            ScenarioProbabilities().size());
}

TEST(ScenarioTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(Scenario::kCount); ++i) {
    EXPECT_TRUE(names.insert(ScenarioName(static_cast<Scenario>(i))).second);
  }
}

}  // namespace
}  // namespace bih
