#ifndef TPCBIH_ENGINE_RECOVERY_H_
#define TPCBIH_ENGINE_RECOVERY_H_

#include <memory>
#include <string>

#include "durability/wal.h"
#include "engine/engine.h"

namespace bih {

// Outcome of replaying a write-ahead log into a fresh engine.
struct RecoveryReport {
  uint64_t records_total = 0;    // valid records found in the log
  uint64_t records_applied = 0;  // DDL + DML records replayed
  uint64_t txns_committed = 0;   // durable points (auto-commits + batches)
  uint64_t ops_dropped = 0;      // valid records discarded: unterminated txn
  uint64_t bytes_total = 0;      // log file size
  uint64_t bytes_salvaged = 0;   // prefix kept after torn/corrupt-tail cut
  bool tail_dropped = false;     // the log ended in a torn/corrupt frame
  std::string tail_reason;       // why the tail was cut (empty when clean)
  int64_t last_commit_ts = 0;    // commit stamp of the last durable point

  std::string ToString() const;
};

// Replays the log at `wal_path` into a fresh engine of architecture
// `letter`, reproducing the exact bitemporal state at the last durable
// commit — identical commit timestamps included, so time-travel queries
// against the recovered engine agree with the original. A torn or corrupt
// tail (detected by framing/CRC) and an unterminated trailing transaction
// are cleanly dropped and accounted for in `report`; both out-params are
// filled even on failure.
Status RecoverEngine(const std::string& letter, const std::string& wal_path,
                     std::unique_ptr<TemporalEngine>* out,
                     RecoveryReport* report);

}  // namespace bih

#endif  // TPCBIH_ENGINE_RECOVERY_H_
