#include <gtest/gtest.h>

#include "engine/consistency.h"
#include "workload/context.h"
#include "tpch/schema.h"

namespace bih {
namespace {

TableDef AccountDef() {
  TableDef def;
  def.name = "ACCOUNT";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"BALANCE", ColumnType::kDouble},
                       {"VB", ColumnType::kDate},
                       {"VE", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"VALIDITY", 2, 3}};
  def.system_versioned = true;
  return def;
}

class ConsistencyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConsistencyTest, SequencedDmlPreservesConsistency) {
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
  ASSERT_TRUE(engine->Insert("ACCOUNT", {Value(int64_t{1}), Value(1.0),
                                         Value(int64_t{0}),
                                         Value(Period::kForever)})
                  .ok());
  // A chain of sequenced operations that splits, overwrites and deletes.
  ASSERT_TRUE(engine->UpdateSequenced("ACCOUNT", {Value(int64_t{1})}, 0,
                                      Period(10, 50), {{1, Value(2.0)}})
                  .ok());
  ASSERT_TRUE(engine->UpdateOverwrite("ACCOUNT", {Value(int64_t{1})}, 0,
                                      Period(30, 80), {{1, Value(3.0)}})
                  .ok());
  ASSERT_TRUE(engine->DeleteSequenced("ACCOUNT", {Value(int64_t{1})}, 0,
                                      Period(40, 60))
                  .ok());
  ASSERT_TRUE(engine->UpdateCurrent("ACCOUNT", {Value(int64_t{1})},
                                    {{1, Value(4.0)}})
                  .ok());
  engine->Maintain();
  ConsistencyReport report = CheckBitemporalConsistency(*engine, "ACCOUNT");
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0].message);
  EXPECT_EQ(1u, report.keys_checked);
  EXPECT_GT(report.versions_checked, 4u);
}

TEST_P(ConsistencyTest, DetectsInjectedOverlap) {
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
  // Two concurrently visible versions of the same key with overlapping
  // application periods — exactly the corruption the checker exists for.
  ASSERT_TRUE(engine->Insert("ACCOUNT", {Value(int64_t{1}), Value(1.0),
                                         Value(int64_t{0}), Value(int64_t{100})})
                  .ok());
  ASSERT_TRUE(engine->Insert("ACCOUNT", {Value(int64_t{1}), Value(2.0),
                                         Value(int64_t{50}), Value(int64_t{150})})
                  .ok());
  ConsistencyReport report = CheckBitemporalConsistency(*engine, "ACCOUNT");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(std::string::npos,
            report.violations[0].message.find("bitemporal overlap"));
}

TEST_P(ConsistencyTest, DetectsMalformedPeriod) {
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->CreateTable(AccountDef()).ok());
  ASSERT_TRUE(engine->Insert("ACCOUNT", {Value(int64_t{1}), Value(1.0),
                                         Value(int64_t{90}), Value(int64_t{10})})
                  .ok());
  ConsistencyReport report = CheckBitemporalConsistency(*engine, "ACCOUNT");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(std::string::npos,
            report.violations[0].message.find("malformed application"));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ConsistencyTest,
                         ::testing::Values("A", "B", "C", "D"));

TEST(WorkloadConsistencyTest, GeneratedHistoryIsConsistent) {
  WorkloadConfig cfg;
  cfg.h = 0.001;
  cfg.m = 0.002;
  cfg.seed = 3;
  WorkloadContext ctx = BuildWorkload(cfg);
  // Tables whose application periods are only ever touched through
  // sequenced/overwrite operations must be strictly consistent.
  for (const char* table :
       {"PART", "PARTSUPP", "CUSTOMER", "SUPPLIER", "ORDERS", "LINEITEM"}) {
    ConsistencyReport r = CheckBitemporalConsistency(ctx.eng(), table);
    EXPECT_TRUE(r.ok()) << table << ": "
                        << (r.violations.empty() ? ""
                                                 : r.violations[0].message);
  }
}

}  // namespace
}  // namespace bih
