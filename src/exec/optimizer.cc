#include "exec/optimizer.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

namespace bih {

std::string OptimizerReport::ToString() const {
  return "pushed=" + std::to_string(predicates_pushed) +
         " folded=" + std::to_string(conjuncts_folded) +
         " temporal=" + std::to_string(temporal_rewrites) +
         " pruned=" + std::to_string(scans_pruned);
}

namespace {

// ---- Expression analysis ------------------------------------------------

void CollectCols(const ExprPtr& e, std::set<int>* cols) {
  if (e == nullptr) return;
  if (e->op() == Expr::Op::kColumn) cols->insert(e->column());
  for (const ExprPtr& c : e->children()) CollectCols(c, cols);
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->op() == Expr::Op::kAnd) {
    for (const ExprPtr& c : e->children()) SplitConjuncts(c, out);
    return;
  }
  out->push_back(e);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& cs) {
  if (cs.empty()) return nullptr;
  ExprPtr e = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) e = And(e, cs[i]);
  return e;
}

// Rebuilds `e` with every column reference shifted by `delta` (literals are
// shared — Expr is immutable).
ExprPtr RebaseCols(const ExprPtr& e, int delta) {
  if (e->op() == Expr::Op::kColumn) return Col(e->column() + delta);
  if (e->op() == Expr::Op::kLiteral) return e;
  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  for (const ExprPtr& c : e->children()) kids.push_back(RebaseCols(c, delta));
  return std::make_shared<const Expr>(e->op(), std::move(kids));
}

bool IsLit(const ExprPtr& e) { return e->op() == Expr::Op::kLiteral; }
bool IsCol(const ExprPtr& e) { return e->op() == Expr::Op::kColumn; }

// Matches `col <op> literal` in either orientation; *op is reported with
// the column on the left (so `lit >= col` comes back as kLe).
bool MatchColLit(const ExprPtr& e, Expr::Op* op, int* col, Value* lit) {
  switch (e->op()) {
    case Expr::Op::kEq:
    case Expr::Op::kLe:
    case Expr::Op::kLt:
    case Expr::Op::kGe:
    case Expr::Op::kGt:
      break;
    default:
      return false;
  }
  const ExprPtr& a = e->children()[0];
  const ExprPtr& b = e->children()[1];
  if (IsCol(a) && IsLit(b)) {
    *op = e->op();
    *col = a->column();
    *lit = b->literal();
    return true;
  }
  if (IsLit(a) && IsCol(b)) {
    switch (e->op()) {
      case Expr::Op::kEq:
        *op = Expr::Op::kEq;
        break;
      case Expr::Op::kLe:
        *op = Expr::Op::kGe;
        break;
      case Expr::Op::kLt:
        *op = Expr::Op::kGt;
        break;
      case Expr::Op::kGe:
        *op = Expr::Op::kLe;
        break;
      case Expr::Op::kGt:
        *op = Expr::Op::kLt;
        break;
      default:
        return false;
    }
    *col = b->column();
    *lit = a->literal();
    return true;
  }
  return false;
}

// ---- Plan shape ---------------------------------------------------------

// Output width of a subtree, or -1 when it cannot be determined statically
// (a Values leaf with no rows). Widths gate the join rules: no width, no
// rewrite.
int PlanWidth(const PlanNode& n, const TemporalEngine& engine) {
  switch (n.kind) {
    case PlanNode::Kind::kScan:
      if (!engine.HasTable(n.scan.table)) return -1;
      return engine.ScanSchema(n.scan.table).num_columns();
    case PlanNode::Kind::kValues:
      return n.values.empty() ? -1 : static_cast<int>(n.values[0].size());
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kSort:
    case PlanNode::Kind::kLimit:
    case PlanNode::Kind::kDistinct:
      return PlanWidth(*n.children[0], engine);
    case PlanNode::Kind::kProject:
      return static_cast<int>(n.exprs.size());
    case PlanNode::Kind::kHashJoin:
    case PlanNode::Kind::kMergeJoin:
    case PlanNode::Kind::kCrossJoin: {
      int lw = PlanWidth(*n.children[0], engine);
      int rw = PlanWidth(*n.children[1], engine);
      if (rw < 0 && n.kind == PlanNode::Kind::kHashJoin &&
          n.right_width > 0) {
        rw = static_cast<int>(n.right_width);
      }
      return lw < 0 || rw < 0 ? -1 : lw + rw;
    }
    case PlanNode::Kind::kIndexJoin: {
      int lw = PlanWidth(*n.children[0], engine);
      if (lw < 0 || !engine.HasTable(n.index_table)) return -1;
      return lw + engine.ScanSchema(n.index_table).num_columns();
    }
    case PlanNode::Kind::kAggregate:
      return static_cast<int>(n.group_cols.size() + n.aggs.size());
  }
  return -1;
}

bool IsJoinKind(PlanNode::Kind k) {
  return k == PlanNode::Kind::kHashJoin || k == PlanNode::Kind::kMergeJoin ||
         k == PlanNode::Kind::kCrossJoin;
}

// ---- Rule 1: predicate pushdown below joins -----------------------------

void PushDownFilters(PlanPtr* node, const TemporalEngine& engine,
                     OptimizerReport* rep) {
  PlanNode& n = **node;
  if (n.kind == PlanNode::Kind::kFilter && IsJoinKind(n.children[0]->kind)) {
    PlanNode& join = *n.children[0];
    const int lw = PlanWidth(*join.children[0], engine);
    const int rw = PlanWidth(*join.children[1], engine);
    if (lw >= 0 && rw >= 0) {
      // A right-side conjunct above a left-outer join also filters the
      // NULL-padded rows; below the join it could not. Left-side conjuncts
      // commute with padding (a padded row carries its left columns
      // unchanged), so those still move.
      const bool push_right = !(join.kind == PlanNode::Kind::kHashJoin &&
                                join.join_type == JoinType::kLeftOuter);
      std::vector<ExprPtr> conjuncts, keep, left_side, right_side;
      SplitConjuncts(n.predicate, &conjuncts);
      for (const ExprPtr& c : conjuncts) {
        std::set<int> cols;
        CollectCols(c, &cols);
        const bool only_left =
            cols.empty() || *cols.rbegin() < lw;
        const bool only_right = !cols.empty() && *cols.begin() >= lw &&
                                *cols.rbegin() < lw + rw;
        if (only_left) {
          left_side.push_back(c);
        } else if (only_right && push_right) {
          right_side.push_back(RebaseCols(c, -lw));
        } else {
          keep.push_back(c);
        }
      }
      if (!left_side.empty() || !right_side.empty()) {
        rep->predicates_pushed +=
            static_cast<int>(left_side.size() + right_side.size());
        if (!left_side.empty()) {
          join.children[0] = FilterPlan(std::move(join.children[0]),
                                        CombineConjuncts(left_side));
        }
        if (!right_side.empty()) {
          join.children[1] = FilterPlan(std::move(join.children[1]),
                                        CombineConjuncts(right_side));
        }
        if (keep.empty()) {
          *node = std::move(n.children[0]);  // the Filter dissolved
        } else {
          n.predicate = CombineConjuncts(keep);
        }
      }
    }
  }
  for (PlanPtr& c : (*node)->children) PushDownFilters(&c, engine, rep);
}

// ---- Rules 2+3: folding a Filter into the Scan below it -----------------

// Recognizes the bitemporal visibility predicate over a (begin, end) column
// pair — begin <= T and end > T for one shared literal T — and removes the
// two conjuncts, reporting T. This is the rewrite the paper frames as
// T8 -> T2: the same time-travel constraint, stated as a WHERE clause vs.
// as a temporal selector the engine can prune partitions with.
bool ExtractAsOf(std::vector<ExprPtr>* conjuncts, int begin_col, int end_col,
                 Value* as_of) {
  for (size_t i = 0; i < conjuncts->size(); ++i) {
    Expr::Op op;
    int col;
    Value lit;
    if (!MatchColLit((*conjuncts)[i], &op, &col, &lit)) continue;
    if (op != Expr::Op::kLe || col != begin_col || lit.is_null()) continue;
    for (size_t j = 0; j < conjuncts->size(); ++j) {
      Expr::Op jop;
      int jcol;
      Value jlit;
      if (j == i || !MatchColLit((*conjuncts)[j], &jop, &jcol, &jlit)) {
        continue;
      }
      if (jop != Expr::Op::kGt || jcol != end_col) continue;
      if (jlit.is_null() || lit.Compare(jlit) != 0) continue;
      *as_of = lit;
      conjuncts->erase(conjuncts->begin() + std::max(i, j));
      conjuncts->erase(conjuncts->begin() + std::min(i, j));
      return true;
    }
  }
  return false;
}

void FoldFilterIntoScan(PlanPtr* node, const TemporalEngine& engine,
                        OptimizerReport* rep) {
  for (PlanPtr& c : (*node)->children) FoldFilterIntoScan(&c, engine, rep);
  PlanNode& n = **node;
  if (n.kind != PlanNode::Kind::kFilter ||
      n.children[0]->kind != PlanNode::Kind::kScan) {
    return;
  }
  ScanRequest& scan = n.children[0]->scan;
  if (!engine.HasTable(scan.table)) return;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(n.predicate, &conjuncts);

  // Temporal selector folding. System time: the two system columns sit
  // after the user columns in the scan schema. Application time: each
  // declared period names its (begin, end) user columns.
  const int width = engine.ScanSchema(scan.table).num_columns();
  const TableDef& def = engine.GetTableDef(scan.table);
  Value as_of;
  if (scan.temporal.system_time.kind == TemporalSelector::Kind::kAll &&
      ExtractAsOf(&conjuncts, width - 2, width - 1, &as_of)) {
    scan.temporal.system_time = TemporalSelector::AsOf(as_of.AsInt());
    ++rep->temporal_rewrites;
  }
  if (scan.temporal.app_time.kind == TemporalSelector::Kind::kAll) {
    for (size_t p = 0; p < def.app_periods.size(); ++p) {
      if (ExtractAsOf(&conjuncts, def.app_periods[p].begin_col,
                      def.app_periods[p].end_col, &as_of)) {
        scan.temporal.app_time = TemporalSelector::AsOf(as_of.AsInt());
        scan.temporal.app_period_index = static_cast<int>(p);
        ++rep->temporal_rewrites;
        break;
      }
    }
  }

  // Sargable conjuncts: equality with a literal becomes an `equals` entry
  // (the index-eligible form); non-strict bounds become the inclusive
  // range constraint while its column slot is free. Strict bounds and
  // NULL literals stay in the residual filter.
  std::vector<ExprPtr> keep;
  for (const ExprPtr& c : conjuncts) {
    Expr::Op op;
    int col;
    Value lit;
    bool folded = false;
    if (MatchColLit(c, &op, &col, &lit) && !lit.is_null() && col >= 0 &&
        col < width) {
      switch (op) {
        case Expr::Op::kEq:
          scan.equals.emplace_back(col, lit);
          folded = true;
          break;
        case Expr::Op::kGe:
          if ((scan.range_col < 0 || scan.range_col == col) &&
              scan.range_lo.is_null()) {
            scan.range_col = col;
            scan.range_lo = lit;
            folded = true;
          }
          break;
        case Expr::Op::kLe:
          if ((scan.range_col < 0 || scan.range_col == col) &&
              scan.range_hi.is_null()) {
            scan.range_col = col;
            scan.range_hi = lit;
            folded = true;
          }
          break;
        default:
          break;
      }
    } else if (c->op() == Expr::Op::kBetween && IsCol(c->children()[0]) &&
               IsLit(c->children()[1]) && IsLit(c->children()[2]) &&
               !c->children()[1]->literal().is_null() &&
               !c->children()[2]->literal().is_null() &&
               scan.range_col < 0) {
      scan.range_col = c->children()[0]->column();
      scan.range_lo = c->children()[1]->literal();
      scan.range_hi = c->children()[2]->literal();
      folded = true;
    }
    if (folded) {
      ++rep->conjuncts_folded;
    } else {
      keep.push_back(c);
    }
  }
  if (keep.empty()) {
    *node = std::move(n.children[0]);  // everything folded; drop the Filter
  } else {
    n.predicate = CombineConjuncts(keep);
  }
}

// ---- Rule 4: column pruning ---------------------------------------------

// What the tree above a node consumes of its output. `all` is the top of
// the lattice (every column demanded).
struct Demand {
  bool all = false;
  std::set<int> cols;

  static Demand All() {
    Demand d;
    d.all = true;
    return d;
  }
};

void AddExprCols(const ExprPtr& e, Demand* d) {
  if (!d->all) CollectCols(e, &d->cols);
}

void PruneColumns(PlanNode& n, const Demand& demand,
                  const TemporalEngine& engine, OptimizerReport* rep) {
  switch (n.kind) {
    case PlanNode::Kind::kScan: {
      if (demand.all || !n.scan.projection.empty() ||
          !engine.HasTable(n.scan.table)) {
        return;
      }
      const int width = engine.ScanSchema(n.scan.table).num_columns();
      // Row width is part of the scan contract, so a projection never
      // narrows rows — it only lets column stores skip materializing dead
      // attributes. Demand can be empty (COUNT(*)); keep one column so the
      // request stays meaningful.
      std::vector<int> proj(demand.cols.begin(), demand.cols.end());
      if (proj.empty()) proj.push_back(0);
      if (static_cast<int>(proj.size()) >= width) return;
      n.scan.projection = std::move(proj);
      ++rep->scans_pruned;
      return;
    }
    case PlanNode::Kind::kValues:
      return;
    case PlanNode::Kind::kFilter: {
      Demand d = demand;
      AddExprCols(n.predicate, &d);
      PruneColumns(*n.children[0], d, engine, rep);
      return;
    }
    case PlanNode::Kind::kProject: {
      Demand d;  // a Project's inputs are exactly its expressions' columns
      for (const ExprPtr& e : n.exprs) AddExprCols(e, &d);
      PruneColumns(*n.children[0], d, engine, rep);
      return;
    }
    case PlanNode::Kind::kSort: {
      Demand d = demand;
      for (const SortSpec& k : n.sort_keys) AddExprCols(k.key, &d);
      PruneColumns(*n.children[0], d, engine, rep);
      return;
    }
    case PlanNode::Kind::kLimit:
      PruneColumns(*n.children[0], demand, engine, rep);
      return;
    case PlanNode::Kind::kDistinct:
      // DISTINCT compares whole rows: every column is load-bearing.
      PruneColumns(*n.children[0], Demand::All(), engine, rep);
      return;
    case PlanNode::Kind::kAggregate: {
      Demand d;
      for (int c : n.group_cols) d.cols.insert(c);
      for (const AggSpec& a : n.aggs) AddExprCols(a.expr, &d);
      PruneColumns(*n.children[0], d, engine, rep);
      return;
    }
    case PlanNode::Kind::kHashJoin:
    case PlanNode::Kind::kMergeJoin:
    case PlanNode::Kind::kCrossJoin: {
      const int lw = PlanWidth(*n.children[0], engine);
      if (lw < 0 || demand.all) {
        PruneColumns(*n.children[0], Demand::All(), engine, rep);
        PruneColumns(*n.children[1], Demand::All(), engine, rep);
        return;
      }
      Demand dl, dr;
      for (int c : demand.cols) {
        if (c < lw) {
          dl.cols.insert(c);
        } else {
          dr.cols.insert(c - lw);
        }
      }
      for (int c : n.left_keys) dl.cols.insert(c);
      for (int c : n.right_keys) dr.cols.insert(c);
      if (n.predicate != nullptr) {
        std::set<int> rescols;
        CollectCols(n.predicate, &rescols);
        for (int c : rescols) {
          if (c < lw) {
            dl.cols.insert(c);
          } else {
            dr.cols.insert(c - lw);
          }
        }
      }
      PruneColumns(*n.children[0], dl, engine, rep);
      PruneColumns(*n.children[1], dr, engine, rep);
      return;
    }
    case PlanNode::Kind::kIndexJoin: {
      const int lw = PlanWidth(*n.children[0], engine);
      Demand dl;
      if (lw < 0 || demand.all) {
        dl = Demand::All();
      } else {
        for (int c : demand.cols) {
          if (c < lw) dl.cols.insert(c);
        }
        for (int c : n.left_keys) dl.cols.insert(c);
        if (n.predicate != nullptr) {
          std::set<int> rescols;
          CollectCols(n.predicate, &rescols);
          for (int c : rescols) {
            if (c < lw) dl.cols.insert(c);
          }
        }
      }
      PruneColumns(*n.children[0], dl, engine, rep);
      return;
    }
  }
}

}  // namespace

void OptimizePlan(PlanPtr* plan, const TemporalEngine& engine,
                  OptimizerReport* report) {
  OptimizerReport local;
  OptimizerReport* rep = report != nullptr ? report : &local;
  PushDownFilters(plan, engine, rep);
  FoldFilterIntoScan(plan, engine, rep);
  PruneColumns(**plan, Demand::All(), engine, rep);
}

}  // namespace bih
