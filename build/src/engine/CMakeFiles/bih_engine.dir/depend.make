# Empty dependencies file for bih_engine.
# This may be replaced when dependencies are built.
