// Temporal analytics scenario: run analytical queries over the evolving
// order book — time-travelling TPC-H, temporal aggregation, and a temporal
// join — and compare the four storage architectures on the same workload.
#include <chrono>
#include <cstdio>

#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_queries.h"

using namespace bih;

namespace {

template <typename Fn>
double MeasureMs(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  WorkloadConfig cfg;
  cfg.engine_letter = "A";
  cfg.h = 0.002;
  cfg.m = 0.003;
  cfg.seed = 21;
  std::printf("loading order book with history (h=%.3f, m=%.3f)...\n", cfg.h,
              cfg.m);
  WorkloadContext ctx = BuildWorkload(cfg);

  // 1. Classic analytics, three ways through time: pricing summary (Q1)
  //    now, at a past application date, and as the database remembered the
  //    data at version 0.
  std::printf("\nQ1 (pricing summary) under three temporal coordinates:\n");
  Rows now = TpchQuery(1, *ctx.engine, TemporalScanSpec::Current());
  Rows app = TpchQuery(1, *ctx.engine, TemporalScanSpec::AppAsOf(ctx.app_mid));
  Rows v0 =
      TpchQuery(1, *ctx.engine, TemporalScanSpec::SystemAsOf(ctx.sys_v0.micros()));
  std::printf("  current: %zu groups, app-time travel: %zu groups, "
              "system-time travel: %zu groups\n",
              now.size(), app.size(), v0.size());

  // 2. Temporal aggregation (R3): how many orders were open at each moment
  //    of recorded history — with the timeline operator the paper's systems
  //    lack, against the quadratic SQL formulation they must use.
  double sweep_ms = 0.0, naive_ms = 0.0;
  Rows timeline;
  sweep_ms = MeasureMs([&] {
    timeline = R3(*ctx.engine, TemporalAggKind::kCount, /*naive=*/false);
  });
  naive_ms = MeasureMs([&] {
    R3(*ctx.engine, TemporalAggKind::kCount, /*naive=*/true);
  });
  std::printf("\nR3 temporal aggregation over %zu change points:\n",
              timeline.size());
  std::printf("  timeline sweep: %8.1f ms\n  SQL-style naive: %7.1f ms "
              "(%.0fx slower — why the paper calls for native operators)\n",
              sweep_ms, naive_ms, naive_ms / std::max(sweep_ms, 0.001));

  // 3. Temporal join (R5): customers who were below a 5000 balance *while*
  //    holding an order above 150k — a correlation between histories.
  Rows risky = R5(*ctx.engine, 5000.0, 150000.0);
  std::printf("\nR5 temporal join: %zu customers were low on balance while "
              "carrying a large order\n",
              risky.size());

  // 4. Architecture comparison: the same slice query on all four engines.
  std::printf("\nT6 system-time slice on all four architectures:\n");
  for (const std::string& letter : AllEngineLetters()) {
    std::unique_ptr<TemporalEngine> other;
    TemporalEngine* e;
    if (letter == "A") {
      e = ctx.engine.get();
    } else {
      other = LoadEngine(letter, ctx.initial, ctx.history);
      e = other.get();
    }
    Rows res;
    double ms = MeasureMs([&] { res = T6SysPointAppAll(*e, ctx.sys_mid); });
    std::printf("  System %s: %8.2f ms (%s orders)\n", letter.c_str(), ms,
                res[0][1].ToString().c_str());
  }
  return 0;
}
